(* Experiment harness.

   The paper is a theory paper with no empirical section, so the
   "tables and figures" regenerated here are its theorems, one experiment
   each (see DESIGN.md §3 and EXPERIMENTS.md):

     E1  ⊕ operation laws and exactness          (Thm 1, Cor 2, Thms 11-14)
     E2  safety of RMT-PKA / 𝒵-CPA under attack  (Thm 4)
     E2b indistinguishability attacks            (Thm 3 / Thm 8, Fig 2)
     E3  tightness of the RMT-cut                (Thm 3 + Thm 5)
     E4  tightness of the RMT 𝒵-pp cut           (Thm 7 + Thm 8)
     E5  knowledge ladder / uniqueness hierarchy (Cor 6, §4)
     E6  𝒵-CPA is polynomial, RMT-PKA is not     (§5 motivation)
     E7  self-reduction: simulated membership    (Thm 9, Cor 10, Fig 1)
     E8  minimal knowledge frontier              (§3.1 remark)

   plus a Bechamel micro-benchmark per experiment's core operation and a
   `core` engine benchmark (packed antichain kernels vs the list baseline,
   multicore sweep scaling) whose numbers `--json` records in
   BENCH_core.json.

   Usage: main.exe [e1|e2|e2b|e3|e4|e5|e6|e7|e8|core|bechamel|all]*
                   [--json] [--domains=N] *)

open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge
open Rmt_core
open Rmt_workloads

(* global flags, set by the driver before experiments run *)
let json_mode = ref false
let domains_override = ref None

let sweep_domains () =
  match !domains_override with
  | Some d -> d
  | None -> Parsweep.recommended_domains ()

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let dec_str = function
  | None -> "⊥"
  | Some x -> string_of_int x

(* ------------------------------------------------------------------ *)
(* E1 — the ⊕ operation                                                *)
(* ------------------------------------------------------------------ *)

let random_structure rng ~universe ~sets ~max_size =
  let ground = Nodeset.range 0 universe in
  let candidates =
    List.init sets (fun _ ->
        Prng.sample rng ground (1 + Prng.int rng (max 1 max_size)))
  in
  Structure.of_sets ~ground candidates

(* every member of a small structure, by subset enumeration *)
let members s =
  let out = ref [] in
  Nodeset.subsets_iter (Structure.ground s) (fun z ->
      if Structure.mem z s then out := z :: !out);
  !out

let brute_join e f =
  let a = Structure.ground e and b = Structure.ground f in
  let unions =
    List.concat_map
      (fun z1 ->
        List.filter_map
          (fun z2 ->
            if Nodeset.equal (Nodeset.inter z1 b) (Nodeset.inter z2 a) then
              Some (Nodeset.union z1 z2)
            else None)
          (members f))
      (members e)
  in
  match unions with
  | [] -> Structure.empty_family ~ground:(Nodeset.union a b)
  | _ -> Structure.of_sets ~ground:(Nodeset.union a b) unions

let e1 () =
  section "E1 — joint view operation ⊕ (Thm 1, Cor 2, Thms 11/13/14)";
  let rng = Prng.create 101 in
  let law name ~cases run =
    let violations = ref 0 in
    for _ = 1 to cases do
      if not (run ()) then incr violations
    done;
    (name, cases, !violations)
  in
  let pair u = (random_structure rng ~universe:u ~sets:4 ~max_size:4,
                random_structure rng ~universe:u ~sets:4 ~max_size:4) in
  let restricted_pair () =
    let z = random_structure rng ~universe:10 ~sets:5 ~max_size:5 in
    let a = Prng.subset rng (Nodeset.range 0 10) 0.5 in
    let b = Prng.subset rng (Nodeset.range 0 10) 0.5 in
    (z, a, b)
  in
  let results =
    [
      law "commutativity (Thm 11)" ~cases:1000 (fun () ->
          let e, f = pair 10 in
          Structure.equal (Joint.join e f) (Joint.join f e));
      law "associativity (Thm 13)" ~cases:500 (fun () ->
          let e, f = pair 9 in
          let h = random_structure rng ~universe:9 ~sets:3 ~max_size:4 in
          Structure.equal
            (Joint.join e (Joint.join f h))
            (Joint.join (Joint.join e f) h));
      law "idempotence (Thm 14)" ~cases:1000 (fun () ->
          let e, _ = pair 10 in
          Structure.equal e (Joint.join e e));
      law "exactness vs Definition 2" ~cases:400 (fun () ->
          let e, f = pair 6 in
          Structure.equal (Joint.join e f) (brute_join e f));
      law "Cor 2: Z^(A∪B) ⊆ Z^A ⊕ Z^B" ~cases:800 (fun () ->
          let z, a, b = restricted_pair () in
          Structure.subset_family
            (Structure.restrict (Nodeset.union a b) z)
            (Joint.join (Structure.restrict a z) (Structure.restrict b z)));
      law "Thm 1: join restricts into operands" ~cases:800 (fun () ->
          let e, f = pair 8 in
          let j = Joint.join e f in
          List.for_all
            (fun m ->
              Structure.mem (Nodeset.inter m (Structure.ground e)) e
              && Structure.mem (Nodeset.inter m (Structure.ground f)) f)
            (Structure.maximal_sets j));
    ]
  in
  let t = Table.create [ "law"; "cases"; "violations" ] in
  List.iter
    (fun (name, cases, violations) ->
      Table.add_row t [ name; Table.cell_int cases; Table.cell_int violations ])
    results;
  Table.print ~title:"paper claim: 0 violations everywhere" t

(* ------------------------------------------------------------------ *)
(* E2 — safety under the full strategy battery                         *)
(* ------------------------------------------------------------------ *)

let e2_instances () =
  let rng = Prng.create 202 in
  List.concat_map
    (fun (name, g, dealer, receiver) ->
      let kinds =
        [
          ("thr-1", Builders.global_threshold g ~dealer 1);
          ( "rand",
            Builders.random_antichain rng g ~dealer ~sets:5
              ~max_size:(max 1 (Graph.num_nodes g / 3)) );
        ]
      in
      List.concat_map
        (fun (kname, structure) ->
          List.map
            (fun (vname, view) ->
              ( Printf.sprintf "%s/%s/%s" name kname vname,
                Instance.make ~graph:g ~structure ~view ~dealer ~receiver ))
            [ ("ad-hoc", View.ad_hoc g); ("r2", View.radius 2 g) ])
        kinds)
    [
      ("layered-3x2", Generators.layered ~width:3 ~depth:2, 0, 7);
      ("grid-3x3", Generators.grid 3 3, 0, 8);
      ("cycle-7", Generators.cycle 7, 0, 3);
    ]

let e2 () =
  section "E2 — safety of RMT-PKA and 𝒵-CPA under Byzantine attack (Thm 4)";
  let t =
    Table.create
      [ "instance"; "protocol"; "runs"; "correct"; "undecided"; "wrong"; "trunc" ]
  in
  let rng = Prng.create 203 in
  List.iter
    (fun (label, inst) ->
      let p = Solvability.probe_rmt_pka inst ~x_dealer:5 ~x_fake:6 in
      Table.add_row t
        [
          label; "RMT-PKA";
          Table.cell_int p.total_runs;
          Table.cell_int p.correct_runs;
          Table.cell_int p.undecided_runs;
          Table.cell_int p.wrong_runs;
          Table.cell_int p.truncated_runs;
        ];
      let z = Solvability.probe_zcpa rng inst ~x_dealer:5 ~x_fake:6 in
      Table.add_row t
        [
          label; "Z-CPA";
          Table.cell_int z.total_runs;
          Table.cell_int z.correct_runs;
          Table.cell_int z.undecided_runs;
          Table.cell_int z.wrong_runs;
          "0";
        ])
    (e2_instances ());
  Table.print
    ~title:
      "paper claim: the 'wrong' column is identically 0 (safety); undecided \
       runs appear only where the corruption actually breaks solvability"
    t

(* ------------------------------------------------------------------ *)
(* E2b — the two-face indistinguishability attack                      *)
(* ------------------------------------------------------------------ *)

let e2b () =
  section "E2b — indistinguishability attacks on cut-bearing instances (Fig 2)";
  let instances =
    List.filter_map
      (fun (name, g, t, dealer, receiver) ->
        let inst =
          Instance.ad_hoc_of ~graph:g
            ~structure:(Builders.global_threshold g ~dealer t)
            ~dealer ~receiver
        in
        match (Cut.find_rmt_cut inst).cut_found with
        | Some w -> Some (name, inst, w)
        | None -> None)
      [
        ("path-4", Generators.path_graph 4, 1, 0, 3);
        ("layered-2x2", Generators.layered ~width:2 ~depth:2, 1, 0, 5);
        ("cycle-6", Generators.cycle 6, 1, 0, 3);
        ("grid-3x3", Generators.grid 3 3, 1, 0, 8);
      ]
  in
  let t =
    Table.create [ "instance"; "protocol"; "e decides"; "e' decides"; "broken" ]
  in
  List.iter
    (fun (name, (inst : Instance.t), w) ->
      let add protocol (v : Attack.verdict) =
        Table.add_row t
          [
            name; protocol; dec_str v.decision_e; dec_str v.decision_e';
            Table.cell_bool v.safety_broken;
          ]
      in
      add "RMT-PKA" (Attack.against_rmt_pka inst w ~x0:0 ~x1:1);
      add "Z-CPA" (Attack.against_zcpa inst w ~x0:0 ~x1:1);
      let naive mk label =
        let v =
          Attack.co_simulate ~graph:inst.graph ~c1:w.Cut.c1 ~c2:w.Cut.c2
            (mk ~x_dealer:0) (mk ~x_dealer:1) ~receiver:inst.receiver
        in
        add label v
      in
      naive
        (fun ~x_dealer ->
          Rmt_protocols.Naive.first_value inst.graph ~dealer:inst.dealer
            ~receiver:inst.receiver ~x_dealer)
        "naive-first";
      naive
        (fun ~x_dealer ->
          Rmt_protocols.Naive.neighbor_majority inst.graph ~dealer:inst.dealer
            ~receiver:inst.receiver ~x_dealer)
        "naive-majority";
      naive
        (fun ~x_dealer ->
          Rmt_protocols.Dolev.automaton inst.graph ~dealer:inst.dealer
            ~receiver:inst.receiver ~x_dealer)
        "dolev")
    instances;
  Table.print
    ~title:
      "paper claim: safe protocols output ⊥ in both runs; eager unsafe \
       baselines decide and are wrong in one run (broken = yes)"
    t

(* ------------------------------------------------------------------ *)
(* E3 / E4 — tightness sweeps                                          *)
(* ------------------------------------------------------------------ *)

(* Per-instance classification runs on all cores (Parsweep); the classify
   function must be pure, so any randomness is pre-split per instance
   before the sweep.  Aggregation of the (in solvable class?, behavior
   matches?) pairs stays sequential. *)
let tightness_rows results =
  let classes = [ ("solvable", true); ("unsolvable", false) ] in
  List.map
    (fun (cname, want_solvable) ->
      let in_class =
        List.filter (fun (s, _) -> s = want_solvable) (Array.to_list results)
      in
      let agree = List.length (List.filter snd in_class) in
      (cname, List.length in_class, agree))
    classes

let print_tightness ~title rows =
  let t = Table.create [ "class"; "instances"; "behavior matches"; "agreement" ] in
  List.iter
    (fun (cname, total, agree) ->
      Table.add_row t
        [
          cname; Table.cell_int total; Table.cell_int agree;
          (if total = 0 then "n/a"
           else Table.cell_pct (float_of_int agree /. float_of_int total));
        ])
    rows;
  Table.print ~title t

let e3_classify { Workload.instance; _ } =
  let solvable =
    Solvability.partial_knowledge instance = Solvability.Solvable
  in
  let agree =
    if solvable then
      Solvability.all_correct
        (Solvability.probe_rmt_pka instance ~x_dealer:1 ~x_fake:2)
    else
      match (Cut.find_rmt_cut instance).cut_found with
      | None -> false
      | Some w ->
        let v = Attack.against_rmt_pka instance w ~x0:0 ~x1:1 in
        v.decision_e = None && v.decision_e' = None
  in
  (solvable, agree)

let e3 () =
  section "E3 — tightness of the RMT-cut for RMT-PKA (Thm 3 + Thm 5)";
  let suite = Workload.tightness_suite (Prng.create 303) ~count:120 ~n:9 in
  let results =
    Parsweep.map ~domains:(sweep_domains ()) e3_classify (Array.of_list suite)
  in
  print_tightness
    ~title:
      "paper claim: 100% agreement — no RMT-cut ⇔ RMT-PKA withstands every \
       adversary; RMT-cut ⇒ the two-face attack silences it"
    (tightness_rows results)

let e4 () =
  section "E4 — tightness of the RMT Z-pp cut for 𝒵-CPA (Thm 7 + Thm 8)";
  let suite = Workload.ad_hoc_suite (Prng.create 404) ~count:120 ~n:10 in
  let rng = Prng.create 405 in
  (* split one stream per instance, sequentially, so the parallel map sees
     independent deterministic streams whatever the domain interleaving *)
  let jobs =
    Array.of_list (List.map (fun li -> (li, Prng.split rng)) suite)
  in
  let classify ({ Workload.instance; _ }, rng) =
    let solvable = Solvability.ad_hoc instance = Solvability.Solvable in
    let agree =
      if solvable then
        Solvability.all_correct
          (Solvability.probe_zcpa rng instance ~x_dealer:1 ~x_fake:2)
      else
        match (Cut.find_rmt_zpp_cut instance).cut_found with
        | None -> false
        | Some w ->
          let v = Attack.against_zcpa instance w ~x0:0 ~x1:1 in
          v.decision_e = None && v.decision_e' = None
    in
    (solvable, agree)
  in
  let results = Parsweep.map ~domains:(sweep_domains ()) classify jobs in
  print_tightness ~title:"paper claim: 100% agreement in both classes"
    (tightness_rows results)

(* ------------------------------------------------------------------ *)
(* E5 — knowledge ladder and uniqueness hierarchy                      *)
(* ------------------------------------------------------------------ *)

let e5 () =
  section "E5 — solvability vs knowledge radius; protocol hierarchy (Cor 6)";
  let rng = Prng.create 505 in
  let g = Generators.grid 3 4 in
  let receiver = 11 in
  (* two samplers: mostly-solvable small antichains plus larger ones whose
     instances need deeper views, so the ladder has a visible gradient *)
  let structures =
    List.init 15 (fun _ ->
        Builders.random_antichain rng g ~dealer:0 ~sets:3 ~max_size:2)
    @ List.init 15 (fun _ ->
          Builders.random_antichain rng g ~dealer:0 ~sets:4 ~max_size:2)
  in
  let diam = Option.value (Connectivity.diameter g) ~default:4 in
  let t =
    Table.create
      [ "knowledge"; "solvable"; "RMT-PKA resilient"; "Z-CPA resilient" ]
  in
  let structures_arr = Array.of_list structures in
  let par_count f =
    let hits = Parsweep.map ~domains:(sweep_domains ()) f structures_arr in
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 hits
  in
  (* resilience = correct under the honest run and every (maximal
     corruption set × strategy) combination; Z-CPA uses only ad hoc
     knowledge regardless of the instance's views, so its column is
     constant and shown once against radius-1 *)
  let zcpa_count =
    par_count (fun structure ->
        let inst = Instance.ad_hoc_of ~graph:g ~structure ~dealer:0 ~receiver in
        Solvability.all_correct
          (Solvability.probe_zcpa (Prng.create 50) inst ~x_dealer:1 ~x_fake:2))
  in
  List.iter
    (fun k ->
      let view = View.radius k g in
      let classified =
        Parsweep.map ~domains:(sweep_domains ())
          (fun structure ->
            let inst =
              Instance.make ~graph:g ~structure ~view ~dealer:0 ~receiver
            in
            ( Solvability.partial_knowledge inst = Solvability.Solvable,
              Solvability.all_correct
                (Solvability.probe_rmt_pka inst ~x_dealer:1 ~x_fake:2) ))
          structures_arr
      in
      let solvable =
        Array.fold_left (fun acc (s, _) -> if s then acc + 1 else acc) 0
          classified
      in
      let pka =
        Array.fold_left (fun acc (_, p) -> if p then acc + 1 else acc) 0
          classified
      in
      Table.add_row t
        [
          Printf.sprintf "radius-%d%s" k (if k >= diam then " (=full)" else "");
          Table.cell_ratio solvable (List.length structures);
          Table.cell_ratio pka (List.length structures);
          (if k = 1 then Table.cell_ratio zcpa_count (List.length structures)
           else "-");
        ])
    (List.init (diam + 1) Fun.id);
  Table.print
    ~title:
      "paper claim: solvability grows with knowledge; RMT-PKA's resilience \
       tracks the solvable column at every level (uniqueness); Z-CPA is \
       pinned to its ad hoc level (constant column, shown at radius-1)"
    t

(* ------------------------------------------------------------------ *)
(* E6 — complexity: 𝒵-CPA polynomial, RMT-PKA exponential              *)
(* ------------------------------------------------------------------ *)

let e6 () =
  section "E6 — cost scaling on the layered family (width 3, growing depth)";
  let t =
    Table.create
      [
        "n"; "Z-CPA rounds"; "Z-CPA msgs"; "Z-CPA oracle calls"; "Dolev msgs";
        "RMT-PKA msgs"; "RMT-PKA trunc";
      ]
  in
  List.iter
    (fun (n, inst) ->
      let z = Zcpa.run inst ~x_dealer:1 in
      let dolev =
        Rmt_protocols.Dolev.run inst.Instance.graph ~dealer:inst.dealer
          ~receiver:inst.receiver ~x_dealer:1
      in
      let pka_cell, trunc_cell =
        if n <= 14 then begin
          let p = Rmt_pka.run ~max_messages:400_000 inst ~x_dealer:1 in
          (Table.cell_int p.messages, Table.cell_bool p.truncated)
        end
        else ("skipped", "-")
      in
      Table.add_row t
        [
          Table.cell_int n;
          Table.cell_int z.rounds;
          Table.cell_int z.messages;
          Table.cell_int z.oracle_calls;
          Table.cell_int dolev.messages;
          pka_cell;
          trunc_cell;
        ])
    (Workload.scaling_family ~width:3 ~max_depth:10);
  Table.print
    ~title:
      "paper claim: Z-CPA costs grow linearly in n (given the membership \
       oracle); RMT-PKA's path flooding grows exponentially with depth — \
       the efficiency gap motivating Section 5"
    t

(* ------------------------------------------------------------------ *)
(* E7 — the self-reduction (Theorem 9)                                 *)
(* ------------------------------------------------------------------ *)

let e7 () =
  section "E7 — 𝒵-CPA with the membership check simulated through Π (Thm 9)";
  let suite = Workload.ad_hoc_suite (Prng.create 707) ~count:25 ~n:8 in
  let t =
    Table.create
      [ "instance"; "direct"; "simulated Π=Z-CPA"; "simulated Π=RMT-PKA"; "agree" ]
  in
  let agreements = ref 0 in
  List.iter
    (fun { Workload.label; instance } ->
      let direct = (Zcpa.run instance ~x_dealer:5).decided in
      let sim_zcpa =
        (Zcpa.run ~decider:(Self_reduction.simulated_decider instance) instance
           ~x_dealer:5)
          .decided
      in
      let sim_pka =
        (Zcpa.run
           ~decider:
             (Self_reduction.simulated_decider ~pi:Self_reduction.rmt_pka_pi
                instance)
           instance ~x_dealer:5)
          .decided
      in
      let agree = direct = sim_zcpa && direct = sim_pka in
      if agree then incr agreements;
      Table.add_row t
        [
          label; dec_str direct; dec_str sim_zcpa; dec_str sim_pka;
          Table.cell_bool agree;
        ])
    suite;
  Table.print
    ~title:
      (Printf.sprintf
         "paper claim: the simulation-based decision protocol is equivalent \
          to the direct membership oracle — agreement %d/%d"
         !agreements (List.length suite))
    t

(* ------------------------------------------------------------------ *)
(* E8 — minimal knowledge frontier                                     *)
(* ------------------------------------------------------------------ *)

let e8 () =
  section "E8 — minimal knowledge radius per topology (§3.1)";
  let rng = Prng.create 808 in
  let t =
    Table.create [ "topology"; "structure"; "diameter"; "minimal radius" ]
  in
  List.iter
    (fun (name, g, dealer, receiver) ->
      let diam = Option.value (Connectivity.diameter g) ~default:0 in
      let structures =
        [
          ("thr-1", Builders.global_threshold g ~dealer 1);
          ( "rand",
            Builders.random_antichain rng g ~dealer ~sets:4
              ~max_size:(max 1 (Graph.num_nodes g / 4)) );
        ]
      in
      List.iter
        (fun (sname, structure) ->
          let k =
            Minimal_knowledge.minimal_radius ~graph:g ~structure ~dealer
              ~receiver ()
          in
          Table.add_row t
            [
              name; sname; Table.cell_int diam;
              (match k with
               | Some k -> Table.cell_int k
               | None -> "unsolvable");
            ])
        structures)
    (Workload.named_topologies ());
  Table.print
    ~title:
      "paper by-product: the RMT-cut decider locates the least knowledge \
       that makes each instance solvable (or proves none does)"
    t

(* ------------------------------------------------------------------ *)
(* E9 — broadcast coverage (Definition 10)                             *)
(* ------------------------------------------------------------------ *)

let e9 () =
  section "E9 — Reliable Broadcast coverage (Def 10; the problem RMT refines)";
  let rng = Prng.create 909 in
  let t =
    Table.create
      [ "topology"; "structure"; "broadcast"; "blocked nodes"; "Z-CPA deciders" ]
  in
  List.iter
    (fun (name, g, dealer, receiver) ->
      let structures =
        [
          ("thr-1", Builders.global_threshold g ~dealer 1);
          ( "rand",
            Builders.random_antichain rng g ~dealer ~sets:4
              ~max_size:(max 1 (Graph.num_nodes g / 4)) );
        ]
      in
      List.iter
        (fun (sname, structure) ->
          let inst = Instance.ad_hoc_of ~graph:g ~structure ~dealer ~receiver in
          let feas =
            Format.asprintf "%a" Solvability.pp_feasibility
              (Broadcast.solvable inst)
          in
          let blocked = Broadcast.blocked_nodes inst in
          let r = Broadcast.run inst ~x_dealer:1 in
          Table.add_row t
            [
              name; sname; feas;
              Printf.sprintf "%d/%d" (Nodeset.size blocked)
                (Graph.num_nodes g - 1);
              Table.cell_ratio r.deciders r.honest;
            ])
        structures)
    (Util.list_take 6 (Workload.named_topologies ()));
  Table.print
    ~title:
      "context claim ([13] via Thms 7+8): broadcast is solvable iff no node        is blocked; the honest Z-CPA run reaches everyone outside the blocked        set"
    t

(* ------------------------------------------------------------------ *)
(* E10 — Byzantine-resilient topology discovery (conclusion)           *)
(* ------------------------------------------------------------------ *)

let e10 () =
  section "E10 — topology discovery from type-2 floods (future-work feature)";
  let rng = Prng.create 1010 in
  let g = Generators.grid 3 4 in
  let inst =
    Instance.ad_hoc_of ~graph:g
      ~structure:(Builders.global_threshold g ~dealer:0 3)
      ~dealer:0 ~receiver:11
  in
  let t =
    Table.create
      [
        "corrupted"; "strategy"; "true edges found"; "false edges"; "phantoms";
        "conflicted";
      ]
  in
  let row label corrupted adversary =
    let db = Discovery.observe ~adversary inst ~observer:11 in
    let acc = Discovery.score inst db in
    Table.add_row t
      [
        (if Nodeset.is_empty corrupted then "-" else Nodeset.to_string corrupted);
        label;
        Table.cell_ratio acc.confirmed_true acc.true_edges;
        Table.cell_int acc.confirmed_false;
        Table.cell_int acc.phantom_nodes;
        Table.cell_int (Nodeset.size (Discovery.conflicted db));
      ]
  in
  row "honest" Nodeset.empty Rmt_net.Engine.no_adversary;
  List.iter
    (fun k ->
      let corrupted =
        Prng.sample rng
          (Nodeset.remove 0 (Nodeset.remove 11 (Graph.nodes g)))
          k
      in
      row "silent" corrupted (Strategies.pka_silent corrupted);
      row "topology-liar" corrupted
        (Strategies.pka_topology_liar inst ~x_dealer:0 corrupted);
      row "fuzz" corrupted
        (Strategies.pka_fuzz (Prng.split rng) inst ~x_dealer:0 corrupted))
    [ 1; 2; 3 ];
  Table.print
    ~title:
      "claim: bilateral confirmation never admits a fake edge (both        endpoints would have to be corrupted); silence only hides the        corrupted nodes' own links; conflicts expose interference"
    t

(* ------------------------------------------------------------------ *)
(* E11 — exhaustive tightness on small worlds                          *)
(* ------------------------------------------------------------------ *)

(* Every adversary structure with at most two maximal sets over the
   non-dealer nodes of a small graph — no sampling, no blind spots. *)
let all_two_set_structures ground =
  let subsets = ref [] in
  Nodeset.subsets_iter ground (fun z -> subsets := z :: !subsets);
  let subsets = Array.of_list !subsets in
  let n = Array.length subsets in
  let out = ref [] in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      out := Structure.of_sets ~ground [ subsets.(i); subsets.(j) ] :: !out
    done
  done;
  (* antichain reduction may collapse equal structures; deduplicate *)
  List.sort_uniq
    (fun a b -> compare (Structure.to_string a) (Structure.to_string b))
    !out

let e11 () =
  section "E11 — exhaustive tightness: every ≤2-set structure on small graphs";
  let t =
    Table.create
      [ "graph"; "structures"; "solvable"; "unsolvable"; "mismatches" ]
  in
  List.iter
    (fun (name, g, receiver) ->
      let ground = Nodeset.remove 0 (Graph.nodes g) in
      let structures = all_two_set_structures ground in
      let solvable = ref 0 and unsolvable = ref 0 and mismatches = ref 0 in
      List.iter
        (fun structure ->
          let inst = Instance.ad_hoc_of ~graph:g ~structure ~dealer:0 ~receiver in
          match Solvability.partial_knowledge inst with
          | Solvability.Solvable ->
            incr solvable;
            let probe = Solvability.probe_rmt_pka inst ~x_dealer:1 ~x_fake:2 in
            if not (Solvability.all_correct probe) then incr mismatches
          | Solvability.Unsolvable ->
            incr unsolvable;
            (match (Cut.find_rmt_cut inst).cut_found with
             | None -> incr mismatches
             | Some w ->
               let v = Attack.against_rmt_pka inst w ~x0:0 ~x1:1 in
               if v.decision_e <> None || v.decision_e' <> None then
                 incr mismatches)
          | Solvability.Unknown -> incr mismatches)
        structures;
      Table.add_row t
        [
          name;
          Table.cell_int (List.length structures);
          Table.cell_int !solvable;
          Table.cell_int !unsolvable;
          Table.cell_int !mismatches;
        ])
    [
      ("cycle-5", Generators.cycle 5, 2);
      ("path-4", Generators.path_graph 4, 3);
      ("diamond+tail", Graph.of_edges [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4) ], 4);
    ];
  Table.print
    ~title:
      "paper claim, checked without sampling: behavior matches the RMT-cut        verdict for EVERY structure with ≤2 maximal sets (mismatches = 0)"
    t

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablations () =
  section "A — ablations of the implementation choices (DESIGN.md §4)";
  (* A1: incremental Z_B threading vs naive recomputation *)
  let t1 = Table.create [ "instance"; "incremental"; "naive recompute"; "speedup" ] in
  List.iter
    (fun (name, g, receiver) ->
      (* use solvable instances so the enumeration is exhaustive — the
         worst (and common) case for the decider *)
      let structure =
        Builders.global_threshold g ~dealer:0 1
      in
      let inst =
        Instance.make ~graph:g ~structure ~view:(View.radius 2 g) ~dealer:0
          ~receiver
      in
      let time f =
        let (_, s) = Timing.time_it (fun () -> List.init 5 (fun _ -> f inst)) in
        s /. 5.
      in
      let inc = time Cut.find_rmt_cut in
      let naive = time Cut.find_rmt_cut_naive in
      Table.add_row t1
        [
          name;
          Printf.sprintf "%.2f ms" (inc *. 1e3);
          Printf.sprintf "%.2f ms" (naive *. 1e3);
          Printf.sprintf "%.1fx" (naive /. max 1e-9 inc);
        ])
    [
      ("layered-3x2", Generators.layered ~width:3 ~depth:2, 7);
      ("layered-3x3", Generators.layered ~width:3 ~depth:3, 10);
      ("layered-4x3", Generators.layered ~width:4 ~depth:3, 13);
    ];
  Table.print ~title:"A1 — RMT-cut decider: threading Z_B beats recomputation" t1;
  (* A2: ⊕ cost vs antichain size *)
  let t2 = Table.create [ "antichain sizes"; "join time"; "result maximal sets" ] in
  let rng = Prng.create 222 in
  List.iter
    (fun sets ->
      let s1 = random_structure rng ~universe:18 ~sets ~max_size:6 in
      let s2 = random_structure rng ~universe:18 ~sets ~max_size:6 in
      let (j, secs) =
        Timing.time_it (fun () ->
            let j = ref (Joint.join s1 s2) in
            for _ = 2 to 50 do
              j := Joint.join s1 s2
            done;
            !j)
      in
      Table.add_row t2
        [
          Printf.sprintf "%dx%d" (Structure.num_maximal s1)
            (Structure.num_maximal s2);
          Printf.sprintf "%.1f µs" (secs /. 50. *. 1e6);
          Table.cell_int (Structure.num_maximal j);
        ])
    [ 4; 8; 16; 32; 64 ];
  Table.print ~title:"A2 — ⊕ join scales with the antichain product" t2;
  (* A3: RMT-PKA receiver budget sensitivity under a lying adversary *)
  let t3 =
    Table.create [ "subset budget"; "decided"; "truncated"; "time" ]
  in
  let g = Generators.grid 3 4 in
  let inst =
    Instance.make ~graph:g
      ~structure:
        (Builders.from_maximal g ~dealer:0
           [ Nodeset.of_list [ 5 ]; Nodeset.of_list [ 6 ];
             Nodeset.of_list [ 7; 8 ] ])
      ~view:(View.radius 2 g) ~dealer:0 ~receiver:11
  in
  let corrupted = Nodeset.of_list [ 6 ] in
  List.iter
    (fun subset_budget ->
      (* mimic-based strategies are single-run values: rebuild per run *)
      let adversary = Strategies.pka_topology_liar inst ~x_dealer:5 corrupted in
      let budgets = { Rmt_pka.default_budgets with subset_budget } in
      let (r, secs) =
        Timing.time_it (fun () -> Rmt_pka.run ~budgets ~adversary inst ~x_dealer:5)
      in
      Table.add_row t3
        [
          Table.cell_int subset_budget;
          dec_str r.decided;
          Table.cell_bool r.truncated;
          Printf.sprintf "%.1f ms" (secs *. 1e3);
        ])
    [ 1; 4; 16; 64; 256; 4000 ];
  Table.print
    ~title:
      "A3 — receiver search budgets trade liveness for work, never safety:        small budgets report truncation and withhold, they never mis-decide"
    t3

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

(* Shared Bechamel runner: OLS fit per test, (name, ns/run, r²) rows. *)
let run_bechamel ?(quota = 0.5) tests =
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let raw =
    Benchmark.all cfg
      [ Toolkit.Instance.monotonic_clock ]
      (Test.make_grouped ~name:"rmt" tests)
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| "run" |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      let ns =
        match Analyze.OLS.estimates ols with Some (x :: _) -> x | _ -> nan
      in
      let r2 =
        match Analyze.OLS.r_square ols with Some r -> r | None -> nan
      in
      (name, ns, r2) :: acc)
    results []
  |> List.sort compare

let pretty_ns x =
  if x > 1e9 then Printf.sprintf "%.2f s" (x /. 1e9)
  else if x > 1e6 then Printf.sprintf "%.2f ms" (x /. 1e6)
  else if x > 1e3 then Printf.sprintf "%.2f µs" (x /. 1e3)
  else Printf.sprintf "%.0f ns" x

let print_bechamel_rows rows =
  let t = Table.create [ "benchmark"; "time/run"; "r²" ] in
  List.iter
    (fun (name, ns, r2) ->
      Table.add_row t [ name; pretty_ns ns; Printf.sprintf "%.3f" r2 ])
    rows;
  Table.print t

let bechamel () =
  section "Micro-benchmarks (Bechamel, one per experiment)";
  let open Bechamel in
  let rng = Prng.create 909 in
  let s1 = random_structure rng ~universe:16 ~sets:10 ~max_size:6 in
  let s2 = random_structure rng ~universe:16 ~sets:10 ~max_size:6 in
  let sub = Nodeset.range 3 12 in
  let layered =
    Instance.ad_hoc_of
      ~graph:(Generators.layered ~width:3 ~depth:2)
      ~structure:
        (Builders.global_threshold (Generators.layered ~width:3 ~depth:2)
           ~dealer:0 1)
      ~dealer:0 ~receiver:7
  in
  let grid_inst =
    let g = Generators.grid 3 3 in
    Instance.make ~graph:g
      ~structure:(Builders.random_antichain (Prng.create 11) g ~dealer:0 ~sets:4 ~max_size:2)
      ~view:(View.radius 2 g) ~dealer:0 ~receiver:8
  in
  let middle = Nodeset.range 1 5 in
  let basic_structure = Structure.threshold ~ground:middle 1 in
  let tests =
    [
      Test.make ~name:"e1-join" (Staged.stage (fun () -> Joint.join s1 s2));
      Test.make ~name:"e1-restrict"
        (Staged.stage (fun () -> Structure.restrict sub s1));
      Test.make ~name:"e3-rmt-cut-decider"
        (Staged.stage (fun () -> Cut.find_rmt_cut grid_inst));
      Test.make ~name:"e4-zpp-cut-decider"
        (Staged.stage (fun () -> Cut.find_rmt_zpp_cut layered));
      Test.make ~name:"e2-rmt-pka-run"
        (Staged.stage (fun () -> Rmt_pka.run layered ~x_dealer:1));
      Test.make ~name:"e6-zcpa-run"
        (Staged.stage (fun () -> Zcpa.run layered ~x_dealer:1));
      Test.make ~name:"e7-basic-cosimulation"
        (Staged.stage (fun () ->
             let inst =
               Self_reduction.basic_instance ~dealer:0 ~receiver:9 ~middle
                 ~structure:basic_structure
             in
             Attack.co_simulate ~graph:inst.graph ~c1:(Nodeset.of_list [ 1 ])
               ~c2:(Nodeset.of_list [ 2 ])
               (Zcpa.automaton
                  ~decider:(Zcpa.decider_of_oracle (Zcpa.direct_oracle inst))
                  inst ~x_dealer:0)
               (Zcpa.automaton
                  ~decider:(Zcpa.decider_of_oracle (Zcpa.direct_oracle inst))
                  inst ~x_dealer:1)
               ~receiver:9));
      Test.make ~name:"e8-minimal-radius"
        (Staged.stage (fun () ->
             Minimal_knowledge.minimal_radius
               ~graph:grid_inst.Instance.graph
               ~structure:grid_inst.Instance.structure ~dealer:0 ~receiver:8 ()));
    ]
  in
  print_bechamel_rows (run_bechamel tests)

(* ------------------------------------------------------------------ *)
(* Core engine benchmark: packed antichain kernels vs the list baseline *)
(* ------------------------------------------------------------------ *)

(* The pre-overhaul list representation of antichains, kept verbatim as
   the measurement baseline: un-prefiltered O(k²) reduce, linear-scan mem,
   materialize-then-reduce join. *)
module List_antichain = struct
  let reduce sets =
    let sorted = List.sort_uniq Nodeset.compare sets in
    List.filter
      (fun z ->
        not
          (List.exists
             (fun z' -> (not (Nodeset.equal z z')) && Nodeset.subset z z')
             sorted))
      sorted

  let mem z maximal = List.exists (fun m -> Nodeset.subset z m) maximal

  let join (a, max_e) (b, max_f) =
    let candidates =
      List.concat_map
        (fun m1 ->
          List.map
            (fun m2 ->
              Nodeset.union
                (Nodeset.union (Nodeset.diff m1 b) (Nodeset.diff m2 a))
                (Nodeset.inter m1 m2))
            max_f)
        max_e
    in
    reduce candidates
end

(* Antichain of [sets] distinct fixed-size subsets: no set dominates
   another, so the antichain size equals the candidate count. *)
let fixed_size_antichain rng ~universe ~sets ~set_size =
  let ground = Nodeset.range 0 universe in
  let rec distinct acc n =
    if n = 0 then acc
    else
      let z = Prng.sample rng ground set_size in
      if List.exists (Nodeset.equal z) acc then distinct acc n
      else distinct (z :: acc) (n - 1)
  in
  (ground, distinct [] sets)

(* json fragments filled in by [core] and flushed by the driver *)
let core_json_sections : string list ref = ref []

let core () =
  section "CORE — antichain engine micro-benchmarks (packed vs list) and \
           multicore sweep scaling";
  let open Bechamel in
  let rng = Prng.create 4242 in
  let sizes = [ 16; 64; 128 ] in
  let inputs =
    List.map
      (fun k ->
        let ground, sets =
          fixed_size_antichain rng ~universe:24 ~sets:k ~set_size:8
        in
        (* reduce workload: the antichain plus one random proper subset of
           each set — half the candidates are dominated and must go *)
        let dominated =
          List.map (fun z -> Prng.sample rng z (Nodeset.size z - 2)) sets
        in
        (* mem workload: half certain members (subsets of maximal sets),
           half random probes that are almost surely non-members *)
        let queries =
          Array.init 64 (fun i ->
              if i mod 2 = 0 then
                Prng.sample rng (List.nth sets (i mod k)) 5
              else Prng.sample rng ground 8)
        in
        (k, ground, sets, sets @ dominated, queries))
      sizes
  in
  let packed =
    List.map
      (fun (k, ground, sets, _, _) ->
        (k, Structure.of_sets ~ground sets))
      inputs
  in
  let tests =
    List.concat_map
      (fun (k, ground, sets, reduce_input, queries) ->
        let s = List.assoc k packed in
        [
          Test.make
            ~name:(Printf.sprintf "reduce/list/%d" k)
            (Staged.stage (fun () -> List_antichain.reduce reduce_input));
          Test.make
            ~name:(Printf.sprintf "reduce/packed/%d" k)
            (Staged.stage (fun () -> Structure.reduce reduce_input));
          Test.make
            ~name:(Printf.sprintf "mem/list/%d" k)
            (Staged.stage (fun () ->
                 Array.iter
                   (fun z -> ignore (List_antichain.mem z sets))
                   queries));
          Test.make
            ~name:(Printf.sprintf "mem/packed/%d" k)
            (Staged.stage (fun () ->
                 Array.iter (fun z -> ignore (Structure.mem z s)) queries));
          Test.make
            ~name:(Printf.sprintf "join/list/%d" k)
            (Staged.stage (fun () ->
                 List_antichain.join (ground, sets) (ground, sets)));
          Test.make
            ~name:(Printf.sprintf "join/packed/%d" k)
            (Staged.stage (fun () -> Joint.join s s));
        ])
      inputs
  in
  let decider_tests =
    let grid_inst =
      let g = Generators.grid 3 4 in
      Instance.make ~graph:g
        ~structure:
          (Builders.random_antichain (Prng.create 11) g ~dealer:0 ~sets:6
             ~max_size:3)
        ~view:(View.radius 2 g) ~dealer:0 ~receiver:11
    in
    let layered =
      let g = Generators.layered ~width:3 ~depth:3 in
      Instance.ad_hoc_of ~graph:g
        ~structure:(Builders.global_threshold g ~dealer:0 1)
        ~dealer:0 ~receiver:10
    in
    [
      Test.make ~name:"cut/rmt"
        (Staged.stage (fun () -> Cut.find_rmt_cut grid_inst));
      Test.make ~name:"cut/rmt-naive"
        (Staged.stage (fun () -> Cut.find_rmt_cut_naive grid_inst));
      Test.make ~name:"cut/zpp"
        (Staged.stage (fun () -> Cut.find_rmt_zpp_cut layered));
    ]
  in
  let hc_tests =
    (* hit path: the working set is already consed (warmed below), so
       every Hc.set is a weak-table lookup; miss path: Hc.clear first,
       so every cons allocates a fresh canonical cell *)
    let hc_sets =
      match List.find_opt (fun (k, _, _, _, _) -> k = 64) inputs with
      | Some (_, _, sets, _, _) -> sets
      | None -> []
    in
    List.iter (fun z -> ignore (Hc.set z)) hc_sets;
    [
      Test.make ~name:"hc/cons-hit"
        (Staged.stage (fun () ->
             List.iter (fun z -> ignore (Hc.set z)) hc_sets));
      Test.make ~name:"hc/cons-miss"
        (Staged.stage (fun () ->
             Hc.clear ();
             List.iter (fun z -> ignore (Hc.set z)) hc_sets));
    ]
  in
  let delta_tests =
    (* single-set growth delta against the 128-antichain: the acceptance
       comparison for join_delta is this row vs rmt/join/packed/128 *)
    let s128 = List.assoc 128 packed in
    let prev = Joint.join s128 s128 in
    (* a 9-element sample can never be dominated by the size-8 antichain,
       so the delta genuinely adds one maximal set *)
    let s128' =
      Structure.add_set (Prng.sample rng (Structure.ground s128) 9) s128
    in
    [
      Test.make ~name:"delta/join/128"
        (Staged.stage (fun () ->
             Joint.join_delta ~prev ~e:s128 ~f:s128 ~e':s128' ~f':s128));
    ]
  in
  (* 2s quota (vs the 0.5s default): the 16-set mem/reduce rows finish in
     tens of ns, and at 0.5s the OLS fit on them was mush (r² ≈ 0.1) *)
  let rows =
    run_bechamel ~quota:2.0 (tests @ hc_tests @ delta_tests @ decider_tests)
  in
  print_bechamel_rows rows;
  (* packed-vs-list speedups per (operation, antichain size) *)
  let ns_of name =
    match List.find_opt (fun (n, _, _) -> n = "rmt/" ^ name) rows with
    | Some (_, ns, _) -> ns
    | None -> nan
  in
  let speedups =
    List.concat_map
      (fun k ->
        List.map
          (fun op ->
            let list_ns = ns_of (Printf.sprintf "%s/list/%d" op k) in
            let packed_ns = ns_of (Printf.sprintf "%s/packed/%d" op k) in
            (op, k, list_ns, packed_ns, list_ns /. packed_ns))
          [ "reduce"; "mem"; "join" ])
      sizes
  in
  let t = Table.create [ "operation"; "antichain"; "list"; "packed"; "speedup" ] in
  List.iter
    (fun (op, k, list_ns, packed_ns, s) ->
      Table.add_row t
        [
          op; Table.cell_int k; pretty_ns list_ns; pretty_ns packed_ns;
          Printf.sprintf "%.1fx" s;
        ])
    speedups;
  Table.print ~title:"packed antichain kernels vs the list baseline" t;
  (* incremental ⊕ headline: join_delta on a single-set growth delta vs
     recomputing the 128-antichain join from scratch *)
  let delta_ns = ns_of "delta/join/128" in
  let join128_ns = ns_of "join/packed/128" in
  let delta_speedup = join128_ns /. delta_ns in
  Printf.printf
    "\njoin_delta (1 added set) %s vs join/packed/128 %s — %.1fx\n"
    (pretty_ns delta_ns) (pretty_ns join128_ns) delta_speedup;
  (* multicore sweep scaling on the E3 classification workload *)
  let suite =
    Array.of_list (Workload.tightness_suite (Prng.create 303) ~count:60 ~n:9)
  in
  let runs =
    let wanted = [ 1; 2; 4 ] in
    let rec uniq = function
      | [] -> []
      | d :: rest -> d :: uniq (List.filter (( <> ) d) rest)
    in
    uniq (wanted @ [ Parsweep.recommended_domains () ])
  in
  let timings =
    List.map
      (fun d ->
        let results, secs = Timing.time_with_domains ~domains:d e3_classify suite in
        (d, secs, results))
      runs
  in
  let _, _, reference = List.hd timings in
  let deterministic =
    List.for_all (fun (_, _, r) -> r = reference) timings
  in
  let t = Table.create [ "domains"; "wall-clock"; "speedup vs 1" ] in
  let base = match timings with (_, s, _) :: _ -> s | [] -> nan in
  List.iter
    (fun (d, secs, _) ->
      Table.add_row t
        [
          Table.cell_int d;
          Printf.sprintf "%.2f s" secs;
          Printf.sprintf "%.2fx" (base /. secs);
        ])
    timings;
  Table.print
    ~title:
      (Printf.sprintf
         "E3 sweep (60 instances) under the multicore driver — results \
          %s across domain counts; %d core(s) available"
         (if deterministic then "bit-for-bit identical" else "DIVERGED (bug!)")
         (Parsweep.recommended_domains ()))
    t;
  (* streaming solvability service: a deterministic cyclic delta stream
     toggling a same-layer edge that never touches the RMT cut, so every
     update bumps the generation yet every query settles by revalidating
     the previous witness (Cut.update's cheap regime) instead of
     re-searching — the sustained updates/sec at memoized cost *)
  let service_updates = 400 in
  let svc_stats, svc_secs =
    let g = Generators.layered ~width:3 ~depth:3 in
    let inst =
      Instance.ad_hoc_of ~graph:g
        ~structure:(Builders.global_threshold g ~dealer:0 1)
        ~dealer:0 ~receiver:10
    in
    let svc = Service.create inst in
    (* one setup delta makes the instance unsolvable with a cut witness *)
    (match Service.apply svc (Delta.Add_set (Nodeset.of_list [ 4; 5 ])) with
     | Ok () -> ()
     | Error m -> failwith ("service bench: " ^ m));
    ignore (Service.solvable svc);
    let (), secs =
      Timing.time_it (fun () ->
          for i = 0 to service_updates - 1 do
            let d =
              if i mod 2 = 0 then Delta.Add_edge (1, 2)
              else Delta.Remove_edge (1, 2)
            in
            (match Service.apply svc d with
             | Ok () -> ()
             | Error m -> failwith ("service bench: " ^ m));
            ignore (Service.solvable svc)
          done)
    in
    (Service.stats svc, secs)
  in
  let updates_per_sec = float_of_int service_updates /. svc_secs in
  let t =
    Table.create
      [ "updates"; "queries"; "wall-clock"; "updates/sec"; "witness reuse";
        "searches" ]
  in
  Table.add_row t
    [
      Table.cell_int svc_stats.Service.updates;
      Table.cell_int svc_stats.Service.queries;
      Printf.sprintf "%.3f s" svc_secs;
      Printf.sprintf "%.0f" updates_per_sec;
      Table.cell_int svc_stats.Service.witness_reuses;
      Table.cell_int svc_stats.Service.searches;
    ];
  Table.print
    ~title:
      "streaming solvability service — update+query round-trips at \
       memoized cost"
    t;
  (* machine-readable record *)
  let micro_json =
    String.concat ",\n    "
      (List.map
         (fun (name, ns, r2) ->
           Printf.sprintf "{\"name\": %S, \"ns_per_run\": %.1f, \"r2\": %.4f}"
             name ns r2)
         rows)
  in
  let speedup_json =
    String.concat ",\n    "
      (List.map
         (fun (op, k, list_ns, packed_ns, s) ->
           Printf.sprintf
             "{\"op\": %S, \"antichain\": %d, \"list_ns\": %.1f, \
              \"packed_ns\": %.1f, \"speedup\": %.2f}"
             op k list_ns packed_ns s)
         speedups)
  in
  let sweep_json =
    Printf.sprintf
      "{\"instances\": %d, \"deterministic\": %b, \"runs\": [%s]}"
      (Array.length suite) deterministic
      (String.concat ", "
         (List.map
            (fun (d, secs, _) ->
              Printf.sprintf "{\"domains\": %d, \"seconds\": %.3f}" d secs)
            timings))
  in
  let delta_json =
    Printf.sprintf
      "{\"delta_ns\": %.1f, \"join128_ns\": %.1f, \"speedup\": %.2f}"
      delta_ns join128_ns delta_speedup
  in
  let service_json =
    Printf.sprintf
      "{\"updates\": %d, \"queries\": %d, \"seconds\": %.4f, \
       \"updates_per_sec\": %.1f, \"witness_reuses\": %d, \"searches\": \
       %d, \"cached\": %d}"
      svc_stats.Service.updates svc_stats.Service.queries svc_secs
      updates_per_sec svc_stats.Service.witness_reuses
      svc_stats.Service.searches svc_stats.Service.cached
  in
  core_json_sections :=
    [
      Printf.sprintf "\"micro\": [\n    %s\n  ]" micro_json;
      Printf.sprintf "\"kernel_speedups\": [\n    %s\n  ]" speedup_json;
      Printf.sprintf "\"join_delta\": %s" delta_json;
      Printf.sprintf "\"sweep\": %s" sweep_json;
      Printf.sprintf "\"service\": %s" service_json;
    ]

(* ------------------------------------------------------------------ *)
(* ATTACK — adversarial fuzzing campaigns over the checked-in instances *)
(* ------------------------------------------------------------------ *)

module Campaign = Rmt_attack.Campaign

let attack_seed = 2016
let attack_count = 60

(* json fragments filled in by [attack] and flushed by the driver *)
let attack_json_sections : string list ref = ref []

let attack_instances () =
  let dir = "instances" in
  let from_files =
    if Sys.file_exists dir && Sys.is_directory dir then
      Sys.readdir dir |> Array.to_list |> List.sort compare
      |> List.filter (fun f -> Filename.check_suffix f ".rmt")
      |> List.filter_map (fun f ->
             match Codec.of_file (Filename.concat dir f) with
             | Ok inst -> Some (Filename.chop_suffix f ".rmt", inst)
             | Error _ -> None)
    else []
  in
  if from_files <> [] then from_files
  else begin
    (* running outside the repo root: one synthetic stand-in *)
    let g = Generators.layered ~width:3 ~depth:2 in
    let receiver =
      List.fold_left
        (fun (bv, bd) (v, d) -> if d > bd then (v, d) else (bv, bd))
        (0, 0)
        (Connectivity.distances_from g 0)
      |> fst
    in
    [
      ( "layered_3x2",
        Instance.ad_hoc_of ~graph:g
          ~structure:(Builders.global_threshold g ~dealer:0 1)
          ~dealer:0 ~receiver );
    ]
  end

let attack () =
  section
    (Printf.sprintf
       "ATTACK — seeded fuzzing campaigns (%d programs per protocol, seed %d)"
       attack_count attack_seed);
  let t =
    Table.create
      [
        "instance"; "protocol"; "feasibility"; "delivered"; "silenced";
        "violated"; "liveness lost"; "SAFETY VIOLATIONS";
      ]
  in
  let protocols = Campaign.[ Pka; Ppa; Zcpa ] in
  let fragments =
    List.concat_map
      (fun (name, inst) ->
        List.map
          (fun p ->
            let r =
              Campaign.run ~domains:(sweep_domains ()) ~seed:attack_seed
                ~attacks:attack_count p inst
            in
            let nviol = List.length r.Campaign.safety_violations in
            Table.add_row t
              [
                name;
                Campaign.protocol_to_string p;
                Format.asprintf "%a" Solvability.pp_feasibility
                  r.Campaign.solvability;
                Table.cell_int r.Campaign.delivered;
                Table.cell_int r.Campaign.silenced;
                Table.cell_int r.Campaign.violated;
                Table.cell_int r.Campaign.liveness_lost;
                Table.cell_int nviol;
              ];
            Printf.sprintf
              "{\"instance\": %S, \"protocol\": %S, \"feasibility\": %S, \
               \"attacks\": %d, \"delivered\": %d, \"silenced\": %d, \
               \"violated\": %d, \"liveness_lost\": %d, \
               \"safety_violations\": %d}"
              name
              (Campaign.protocol_to_string p)
              (Format.asprintf "%a" Solvability.pp_feasibility
                 r.Campaign.solvability)
              r.Campaign.attacks r.Campaign.delivered r.Campaign.silenced
              r.Campaign.violated r.Campaign.liveness_lost nviol)
          protocols)
      (attack_instances ())
  in
  Table.print
    ~title:
      "paper claim (Thm 4): 0 safety violations on every instance; silence \
       on unsolvable ones witnesses the cut"
    t;
  attack_json_sections :=
    [
      Printf.sprintf "\"seed\": %d" attack_seed;
      Printf.sprintf "\"attacks_per_campaign\": %d" attack_count;
      Printf.sprintf "\"campaigns\": [\n    %s\n  ]"
        (String.concat ",\n    " fragments);
    ]

(* ------------------------------------------------------------------ *)
(* SIM — simulator overhead vs the synchronous engine                  *)
(* ------------------------------------------------------------------ *)

(* json fragments filled in by [sim] and flushed by the driver *)
let sim_json_sections : string list ref = ref []

let sim () =
  section
    "SIM — deterministic simulator: overhead vs the engine, sweep throughput";
  let name, inst = List.hd (attack_instances ()) in
  Printf.printf "  instance: %s\n" name;
  let open Bechamel in
  let protocols =
    Campaign.[ ("pka", Pka); ("ppa", Ppa); ("zcpa", Zcpa) ]
  in
  let program = Rmt_attack.Program.make ~seed:attack_seed [] in
  (* policies are single-run values: build a fresh one inside every
     staged run so Bechamel's repetitions stay legal *)
  let tests =
    List.concat_map
      (fun (pname, p) ->
        [
          Test.make
            ~name:(Printf.sprintf "sim/engine/%s" pname)
            (Staged.stage (fun () ->
                 Campaign.execute p inst ~x_dealer:5 program));
          Test.make
            ~name:(Printf.sprintf "sim/sync/%s" pname)
            (Staged.stage (fun () ->
                 Rmt_sim.Sim_exec.execute ~policy:Rmt_sim.Policy.sync p inst
                   ~x_dealer:5 program));
          Test.make
            ~name:(Printf.sprintf "sim/timely/%s" pname)
            (Staged.stage (fun () ->
                 Rmt_sim.Sim_exec.execute
                   ~policy:
                     (Rmt_sim.Policy.random (Prng.create 7)
                        Rmt_sim.Policy.timely_params)
                   p inst ~x_dealer:5 program));
        ])
      protocols
  in
  (* 2s quota (vs the 0.5s default), as for the core rows: at 0.5s the
     OLS fit on the engine/ppa and sync/zcpa rows was noise (r² ≈ 0.46
     and 0.48), so check_regression's r² < 0.5 rule silently skipped
     them and those baselines gated nothing *)
  let rows = run_bechamel ~quota:2.0 tests in
  print_bechamel_rows rows;
  (* sweep throughput: seeded (program, schedule) trials per second *)
  let sweep_trials = 200 in
  let report, secs =
    Timing.time_it (fun () ->
        Rmt_sim.Sweep.run ~domains:(sweep_domains ()) ~seed:attack_seed
          ~schedules:sweep_trials Campaign.Pka inst)
  in
  let throughput = float_of_int report.Rmt_sim.Sweep.schedules /. secs in
  Printf.printf
    "  sweep: %d timely schedules in %.2fs (%.0f/s), %d safety violations\n"
    report.Rmt_sim.Sweep.schedules secs throughput
    (List.length report.Rmt_sim.Sweep.safety_violations);
  let micro_json =
    String.concat ",\n    "
      (List.map
         (fun (bname, ns, r2) ->
           Printf.sprintf "{\"name\": %S, \"ns_per_run\": %.1f, \"r2\": %.4f}"
             bname ns r2)
         rows)
  in
  sim_json_sections :=
    [
      Printf.sprintf "\"instance\": %S" name;
      Printf.sprintf "\"micro\": [\n    %s\n  ]" micro_json;
      Printf.sprintf
        "\"sweep\": {\"schedules\": %d, \"seconds\": %.3f, \
         \"per_second\": %.1f, \"safety_violations\": %d}"
        report.Rmt_sim.Sweep.schedules secs throughput
        (List.length report.Rmt_sim.Sweep.safety_violations);
    ]

(* ------------------------------------------------------------------ *)
(* NET — transport backends: synchronous rounds at scale               *)
(* ------------------------------------------------------------------ *)

(* json fragments filled in by [net] and flushed by the driver *)
let net_json_sections : string list ref = ref []

module Mcast = Rmt_net.Mcast

(* heartbeat: every node multicasts a round counter to all neighbors
   for [beats] rounds, then decides — n(n-1) deliveries per round on
   the complete graph, the raw message-throughput stressor *)
let heartbeat_automaton g ~beats =
  let open Rmt_net.Engine in
  let broadcast v x =
    Nodeset.fold
      (fun u acc -> { dst = u; payload = x } :: acc)
      (Graph.neighbors v g) []
  in
  {
    init = (fun v -> (ref 0, broadcast v 0));
    step =
      (fun v st ~round ~inbox:_ ->
        st := round;
        if round < beats then (st, broadcast v round) else (st, []));
    decision = (fun st -> if !st >= beats then Some !st else None);
  }

(* flood: node 0 originates a value, everyone adopts the first value
   heard and forwards it once — the decision-latency workload (every
   player decides, at its hop distance) *)
type net_gossip = { mutable value : int option }

let flood_automaton g ~origin ~value =
  let open Rmt_net.Engine in
  let broadcast v x =
    Nodeset.fold
      (fun u acc -> { dst = u; payload = x } :: acc)
      (Graph.neighbors v g) []
  in
  {
    init =
      (fun v ->
        if v = origin then ({ value = Some value }, broadcast v value)
        else ({ value = None }, []));
    step =
      (fun v st ~round:_ ~inbox ->
        match (st.value, inbox) with
        | None, (_, x) :: _ ->
          st.value <- Some x;
          (st, broadcast v x)
        | _ -> (st, []));
    decision = (fun st -> st.value);
  }

let net () =
  section "NET — transport backends: synchronous rounds at scale";
  let domains_avail = Mcast.recommended_domains () in
  (* n = 200 complete graph, 25 beats: ~1M delivered messages per run *)
  let hb_n = 200 and beats = 25 in
  let hb_g = Generators.complete hb_n in
  let hb = heartbeat_automaton hb_g ~beats in
  let fl_g = Generators.layered ~width:10 ~depth:15 in
  let fl_n = Graph.num_nodes fl_g in
  let fl = flood_automaton fl_g ~origin:0 ~value:7 in
  Printf.printf
    "  workloads: heartbeat (complete n=%d, %d rounds), flood (layered \
     n=%d)\n"
    hb_n beats fl_n;
  let exec ~domains g automaton =
    match domains with
    | None ->
      Rmt_net.Engine.run ~graph:g ~adversary:Rmt_net.Engine.no_adversary
        automaton
    | Some d ->
      Mcast.run ~domains:d ~graph:g ~adversary:Rmt_net.Engine.no_adversary
        automaton
  in
  (* single-domain rows are the gated baselines (rmt/net/); the
     multi-domain rows depend on the runner's core count and are
     informational only (net-info/) *)
  let cases =
    let multi =
      let rec uniq = function
        | [] -> []
        | d :: rest -> d :: uniq (List.filter (( <> ) d) rest)
      in
      List.filter (fun d -> d > 1) (uniq [ 2; 4; domains_avail ])
    in
    [ ("engine", None); ("mcast1", Some 1) ]
    @ List.map (fun d -> (Printf.sprintf "mcast%d" d, Some d)) multi
  in
  let run_workload wname g automaton =
    List.map
      (fun (bname, domains) ->
        let run () =
          let o = exec ~domains g automaton in
          let open Rmt_net.Transport in
          if o.stats.truncated then
            failwith (Printf.sprintf "net bench: %s/%s truncated" bname wname);
          (o.stats.messages, List.length o.decisions, o.stats.rounds)
        in
        ignore (run ());
        let (msgs, decs, rounds), secs = Timing.time_it run in
        (wname, bname, domains, msgs, decs, rounds, secs))
      cases
  in
  let rows = run_workload "heartbeat" hb_g hb @ run_workload "flood" fl_g fl in
  (* every backend must agree on the outcome before we compare speeds *)
  let deterministic =
    List.for_all
      (fun (w, _, _, m, d, r, _) ->
        List.exists
          (fun (w', b', _, m', d', r', _) ->
            w' = w && b' = "engine" && m = m' && d = d' && r = r')
          rows)
      rows
  in
  if not deterministic then failwith "net bench: backends DIVERGED (bug!)";
  let t =
    Table.create
      [
        "workload"; "backend"; "messages"; "rounds"; "wall-clock";
        "msgs/sec"; "decisions/sec";
      ]
  in
  List.iter
    (fun (w, b, _, msgs, decs, _rounds, secs) ->
      Table.add_row t
        [
          w; b; Table.cell_int msgs;
          Table.cell_int _rounds;
          Printf.sprintf "%.3f s" secs;
          Printf.sprintf "%.2e" (float_of_int msgs /. secs);
          Printf.sprintf "%.0f" (float_of_int decs /. secs);
        ])
    rows;
  Table.print
    ~title:
      (Printf.sprintf
         "transport backends — outcomes bit-for-bit identical; %d core(s) \
          available"
         domains_avail)
    t;
  let single_domain (_, _, domains, _, _, _, _) =
    match domains with None | Some 1 -> true | Some _ -> false
  in
  let micro_json =
    (* single-domain rows live under the tracked rmt/net/ prefix and
       gate CI; multi-domain rows land in the untracked net-info/
       namespace — their timing depends on the runner's core count *)
    String.concat ",\n    "
      (List.map
         (fun ((w, b, _, _, _, _, secs) as row) ->
           Printf.sprintf "{\"name\": \"%s/%s/%s\", \"ns_per_run\": %.1f}"
             (if single_domain row then "rmt/net" else "net-info")
             b w (secs *. 1e9))
         rows)
  in
  let run_json =
    String.concat ",\n    "
      (List.map
         (fun (w, b, domains, msgs, decs, rounds, secs) ->
           Printf.sprintf
             "{\"workload\": %S, \"backend\": %S, \"domains\": %d, \
              \"messages\": %d, \"decisions\": %d, \"rounds\": %d, \
              \"seconds\": %.4f, \"msgs_per_sec\": %.1f, \
              \"decisions_per_sec\": %.1f}"
             w b
             (match domains with None -> 1 | Some d -> d)
             msgs decs rounds secs
             (float_of_int msgs /. secs)
             (float_of_int decs /. secs))
         rows)
  in
  let headline =
    let find b w =
      List.find_map
        (fun (w', b', _, msgs, _, _, secs) ->
          if w' = w && b' = b then Some (float_of_int msgs /. secs) else None)
        rows
      |> Option.value ~default:nan
    in
    Printf.sprintf
      "{\"n\": %d, \"engine_msgs_per_sec\": %.1f, \
       \"mcast1_msgs_per_sec\": %.1f}"
      hb_n (find "engine" "heartbeat") (find "mcast1" "heartbeat")
  in
  net_json_sections :=
    [
      Printf.sprintf "\"micro\": [\n    %s\n  ]" micro_json;
      Printf.sprintf "\"headline\": %s" headline;
      Printf.sprintf "\"deterministic\": %b" deterministic;
      Printf.sprintf "\"runs\": [\n    %s\n  ]" run_json;
    ]

(* ------------------------------------------------------------------ *)
(* LINT — analyzer wall-time and cache effectiveness                   *)
(* ------------------------------------------------------------------ *)

(* json fragments filled in by [lint] and flushed by the driver *)
let lint_json_sections : string list ref = ref []

let lint () =
  section "rmt-lint analyzer: cold vs warm (cmt-digest + summary cache)";
  let module L = Rmt_lint in
  let build_dir = "_build/default" and dirs = [ "lib" ] in
  let run cache =
    Timing.time_it (fun () ->
        match L.Lint.scan_cached ~cache ~build_dir ~dirs with
        | Error e -> failwith ("lint bench: " ^ e)
        | Ok (units, stats, key) ->
          let store, summary_hit =
            L.Lint.store_of ~cache ~key (L.Lint.graph_of units)
          in
          ( List.length (L.Lint.findings_of units store),
            stats,
            summary_hit ))
  in
  let cache = L.Cache.empty () in
  let (cold_findings, _, cold_hit), cold_s = run cache in
  let (warm_findings, warm_stats, warm_hit), warm_s = run cache in
  if cold_findings <> warm_findings then
    failwith "lint bench: warm run changed the findings";
  if cold_hit || not warm_hit then
    failwith "lint bench: summary cache hit pattern should be cold=miss warm=hit";
  let rate = L.Lint.hit_rate warm_stats in
  (* Summary-store inference alone: a cold fixpoint run vs the cache's
     warm of_effects rebuild, on the same whole-program graph. *)
  let graph, effs =
    match L.Lint.scan_cached ~cache ~build_dir ~dirs with
    | Error e -> failwith ("lint bench: " ^ e)
    | Ok (units, _, _) ->
      let graph = L.Lint.graph_of units in
      (graph, L.Summary.all (L.Summary.infer graph))
  in
  let _, infer_s = Timing.time_it (fun () -> L.Summary.infer graph) in
  let _, warm_store_s =
    Timing.time_it (fun () -> L.Summary.of_effects graph effs)
  in
  (* Protocol-model extraction: cold re-walks every typedtree through
     Model.extract, warm assembles from the cached per-unit fragments
     alone (the path `rmt_lint check --model-out` takes on a hit). *)
  let model_cold, model_cold_s =
    Timing.time_it (fun () ->
        match L.Cmt_loader.scan ~build_dir ~dirs with
        | Error e -> failwith ("lint bench: " ^ e)
        | Ok us ->
          L.Model.assemble
            (List.map
               (fun (u : L.Cmt_loader.unit_info) ->
                 L.Model.extract ~source:u.source u.structure)
               us))
  in
  let warm_units =
    match L.Lint.scan_cached ~cache ~build_dir ~dirs with
    | Error e -> failwith ("lint bench: " ^ e)
    | Ok (us, _, _) -> us
  in
  let model_warm, model_warm_s =
    Timing.time_it (fun () -> L.Lint.model_of warm_units)
  in
  if
    not
      (String.equal
         (L.Model.fingerprint model_cold)
         (L.Model.fingerprint model_warm))
  then failwith "lint bench: cold and warm model fingerprints diverge";
  Printf.printf
    "  cold: %.3fs   warm: %.3fs   (%d findings; warm reused %d/%d cmts, \
     %.1f%%)\n\
    \  summaries: infer %.3fs   of_effects %.3fs   (summary cache: cold \
     miss, warm hit)\n\
    \  model: cold %.3fs   warm %.3fs   (%d protocols, fingerprints agree)\n"
    cold_s warm_s cold_findings warm_stats.L.Lint.hits
    warm_stats.L.Lint.lookups rate infer_s warm_store_s model_cold_s
    model_warm_s
    (List.length model_cold.L.Model.protocols);
  lint_json_sections :=
    [
      Printf.sprintf
        "\"micro\": [\n\
        \    {\"name\": \"rmt/lint/cold\", \"ns_per_run\": %.1f},\n\
        \    {\"name\": \"rmt/lint/warm\", \"ns_per_run\": %.1f},\n\
        \    {\"name\": \"rmt/lint/summaries-cold\", \"ns_per_run\": %.1f},\n\
        \    {\"name\": \"rmt/lint/summaries-warm\", \"ns_per_run\": %.1f},\n\
        \    {\"name\": \"rmt/lint/model-cold\", \"ns_per_run\": %.1f},\n\
        \    {\"name\": \"rmt/lint/model-warm\", \"ns_per_run\": %.1f}\n\
        \  ]"
        (cold_s *. 1e9) (warm_s *. 1e9) (infer_s *. 1e9)
        (warm_store_s *. 1e9) (model_cold_s *. 1e9) (model_warm_s *. 1e9);
      Printf.sprintf
        "\"cache\": {\"lookups\": %d, \"hits\": %d, \"hit_rate_percent\": \
         %.1f, \"summary_hit_rate_percent\": %.1f}"
        warm_stats.L.Lint.lookups warm_stats.L.Lint.hits rate
        (if warm_hit then 100.0 else 0.0);
      Printf.sprintf "\"findings\": %d" cold_findings;
      Printf.sprintf "\"model\": {\"protocols\": %d, \"fingerprint\": \"%s\"}"
        (List.length model_cold.L.Model.protocols)
        (L.Model.fingerprint model_cold);
    ]

(* ------------------------------------------------------------------ *)
(* CERTIFIED — certification overhead and the solvability frontier     *)
(* ------------------------------------------------------------------ *)

(* json fragments filled in by [certified] and flushed by the driver *)
let certified_json_sections : string list ref = ref []

let boundary_instance_path = "test/protocols/fixtures/boundary.rmt"

let certified () =
  section
    "CERTIFIED — echo/vote certification: overhead vs raw protocols, \
     frontier sweep throughput";
  let name, inst = List.hd (attack_instances ()) in
  Printf.printf "  instance: %s\n" name;
  let open Bechamel in
  let program = Rmt_attack.Program.make ~seed:attack_seed [] in
  (* cert/<backend>/<p> vs cert/raw/<p>: the certification tier's
     redundant flooding (slots copies, echo votes, tick keep-alive)
     against the unwrapped protocol on the same instance *)
  let pairs =
    Campaign.[ ("pka", Pka, Cert_pka); ("ppa", Ppa, Cert_ppa) ]
  in
  let tests =
    List.concat_map
      (fun (pname, raw, cert) ->
        [
          Test.make
            ~name:(Printf.sprintf "cert/raw/%s" pname)
            (Staged.stage (fun () ->
                 Campaign.execute raw inst ~x_dealer:5 program));
          Test.make
            ~name:(Printf.sprintf "cert/engine/%s" pname)
            (Staged.stage (fun () ->
                 Campaign.execute cert inst ~x_dealer:5 program));
          Test.make
            ~name:(Printf.sprintf "cert/sync/%s" pname)
            (Staged.stage (fun () ->
                 Rmt_sim.Sim_exec.execute ~policy:Rmt_sim.Policy.sync cert
                   inst ~x_dealer:5 program));
        ])
      pairs
  in
  let rows = run_bechamel ~quota:2.0 tests in
  print_bechamel_rows rows;
  (* the solvability-frontier experiment: one in-envelope-to-beyond
     sweep of scheduler strengths, fanned over Parsweep *)
  let frontier_inst =
    match Codec.of_file boundary_instance_path with
    | Ok i -> i
    | Error e ->
      Printf.printf "  (no frontier: %s: %s)\n" boundary_instance_path e;
      inst
  in
  let schedules = 60 in
  let rows_f, secs =
    Timing.time_it (fun () ->
        Rmt_sim.Frontier.run ~domains:(sweep_domains ()) ~seed:19 ~schedules
          ~x_dealer:7 ~x_fake:8 ~envelope:Rmt_protocols.Envelope.default
          Campaign.Cert_pka frontier_inst Rmt_sim.Frontier.default_grid)
  in
  let total = schedules * List.length rows_f in
  let inside_viol, outside_viol =
    List.fold_left
      (fun (i, o) (r : Rmt_sim.Frontier.row) ->
        if r.Rmt_sim.Frontier.in_envelope then
          (i + r.Rmt_sim.Frontier.violated, o)
        else (i, o + r.Rmt_sim.Frontier.violated))
      (0, 0) rows_f
  in
  Printf.printf "  frontier (%d schedules/point, %.2fs, %.0f/s):\n%s" schedules
    secs
    (float_of_int total /. secs)
    (Rmt_sim.Frontier.to_table rows_f);
  let micro_json =
    String.concat ",\n    "
      (List.map
         (fun (bname, ns, r2) ->
           Printf.sprintf "{\"name\": %S, \"ns_per_run\": %.1f, \"r2\": %.4f}"
             bname ns r2)
         rows)
  in
  let frontier_json =
    String.concat ",\n    "
      (List.map
         (fun (r : Rmt_sim.Frontier.row) ->
           Printf.sprintf
             "{\"delay\": %d, \"drops\": %d, \"in_envelope\": %b, \
              \"delivered\": %d, \"silenced\": %d, \"violated\": %d, \
              \"liveness_lost\": %d}"
             r.Rmt_sim.Frontier.point.Rmt_sim.Frontier.delay_bound
             r.Rmt_sim.Frontier.point.Rmt_sim.Frontier.drop_budget
             r.Rmt_sim.Frontier.in_envelope r.Rmt_sim.Frontier.delivered
             r.Rmt_sim.Frontier.silenced r.Rmt_sim.Frontier.violated
             r.Rmt_sim.Frontier.liveness_lost)
         rows_f)
  in
  certified_json_sections :=
    [
      Printf.sprintf "\"instance\": %S" name;
      Printf.sprintf "\"envelope\": %S"
        (Rmt_protocols.Envelope.to_string Rmt_protocols.Envelope.default);
      Printf.sprintf "\"micro\": [\n    %s\n  ]" micro_json;
      Printf.sprintf
        "\"frontier\": {\"schedules_per_point\": %d, \"seconds\": %.3f, \
         \"per_second\": %.1f, \"inside_violations\": %d, \
         \"outside_violations\": %d, \"points\": [\n    %s\n  ]}"
        schedules secs
        (float_of_int total /. secs)
        inside_viol outside_viol frontier_json;
    ]

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("e1", e1); ("e2", e2); ("e2b", e2b); ("e3", e3); ("e4", e4);
    ("e5", e5); ("e6", e6); ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10);
    ("e11", e11); ("ablations", ablations); ("bechamel", bechamel);
    ("core", core); ("attack", attack); ("sim", sim); ("net", net);
    ("lint", lint); ("certified", certified);
  ]

let write_core_json () =
  let path = "BENCH_core.json" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"schema\": \"rmt-bench-core/1\",\n  \"domains_available\": %d,\n  %s\n}\n"
    (Parsweep.recommended_domains ())
    (String.concat ",\n  " !core_json_sections);
  close_out oc;
  Printf.printf "[wrote %s]\n" path

let write_attack_json () =
  let path = "BENCH_attack.json" in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": \"rmt-bench-attack/1\",\n  %s\n}\n"
    (String.concat ",\n  " !attack_json_sections);
  close_out oc;
  Printf.printf "[wrote %s]\n" path

let write_sim_json () =
  let path = "BENCH_sim.json" in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": \"rmt-bench-sim/1\",\n  %s\n}\n"
    (String.concat ",\n  " !sim_json_sections);
  close_out oc;
  Printf.printf "[wrote %s]\n" path

let write_net_json () =
  let path = "BENCH_net.json" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"schema\": \"rmt-bench-net/1\",\n  \"domains_available\": %d,\n  %s\n}\n"
    (Mcast.recommended_domains ())
    (String.concat ",\n  " !net_json_sections);
  close_out oc;
  Printf.printf "[wrote %s]\n" path

let write_certified_json () =
  let path = "BENCH_certified.json" in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": \"rmt-bench-certified/1\",\n  %s\n}\n"
    (String.concat ",\n  " !certified_json_sections);
  close_out oc;
  Printf.printf "[wrote %s]\n" path

let write_lint_json () =
  let path = "BENCH_lint.json" in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": \"rmt-bench-lint/1\",\n  %s\n}\n"
    (String.concat ",\n  " !lint_json_sections);
  close_out oc;
  Printf.printf "[wrote %s]\n" path

let () =
  let flags, names =
    match Array.to_list Sys.argv with
    | [] -> ([], [])
    | _ :: rest ->
      List.partition (fun a -> String.length a >= 2 && String.sub a 0 2 = "--") rest
  in
  List.iter
    (fun flag ->
      match flag with
      | "--json" -> json_mode := true
      | _ when String.length flag > 10 && String.sub flag 0 10 = "--domains=" ->
        (match
           int_of_string_opt (String.sub flag 10 (String.length flag - 10))
         with
         | Some d when d >= 1 -> domains_override := Some d
         | _ ->
           Printf.eprintf "invalid %S (expected --domains=N, N >= 1)\n" flag;
           exit 1)
      | _ ->
        Printf.eprintf "unknown flag %S (known: --json, --domains=N)\n" flag;
        exit 1)
    flags;
  let names =
    match names with
    | [] | "all" :: _ -> List.map fst experiments
    | rest -> rest
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
        let (), seconds = Timing.time_it f in
        Printf.printf "[%s finished in %.2fs]\n" name seconds
      | None ->
        Printf.eprintf "unknown experiment %S (known: %s)\n" name
          (String.concat ", " (List.map fst experiments));
        exit 1)
    names;
  if !json_mode && !core_json_sections <> [] then write_core_json ();
  if !json_mode && !attack_json_sections <> [] then write_attack_json ();
  if !json_mode && !sim_json_sections <> [] then write_sim_json ();
  if !json_mode && !net_json_sections <> [] then write_net_json ();
  if !json_mode && !lint_json_sections <> [] then write_lint_json ();
  if !json_mode && !certified_json_sections <> [] then write_certified_json ()
