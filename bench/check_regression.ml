(* Bench regression gate.

   Compares a freshly generated BENCH_core.json against the committed
   baseline and fails when a tracked kernel (join/reduce, the antichain
   engine's hot paths, plus the hash-cons and incremental-⊕ rows) regressed
   by more than the threshold.

   Usage: check_regression.exe BASELINE CANDIDATE [--threshold=0.25]
            [--prefix-threshold=PREFIX:RATIO]...

   --prefix-threshold overrides the global threshold for rows whose name
   starts with PREFIX (longest matching prefix wins; repeatable).  The
   flag shares the global flag's semantics: a row is a regression when
   candidate/baseline > 1 + RATIO, so RATIO=1.0 gates at 2.0x.

   Baseline rows whose committed OLS fit is poor (r² < 0.5) are skipped:
   a ratio of two noise floors gates nothing and flaps CI.  Rows without
   an "r2" field (older records such as BENCH_lint.json) are always
   compared.

   The record format is the bench harness's own output: one
   {"name": ..., "ns_per_run": ...[, "r2": ...]} object per line inside
   the "micro" array.  No JSON library — the two files are self-printed,
   so a line scanner is exact.

   Exit codes: 0 ok, 1 regression found, 2 usage or parse error. *)

let has_prefix p name =
  let lp = String.length p in
  String.length name >= lp && String.sub name 0 lp = p

let tracked name =
  List.exists
    (fun p -> has_prefix p name)
    [
      "rmt/join/"; "rmt/reduce/"; "rmt/lint/"; "rmt/sim/"; "rmt/hc/";
      "rmt/delta/"; "rmt/net/"; "rmt/cert/";
    ]

let min_r2 = 0.5

(* (name, ns, r2 option) — r2 is None for the older two-field records *)
let parse_micro path =
  let entries = ref [] in
  let ic =
    try open_in path
    with Sys_error e ->
      Printf.eprintf "cannot open %s: %s\n" path e;
      exit 2
  in
  (try
     while true do
       let line = String.trim (input_line ic) in
       (try
          Scanf.sscanf line "{%S: %S, %S: %f, %S: %f"
            (fun k name k2 ns k3 r2 ->
              if k = "name" && k2 = "ns_per_run" && k3 = "r2" then
                entries := (name, (ns, Some r2)) :: !entries)
        with Scanf.Scan_failure _ | Failure _ | End_of_file ->
          (try
             Scanf.sscanf line "{%S: %S, %S: %f"
               (fun k name k2 ns ->
                 if k = "name" && k2 = "ns_per_run" then
                   entries := (name, (ns, None)) :: !entries)
           with Scanf.Scan_failure _ | Failure _ | End_of_file -> ()))
     done
   with End_of_file -> close_in ic);
  List.rev !entries

let () =
  let threshold = ref 0.25 in
  let prefix_thresholds = ref [] in
  let files = ref [] in
  let flag_arg ~flag arg =
    let lf = String.length flag in
    if has_prefix flag arg then
      Some (String.sub arg lf (String.length arg - lf))
    else None
  in
  Array.iteri
    (fun i arg ->
      if i = 0 then ()
      else
        match flag_arg ~flag:"--threshold=" arg with
        | Some v -> (
          match float_of_string_opt v with
          | Some t when t > 0. -> threshold := t
          | _ ->
            Printf.eprintf "invalid %S\n" arg;
            exit 2)
        | None -> (
          match flag_arg ~flag:"--prefix-threshold=" arg with
          | Some v -> (
            match String.rindex_opt v ':' with
            | Some i
              when i > 0
                   && Option.fold ~none:false
                        ~some:(fun t -> t > 0.)
                        (float_of_string_opt
                           (String.sub v (i + 1) (String.length v - i - 1)))
              ->
              prefix_thresholds :=
                ( String.sub v 0 i,
                  float_of_string
                    (String.sub v (i + 1) (String.length v - i - 1)) )
                :: !prefix_thresholds
            | _ ->
              Printf.eprintf "invalid %S (want PREFIX:RATIO)\n" arg;
              exit 2)
          | None -> files := arg :: !files))
    Sys.argv;
  let threshold_for name =
    (* longest matching prefix override wins; else the global threshold *)
    List.fold_left
      (fun acc (p, t) ->
        if has_prefix p name then
          match acc with
          | Some (bp, _) when String.length bp >= String.length p -> acc
          | _ -> Some (p, t)
        else acc)
      None !prefix_thresholds
    |> Option.fold ~none:!threshold ~some:snd
  in
  let baseline_path, candidate_path =
    match List.rev !files with
    | [ b; c ] -> (b, c)
    | _ ->
      Printf.eprintf
        "usage: check_regression.exe BASELINE CANDIDATE [--threshold=0.25] \
         [--prefix-threshold=PREFIX:RATIO]...\n";
      exit 2
  in
  let baseline = parse_micro baseline_path in
  let candidate = parse_micro candidate_path in
  if baseline = [] then begin
    Printf.eprintf "no benchmark entries in %s\n" baseline_path;
    exit 2
  end;
  if candidate = [] then begin
    Printf.eprintf "no benchmark entries in %s\n" candidate_path;
    exit 2
  end;
  let regressions = ref 0 and checked = ref 0 and skipped = ref 0 in
  Printf.printf "%-28s %14s %14s %9s\n" "kernel" "baseline ns" "candidate ns"
    "ratio";
  List.iter
    (fun (name, (base_ns, base_r2)) ->
      if tracked name then
        match base_r2 with
        | Some r2 when r2 < min_r2 ->
          (* the committed fit is noise: a ratio against it gates nothing.
             Deliberately NOT counted as checked — but also not a failure:
             the row is still present in both files, just unusable. *)
          incr skipped;
          Printf.printf "%-28s %14.1f %14s %9s  SKIPPED (baseline r²=%.2f)\n"
            name base_ns "-" "-" r2
        | _ -> (
          match List.assoc_opt name candidate with
          | None ->
            (* a tracked kernel disappearing from the bench is a failure:
               silent coverage loss looks exactly like a perf win *)
            incr regressions;
            Printf.printf "%-28s %14.1f %14s %9s  MISSING\n" name base_ns "-"
              "-"
          | Some (cand_ns, _) ->
            incr checked;
            let t = threshold_for name in
            let ratio = cand_ns /. base_ns in
            let flag = ratio > 1. +. t in
            if flag then incr regressions;
            Printf.printf "%-28s %14.1f %14.1f %8.2fx%s\n" name base_ns
              cand_ns ratio
              (if flag then
                 Printf.sprintf "  REGRESSION (>%.0f%%)" (100. *. t)
               else "")))
    baseline;
  if !checked = 0 then begin
    Printf.eprintf "no tracked (join/reduce) kernels found in %s\n"
      baseline_path;
    exit 2
  end;
  (* An unusable-baseline row is invisible unless someone scrolls the
     table; the summary line keeps the count of what the gate did NOT
     check in front of whoever reads the CI tail. *)
  let skipped_note =
    if !skipped = 0 then ""
    else Printf.sprintf " (%d row(s) SKIPPED: baseline r² < %.1f)" !skipped min_r2
  in
  if !regressions > 0 then begin
    Printf.printf
      "\n%d kernel(s) regressed beyond their threshold of the committed \
       baseline.%s\n"
      !regressions skipped_note;
    exit 1
  end
  else
    Printf.printf
      "\nall %d tracked kernels within threshold of the baseline.%s\n"
      !checked skipped_note
