(* Bench regression gate.

   Compares a freshly generated BENCH_core.json against the committed
   baseline and fails when a tracked kernel (join/reduce, the antichain
   engine's hot paths) regressed by more than the threshold.

   Usage: check_regression.exe BASELINE CANDIDATE [--threshold=0.25]

   The record format is the bench harness's own output: one
   {"name": ..., "ns_per_run": ...} object per line inside the "micro"
   array.  No JSON library — the two files are self-printed, so a line
   scanner is exact.

   Exit codes: 0 ok, 1 regression found, 2 usage or parse error. *)

let tracked name =
  let has_prefix p =
    let lp = String.length p in
    String.length name >= lp && String.sub name 0 lp = p
  in
  has_prefix "rmt/join/" || has_prefix "rmt/reduce/"
  || has_prefix "rmt/lint/" || has_prefix "rmt/sim/"

let parse_micro path =
  let entries = ref [] in
  let ic =
    try open_in path
    with Sys_error e ->
      Printf.eprintf "cannot open %s: %s\n" path e;
      exit 2
  in
  (try
     while true do
       let line = String.trim (input_line ic) in
       (try
          Scanf.sscanf line "{%S: %S, %S: %f"
            (fun k name k2 ns ->
              if k = "name" && k2 = "ns_per_run" then
                entries := (name, ns) :: !entries)
        with Scanf.Scan_failure _ | Failure _ | End_of_file -> ())
     done
   with End_of_file -> close_in ic);
  List.rev !entries

let () =
  let threshold = ref 0.25 in
  let files = ref [] in
  Array.iteri
    (fun i arg ->
      if i = 0 then ()
      else if String.length arg > 12 && String.sub arg 0 12 = "--threshold=" then
        match
          float_of_string_opt (String.sub arg 12 (String.length arg - 12))
        with
        | Some t when t > 0. -> threshold := t
        | _ ->
          Printf.eprintf "invalid %S\n" arg;
          exit 2
      else files := arg :: !files)
    Sys.argv;
  let baseline_path, candidate_path =
    match List.rev !files with
    | [ b; c ] -> (b, c)
    | _ ->
      Printf.eprintf
        "usage: check_regression.exe BASELINE CANDIDATE [--threshold=0.25]\n";
      exit 2
  in
  let baseline = parse_micro baseline_path in
  let candidate = parse_micro candidate_path in
  if baseline = [] then begin
    Printf.eprintf "no benchmark entries in %s\n" baseline_path;
    exit 2
  end;
  if candidate = [] then begin
    Printf.eprintf "no benchmark entries in %s\n" candidate_path;
    exit 2
  end;
  let regressions = ref 0 and checked = ref 0 in
  Printf.printf "%-28s %14s %14s %9s\n" "kernel" "baseline ns" "candidate ns"
    "ratio";
  List.iter
    (fun (name, base_ns) ->
      if tracked name then
        match List.assoc_opt name candidate with
        | None ->
          (* a tracked kernel disappearing from the bench is a failure:
             silent coverage loss looks exactly like a perf win *)
          incr regressions;
          Printf.printf "%-28s %14.1f %14s %9s  MISSING\n" name base_ns "-" "-"
        | Some cand_ns ->
          incr checked;
          let ratio = cand_ns /. base_ns in
          let flag = ratio > 1. +. !threshold in
          if flag then incr regressions;
          Printf.printf "%-28s %14.1f %14.1f %8.2fx%s\n" name base_ns cand_ns
            ratio
            (if flag then "  REGRESSION" else ""))
    baseline;
  if !checked = 0 then begin
    Printf.eprintf "no tracked (join/reduce) kernels found in %s\n"
      baseline_path;
    exit 2
  end;
  if !regressions > 0 then begin
    Printf.printf
      "\n%d kernel(s) regressed beyond %.0f%% of the committed baseline.\n"
      !regressions (100. *. !threshold);
    exit 1
  end
  else
    Printf.printf "\nall %d tracked kernels within %.0f%% of the baseline.\n"
      !checked (100. *. !threshold)
