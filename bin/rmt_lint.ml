(* rmt-lint — typedtree-based determinism & safety analyzer.

   Subcommands:
     check     (default) lint the repository's .cmt files
     explain   print the rationale for one rule

   The analyzer reads the typedtrees that `dune build @check` leaves
   under _build/default and runs the five rules documented in
   lib/lint/rules.mli (and DESIGN.md par.6).  Exit status: 0 when every
   finding is pinned in the baseline, 1 on new findings, 2 on usage or
   I/O errors.

   Examples:
     dune build @check && rmt_lint check --baseline lint-baseline.txt
     rmt_lint check --json --out lint-report.json
     rmt_lint explain R2 *)

open Rmt_lint
open Cmdliner

let build_dir =
  let doc = "Dune build context holding the .cmt files." in
  Arg.(value & opt string "_build/default" & info [ "build-dir" ] ~doc)

let dirs =
  let doc =
    "Source directories to lint (prefix match on the path recorded in \
     each .cmt)."
  in
  Arg.(value & pos_all string [ "lib" ] & info [] ~docv:"DIR" ~doc)

let baseline =
  let doc = "Baseline file of pinned findings (rule + fingerprint)." in
  Arg.(
    value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)

let json =
  let doc = "Emit the report as JSON on stdout instead of text." in
  Arg.(value & flag & info [ "json" ] ~doc)

let out =
  let doc = "Also write the JSON report to $(docv)." in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)

let update_baseline =
  let doc =
    "Rewrite the --baseline file to pin exactly the current findings \
     (JUSTIFY placeholders must then be filled in by hand)."
  in
  Arg.(value & flag & info [ "update-baseline" ] ~doc)

let check_cmd build_dir dirs baseline json out update =
  match Cmt_loader.scan ~build_dir ~dirs with
  | Error e ->
    prerr_endline ("rmt-lint: " ^ e);
    2
  | Ok units ->
    let findings = Lint.analyze units in
    (match (update, baseline) with
     | true, None ->
       prerr_endline "rmt-lint: --update-baseline requires --baseline";
       2
     | true, Some path ->
       Baseline.save path findings;
       Printf.printf "rmt-lint: wrote %d finding(s) to %s\n"
         (List.length findings) path;
       0
     | false, _ ->
       let entries =
         match baseline with
         | None -> Ok []
         | Some path -> Baseline.load path
       in
       (match entries with
        | Error e ->
          prerr_endline ("rmt-lint: " ^ e);
          2
        | Ok entries ->
          let report =
            Lint.apply_baseline entries (List.length units) findings
          in
          (match out with
           | None -> ()
           | Some path ->
             let oc = open_out path in
             output_string oc (Lint.render_json report);
             close_out oc);
          if json then print_string (Lint.render_json report)
          else print_string (Lint.render_text report);
          if report.Lint.fresh = [] then 0 else 1))

let explain_cmd rule =
  match Rules.find rule with
  | None ->
    Printf.eprintf "rmt-lint: unknown rule %S; known rules: %s\n" rule
      (String.concat ", " (List.map (fun m -> m.Rules.id) Rules.all));
    2
  | Some m ->
    Printf.printf "%s (%s)\n  %s\n\n%s\n" m.Rules.id m.Rules.name
      m.Rules.summary m.Rules.details;
    0

let check_term =
  Term.(
    const check_cmd $ build_dir $ dirs $ baseline $ json $ out
    $ update_baseline)

let check =
  let doc = "lint the repository's typedtrees (the default command)" in
  Cmd.v (Cmd.info "check" ~doc) check_term

let explain =
  let doc = "describe one rule and the invariant it protects" in
  let rule =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"RULE" ~doc:"Rule identifier, R1..R5.")
  in
  Cmd.v (Cmd.info "explain" ~doc) Term.(const explain_cmd $ rule)

let rules_cmd () =
  List.iter
    (fun m -> Printf.printf "%s  %-22s %s\n" m.Rules.id m.Rules.name m.Rules.summary)
    Rules.all;
  0

let rules =
  let doc = "list all rules" in
  Cmd.v (Cmd.info "rules" ~doc) Term.(const rules_cmd $ const ())

let () =
  let info =
    Cmd.info "rmt_lint" ~version:"%%VERSION%%"
      ~doc:"typedtree-based determinism & safety analyzer for the rmt tree"
  in
  exit (Cmd.eval' (Cmd.group ~default:check_term info [ check; explain; rules ]))
