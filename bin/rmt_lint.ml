(* rmt-lint — typedtree-based determinism & safety analyzer.

   Subcommands:
     check     (default) lint the repository's .cmt files
     paths     Theorem-4 taint audit: sources, sinks, guard status
     graph     dump the cross-module call graph (--dot for GraphViz)
     explain   print the rationale for one rule
     rules     list all rules

   The analyzer reads the typedtrees that `dune build @check` leaves
   under _build/default and runs the five intraprocedural rules of
   lib/lint/rules.mli plus the interprocedural passes R6 (Domain races)
   and R7 (Theorem-4 taint) over the cross-module call graph.  With
   --cache FILE, unchanged .cmt files (by content digest) are never
   re-read across runs.  Exit status: 0 when every finding is pinned in
   the baseline, 1 on new findings, 2 on usage or I/O errors.

   Examples:
     dune build @check && rmt_lint check --baseline lint-baseline.txt
     rmt_lint check --cache _build/rmt-lint.cache --sarif rmt-lint.sarif
     rmt_lint paths
     rmt_lint graph --dot | dot -Tsvg > callgraph.svg
     rmt_lint explain R7 *)

open Rmt_lint
open Cmdliner

let build_dir =
  let doc = "Dune build context holding the .cmt files." in
  Arg.(value & opt string "_build/default" & info [ "build-dir" ] ~doc)

let dirs =
  let doc =
    "Source directories to lint (prefix match on the path recorded in \
     each .cmt)."
  in
  Arg.(value & pos_all string [ "lib" ] & info [] ~docv:"DIR" ~doc)

let baseline =
  let doc = "Baseline file of pinned findings (rule + fingerprint)." in
  Arg.(
    value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)

let json =
  let doc = "Emit the report as JSON on stdout instead of text." in
  Arg.(value & flag & info [ "json" ] ~doc)

let out =
  let doc = "Also write the JSON report to $(docv)." in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)

let sarif =
  let doc = "Also write a SARIF 2.1.0 report to $(docv)." in
  Arg.(value & opt (some string) None & info [ "sarif" ] ~docv:"FILE" ~doc)

let cache_path =
  let doc =
    "Incremental cache file: unchanged .cmt files (by content digest) \
     are not re-analyzed, and the cache is rewritten after the run.  \
     Delete the file (make lint-clean) to force a cold run."
  in
  Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"FILE" ~doc)

let update_baseline =
  let doc =
    "Rewrite the --baseline file to pin exactly the current findings \
     (JUSTIFY placeholders must then be filled in by hand)."
  in
  Arg.(value & flag & info [ "update-baseline" ] ~doc)

(* Shared front half: load cache, scan, store cache back. *)
let scan_with_cache build_dir dirs cache_path =
  let cache =
    match cache_path with
    | Some p -> Cache.load p
    | None -> Cache.empty ()
  in
  match Lint.scan_cached ~cache ~build_dir ~dirs with
  | Error e -> Error e
  | Ok (units, stats) ->
    (match cache_path with Some p -> Cache.save p cache | None -> ());
    Ok (units, stats)

let check_cmd build_dir dirs baseline json out sarif cache_path update =
  match scan_with_cache build_dir dirs cache_path with
  | Error e ->
    prerr_endline ("rmt-lint: " ^ e);
    2
  | Ok (units, stats) ->
    let graph = Lint.graph_of units in
    let findings = Lint.findings_of units graph in
    (match (update, baseline) with
     | true, None ->
       prerr_endline "rmt-lint: --update-baseline requires --baseline";
       2
     | true, Some path ->
       Baseline.save path findings;
       Printf.printf "rmt-lint: wrote %d finding(s) to %s\n"
         (List.length findings) path;
       0
     | false, _ ->
       let entries =
         match baseline with
         | None -> Ok []
         | Some path -> Baseline.load path
       in
       (match entries with
        | Error e ->
          prerr_endline ("rmt-lint: " ^ e);
          2
        | Ok entries ->
          let report =
            Lint.apply_baseline ~cache:stats entries (List.length units)
              findings
          in
          (match out with
           | None -> ()
           | Some path ->
             let oc = open_out path in
             output_string oc (Lint.render_json report);
             close_out oc);
          (match sarif with
           | None -> ()
           | Some path ->
             let oc = open_out path in
             output_string oc (Sarif.render ~entries report);
             close_out oc);
          if json then print_string (Lint.render_json report)
          else print_string (Lint.render_text report);
          if report.Lint.fresh = [] then 0 else 1))

let paths_cmd build_dir dirs cache_path =
  match scan_with_cache build_dir dirs cache_path with
  | Error e ->
    prerr_endline ("rmt-lint: " ^ e);
    2
  | Ok (units, _) ->
    print_string (Taint.audit (Lint.graph_of units));
    0

let graph_cmd build_dir dirs cache_path dot =
  match scan_with_cache build_dir dirs cache_path with
  | Error e ->
    prerr_endline ("rmt-lint: " ^ e);
    2
  | Ok (units, _) ->
    let graph = Lint.graph_of units in
    if dot then print_string (Callgraph.to_dot graph)
    else begin
      let fns, edges = Callgraph.stats graph in
      Printf.printf "call graph: %d function(s), %d resolved edge(s)\n" fns
        edges;
      List.iter
        (fun (f : Callgraph.fn_summary) ->
          match Callgraph.callees graph f.fn_name with
          | [] -> ()
          | cs ->
            Printf.printf "%s -> %s\n" f.fn_name (String.concat ", " cs))
        (Callgraph.functions graph)
    end;
    0

let explain_cmd rule =
  match Rules.find rule with
  | None ->
    Printf.eprintf "rmt-lint: unknown rule %S; known rules: %s\n" rule
      (String.concat ", " (List.map (fun m -> m.Rules.id) Rules.all));
    2
  | Some m ->
    Printf.printf "%s (%s)\n  %s\n\n%s\n" m.Rules.id m.Rules.name
      m.Rules.summary m.Rules.details;
    0

let check_term =
  Term.(
    const check_cmd $ build_dir $ dirs $ baseline $ json $ out $ sarif
    $ cache_path $ update_baseline)

let check =
  let doc = "lint the repository's typedtrees (the default command)" in
  Cmd.v (Cmd.info "check" ~doc) check_term

let paths =
  let doc =
    "audit Theorem-4 taint paths: every adversarial source, every \
     decision sink, and per sanitizer family either 'guarded' or the \
     unguarded source->sink call chain"
  in
  Cmd.v
    (Cmd.info "paths" ~doc)
    Term.(const paths_cmd $ build_dir $ dirs $ cache_path)

let graph =
  let dot =
    let doc = "Emit GraphViz instead of a text adjacency listing." in
    Arg.(value & flag & info [ "dot" ] ~doc)
  in
  let doc = "dump the cross-module call graph" in
  Cmd.v
    (Cmd.info "graph" ~doc)
    Term.(const graph_cmd $ build_dir $ dirs $ cache_path $ dot)

let explain =
  let doc = "describe one rule and the invariant it protects" in
  let rule =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"RULE" ~doc:"Rule identifier, R1..R7.")
  in
  Cmd.v (Cmd.info "explain" ~doc) Term.(const explain_cmd $ rule)

let rules_cmd () =
  List.iter
    (fun m ->
      Printf.printf "%s  %-22s %s\n" m.Rules.id m.Rules.name m.Rules.summary)
    Rules.all;
  0

let rules =
  let doc = "list all rules" in
  Cmd.v (Cmd.info "rules" ~doc) Term.(const rules_cmd $ const ())

let () =
  let info =
    Cmd.info "rmt_lint" ~version:"%%VERSION%%"
      ~doc:"typedtree-based determinism & safety analyzer for the rmt tree"
  in
  exit
    (Cmd.eval'
       (Cmd.group ~default:check_term info
          [ check; paths; graph; explain; rules ]))
