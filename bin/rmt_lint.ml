(* rmt-lint — typedtree-based determinism & safety analyzer.

   Subcommands:
     check      (default) lint the repository's .cmt files
     paths      Theorem-4 taint audit: sources, sinks, guard status
     graph      dump the cross-module call graph (--dot for GraphViz)
     summaries  dump per-function effect summaries (--json for CI)
     model      dump extracted protocol automaton models (--json for CI)
     explain    print the rationale for one rule
     rules      list all rules

   The analyzer reads the typedtrees that `dune build @check` leaves
   under _build/default, infers per-function effect summaries over the
   whole-program call graph (SCC-ordered, fixpointed on recursive
   cycles), and runs the intraprocedural rules of lib/lint/rules.mli
   plus the summary-store passes R4/R8 (lock discipline), R6 (Domain
   races) and R7 (higher-order-aware Theorem-4 taint).  With --cache
   FILE, unchanged .cmt files (by content digest) are never re-read
   across runs and the whole summary store is reused when nothing
   changed.  Exit status: 0 when every finding is pinned in the
   baseline and no pin is stale, 1 on new findings or stale pins, 2 on
   usage or I/O errors.

   Examples:
     dune build @check && rmt_lint check --baseline lint-baseline.txt
     rmt_lint check --cache _build/rmt-lint.cache --sarif rmt-lint.sarif
     rmt_lint paths
     rmt_lint summaries --json Zcpa
     rmt_lint model --json
     rmt_lint model Rmt_pka
     rmt_lint graph --dot | dot -Tsvg > callgraph.svg
     rmt_lint explain R9 *)

open Rmt_lint
open Cmdliner

let build_dir =
  let doc = "Dune build context holding the .cmt files." in
  Arg.(value & opt string "_build/default" & info [ "build-dir" ] ~doc)

let dirs =
  let doc =
    "Source directories to analyze (prefix match on the path recorded \
     in each .cmt).  $(docv) bounds the analysis universe: the call \
     graph, the summary store and the findings all cover exactly these \
     trees."
  in
  Arg.(value & pos_all string [ "lib" ] & info [] ~docv:"DIR" ~doc)

let baseline =
  let doc = "Baseline file of pinned findings (rule + fingerprint)." in
  Arg.(
    value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)

let json =
  let doc = "Emit the report as JSON on stdout instead of text." in
  Arg.(value & flag & info [ "json" ] ~doc)

let out =
  let doc = "Also write the JSON report to $(docv)." in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)

let sarif =
  let doc = "Also write a SARIF 2.1.0 report to $(docv)." in
  Arg.(value & opt (some string) None & info [ "sarif" ] ~docv:"FILE" ~doc)

let summaries_out =
  let doc = "Also write the effect-summary dump (JSON) to $(docv)." in
  Arg.(
    value
    & opt (some string) None
    & info [ "summaries-out" ] ~docv:"FILE" ~doc)

let model_out =
  let doc =
    "Also write the protocol-model dump (lint-model.json: per-automaton \
     alphabet, handled cases, decision reads, symbolic send bounds) to \
     $(docv)."
  in
  Arg.(
    value & opt (some string) None & info [ "model-out" ] ~docv:"FILE" ~doc)

let cache_path =
  let doc =
    "Incremental cache file: unchanged .cmt files (by content digest) \
     are not re-analyzed, the summary store is reused when no cmt \
     changed, and the cache is rewritten after the run.  Delete the \
     file (make lint-clean) to force a cold run."
  in
  Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"FILE" ~doc)

let update_baseline =
  let doc =
    "Rewrite the --baseline file to pin exactly the current findings \
     (JUSTIFY placeholders must then be filled in by hand)."
  in
  Arg.(value & flag & info [ "update-baseline" ] ~doc)

(* Shared front half: load cache, scan, infer/restore the summary
   store, store cache back. *)
let scan_with_cache build_dir dirs cache_path =
  let cache =
    match cache_path with
    | Some p -> Cache.load p
    | None -> Cache.empty ()
  in
  match Lint.scan_cached ~cache ~build_dir ~dirs with
  | Error e -> Error e
  | Ok (units, stats, key) ->
    let store, _summary_hit = Lint.store_of ~cache ~key (Lint.graph_of units) in
    (match cache_path with Some p -> Cache.save p cache | None -> ());
    Ok (units, stats, store)

let check_cmd build_dir dirs baseline json out sarif summaries_out model_out
    cache_path update =
  match scan_with_cache build_dir dirs cache_path with
  | Error e ->
    prerr_endline ("rmt-lint: " ^ e);
    2
  | Ok (units, stats, store) ->
    let findings = Lint.findings_of units store in
    (match summaries_out with
     | None -> ()
     | Some path ->
       let oc = open_out path in
       output_string oc (Summary.render_json store);
       close_out oc);
    (match model_out with
     | None -> ()
     | Some path ->
       let oc = open_out path in
       output_string oc (Model.render_json (Lint.model_of units));
       close_out oc);
    (match (update, baseline) with
     | true, None ->
       prerr_endline "rmt-lint: --update-baseline requires --baseline";
       2
     | true, Some path ->
       Baseline.save path findings;
       Printf.printf "rmt-lint: wrote %d finding(s) to %s\n"
         (List.length findings) path;
       0
     | false, _ ->
       let entries =
         match baseline with
         | None -> Ok []
         | Some path -> Baseline.load path
       in
       (match entries with
        | Error e ->
          prerr_endline ("rmt-lint: " ^ e);
          2
        | Ok entries ->
          let report =
            Lint.apply_baseline ~cache:stats entries (List.length units)
              findings
          in
          (match out with
           | None -> ()
           | Some path ->
             let oc = open_out path in
             output_string oc (Lint.render_json report);
             close_out oc);
          (match sarif with
           | None -> ()
           | Some path ->
             let oc = open_out path in
             output_string oc (Sarif.render ~store ~entries report);
             close_out oc);
          if json then print_string (Lint.render_json report)
          else print_string (Lint.render_text report);
          (* Stale pins fail the run: a discharged finding still pinned
             in the baseline means the baseline misdescribes the tree. *)
          if report.Lint.fresh = [] && report.Lint.stale = [] then 0 else 1))

let paths_cmd build_dir dirs cache_path =
  match scan_with_cache build_dir dirs cache_path with
  | Error e ->
    prerr_endline ("rmt-lint: " ^ e);
    2
  | Ok (_, _, store) ->
    print_string (Taint.audit store);
    0

let graph_cmd build_dir dirs cache_path dot =
  match scan_with_cache build_dir dirs cache_path with
  | Error e ->
    prerr_endline ("rmt-lint: " ^ e);
    2
  | Ok (units, _, _) ->
    let graph = Lint.graph_of units in
    if dot then print_string (Callgraph.to_dot graph)
    else begin
      let fns, edges = Callgraph.stats graph in
      Printf.printf "call graph: %d function(s), %d resolved edge(s)\n" fns
        edges;
      List.iter
        (fun (f : Callgraph.fn_summary) ->
          match Callgraph.callees graph f.fn_name with
          | [] -> ()
          | cs ->
            Printf.printf "%s -> %s\n" f.fn_name (String.concat ", " cs))
        (Callgraph.functions graph)
    end;
    0

let summaries_cmd build_dir dirs cache_path json only =
  match scan_with_cache build_dir dirs cache_path with
  | Error e ->
    prerr_endline ("rmt-lint: " ^ e);
    2
  | Ok (_, _, store) ->
    if json then print_string (Summary.render_json ?only store)
    else print_string (Summary.render_text ?only store);
    0

let model_cmd build_dir dirs cache_path json only =
  match scan_with_cache build_dir dirs cache_path with
  | Error e ->
    prerr_endline ("rmt-lint: " ^ e);
    2
  | Ok (units, _, _) ->
    let model = Lint.model_of units in
    (match only with
     | Some name when Model.find model name = None ->
       Printf.eprintf
         "rmt-lint: no automaton matches %S; known protocols: %s\n" name
         (String.concat ", "
            (List.map
               (fun (p : Model.protocol) -> p.Model.p_name)
               model.Model.protocols));
       2
     | _ ->
       if json then print_string (Model.render_json ?only model)
       else print_string (Model.render_text ?only model);
       0)

let explain_cmd rule =
  match Rules.find rule with
  | None ->
    Printf.eprintf "rmt-lint: unknown rule %S; known rules: %s\n" rule
      (String.concat ", " (List.map (fun m -> m.Rules.id) Rules.all));
    2
  | Some m ->
    Printf.printf "%s (%s)\n  %s\n  example: %s\n\n%s\n" m.Rules.id
      m.Rules.name m.Rules.summary m.Rules.example m.Rules.details;
    0

let check_term =
  Term.(
    const check_cmd $ build_dir $ dirs $ baseline $ json $ out $ sarif
    $ summaries_out $ model_out $ cache_path $ update_baseline)

let check =
  let doc = "lint the repository's typedtrees (the default command)" in
  Cmd.v (Cmd.info "check" ~doc) check_term

let paths =
  let doc =
    "audit Theorem-4 taint paths: every adversarial source, every \
     decision sink, and per sanitizer family either 'guarded' or the \
     unguarded source->sink call chain"
  in
  Cmd.v
    (Cmd.info "paths" ~doc)
    Term.(const paths_cmd $ build_dir $ dirs $ cache_path)

let graph =
  let dot =
    let doc = "Emit GraphViz instead of a text adjacency listing." in
    Arg.(value & flag & info [ "dot" ] ~doc)
  in
  let doc = "dump the cross-module call graph" in
  Cmd.v
    (Cmd.info "graph" ~doc)
    Term.(const graph_cmd $ build_dir $ dirs $ cache_path $ dot)

let summaries =
  let only =
    let doc =
      "Restrict the dump to one module (function-name prefix or source \
       file module)."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"MODULE" ~doc)
  in
  let sdirs =
    let doc = "Source directory to analyze (repeatable)." in
    Arg.(value & opt_all string [ "lib" ] & info [ "dir" ] ~docv:"DIR" ~doc)
  in
  let doc =
    "dump per-function effect summaries: mutates/nondet/source/sink \
     bits, sanitizer families reached, lock and spawn effects, \
     locked-only status and higher-order instantiation sets, with a \
     stable fingerprint per function"
  in
  Cmd.v
    (Cmd.info "summaries" ~doc)
    Term.(const summaries_cmd $ build_dir $ sdirs $ cache_path $ json $ only)

let model =
  let only =
    let doc =
      "Restrict the dump to one protocol (automaton name, bare suffix, \
       or module prefix, case-insensitive: `Rmt_pka.automaton', \
       `automaton', `Naive', ...)."
    in
    Arg.(
      value & pos 0 (some string) None & info [] ~docv:"PROTOCOL" ~doc)
  in
  let mdirs =
    let doc = "Source directory to analyze (repeatable)." in
    Arg.(value & opt_all string [ "lib" ] & info [ "dir" ] ~docv:"DIR" ~doc)
  in
  let doc =
    "dump the extracted protocol automaton models: per automaton the \
     message-constructor alphabet, the handled cases, the mutable state \
     fields the decision reads, round/dedup sensitivity, and the \
     symbolic per-step send bounds the cost-bound test enforces"
  in
  Cmd.v
    (Cmd.info "model" ~doc)
    Term.(const model_cmd $ build_dir $ mdirs $ cache_path $ json $ only)

let explain =
  let doc = "describe one rule and the invariant it protects" in
  let rule =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"RULE" ~doc:"Rule identifier, R1..R10.")
  in
  Cmd.v (Cmd.info "explain" ~doc) Term.(const explain_cmd $ rule)

let rules_cmd () =
  List.iter
    (fun m ->
      Printf.printf "%-4s %-22s %s\n     e.g. %s\n" m.Rules.id m.Rules.name
        m.Rules.summary m.Rules.example)
    Rules.all;
  0

let rules =
  let doc = "list all rules" in
  Cmd.v (Cmd.info "rules" ~doc) Term.(const rules_cmd $ const ())

let () =
  let info =
    Cmd.info "rmt_lint" ~version:"%%VERSION%%"
      ~doc:"typedtree-based determinism & safety analyzer for the rmt tree"
  in
  exit
    (Cmd.eval'
       (Cmd.group ~default:check_term info
          [ check; paths; graph; summaries; model; explain; rules ]))
