(* rmt — command-line interface to the library.

   Subcommands:
     analyze   feasibility of an instance (cut witnesses, minimal radius)
     run       execute a protocol on a simulated network
     attack    mount the two-face indistinguishability attack
     fuzz      seeded adversarial campaign / reproducer replay
     sim       asynchronous simulation under adversarial schedules
     serve-solve  streaming solvability service over instance deltas
     dot       emit the instance as Graphviz

   Instances are described by three little specs:
     --topology  grid:3x4 | king:3x4 | layered:3x2 | cycle:8 | complete:5 |
                 ladder:4 | path:6 | random:12:0.3
     --adversary thr:1 | local:1 | rand:4:2
     --knowledge adhoc | full | radius:2

   Example:
     rmt analyze --topology grid:3x4 --adversary thr:1 --receiver 11
     rmt run --protocol pka --topology layered:3x2 --receiver 7 --value 42 \
             --corrupt 1 --strategy value-flip *)

open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge
open Rmt_core
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Spec parsing                                                        *)
(* ------------------------------------------------------------------ *)

let parse_error fmt = Printf.ksprintf (fun s -> `Error (false, s)) fmt

let split_spec s = String.split_on_char ':' s

let topology_of_spec seed spec =
  let rng = Prng.create seed in
  match split_spec spec with
  | [ ("grid" | "king") as kind; dims ] ->
    (match String.split_on_char 'x' dims with
     | [ r; c ] ->
       let r = int_of_string r and c = int_of_string c in
       Ok (if kind = "king" then Generators.king_grid r c else Generators.grid r c)
     | _ -> Error "grid spec must be grid:RxC")
  | [ "layered"; dims ] ->
    (match String.split_on_char 'x' dims with
     | [ w; d ] ->
       Ok (Generators.layered ~width:(int_of_string w) ~depth:(int_of_string d))
     | _ -> Error "layered spec must be layered:WxD")
  | [ "cycle"; n ] -> Ok (Generators.cycle (int_of_string n))
  | [ "complete"; n ] -> Ok (Generators.complete (int_of_string n))
  | [ "ladder"; n ] -> Ok (Generators.ladder (int_of_string n))
  | [ "path"; n ] -> Ok (Generators.path_graph (int_of_string n))
  | [ "random"; n; p ] ->
    Ok (Generators.random_connected_gnp rng (int_of_string n) (float_of_string p))
  | _ -> Error (Printf.sprintf "unknown topology spec %S" spec)

let structure_of_spec seed spec g ~dealer =
  let rng = Prng.create (seed + 1) in
  match split_spec spec with
  | [ "thr"; t ] -> Ok (Builders.global_threshold g ~dealer (int_of_string t))
  | [ "local"; t ] -> Ok (Builders.t_local g ~dealer (int_of_string t))
  | [ "rand"; sets; max_size ] ->
    Ok
      (Builders.random_antichain rng g ~dealer ~sets:(int_of_string sets)
         ~max_size:(int_of_string max_size))
  | _ -> Error (Printf.sprintf "unknown adversary spec %S" spec)

let view_of_spec spec g =
  match split_spec spec with
  | [ "adhoc" ] -> Ok (View.ad_hoc g)
  | [ "full" ] -> Ok (View.full g)
  | [ "radius"; k ] -> Ok (View.radius (int_of_string k) g)
  | _ -> Error (Printf.sprintf "unknown knowledge spec %S" spec)

let rec build_instance ?file ~seed ~topology ~adversary ~knowledge ~dealer
    ~receiver () =
  match file with
  | Some path -> Codec.of_file path
  | None -> build_from_specs ~seed ~topology ~adversary ~knowledge ~dealer ~receiver

and build_from_specs ~seed ~topology ~adversary ~knowledge ~dealer ~receiver =
  match topology_of_spec seed topology with
  | Error e -> Error e
  | Ok g ->
    let receiver =
      match receiver with
      | Some r -> r
      | None ->
        (* farthest node from the dealer *)
        List.fold_left
          (fun (bv, bd) (v, d) -> if d > bd then (v, d) else (bv, bd))
          (dealer, 0)
          (Connectivity.distances_from g dealer)
        |> fst
    in
    (match structure_of_spec seed adversary g ~dealer with
     | Error e -> Error e
     | Ok structure ->
       (match view_of_spec knowledge g with
        | Error e -> Error e
        | Ok view ->
          (try Ok (Instance.make ~graph:g ~structure ~view ~dealer ~receiver)
           with Invalid_argument m -> Error m)))

(* ------------------------------------------------------------------ *)
(* Shared options                                                      *)
(* ------------------------------------------------------------------ *)

let topology_t =
  Arg.(value & opt string "layered:3x2" & info [ "topology" ] ~docv:"SPEC")

let adversary_t =
  Arg.(value & opt string "thr:1" & info [ "adversary" ] ~docv:"SPEC")

let knowledge_t =
  Arg.(value & opt string "adhoc" & info [ "knowledge" ] ~docv:"SPEC")

let dealer_t = Arg.(value & opt int 0 & info [ "dealer" ] ~docv:"NODE")

let receiver_t =
  Arg.(value & opt (some int) None & info [ "receiver" ] ~docv:"NODE")

let seed_t = Arg.(value & opt int 2016 & info [ "seed" ] ~docv:"INT")

let file_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "instance" ] ~docv:"FILE"
        ~doc:"Load the instance from a file (see lib/knowledge/codec.mli); \
              overrides the topology/adversary/knowledge specs.")

let value_t = Arg.(value & opt int 42 & info [ "value" ] ~docv:"INT")

let dec_str = function
  | None -> "⊥ (no decision)"
  | Some x -> string_of_int x

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)
(* ------------------------------------------------------------------ *)

let analyze file seed topology adversary knowledge dealer receiver =
  match
    build_instance ?file ~seed ~topology ~adversary ~knowledge ~dealer
      ~receiver ()
  with
  | Error e -> parse_error "%s" e
  | Ok inst ->
    Printf.printf "%s\n\n" (Format.asprintf "%a" Instance.pp inst);
    let pk = Cut.find_rmt_cut inst in
    Printf.printf "RMT-cut (partial knowledge): %s\n"
      (match (pk.cut_found, pk.complete) with
       | Some w, _ -> Format.asprintf "EXISTS — %a" Cut.pp_witness w
       | None, true -> "none (RMT solvable, Thms 3+5)"
       | None, false -> "unknown (budget exhausted)");
    let zpp = Cut.find_rmt_zpp_cut inst in
    Printf.printf "RMT Z-pp cut (ad hoc):       %s\n"
      (match (zpp.cut_found, zpp.complete) with
       | Some w, _ -> Format.asprintf "EXISTS — %a" Cut.pp_witness w
       | None, true -> "none (Z-CPA solves this, Thms 7+8)"
       | None, false -> "unknown (budget exhausted)");
    (match
       Minimal_knowledge.minimal_radius ~graph:inst.graph
         ~structure:inst.structure ~dealer:inst.dealer ~receiver:inst.receiver ()
     with
     | Some k -> Printf.printf "Minimal uniform view radius: %d\n" k
     | None -> Printf.printf "Minimal uniform view radius: none (unsolvable)\n");
    `Ok ()

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let protocol_t =
  Arg.(
    value
    & opt (enum [ ("pka", `Pka); ("zcpa", `Zcpa); ("zcpa-sim", `Zcpa_sim) ]) `Pka
    & info [ "protocol" ] ~docv:"pka|zcpa|zcpa-sim")

let corrupt_t =
  Arg.(value & opt_all int [] & info [ "corrupt" ] ~docv:"NODE")

let strategy_t =
  Arg.(
    value
    & opt string "value-flip"
    & info [ "strategy" ]
        ~docv:"silent|mimic|value-flip|trail-forge|topology-liar|fictitious-node")

let trace_t =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print the delivery timeline.")

let pka_payload_summary (m : Rmt_pka.msg) =
  let trail =
    String.concat "->" (List.map string_of_int m.Rmt_net.Flood.trail)
  in
  match m.Rmt_net.Flood.payload with
  | Rmt_pka.Value x -> Printf.sprintf "value %d via %s" x trail
  | Rmt_pka.Info r -> Printf.sprintf "report(%d) via %s" r.Rmt_pka.origin trail

let run_cmd file seed topology adversary knowledge dealer receiver value
    protocol corrupt strategy trace =
  match
    build_instance ?file ~seed ~topology ~adversary ~knowledge ~dealer
      ~receiver ()
  with
  | Error e -> parse_error "%s" e
  | Ok inst ->
    let corrupted = Nodeset.of_list corrupt in
    (match protocol with
     | `Pka ->
       let adversary =
         if Nodeset.is_empty corrupted then Rmt_net.Engine.no_adversary
         else
           match
             List.assoc_opt strategy
               (Strategies.pka_full_menu inst ~x_dealer:value
                  ~x_fake:(value + 1) corrupted)
           with
           | Some a -> a
           | None -> Strategies.pka_silent corrupted
       in
       let tr, on_deliver = Rmt_net.Trace.create ~pp_payload:pka_payload_summary () in
       let auto = Rmt_pka.automaton inst ~x_dealer:value in
       let outcome =
         Rmt_net.Engine.run ~size_of:Rmt_pka.msg_size
           ~on_deliver:(if trace then on_deliver else fun ~round:_ ~src:_ ~dst:_ _ -> ())
           ~stop_when:(fun dec -> dec inst.receiver <> None)
           ~graph:inst.graph ~adversary auto
       in
       let decided = Rmt_net.Engine.decision_of outcome inst.receiver in
       if trace then print_string (Rmt_net.Trace.render tr);
       Printf.printf
         "RMT-PKA: decided %s  correct=%b  rounds=%d  messages=%d  bits=%d  \
          truncated=%b\n"
         (dec_str decided) (decided = Some value) outcome.stats.rounds
         outcome.stats.messages outcome.stats.bits outcome.stats.truncated;
       `Ok ()
     | (`Zcpa | `Zcpa_sim) as p ->
       let adversary =
         if Nodeset.is_empty corrupted then Rmt_net.Engine.no_adversary
         else
           match
             List.assoc_opt strategy
               (Strategies.value_full_menu (Prng.create seed)
                  ~x_fake:(value + 1) inst.graph corrupted)
           with
           | Some a -> a
           | None -> Strategies.value_silent corrupted
       in
       let decider =
         match p with
         | `Zcpa -> None
         | `Zcpa_sim -> Some (Self_reduction.simulated_decider inst)
       in
       let tr, on_deliver =
         Rmt_net.Trace.create ~pp_payload:(fun (x : int) -> string_of_int x) ()
       in
       let calls, counted =
         Zcpa.counting_oracle (Zcpa.direct_oracle inst)
       in
       let decider =
         match decider with
         | Some d -> d
         | None -> Zcpa.decider_of_oracle counted
       in
       let auto = Zcpa.automaton ~decider inst ~x_dealer:value in
       let outcome =
         Rmt_net.Engine.run
           ~on_deliver:(if trace then on_deliver else fun ~round:_ ~src:_ ~dst:_ _ -> ())
           ~graph:inst.graph ~adversary auto
       in
       let decided = Rmt_net.Engine.decision_of outcome inst.receiver in
       if trace then print_string (Rmt_net.Trace.render tr);
       Printf.printf
         "Z-CPA%s: decided %s  correct=%b  rounds=%d  messages=%d  oracle \
          calls=%d\n"
         (match p with `Zcpa -> "" | `Zcpa_sim -> " (simulated oracle)")
         (dec_str decided) (decided = Some value) outcome.stats.rounds
         outcome.stats.messages !calls;
       `Ok ())

(* ------------------------------------------------------------------ *)
(* attack                                                              *)
(* ------------------------------------------------------------------ *)

let attack file seed topology adversary knowledge dealer receiver =
  match
    build_instance ?file ~seed ~topology ~adversary ~knowledge ~dealer
      ~receiver ()
  with
  | Error e -> parse_error "%s" e
  | Ok inst ->
    (match (Cut.find_rmt_cut inst).cut_found with
     | None ->
       Printf.printf
         "No RMT-cut: this instance is solvable, no attack can succeed.\n";
       `Ok ()
     | Some w ->
       Printf.printf "Witness: %s\n" (Format.asprintf "%a" Cut.pp_witness w);
       let show name (v : Attack.verdict) =
         Printf.printf
           "%-10s run e: %-6s run e': %-6s views agree: %-5b safety broken: %b\n"
           name (dec_str v.decision_e) (dec_str v.decision_e') v.views_agree
           v.safety_broken
       in
       show "RMT-PKA" (Attack.against_rmt_pka inst w ~x0:0 ~x1:1);
       show "Z-CPA" (Attack.against_zcpa inst w ~x0:0 ~x1:1);
       let naive x =
         Rmt_protocols.Naive.first_value inst.graph ~dealer:inst.dealer
           ~receiver:inst.receiver ~x_dealer:x
       in
       show "naive"
         (Attack.co_simulate ~graph:inst.graph ~c1:w.c1 ~c2:w.c2 (naive 0)
            (naive 1) ~receiver:inst.receiver);
       `Ok ())

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)
(* ------------------------------------------------------------------ *)

let fuzz_protocols = function
  | `Pka -> [ Rmt_attack.Campaign.Pka ]
  | `Ppa -> [ Rmt_attack.Campaign.Ppa ]
  | `Zcpa -> [ Rmt_attack.Campaign.Zcpa ]
  | `Cert_pka -> [ Rmt_attack.Campaign.Cert_pka ]
  | `Cert_ppa -> [ Rmt_attack.Campaign.Cert_ppa ]
  | `Certified -> Rmt_attack.Campaign.[ Cert_pka; Cert_ppa ]
  | `All -> Rmt_attack.Campaign.[ Pka; Ppa; Zcpa ]

(* Shrink the first safety violation to a minimal reproducer and write it
   (plus its rendered trace) where CI can pick it up as an artifact. *)
let write_reproducer inst protocol ~x_dealer (r : Rmt_attack.Campaign.run_report)
    out =
  let open Rmt_attack in
  (* modest eval budget: a reproducer a few steps short of minimal beats a
     CI job stuck re-running an expensive receiver hundreds of times *)
  let inst', program' =
    Shrink.minimize ~budget:150
      ~keep:(Shrink.keep_verdict protocol ~x_dealer ~verdict:r.verdict)
      inst r.program
  in
  let shrunk =
    Campaign.execute protocol inst' ~x_dealer program'
  in
  let replay =
    Replay.make ~expected:shrunk.Campaign.verdict ~protocol ~x_dealer inst'
      program'
  in
  match Replay.to_file out replay with
  | Error e -> Printf.eprintf "cannot write reproducer %s: %s\n" out e
  | Ok () ->
    let _, trace = Replay.replay replay in
    Out_channel.with_open_text (out ^ ".trace") (fun oc ->
        Out_channel.output_string oc trace);
    Printf.printf "reproducer written to %s (trace: %s.trace)\n" out out

let fuzz file seed topology adversary knowledge dealer receiver value protocol
    attacks budget out trace replay_file =
  let open Rmt_attack in
  match replay_file with
  | Some path ->
    (match Replay.of_file path with
     | Error e -> parse_error "%s" e
     | Ok r ->
       let report, rendered = Replay.replay r in
       if trace then print_string rendered;
       Printf.printf "replay %s: verdict %s%s\n" path
         (Campaign.verdict_to_string report.Campaign.verdict)
         (match r.Replay.expected with
          | None -> ""
          | Some v ->
            Printf.sprintf " (recorded: %s)" (Campaign.verdict_to_string v));
       if Replay.verdict_matches r report then `Ok ()
       else `Error (false, "replayed verdict differs from the recorded one"))
  | None ->
    (match
       build_instance ?file ~seed ~topology ~adversary ~knowledge ~dealer
         ~receiver ()
     with
     | Error e -> parse_error "%s" e
     | Ok inst ->
       let deadline =
         if budget <= 0 then None
         else Some (Unix.gettimeofday () +. float_of_int budget)
       in
       let should_stop () =
         match deadline with
         | None -> false
         | Some t -> Unix.gettimeofday () > t
       in
       let x_dealer = value in
       let violated = ref false in
       List.iter
         (fun p ->
           let report =
             Campaign.run ~should_stop ~x_dealer ~x_fake:(x_dealer + 1) ~seed
               ~attacks p inst
           in
           Printf.printf "%s\n"
             (Format.asprintf "%a" Campaign.pp_report report);
           (match report.Campaign.safety_violations with
            | [] -> ()
            | r :: _ ->
              violated := true;
              write_reproducer inst p ~x_dealer r out);
           if trace then
             match report.Campaign.silenced_examples with
             | r :: _ when report.Campaign.solvability <> Solvability.Solvable
               ->
               let _, rendered =
                 Campaign.execute_traced p inst ~x_dealer r.Campaign.program
               in
               Printf.printf "--- trace of a cut-exploiting silencing ---\n%s"
                 rendered
             | _ -> ())
         (fuzz_protocols protocol);
       if !violated then
         `Error (false, "safety violation found — reproducer written")
       else `Ok ())

(* ------------------------------------------------------------------ *)
(* sim                                                                 *)
(* ------------------------------------------------------------------ *)

let sim_protocols = function
  | `Pka -> [ Rmt_attack.Campaign.Pka ]
  | `Ppa -> [ Rmt_attack.Campaign.Ppa ]
  | `Zcpa -> [ Rmt_attack.Campaign.Zcpa ]
  | `Strawman -> [ Rmt_attack.Campaign.Strawman ]
  | `Cert_pka -> [ Rmt_attack.Campaign.Cert_pka ]
  | `Cert_ppa -> [ Rmt_attack.Campaign.Cert_ppa ]
  | `Certified -> Rmt_attack.Campaign.[ Cert_pka; Cert_ppa ]
  | `All -> Rmt_attack.Campaign.[ Pka; Ppa; Zcpa ]

(* Unlike the fuzz reproducer, the instance and program are kept as found:
   the schedule's sequence numbers are anchored to the exact send pattern
   of this (instance, program) pair, so only the schedule is shrunk. *)
let write_sim_reproducer inst protocol ~x_dealer ~shrink
    ((r : Rmt_attack.Campaign.run_report), sched) out =
  let open Rmt_attack in
  let r', sched' =
    if shrink then
      Rmt_sim.Sweep.shrink_violation ~budget:150 protocol ~x_dealer inst
        (r, sched)
    else (r, sched)
  in
  let replay =
    Replay.make ~expected:r'.Campaign.verdict ~protocol ~x_dealer inst
      r'.Campaign.program
  in
  match Rmt_sim.Sim_exec.write_pair ~rmt:out replay sched' with
  | Error e -> Printf.eprintf "cannot write reproducer %s: %s\n" out e
  | Ok sched_path ->
    Printf.printf "reproducer pair written: %s + %s\n" out sched_path

let sim file seed topology adversary knowledge dealer receiver value protocol
    schedules bound drops late loss budget out trace shrink replay_file =
  let open Rmt_attack in
  match replay_file with
  | Some path ->
    (match Rmt_sim.Sim_exec.load_pair ~rmt:path with
     | Error e -> parse_error "%s" e
     | Ok (r, sched) ->
       let report, rendered = Rmt_sim.Sim_exec.replay r sched in
       if trace then print_string rendered;
       Printf.printf "replay %s + %s: verdict %s%s\n" path
         (Rmt_sim.Sim_exec.sched_path_of path)
         (Campaign.verdict_to_string report.Campaign.verdict)
         (match r.Replay.expected with
          | None -> ""
          | Some v ->
            Printf.sprintf " (recorded: %s)" (Campaign.verdict_to_string v));
       if Replay.verdict_matches r report then `Ok ()
       else `Error (false, "replayed verdict differs from the recorded one"))
  | None ->
    (match
       build_instance ?file ~seed ~topology ~adversary ~knowledge ~dealer
         ~receiver ()
     with
     | Error e -> parse_error "%s" e
     | Ok inst ->
       let deadline =
         if budget <= 0 then None
         else Some (Unix.gettimeofday () +. float_of_int budget)
       in
       let should_stop () =
         match deadline with
         | None -> false
         | Some t -> Unix.gettimeofday () > t
       in
       let x_dealer = value in
       (* timely by default: Theorem 4's safety is scheduler-independent
          only while first deliveries stay on the synchronous timetable
          and channels stay reliable, so the 0-violation sweeps of CI run
          there; --bound > 1 and --drops opt into the boundary *)
       let params =
         let base =
           if drops > 0 then
             { Rmt_sim.Policy.default_params with
               Rmt_sim.Policy.drop_budget = drops
             }
           else if bound > 1 then Rmt_sim.Policy.lossless_params
           else Rmt_sim.Policy.timely_params
         in
         let base = { base with Rmt_sim.Policy.delay_bound = bound } in
         let base =
           match late with
           | Some p -> { base with Rmt_sim.Policy.p_late = p }
           | None -> base
         in
         match loss with
         | Some p -> { base with Rmt_sim.Policy.p_drop = p }
         | None -> base
       in
       let violated = ref false in
       List.iter
         (fun p ->
           let report =
             Rmt_sim.Sweep.run ~should_stop ~x_dealer ~x_fake:(x_dealer + 1)
               ~params ~seed ~schedules p inst
           in
           Printf.printf "%s\n"
             (Format.asprintf "%a" Rmt_sim.Sweep.pp_report report);
           match report.Rmt_sim.Sweep.safety_violations with
           | [] -> ()
           | v :: _ ->
             violated := true;
             write_sim_reproducer inst p ~x_dealer ~shrink v out)
         (sim_protocols protocol);
       if !violated then
         `Error (false, "safety violation found — reproducer pair written")
       else `Ok ())

(* ------------------------------------------------------------------ *)
(* serve-solve                                                         *)
(* ------------------------------------------------------------------ *)

(* Long-lived solvability service: consume a delta/query stream (a file
   with --replay, stdin otherwise) and answer at memoized cost.  One
   output line per command, deterministic — CI pins a golden transcript
   (instances/*.golden).  Exits non-zero if any command errored. *)
let serve_solve file seed topology adversary knowledge dealer receiver
    replay_file budget =
  match
    build_instance ?file ~seed ~topology ~adversary ~knowledge ~dealer
      ~receiver ()
  with
  | Error e -> parse_error "%s" e
  | Ok inst ->
    let service = Service.create inst in
    let budget = if budget <= 0 then None else Some budget in
    let run ic = Service.replay ?budget service ic stdout in
    let errors =
      match replay_file with
      | None -> run stdin
      | Some path -> In_channel.with_open_text path run
    in
    if errors = 0 then `Ok ()
    else parse_error "%d command(s) failed during the replay" errors

let serve_solve_cmd =
  let replay_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Read the update/query stream from a file instead of stdin \
             (see lib/core/service.mli for the line protocol).")
  in
  let budget_t =
    Arg.(
      value & opt int 0
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "Component-enumeration budget per search; 0 (the default) \
             means exhaustive.")
  in
  Cmd.v
    (Cmd.info "serve-solve"
       ~doc:
         "Run the streaming solvability service over a delta/query stream")
    Term.(
      ret
        (const serve_solve $ file_t $ seed_t $ topology_t $ adversary_t
         $ knowledge_t $ dealer_t $ receiver_t $ replay_t $ budget_t))

(* ------------------------------------------------------------------ *)
(* dot                                                                 *)
(* ------------------------------------------------------------------ *)

let dot file seed topology adversary knowledge dealer receiver =
  match
    build_instance ?file ~seed ~topology ~adversary ~knowledge ~dealer
      ~receiver ()
  with
  | Error e -> parse_error "%s" e
  | Ok inst ->
    print_string
      (Rmt_graph.Dot.instance_dot ~dealer:inst.dealer ~receiver:inst.receiver
         inst.graph);
    `Ok ()

(* ------------------------------------------------------------------ *)
(* Command wiring                                                      *)
(* ------------------------------------------------------------------ *)

let instance_args f =
  Term.(
    ret
      (const f $ file_t $ seed_t $ topology_t $ adversary_t $ knowledge_t
       $ dealer_t $ receiver_t))

let analyze_cmd =
  Cmd.v (Cmd.info "analyze" ~doc:"Feasibility analysis of an RMT instance")
    (instance_args analyze)

let run_command =
  Cmd.v (Cmd.info "run" ~doc:"Run a protocol on a simulated network")
    Term.(
      ret
        (const run_cmd $ file_t $ seed_t $ topology_t $ adversary_t
         $ knowledge_t $ dealer_t $ receiver_t $ value_t $ protocol_t
         $ corrupt_t $ strategy_t $ trace_t))

let attack_cmd =
  Cmd.v
    (Cmd.info "attack"
       ~doc:"Mount the two-face indistinguishability attack (Fig 2)")
    (instance_args attack)

let dot_cmd =
  Cmd.v (Cmd.info "dot" ~doc:"Emit the instance graph as Graphviz")
    (instance_args dot)

let fuzz_cmd =
  let protocol_t =
    Arg.(
      value
      & opt
          (enum
             [ ("pka", `Pka); ("ppa", `Ppa); ("zcpa", `Zcpa);
               ("cert-pka", `Cert_pka); ("cert-ppa", `Cert_ppa);
               ("certified", `Certified); ("all", `All) ])
          `All
      & info [ "protocol" ] ~docv:"pka|ppa|zcpa|cert-pka|cert-ppa|certified|all")
  in
  let attacks_t =
    Arg.(
      value & opt int 200
      & info [ "attacks" ] ~docv:"N" ~doc:"Attack programs per protocol.")
  in
  let budget_t =
    Arg.(
      value & opt int 0
      & info [ "budget" ] ~docv:"SECONDS"
          ~doc:"Wall-clock budget; 0 means run all $(b,--attacks) programs.")
  in
  let out_t =
    Arg.(
      value
      & opt string "fuzz_reproducer.rmt"
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Where to write the shrunk reproducer on a safety violation.")
  in
  let replay_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Replay a reproducer file instead of running a campaign.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Run a seeded adversarial fuzzing campaign (or replay a reproducer); \
          exits non-zero on any safety violation")
    Term.(
      ret
        (const fuzz $ file_t $ seed_t $ topology_t $ adversary_t $ knowledge_t
         $ dealer_t $ receiver_t $ value_t $ protocol_t $ attacks_t $ budget_t
         $ out_t $ trace_t $ replay_t))

let sim_cmd =
  let protocol_t =
    Arg.(
      value
      & opt
          (enum
             [ ("pka", `Pka); ("ppa", `Ppa); ("zcpa", `Zcpa);
               ("strawman", `Strawman); ("cert-pka", `Cert_pka);
               ("cert-ppa", `Cert_ppa); ("certified", `Certified);
               ("all", `All) ])
          `All
      & info [ "protocol" ]
          ~docv:"pka|ppa|zcpa|strawman|cert-pka|cert-ppa|certified|all")
  in
  let schedules_t =
    Arg.(
      value & opt int 200
      & info [ "schedules" ] ~docv:"N"
          ~doc:"Seeded (program, schedule) trials per protocol.")
  in
  let bound_t =
    Arg.(
      value & opt int 1
      & info [ "bound" ] ~docv:"B"
          ~doc:
            "Delay bound for the random delivery policy.  1 (the default) \
             keeps every first delivery on the synchronous timetable, where \
             protocol safety is guaranteed; larger bounds explore genuinely \
             asynchronous schedules, where RMT-PKA safety can fail.")
  in
  let drops_t =
    Arg.(
      value & opt int 0
      & info [ "drops" ] ~docv:"N"
          ~doc:
            "Per-schedule message-loss budget.  0 (the default) keeps \
             channels reliable, matching the paper's model; positive \
             values explore lossy schedules, where RMT-PKA safety is no \
             longer guaranteed.")
  in
  let late_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "late" ] ~docv:"P"
          ~doc:
            "Override the per-message late-delivery probability (effective \
             only with $(b,--bound) > 1).  Aggressive values push multi-hop \
             evidence past a certified protocol's commit round — the \
             boundary lanes drive the out-of-envelope sweeps with this.")
  in
  let loss_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "loss" ] ~docv:"P"
          ~doc:
            "Override the per-message drop probability (effective only with \
             $(b,--drops) > 0; the budget still caps total losses).  High \
             values concentrate the budget on the earliest sends, where a \
             drop suppresses a whole flood subtree.")
  in
  let budget_t =
    Arg.(
      value & opt int 0
      & info [ "budget" ] ~docv:"SECONDS"
          ~doc:"Wall-clock budget; 0 means run all $(b,--schedules) trials.")
  in
  let out_t =
    Arg.(
      value
      & opt string "sim_reproducer.rmt"
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Where to write the reproducer pair on a safety violation (the \
             schedule lands next to it with a .sched extension).")
  in
  let shrink_t =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:"Minimize a violating schedule before writing the pair.")
  in
  let replay_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay a reproducer pair (FILE.rmt + FILE.sched) instead of \
             running a sweep.")
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:
         "Run protocols on the asynchronous simulator under seeded \
          adversarial schedules (or replay a reproducer pair); exits \
          non-zero on any safety violation")
    Term.(
      ret
        (const sim $ file_t $ seed_t $ topology_t $ adversary_t $ knowledge_t
         $ dealer_t $ receiver_t $ value_t $ protocol_t $ schedules_t
         $ bound_t $ drops_t $ late_t $ loss_t $ budget_t $ out_t $ trace_t
         $ shrink_t $ replay_t))

let save file seed topology adversary knowledge dealer receiver out =
  match
    build_instance ?file ~seed ~topology ~adversary ~knowledge ~dealer
      ~receiver ()
  with
  | Error e -> parse_error "%s" e
  | Ok inst ->
    (match Codec.to_file out inst with
     | Ok () ->
       Printf.printf "wrote %s\n" out;
       `Ok ()
     | Error e -> parse_error "%s" e)

let save_cmd =
  let out_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "save" ~doc:"Serialize the instance described by the specs")
    Term.(
      ret
        (const save $ file_t $ seed_t $ topology_t $ adversary_t $ knowledge_t
         $ dealer_t $ receiver_t $ out_t))

let () =
  let info =
    Cmd.info "rmt" ~version:"1.0.0"
      ~doc:
        "Reliable Message Transmission under partial knowledge and general \
         adversaries (Pagourtzis, Panagiotakos, Sakavalas)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ analyze_cmd; run_command; attack_cmd; fuzz_cmd; sim_cmd;
            serve_solve_cmd; dot_cmd; save_cmd ]))
