(* Tests for the adversarial fuzzing engine (lib/attack): program
   serialization, generated-attack safety (Theorem 4 as a property),
   campaign classification over the checked-in instances, delta-debugging
   shrinking, and reproducer replay. *)

open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge
open Rmt_attack

let check = Alcotest.(check bool)
let ns = Nodeset.of_list

let instances_dir = "../../instances"

(* The campaign seed documented in EXPERIMENTS.md: every assertion below
   about campaign outcomes is reproducible with it. *)
let campaign_seed = 2016

let repo_instances () =
  Sys.readdir instances_dir |> Array.to_list |> List.sort compare
  |> List.filter (fun f -> Filename.check_suffix f ".rmt")
  |> List.map (fun f ->
         match Codec.of_file (Filename.concat instances_dir f) with
         | Ok inst -> (Filename.chop_suffix f ".rmt", inst)
         | Error e -> Alcotest.failf "cannot load %s: %s" f e)

(* ------------------------------------------------------------------ *)
(* Program serialization                                               *)
(* ------------------------------------------------------------------ *)

let test_program_roundtrip () =
  let p =
    Program.make ~seed:77
      [
        {
          Program.node = 2;
          base = Program.Drop 0.5;
          injects = [ Program.Flip_value 9; Program.Lie_topology ];
        };
        {
          Program.node = 5;
          base = Program.Crash_after 1;
          injects = [ Program.Spam { spam_seed = 3; rounds = 2 } ];
        };
        { Program.node = 1; base = Program.Silent; injects = [] };
      ]
  in
  (match Program.of_lines (Program.to_lines p) with
   | Ok p' -> check "roundtrip" true (Program.equal p p')
   | Error e -> Alcotest.fail e);
  check "sorted by node" true
    (List.map (fun np -> np.Program.node) p.Program.nodes = [ 1; 2; 5 ]);
  check "corrupted set" true (Nodeset.equal (Program.corrupted p) (ns [ 1; 2; 5 ]))

let test_program_roundtrip_random =
  let gen st =
    let rng = Prng.create (QCheck.Gen.int_bound 1_000_000 st) in
    let g = Generators.layered ~width:3 ~depth:2 in
    let inst =
      Instance.ad_hoc_of ~graph:g
        ~structure:(Builders.global_threshold g ~dealer:0 1)
        ~dealer:0 ~receiver:(Graph.num_nodes g - 1)
    in
    Strategy_gen.random rng inst ~x_dealer:7 ~x_fake:8
  in
  let arb =
    QCheck.make ~print:(fun p -> Format.asprintf "%a" Program.pp p) gen
  in
  QCheck.Test.make ~count:100 ~name:"program to_lines/of_lines roundtrip" arb
    (fun p ->
      match Program.of_lines (Program.to_lines p) with
      | Ok p' -> Program.equal p p'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* mimic_honest single-run guard                                       *)
(* ------------------------------------------------------------------ *)

let test_mimic_reuse_raises () =
  let g = Generators.layered ~width:3 ~depth:2 in
  let inst =
    Instance.ad_hoc_of ~graph:g
      ~structure:(Builders.global_threshold g ~dealer:0 1)
      ~dealer:0 ~receiver:(Graph.num_nodes g - 1)
  in
  let auto = Rmt_core.Rmt_pka.automaton inst ~x_dealer:7 in
  let strategy = Rmt_net.Byzantine.mimic_honest (ns [ 1 ]) auto in
  let run () =
    ignore
      (Rmt_net.Engine.run ~graph:inst.Instance.graph ~adversary:strategy auto)
  in
  run ();
  (* second run must be detected, not silently replay stale state *)
  (try
     run ();
     Alcotest.fail "strategy reuse across runs was not detected"
   with Invalid_argument _ -> ());
  (* a fresh strategy works fine *)
  let fresh = Rmt_net.Byzantine.mimic_honest (ns [ 1 ]) auto in
  ignore (Rmt_net.Engine.run ~graph:inst.Instance.graph ~adversary:fresh auto)

(* ------------------------------------------------------------------ *)
(* Generated attacks never break safety (Theorem 4 as a property)      *)
(* ------------------------------------------------------------------ *)

(* shared across suites: test/gen *)
let arb_instance_and_seed = Rmt_test_gen.Gen.arb_instance_and_seed

let never_wrong_on_solvable protocol name =
  QCheck.Test.make ~count:40
    ~name:
      (Printf.sprintf "%s: no generated attack is ever wrong when solvable"
         name)
    arb_instance_and_seed
    (fun (inst, seed) ->
      if Campaign.solvability protocol inst <> Rmt_core.Solvability.Solvable
      then true
      else begin
        let rng = Prng.create seed in
        let ok = ref true in
        for _ = 1 to 3 do
          let p = Strategy_gen.random rng inst ~x_dealer:7 ~x_fake:8 in
          let r = Campaign.execute protocol inst ~x_dealer:7 p in
          (match r.Campaign.verdict with
           | Campaign.Violated _ -> ok := false
           | Campaign.Delivered | Campaign.Silenced -> ())
        done;
        !ok
      end)

(* ------------------------------------------------------------------ *)
(* Campaigns over the checked-in instances                             *)
(* ------------------------------------------------------------------ *)

let test_campaign_acceptance () =
  let found_cut_attack = ref false in
  List.iter
    (fun (name, inst) ->
      let r =
        Campaign.run ~seed:campaign_seed ~attacks:40 Campaign.Pka inst
      in
      check
        (Printf.sprintf "%s: attacks executed" name)
        true
        (r.Campaign.attacks = 40);
      (match r.Campaign.solvability with
       | Rmt_core.Solvability.Solvable ->
         check
           (Printf.sprintf "%s: no safety violation (Thm 4)" name)
           true
           (r.Campaign.safety_violations = []);
         check
           (Printf.sprintf "%s: no liveness loss (Thm 5)" name)
           true
           (r.Campaign.liveness_lost = 0)
       | _ ->
         check
           (Printf.sprintf "%s: unsafe decisions impossible (Thm 4)" name)
           true
           (r.Campaign.safety_violations = [] && r.Campaign.violated = 0);
         if r.Campaign.silenced_examples <> [] then
           found_cut_attack := true))
    (repo_instances ());
  (* path4_unsolvable must yield at least one genuine silencing attack *)
  check "a cut-exploiting attack was found on an unsolvable instance" true
    !found_cut_attack

let test_campaign_deterministic () =
  let _, inst = List.hd (repo_instances ()) in
  let run () =
    Campaign.run ~seed:campaign_seed ~attacks:20 Campaign.Pka inst
  in
  let a = run () and b = run () in
  check "same report" true (a = b)

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

(* Path 0-1-2-3 with pendant nodes 4 (off 1) and 5 (off 2); any single
   corrupted middle node silences the receiver, and the pendants are
   removable noise the shrinker must strip. *)
let pendant_path_instance () =
  let g =
    Graph.of_edges [ (0, 1); (1, 2); (2, 3); (1, 4); (2, 5) ]
  in
  let ground = ns [ 1; 2; 3; 4; 5 ] in
  let structure =
    Structure.of_sets ~ground
      [ ns [ 1 ]; ns [ 2 ]; ns [ 3 ]; ns [ 4 ]; ns [ 5 ] ]
  in
  Instance.make ~graph:g ~structure ~view:(View.ad_hoc g) ~dealer:0
    ~receiver:3

let noisy_silencing_program =
  Program.make ~seed:91
    [
      {
        Program.node = 1;
        base = Program.Silent;
        injects =
          [ Program.Lie_topology; Program.Spam { spam_seed = 5; rounds = 2 } ];
      };
    ]

let test_shrink_minimal () =
  let inst = pendant_path_instance () in
  let p = noisy_silencing_program in
  let r = Campaign.execute Campaign.Pka inst ~x_dealer:7 p in
  check "starting attack silences" true (r.Campaign.verdict = Campaign.Silenced);
  let keep =
    Shrink.keep_verdict Campaign.Pka ~x_dealer:7 ~verdict:Campaign.Silenced
  in
  let inst', p' = Shrink.minimize ~keep inst p in
  check "shrinks to <= 4 nodes" true (Instance.num_nodes inst' <= 4);
  check "pendants removed" true
    (not
       (Graph.mem_node 4 inst'.Instance.graph
       || Graph.mem_node 5 inst'.Instance.graph));
  check "single corrupted node" true
    (Nodeset.size (Program.corrupted p') = 1);
  check "injections stripped" true (p'.Program.nodes <> []
    && (List.hd p'.Program.nodes).Program.injects = []);
  check "still silences" true (keep inst' p');
  (* determinism: shrinking again lands on the identical minimum *)
  let inst'', p'' = Shrink.minimize ~keep inst p in
  check "deterministic instance" true
    (Graph.equal inst'.Instance.graph inst''.Instance.graph);
  check "deterministic program" true (Program.equal p' p'')

let test_shrink_preserves_predicate () =
  (* on a solvable instance, shrinking a Delivered run stays Delivered *)
  let _, inst =
    List.find
      (fun (_, i) ->
        Campaign.solvability Campaign.Pka i = Rmt_core.Solvability.Solvable)
      (repo_instances ())
  in
  let rng = Prng.create 4 in
  let p = Strategy_gen.random rng inst ~x_dealer:7 ~x_fake:8 in
  let r = Campaign.execute Campaign.Pka inst ~x_dealer:7 p in
  if
    r.Campaign.verdict = Campaign.Delivered
    && not (Nodeset.is_empty (Program.corrupted p))
  then begin
    let keep =
      Shrink.keep_verdict Campaign.Pka ~x_dealer:7
        ~verdict:Campaign.Delivered
    in
    let inst', p' = Shrink.minimize ~budget:120 ~keep inst p in
    check "shrunk pair still delivers" true (keep inst' p');
    check "never grows" true
      (Program.size p' + Instance.num_nodes inst'
      <= Program.size p + Instance.num_nodes inst)
  end

(* ------------------------------------------------------------------ *)
(* Receiver regression caught by the campaign engine                   *)
(* ------------------------------------------------------------------ *)

(* The FUZZ campaign's first genuine catch (seed 2016, 500 programs on
   mesh_showcase): a silent relay spamming structurally random garbage
   made RMT-PKA output the spammed value.  The receiver's subset search
   pruned the spammer itself out of V_M, the claimed graph G_M lost every
   D–R path, the "all D–R paths of G_M carry x" fullness check became
   vacuously true, and the cover search had no certified honest component
   left to veto the decision.  The minimal reproducer below is the
   delta-debugged output of the campaign; the fixed receiver (which
   rejects message sets whose claimed graph disconnects D from R) must
   deliver the dealer's value.  See DESIGN.md §5. *)
let test_vacuous_fullness_regression () =
  let g =
    Graph.of_edges
      [
        (0, 1); (0, 4); (1, 2); (1, 5); (2, 3); (2, 6); (3, 7); (4, 5);
        (4, 8); (5, 6); (5, 9); (6, 7); (6, 10); (7, 11); (8, 9); (9, 10);
        (10, 11);
      ]
  in
  let ground = ns [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 ] in
  let structure =
    Structure.of_sets ~ground [ ns [ 5 ]; ns [ 6 ]; ns [ 7; 8 ] ]
  in
  let inst =
    Instance.make ~graph:g ~structure ~view:(View.radius 2 g) ~dealer:0
      ~receiver:11
  in
  check "instance solvable" true
    (Campaign.solvability Campaign.Pka inst = Rmt_core.Solvability.Solvable);
  let p =
    Program.make ~seed:869326885
      [
        {
          Program.node = 7;
          base = Program.Silent;
          injects = [ Program.Spam { spam_seed = 421277; rounds = 4 } ];
        };
      ]
  in
  check "corruption admissible" true
    (Instance.admissible inst (Program.corrupted p));
  let r = Campaign.execute Campaign.Pka inst ~x_dealer:42 p in
  check "fixed receiver delivers" true
    (r.Campaign.verdict = Campaign.Delivered)

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

let test_replay_roundtrip () =
  let inst = pendant_path_instance () in
  let keep =
    Shrink.keep_verdict Campaign.Pka ~x_dealer:7 ~verdict:Campaign.Silenced
  in
  let inst', p' = Shrink.minimize ~keep inst noisy_silencing_program in
  let direct, direct_trace =
    Campaign.execute_traced Campaign.Pka inst' ~x_dealer:7 p'
  in
  let repro =
    Replay.make ~expected:direct.Campaign.verdict ~protocol:Campaign.Pka
      ~x_dealer:7 inst' p'
  in
  let text =
    match Replay.to_string repro with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  match Replay.of_string text with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
    check "protocol survives" true (parsed.Replay.protocol = Campaign.Pka);
    check "x_dealer survives" true (parsed.Replay.x_dealer = 7);
    check "program survives" true (Program.equal parsed.Replay.program p');
    let replayed, replay_trace = Replay.replay parsed in
    check "identical verdict" true
      (replayed.Campaign.verdict = direct.Campaign.verdict);
    check "recorded verdict matches" true
      (Replay.verdict_matches parsed replayed);
    check "identical trace" true (replay_trace = direct_trace)

let test_replay_file () =
  let inst = pendant_path_instance () in
  let repro =
    Replay.make ~protocol:Campaign.Pka ~x_dealer:7 inst
      noisy_silencing_program
  in
  let path = Filename.temp_file "rmt_repro" ".rmt" in
  (match Replay.to_file path repro with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  (match Replay.of_file path with
   | Ok parsed ->
     let r, _ = Replay.replay parsed in
     check "file replay silences" true
       (r.Campaign.verdict = Campaign.Silenced)
   | Error e -> Alcotest.fail e);
  Sys.remove path

(* ------------------------------------------------------------------ *)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "attack"
    [
      ( "program",
        [
          Alcotest.test_case "roundtrip" `Quick test_program_roundtrip;
          qt test_program_roundtrip_random;
        ] );
      ( "byzantine",
        [ Alcotest.test_case "mimic reuse raises" `Quick test_mimic_reuse_raises ] );
      ( "safety",
        [
          qt (never_wrong_on_solvable Campaign.Pka "RMT-PKA");
          qt (never_wrong_on_solvable Campaign.Ppa "PPA");
          qt (never_wrong_on_solvable Campaign.Zcpa "Z-CPA");
        ] );
      ( "campaign",
        [
          Alcotest.test_case "acceptance over instances/" `Quick
            test_campaign_acceptance;
          Alcotest.test_case "deterministic" `Quick test_campaign_deterministic;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "minimal reproducer" `Quick test_shrink_minimal;
          Alcotest.test_case "predicate preserved" `Quick
            test_shrink_preserves_predicate;
        ] );
      ( "regression",
        [
          Alcotest.test_case "vacuous-fullness (spam) reproducer" `Quick
            test_vacuous_fullness_regression;
        ] );
      ( "replay",
        [
          Alcotest.test_case "roundtrip" `Quick test_replay_roundtrip;
          Alcotest.test_case "file io" `Quick test_replay_file;
        ] );
    ]
