(* The fuzz campaign's pinned reproducer (the vacuous-fullness regression,
   see test_attack.ml and DESIGN.md §5) replayed twice in one process
   under OCAMLRUNPARAM=R: every hash table draws a different random seed
   on each replay, so the two delivery traces are byte-identical only if
   no decision or trace path depends on table iteration order. *)

open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge
open Rmt_attack

let ns = Nodeset.of_list

let () =
  match Sys.getenv_opt "OCAMLRUNPARAM" with
  | Some p when String.exists (fun c -> c = 'R') p -> ()
  | _ ->
    prerr_endline
      "test_replay_determinism: OCAMLRUNPARAM must contain R (run via dune)";
    exit 1

let pinned_reproducer () =
  let g =
    Graph.of_edges
      [
        (0, 1); (0, 4); (1, 2); (1, 5); (2, 3); (2, 6); (3, 7); (4, 5);
        (4, 8); (5, 6); (5, 9); (6, 7); (6, 10); (7, 11); (8, 9); (9, 10);
        (10, 11);
      ]
  in
  let ground = ns [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 ] in
  let structure =
    Structure.of_sets ~ground [ ns [ 5 ]; ns [ 6 ]; ns [ 7; 8 ] ]
  in
  let inst =
    Instance.make ~graph:g ~structure ~view:(View.radius 2 g) ~dealer:0
      ~receiver:11
  in
  let p =
    Program.make ~seed:869326885
      [
        {
          Program.node = 7;
          base = Program.Silent;
          injects = [ Program.Spam { spam_seed = 421277; rounds = 4 } ];
        };
      ]
  in
  Replay.make ~expected:Campaign.Delivered ~protocol:Campaign.Pka ~x_dealer:42
    inst p

let () =
  let repro = pinned_reproducer () in
  let r1, t1 = Replay.replay repro in
  let r2, t2 = Replay.replay repro in
  if not (Replay.verdict_matches repro r1) then begin
    Printf.eprintf "first replay verdict drifted: %s\n"
      (Campaign.verdict_to_string r1.Campaign.verdict);
    exit 1
  end;
  if not (Campaign.verdict_equal r1.Campaign.verdict r2.Campaign.verdict)
  then begin
    Printf.eprintf "replay verdicts diverge: %s vs %s\n"
      (Campaign.verdict_to_string r1.Campaign.verdict)
      (Campaign.verdict_to_string r2.Campaign.verdict);
    exit 1
  end;
  if not (String.equal t1 t2) then begin
    prerr_endline "replay traces diverge under randomized hashtable seeds:";
    prerr_endline "--- first ---";
    prerr_endline t1;
    prerr_endline "--- second ---";
    prerr_endline t2;
    exit 1
  end;
  Printf.printf
    "pinned reproducer: byte-identical trace (%d deliveries rendered) on \
     both replays\n"
    (List.length (String.split_on_char '\n' t1))
