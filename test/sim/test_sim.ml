(* Tests for the deterministic simulation runtime (lib/sim): schedule
   serialization, delivery policies, the two pinned properties of the
   simulator — sync-equivalence (bound-1 FIFO reproduces the synchronous
   engine bit for bit) and scheduler-independent safety (Theorem 4 holds
   under every delivery schedule) — plus schedule shrinking and the
   pinned strawman reproducer pair. *)

open Rmt_base
open Rmt_knowledge
open Rmt_attack
open Rmt_sim

let check = Alcotest.(check bool)

let instances_dir = "../../instances"

let repo_instances () =
  Sys.readdir instances_dir |> Array.to_list |> List.sort compare
  |> List.filter (fun f -> Filename.check_suffix f ".rmt")
  |> List.map (fun f ->
         match Codec.of_file (Filename.concat instances_dir f) with
         | Ok inst -> (Filename.chop_suffix f ".rmt", inst)
         | Error e -> Alcotest.failf "cannot load %s: %s" f e)

let all_protocols =
  Campaign.[ Pka; Ppa; Zcpa; Strawman; Cert_pka; Cert_ppa ]

(* ------------------------------------------------------------------ *)
(* Schedule serialization                                              *)
(* ------------------------------------------------------------------ *)

let test_schedule_golden () =
  let sched =
    Schedule.make ~bound:3
      [
        (12, { Schedule.drop = false; delay = 3; key = 0; dup = None });
        (17, { Schedule.drop = false; delay = 1; key = 2; dup = None });
        (23, Schedule.drop_decision);
        (30, { Schedule.drop = false; delay = 2; key = 1; dup = Some 1 });
      ]
  in
  Alcotest.(check string)
    "golden text"
    "# rmt schedule\n\
     sched-bound 3\n\
     sched 12 delay 3\n\
     sched 17 key 2\n\
     sched 23 drop\n\
     sched 30 delay 2 key 1 dup 1\n"
    (Schedule.to_string sched)

let test_schedule_normalization () =
  (* synchronous entries are discarded, drops canonicalized, order fixed *)
  let sched =
    Schedule.make ~bound:2
      [
        (9, Schedule.sync_decision);
        (4, { Schedule.drop = true; delay = 2; key = 3; dup = Some 1 });
        (1, { Schedule.drop = false; delay = 2; key = 0; dup = None });
      ]
  in
  check "sync entry dropped, drop canonicalized" true
    (Schedule.entries sched
    = [
        (1, { Schedule.drop = false; delay = 2; key = 0; dup = None });
        (4, Schedule.drop_decision);
      ]);
  check "decision_for defaults to sync" true
    (Schedule.decision_equal (Schedule.decision_for sched 9)
       Schedule.sync_decision);
  check "size counts non-sync weight" true (Schedule.size sched = 2);
  check "sync schedule is empty and weightless" true
    (Schedule.entries Schedule.sync = [] && Schedule.size Schedule.sync = 0)

let test_schedule_validation () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check "bound < 1" true (raises (fun () -> Schedule.make ~bound:0 []));
  check "negative seq" true
    (raises (fun () -> Schedule.make ~bound:1 [ (-1, Schedule.drop_decision) ]));
  check "delay < 1" true
    (raises (fun () ->
         Schedule.make ~bound:2
           [ (0, { Schedule.drop = false; delay = 0; key = 0; dup = None }) ]));
  check "duplicate seq" true
    (raises (fun () ->
         Schedule.make ~bound:2
           [ (3, Schedule.drop_decision); (3, Schedule.drop_decision) ]));
  check "parse error surfaces" true
    (Result.is_error (Schedule.of_string "sched nonsense\n"))

let gen_schedule st =
  let bound = 1 + QCheck.Gen.int_bound 3 st in
  let n = QCheck.Gen.int_bound 8 st in
  let seq = ref (-1) in
  let entries =
    List.init n (fun _ ->
        seq := !seq + 1 + QCheck.Gen.int_bound 4 st;
        let d =
          if QCheck.Gen.int_bound 4 st = 0 then Schedule.drop_decision
          else
            {
              Schedule.drop = false;
              delay = 1 + QCheck.Gen.int_bound (bound - 1) st;
              key = QCheck.Gen.int_bound 3 st;
              dup =
                (if QCheck.Gen.bool st then
                   Some (1 + QCheck.Gen.int_bound 2 st)
                 else None);
            }
        in
        (!seq, d))
  in
  Schedule.make ~bound entries

let arb_schedule =
  QCheck.make ~print:(fun s -> Format.asprintf "%a" Schedule.pp s) gen_schedule

let test_schedule_roundtrip_random =
  QCheck.Test.make ~count:200 ~name:"schedule to_string/of_string roundtrip"
    arb_schedule (fun s ->
      match Schedule.of_string (Schedule.to_string s) with
      | Ok s' -> Schedule.equal s s'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Policies                                                            *)
(* ------------------------------------------------------------------ *)

let test_policy_sync () =
  for seq = 0 to 10 do
    check "sync policy decides sync" true
      (Schedule.decision_is_sync
         (Policy.decide Policy.sync ~seq ~round:(seq mod 3) ~src:0 ~dst:1))
  done;
  check "sync bound" true (Policy.bound Policy.sync = 1)

let test_policy_replay_matches_recording () =
  (* a recorded random policy and its of_schedule replay must make the
     identical decision on every sequence number *)
  let params = Policy.default_params in
  let recorded, freeze = Policy.record (Policy.random (Prng.create 11) params) in
  let decisions =
    List.init 40 (fun seq ->
        Policy.decide recorded ~seq ~round:(seq / 5) ~src:(seq mod 4)
          ~dst:((seq + 1) mod 4))
  in
  let sched = freeze () in
  let replay = Policy.of_schedule sched in
  check "replay bound matches" true (Policy.bound replay = Schedule.bound sched);
  List.iteri
    (fun seq d ->
      check
        (Printf.sprintf "decision %d replays" seq)
        true
        (Schedule.decision_equal d
           (Policy.decide replay ~seq ~round:(seq / 5) ~src:(seq mod 4)
              ~dst:((seq + 1) mod 4))))
    decisions

(* ------------------------------------------------------------------ *)
(* Sync-equivalence: bound-1 FIFO simulation == synchronous engine     *)
(* ------------------------------------------------------------------ *)

(* The tentpole property, pinned over every checked-in instance, every
   protocol, and a small family of attack programs: under Policy.sync
   the simulator must reproduce the engine's verdict, statistics, and
   delivery trace byte for byte. *)
let test_sync_equivalence_pinned () =
  List.iter
    (fun (name, inst) ->
      let programs =
        Program.make ~seed:0 []
        :: List.map
             (fun s ->
               Strategy_gen.random (Prng.create s) inst ~x_dealer:7 ~x_fake:8)
             [ 1; 2; 3 ]
      in
      List.iter
        (fun protocol ->
          List.iteri
            (fun i p ->
              let label =
                Printf.sprintf "%s/%s/program %d" name
                  (Campaign.protocol_to_string protocol)
                  i
              in
              let engine_r, engine_trace =
                Campaign.execute_traced protocol inst ~x_dealer:7 p
              in
              let sim_r, sim_trace =
                Sim_exec.execute_traced ~policy:Policy.sync protocol inst
                  ~x_dealer:7 p
              in
              check (label ^ ": identical report") true (engine_r = sim_r);
              check (label ^ ": identical trace") true
                (engine_trace = sim_trace))
            programs)
        all_protocols)
    (repo_instances ())

let arb_instance_and_seed = Rmt_test_gen.Gen.arb_instance_and_seed

let sync_equivalence_random protocol name =
  QCheck.Test.make ~count:40
    ~name:(Printf.sprintf "%s: sync simulation == engine on random instances" name)
    arb_instance_and_seed
    (fun (inst, seed) ->
      let p = Strategy_gen.random (Prng.create seed) inst ~x_dealer:7 ~x_fake:8 in
      let engine_r, engine_trace =
        Campaign.execute_traced protocol inst ~x_dealer:7 p
      in
      let sim_r, sim_trace =
        Sim_exec.execute_traced ~policy:Policy.sync protocol inst ~x_dealer:7 p
      in
      engine_r = sim_r && engine_trace = sim_trace)

(* ------------------------------------------------------------------ *)
(* Scheduler-independent safety (Theorem 4 under any schedule)         *)
(* ------------------------------------------------------------------ *)

(* Theorem 4 is scheduler-independent over timely schedules — every
   first delivery on the synchronous timetable, inboxes permuted, late
   duplicates allowed.  Outside that space the property is FALSE for
   RMT-PKA: delaying one honest report past the receiver's decision
   round (asynchrony) or dropping it (unreliable channels) hides the
   evidence that vetoes a forged trail.  The pinned fixtures below keep
   a shrunk counterexample for each boundary. *)
let safety_under_schedules protocol name =
  QCheck.Test.make ~count:30
    ~name:
      (Printf.sprintf
         "%s: no timely schedule makes an admissible attack violate" name)
    arb_instance_and_seed
    (fun (inst, seed) ->
      let solvability = Campaign.solvability protocol inst in
      let rng = Prng.create seed in
      let ok = ref true in
      for _ = 1 to 2 do
        let p = Strategy_gen.random rng inst ~x_dealer:7 ~x_fake:8 in
        let sched_seed = Prng.int rng 1_073_741_823 in
        let r, _ =
          Sim_exec.execute_recorded ~params:Policy.timely_params ~sched_seed
            protocol inst ~x_dealer:7 p
        in
        let admissible = Instance.admissible inst (Program.corrupted p) in
        if
          Campaign.classify ~solvability ~admissible r
          = Campaign.Safety_violation
        then ok := false
      done;
      !ok)

let test_sim_recorded_deterministic () =
  (* record/replay round-trips for every protocol, certified included —
     the recorded-verdict discipline must not be PKA-only *)
  let _, inst = List.hd (repo_instances ()) in
  let p = Strategy_gen.random (Prng.create 5) inst ~x_dealer:7 ~x_fake:8 in
  List.iter
    (fun protocol ->
      let name = Campaign.protocol_to_string protocol in
      let run () =
        Sim_exec.execute_recorded ~params:Policy.default_params ~sched_seed:99
          protocol inst ~x_dealer:7 p
      in
      let r1, s1 = run () and r2, s2 = run () in
      check (name ^ ": same report") true (r1 = r2);
      check (name ^ ": same schedule") true (Schedule.equal s1 s2);
      (* replaying the recorded schedule reproduces the recorded run *)
      let r3 =
        Sim_exec.execute ~policy:(Policy.of_schedule s1) protocol inst
          ~x_dealer:7 p
      in
      check (name ^ ": replay reproduces") true (r1 = r3))
    all_protocols

(* ------------------------------------------------------------------ *)
(* Schedule shrinking                                                  *)
(* ------------------------------------------------------------------ *)

let shrink_input =
  Schedule.make ~bound:4
    [
      (2, { Schedule.drop = false; delay = 4; key = 3; dup = Some 2 });
      (7, Schedule.drop_decision);
      (11, { Schedule.drop = false; delay = 2; key = 0; dup = None });
    ]

let test_shrink_to_sync () =
  (* an always-true predicate must shrink any schedule to the empty one *)
  let s = Sim_shrink.minimize ~keep:(fun _ -> true) shrink_input in
  check "all entries removed" true (Schedule.entries s = []);
  check "weightless" true (Schedule.size s = 0)

let test_shrink_respects_keep () =
  (* keeping "seq 7 still dropped" must preserve exactly that entry *)
  let keep s = (Schedule.decision_for s 7).Schedule.drop in
  let s = Sim_shrink.minimize ~keep shrink_input in
  check "predicate holds at fixpoint" true (keep s);
  check "only the needed entry survives" true
    (Schedule.entries s = [ (7, Schedule.drop_decision) ]);
  check "never grows" true (Schedule.size s <= Schedule.size shrink_input);
  (* determinism: shrinking again lands on the identical schedule *)
  let s' = Sim_shrink.minimize ~keep shrink_input in
  check "deterministic" true (Schedule.equal s s')

let test_shrink_budget () =
  let evals = ref 0 in
  let keep _ =
    incr evals;
    true
  in
  ignore (Sim_shrink.minimize ~budget:2 ~keep shrink_input);
  check "budget bounds evaluations" true (!evals <= 2)

(* ------------------------------------------------------------------ *)
(* The pinned reproducer pairs                                         *)
(* ------------------------------------------------------------------ *)

(* Generated by gen_fixture.ml:

   fixtures/strawman_reorder.{rmt,sched} pins the acceptance scenario —
   the order-sensitive strawman receiver is safe under the synchronous
   schedule but decides the corrupted relay's flipped value under the
   shrunk adversarial schedule.

   fixtures/pka_async_delay.{rmt,sched} pins the synchrony boundary —
   with one honest report delivered after the receiver's decision round
   (no message ever lost), RMT-PKA certifies a forged trail and decides
   a wrong value.

   fixtures/pka_message_loss.{rmt,sched} pins the reliable-channel
   boundary — the shrunk schedule consists of drops only, and losing one
   honest report is already enough for the same wrong decision.

   Together they delimit the timely schedule space swept by the safety
   property above: Theorem 4 holds under inbox permutation and late
   duplicates, and fails one step past either model assumption. *)

let fixture_replays ~rmt () =
  match Sim_exec.load_pair ~rmt with
  | Error e -> Alcotest.fail e
  | Ok (r, sched) ->
    check "schedule is genuinely asynchronous" true
      (Schedule.entries sched <> []);
    let report, _trace = Sim_exec.replay r sched in
    (match report.Campaign.verdict with
     | Campaign.Violated _ -> ()
     | v ->
       Alcotest.failf "expected a violation, got %s"
         (Campaign.verdict_to_string v));
    check "verdict matches the recorded one" true
      (Replay.verdict_matches r report);
    (* the violation belongs to the scheduler, not the program: the same
       attack under the synchronous schedule is harmless *)
    let sync_r =
      Sim_exec.execute ~policy:Policy.sync r.Replay.protocol
        r.Replay.instance ~x_dealer:r.Replay.x_dealer r.Replay.program
    in
    (match sync_r.Campaign.verdict with
     | Campaign.Violated _ ->
       Alcotest.fail "synchronous run violates too — schedule not needed"
     | Campaign.Delivered | Campaign.Silenced -> ())

let fixture_is_shrunk ~rmt () =
  match Sim_exec.load_pair ~rmt with
  | Error e -> Alcotest.fail e
  | Ok (r, sched) ->
    let expected =
      match r.Replay.expected with
      | Some v -> v
      | None -> Alcotest.fail "fixture lacks an expected verdict"
    in
    let keep =
      Sim_exec.keep_verdict r.Replay.protocol ~x_dealer:r.Replay.x_dealer
        ~verdict:expected r.Replay.instance r.Replay.program
    in
    let sched' = Sim_shrink.minimize ~keep sched in
    check "pinned schedule is a shrinking fixpoint" true
      (Schedule.equal sched sched')

let fixture_bytes_stable ~rmt () =
  (* byte-replayability: parsing and re-serializing the pinned schedule
     reproduces the file exactly *)
  let path = Sim_exec.sched_path_of rmt in
  let bytes = In_channel.with_open_text path In_channel.input_all in
  match Schedule.of_string bytes with
  | Error e -> Alcotest.fail e
  | Ok sched ->
    Alcotest.(check string) "re-serialization is identity" bytes
      (Schedule.to_string sched)

let strawman_rmt = "fixtures/strawman_reorder.rmt"
let pka_delay_rmt = "fixtures/pka_async_delay.rmt"
let pka_loss_rmt = "fixtures/pka_message_loss.rmt"

let test_strawman_is_reorder_violation () =
  (* the strawman pair must witness order sensitivity without any loss *)
  match Sim_exec.load_pair ~rmt:strawman_rmt with
  | Error e -> Alcotest.fail e
  | Ok (_, sched) ->
    check "no dropped message" true
      (List.for_all
         (fun (_, d) -> not d.Schedule.drop)
         (Schedule.entries sched))

let test_pka_delay_is_pure_delay () =
  (* the delay pair must witness the synchrony boundary alone: a late
     delivery survives shrinking and nothing is ever dropped *)
  match Sim_exec.load_pair ~rmt:pka_delay_rmt with
  | Error e -> Alcotest.fail e
  | Ok (r, sched) ->
    check "protocol is RMT-PKA" true (r.Replay.protocol = Campaign.Pka);
    check "no dropped message" true
      (List.for_all
         (fun (_, d) -> not d.Schedule.drop)
         (Schedule.entries sched));
    check "a late delivery survives shrinking" true
      (List.exists (fun (_, d) -> d.Schedule.delay > 1) (Schedule.entries sched))

let test_pka_loss_needs_a_drop () =
  (* the loss pair must witness the reliable-channel boundary alone: it
     was found under a drop-only policy, so every surviving entry is a
     drop and at least one remains after shrinking *)
  match Sim_exec.load_pair ~rmt:pka_loss_rmt with
  | Error e -> Alcotest.fail e
  | Ok (r, sched) ->
    check "protocol is RMT-PKA" true (r.Replay.protocol = Campaign.Pka);
    check "a dropped message survives shrinking" true
      (List.exists (fun (_, d) -> d.Schedule.drop) (Schedule.entries sched));
    check "nothing but drops" true
      (List.for_all (fun (_, d) -> d.Schedule.drop) (Schedule.entries sched))

(* ------------------------------------------------------------------ *)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "sim"
    [
      ( "schedule",
        [
          Alcotest.test_case "golden text" `Quick test_schedule_golden;
          Alcotest.test_case "normalization" `Quick test_schedule_normalization;
          Alcotest.test_case "validation" `Quick test_schedule_validation;
          qt test_schedule_roundtrip_random;
        ] );
      ( "policy",
        [
          Alcotest.test_case "sync" `Quick test_policy_sync;
          Alcotest.test_case "record/replay agree" `Quick
            test_policy_replay_matches_recording;
        ] );
      ( "sync-equivalence",
        [
          Alcotest.test_case "pinned over instances/" `Quick
            test_sync_equivalence_pinned;
          qt (sync_equivalence_random Campaign.Pka "RMT-PKA");
          qt (sync_equivalence_random Campaign.Ppa "PPA");
          qt (sync_equivalence_random Campaign.Zcpa "Z-CPA");
          qt (sync_equivalence_random Campaign.Strawman "strawman");
          qt (sync_equivalence_random Campaign.Cert_pka "cert-pka");
          qt (sync_equivalence_random Campaign.Cert_ppa "cert-ppa");
        ] );
      ( "safety",
        [
          qt (safety_under_schedules Campaign.Pka "RMT-PKA");
          qt (safety_under_schedules Campaign.Ppa "PPA");
          qt (safety_under_schedules Campaign.Zcpa "Z-CPA");
          (* strawman is deliberately absent: timely schedules permute
             inboxes, which is exactly what breaks it (the control). *)
          qt (safety_under_schedules Campaign.Cert_pka "cert-pka");
          qt (safety_under_schedules Campaign.Cert_ppa "cert-ppa");
          Alcotest.test_case "recorded run deterministic" `Quick
            test_sim_recorded_deterministic;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "to sync" `Quick test_shrink_to_sync;
          Alcotest.test_case "respects keep" `Quick test_shrink_respects_keep;
          Alcotest.test_case "budget" `Quick test_shrink_budget;
        ] );
      ( "strawman reproducer",
        [
          Alcotest.test_case "replays to a violation" `Quick
            (fixture_replays ~rmt:strawman_rmt);
          Alcotest.test_case "shrinking fixpoint" `Quick
            (fixture_is_shrunk ~rmt:strawman_rmt);
          Alcotest.test_case "bytes stable" `Quick
            (fixture_bytes_stable ~rmt:strawman_rmt);
          Alcotest.test_case "pure reordering, no loss" `Quick
            test_strawman_is_reorder_violation;
        ] );
      ( "asynchrony boundary",
        [
          Alcotest.test_case "replays to a violation" `Quick
            (fixture_replays ~rmt:pka_delay_rmt);
          Alcotest.test_case "shrinking fixpoint" `Quick
            (fixture_is_shrunk ~rmt:pka_delay_rmt);
          Alcotest.test_case "bytes stable" `Quick
            (fixture_bytes_stable ~rmt:pka_delay_rmt);
          Alcotest.test_case "pure delay, no loss" `Quick
            test_pka_delay_is_pure_delay;
        ] );
      ( "message-loss boundary",
        [
          Alcotest.test_case "replays to a violation" `Quick
            (fixture_replays ~rmt:pka_loss_rmt);
          Alcotest.test_case "shrinking fixpoint" `Quick
            (fixture_is_shrunk ~rmt:pka_loss_rmt);
          Alcotest.test_case "bytes stable" `Quick
            (fixture_bytes_stable ~rmt:pka_loss_rmt);
          Alcotest.test_case "needs a dropped message" `Quick
            test_pka_loss_needs_a_drop;
        ] );
    ]
