(* Regenerates the pinned reproducer pairs under test/sim/fixtures/.

   strawman_reorder.{rmt,sched} — the order-sensitive strawman receiver
   on figure1_basic: node 1 honestly relays the dealer's value but flips
   it to 80.  Under the synchronous schedule the receiver hears the
   honest relays first and delivers; the search finds a seeded random
   schedule under which the flipped value arrives first, then shrinks it
   to the minimal set of scheduling decisions that still flips the
   verdict.

   pka_async_delay.{rmt,sched} and pka_message_loss.{rmt,sched} — the
   two model boundaries of Theorem 4, found by sweeping the full
   message adversary over the shared small-instance distribution for
   triples where RMT-PKA decides a wrong value, then shrinking.  The
   delay witness defers honest evidence past the receiver's decision
   round using only late deliveries (the paper's synchrony assumption);
   the loss witness drops it outright (the reliable-channel
   assumption).  Under timely schedules no violation exists.

   Run from the repository root:  dune exec test/sim/gen_fixture.exe *)

open Rmt_base
open Rmt_knowledge
open Rmt_attack
open Rmt_sim

let shrink_and_write ~rmt protocol inst ~x_dealer program (r, sched) =
  let keep =
    Sim_exec.keep_verdict protocol ~x_dealer ~verdict:r.Campaign.verdict inst
      program
  in
  let sched' = Sim_shrink.minimize ~keep sched in
  let r' =
    Sim_exec.execute
      ~policy:(Policy.of_schedule sched')
      protocol inst ~x_dealer program
  in
  let replay =
    Replay.make ~expected:r'.Campaign.verdict ~protocol ~x_dealer inst program
  in
  match Sim_exec.write_pair ~rmt replay sched' with
  | Ok sched_path ->
    Printf.printf "%s: verdict=%s entries %d -> %d\n" sched_path
      (Campaign.verdict_to_string r'.Campaign.verdict)
      (List.length (Schedule.entries sched))
      (List.length (Schedule.entries sched'))
  | Error e -> failwith e

(* --- strawman_reorder ---------------------------------------------- *)

let gen_strawman () =
  let inst =
    match Codec.of_file "instances/figure1_basic.rmt" with
    | Ok i -> i
    | Error e -> failwith e
  in
  let x_dealer = 42 in
  let program =
    Program.make ~seed:2016
      [
        {
          Program.node = 1;
          base = Program.Honest;
          injects = [ Program.Flip_value 80 ];
        };
      ]
  in
  let sync_r =
    Sim_exec.execute ~policy:Policy.sync Campaign.Strawman inst ~x_dealer
      program
  in
  (match sync_r.Campaign.verdict with
   | Campaign.Delivered -> ()
   | v ->
     failwith
       ("synchronous run must deliver, got " ^ Campaign.verdict_to_string v));
  let rec search seed =
    if seed > 10_000 then failwith "no violating schedule found"
    else
      let r, sched =
        Sim_exec.execute_recorded ~params:Policy.timely_params
          ~sched_seed:seed Campaign.Strawman inst ~x_dealer program
      in
      match r.Campaign.verdict with
      | Campaign.Violated _ -> (r, sched)
      | Campaign.Delivered | Campaign.Silenced -> search (seed + 1)
  in
  shrink_and_write ~rmt:"test/sim/fixtures/strawman_reorder.rmt"
    Campaign.Strawman inst ~x_dealer program (search 0)

(* --- pka_message_loss ---------------------------------------------- *)

(* the shared small-instance distribution of test/gen *)
let small_instance_of_rng rng =
  let open Rmt_graph in
  let open Rmt_adversary in
  let n = 5 + Prng.int rng 3 in
  let g = Generators.random_connected_gnp rng n 0.5 in
  let structure =
    if Prng.bool rng then Builders.global_threshold g ~dealer:0 1
    else Builders.random_antichain rng g ~dealer:0 ~sets:3 ~max_size:2
  in
  Instance.ad_hoc_of ~graph:g ~structure ~dealer:0 ~receiver:(n - 1)

(* Sweep the small-instance distribution under [params] for a PKA
   safety violation whose SHRUNK schedule satisfies [witness]; write it
   as [name].{rmt,sched}. *)
let gen_pka_boundary ~name ~params ~witness =
  let x_dealer = 7 in
  let result = ref None in
  let outer = ref 0 in
  while !result = None do
    if !outer > 50_000 then failwith (name ^ ": no violation found");
    let rng = Prng.create !outer in
    let inst = small_instance_of_rng rng in
    let solvability = Campaign.solvability Campaign.Pka inst in
    for _ = 1 to 4 do
      let p = Strategy_gen.random rng inst ~x_dealer ~x_fake:8 in
      let sched_seed = Prng.int rng 1_073_741_823 in
      if !result = None then begin
        let r, sched =
          Sim_exec.execute_recorded ~params ~sched_seed Campaign.Pka inst
            ~x_dealer p
        in
        let admissible = Instance.admissible inst (Program.corrupted p) in
        if
          Campaign.classify ~solvability ~admissible r
          = Campaign.Safety_violation
        then begin
          (* the violation must be the scheduler's doing *)
          let sync_r =
            Sim_exec.execute ~policy:Policy.sync Campaign.Pka inst ~x_dealer p
          in
          match sync_r.Campaign.verdict with
          | Campaign.Violated _ -> ()
          | Campaign.Delivered | Campaign.Silenced ->
            let keep =
              Sim_exec.keep_verdict Campaign.Pka ~x_dealer
                ~verdict:r.Campaign.verdict inst p
            in
            let sched' = Sim_shrink.minimize ~keep sched in
            if witness sched' then result := Some (inst, p, r, sched)
        end
      end
    done;
    incr outer
  done;
  let inst, p, r, sched = Option.get !result in
  Printf.printf "%s witness: outer seed %d\n" name (!outer - 1);
  shrink_and_write
    ~rmt:("test/sim/fixtures/" ^ name ^ ".rmt")
    Campaign.Pka inst ~x_dealer p (r, sched)

let () =
  gen_strawman ();
  (* delay witness: violation reachable without loss, shrunk to pure
     late deliveries *)
  gen_pka_boundary ~name:"pka_async_delay" ~params:Policy.lossless_params
    ~witness:(fun sched ->
      List.for_all
        (fun (_, d) -> not d.Schedule.drop)
        (Schedule.entries sched));
  (* loss witness: drop-only policy, so every surviving entry is a drop *)
  gen_pka_boundary ~name:"pka_message_loss"
    ~params:
      {
        Policy.timely_params with
        Policy.p_reorder = 0.0;
        p_dup = 0.0;
        p_drop = 0.15;
        drop_budget = 3;
      }
    ~witness:(fun sched ->
      List.exists (fun (_, d) -> d.Schedule.drop) (Schedule.entries sched))
