open Rmt_base

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Nodeset                                                             *)
(* ------------------------------------------------------------------ *)

let ns = Nodeset.of_list

let nodeset_gen =
  QCheck.Gen.(map Nodeset.of_list (list_size (int_bound 12) (int_bound 80)))

let arb_nodeset =
  QCheck.make ~print:Nodeset.to_string nodeset_gen

let test_empty () =
  check "empty is empty" true (Nodeset.is_empty Nodeset.empty);
  check_int "empty size" 0 (Nodeset.size Nodeset.empty);
  check "no members" false (Nodeset.mem 0 Nodeset.empty)

let test_add_remove () =
  let s = ns [ 1; 5; 100 ] in
  check "mem 1" true (Nodeset.mem 1 s);
  check "mem 5" true (Nodeset.mem 5 s);
  check "mem 100" true (Nodeset.mem 100 s);
  check "not mem 2" false (Nodeset.mem 2 s);
  check_int "size" 3 (Nodeset.size s);
  let s' = Nodeset.remove 5 s in
  check "removed" false (Nodeset.mem 5 s');
  check_int "size after remove" 2 (Nodeset.size s');
  check "remove absent is id" true (Nodeset.equal s (Nodeset.remove 7 s));
  check "add present is id" true (Nodeset.equal s (Nodeset.add 1 s));
  (* no-ops return the input physically unchanged — no allocation *)
  check "add present is physical id" true (Nodeset.add 1 s == s);
  check "remove absent is physical id" true (Nodeset.remove 7 s == s);
  check "add absent still raises on negatives" true
    (match Nodeset.add (-3) s with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_negative_rejected () =
  Alcotest.check_raises "negative id" (Invalid_argument "Nodeset: negative node id")
    (fun () -> ignore (Nodeset.singleton (-1)))

let test_range () =
  check_int "range size" 5 (Nodeset.size (Nodeset.range 2 7));
  check "range lo" true (Nodeset.mem 2 (Nodeset.range 2 7));
  check "range hi-1" true (Nodeset.mem 6 (Nodeset.range 2 7));
  check "range hi excluded" false (Nodeset.mem 7 (Nodeset.range 2 7));
  check "empty range" true (Nodeset.is_empty (Nodeset.range 5 5));
  check "inverted range" true (Nodeset.is_empty (Nodeset.range 7 2))

let test_set_algebra () =
  let a = ns [ 1; 2; 3 ] and b = ns [ 3; 4 ] in
  check "union" true (Nodeset.equal (ns [ 1; 2; 3; 4 ]) (Nodeset.union a b));
  check "inter" true (Nodeset.equal (ns [ 3 ]) (Nodeset.inter a b));
  check "diff" true (Nodeset.equal (ns [ 1; 2 ]) (Nodeset.diff a b));
  check "subset yes" true (Nodeset.subset (ns [ 1; 3 ]) a);
  check "subset no" false (Nodeset.subset b a);
  check "disjoint no" false (Nodeset.disjoint a b);
  check "disjoint yes" true (Nodeset.disjoint a (ns [ 9; 64; 200 ]))

let test_cross_word_boundaries () =
  (* elements straddling several 62-bit words *)
  let a = ns [ 0; 61; 62; 63; 124; 300 ] in
  check_int "size" 6 (Nodeset.size a);
  check "mem 300" true (Nodeset.mem 300 a);
  let b = Nodeset.remove 300 a in
  check "trailing word trimmed: equal to explicit" true
    (Nodeset.equal b (ns [ 0; 61; 62; 63; 124 ]));
  (* normalization means arrays compare equal structurally *)
  check_int "compare equal" 0 (Nodeset.compare b (ns [ 124; 63; 62; 61; 0 ]))

let test_elements_sorted () =
  Alcotest.(check (list int))
    "ascending" [ 1; 2; 50; 63; 64 ]
    (Nodeset.elements (ns [ 64; 2; 50; 1; 63 ]))

let test_min_max_choose () =
  let s = ns [ 9; 4; 70 ] in
  Alcotest.(check (option int)) "min" (Some 4) (Nodeset.min_elt_opt s);
  Alcotest.(check (option int)) "max" (Some 70) (Nodeset.max_elt_opt s);
  Alcotest.(check (option int)) "choose empty" None
    (Nodeset.choose_opt Nodeset.empty)

let test_subsets_iter () =
  let count = ref 0 in
  Nodeset.subsets_iter (ns [ 1; 2; 3 ]) (fun _ -> incr count);
  check_int "2^3 subsets" 8 !count;
  let seen_full = ref false in
  Nodeset.subsets_iter (ns [ 1; 2 ]) (fun s ->
      if Nodeset.size s = 2 then seen_full := true);
  check "full subset visited" true !seen_full;
  Alcotest.check_raises "guard"
    (Invalid_argument "Nodeset.subsets_iter: universe too large") (fun () ->
      Nodeset.subsets_iter (Nodeset.range 0 21) (fun _ -> ()))

let test_fold_iter_filter () =
  let s = ns [ 1; 2; 3; 4 ] in
  check_int "fold sum" 10 (Nodeset.fold ( + ) s 0);
  check "for_all" true (Nodeset.for_all (fun v -> v > 0) s);
  check "exists" true (Nodeset.exists (fun v -> v = 3) s);
  check "exists no" false (Nodeset.exists (fun v -> v = 9) s);
  check "filter" true
    (Nodeset.equal (ns [ 2; 4 ]) (Nodeset.filter (fun v -> v mod 2 = 0) s))

let test_pp () =
  Alcotest.(check string) "pp" "{1, 2, 10}" (Nodeset.to_string (ns [ 10; 1; 2 ]))


let qcheck_nodeset =
  [
    QCheck.Test.make ~count:200 ~name:"union commutative"
      (QCheck.pair arb_nodeset arb_nodeset) (fun (a, b) ->
        Nodeset.equal (Nodeset.union a b) (Nodeset.union b a));
    QCheck.Test.make ~count:200 ~name:"inter assoc"
      (QCheck.triple arb_nodeset arb_nodeset arb_nodeset) (fun (a, b, c) ->
        Nodeset.equal
          (Nodeset.inter a (Nodeset.inter b c))
          (Nodeset.inter (Nodeset.inter a b) c));
    QCheck.Test.make ~count:200 ~name:"de morgan: a\\(b∪c) = (a\\b)∩(a\\c)"
      (QCheck.triple arb_nodeset arb_nodeset arb_nodeset) (fun (a, b, c) ->
        Nodeset.equal
          (Nodeset.diff a (Nodeset.union b c))
          (Nodeset.inter (Nodeset.diff a b) (Nodeset.diff a c)));
    QCheck.Test.make ~count:200 ~name:"subset antisymmetric"
      (QCheck.pair arb_nodeset arb_nodeset) (fun (a, b) ->
        (not (Nodeset.subset a b && Nodeset.subset b a)) || Nodeset.equal a b);
    QCheck.Test.make ~count:200 ~name:"compare consistent with equal"
      (QCheck.pair arb_nodeset arb_nodeset) (fun (a, b) ->
        Nodeset.compare a b = 0 = Nodeset.equal a b);
    QCheck.Test.make ~count:200 ~name:"size of union ≤ sum of sizes"
      (QCheck.pair arb_nodeset arb_nodeset) (fun (a, b) ->
        Nodeset.size (Nodeset.union a b) <= Nodeset.size a + Nodeset.size b);
    QCheck.Test.make ~count:200 ~name:"diff then union restores subset"
      (QCheck.pair arb_nodeset arb_nodeset) (fun (a, b) ->
        Nodeset.equal
          (Nodeset.union (Nodeset.diff a b) (Nodeset.inter a b))
          a);
  ]

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 99 and b = Prng.create 99 in
  let xs = List.init 20 (fun _ -> Prng.int a 1000) in
  let ys = List.init 20 (fun _ -> Prng.int b 1000) in
  Alcotest.(check (list int)) "same stream" xs ys

let test_prng_bounds () =
  let rng = Prng.create 1 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 7 in
    check "in bounds" true (v >= 0 && v < 7)
  done;
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int rng 0))

let test_prng_split () =
  let rng = Prng.create 5 in
  let child = Prng.split rng in
  let a = Prng.int rng 1_000_000 and b = Prng.int child 1_000_000 in
  (* different streams almost surely differ; fixed seed makes it exact *)
  check "split independent" true (a <> b)

let test_prng_float () =
  let rng = Prng.create 3 in
  for _ = 1 to 100 do
    let f = Prng.float rng 2.5 in
    check "float range" true (f >= 0.0 && f < 2.5)
  done

let test_prng_shuffle () =
  let rng = Prng.create 11 in
  let a = Array.init 30 Fun.id in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 30 Fun.id) sorted

let test_prng_sample () =
  let rng = Prng.create 13 in
  let s = Nodeset.range 0 20 in
  let sub = Prng.sample rng s 5 in
  check_int "sample size" 5 (Nodeset.size sub);
  check "sample subset" true (Nodeset.subset sub s);
  let all = Prng.sample rng s 100 in
  check "capped at size" true (Nodeset.equal all s)

let test_prng_subset () =
  let rng = Prng.create 17 in
  let s = Nodeset.range 0 50 in
  let sub = Prng.subset rng s 0.5 in
  check "subset" true (Nodeset.subset sub s);
  check "empty at p=0" true (Nodeset.is_empty (Prng.subset rng s 0.0));
  check "full at p=1... "
    true
    (Nodeset.equal s (Prng.subset rng s 1.1))

let test_prng_pick () =
  let rng = Prng.create 19 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 50 do
    check "pick member" true (Array.mem (Prng.pick rng a) a)
  done;
  Alcotest.check_raises "empty pick"
    (Invalid_argument "Prng.pick: empty array") (fun () ->
      ignore (Prng.pick rng [||]))

(* ------------------------------------------------------------------ *)
(* Util                                                                *)
(* ------------------------------------------------------------------ *)

let test_util_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Util.mean [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (Util.mean []);
  Alcotest.(check (float 1e-9)) "median odd" 2.0 (Util.median [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "median even" 2.5 (Util.median [ 4.; 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "p100" 9.0
    (Util.percentile 1.0 [ 9.; 1.; 5. ]);
  Alcotest.(check (float 1e-9)) "p50" 5.0 (Util.percentile 0.5 [ 9.; 1.; 5. ])

let test_util_lists () =
  check_int "product size" 6 (List.length (Util.list_product [ 1; 2 ] [ 3; 4; 5 ]));
  Alcotest.(check (list int)) "take" [ 1; 2 ] (Util.list_take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "take overlong" [ 1 ] (Util.list_take 5 [ 1 ]);
  check_int "sum_by" 6 (Util.sum_by Fun.id [ 1; 2; 3 ])

let test_util_group_by () =
  let groups =
    Util.group_by ~cmp:Int.compare (fun x -> x mod 2) [ 1; 2; 3; 4; 5 ]
  in
  check_int "two groups" 2 (List.length groups);
  Alcotest.(check (list int)) "evens" [ 2; 4 ] (List.assoc 0 groups);
  Alcotest.(check (list int)) "odds" [ 1; 3; 5 ] (List.assoc 1 groups)

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_table_render () =
  let t = Table.create [ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_sep t;
  Table.add_row t [ "b"; "22" ];
  let s = Table.to_string ~title:"demo" t in
  check "has title" true (String.length s > 0 && String.sub s 0 4 = "demo");
  check "mentions alpha" true (contains ~needle:"alpha" s);
  check "short rows padded" true (contains ~needle:"| b " s)

let test_table_cells () =
  Alcotest.(check string) "pct" "25.0%" (Table.cell_pct 0.25);
  Alcotest.(check string) "bool" "yes" (Table.cell_bool true);
  Alcotest.(check string) "ratio" "3/4" (Table.cell_ratio 3 4);
  Alcotest.(check string) "float" "1.50" (Table.cell_float 1.5)

let () =

  Alcotest.run "rmt_base"
    [
      ( "nodeset",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "add/remove" `Quick test_add_remove;
          Alcotest.test_case "negative rejected" `Quick test_negative_rejected;
          Alcotest.test_case "range" `Quick test_range;
          Alcotest.test_case "set algebra" `Quick test_set_algebra;
          Alcotest.test_case "word boundaries" `Quick test_cross_word_boundaries;
          Alcotest.test_case "elements sorted" `Quick test_elements_sorted;
          Alcotest.test_case "min/max/choose" `Quick test_min_max_choose;
          Alcotest.test_case "subsets_iter" `Quick test_subsets_iter;
          Alcotest.test_case "fold/iter/filter" `Quick test_fold_iter_filter;
          Alcotest.test_case "pp" `Quick test_pp;
        ] );
      ("nodeset-properties", List.map QCheck_alcotest.to_alcotest qcheck_nodeset);
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "split" `Quick test_prng_split;
          Alcotest.test_case "float" `Quick test_prng_float;
          Alcotest.test_case "shuffle" `Quick test_prng_shuffle;
          Alcotest.test_case "sample" `Quick test_prng_sample;
          Alcotest.test_case "subset" `Quick test_prng_subset;
          Alcotest.test_case "pick" `Quick test_prng_pick;
        ] );
      ( "util",
        [
          Alcotest.test_case "stats" `Quick test_util_stats;
          Alcotest.test_case "lists" `Quick test_util_lists;
          Alcotest.test_case "group_by" `Quick test_util_group_by;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "cells" `Quick test_table_cells;
        ] );
    ]
