(* Equivalence of the incremental operators with their from-scratch
   counterparts: Joint.join_delta vs Joint.join under operand growth,
   Cut.update vs Cut.find_rmt_cut along random delta streams, and the
   Service giving the same feasibility answers as one-shot Solvability
   at every generation. *)

open Rmt_base
open Rmt_adversary
open Rmt_knowledge
open Rmt_core

let check = Alcotest.(check bool)
let ns = Nodeset.of_list

let structure_gen universe =
  QCheck.Gen.(
    let* seed = int_bound 1_000_000 in
    let rng = Prng.create seed in
    let all = Nodeset.range 0 universe in
    let ground = Prng.subset rng all 0.7 in
    let* k = int_range 1 4 in
    let sets =
      List.init k (fun _ ->
          Prng.sample rng ground (Prng.int rng (1 + Nodeset.size ground)))
    in
    return (Structure.of_sets ~ground sets))

let arb_structure u = QCheck.make ~print:Structure.to_string (structure_gen u)

(* grow a structure in place: add random subsets of its own ground set,
   keeping the ground fixed (the join_delta fast-path precondition) *)
let grow rng s k =
  let ground = Structure.ground s in
  List.fold_left
    (fun acc _ ->
      if Nodeset.is_empty ground then acc
      else
        Structure.add_set
          (Prng.sample rng ground (1 + Prng.int rng (Nodeset.size ground)))
          acc)
    s (List.init k Fun.id)

let qcheck_props =
  [
    QCheck.Test.make ~count:150
      ~name:"join_delta (growth) = join from scratch, incremental path"
      (QCheck.triple (arb_structure 7) (arb_structure 7)
         (QCheck.make QCheck.Gen.(int_bound 1_000_000)))
      (fun (e, f, seed) ->
        let rng = Prng.create seed in
        let e' = grow rng e (1 + Prng.int rng 3) in
        let f' = grow rng f (Prng.int rng 3) in
        let prev = Joint.join e f in
        let j, tag = Joint.join_delta ~prev ~e ~f ~e' ~f' in
        Structure.equal j (Joint.join e' f') && tag = `Incremental);
    QCheck.Test.make ~count:100
      ~name:"join_delta falls back (and is exact) on non-growth deltas"
      (QCheck.triple (arb_structure 6) (arb_structure 6) (arb_structure 6))
      (fun (e, f, e') ->
        let prev = Joint.join e f in
        let j, _ = Joint.join_delta ~prev ~e ~f ~e' ~f':f in
        Structure.equal j (Joint.join e' f));
    QCheck.Test.make ~count:150
      ~name:"join_delta: unchanged operands return prev itself"
      (QCheck.pair (arb_structure 7) (arb_structure 7))
      (fun (e, f) ->
        let prev = Joint.join e f in
        let j, tag = Joint.join_delta ~prev ~e ~f ~e':e ~f':f in
        j == prev && tag = `Incremental);
    QCheck.Test.make ~count:60
      ~name:"Cut.update agrees with find_rmt_cut at every stream step"
      Rmt_test_gen.Gen.arb_instance_with_stream
      (fun (inst0, stream) ->
        let rec go inst prev = function
          | [] -> true
          | d :: rest -> (
            match Delta.apply inst d with
            | Error _ -> false (* generator promised a valid stream *)
            | Ok inst' ->
              let fresh = Cut.find_rmt_cut inst' in
              let upd, _ = Cut.update ~prev inst' in
              Cut.exists_certainly upd = Cut.exists_certainly fresh
              && Cut.absent_certainly upd = Cut.absent_certainly fresh
              && (* a reused witness must itself pass the direct check *)
              (match upd.Cut.cut_found with
               | Some w -> Cut.is_rmt_cut inst' w.Cut.c1 w.Cut.c2
               | None -> true)
              && go inst' upd rest)
        in
        go inst0 (Cut.find_rmt_cut inst0) stream);
    QCheck.Test.make ~count:60
      ~name:"Service feasibility = one-shot Solvability at every generation"
      Rmt_test_gen.Gen.arb_instance_with_stream
      (fun (inst0, stream) ->
        let service = Service.create inst0 in
        let ok0 =
          Solvability.feasibility_equal (Service.solvable service)
            (Solvability.partial_knowledge inst0)
        in
        let rec go inst ok = function
          | [] -> ok
          | d :: rest -> (
            match Delta.apply inst d with
            | Error _ -> false
            | Ok inst' ->
              (match Service.apply service d with
               | Error _ -> false
               | Ok () ->
                 let agree =
                   Solvability.feasibility_equal (Service.solvable service)
                     (Solvability.partial_knowledge inst')
                   (* second query must come from the generation cache *)
                   && Solvability.feasibility_equal (Service.solvable service)
                        (Solvability.partial_knowledge inst')
                 in
                 go inst' (ok && agree) rest))
        in
        ok0 && go inst0 ok0 stream);
  ]

let test_service_stats () =
  let g = Rmt_graph.Generators.layered ~width:3 ~depth:2 in
  let inst =
    Instance.ad_hoc_of ~graph:g
      ~structure:(Builders.global_threshold g ~dealer:0 1)
      ~dealer:0 ~receiver:7
  in
  let s = Service.create inst in
  ignore (Service.solvable s);
  ignore (Service.solvable s);
  let st = Service.stats s in
  check "two queries" true (st.Service.queries = 2);
  check "one search" true (st.Service.searches = 1);
  check "one cached" true (st.Service.cached = 1);
  check "no updates yet" true (st.Service.updates = 0 && Service.generation s = 0);
  (match Service.apply s (Delta.Add_set (ns [ 4; 5 ])) with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  check "generation bumped" true (Service.generation s = 1);
  check "now unsolvable" true
    (Solvability.feasibility_equal (Service.solvable s) Solvability.Unsolvable);
  check "rejected counted" true
    (Result.is_error (Service.apply s (Delta.Remove_node 0))
     && (Service.stats s).Service.rejected = 1)

let test_protocol_roundtrip () =
  let parse s =
    match Service.parse_command s with
    | Ok (Some c) -> c
    | Ok None -> Alcotest.fail ("unexpected skip: " ^ s)
    | Error m -> Alcotest.fail m
  in
  check "comment skipped" true (Service.parse_command "# hi" = Ok None);
  check "blank skipped" true (Service.parse_command "   " = Ok None);
  check "bad command rejected" true
    (Result.is_error (Service.parse_command "frobnicate 3"));
  let g = Rmt_graph.Generators.layered ~width:3 ~depth:2 in
  let inst =
    Instance.ad_hoc_of ~graph:g
      ~structure:(Builders.global_threshold g ~dealer:0 1)
      ~dealer:0 ~receiver:7
  in
  let s = Service.create inst in
  check "solvable line" true
    (String.equal (Service.exec s (parse "solvable?")) "solvable");
  check "update line" true
    (String.equal (Service.exec s (parse "add-set 4,5")) "ok 1");
  check "cut line" true
    (String.equal (Service.exec s (parse "cut?")) "cut c1=6 c2=4,5");
  check "stats line" true
    (String.equal
       (Service.exec s (parse "stats?"))
       "stats updates=1 rejected=0 queries=2 cached=0 reused=0 searched=2")

let () =
  Alcotest.run "incremental"
    [
      ( "unit",
        [
          Alcotest.test_case "service stats" `Quick test_service_stats;
          Alcotest.test_case "replay protocol" `Quick test_protocol_roundtrip;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
