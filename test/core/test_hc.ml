(* Tests for the hash-consing layer (DESIGN.md §12): canonical identity
   coincides with the typed equalities, the global memos compute the
   same values as the raw operations, and the tables survive a real
   Domain fan-out (the R6 domain-safety claim rmt-lint sanctions). *)

open Rmt_base
open Rmt_adversary
open Rmt_core

let check = Alcotest.(check bool)
let ns = Nodeset.of_list

let arb_set =
  QCheck.make
    ~print:Nodeset.to_string
    QCheck.Gen.(
      map Nodeset.of_list (list_size (int_bound 8) (int_bound 12)))

let structure_gen universe =
  QCheck.Gen.(
    let* seed = int_bound 1_000_000 in
    let rng = Prng.create seed in
    let all = Nodeset.range 0 universe in
    let ground = Prng.subset rng all 0.7 in
    let* k = int_range 1 4 in
    let sets =
      List.init k (fun _ ->
          Prng.sample rng ground (Prng.int rng (1 + Nodeset.size ground)))
    in
    return (Structure.of_sets ~ground sets))

let arb_structure u = QCheck.make ~print:Structure.to_string (structure_gen u)

let test_canonical () =
  Hc.clear ();
  let a = ns [ 1; 3; 7 ] in
  let b = ns [ 1; 3; 7 ] in
  check "same content, same canonical value" true (Hc.set a == Hc.set b);
  check "same content, same id" true (Hc.set_id a = Hc.set_id b);
  check "distinct content, distinct id" false
    (Hc.set_id a = Hc.set_id (ns [ 1; 3 ]));
  let s1 = Structure.of_sets ~ground:(ns [ 0; 1; 2 ]) [ ns [ 0; 1 ] ] in
  let s2 = Structure.of_sets ~ground:(ns [ 0; 1; 2 ]) [ ns [ 0; 1 ] ] in
  check "same structure, same canonical value" true
    (Hc.structure s1 == Hc.structure s2);
  check "structure ids agree" true (Hc.structure_id s1 = Hc.structure_id s2)

let test_stats_and_clear () =
  Hc.clear ();
  ignore (Hc.set (ns [ 1; 2 ]));
  ignore (Hc.set (ns [ 1; 2 ]));
  let s = Hc.stats () in
  check "one miss" true (s.Hc.set_misses = 1);
  check "one hit" true (s.Hc.set_hits = 1);
  Hc.clear ();
  let s = Hc.stats () in
  check "cleared" true (s.Hc.set_hits = 0 && s.Hc.set_misses = 0)

(* Four domains hammer the same value universe concurrently; afterwards
   ids must be a function of content — exactly the property the mutex
   protects.  (rmt-lint's R6 pass sanctions closures whose only mutable
   reach is lib/core/hc.ml on the strength of this test.) *)
let test_domain_safety () =
  Hc.clear ();
  let work seed () =
    let rng = Prng.create seed in
    List.init 200 (fun _ ->
        let z = Prng.sample rng (Nodeset.range 0 12) (1 + Prng.int rng 6) in
        (Nodeset.elements z, Hc.set_id z))
  in
  let domains = List.map (fun s -> Domain.spawn (work s)) [ 1; 2; 3; 4 ] in
  let pairs = List.concat_map Domain.join domains in
  List.iter
    (fun (elts1, id1) ->
      List.iter
        (fun (elts2, id2) ->
          check "id iff content" true ((elts1 = elts2) = (id1 = id2)))
        pairs)
    pairs

let qcheck_props =
  [
    QCheck.Test.make ~count:300
      ~name:"hash-consed set equality coincides with Nodeset.equal"
      (QCheck.pair arb_set arb_set)
      (fun (a, b) -> Hc.equal_set a b = Nodeset.equal a b);
    QCheck.Test.make ~count:200
      ~name:"hash-consed structure equality coincides with Structure.equal"
      (QCheck.pair (arb_structure 6) (arb_structure 6))
      (fun (s1, s2) -> Hc.equal_structure s1 s2 = Structure.equal s1 s2);
    QCheck.Test.make ~count:200
      ~name:"memo_restrict computes Structure.restrict"
      (QCheck.pair arb_set (arb_structure 8))
      (fun (a, z) ->
        Structure.equal (Hc.memo_restrict a z) (Structure.restrict a z)
        (* and again, through the cache *)
        && Structure.equal (Hc.memo_restrict a z) (Structure.restrict a z));
    QCheck.Test.make ~count:150 ~name:"join_memo computes Joint.join"
      (QCheck.pair (arb_structure 6) (arb_structure 6))
      (fun (e, f) ->
        Structure.equal (Joint.join_memo e f) (Joint.join e f)
        && Structure.equal (Joint.join_memo f e) (Joint.join e f));
  ]

let () =
  Alcotest.run "hc"
    [
      ( "unit",
        [
          Alcotest.test_case "canonical cells" `Quick test_canonical;
          Alcotest.test_case "stats and clear" `Quick test_stats_and_clear;
          Alcotest.test_case "domain safety" `Quick test_domain_safety;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
