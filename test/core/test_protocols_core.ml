(* Protocol-level tests: RMT-PKA (Theorems 4 and 5), Z-CPA for RMT
   (Theorems 7 and 8), the indistinguishability attacks, the strategy
   battery, and the baseline protocols. *)

open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge
open Rmt_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let ns = Nodeset.of_list

let dec = Alcotest.(option int)

let ad_hoc g ~t ~dealer ~receiver =
  Instance.ad_hoc_of ~graph:g
    ~structure:(Builders.global_threshold g ~dealer t)
    ~dealer ~receiver

let k4_t1 = ad_hoc (Generators.complete 4) ~t:1 ~dealer:0 ~receiver:3
let layered3 = ad_hoc (Generators.layered ~width:3 ~depth:2) ~t:1 ~dealer:0 ~receiver:7
let path4 = ad_hoc (Generators.path_graph 4) ~t:1 ~dealer:0 ~receiver:3

(* small random ad hoc instances, shared across suites (test/gen) *)
let arb_small_instance = Rmt_test_gen.Gen.arb_small_instance

(* ------------------------------------------------------------------ *)
(* RMT-PKA basics                                                      *)
(* ------------------------------------------------------------------ *)

let test_pka_dealer_rule () =
  (* receiver adjacent to dealer decides immediately, even under attack *)
  let g = Generators.complete 4 in
  let inst = ad_hoc g ~t:2 ~dealer:0 ~receiver:1 in
  let corrupted = ns [ 2; 3 ] in
  let adv = Strategies.pka_value_flip inst ~x_dealer:7 ~x_fake:9 corrupted in
  let r = Rmt_pka.run ~adversary:adv inst ~x_dealer:7 in
  Alcotest.check dec "dealer rule" (Some 7) r.decided;
  check "fast" true (r.rounds <= 3)

let test_pka_honest_solvable () =
  List.iter
    (fun inst ->
      let r = Rmt_pka.run inst ~x_dealer:11 in
      Alcotest.check dec "honest run decides" (Some 11) r.decided)
    [ k4_t1; layered3 ]

let test_pka_within_n_rounds () =
  let r = Rmt_pka.run layered3 ~x_dealer:3 in
  check "within |V| rounds (Thm 5)" true
    (r.rounds <= Instance.num_nodes layered3 + 1)

let test_pka_message_sizes () =
  let m1 : Rmt_pka.msg =
    Rmt_net.Flood.{ payload = Rmt_pka.Value 4; trail = [ 0; 1 ] }
  in
  check "type-1 size" true (Rmt_pka.msg_size m1 >= 3);
  let report =
    Rmt_pka.
      {
        origin = 1;
        gamma = Generators.path_graph 3;
        zeta = Structure.threshold ~ground:(ns [ 1; 2 ]) 1;
      }
  in
  let m2 : Rmt_pka.msg =
    Rmt_net.Flood.{ payload = Rmt_pka.Info report; trail = [ 1 ] }
  in
  check "type-2 bigger" true (Rmt_pka.msg_size m2 > Rmt_pka.msg_size m1)

let test_pka_trace () =
  let auto = Rmt_pka.automaton layered3 ~x_dealer:1 in
  let outcome =
    Rmt_net.Engine.run ~graph:layered3.graph
      ~adversary:Rmt_net.Engine.no_adversary auto
  in
  match List.assoc_opt 7 outcome.states with
  | Some st ->
    check "trace mentions receiver" true
      (String.length (Rmt_pka.receiver_trace st) > 10)
  | None -> Alcotest.fail "receiver state missing"

(* ------------------------------------------------------------------ *)
(* RMT-PKA safety (Theorem 4)                                          *)
(* ------------------------------------------------------------------ *)

let test_pka_safety_battery () =
  (* every strategy x every maximal corruption set on several instances:
     zero wrong decisions *)
  List.iter
    (fun inst ->
      let probe = Solvability.probe_rmt_pka inst ~x_dealer:5 ~x_fake:6 in
      check_int "no wrong decisions" 0 probe.wrong_runs)
    [ k4_t1; layered3; path4 ]

let qcheck_pka_safety =
  QCheck.Test.make ~count:25 ~name:"RMT-PKA never decides wrong (Thm 4)"
    arb_small_instance (fun inst ->
      let probe = Solvability.probe_rmt_pka inst ~x_dealer:5 ~x_fake:6 in
      probe.wrong_runs = 0)

(* ------------------------------------------------------------------ *)
(* RMT-PKA tightness (Thm 3 + Thm 5)                                   *)
(* ------------------------------------------------------------------ *)

let qcheck_pka_sufficiency =
  QCheck.Test.make ~count:20
    ~name:"no RMT-cut => RMT-PKA resilient (Thm 5)" arb_small_instance
    (fun inst ->
      match Solvability.partial_knowledge inst with
      | Solvability.Solvable ->
        let probe = Solvability.probe_rmt_pka inst ~x_dealer:5 ~x_fake:6 in
        Solvability.all_correct probe
      | Solvability.Unsolvable | Solvability.Unknown -> true)

let qcheck_pka_necessity =
  QCheck.Test.make ~count:25
    ~name:"RMT-cut => two-face attack silences RMT-PKA (Thm 3)"
    arb_small_instance (fun inst ->
      match (Cut.find_rmt_cut inst).cut_found with
      | None -> true
      | Some w ->
        let v = Attack.against_rmt_pka inst w ~x0:0 ~x1:1 in
        v.views_agree && (not v.safety_broken)
        && v.decision_e = None && v.decision_e' = None)

(* ------------------------------------------------------------------ *)
(* Z-CPA                                                               *)
(* ------------------------------------------------------------------ *)

let test_zcpa_honest () =
  let r = Zcpa.run layered3 ~x_dealer:8 in
  Alcotest.check dec "decides" (Some 8) r.decided;
  check "all honest decided" true r.all_honest_decided;
  check "oracle consulted" true (r.oracle_calls > 0)

let test_zcpa_decider_of_oracle () =
  (* ascending value order; first certified wins *)
  let oracle ~v:_ n = Nodeset.size n >= 2 in
  let d = Zcpa.decider_of_oracle oracle in
  Alcotest.check dec "first certified" (Some 3)
    (d ~v:0 [ (9, ns [ 1; 2 ]); (3, ns [ 4; 5 ]) ]);
  Alcotest.check dec "none certified" None (d ~v:0 [ (9, ns [ 1 ]) ])

let test_zcpa_safety_battery () =
  let rng = Prng.create 31 in
  List.iter
    (fun inst ->
      let probe = Solvability.probe_zcpa rng inst ~x_dealer:5 ~x_fake:6 in
      check_int "no wrong decisions" 0 probe.wrong_runs)
    [ k4_t1; layered3; path4 ]

let qcheck_zcpa_sufficiency =
  QCheck.Test.make ~count:30
    ~name:"no Z-pp cut => Z-CPA resilient (Thm 7)" arb_small_instance
    (fun inst ->
      match Solvability.ad_hoc inst with
      | Solvability.Solvable ->
        let rng = Prng.create 7 in
        let probe = Solvability.probe_zcpa rng inst ~x_dealer:5 ~x_fake:6 in
        Solvability.all_correct probe
      | Solvability.Unsolvable | Solvability.Unknown -> true)

let qcheck_zcpa_necessity =
  QCheck.Test.make ~count:30
    ~name:"Z-pp cut => two-face attack silences Z-CPA (Thm 8)"
    arb_small_instance (fun inst ->
      match (Cut.find_rmt_zpp_cut inst).cut_found with
      | None -> true
      | Some w ->
        let v = Attack.against_zcpa inst w ~x0:0 ~x1:1 in
        v.views_agree && v.decision_e = None && v.decision_e' = None)

(* Z-CPA specialized to the t-local structure behaves exactly like CPA *)
let qcheck_zcpa_generalizes_cpa =
  QCheck.Test.make ~count:15 ~name:"Z-CPA(t-local) = CPA"
    (QCheck.make QCheck.Gen.(int_bound 1_000_000) ~print:string_of_int)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 5 + Prng.int rng 3 in
      let g = Generators.random_connected_gnp rng n 0.6 in
      let t = 1 in
      let inst =
        Instance.ad_hoc_of ~graph:g
          ~structure:(Builders.t_local g ~dealer:0 t)
          ~dealer:0 ~receiver:(n - 1)
      in
      let z = Zcpa.run inst ~x_dealer:4 in
      let c =
        Rmt_protocols.Cpa.run g ~dealer:0 ~receiver:(n - 1) ~t ~x_dealer:4
      in
      z.decided = c.decided)

(* complexity bounds: Thm 5's |V|-round bound for RMT-PKA; Z-CPA's linear
   round and message costs (proof of Thm 9: "the receiver will decide in
   at most n rounds", "each player sends one message to all of its
   neighbors" plus the dealer's initial blast) *)
let qcheck_round_bounds =
  QCheck.Test.make ~count:15 ~name:"round/message bounds on solvable instances"
    arb_small_instance (fun inst ->
      let n = Instance.num_nodes inst in
      let m = Graph.num_edges inst.Instance.graph in
      let z = Zcpa.run inst ~x_dealer:2 in
      let zcpa_ok =
        z.decided <> Some 2
        || (z.rounds <= n + 2 && z.messages <= 2 * m)
      in
      let pka_ok =
        match Solvability.partial_knowledge inst with
        | Solvability.Solvable ->
          let p = Rmt_pka.run inst ~x_dealer:2 in
          p.decided = Some 2 && p.rounds <= n + 2
        | Solvability.Unsolvable | Solvability.Unknown -> true
      in
      zcpa_ok && pka_ok)

(* decisions are stable: once a player decides, the decision round is
   final and the value never changes through the rest of the run *)
let qcheck_decision_stability =
  QCheck.Test.make ~count:15 ~name:"decisions are stable"
    arb_small_instance (fun inst ->
      let auto =
        Zcpa.automaton
          ~decider:(Zcpa.decider_of_oracle (Zcpa.direct_oracle inst))
          inst ~x_dealer:3
      in
      (* run to quiescence (no stop_when): every decision seen in
         decision_rounds must match the final decision *)
      let outcome =
        Rmt_net.Engine.run ~graph:inst.Instance.graph
          ~adversary:Rmt_net.Engine.no_adversary auto
      in
      List.for_all
        (fun (v, _) -> Rmt_net.Engine.decision_of outcome v <> None)
        outcome.decision_rounds)

(* ------------------------------------------------------------------ *)
(* Uniqueness hierarchy: RMT-PKA dominates Z-CPA                       *)
(* ------------------------------------------------------------------ *)

let qcheck_hierarchy =
  QCheck.Test.make ~count:10
    ~name:"Z-CPA decides => RMT-PKA decides (uniqueness, Cor 6)"
    arb_small_instance (fun inst ->
      let z = Zcpa.run inst ~x_dealer:3 in
      match z.decided with
      | None -> true
      | Some _ ->
        let p = Rmt_pka.run inst ~x_dealer:3 in
        p.decided = Some 3)

(* ------------------------------------------------------------------ *)
(* Attacks and strategies                                              *)
(* ------------------------------------------------------------------ *)

let test_attack_fools_naive () =
  match (Cut.find_rmt_cut path4).cut_found with
  | None -> Alcotest.fail "expected witness"
  | Some w ->
    let mk x =
      Rmt_protocols.Naive.first_value path4.graph ~dealer:0 ~receiver:3
        ~x_dealer:x
    in
    let v =
      Attack.co_simulate ~graph:path4.graph ~c1:w.c1 ~c2:w.c2 (mk 0) (mk 1)
        ~receiver:3
    in
    check "naive broken" true v.safety_broken;
    check "views agree" true v.views_agree

let test_attack_validation () =
  check "overlapping corruption rejected" true
    (try
       ignore
         (Attack.co_simulate ~graph:path4.graph ~c1:(ns [ 1 ]) ~c2:(ns [ 1 ])
            (Rmt_pka.automaton path4 ~x_dealer:0)
            (Rmt_pka.automaton path4 ~x_dealer:1)
            ~receiver:3);
       false
     with Invalid_argument _ -> true);
  check "corrupt receiver rejected" true
    (try
       ignore
         (Attack.co_simulate ~graph:path4.graph ~c1:(ns [ 3 ]) ~c2:Nodeset.empty
            (Rmt_pka.automaton path4 ~x_dealer:0)
            (Rmt_pka.automaton path4 ~x_dealer:1)
            ~receiver:3);
       false
     with Invalid_argument _ -> true)

let test_forged_structure_indistinguishable () =
  (* B-side locals agree between Z and Z' = Z u down{C2} (the premise of
     the necessity proofs) *)
  match (Cut.find_rmt_zpp_cut path4).cut_found with
  | None -> Alcotest.fail "expected witness"
  | Some w ->
    let inst' = Attack.forged_structure path4 w.c2 in
    check "C2 admissible in forged" true (Instance.admissible inst' w.c2);
    Nodeset.iter
      (fun u ->
        check
          (Printf.sprintf "Z_%d unchanged" u)
          true
          (Structure.equal
             (Instance.local_structure path4 u)
             (Instance.local_structure inst' u)))
      w.b_side

let test_strategy_menu_runs () =
  let corrupted = ns [ 1 ] in
  List.iter
    (fun (label, adv) ->
      let r = Rmt_pka.run ~adversary:adv layered3 ~x_dealer:5 in
      check (label ^ " safe") true (r.decided = None || r.decided = Some 5))
    (Strategies.pka_full_menu layered3 ~x_dealer:5 ~x_fake:6 corrupted)

let test_fictitious_node_ignored () =
  (* the phantom report must not trick the receiver into a wrong value,
     and on a solvable instance the true value still gets through *)
  let corrupted = ns [ 1 ] in
  let adv = Strategies.pka_fictitious layered3 ~x_dealer:5 ~x_fake:66 corrupted in
  let r = Rmt_pka.run ~adversary:adv layered3 ~x_dealer:5 in
  Alcotest.check dec "correct despite phantom" (Some 5) r.decided

(* Regression: the stale-report attack.  On this instance (found by the
   E3 sweep at n=9) the adversary corrupts C1={5} / C2={3,4} and relays,
   through the corrupted nodes, node 6's report from the OTHER run — a
   stale-but-well-formed claim that erases the adversary cover if the
   receiver computes Z_B from the reports selected into M.  The sound
   receiver certifies B-side reports by B-internal trails and stays
   silent; a receiver without trail certification decides and is wrong in
   run e'. *)
let test_stale_report_attack_regression () =
  let g =
    Rmt_graph.Graph.of_edges
      [ (0, 3); (0, 4); (0, 8); (1, 2); (1, 4); (1, 5); (2, 3); (2, 5);
        (3, 5); (3, 6); (4, 6); (4, 7); (5, 6); (5, 7); (5, 8); (6, 7);
        (7, 8) ]
  in
  let inst =
    Instance.ad_hoc_of ~graph:g
      ~structure:(Builders.global_threshold g ~dealer:0 1)
      ~dealer:0 ~receiver:1
  in
  (* the cut is real *)
  check "unsolvable" true
    (Solvability.partial_knowledge inst = Solvability.Unsolvable);
  match (Cut.find_rmt_cut inst).cut_found with
  | None -> Alcotest.fail "expected witness"
  | Some w ->
    check "the witness" true (Cut.is_rmt_cut inst w.c1 w.c2);
    let v = Attack.against_rmt_pka inst w ~x0:0 ~x1:1 in
    check "receiver stays silent in e" true (v.decision_e = None);
    check "receiver stays silent in e'" true (v.decision_e' = None);
    check "no safety break" false v.safety_broken

(* The shielded component's ENTIRE population is fooled identically: every
   B-side node's view coincides across the paired runs, not just the
   receiver's (the heart of the Fig 2 argument). *)
let qcheck_bside_agreement =
  QCheck.Test.make ~count:15 ~name:"all B-side nodes agree across runs (Fig 2)"
    arb_small_instance (fun inst ->
      match (Cut.find_rmt_zpp_cut inst).cut_found with
      | None -> true
      | Some w ->
        let observers = Nodeset.elements w.b_side in
        let v = Attack.against_zcpa ~observers inst w ~x0:0 ~x1:1 in
        List.for_all (fun (_, (de, de')) -> de = de') v.observed)

(* ------------------------------------------------------------------ *)
(* Fuzzing                                                             *)
(* ------------------------------------------------------------------ *)

(* Storms of structurally random garbage (values, forged trails, fake
   reports about real and fictitious nodes) must never produce a wrong
   decision, on solvable and unsolvable instances alike. *)
let qcheck_pka_fuzz_safety =
  QCheck.Test.make ~count:60 ~name:"RMT-PKA survives message fuzzing"
    (QCheck.make QCheck.Gen.(int_bound 1_000_000) ~print:string_of_int)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 5 + Prng.int rng 3 in
      let g = Generators.random_connected_gnp rng n 0.5 in
      let inst =
        Instance.ad_hoc_of ~graph:g
          ~structure:(Builders.global_threshold g ~dealer:0 1)
          ~dealer:0 ~receiver:(n - 1)
      in
      let corrupted =
        Prng.sample rng
          (Nodeset.remove 0 (Nodeset.remove (n - 1) (Graph.nodes g)))
          (1 + Prng.int rng 2)
      in
      let adversary = Strategies.pka_fuzz (Prng.split rng) inst ~x_dealer:5 corrupted in
      let r = Rmt_pka.run ~adversary inst ~x_dealer:5 in
      (* safety: whatever happens, never a value other than the dealer's;
         and when the actual corruption is admissible and the instance
         solvable, the fuzz must not even block delivery *)
      (r.decided = None || r.decided = Some 5)
      &&
      (if
         Instance.admissible inst corrupted
         && Solvability.partial_knowledge inst = Solvability.Solvable
         && not r.truncated
       then r.decided = Some 5
       else true))

(* The downward-heredity of adversary covers that the RMT-PKA receiver
   relies on (see DESIGN.md): if C covers a full set over V, then C ∩ V*
   covers every subset V* — equivalently, joint structures only shrink as
   the component grows.  We test the underlying monotonicity of Z_B. *)
let qcheck_cover_heredity =
  QCheck.Test.make ~count:40
    ~name:"Z_B membership is antitone in B (cover heredity)"
    (QCheck.make QCheck.Gen.(int_bound 1_000_000) ~print:string_of_int)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 6 + Prng.int rng 3 in
      let g = Generators.random_connected_gnp rng n 0.5 in
      let z = Builders.random_antichain rng g ~dealer:0 ~sets:4 ~max_size:3 in
      let view = View.ad_hoc g in
      let b = Prng.sample rng (Nodeset.remove 0 (Graph.nodes g)) 4 in
      let b' = Prng.sample rng b 2 in
      if Nodeset.is_empty b' then true
      else begin
        let zb = Joint.joint_structure view z b in
        let zb' = Joint.joint_structure view z b' in
        (* every set allowed by the bigger group, restricted to the smaller
           group's horizon, is allowed by the smaller group *)
        List.for_all
          (fun m ->
            Structure.mem (Nodeset.inter m (Structure.ground zb')) zb')
          (Structure.maximal_sets zb)
      end)

(* ------------------------------------------------------------------ *)
(* Baselines                                                           *)
(* ------------------------------------------------------------------ *)

let test_cpa_complete_graph () =
  let g = Generators.complete 5 in
  let r = Rmt_protocols.Cpa.run g ~dealer:0 ~receiver:4 ~t:1 ~x_dealer:3 in
  Alcotest.check dec "decides" (Some 3) r.decided

let test_cpa_blocked_on_path () =
  let g = Generators.path_graph 4 in
  let r = Rmt_protocols.Cpa.run g ~dealer:0 ~receiver:3 ~t:1 ~x_dealer:3 in
  (* nodes past the dealer's neighbor never see t+1 = 2 senders *)
  Alcotest.check dec "cannot certify" None r.decided

let test_ppa_solvable_and_runs () =
  let g = Generators.layered ~width:3 ~depth:2 in
  let structure = Builders.global_threshold g ~dealer:0 1 in
  check "solvable" true (Rmt_protocols.Ppa.solvable g ~structure ~dealer:0 ~receiver:7);
  let r = Rmt_protocols.Ppa.run g ~structure ~dealer:0 ~receiver:7 ~x_dealer:2 in
  Alcotest.check dec "decides" (Some 2) r.decided

let test_ppa_safety_under_flip () =
  let g = Generators.layered ~width:3 ~depth:2 in
  let structure = Builders.global_threshold g ~dealer:0 1 in
  let auto = Rmt_protocols.Ppa.automaton g ~structure ~dealer:0 ~receiver:7 ~x_dealer:2 in
  let adv =
    Rmt_net.Byzantine.transform (ns [ 1 ]) auto (fun _ ~round:_ s ->
        [
          Rmt_net.Engine.
            {
              s with
              payload = { s.payload with Rmt_net.Flood.payload = 99 };
            };
        ])
  in
  let r = Rmt_protocols.Ppa.run ~adversary:adv g ~structure ~dealer:0 ~receiver:7 ~x_dealer:2 in
  Alcotest.check dec "correct under flip" (Some 2) r.decided

let test_dolev_routes_disjoint () =
  let g = Generators.layered ~width:3 ~depth:2 in
  let rts = Rmt_protocols.Dolev.routes g ~dealer:0 ~receiver:7 in
  check_int "three disjoint routes" 3 (List.length rts);
  (* pairwise internally disjoint *)
  let interiors =
    List.map
      (fun p -> ns (List.filter (fun v -> v <> 0 && v <> 7) p))
      rts
  in
  let rec pairwise = function
    | [] -> true
    | x :: rest ->
      List.for_all (Nodeset.disjoint x) rest && pairwise rest
  in
  check "internally disjoint" true (pairwise interiors);
  check_int "tolerates t=1" 1 (Rmt_protocols.Dolev.tolerates g ~dealer:0 ~receiver:7)

let test_dolev_delivers () =
  let g = Generators.layered ~width:3 ~depth:2 in
  let r = Rmt_protocols.Dolev.run g ~dealer:0 ~receiver:7 ~x_dealer:5 in
  Alcotest.check dec "majority delivery" (Some 5) r.decided;
  (* source routing is frugal: one message per hop per route *)
  check "few messages" true (r.messages <= 12)

let test_dolev_survives_flip () =
  let g = Generators.layered ~width:3 ~depth:2 in
  let auto = Rmt_protocols.Dolev.automaton g ~dealer:0 ~receiver:7 ~x_dealer:5 in
  let adv =
    Rmt_net.Byzantine.transform (ns [ 1 ]) auto (fun _ ~round:_ s ->
        [
          Rmt_net.Engine.
            { s with payload = { s.payload with Rmt_net.Flood.payload = 99 } };
        ])
  in
  let r = Rmt_protocols.Dolev.run ~adversary:adv g ~dealer:0 ~receiver:7 ~x_dealer:5 in
  Alcotest.check dec "2 honest routes out of 3 win" (Some 5) r.decided

let test_dolev_beyond_tolerance () =
  (* two corruptions against three routes: majority can be faked away *)
  let g = Generators.layered ~width:3 ~depth:2 in
  let auto = Rmt_protocols.Dolev.automaton g ~dealer:0 ~receiver:7 ~x_dealer:5 in
  let adv =
    Rmt_net.Byzantine.transform (ns [ 1; 2 ]) auto (fun _ ~round:_ s ->
        [
          Rmt_net.Engine.
            { s with payload = { s.payload with Rmt_net.Flood.payload = 99 } };
        ])
  in
  let r = Rmt_protocols.Dolev.run ~adversary:adv g ~dealer:0 ~receiver:7 ~x_dealer:5 in
  check "wrong majority possible beyond t" true (r.decided = Some 99)

let qcheck_dolev_routes =
  QCheck.Test.make ~count:30 ~name:"dolev routes disjoint on random graphs"
    (QCheck.make QCheck.Gen.(int_bound 1_000_000) ~print:string_of_int)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 5 + Prng.int rng 5 in
      let g = Generators.random_connected_gnp rng n 0.4 in
      let rts = Rmt_protocols.Dolev.routes g ~dealer:0 ~receiver:(n - 1) in
      let interiors =
        List.map
          (fun p -> ns (List.filter (fun v -> v <> 0 && v <> n - 1) p))
          rts
      in
      let rec pairwise = function
        | [] -> true
        | x :: rest -> List.for_all (Nodeset.disjoint x) rest && pairwise rest
      in
      let valid =
        List.for_all (fun p -> Rmt_graph.Paths.is_path_in g p) rts
      in
      let mc = Rmt_graph.Connectivity.min_vertex_cut g 0 (n - 1) in
      valid && pairwise interiors
      && (mc = max_int || List.length rts <= mc)
      && (rts <> [] (* connected graph: at least one route *)))

let test_naive_unsafe_but_fast () =
  let g = Generators.path_graph 4 in
  let auto = Rmt_protocols.Naive.first_value g ~dealer:0 ~receiver:3 ~x_dealer:1 in
  let outcome =
    Rmt_net.Engine.run ~graph:g ~adversary:Rmt_net.Engine.no_adversary auto
  in
  Alcotest.check dec "honest network ok" (Some 1)
    (Rmt_net.Engine.decision_of outcome 3)

let () =
  Alcotest.run "protocols-core"
    [
      ( "rmt-pka",
        [
          Alcotest.test_case "dealer rule" `Quick test_pka_dealer_rule;
          Alcotest.test_case "honest solvable" `Quick test_pka_honest_solvable;
          Alcotest.test_case "round bound" `Quick test_pka_within_n_rounds;
          Alcotest.test_case "message sizes" `Quick test_pka_message_sizes;
          Alcotest.test_case "trace" `Quick test_pka_trace;
          Alcotest.test_case "safety battery" `Quick test_pka_safety_battery;
          QCheck_alcotest.to_alcotest qcheck_pka_safety;
          QCheck_alcotest.to_alcotest qcheck_pka_sufficiency;
          QCheck_alcotest.to_alcotest qcheck_pka_necessity;
          QCheck_alcotest.to_alcotest qcheck_pka_fuzz_safety;
          QCheck_alcotest.to_alcotest qcheck_cover_heredity;
        ] );
      ( "zcpa",
        [
          Alcotest.test_case "honest" `Quick test_zcpa_honest;
          Alcotest.test_case "decider of oracle" `Quick test_zcpa_decider_of_oracle;
          Alcotest.test_case "safety battery" `Quick test_zcpa_safety_battery;
          QCheck_alcotest.to_alcotest qcheck_zcpa_sufficiency;
          QCheck_alcotest.to_alcotest qcheck_zcpa_necessity;
          QCheck_alcotest.to_alcotest qcheck_bside_agreement;
          Alcotest.test_case "stale-report regression" `Quick
            test_stale_report_attack_regression;
          QCheck_alcotest.to_alcotest qcheck_zcpa_generalizes_cpa;
          QCheck_alcotest.to_alcotest qcheck_hierarchy;
          QCheck_alcotest.to_alcotest qcheck_round_bounds;
          QCheck_alcotest.to_alcotest qcheck_decision_stability;
        ] );
      ( "attacks",
        [
          Alcotest.test_case "fools naive" `Quick test_attack_fools_naive;
          Alcotest.test_case "validation" `Quick test_attack_validation;
          Alcotest.test_case "forged structure" `Quick
            test_forged_structure_indistinguishable;
          Alcotest.test_case "strategy menu" `Quick test_strategy_menu_runs;
          Alcotest.test_case "fictitious ignored" `Quick
            test_fictitious_node_ignored;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "cpa complete" `Quick test_cpa_complete_graph;
          Alcotest.test_case "cpa path blocked" `Quick test_cpa_blocked_on_path;
          Alcotest.test_case "ppa solvable+runs" `Quick test_ppa_solvable_and_runs;
          Alcotest.test_case "ppa flip safety" `Quick test_ppa_safety_under_flip;
          Alcotest.test_case "dolev routes" `Quick test_dolev_routes_disjoint;
          Alcotest.test_case "dolev delivers" `Quick test_dolev_delivers;
          Alcotest.test_case "dolev flip" `Quick test_dolev_survives_flip;
          Alcotest.test_case "dolev beyond t" `Quick test_dolev_beyond_tolerance;
          QCheck_alcotest.to_alcotest qcheck_dolev_routes;
          Alcotest.test_case "naive honest" `Quick test_naive_unsafe_but_fast;
        ] );
    ]
