(* Tests for the ⊕ joint view operation: Definition 2, Theorem 1,
   Corollary 2 and the semilattice laws (Theorems 11/13/14). *)

open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge
open Rmt_core

let check = Alcotest.(check bool)
let ns = Nodeset.of_list

(* random structure over a random sub-ground of {0..universe-1} *)
let structure_gen universe =
  QCheck.Gen.(
    let* seed = int_bound 1_000_000 in
    let rng = Prng.create seed in
    let all = Nodeset.range 0 universe in
    let ground = Prng.subset rng all 0.7 in
    let* k = int_range 1 4 in
    let sets =
      List.init k (fun _ ->
          Prng.sample rng ground (Prng.int rng (1 + Nodeset.size ground)))
    in
    return (Structure.of_sets ~ground sets))

let arb_structure u = QCheck.make ~print:Structure.to_string (structure_gen u)

(* All members of a structure by subset enumeration (small grounds). *)
let members s =
  let out = ref [] in
  Nodeset.subsets_iter (Structure.ground s) (fun z ->
      if Structure.mem z s then out := z :: !out);
  !out

(* Definition 2, computed literally. *)
let brute_join e f =
  let a = Structure.ground e and b = Structure.ground f in
  let unions =
    List.concat_map
      (fun z1 ->
        List.filter_map
          (fun z2 ->
            if Nodeset.equal (Nodeset.inter z1 b) (Nodeset.inter z2 a) then
              Some (Nodeset.union z1 z2)
            else None)
          (members f))
      (members e)
  in
  match unions with
  | [] -> Structure.empty_family ~ground:(Nodeset.union a b)
  | _ -> Structure.of_sets ~ground:(Nodeset.union a b) unions

let test_identity () =
  let s = Structure.of_sets ~ground:(ns [ 0; 1; 2 ]) [ ns [ 0; 1 ] ] in
  check "left identity" true (Structure.equal s (Joint.join Joint.identity s));
  check "right identity" true (Structure.equal s (Joint.join s Joint.identity))

let test_join_list_empty () =
  check "empty join list" true
    (Structure.equal Joint.identity (Joint.join_list []))

let test_disjoint_grounds () =
  let e = Structure.of_sets ~ground:(ns [ 0; 1 ]) [ ns [ 0 ] ] in
  let f = Structure.of_sets ~ground:(ns [ 2; 3 ]) [ ns [ 2; 3 ] ] in
  let j = Joint.join e f in
  (* disjoint knowledge: every pair of members is compatible *)
  check "cross union" true (Structure.mem (ns [ 0; 2; 3 ]) j);
  check "ground united" true
    (Nodeset.equal (ns [ 0; 1; 2; 3 ]) (Structure.ground j))

let test_overlap_agreement () =
  (* the hand-checked example from the layered graph: stars of nodes 3 and
     5; singleton structures must agree on the overlap *)
  let z3 = Structure.of_sets ~ground:(ns [ 1; 2; 3; 5 ])
      [ ns [ 1 ]; ns [ 2 ]; ns [ 3 ]; ns [ 5 ] ] in
  let z5 = Structure.of_sets ~ground:(ns [ 3; 4; 5 ])
      [ ns [ 3 ]; ns [ 4 ]; ns [ 5 ] ] in
  let j = Joint.join z3 z5 in
  (* 1 and 4 are not co-visible: the joint view cannot rule them both out *)
  check "{1,4} possible" true (Structure.mem (ns [ 1; 4 ]) j);
  (* 3 and 5 are co-visible singletons: they cannot both be corrupted *)
  check "{3,5} impossible" false (Structure.mem (ns [ 3; 5 ]) j);
  check "{1,2} impossible (co-visible in z3)" false
    (Structure.mem (ns [ 1; 2 ]) j)

let test_empty_family_absorbs () =
  let e = Structure.empty_family ~ground:(ns [ 0; 1 ]) in
  let f = Structure.of_sets ~ground:(ns [ 1; 2 ]) [ ns [ 2 ] ] in
  check "empty ⊕ f = empty" true
    (Structure.is_empty_family (Joint.join e f))

let qcheck_props =
  [
    QCheck.Test.make ~count:120 ~name:"⊕ matches Definition 2 exactly"
      (QCheck.pair (arb_structure 6) (arb_structure 6)) (fun (e, f) ->
        Structure.equal (Joint.join e f) (brute_join e f));
    QCheck.Test.make ~count:120 ~name:"⊕ commutative (Thm 11)"
      (QCheck.pair (arb_structure 7) (arb_structure 7)) (fun (e, f) ->
        Structure.equal (Joint.join e f) (Joint.join f e));
    QCheck.Test.make ~count:80 ~name:"⊕ associative (Thm 13)"
      (QCheck.triple (arb_structure 6) (arb_structure 6) (arb_structure 6))
      (fun (e, f, h) ->
        Structure.equal
          (Joint.join e (Joint.join f h))
          (Joint.join (Joint.join e f) h));
    QCheck.Test.make ~count:120 ~name:"⊕ idempotent (Thm 14)"
      (arb_structure 7) (fun e -> Structure.equal e (Joint.join e e));
    QCheck.Test.make ~count:120
      ~name:"Corollary 2: Z^(A∪B) ⊆ Z^A ⊕ Z^B"
      (QCheck.triple (arb_structure 7)
         (QCheck.make ~print:Nodeset.to_string
            QCheck.Gen.(map Nodeset.of_list (list_size (int_bound 5) (int_bound 6))))
         (QCheck.make ~print:Nodeset.to_string
            QCheck.Gen.(map Nodeset.of_list (list_size (int_bound 5) (int_bound 6)))))
      (fun (z, a, b) ->
        Structure.subset_family
          (Structure.restrict (Nodeset.union a b) z)
          (Joint.join (Structure.restrict a z) (Structure.restrict b z)));
    QCheck.Test.make ~count:120
      ~name:"Theorem 1: join restricts back into operands"
      (QCheck.pair (arb_structure 6) (arb_structure 6)) (fun (e, f) ->
        (* every member of E⊕F restricted to A lies in E (and to B in F) *)
        let j = Joint.join e f in
        List.for_all
          (fun m ->
            Structure.mem (Nodeset.inter m (Structure.ground e)) e
            && Structure.mem (Nodeset.inter m (Structure.ground f)) f)
          (Structure.maximal_sets j));
  ]

let test_joint_structure_full_view () =
  let g = Generators.complete 5 in
  let z = Builders.global_threshold g ~dealer:0 2 in
  let view = View.full g in
  let zb = Joint.joint_structure view z (ns [ 1; 2; 3 ]) in
  (* with full views all parts equal Z: the join is Z itself *)
  check "Z_B = Z under full knowledge" true (Structure.equal z zb)

let test_joint_structure_is_weaker () =
  (* ad hoc views on the layered graph: joint knowledge of {3,5} admits
     sets the true structure does not *)
  let g = Generators.layered ~width:2 ~depth:2 in
  let z = Builders.global_threshold g ~dealer:0 1 in
  let view = View.ad_hoc g in
  let zb = Joint.joint_structure view z (ns [ 3; 5 ]) in
  check "true structure is contained" true
    (Structure.subset_family
       (Structure.restrict (Structure.ground zb) z)
       zb);
  check "but not equal: {1,4} admitted" true
    (Structure.mem (ns [ 1; 4 ]) zb && not (Structure.mem (ns [ 1; 4 ]) z))

(* Z_B built by fold-of-joins matches the literal member-wise definition
   {S : ∀u∈B, S∩γ(u) ∈ Z_u} on small universes *)
let test_joint_structure_brute () =
  let rng = Prng.create 9 in
  for _ = 1 to 40 do
    let n = 5 + Prng.int rng 2 in
    let g = Generators.random_connected_gnp rng n 0.5 in
    let z = Builders.random_antichain rng g ~dealer:0 ~sets:3 ~max_size:3 in
    let view = View.ad_hoc g in
    let b = Prng.sample rng (Nodeset.remove 0 (Graph.nodes g)) 3 in
    if not (Nodeset.is_empty b) then begin
      let zb = Joint.joint_structure view z b in
      let ground = View.joint_nodes view b in
      Nodeset.subsets_iter ground (fun s ->
          let literal =
            Nodeset.for_all
              (fun u ->
                Structure.mem
                  (Nodeset.inter s (View.view_nodes view u))
                  (View.local_structure view z u))
              b
          in
          check "Z_B literal" true (Structure.mem s zb = literal))
    end
  done

let test_mem_joint () =
  let e = Structure.of_sets ~ground:(ns [ 0; 1 ]) [ ns [ 0 ] ] in
  let f = Structure.of_sets ~ground:(ns [ 1; 2 ]) [ ns [ 2 ] ] in
  check "member" true (Joint.mem_joint (ns [ 0; 2 ]) [ e; f ]);
  check "not member" false (Joint.mem_joint (ns [ 0; 1 ]) [ e; f ])

let () =
  Alcotest.run "joint"
    [
      ( "unit",
        [
          Alcotest.test_case "identity" `Quick test_identity;
          Alcotest.test_case "join_list empty" `Quick test_join_list_empty;
          Alcotest.test_case "disjoint grounds" `Quick test_disjoint_grounds;
          Alcotest.test_case "overlap agreement" `Quick test_overlap_agreement;
          Alcotest.test_case "empty family absorbs" `Quick
            test_empty_family_absorbs;
          Alcotest.test_case "Z_B under full view" `Quick
            test_joint_structure_full_view;
          Alcotest.test_case "Z_B weaker than Z" `Quick
            test_joint_structure_is_weaker;
          Alcotest.test_case "mem_joint" `Quick test_mem_joint;
          Alcotest.test_case "Z_B literal definition" `Quick
            test_joint_structure_brute;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
