(* Tests for the RMT-cut (Definition 3) and RMT Z-pp cut (Definition 7)
   deciders: known instances, brute-force equivalence, and the structural
   cross-checks that the theory predicts (full-knowledge collapse to the
   classic two-set condition; ad hoc equivalence of the two cut notions;
   monotonicity of solvability in knowledge). *)

open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge
open Rmt_core

let check = Alcotest.(check bool)
let ns = Nodeset.of_list

let ad_hoc_instance g ~t ~dealer ~receiver =
  Instance.ad_hoc_of ~graph:g
    ~structure:(Builders.global_threshold g ~dealer t)
    ~dealer ~receiver

(* random small instance generators, shared across suites (test/gen) *)
let arb_instance = Rmt_test_gen.Gen.arb_instance
let arb_ad_hoc_instance = Rmt_test_gen.Gen.arb_ad_hoc_instance

(* ------------------------------------------------------------------ *)
(* Known instances                                                     *)
(* ------------------------------------------------------------------ *)

let test_path_has_cut () =
  let inst = ad_hoc_instance (Generators.path_graph 4) ~t:1 ~dealer:0 ~receiver:3 in
  let v = Cut.find_rmt_cut inst in
  check "cut exists" true (Cut.exists_certainly v);
  (match v.cut_found with
   | Some w -> check "witness checks out" true (Cut.is_rmt_cut inst w.c1 w.c2)
   | None -> Alcotest.fail "expected witness");
  check "zpp too" true (Cut.exists_certainly (Cut.find_rmt_zpp_cut inst))

let test_complete_no_cut () =
  let inst = ad_hoc_instance (Generators.complete 4) ~t:1 ~dealer:0 ~receiver:3 in
  check "no rmt cut" true (Cut.absent_certainly (Cut.find_rmt_cut inst));
  check "no zpp cut" true (Cut.absent_certainly (Cut.find_rmt_zpp_cut inst))

let test_layered_2x2_cut () =
  (* connectivity 2 with t=1 and local receiver knowledge: cut exists *)
  let g = Generators.layered ~width:2 ~depth:2 in
  let inst = ad_hoc_instance g ~t:1 ~dealer:0 ~receiver:5 in
  check "cut exists" true (Cut.exists_certainly (Cut.find_rmt_cut inst))

let test_layered_3x2_no_cut () =
  (* connectivity 3 with t=1: solvable even ad hoc *)
  let g = Generators.layered ~width:3 ~depth:2 in
  let inst = ad_hoc_instance g ~t:1 ~dealer:0 ~receiver:7 in
  check "no cut" true (Cut.absent_certainly (Cut.find_rmt_cut inst));
  check "no zpp cut" true (Cut.absent_certainly (Cut.find_rmt_zpp_cut inst))

let test_receiver_adjacent_dealer () =
  let g = Generators.path_graph 3 in
  let inst =
    Instance.ad_hoc_of ~graph:g
      ~structure:(Builders.global_threshold g ~dealer:0 2)
      ~dealer:0 ~receiver:1
  in
  (* no cut can exclude the dealer and separate adjacent nodes *)
  check "adjacent: never a cut" true
    (Cut.absent_certainly (Cut.find_rmt_cut inst))

let test_asymmetric_structure () =
  (* layered 2x2 where only node 3 is corruptible: full knowledge makes it
     solvable (no two admissible sets cut), and in fact even ad hoc the
     receiver can certify value via node 4's side *)
  let g = Generators.layered ~width:2 ~depth:2 in
  let structure = Builders.from_maximal g ~dealer:0 [ ns [ 3 ] ] in
  let full =
    Instance.make ~graph:g ~structure ~view:(View.full g) ~dealer:0 ~receiver:5
  in
  check "full knowledge solvable" true
    (Cut.absent_certainly (Cut.find_rmt_cut full))

let test_is_rmt_cut_direct () =
  let g = Generators.path_graph 4 in
  let inst = ad_hoc_instance g ~t:1 ~dealer:0 ~receiver:3 in
  (* {1} ∈ Z and C2 = ∅: cut {1} splits; B = {2,3} *)
  check "explicit cut" true (Cut.is_rmt_cut inst (ns [ 1 ]) Nodeset.empty);
  check "non-cut rejected" false
    (Cut.is_rmt_cut inst Nodeset.empty Nodeset.empty);
  check "c1 too big rejected" false
    (Cut.is_rmt_cut inst (ns [ 1; 2 ]) Nodeset.empty)

(* ------------------------------------------------------------------ *)
(* Brute force cross-check                                             *)
(* ------------------------------------------------------------------ *)

let brute_exists (inst : Instance.t) is_cut =
  let g = inst.graph in
  let candidates =
    Nodeset.remove inst.dealer
      (Nodeset.remove inst.receiver (Graph.nodes g))
  in
  let found = ref false in
  Nodeset.subsets_iter candidates (fun c ->
      if not !found then
        List.iter
          (fun m ->
            if not !found then begin
              let c1 = Nodeset.inter c m in
              let c2 = Nodeset.diff c m in
              if is_cut inst c1 c2 then found := true
            end)
          (Structure.maximal_sets inst.structure));
  !found

let qcheck_brute =
  [
    QCheck.Test.make ~count:70 ~name:"RMT-cut decider = brute force"
      arb_instance (fun inst ->
        let v = Cut.find_rmt_cut inst in
        v.complete
        && Cut.exists_certainly v = brute_exists inst Cut.is_rmt_cut);
    QCheck.Test.make ~count:70 ~name:"Z-pp decider = brute force"
      arb_ad_hoc_instance (fun inst ->
        let v = Cut.find_rmt_zpp_cut inst in
        v.complete
        && Cut.exists_certainly v = brute_exists inst Cut.is_rmt_zpp_cut);
  ]

(* ------------------------------------------------------------------ *)
(* Theory cross-checks                                                 *)
(* ------------------------------------------------------------------ *)

let qcheck_theory =
  [
    (* Both notions characterize the same solvable class in the ad hoc
       model (Thms 3+5 vs 7+8), so they must coincide there. *)
    QCheck.Test.make ~count:40 ~name:"ad hoc: RMT-cut ⇔ RMT Z-pp cut"
      arb_ad_hoc_instance (fun inst ->
        Cut.exists_certainly (Cut.find_rmt_cut inst)
        = Cut.exists_certainly (Cut.find_rmt_zpp_cut inst));
    (* Full knowledge collapses the RMT-cut to the classic "two admissible
       sets jointly cut" condition (Kumar et al. / PPA). *)
    QCheck.Test.make ~count:40 ~name:"full knowledge: RMT-cut ⇔ ¬PPA-solvable"
      arb_instance (fun inst ->
        let full = Instance.with_view inst (View.full inst.graph) in
        Cut.exists_certainly (Cut.find_rmt_cut full)
        = not
            (Rmt_protocols.Ppa.solvable full.graph ~structure:full.structure
               ~dealer:full.dealer ~receiver:full.receiver));
    (* More knowledge never hurts: solvable at radius k ⇒ solvable at k+1. *)
    QCheck.Test.make ~count:25 ~name:"solvability monotone in radius"
      arb_instance (fun inst ->
        let diam =
          Option.value (Connectivity.diameter inst.graph) ~default:2
        in
        let solvable_at k =
          Cut.absent_certainly
            (Cut.find_rmt_cut
               (Instance.with_view inst (View.radius k inst.graph)))
        in
        let rec monotone k prev =
          if k > diam then true
          else
            let cur = solvable_at k in
            if prev && not cur then false else monotone (k + 1) cur
        in
        monotone 1 (solvable_at 0));
  ]

let test_budget_reported () =
  (* a large solvable instance with a tiny budget: no cut will be found in
     three visited subsets, and incompleteness must be reported *)
  let g = Generators.layered ~width:4 ~depth:4 in
  let inst = ad_hoc_instance g ~t:1 ~dealer:0 ~receiver:17 in
  let v = Cut.find_rmt_cut ~budget:3 inst in
  check "no witness" false (Cut.exists_certainly v);
  check "reported incomplete" false v.complete;
  check "not absent-certain" false (Cut.absent_certainly v)

let test_visited_counts () =
  let g = Generators.layered ~width:4 ~depth:4 in
  let inst = ad_hoc_instance g ~t:1 ~dealer:0 ~receiver:17 in
  (* budget-capped search: the counter includes the over-budget candidate
     that tripped the cap, so it lands in [1, budget + 1] *)
  let capped = Cut.find_rmt_cut ~budget:3 inst in
  check "visited under budget" true (capped.visited >= 1 && capped.visited <= 4);
  (* complete search visits at least as much as the capped one, and both
     deciders agree on the count since they enumerate the same space *)
  let full = Cut.find_rmt_cut inst in
  check "full visits more" true (full.visited >= capped.visited);
  let naive = Cut.find_rmt_cut_naive inst in
  Alcotest.(check int) "naive visits same space" full.visited naive.visited

let () =
  Alcotest.run "cut"
    [
      ( "known-instances",
        [
          Alcotest.test_case "path has cut" `Quick test_path_has_cut;
          Alcotest.test_case "complete none" `Quick test_complete_no_cut;
          Alcotest.test_case "layered 2x2 cut" `Quick test_layered_2x2_cut;
          Alcotest.test_case "layered 3x2 none" `Quick test_layered_3x2_no_cut;
          Alcotest.test_case "adjacent receiver" `Quick
            test_receiver_adjacent_dealer;
          Alcotest.test_case "asymmetric structure" `Quick
            test_asymmetric_structure;
          Alcotest.test_case "is_rmt_cut direct" `Quick test_is_rmt_cut_direct;
          Alcotest.test_case "budget reported" `Quick test_budget_reported;
          Alcotest.test_case "visited counts" `Quick test_visited_counts;
        ] );
      ("brute-force", List.map QCheck_alcotest.to_alcotest qcheck_brute);
      ("theory", List.map QCheck_alcotest.to_alcotest qcheck_theory);
    ]
