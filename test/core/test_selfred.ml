(* Tests for the Section 5 machinery: basic instances (Figure 1), the
   simulation-based decision protocol (Theorem 9), minimal knowledge, the
   solvability probes, and the workload generators. *)

open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge
open Rmt_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let ns = Nodeset.of_list
let dec = Alcotest.(option int)

(* ------------------------------------------------------------------ *)
(* Basic instances                                                     *)
(* ------------------------------------------------------------------ *)

let test_basic_graph_shape () =
  let g = Self_reduction.basic_graph ~dealer:0 ~receiver:9 ~middle:(ns [ 2; 4; 6 ]) in
  check_int "nodes" 5 (Graph.num_nodes g);
  check_int "edges" 6 (Graph.num_edges g);
  check "no direct edge" false (Graph.mem_edge 0 9 g);
  check "wired" true (Graph.mem_edge 0 4 g && Graph.mem_edge 4 9 g)

let test_basic_graph_validation () =
  check "empty middle rejected" true
    (try
       ignore (Self_reduction.basic_graph ~dealer:0 ~receiver:1 ~middle:Nodeset.empty);
       false
     with Invalid_argument _ -> true);
  check "overlap rejected" true
    (try
       ignore (Self_reduction.basic_graph ~dealer:0 ~receiver:1 ~middle:(ns [ 1 ]));
       false
     with Invalid_argument _ -> true)

let test_basic_solvable_criterion () =
  let middle = ns [ 1; 2; 3 ] in
  let z1 = Structure.of_sets ~ground:middle [ ns [ 1 ] ] in
  check "one corruptible of three" true
    (Self_reduction.basic_solvable ~middle ~structure:z1);
  let z2 = Structure.of_sets ~ground:middle [ ns [ 1; 2 ]; ns [ 3 ] ] in
  check "two sets covering middle" false
    (Self_reduction.basic_solvable ~middle ~structure:z2);
  let z3 = Structure.threshold ~ground:middle 1 in
  check "threshold 1 of 3" true
    (Self_reduction.basic_solvable ~middle ~structure:z3);
  let z4 = Structure.threshold ~ground:(ns [ 1; 2 ]) 1 in
  check "threshold 1 of 2" false
    (Self_reduction.basic_solvable ~middle:(ns [ 1; 2 ]) ~structure:z4)

let test_basic_solvable_is_q2 () =
  (* the basic-instance criterion is exactly the classical Q2 condition on
     the middle set *)
  let rng = Prng.create 5 in
  for _ = 1 to 50 do
    let m = 2 + Prng.int rng 4 in
    let middle = Nodeset.range 1 (m + 1) in
    let sets =
      List.init (1 + Prng.int rng 3) (fun _ ->
          Prng.sample rng middle (1 + Prng.int rng m))
    in
    let structure = Structure.of_sets ~ground:middle sets in
    check "basic_solvable = Q2" true
      (Self_reduction.basic_solvable ~middle ~structure
      = Structure.satisfies_qk structure middle 2)
  done

(* the closed-form criterion agrees with the Z-pp cut decider *)
let qcheck_basic_solvable =
  QCheck.Test.make ~count:40 ~name:"basic_solvable = no Z-pp cut"
    (QCheck.make QCheck.Gen.(int_bound 1_000_000) ~print:string_of_int)
    (fun seed ->
      let rng = Prng.create seed in
      let m = 2 + Prng.int rng 4 in
      let middle = Nodeset.range 1 (m + 1) in
      let sets =
        List.init (1 + Prng.int rng 3) (fun _ ->
            Prng.sample rng middle (1 + Prng.int rng m))
      in
      let structure = Structure.of_sets ~ground:middle sets in
      let inst =
        Self_reduction.basic_instance ~dealer:0 ~receiver:(m + 1) ~middle
          ~structure
      in
      Self_reduction.basic_solvable ~middle ~structure
      = Cut.absent_certainly (Cut.find_rmt_zpp_cut inst))

(* ------------------------------------------------------------------ *)
(* The simulated decider (Theorem 9)                                   *)
(* ------------------------------------------------------------------ *)

let layered3 =
  let g = Generators.layered ~width:3 ~depth:2 in
  Instance.ad_hoc_of ~graph:g
    ~structure:(Builders.global_threshold g ~dealer:0 1)
    ~dealer:0 ~receiver:7

let test_simulated_decider_honest () =
  let direct = Zcpa.run layered3 ~x_dealer:5 in
  let sim =
    Zcpa.run ~decider:(Self_reduction.simulated_decider layered3) layered3
      ~x_dealer:5
  in
  Alcotest.check dec "same decision" direct.decided sim.decided;
  Alcotest.check dec "correct" (Some 5) sim.decided

let test_simulated_decider_with_pka_pi () =
  let sim =
    Zcpa.run
      ~decider:
        (Self_reduction.simulated_decider ~pi:Self_reduction.rmt_pka_pi
           layered3)
      layered3 ~x_dealer:5
  in
  Alcotest.check dec "Pi = RMT-PKA works too" (Some 5) sim.decided

(* full agreement across random instances and adversaries *)
let qcheck_simulated_agrees =
  QCheck.Test.make ~count:10 ~name:"simulated decider = direct oracle"
    (QCheck.make QCheck.Gen.(int_bound 1_000_000) ~print:string_of_int)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 5 + Prng.int rng 3 in
      let g = Generators.random_connected_gnp rng n 0.55 in
      let inst =
        Instance.ad_hoc_of ~graph:g
          ~structure:(Builders.global_threshold g ~dealer:0 1)
          ~dealer:0 ~receiver:(n - 1)
      in
      let adversaries =
        Rmt_net.Engine.no_adversary
        :: List.map snd
             (Strategies.value_full_menu (Prng.split rng) ~x_fake:9 g
                (Prng.sample rng
                   (Nodeset.remove 0 (Nodeset.remove (n - 1) (Graph.nodes g)))
                   1))
      in
      List.for_all
        (fun adversary ->
          let direct = Zcpa.run ~adversary inst ~x_dealer:5 in
          let sim =
            Zcpa.run ~decider:(Self_reduction.simulated_decider inst)
              ~adversary inst ~x_dealer:5
          in
          direct.decided = sim.decided)
        adversaries)

(* safety of the simulated decider: never a wrong decision *)
let test_simulated_decider_safe () =
  let rng = Prng.create 91 in
  let corrupted = ns [ 1 ] in
  List.iter
    (fun (label, adversary) ->
      let r =
        Zcpa.run ~decider:(Self_reduction.simulated_decider layered3)
          ~adversary layered3 ~x_dealer:5
      in
      check (label ^ " safe") true (r.decided = None || r.decided = Some 5))
    (Strategies.value_full_menu rng ~x_fake:6 layered3.graph corrupted)

(* ------------------------------------------------------------------ *)
(* Minimal knowledge                                                   *)
(* ------------------------------------------------------------------ *)

let test_radius_frontier_monotone () =
  let g = Generators.grid 3 3 in
  let structure = Builders.global_threshold g ~dealer:0 1 in
  let frontier =
    Minimal_knowledge.radius_frontier ~graph:g ~structure ~dealer:0 ~receiver:8 ()
  in
  (* once solvable, stays solvable *)
  let rec monotone seen_solvable = function
    | [] -> true
    | (_, Solvability.Solvable) :: rest -> monotone true rest
    | (_, _) :: rest -> (not seen_solvable) && monotone false rest
  in
  check "monotone frontier" true (monotone false frontier);
  check_int "covers all radii" 5 (List.length frontier)

let test_minimal_radius_consistent () =
  let g = Generators.grid 3 3 in
  let structure = Builders.global_threshold g ~dealer:0 1 in
  match
    Minimal_knowledge.minimal_radius ~graph:g ~structure ~dealer:0 ~receiver:8 ()
  with
  | None ->
    (* grid 3x3 is 2-connected only, so t=1 may genuinely be unsolvable
       even with full knowledge; verify against the cut decider *)
    let inst =
      Instance.make ~graph:g ~structure ~view:(View.full g) ~dealer:0
        ~receiver:8
    in
    check "full knowledge also unsolvable" true
      (Cut.exists_certainly (Cut.find_rmt_cut inst))
  | Some k ->
    let inst =
      Instance.make ~graph:g ~structure ~view:(View.radius k g) ~dealer:0
        ~receiver:8
    in
    check "solvable at k" true (Cut.absent_certainly (Cut.find_rmt_cut inst));
    if k > 0 then begin
      let inst' =
        Instance.make ~graph:g ~structure
          ~view:(View.radius (k - 1) g)
          ~dealer:0 ~receiver:8
      in
      check "unsolvable below" true
        (Cut.exists_certainly (Cut.find_rmt_cut inst'))
    end

let test_greedy_minimal_views () =
  let g = Generators.layered ~width:3 ~depth:2 in
  let structure = Builders.global_threshold g ~dealer:0 1 in
  let inst =
    Instance.make ~graph:g ~structure ~view:(View.full g) ~dealer:0 ~receiver:7
  in
  match Minimal_knowledge.greedy_minimal_views inst with
  | None -> Alcotest.fail "layered-3x2/t=1 should be solvable"
  | Some radii ->
    check_int "radius for every node" (Graph.num_nodes g) (List.length radii);
    check "some node shrank to 0" true (List.exists (fun (_, k) -> k = 0) radii)

(* ------------------------------------------------------------------ *)
(* Broadcast (Definition 10)                                           *)
(* ------------------------------------------------------------------ *)

let test_broadcast_known_instances () =
  let solvable g receiver =
    let inst =
      Instance.ad_hoc_of ~graph:g
        ~structure:(Builders.global_threshold g ~dealer:0 1)
        ~dealer:0 ~receiver
    in
    Broadcast.solvable inst
  in
  check "complete graph broadcasts" true
    (solvable (Generators.complete 5) 4 = Solvability.Solvable);
  check "layered-3x2 broadcasts" true
    (solvable (Generators.layered ~width:3 ~depth:2) 7 = Solvability.Solvable);
  check "cycle cannot broadcast" true
    (solvable (Generators.cycle 8) 4 = Solvability.Unsolvable);
  check "path cannot broadcast" true
    (solvable (Generators.path_graph 5) 4 = Solvability.Unsolvable)

(* broadcast is unsolvable iff some node's RMT is unsolvable *)
let qcheck_broadcast_pointwise =
  QCheck.Test.make ~count:30 ~name:"broadcast cut = some node blocked"
    (QCheck.make QCheck.Gen.(int_bound 1_000_000) ~print:string_of_int)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 5 + Prng.int rng 4 in
      let g = Generators.random_connected_gnp rng n 0.45 in
      let structure =
        if Prng.bool rng then Builders.global_threshold g ~dealer:0 1
        else Builders.random_antichain rng g ~dealer:0 ~sets:4 ~max_size:2
      in
      let inst = Instance.ad_hoc_of ~graph:g ~structure ~dealer:0 ~receiver:(n - 1) in
      let cut = Cut.exists_certainly (Broadcast.find_zpp_cut inst) in
      let blocked = Broadcast.blocked_nodes inst in
      cut = not (Nodeset.is_empty blocked))

let test_broadcast_run () =
  let g = Generators.layered ~width:3 ~depth:2 in
  let inst =
    Instance.ad_hoc_of ~graph:g
      ~structure:(Builders.global_threshold g ~dealer:0 1)
      ~dealer:0 ~receiver:7
  in
  let r = Broadcast.run inst ~x_dealer:6 in
  check "all honest decided" true r.complete;
  check_int "no wrong" 0 r.wrong;
  (* under a flipping corrupted node, the rest still completes *)
  let adversary = Strategies.value_flip ~x_fake:9 g (ns [ 1 ]) in
  let r = Broadcast.run ~adversary inst ~x_dealer:6 in
  check "complete under flip" true r.complete;
  check_int "honest count excludes corrupt+dealer" 6 r.honest

let qcheck_broadcast_tightness =
  QCheck.Test.make ~count:20 ~name:"no broadcast cut => Z-CPA broadcast completes"
    (QCheck.make QCheck.Gen.(int_bound 1_000_000) ~print:string_of_int)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 5 + Prng.int rng 4 in
      let g = Generators.random_connected_gnp rng n 0.5 in
      let structure = Builders.global_threshold g ~dealer:0 1 in
      let inst = Instance.ad_hoc_of ~graph:g ~structure ~dealer:0 ~receiver:(n - 1) in
      match Broadcast.solvable inst with
      | Solvability.Solvable ->
        List.for_all
          (fun corrupted ->
            if Nodeset.is_empty corrupted then
              (Broadcast.run inst ~x_dealer:3).complete
            else
              List.for_all
                (fun (_, adversary) ->
                  let r = Broadcast.run ~adversary inst ~x_dealer:3 in
                  r.wrong = 0 && r.complete)
                (Strategies.value_full_menu (Prng.split rng) ~x_fake:4 g
                   corrupted))
          (Nodeset.empty :: Instance.corruption_sets inst)
      | Solvability.Unsolvable | Solvability.Unknown -> true)

(* broadcast necessity: when a broadcast cut exists, the two-face attack
   built from a blocked node's RMT witness starves that node in both runs *)
let qcheck_broadcast_necessity =
  QCheck.Test.make ~count:15 ~name:"broadcast cut => some node starved"
    (QCheck.make QCheck.Gen.(int_bound 1_000_000) ~print:string_of_int)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 5 + Prng.int rng 4 in
      let g = Generators.random_connected_gnp rng n 0.45 in
      let structure = Builders.global_threshold g ~dealer:0 1 in
      let inst = Instance.ad_hoc_of ~graph:g ~structure ~dealer:0 ~receiver:(n - 1) in
      let blocked = Broadcast.blocked_nodes inst in
      match Nodeset.choose_opt blocked with
      | None -> Broadcast.solvable inst = Solvability.Solvable
      | Some v ->
        let inst_v =
          Instance.make ~graph:g ~structure ~view:inst.Instance.view ~dealer:0
            ~receiver:v
        in
        (match (Cut.find_rmt_zpp_cut inst_v).cut_found with
         | None -> false
         | Some w ->
           let verdict = Attack.against_zcpa inst_v w ~x0:0 ~x1:1 in
           verdict.decision_e = None && verdict.decision_e' = None))

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)
(* ------------------------------------------------------------------ *)

let test_workload_suites () =
  let rng = Prng.create 2 in
  let suite = Rmt_workloads.Workload.tightness_suite rng ~count:6 ~n:8 in
  check_int "count" 6 (List.length suite);
  List.iter
    (fun { Rmt_workloads.Workload.label; instance } ->
      check (label ^ " connected") true
        (Connectivity.is_connected instance.Instance.graph))
    suite

let test_workload_determinism () =
  let s1 = Rmt_workloads.Workload.tightness_suite (Prng.create 4) ~count:4 ~n:8 in
  let s2 = Rmt_workloads.Workload.tightness_suite (Prng.create 4) ~count:4 ~n:8 in
  List.iter2
    (fun a b ->
      check "same labels" true
        (a.Rmt_workloads.Workload.label = b.Rmt_workloads.Workload.label);
      check "same graphs" true
        (Graph.equal a.instance.Instance.graph b.instance.Instance.graph))
    s1 s2

let test_scaling_family_solvable () =
  List.iter
    (fun (n, inst) ->
      check
        (Printf.sprintf "n=%d solvable" n)
        true
        (Cut.absent_certainly (Cut.find_rmt_zpp_cut inst)))
    (Rmt_workloads.Workload.scaling_family ~width:3 ~max_depth:3)

let test_probe_counts () =
  let probe = Solvability.probe_zcpa (Prng.create 1) layered3 ~x_dealer:5 ~x_fake:6 in
  (* honest run + strategies x maximal sets not containing the receiver *)
  check "positive runs" true (probe.total_runs > 1);
  check_int "outcomes partition the runs" probe.total_runs
    (probe.correct_runs + probe.undecided_runs + probe.wrong_runs);
  check_int "failures = incorrect runs"
    (probe.total_runs - probe.correct_runs)
    (List.length probe.failures)

let () =
  Alcotest.run "self-reduction"
    [
      ( "basic-instances",
        [
          Alcotest.test_case "graph shape" `Quick test_basic_graph_shape;
          Alcotest.test_case "validation" `Quick test_basic_graph_validation;
          Alcotest.test_case "solvability criterion" `Quick
            test_basic_solvable_criterion;
          Alcotest.test_case "criterion = Q2" `Quick test_basic_solvable_is_q2;
          QCheck_alcotest.to_alcotest qcheck_basic_solvable;
        ] );
      ( "decision-protocol",
        [
          Alcotest.test_case "honest agreement" `Quick
            test_simulated_decider_honest;
          Alcotest.test_case "Pi = RMT-PKA" `Quick
            test_simulated_decider_with_pka_pi;
          QCheck_alcotest.to_alcotest qcheck_simulated_agrees;
          Alcotest.test_case "safety" `Quick test_simulated_decider_safe;
        ] );
      ( "minimal-knowledge",
        [
          Alcotest.test_case "frontier monotone" `Quick
            test_radius_frontier_monotone;
          Alcotest.test_case "minimal radius" `Quick
            test_minimal_radius_consistent;
          Alcotest.test_case "greedy views" `Quick test_greedy_minimal_views;
        ] );
      ( "broadcast",
        [
          Alcotest.test_case "known instances" `Quick
            test_broadcast_known_instances;
          QCheck_alcotest.to_alcotest qcheck_broadcast_pointwise;
          Alcotest.test_case "run" `Quick test_broadcast_run;
          QCheck_alcotest.to_alcotest qcheck_broadcast_tightness;
          QCheck_alcotest.to_alcotest qcheck_broadcast_necessity;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "suites" `Quick test_workload_suites;
          Alcotest.test_case "determinism" `Quick test_workload_determinism;
          Alcotest.test_case "scaling solvable" `Quick
            test_scaling_family_solvable;
          Alcotest.test_case "probe counts" `Quick test_probe_counts;
        ] );
    ]
