(* Tests for Byzantine-resilient topology discovery. *)

open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge
open Rmt_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let ns = Nodeset.of_list

let instance g ~receiver =
  Instance.ad_hoc_of ~graph:g
    ~structure:(Builders.global_threshold g ~dealer:0 1)
    ~dealer:0 ~receiver

let test_honest_reconstruction () =
  let g = Generators.grid 3 3 in
  let inst = instance g ~receiver:8 in
  let db = Discovery.observe inst ~observer:8 in
  check "confirmed = real graph" true (Graph.equal (Discovery.confirmed db) g);
  check "no conflicts" true (Nodeset.is_empty (Discovery.conflicted db));
  let acc = Discovery.score inst db in
  check_int "all true edges" acc.true_edges acc.confirmed_true;
  check_int "no false edges" 0 acc.confirmed_false;
  check_int "no phantoms" 0 acc.phantom_nodes

let test_liar_not_confirmed () =
  let g = Generators.layered ~width:3 ~depth:2 in
  let inst = instance g ~receiver:7 in
  let corrupted = ns [ 4 ] in
  (* node 4 claims a direct edge to the dealer's far side *)
  let adversary = Strategies.pka_topology_liar inst ~x_dealer:0 corrupted in
  let db = Discovery.observe ~adversary inst ~observer:7 in
  let acc = Discovery.score inst db in
  check_int "no fake edge survives confirmation" 0 acc.confirmed_false;
  (* the liar sent a second self-report: it is flagged as conflicted *)
  check "liar conflicted" true (Nodeset.mem 4 (Discovery.conflicted db))

let test_silent_node_hole () =
  let g = Generators.grid 3 3 in
  let inst = instance g ~receiver:8 in
  let corrupted = ns [ 4 ] in
  let adversary = Strategies.pka_silent corrupted in
  let db = Discovery.observe ~adversary inst ~observer:8 in
  let conf = Discovery.confirmed db in
  (* the silent node's edges cannot be confirmed... *)
  check "silent node's edges unconfirmed" false (Graph.mem_edge 4 1 conf);
  (* ...but every honest-honest edge still is (grid minus center stays
     connected) *)
  List.iter
    (fun (u, v) ->
      if u <> 4 && v <> 4 then
        check (Printf.sprintf "edge %d-%d confirmed" u v) true
          (Graph.mem_edge u v conf))
    (Graph.edges g);
  let acc = Discovery.score inst db in
  check_int "still no false edges" 0 acc.confirmed_false

let test_fictitious_detected () =
  let g = Generators.layered ~width:3 ~depth:2 in
  let inst = instance g ~receiver:7 in
  let corrupted = ns [ 4 ] in
  let adversary = Strategies.pka_fictitious inst ~x_dealer:0 ~x_fake:9 corrupted in
  let db = Discovery.observe ~adversary inst ~observer:7 in
  let acc = Discovery.score inst db in
  check "phantom reported" true (acc.phantom_nodes >= 1);
  check_int "phantom edges not confirmed" 0 acc.confirmed_false;
  (* the phantom appears in the claimed envelope but not confirmed *)
  let phantom = Nodeset.max_elt_opt (Discovery.reported_nodes db) in
  (match phantom with
   | Some p when not (Graph.mem_node p g) ->
     check "phantom in claimed" true (Graph.mem_node p (Discovery.claimed db));
     check "phantom not in confirmed" false
       (Graph.mem_node p (Discovery.confirmed db))
   | _ -> Alcotest.fail "expected a phantom id")

(* soundness under arbitrary garbage: confirmed fake edges need both
   endpoints outside the honest set *)
let qcheck_soundness =
  QCheck.Test.make ~count:30 ~name:"confirmed fakes need two corrupted endpoints"
    (QCheck.make QCheck.Gen.(int_bound 1_000_000) ~print:string_of_int)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 6 + Prng.int rng 3 in
      let g = Generators.random_connected_gnp rng n 0.45 in
      let inst = instance g ~receiver:(n - 1) in
      let corrupted =
        Prng.sample rng
          (Nodeset.remove 0 (Nodeset.remove (n - 1) (Graph.nodes g)))
          (1 + Prng.int rng 2)
      in
      let adversary = Strategies.pka_fuzz (Prng.split rng) inst ~x_dealer:0 corrupted in
      let db = Discovery.observe ~adversary inst ~observer:(n - 1) in
      let honest = Nodeset.diff (Graph.nodes g) corrupted in
      List.for_all
        (fun (u, v) ->
          Graph.mem_edge u v g
          || ((not (Nodeset.mem u honest)) && not (Nodeset.mem v honest)))
        (Graph.edges (Discovery.confirmed db)))

(* completeness under silence: honest-honest edges reachable through
   honest paths are always confirmed *)
let qcheck_completeness =
  QCheck.Test.make ~count:30 ~name:"honest edges on honest paths confirmed"
    (QCheck.make QCheck.Gen.(int_bound 1_000_000) ~print:string_of_int)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 6 + Prng.int rng 3 in
      let g = Generators.random_connected_gnp rng n 0.45 in
      let observer = n - 1 in
      let inst = instance g ~receiver:observer in
      let corrupted =
        Prng.sample rng
          (Nodeset.remove 0 (Nodeset.remove observer (Graph.nodes g)))
          (1 + Prng.int rng 2)
      in
      let adversary = Strategies.pka_silent corrupted in
      let db = Discovery.observe ~adversary inst ~observer in
      let conf = Discovery.confirmed db in
      let reachable =
        Rmt_graph.Connectivity.reachable_from ~avoiding:corrupted g observer
      in
      List.for_all
        (fun (u, v) ->
          (not (Nodeset.mem u reachable))
          || (not (Nodeset.mem v reachable))
          || Graph.mem_edge u v conf)
        (Graph.edges g))

let () =
  Alcotest.run "discovery"
    [
      ( "discovery",
        [
          Alcotest.test_case "honest reconstruction" `Quick
            test_honest_reconstruction;
          Alcotest.test_case "liar not confirmed" `Quick test_liar_not_confirmed;
          Alcotest.test_case "silent hole" `Quick test_silent_node_hole;
          Alcotest.test_case "fictitious detected" `Quick test_fictitious_detected;
          QCheck_alcotest.to_alcotest qcheck_soundness;
          QCheck_alcotest.to_alcotest qcheck_completeness;
        ] );
    ]
