open Rmt_base
open Rmt_graph
open Rmt_net

(* The Byzantine combinators derived from mimic_honest carry the
   mimicked protocol state inside the strategy value, so each value is
   good for exactly one Engine.run.  These properties pin the
   documented contract: the first run works, a second run with the
   same value raises Invalid_argument instead of silently replaying
   stale state. *)

let check = Alcotest.(check bool)
let ns = Nodeset.of_list

(* the same tiny flooding automaton as test_net.ml *)
type gossip = {
  mutable value : int option;
  mutable forwarded : bool;
}

let gossip_automaton g ~origin ~value =
  let broadcast v x =
    Nodeset.fold
      (fun u acc -> Engine.{ dst = u; payload = x } :: acc)
      (Graph.neighbors v g)
      []
  in
  let init v =
    if v = origin then ({ value = Some value; forwarded = true }, broadcast v value)
    else ({ value = None; forwarded = false }, [])
  in
  let step v st ~round:_ ~inbox =
    match (st.value, inbox) with
    | None, (_, x) :: _ ->
      st.value <- Some x;
      st.forwarded <- true;
      (st, broadcast v x)
    | _ -> (st, [])
  in
  let decision st = st.value in
  Engine.{ init; step; decision }

(* a random scenario: a path of n nodes, a corrupted interior node, and
   a per-combinator parameter seed *)
let arb_scenario =
  QCheck.make
    ~print:(fun (n, c, seed) -> Printf.sprintf "n=%d corrupted=%d seed=%d" n c seed)
    QCheck.Gen.(
      int_range 3 7 >>= fun n ->
      int_range 1 (n - 2) >>= fun c ->
      int_bound 1_000_000 >>= fun seed -> return (n, c, seed))

let run_with g adversary auto = Engine.run ~max_rounds:12 ~graph:g ~adversary auto

let single_run_guard name make_strategy =
  QCheck.Test.make ~count:50
    ~name:(name ^ ": second run with the same strategy raises")
    arb_scenario
    (fun (n, c, seed) ->
      let g = Generators.path_graph n in
      let auto = gossip_automaton g ~origin:0 ~value:7 in
      let adv = make_strategy g auto ~corrupted:(ns [ c ]) ~seed in
      ignore (run_with g adv auto);
      try
        ignore (run_with g adv auto);
        false
      with Invalid_argument _ -> true)

let guard_mimic =
  single_run_guard "mimic_honest" (fun _g auto ~corrupted ~seed:_ ->
      Byzantine.mimic_honest corrupted auto)

let guard_crash_after =
  single_run_guard "crash_after" (fun _g auto ~corrupted ~seed ->
      Byzantine.crash_after corrupted auto (seed mod 4))

let guard_drop_randomly =
  single_run_guard "drop_randomly" (fun _g auto ~corrupted ~seed ->
      Byzantine.drop_randomly (Prng.create seed) corrupted auto 0.5)

let guard_transform =
  single_run_guard "transform" (fun _g auto ~corrupted ~seed:_ ->
      Byzantine.transform corrupted auto (fun _ ~round:_ send -> [ send ]))

(* fresh values keep working: the guard fires on reuse, not on the
   combinator itself *)
let fresh_strategies_fine =
  QCheck.Test.make ~count:50 ~name:"a fresh strategy per run never raises"
    arb_scenario
    (fun (n, c, seed) ->
      let g = Generators.path_graph n in
      let auto = gossip_automaton g ~origin:0 ~value:7 in
      let run adv = ignore (run_with g adv auto) in
      run (Byzantine.mimic_honest (ns [ c ]) auto);
      run (Byzantine.crash_after (ns [ c ]) auto (seed mod 4));
      run (Byzantine.drop_randomly (Prng.create seed) (ns [ c ]) auto 0.5);
      run (Byzantine.transform (ns [ c ]) auto (fun _ ~round:_ s -> [ s ]));
      true)

let test_stateless_strategies_reusable () =
  (* silent and of_fun hold no protocol state, so reuse is legal *)
  let g = Generators.path_graph 4 in
  let auto = gossip_automaton g ~origin:0 ~value:3 in
  let silent = Byzantine.silent (ns [ 2 ]) in
  ignore (run_with g silent auto);
  ignore (run_with g silent auto);
  let forward = Byzantine.of_fun (ns [ 2 ]) (fun _ ~round:_ ~inbox:_ -> []) in
  ignore (run_with g forward auto);
  ignore (run_with g forward auto);
  check "reusable" true true

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "byzantine"
    [
      ( "single-run guard",
        [
          qt guard_mimic;
          qt guard_crash_after;
          qt guard_drop_randomly;
          qt guard_transform;
          qt fresh_strategies_fine;
        ] );
      ( "stateless",
        [
          Alcotest.test_case "silent and of_fun reusable" `Quick
            test_stateless_strategies_reusable;
        ] );
    ]
