(* Dynamic half of the R10 communication budget: replay every protocol
   honestly and check the observed Transport.stats against the bound
   rmt-lint extracted statically from the typedtrees.

   The static side (lib/lint/model.ml) claims each automaton's init and
   step send at most a symbolic per-activation budget over
   {1, deg(v), n, |inbox|, |inbox|·deg(v)}.  Under the synchronous
   engine the claim concretizes round by round: messages delivered in
   round 1 are exactly the init sends, and messages delivered in round
   r ≥ 2 are the step sends of round r−1, whose inboxes together held
   per_round.(r−1) messages.  So for every executed round,

     per_round.(1) ≤ concretize init  ~prev:0
     per_round.(r) ≤ concretize step  ~prev:per_round.(r−1)   (r ≥ 2)

   must hold on the real implementations — on every checked-in instance
   and on 40 random PKA-solvable instances.  A protocol change that
   breaks its extracted budget (or an extractor change that tightens a
   bound below reality) fails here, not in production accounting. *)

open Rmt_graph
open Rmt_knowledge
open Rmt_net

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline s;
      exit 1)
    fmt

(* ------------------------------------------------------------------ *)
(* The static models, read back from the cmt artifacts dune built      *)
(* for lib/ — the same scan the production [rmt_lint model] runs.      *)
(* ------------------------------------------------------------------ *)

let model =
  match Rmt_lint.Cmt_loader.scan ~build_dir:"../../lib" ~dirs:[ "lib" ] with
  | Error e -> fail "lib cmt scan failed (run dune build @check): %s" e
  | Ok units ->
    Rmt_lint.Model.assemble
      (List.map
         (fun (u : Rmt_lint.Cmt_loader.unit_info) ->
           Rmt_lint.Model.extract ~source:u.source u.structure)
         units)

let proto name =
  match Rmt_lint.Model.find model name with
  | Some p ->
    let open Rmt_lint.Model in
    if p.p_init.b_unbounded || p.p_step.b_unbounded then
      fail "%s: static bound is unbounded — the dynamic check is vacuous"
        name;
    p
  | None ->
    fail "no extracted model for %s (have: %s)" name
      (String.concat ", "
         (List.map
            (fun (p : Rmt_lint.Model.protocol) -> p.Rmt_lint.Model.p_name)
            model.Rmt_lint.Model.protocols))

(* The certified wrapper's extracted budget is load-bearing for R10:
   the [Envelope.slots] iteration must be recognized and capped at the
   pinned [slots_cap] multiplier, not degraded to unbounded.  Pin the
   rendered bounds so an extractor or protocol change that shifts the
   multiplicity class fails loudly here. *)
let () =
  let p = proto "Certified.make" in
  let expect side got want =
    if got <> want then
      fail "Certified.make %s bound drifted: %S (want %S)" side got want
  in
  expect "init"
    (Rmt_lint.Model.bound_to_string p.Rmt_lint.Model.p_init)
    "1 + 12·deg(v)";
  expect "step"
    (Rmt_lint.Model.bound_to_string p.Rmt_lint.Model.p_step)
    "|inbox| + 4·|inbox|·deg(v)"

(* ------------------------------------------------------------------ *)
(* One honest run, checked round by round                              *)
(* ------------------------------------------------------------------ *)

let checked_runs = ref 0
let checked_rounds = ref 0

let check_stats ~who ~graph ~(p : Rmt_lint.Model.protocol) ~max_size
    (stats : Engine.stats) =
  let num_nodes = Graph.num_nodes graph in
  let sum_deg = 2 * Graph.num_edges graph in
  let max_deg =
    Rmt_base.Nodeset.fold
      (fun v acc -> max acc (Graph.degree v graph))
      (Graph.nodes graph) 0
  in
  let concretize b ~prev =
    Rmt_lint.Model.concretize b ~num_nodes ~sum_deg ~max_deg ~prev
  in
  let pr = stats.Engine.per_round in
  if Array.length pr > 0 && pr.(0) <> 0 then
    fail "%s: round 0 delivered %d messages" who pr.(0);
  for r = 1 to Array.length pr - 1 do
    let bound, side =
      if r = 1 then (concretize p.Rmt_lint.Model.p_init ~prev:0, "init")
      else (concretize p.Rmt_lint.Model.p_step ~prev:pr.(r - 1), "step")
    in
    if pr.(r) > bound then
      fail "%s: round %d delivered %d messages, %s bound %s allows %d" who r
        pr.(r) side
        (Rmt_lint.Model.bound_to_string
           (if r = 1 then p.Rmt_lint.Model.p_init else p.Rmt_lint.Model.p_step))
        bound;
    incr checked_rounds
  done;
  let total = Array.fold_left ( + ) 0 pr in
  if total <> stats.Engine.messages then
    fail "%s: per-round sum %d <> messages %d" who total stats.Engine.messages;
  (* Bit complexity ties back to the same budget: no message outgrows
     the largest size the size function reported. *)
  if stats.Engine.bits > stats.Engine.messages * max_size then
    fail "%s: %d bits exceed %d messages x max size %d" who stats.Engine.bits
      stats.Engine.messages max_size;
  incr checked_runs

(* Wraps a size function so the largest delivered message is recorded. *)
let sizer size_of =
  let max_size = ref 1 in
  let f m =
    let s = size_of m in
    if s > !max_size then max_size := s;
    s
  in
  (f, max_size)

let run_checked ~who ~graph ~p ~size_of automaton =
  let size_of, max_size = sizer size_of in
  let outcome =
    Engine.run ~size_of ~graph ~adversary:Engine.no_adversary automaton
  in
  check_stats ~who ~graph ~p ~max_size:!max_size outcome.Engine.stats

(* ------------------------------------------------------------------ *)
(* The protocol roster: every runnable automaton the model covers      *)
(* ------------------------------------------------------------------ *)

let trail_size (m : 'p Flood.msg) = 1 + List.length m.Flood.trail

let check_instance name (inst : Instance.t) =
  let graph = inst.Instance.graph in
  let dealer = inst.Instance.dealer in
  let receiver = inst.Instance.receiver in
  let x_dealer = 7 in
  let who proto = Printf.sprintf "%s on %s" proto name in
  run_checked ~who:(who "Rmt_pka") ~graph ~p:(proto "Rmt_pka.automaton")
    ~size_of:Rmt_core.Rmt_pka.msg_size
    (Rmt_core.Rmt_pka.automaton inst ~x_dealer);
  run_checked ~who:(who "Ppa") ~graph ~p:(proto "Ppa.automaton")
    ~size_of:trail_size
    (Rmt_protocols.Ppa.automaton graph ~structure:inst.Instance.structure
       ~dealer ~receiver ~x_dealer);
  run_checked ~who:(who "Zcpa") ~graph ~p:(proto "Zcpa.automaton")
    ~size_of:(fun _ -> 1)
    (Rmt_core.Zcpa.automaton
       ~decider:(Rmt_core.Zcpa.decider_of_oracle (Rmt_core.Zcpa.direct_oracle inst))
       inst ~x_dealer);
  run_checked ~who:(who "Cpa") ~graph ~p:(proto "Cpa.automaton")
    ~size_of:(fun _ -> 1)
    (Rmt_protocols.Cpa.automaton graph ~dealer ~receiver ~t:1 ~x_dealer);
  run_checked ~who:(who "Dolev") ~graph ~p:(proto "Dolev.automaton")
    ~size_of:trail_size
    (Rmt_protocols.Dolev.automaton graph ~dealer ~receiver ~x_dealer);
  run_checked ~who:(who "Naive.first_delivery") ~graph
    ~p:(proto "Naive.first_delivery")
    ~size_of:(fun _ -> 1)
    (Rmt_protocols.Naive.first_delivery graph ~dealer ~receiver ~x_dealer);
  (* first_value and neighbor_majority share the Naive.make skeleton —
     one extracted model, two receivers. *)
  run_checked ~who:(who "Naive.first_value") ~graph ~p:(proto "Naive.make")
    ~size_of:(fun _ -> 1)
    (Rmt_protocols.Naive.first_value graph ~dealer ~receiver ~x_dealer);
  run_checked ~who:(who "Naive.neighbor_majority") ~graph
    ~p:(proto "Naive.make")
    ~size_of:(fun _ -> 1)
    (Rmt_protocols.Naive.neighbor_majority graph ~dealer ~receiver ~x_dealer);
  (* Certified wrapper: pka and ppa instantiations share the
     Certified.make skeleton — one extracted model, the slots-capped
     echo/vote budget (R10) checked dynamically on both. *)
  run_checked ~who:(who "Certified.pka") ~graph ~p:(proto "Certified.make")
    ~size_of:Rmt_protocols.Certified.pka_msg_size
    (Rmt_protocols.Certified.pka inst ~x_dealer);
  run_checked ~who:(who "Certified.ppa") ~graph ~p:(proto "Certified.make")
    ~size_of:Rmt_protocols.Certified.ppa_msg_size
    (Rmt_protocols.Certified.ppa graph ~structure:inst.Instance.structure
       ~dealer ~receiver ~x_dealer)

(* ------------------------------------------------------------------ *)
(* Corpus: every checked-in instance plus 40 random solvable ones      *)
(* ------------------------------------------------------------------ *)

let instances_dir = "../../instances"

let repo_instances () =
  Sys.readdir instances_dir |> Array.to_list |> List.sort compare
  |> List.filter (fun f -> Filename.check_suffix f ".rmt")
  |> List.map (fun f ->
         match Codec.of_file (Filename.concat instances_dir f) with
         | Ok inst -> (Filename.chop_suffix f ".rmt", inst)
         | Error e -> fail "cannot load %s: %s" f e)

let random_instances n =
  let rec go seed acc =
    if List.length acc = n then List.rev acc
    else if seed > 40 * n then
      fail "only %d/%d random solvable instances in %d seeds"
        (List.length acc) n seed
    else
      match Rmt_test_gen.Gen.random_solvable_instance seed with
      | Some inst -> go (seed + 1) ((Printf.sprintf "seed%d" seed, inst) :: acc)
      | None -> go (seed + 1) acc
  in
  go 0 []

let () =
  let repo = repo_instances () in
  if repo = [] then fail "no .rmt instances under %s" instances_dir;
  let corpus = repo @ random_instances 40 in
  List.iter (fun (name, inst) -> check_instance name inst) corpus;
  Printf.printf
    "cost bounds: %d runs over %d instances (%d rounds) within the static \
     budget\n"
    !checked_runs (List.length corpus) !checked_rounds
