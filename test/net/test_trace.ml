open Rmt_net

(* Trace is the observability layer behind `rmt run --trace` and the
   simulator's trace comparison, so its recording must be an identity
   (what the hook saw is what deliveries returns) and its rendering
   must stay byte-stable (the sync-equivalence property compares
   traces structurally, but humans diff renders). *)

let check = Alcotest.(check bool)

(* random event lists: (round, src, dst, payload) with rounds ascending
   the way the engine emits them *)
let arb_events =
  QCheck.make
    ~print:(fun evs ->
      String.concat ";"
        (List.map (fun (r, s, d, x) -> Printf.sprintf "(%d,%d,%d,%d)" r s d x) evs))
    QCheck.Gen.(
      list_size (int_bound 40)
        (int_bound 5 >>= fun r ->
         int_bound 9 >>= fun s ->
         int_bound 9 >>= fun d ->
         int_bound 99 >>= fun x -> return (r, s, d, x))
      >|= List.sort compare)

let feed events =
  let trace, on_deliver = Trace.create ~pp_payload:string_of_int () in
  List.iter (fun (r, s, d, x) -> on_deliver ~round:r ~src:s ~dst:d x) events;
  trace

let recording_is_identity =
  QCheck.Test.make ~count:200 ~name:"deliveries = events fed to the hook"
    arb_events
    (fun events ->
      let trace = feed events in
      Trace.deliveries trace
      = List.map (fun (r, s, d, x) -> (r, s, d, string_of_int x)) events
      && Trace.num_deliveries trace = List.length events)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  n = 0 || at 0

let render_round_count_matches =
  QCheck.Test.make ~count:200 ~name:"render mentions every round once"
    arb_events
    (fun events ->
      let rendered = Trace.render ~max_lines:10_000 (feed events) in
      let rounds = List.sort_uniq compare (List.map (fun (r, _, _, _) -> r) events) in
      List.for_all
        (fun r -> contains ~needle:(Printf.sprintf "round %d (" r) rendered)
        rounds)

let test_render_golden () =
  let trace = feed [ (1, 0, 1, 7); (1, 0, 2, 7); (2, 1, 3, 9) ] in
  Alcotest.(check string)
    "full render" "round 1 (2 deliveries)\n  0 -> 1  7\n  0 -> 2  7\nround 2 (1 deliveries)\n  1 -> 3  9\n"
    (Trace.render trace);
  (* elision: the budget runs out after the first round header + line *)
  Alcotest.(check string)
    "elided render" "round 1 (2 deliveries)\n  0 -> 1  7\n... elided (3 deliveries total)\n"
    (Trace.render ~max_lines:2 trace)

let test_default_payload_summary () =
  let trace, on_deliver = Trace.create () in
  on_deliver ~round:1 ~src:0 ~dst:1 "anything";
  check "default summary" true (Trace.deliveries trace = [ (1, 0, 1, "\xc2\xb7") ])

let test_empty_trace () =
  let trace, _ = Trace.create () in
  Alcotest.(check int) "no deliveries" 0 (Trace.num_deliveries trace);
  Alcotest.(check string) "empty render" "" (Trace.render trace)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "trace"
    [
      ( "recording",
        [
          qt recording_is_identity;
          Alcotest.test_case "default payload summary" `Quick
            test_default_payload_summary;
          Alcotest.test_case "empty" `Quick test_empty_trace;
        ] );
      ( "render",
        [
          Alcotest.test_case "golden" `Quick test_render_golden;
          qt render_round_count_matches;
        ] );
    ]
