open Rmt_base
open Rmt_graph
open Rmt_net

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let ns = Nodeset.of_list

(* A tiny flooding automaton over int messages: node 0 originates its
   value, everyone adopts the first value heard and forwards it once. *)
type gossip = {
  mutable value : int option;
  mutable forwarded : bool;
}

let gossip_automaton g ~origin ~value =
  let broadcast v x =
    Nodeset.fold
      (fun u acc -> Engine.{ dst = u; payload = x } :: acc)
      (Graph.neighbors v g)
      []
  in
  let init v =
    if v = origin then ({ value = Some value; forwarded = true }, broadcast v value)
    else ({ value = None; forwarded = false }, [])
  in
  let step v st ~round:_ ~inbox =
    match (st.value, inbox) with
    | None, (_, x) :: _ ->
      st.value <- Some x;
      st.forwarded <- true;
      (st, broadcast v x)
    | _ -> (st, [])
  in
  let decision st = st.value in
  Engine.{ init; step; decision }

let test_flooding_delivery () =
  let g = Generators.path_graph 5 in
  let outcome =
    Engine.run ~graph:g ~adversary:Engine.no_adversary
      (gossip_automaton g ~origin:0 ~value:7)
  in
  check_int "everyone decided" 5 (List.length outcome.decisions);
  check "all sevens" true (List.for_all (fun (_, x) -> x = 7) outcome.decisions);
  (* hop distance = decision round *)
  Alcotest.(check (option int)) "node 4 at round 4" (Some 4)
    (List.assoc_opt 4 outcome.decision_rounds);
  check_int "messages: each non-origin forwards once along the path" 8
    outcome.stats.messages

let test_synchrony () =
  (* messages sent in round r arrive in round r+1, never earlier *)
  let g = Generators.path_graph 3 in
  let outcome =
    Engine.run ~graph:g ~adversary:Engine.no_adversary
      (gossip_automaton g ~origin:0 ~value:1)
  in
  Alcotest.(check (option int)) "direct neighbor round 1" (Some 1)
    (List.assoc_opt 1 outcome.decision_rounds);
  Alcotest.(check (option int)) "two hops round 2" (Some 2)
    (List.assoc_opt 2 outcome.decision_rounds)

let test_honest_non_neighbor_send_rejected () =
  let g = Generators.path_graph 3 in
  let bad =
    Engine.
      {
        init = (fun v -> ((), if v = 0 then [ { dst = 2; payload = 1 } ] else []));
        step = (fun _ st ~round:_ ~inbox:_ -> (st, []));
        decision = (fun _ -> None);
      }
  in
  check "raises" true
    (try
       ignore (Engine.run ~graph:g ~adversary:Engine.no_adversary bad);
       false
     with Invalid_argument _ -> true)

let test_adversary_non_neighbor_send_dropped () =
  let g = Generators.path_graph 3 in
  let adv =
    Byzantine.of_fun (ns [ 0 ]) (fun _ ~round ~inbox:_ ->
        if round = 0 then [ Engine.{ dst = 2; payload = 9 } ] else [])
  in
  let outcome =
    Engine.run ~max_rounds:3 ~graph:g ~adversary:adv
      (gossip_automaton g ~origin:1 ~value:4)
  in
  (* node 2 heard only the honest gossip *)
  Alcotest.(check (option int)) "clean delivery" (Some 4)
    (Engine.decision_of outcome 2)

let test_corrupted_outside_graph_rejected () =
  let g = Generators.path_graph 3 in
  check "raises" true
    (try
       ignore
         (Engine.run ~graph:g ~adversary:(Byzantine.silent (ns [ 9 ]))
            (gossip_automaton g ~origin:0 ~value:1));
       false
     with Invalid_argument _ -> true)

let test_stop_when () =
  let g = Generators.path_graph 6 in
  let outcome =
    Engine.run ~graph:g ~adversary:Engine.no_adversary
      ~stop_when:(fun dec -> dec 2 <> None)
      (gossip_automaton g ~origin:0 ~value:3)
  in
  check "node 2 decided" true (Engine.decision_of outcome 2 <> None);
  check "node 5 not yet" true (Engine.decision_of outcome 5 = None)

let test_max_messages_truncation () =
  (* a babbling honest protocol: everyone rebroadcasts every message *)
  let g = Generators.complete 5 in
  let babble =
    let broadcast v x =
      Nodeset.fold
        (fun u acc -> Engine.{ dst = u; payload = x } :: acc)
        (Graph.neighbors v g)
        []
    in
    Engine.
      {
        init = (fun v -> ((), if v = 0 then broadcast 0 1 else []));
        step = (fun v st ~round:_ ~inbox ->
          (st, List.concat_map (fun (_, x) -> broadcast v x) inbox));
        decision = (fun _ -> None);
      }
  in
  let outcome =
    Engine.run ~max_messages:500 ~graph:g ~adversary:Engine.no_adversary babble
  in
  check "truncated" true outcome.stats.truncated;
  check "bounded" true (outcome.stats.messages <= 500)

let test_silent_adversary_blocks () =
  let g = Generators.path_graph 4 in
  let outcome =
    Engine.run ~max_rounds:10 ~graph:g
      ~adversary:(Byzantine.silent (ns [ 1 ]))
      (gossip_automaton g ~origin:0 ~value:5)
  in
  check "cut off" true (Engine.decision_of outcome 3 = None)

let test_mimic_equals_honest () =
  let g = Generators.grid 2 3 in
  let auto = gossip_automaton g ~origin:0 ~value:9 in
  let honest = Engine.run ~graph:g ~adversary:Engine.no_adversary auto in
  let mimic =
    Engine.run ~max_rounds:12 ~graph:g
      ~adversary:(Byzantine.mimic_honest (ns [ 1; 4 ]) auto)
      (gossip_automaton g ~origin:0 ~value:9)
  in
  (* honest players decide identically when the corrupted mimic honestly *)
  List.iter
    (fun (v, x) ->
      if v <> 1 && v <> 4 then
        Alcotest.(check (option int))
          (Printf.sprintf "node %d" v) (Some x)
          (Engine.decision_of mimic v))
    honest.decisions

let test_crash_after () =
  let g = Generators.path_graph 4 in
  let auto = gossip_automaton g ~origin:0 ~value:2 in
  (* node 1 crashes before it can forward (it would forward in round 1) *)
  let outcome =
    Engine.run ~max_rounds:10 ~graph:g
      ~adversary:(Byzantine.crash_after (ns [ 1 ]) auto 0)
      (gossip_automaton g ~origin:0 ~value:2)
  in
  check "blocked" true (Engine.decision_of outcome 3 = None);
  (* crashing later lets the value through *)
  let outcome2 =
    Engine.run ~max_rounds:10 ~graph:g
      ~adversary:(Byzantine.crash_after (ns [ 1 ]) auto 5)
      (gossip_automaton g ~origin:0 ~value:2)
  in
  Alcotest.(check (option int)) "delivered" (Some 2)
    (Engine.decision_of outcome2 3)

let test_per_node_dispatch () =
  let g = Generators.path_graph 5 in
  let adv =
    Byzantine.per_node
      ~default:(Byzantine.silent (ns [ 1 ]))
      [
        ( 3,
          fun ~round ~inbox:_ ->
            if round = 0 then [ Engine.{ dst = 4; payload = 42 } ] else [] );
      ]
  in
  let outcome =
    Engine.run ~max_rounds:8 ~graph:g ~adversary:adv
      (gossip_automaton g ~origin:0 ~value:7)
  in
  (* node 4 gets 42 from corrupted 3; node 2 gets nothing through silent 1 *)
  Alcotest.(check (option int)) "forged" (Some 42) (Engine.decision_of outcome 4);
  Alcotest.(check (option int)) "blocked" None (Engine.decision_of outcome 2)

let test_stats_per_round () =
  let g = Generators.path_graph 3 in
  let outcome =
    Engine.run ~graph:g ~adversary:Engine.no_adversary
      (gossip_automaton g ~origin:0 ~value:1)
  in
  check "round 0 sends nothing delivered" true (outcome.stats.per_round.(0) = 0);
  check_int "round 1 delivers origin's send" 1 outcome.stats.per_round.(1);
  check "bits counted" true (outcome.stats.bits = outcome.stats.messages)

let test_engine_deterministic () =
  (* identical runs produce identical outcomes — the foundation of the
     co-simulation argument and of experiment reproducibility *)
  let g = Generators.grid 3 3 in
  let run () =
    let outcome =
      Engine.run ~graph:g ~adversary:(Byzantine.silent (ns [ 4 ]))
        (gossip_automaton g ~origin:0 ~value:5)
    in
    (outcome.decisions, outcome.decision_rounds, outcome.stats.messages)
  in
  let a = run () and b = run () in
  check "identical outcomes" true (a = b)

let test_trace_records () =
  let g = Generators.path_graph 4 in
  let trace, on_deliver =
    Rmt_net.Trace.create ~pp_payload:string_of_int ()
  in
  let outcome =
    Engine.run ~on_deliver ~graph:g ~adversary:Engine.no_adversary
      (gossip_automaton g ~origin:0 ~value:9)
  in
  check_int "all deliveries traced" outcome.stats.messages
    (Rmt_net.Trace.num_deliveries trace);
  let rendered = Rmt_net.Trace.render trace in
  check "mentions round 1" true (String.length rendered > 0);
  let elided = Rmt_net.Trace.render ~max_lines:2 trace in
  check "elision marker" true
    (String.length elided < String.length rendered)

(* ------------------------------------------------------------------ *)
(* Flood                                                               *)
(* ------------------------------------------------------------------ *)

let test_trail_ok () =
  check "valid" true (Flood.trail_ok ~self:3 ~src:2 [ 0; 1; 2 ]);
  check "self in trail" false (Flood.trail_ok ~self:1 ~src:2 [ 0; 1; 2 ]);
  check "wrong tail" false (Flood.trail_ok ~self:3 ~src:1 [ 0; 1; 2 ]);
  check "non-simple" false (Flood.trail_ok ~self:3 ~src:2 [ 0; 2; 0; 2 ]);
  check "empty trail" false (Flood.trail_ok ~self:3 ~src:2 [])

let test_flood_relay () =
  let g = Generators.path_graph 4 in
  let inbox = [ (1, Flood.{ payload = "x"; trail = [ 0; 1 ] }) ] in
  let sends = Flood.relay g 2 ~inbox in
  check_int "forwards to both neighbors" 2 (List.length sends);
  List.iter
    (fun Engine.{ payload; _ } ->
      Alcotest.(check (list int)) "extended trail" [ 0; 1; 2 ] payload.Flood.trail)
    sends;
  (* bad trail dropped *)
  let bad = [ (1, Flood.{ payload = "x"; trail = [ 0 ] }) ] in
  check_int "dropped" 0 (List.length (Flood.relay g 2 ~inbox:bad))

let test_flood_originate () =
  let g = Generators.star 4 in
  let sends = Flood.originate g 0 "hello" in
  check_int "to all leaves" 3 (List.length sends);
  List.iter
    (fun Engine.{ payload; _ } ->
      Alcotest.(check (list int)) "own trail" [ 0 ] payload.Flood.trail)
    sends

let () =
  Alcotest.run "rmt_net"
    [
      ( "engine",
        [
          Alcotest.test_case "flooding delivery" `Quick test_flooding_delivery;
          Alcotest.test_case "synchrony" `Quick test_synchrony;
          Alcotest.test_case "honest channel check" `Quick
            test_honest_non_neighbor_send_rejected;
          Alcotest.test_case "adversary channel drop" `Quick
            test_adversary_non_neighbor_send_dropped;
          Alcotest.test_case "corrupted id check" `Quick
            test_corrupted_outside_graph_rejected;
          Alcotest.test_case "stop_when" `Quick test_stop_when;
          Alcotest.test_case "max_messages" `Quick test_max_messages_truncation;
          Alcotest.test_case "stats per round" `Quick test_stats_per_round;
          Alcotest.test_case "deterministic" `Quick test_engine_deterministic;
          Alcotest.test_case "trace" `Quick test_trace_records;
        ] );
      ( "byzantine",
        [
          Alcotest.test_case "silent blocks" `Quick test_silent_adversary_blocks;
          Alcotest.test_case "mimic = honest" `Quick test_mimic_equals_honest;
          Alcotest.test_case "crash_after" `Quick test_crash_after;
          Alcotest.test_case "per-node dispatch" `Quick test_per_node_dispatch;
        ] );
      ( "flood",
        [
          Alcotest.test_case "trail_ok" `Quick test_trail_ok;
          Alcotest.test_case "relay" `Quick test_flood_relay;
          Alcotest.test_case "originate" `Quick test_flood_originate;
        ] );
    ]
