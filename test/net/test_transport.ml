(* Conformance suite for the Transport backend contract (lib/net).

   Every Transport.S implementation — the synchronous engine, the
   discrete-event simulator pinned to Policy.sync, and the
   Domain-sharded mcast runtime — must produce byte-identical outcomes
   on the same inputs: same run report (verdict, rounds, messages,
   truncation) and same rendered delivery trace.  Pinned over every
   checked-in instance, the three paper protocols, and a small family
   of attack programs; plus qcheck properties that the mcast runtime's
   outcome is independent of the domain count and of the sharding
   seed, and direct unit tests of its accounting and failure
   semantics. *)

open Rmt_base
open Rmt_graph
open Rmt_knowledge
open Rmt_attack
open Rmt_net

let check = Alcotest.(check bool)
let instances_dir = "../../instances"

let repo_instances () =
  Sys.readdir instances_dir |> Array.to_list |> List.sort compare
  |> List.filter (fun f -> Filename.check_suffix f ".rmt")
  |> List.map (fun f ->
         match Codec.of_file (Filename.concat instances_dir f) with
         | Ok inst -> (Filename.chop_suffix f ".rmt", inst)
         | Error e -> Alcotest.failf "cannot load %s: %s" f e)

let protocols = Campaign.[ Pka; Ppa; Zcpa ]

(* Any backend plugs into the campaign executor through the runner
   record — the adapter that makes "same protocol, same program, other
   substrate" a one-liner. *)
let runner_of (module T : Transport.S) =
  {
    Campaign.run =
      (fun ?max_messages ?size_of ?stop_when ?on_deliver ~graph ~adversary a ->
        T.run ?max_messages ?size_of ?stop_when ?on_deliver ~graph ~adversary a);
  }

let pinned_programs inst =
  Program.make ~seed:0 []
  :: List.map
       (fun s -> Strategy_gen.random (Prng.create s) inst ~x_dealer:7 ~x_fake:8)
       [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Conformance: every backend reproduces the engine byte for byte      *)
(* ------------------------------------------------------------------ *)

let conformance (module T : Transport.S) () =
  List.iter
    (fun (name, inst) ->
      let programs = pinned_programs inst in
      List.iter
        (fun protocol ->
          List.iteri
            (fun i p ->
              let label =
                Printf.sprintf "%s/%s/%s/program %d" T.name name
                  (Campaign.protocol_to_string protocol)
                  i
              in
              let engine_r, engine_trace =
                Campaign.execute_traced protocol inst ~x_dealer:7 p
              in
              let backend_r, backend_trace =
                Campaign.execute_traced
                  ~runner:(runner_of (module T))
                  protocol inst ~x_dealer:7 p
              in
              check (label ^ ": identical report") true (engine_r = backend_r);
              check (label ^ ": identical trace") true
                (String.equal engine_trace backend_trace))
            programs)
        protocols)
    (repo_instances ())

let test_engine_backend = conformance (module Engine.Backend)
let test_sim_sync_backend = conformance (module Rmt_sim.Sim.Sync_backend)
let test_mcast_single_domain = conformance (Mcast.backend ~domains:1)

(* ------------------------------------------------------------------ *)
(* Mcast: outcomes independent of domain count and sharding seed       *)
(* ------------------------------------------------------------------ *)

let mcast_runner ~domains ~seed =
  {
    Campaign.run =
      (fun ?max_messages ?size_of ?stop_when ?on_deliver ~graph ~adversary a ->
        Mcast.run ~domains ~seed ?max_messages ?size_of ?stop_when ?on_deliver
          ~graph ~adversary a);
  }

let test_mcast_domain_independence =
  QCheck.Test.make ~count:40
    ~name:"mcast outcome independent of domains and seed"
    Rmt_test_gen.Gen.arb_instance_and_seed (fun (inst, seed) ->
      let p =
        Strategy_gen.random (Prng.create seed) inst ~x_dealer:7 ~x_fake:8
      in
      let protocol = List.nth protocols (abs seed mod List.length protocols) in
      let base, base_trace =
        Campaign.execute_traced protocol inst ~x_dealer:7 p
      in
      List.for_all
        (fun (domains, salt) ->
          let r, t =
            Campaign.execute_traced
              ~runner:(mcast_runner ~domains ~seed:salt)
              protocol inst ~x_dealer:7 p
          in
          r = base && String.equal t base_trace)
        [
          (1, 0);
          (2, 1);
          (3, 5);
          (4, 12);
          (Mcast.recommended_domains (), abs seed);
        ])

(* ------------------------------------------------------------------ *)
(* Mcast unit semantics                                                *)
(* ------------------------------------------------------------------ *)

(* 0 --- 1 --- 2: node 0 originates 7 at round 0, each hop forwards
   once; exercises accounting with a hand-countable message pattern. *)
type relay = { id : int; mutable got : int option }

let relay_automaton =
  let open Transport in
  {
    init =
      (fun v ->
        ( { id = v; got = (if v = 0 then Some 7 else None) },
          if v = 0 then [ { dst = 1; payload = 7 } ] else [] ));
    step =
      (fun _ st ~round:_ ~inbox ->
        match (st.got, inbox) with
        | None, (_, x) :: _ ->
          st.got <- Some x;
          (st, if st.id < 2 then [ { dst = st.id + 1; payload = x } ] else [])
        | _ -> (st, []));
    decision = (fun st -> st.got);
  }

let test_mcast_accounting () =
  let g = Generators.path_graph 3 in
  let outcome, acct =
    Mcast.run_accounted ~domains:2 ~size_of:(fun _ -> 4) ~graph:g
      ~adversary:Engine.no_adversary relay_automaton
  in
  check "all three decided 7" true
    (List.sort compare outcome.Transport.decisions
    = [ (0, 7); (1, 7); (2, 7) ]);
  Alcotest.(check int) "two messages delivered" 2 outcome.stats.messages;
  Alcotest.(check int) "domains clamped to honest" 2 acct.Mcast.domains_used;
  Alcotest.(check int) "two messages sent" 2 acct.sent_messages;
  Alcotest.(check int) "eight bytes sent" 8 acct.sent_bytes;
  check "per-(sender, round) ledger" true
    (acct.by_sender_round = [ ((0, 0), 4); ((1, 1), 4) ]);
  Alcotest.(check int) "bytes_of hit" 4
    (Mcast.bytes_of acct ~sender:1 ~round:1);
  Alcotest.(check int) "bytes_of miss" 0
    (Mcast.bytes_of acct ~sender:2 ~round:1)

let test_mcast_clamping () =
  let g = Generators.path_graph 3 in
  let _, acct =
    Mcast.run_accounted ~domains:64 ~graph:g ~adversary:Engine.no_adversary
      relay_automaton
  in
  Alcotest.(check int) "64 domains clamp to 3 honest players" 3
    acct.Mcast.domains_used;
  check "domains < 1 rejected" true
    (match
       Mcast.run ~domains:0 ~graph:g ~adversary:Engine.no_adversary
         relay_automaton
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* An honest send to a non-neighbor must raise on a worker domain just
   as it does sequentially — and deterministically: the lowest-ranked
   failing player wins. *)
let test_mcast_worker_failure () =
  let g = Generators.path_graph 3 in
  let bad =
    let open Transport in
    {
      init =
        (fun v ->
          (* one valid round-0 send keeps the network live into round 1 *)
          (v, if v = 0 then [ { dst = 1; payload = 0 } ] else []));
      step =
        (fun v st ~round ~inbox:_ ->
          if round = 1 then (st, [ { dst = (v + 2) mod 3; payload = 0 } ])
          else (st, []));
      decision = (fun _ -> None);
    }
  in
  Alcotest.check_raises "non-neighbor send surfaces from the pool"
    (Invalid_argument "Mcast.run: honest node 0 sent to non-neighbor 2")
    (fun () ->
      ignore
        (Mcast.run ~domains:3
           ~adversary:
             {
               Transport.corrupted = Rmt_base.Nodeset.of_list [];
               act = (fun _ ~round:_ ~inbox:_ -> []);
             }
           ~graph:g bad))

let () =
  Alcotest.run "transport"
    [
      ( "conformance",
        [
          Alcotest.test_case "engine backend" `Quick test_engine_backend;
          Alcotest.test_case "sim-sync backend" `Quick test_sim_sync_backend;
          Alcotest.test_case "mcast single-domain backend" `Quick
            test_mcast_single_domain;
        ] );
      ( "mcast",
        [
          QCheck_alcotest.to_alcotest test_mcast_domain_independence;
          Alcotest.test_case "accounting" `Quick test_mcast_accounting;
          Alcotest.test_case "domain clamping" `Quick test_mcast_clamping;
          Alcotest.test_case "worker failure" `Quick test_mcast_worker_failure;
        ] );
    ]
