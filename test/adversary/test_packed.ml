(* Equivalence suite for the packed antichain representation.

   Every kernel that got a packed fast path (reduce, mem, restrict, the
   streaming Builder, and the joint-view join built on it) is checked
   against an independent list-based reference implementation — the
   straightforward sort + quadratic subset scan the packed code replaced.
   On top of the equivalences, the ⊕ semilattice laws (Theorems 11, 13,
   14) are exercised directly on the packed representation. *)

open Rmt_base
open Rmt_adversary
open Rmt_core

let ns = Nodeset.of_list

(* ------------------------------------------------------------------ *)
(* List-based reference kernels                                        *)
(* ------------------------------------------------------------------ *)

let ref_reduce sets =
  let sorted = List.sort_uniq Nodeset.compare sets in
  List.filter
    (fun z ->
      not
        (List.exists
           (fun z' -> (not (Nodeset.equal z z')) && Nodeset.subset z z')
           sorted))
    sorted

let ref_mem z maximal = List.exists (fun m -> Nodeset.subset z m) maximal

let ref_restrict a maximal =
  ref_reduce (List.map (fun m -> Nodeset.inter m a) maximal)

let ref_join (a, max_e) (b, max_f) =
  ref_reduce
    (List.concat_map
       (fun m1 ->
         List.map
           (fun m2 ->
             Nodeset.union
               (Nodeset.union (Nodeset.diff m1 b) (Nodeset.diff m2 a))
               (Nodeset.inter m1 m2))
           max_f)
       max_e)

(* antichain equality up to ordering *)
let same_family xs ys =
  let sort = List.sort Nodeset.compare in
  List.equal Nodeset.equal (sort xs) (sort ys)

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let sets_gen =
  QCheck.Gen.(
    let* seed = int_bound 1_000_000 in
    let rng = Prng.create seed in
    let ground = Nodeset.range 0 10 in
    let* k = int_range 0 12 in
    return
      (List.init k (fun _ -> Prng.sample rng ground (Prng.int rng 6))))

let arb_sets =
  QCheck.make
    ~print:(fun sets -> String.concat " " (List.map Nodeset.to_string sets))
    sets_gen

(* structure over a random ground ⊆ {0..9}, as a (ground, structure) pair *)
let structure_gen =
  QCheck.Gen.(
    let* seed = int_bound 1_000_000 in
    let rng = Prng.create seed in
    let ground =
      Nodeset.add (Prng.int rng 10) (Prng.sample rng (Nodeset.range 0 10) 5)
    in
    let* k = int_range 1 6 in
    let sets =
      List.init k (fun _ -> Prng.sample rng ground (Prng.int rng 4))
    in
    return (Structure.of_sets ~ground sets))

let arb_structure = QCheck.make ~print:Structure.to_string structure_gen

let qtest name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:300 ~name arb prop)

(* ------------------------------------------------------------------ *)
(* Packed vs reference                                                 *)
(* ------------------------------------------------------------------ *)

let reduce_equiv =
  qtest "reduce = reference reduce" arb_sets (fun sets ->
      same_family (Structure.reduce sets) (ref_reduce sets))

let reduce_invariants =
  qtest "reduce yields a (size, set)-sorted antichain" arb_sets (fun sets ->
      let out = Structure.reduce sets in
      let sorted_ok =
        let rec ok = function
          | a :: (b :: _ as rest) ->
            (Nodeset.size a < Nodeset.size b
            || (Nodeset.size a = Nodeset.size b && Nodeset.compare a b < 0))
            && ok rest
          | _ -> true
        in
        ok out
      in
      let antichain_ok =
        List.for_all
          (fun z ->
            not
              (List.exists
                 (fun z' ->
                   (not (Nodeset.equal z z')) && Nodeset.subset z z')
                 out))
          out
      in
      sorted_ok && antichain_ok)

let mem_equiv =
  qtest "mem = reference mem"
    QCheck.(pair arb_structure (QCheck.make QCheck.Gen.(int_bound 1_000_000)))
    (fun (s, seed) ->
      let rng = Prng.create seed in
      let ground = Structure.ground s in
      let maximal = Structure.maximal_sets s in
      List.for_all
        (fun _ ->
          let z = Prng.sample rng ground (Prng.int rng (Nodeset.size ground)) in
          Structure.mem z s = ref_mem z maximal)
        (List.init 20 Fun.id))

let restrict_equiv =
  qtest "restrict = reference restrict"
    QCheck.(pair arb_structure (QCheck.make QCheck.Gen.(int_bound 1_000_000)))
    (fun (s, seed) ->
      let rng = Prng.create seed in
      let ground = Structure.ground s in
      let a = Prng.sample rng ground (Prng.int rng (Nodeset.size ground + 1)) in
      same_family
        (Structure.maximal_sets (Structure.restrict a s))
        (ref_restrict a (Structure.maximal_sets s)))

let join_equiv =
  qtest "join = reference join" QCheck.(pair arb_structure arb_structure)
    (fun (e, f) ->
      let a = Structure.ground e and b = Structure.ground f in
      same_family
        (Structure.maximal_sets (Joint.join e f))
        (ref_join
           (a, Structure.maximal_sets e)
           (b, Structure.maximal_sets f)))

let builder_equiv =
  qtest "Builder streaming = of_sets" arb_sets (fun sets ->
      let ground = Nodeset.range 0 10 in
      let b = Structure.Builder.create () in
      List.iter (fun z -> Structure.Builder.add b z) sets;
      let streamed = Structure.Builder.to_structure ~ground b in
      (match sets with
      | [] -> true
      | _ ->
        Structure.Builder.cardinal b = Structure.num_maximal streamed)
      && Structure.equal streamed (Structure.of_sets ~ground sets))

let builder_covered =
  qtest "Builder.covered = mem of the running antichain" arb_sets (fun sets ->
      let ground = Nodeset.range 0 10 in
      let b = Structure.Builder.create () in
      List.iter (fun z -> Structure.Builder.add b z) sets;
      let s = Structure.Builder.to_structure ~ground b in
      List.for_all
        (fun z ->
          Structure.Builder.covered b z
          = Structure.mem z s)
        (Nodeset.empty :: ns [ 0; 1; 2 ] :: sets))

(* ------------------------------------------------------------------ *)
(* ⊕ semilattice laws on the packed representation                     *)
(* ------------------------------------------------------------------ *)

let join_commutative =
  qtest "join commutative" QCheck.(pair arb_structure arb_structure)
    (fun (e, f) -> Structure.equal (Joint.join e f) (Joint.join f e))

let join_associative =
  qtest "join associative"
    QCheck.(triple arb_structure arb_structure arb_structure)
    (fun (e, f, g) ->
      Structure.equal
        (Joint.join (Joint.join e f) g)
        (Joint.join e (Joint.join f g)))

let join_idempotent =
  qtest "join idempotent" arb_structure (fun s ->
      Structure.equal (Joint.join s s) s)

let join_identity =
  qtest "join identity" arb_structure (fun s ->
      Structure.equal (Joint.join Joint.identity s) s
      && Structure.equal (Joint.join s Joint.identity) s)

let () =
  Alcotest.run "packed"
    [
      ( "equivalence",
        [
          reduce_equiv;
          reduce_invariants;
          mem_equiv;
          restrict_equiv;
          join_equiv;
          builder_equiv;
          builder_covered;
        ] );
      ( "semilattice",
        [ join_commutative; join_associative; join_idempotent; join_identity ]
      );
    ]
