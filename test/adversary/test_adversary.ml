open Rmt_base
open Rmt_graph
open Rmt_adversary

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let ns = Nodeset.of_list

(* random structure over a small universe *)
let structure_gen ?(universe = 8) () =
  QCheck.Gen.(
    let* seed = int_bound 1_000_000 in
    let rng = Prng.create seed in
    let ground = Nodeset.range 0 universe in
    let* k = int_range 1 5 in
    let sets =
      List.init k (fun _ -> Prng.sample rng ground (1 + Prng.int rng 4))
    in
    return (Structure.of_sets ~ground sets))

let arb_structure =
  QCheck.make ~print:Structure.to_string (structure_gen ())

let arb_set =
  QCheck.make ~print:Nodeset.to_string
    QCheck.Gen.(map Nodeset.of_list (list_size (int_bound 6) (int_bound 7)))

(* ------------------------------------------------------------------ *)
(* Structure basics                                                    *)
(* ------------------------------------------------------------------ *)

let test_antichain_reduction () =
  let ground = Nodeset.range 0 5 in
  let s = Structure.of_sets ~ground [ ns [ 1 ]; ns [ 1; 2 ]; ns [ 3 ] ] in
  check_int "dominated set dropped" 2 (Structure.num_maximal s);
  check "subset member" true (Structure.mem (ns [ 1 ]) s);
  check "empty member" true (Structure.mem Nodeset.empty s);
  check "union not member" false (Structure.mem (ns [ 1; 3 ]) s)

let test_outside_ground_rejected () =
  Alcotest.check_raises "outside ground"
    (Invalid_argument "Structure.of_sets: set outside ground") (fun () ->
      ignore (Structure.of_sets ~ground:(ns [ 0; 1 ]) [ ns [ 2 ] ]))

let test_trivial_and_empty () =
  let ground = ns [ 0; 1 ] in
  let t = Structure.trivial ~ground in
  check "trivial has empty set" true (Structure.mem Nodeset.empty t);
  check "trivial has nothing else" false (Structure.mem (ns [ 0 ]) t);
  let e = Structure.empty_family ~ground in
  check "empty family empty" true (Structure.is_empty_family e);
  check "not even empty set" false (Structure.mem Nodeset.empty e)

let binom n k =
  let k = min k (n - k) in
  if k < 0 then 0
  else begin
    let acc = ref 1 in
    for i = 1 to k do
      acc := !acc * (n - k + i) / i
    done;
    !acc
  end

let test_threshold () =
  let ground = Nodeset.range 0 6 in
  let s = Structure.threshold ~ground 2 in
  check_int "C(6,2) maximal sets" (binom 6 2) (Structure.num_maximal s);
  check "pair in" true (Structure.mem (ns [ 0; 5 ]) s);
  check "triple out" false (Structure.mem (ns [ 0; 1; 2 ]) s);
  check "zero threshold" true
    (Structure.equal (Structure.threshold ~ground 0) (Structure.trivial ~ground));
  check "over-threshold saturates" true
    (Structure.mem ground (Structure.threshold ~ground 99))

let test_of_predicate_matches_threshold () =
  let ground = Nodeset.range 0 6 in
  let s1 = Structure.threshold ~ground 2 in
  let s2 = Structure.of_predicate ~ground (fun z -> Nodeset.size z <= 2) in
  check "same structure" true (Structure.equal s1 s2)

let test_of_predicate_monotone_guard () =
  let ground = Nodeset.range 0 4 in
  Alcotest.check_raises "non-monotone"
    (Invalid_argument "Structure.of_predicate: predicate not monotone")
    (fun () ->
      ignore (Structure.of_predicate ~ground (fun z -> Nodeset.size z = 2)))

let test_restrict () =
  let ground = Nodeset.range 0 6 in
  let s = Structure.of_sets ~ground [ ns [ 0; 1; 2 ]; ns [ 3; 4 ] ] in
  let r = Structure.restrict (ns [ 1; 2; 3 ]) s in
  check "ground restricted" true
    (Nodeset.equal (ns [ 1; 2; 3 ]) (Structure.ground r));
  check "intersected member" true (Structure.mem (ns [ 1; 2 ]) r);
  check "other side" true (Structure.mem (ns [ 3 ]) r);
  check "cross union excluded" false (Structure.mem (ns [ 1; 3 ]) r)

let test_add_set () =
  let s = Structure.trivial ~ground:(ns [ 0; 1 ]) in
  let s' = Structure.add_set (ns [ 0; 1 ]) s in
  check "added" true (Structure.mem (ns [ 0; 1 ]) s');
  check_int "antichain collapsed" 1 (Structure.num_maximal s')

let test_family_ops () =
  let ground = Nodeset.range 0 5 in
  let a = Structure.of_sets ~ground [ ns [ 0; 1 ] ] in
  let b = Structure.of_sets ~ground [ ns [ 1; 2 ] ] in
  let u = Structure.union_families a b in
  check "union has both" true
    (Structure.mem (ns [ 0; 1 ]) u && Structure.mem (ns [ 1; 2 ]) u);
  let i = Structure.inter_families a b in
  check "inter has overlap" true (Structure.mem (ns [ 1 ]) i);
  check "inter drops sides" false (Structure.mem (ns [ 0; 1 ]) i);
  check "subset_family" true (Structure.subset_family i a);
  check "subset_family strict" false (Structure.subset_family u a)

let test_covers_cut () =
  let g = Generators.path_graph 4 in
  let s =
    Structure.of_sets ~ground:(ns [ 1; 2 ]) [ ns [ 1 ] ]
  in
  check "singleton 1 cuts" true (Structure.covers_cut s g 0 3);
  let s2 = Structure.trivial ~ground:(ns [ 1; 2 ]) in
  check "trivial does not cut" false (Structure.covers_cut s2 g 0 3)

(* ------------------------------------------------------------------ *)
(* Structure properties                                                *)
(* ------------------------------------------------------------------ *)

let qcheck_props =
  [
    QCheck.Test.make ~count:150 ~name:"membership downward closed"
      (QCheck.pair arb_structure arb_set) (fun (s, z) ->
        let z = Nodeset.inter z (Structure.ground s) in
        (not (Structure.mem z s))
        || Nodeset.for_all (fun v -> Structure.mem (Nodeset.remove v z) s) z);
    QCheck.Test.make ~count:150 ~name:"maximal sets are members"
      arb_structure (fun s ->
        List.for_all (fun m -> Structure.mem m s) (Structure.maximal_sets s));
    QCheck.Test.make ~count:150 ~name:"restrict twice = restrict of inter"
      (QCheck.triple arb_structure arb_set arb_set) (fun (s, a, b) ->
        Structure.equal
          (Structure.restrict a (Structure.restrict b s))
          (Structure.restrict (Nodeset.inter a b) s));
    QCheck.Test.make ~count:150 ~name:"mem respects restriction"
      (QCheck.triple arb_structure arb_set arb_set) (fun (s, a, z) ->
        let z = Nodeset.inter z (Structure.ground s) in
        (not (Structure.mem z s))
        || Structure.mem (Nodeset.inter z a) (Structure.restrict a s));
    QCheck.Test.make ~count:150 ~name:"restrict to ground is identity"
      arb_structure (fun s ->
        Structure.equal s (Structure.restrict (Structure.ground s) s));
    QCheck.Test.make ~count:150 ~name:"union_families is upper bound"
      (QCheck.pair arb_structure arb_structure) (fun (a, b) ->
        let u = Structure.union_families a b in
        Structure.subset_family a u && Structure.subset_family b u);
    QCheck.Test.make ~count:150 ~name:"inter_families is lower bound"
      (QCheck.pair arb_structure arb_structure) (fun (a, b) ->
        let i = Structure.inter_families a b in
        Structure.subset_family i a && Structure.subset_family i b);
  ]

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)
(* ------------------------------------------------------------------ *)

let test_global_threshold_builder () =
  let g = Generators.complete 5 in
  let s = Builders.global_threshold g ~dealer:0 2 in
  check "dealer excluded" false (Nodeset.mem 0 (Structure.ground s));
  check "pair" true (Structure.mem (ns [ 1; 2 ]) s);
  check "triple" false (Structure.mem (ns [ 1; 2; 3 ]) s)

let test_t_local_builder () =
  let g = Generators.cycle 6 in
  let s = Builders.t_local g ~dealer:0 1 in
  (* every member has at most 1 node in each neighborhood *)
  check "local bound respected" true
    (List.for_all
       (fun m ->
         Nodeset.for_all
           (fun v ->
             Nodeset.size (Nodeset.inter m (Graph.neighbors v g)) <= 1)
           (Graph.nodes g))
       (Structure.maximal_sets s));
  (* opposite nodes don't share a neighborhood: both can be corrupted *)
  check "antipodal pair admissible" true (Structure.mem (ns [ 2; 5 ]) s);
  check "adjacent-to-same pair rejected" false (Structure.mem (ns [ 1; 3 ]) s)

let test_t_local_vs_predicate () =
  let g = Generators.grid 2 3 in
  let s1 = Builders.t_local g ~dealer:0 1 in
  let ground = Nodeset.remove 0 (Graph.nodes g) in
  let s2 =
    Structure.of_predicate ~ground (fun z ->
        Nodeset.for_all
          (fun v -> Nodeset.size (Nodeset.inter z (Graph.neighbors v g)) <= 1)
          (Graph.nodes g))
  in
  check "same family" true (Structure.equal s1 s2)

let test_random_antichain_builder () =
  let rng = Prng.create 77 in
  let g = Generators.complete 8 in
  let s = Builders.random_antichain rng g ~dealer:0 ~sets:6 ~max_size:3 in
  check "within ground" true
    (Nodeset.subset (Structure.ground s) (Nodeset.remove 0 (Graph.nodes g)));
  check "bounded sizes" true
    (List.for_all
       (fun m -> Nodeset.size m <= 3)
       (Structure.maximal_sets s))

let test_from_maximal_clips_dealer () =
  let g = Generators.path_graph 4 in
  let s = Builders.from_maximal g ~dealer:0 [ ns [ 0; 1 ] ] in
  check "dealer clipped" true (Structure.mem (ns [ 1 ]) s);
  check "dealer not member" false (Structure.mem (ns [ 0 ]) s)

let () =
  Alcotest.run "rmt_adversary"
    [
      ( "structure",
        [
          Alcotest.test_case "antichain reduction" `Quick test_antichain_reduction;
          Alcotest.test_case "ground check" `Quick test_outside_ground_rejected;
          Alcotest.test_case "trivial/empty" `Quick test_trivial_and_empty;
          Alcotest.test_case "threshold" `Quick test_threshold;
          Alcotest.test_case "predicate=threshold" `Quick
            test_of_predicate_matches_threshold;
          Alcotest.test_case "monotone guard" `Quick
            test_of_predicate_monotone_guard;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "add_set" `Quick test_add_set;
          Alcotest.test_case "family ops" `Quick test_family_ops;
          Alcotest.test_case "covers_cut" `Quick test_covers_cut;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_props);
      ( "builders",
        [
          Alcotest.test_case "global threshold" `Quick test_global_threshold_builder;
          Alcotest.test_case "t-local" `Quick test_t_local_builder;
          Alcotest.test_case "t-local vs predicate" `Quick test_t_local_vs_predicate;
          Alcotest.test_case "random antichain" `Quick test_random_antichain_builder;
          Alcotest.test_case "dealer clipped" `Quick test_from_maximal_clips_dealer;
        ] );
    ]
