(* End-to-end integration: the feasibility deciders, the protocols, the
   attack constructions and the workload generators must tell one
   consistent story on a shared random suite.  This is the test-suite
   version of experiments E3/E4/E5. *)

open Rmt_base
open Rmt_knowledge
open Rmt_core
open Rmt_workloads

let check = Alcotest.(check bool)

let suite =
  (* one fixed, deterministic suite shared by all integration tests *)
  Workload.tightness_suite (Prng.create 20160725) ~count:10 ~n:8

let ad_hoc_suite = Workload.ad_hoc_suite (Prng.create 425) ~count:8 ~n:8

let test_tightness_partial_knowledge () =
  List.iter
    (fun { Workload.label; instance } ->
      match Solvability.partial_knowledge instance with
      | Solvability.Solvable ->
        let probe = Solvability.probe_rmt_pka instance ~x_dealer:1 ~x_fake:2 in
        check
          (label ^ ": solvable => RMT-PKA resilient")
          true
          (Solvability.all_correct probe)
      | Solvability.Unsolvable ->
        (match (Cut.find_rmt_cut instance).cut_found with
         | None -> Alcotest.fail "unsolvable without witness"
         | Some w ->
           let v = Attack.against_rmt_pka instance w ~x0:0 ~x1:1 in
           check
             (label ^ ": cut => attack silences RMT-PKA")
             true
             (v.decision_e = None && v.decision_e' = None))
      | Solvability.Unknown ->
        Alcotest.fail (label ^ ": budget exhausted on a small instance"))
    suite

let test_tightness_ad_hoc () =
  List.iter
    (fun { Workload.label; instance } ->
      match Solvability.ad_hoc instance with
      | Solvability.Solvable ->
        let rng = Prng.create 99 in
        let probe = Solvability.probe_zcpa rng instance ~x_dealer:1 ~x_fake:2 in
        check
          (label ^ ": solvable => Z-CPA resilient")
          true
          (Solvability.all_correct probe)
      | Solvability.Unsolvable ->
        (match (Cut.find_rmt_zpp_cut instance).cut_found with
         | None -> Alcotest.fail "unsolvable without witness"
         | Some w ->
           let v = Attack.against_zcpa instance w ~x0:0 ~x1:1 in
           check
             (label ^ ": cut => attack silences Z-CPA")
             true
             (v.decision_e = None && v.decision_e' = None))
      | Solvability.Unknown ->
        Alcotest.fail (label ^ ": budget exhausted on a small instance"))
    ad_hoc_suite

let test_hierarchy_on_suite () =
  (* the solvable classes are nested: Z-CPA-solvable (using only ad hoc
     knowledge) implies RMT-PKA-solvable at the instance's knowledge *)
  List.iter
    (fun { Workload.label; instance } ->
      let z = Zcpa.run instance ~x_dealer:7 in
      let p = Rmt_pka.run instance ~x_dealer:7 in
      if z.decided = Some 7 then
        check (label ^ ": hierarchy") true (p.decided = Some 7))
    suite

let test_full_knowledge_matches_ppa () =
  List.iter
    (fun { Workload.label; instance } ->
      let full = Instance.with_view instance (View.full instance.graph) in
      let feasible = Solvability.partial_knowledge full = Solvability.Solvable in
      let ppa_ok =
        Rmt_protocols.Ppa.solvable full.graph ~structure:full.structure
          ~dealer:full.dealer ~receiver:full.receiver
      in
      check (label ^ ": full-knowledge collapse") true (feasible = ppa_ok);
      if feasible then begin
        let r =
          Rmt_protocols.Ppa.run full.graph ~structure:full.structure
            ~dealer:full.dealer ~receiver:full.receiver ~x_dealer:3
        in
        check (label ^ ": PPA delivers") true (r.decided = Some 3)
      end)
    suite

let test_self_reduction_on_suite () =
  List.iter
    (fun { Workload.label; instance } ->
      let direct = Zcpa.run instance ~x_dealer:4 in
      let sim =
        Zcpa.run ~decider:(Self_reduction.simulated_decider instance) instance
          ~x_dealer:4
      in
      check (label ^ ": reduction agrees") true (direct.decided = sim.decided))
    ad_hoc_suite

(* the curated instance files load and have the feasibility their README
   documents *)
let test_curated_instances () =
  (* the test binary runs somewhere under _build; walk up to the source
     tree's instances/ directory *)
  let dir =
    let rec find base depth =
      let candidate = Filename.concat base "instances" in
      if Sys.file_exists candidate && Sys.is_directory candidate then candidate
      else if depth = 0 then Alcotest.fail "instances/ directory not found"
      else find (Filename.concat base Filename.parent_dir_name) (depth - 1)
    in
    find (Sys.getcwd ()) 8
  in
  let load name =
    match Codec.of_file (Filename.concat dir name) with
    | Ok inst -> inst
    | Error m -> Alcotest.fail (name ^ ": " ^ m)
  in
  let feas inst = Solvability.partial_knowledge inst in
  check "path4 unsolvable" true
    (feas (load "path4_unsolvable.rmt") = Solvability.Unsolvable);
  check "onion solvable" true
    (feas (load "onion_solvable.rmt") = Solvability.Solvable);
  let mesh = load "mesh_showcase.rmt" in
  check "mesh solvable at radius 2" true (feas mesh = Solvability.Solvable);
  check "mesh unsolvable ad hoc" true
    (feas (Instance.with_view mesh (View.ad_hoc mesh.graph))
     = Solvability.Unsolvable);
  let basic = load "figure1_basic.rmt" in
  check "figure-1 instance solvable" true (feas basic = Solvability.Solvable);
  check "and its protocol delivers" true
    ((Zcpa.run basic ~x_dealer:9).decided = Some 9)

(* CLI smoke tests: the installed binary handles the documented
   subcommands without error *)
let test_cli_smoke () =
  let exe =
    (* depending on how the test is invoked, cwd is the project root or a
       directory inside _build: try both layouts at every level *)
    let rec find base depth =
      let candidates =
        [
          Filename.concat base "bin/rmt_cli.exe";
          Filename.concat base "_build/default/bin/rmt_cli.exe";
        ]
      in
      match List.find_opt Sys.file_exists candidates with
      | Some c -> c
      | None ->
        if depth = 0 then
          Alcotest.fail ("rmt_cli.exe not found from " ^ Sys.getcwd ())
        else find (Filename.concat base Filename.parent_dir_name) (depth - 1)
    in
    find (Sys.getcwd ()) 8
  in
  let run args =
    Sys.command (Filename.quote exe ^ " " ^ args ^ " > /dev/null 2>&1")
  in
  Alcotest.(check int) "analyze" 0
    (run "analyze --topology layered:3x2 --receiver 7");
  Alcotest.(check int) "run pka" 0
    (run "run --protocol pka --topology layered:3x2 --receiver 7 --corrupt 1           --strategy value-flip");
  Alcotest.(check int) "run zcpa traced" 0
    (run "run --protocol zcpa --topology complete:5 --trace");
  Alcotest.(check int) "attack" 0 (run "attack --topology path:4");
  Alcotest.(check int) "dot" 0 (run "dot --topology cycle:6");
  Alcotest.(check int) "bad spec fails" 124
    (let c = run "analyze --topology warp:9" in
     if c <> 0 then 124 else 0)

let () =
  Alcotest.run "integration"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "tightness partial knowledge" `Slow
            test_tightness_partial_knowledge;
          Alcotest.test_case "tightness ad hoc" `Slow test_tightness_ad_hoc;
          Alcotest.test_case "uniqueness hierarchy" `Quick
            test_hierarchy_on_suite;
          Alcotest.test_case "full knowledge = PPA" `Quick
            test_full_knowledge_matches_ppa;
          Alcotest.test_case "self-reduction" `Slow test_self_reduction_on_suite;
          Alcotest.test_case "curated instances" `Quick test_curated_instances;
          Alcotest.test_case "cli smoke" `Quick test_cli_smoke;
        ] );
    ]
