(* The certified tier's headline suite — safety over lossy/asynchronous
   schedules inside the declared envelope, regression-tested against the
   exact Theorem-4 boundary fixtures that break raw RMT-PKA.

   Sections:
   - Envelope unit tests (clamping, slots, commit round, string codec).
   - The quorum predicate against hand-built adversary structures.
   - The headline replays: the pinned [pka_async_delay] and
     [pka_message_loss] reproducer pairs, which make raw RMT-PKA decide
     a forged value, replayed through cert-pka — whose verdict must be
     non-violating and identical to its own synchronous baseline.
   - A qcheck sweep of >= 1000 in-envelope lossy/async schedules across
     three adversary-structure families (global threshold, t-local,
     random antichain): zero safety violations.
   - The out-of-envelope lane: beyond the envelope a violation is
     findable and shrinks to a schedule that demonstrably fails
     envelope conformance — the safety claim is not vacuous.
   - Timely liveness on the checked-in instances (engine + timely
     sweeps).
   - Backend conformance: cert-pka / cert-ppa produce byte-identical
     reports and traces on the synchronous engine, the sync-pinned
     simulator, and the Domain-sharded mcast runtime.
   - A pinned golden of the solvability-frontier experiment
     ({!Rmt_sim.Frontier}) over the boundary instance. *)

open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge
open Rmt_net
open Rmt_attack
open Rmt_protocols
open Rmt_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let qt = QCheck_alcotest.to_alcotest
let instances_dir = "../../instances"
let sim_fixtures_dir = "../sim/fixtures"

let load_instance path =
  match Codec.of_file path with
  | Ok inst -> inst
  | Error e -> Alcotest.failf "cannot load %s: %s" path e

let boundary_instance () = load_instance "fixtures/boundary.rmt"

let repo_instances () =
  Sys.readdir instances_dir |> Array.to_list |> List.sort compare
  |> List.filter (fun f -> Filename.check_suffix f ".rmt")
  |> List.map (fun f ->
         (Filename.chop_suffix f ".rmt", load_instance (Filename.concat instances_dir f)))

let violating v = match v with Campaign.Violated _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Envelope                                                            *)
(* ------------------------------------------------------------------ *)

let test_envelope_default () =
  check_int "default delay bound" 3 Envelope.default.Envelope.delay_bound;
  check_int "default drop budget" 2 Envelope.default.Envelope.drop_budget

let test_envelope_clamps () =
  let e = Envelope.make ~delay_bound:0 ~drop_budget:(-5) in
  check_int "delay clamped up to 1" 1 e.Envelope.delay_bound;
  check_int "drops clamped up to 0" 0 e.Envelope.drop_budget;
  let e = Envelope.make ~delay_bound:2 ~drop_budget:9 in
  check_int "drops clamped to max_drop_budget" Envelope.max_drop_budget
    e.Envelope.drop_budget

let test_envelope_slots () =
  List.iter
    (fun l ->
      let e = Envelope.make ~delay_bound:1 ~drop_budget:l in
      check_int
        (Printf.sprintf "slots(%d) = drop_budget + 1" l)
        (e.Envelope.drop_budget + 1)
        (List.length (Envelope.slots e)))
    [ 0; 1; 2; 3; 7 ]

let test_envelope_commit_round () =
  let e = Envelope.make ~delay_bound:3 ~drop_budget:2 in
  (* (n - 1) * delay_bound + 2 *)
  check_int "commit round, n = 7" 20 (Envelope.commit_round e ~num_nodes:7);
  let e1 = Envelope.make ~delay_bound:1 ~drop_budget:0 in
  check_int "commit round, sync envelope" 8
    (Envelope.commit_round e1 ~num_nodes:7)

let test_envelope_string_codec () =
  check_string "default renders d3l2" "d3l2" (Envelope.to_string Envelope.default);
  List.iter
    (fun (d, l) ->
      let e = Envelope.make ~delay_bound:d ~drop_budget:l in
      match Envelope.of_string (Envelope.to_string e) with
      | Some e' ->
        check (Printf.sprintf "round-trip d%dl%d" d l) true (e = e')
      | None -> Alcotest.failf "of_string rejected %s" (Envelope.to_string e))
    [ (1, 0); (3, 2); (6, 3) ];
  List.iter
    (fun s ->
      check (Printf.sprintf "of_string rejects %S" s) true
        (Envelope.of_string s = None))
    [ ""; "x"; "d0l1"; "d3l-1"; "d3l9"; "d3l2x"; "l2d3" ]

(* ------------------------------------------------------------------ *)
(* Quorum                                                              *)
(* ------------------------------------------------------------------ *)

let test_quorum_predicate () =
  let ground = Nodeset.of_list [ 1; 2; 3; 4; 5; 6 ] in
  let z =
    Structure.of_sets ~ground
      [ Nodeset.of_list [ 1; 2 ]; Nodeset.of_list [ 3 ]; Nodeset.of_list [ 4 ] ]
  in
  check "full echo set is a quorum" true (Certified.quorum z ground);
  check "missing {1,2} is admissible -> quorum" true
    (Certified.quorum z (Nodeset.of_list [ 3; 4; 5; 6 ]));
  check "missing {3} -> quorum" true
    (Certified.quorum z (Nodeset.of_list [ 1; 2; 4; 5; 6 ]));
  check "missing {1,2,3} spans two sets -> no quorum" false
    (Certified.quorum z (Nodeset.of_list [ 4; 5; 6 ]));
  check "missing {5} is not admissible -> no quorum" false
    (Certified.quorum z (Nodeset.of_list [ 1; 2; 3; 4; 6 ]));
  (* empty adversary family: only the full echo set passes *)
  let z0 = Structure.empty_family ~ground in
  check "empty family, all echoes" true (Certified.quorum z0 ground);
  check "empty family, one missing" false
    (Certified.quorum z0 (Nodeset.of_list [ 2; 3; 4; 5; 6 ]))

(* ------------------------------------------------------------------ *)
(* Headline: the Theorem-4 boundary pairs, survived                    *)
(* ------------------------------------------------------------------ *)

let boundary_pairs = [ "pka_async_delay"; "pka_message_loss" ]

(* Both fixture instances are PKA-unsolvable, so the correct decision —
   synchronous or not — is silence; the recorded schedules nevertheless
   drive raw RMT-PKA into certifying a forged value.  The certified
   wrapper must (a) never decide a wrong value under the recorded
   schedule, and (b) agree with its own synchronous baseline: inside
   the envelope the schedule must not be able to change its verdict. *)
let test_fixture_survival name () =
  let rmt = Filename.concat sim_fixtures_dir (name ^ ".rmt") in
  match Sim_exec.load_pair ~rmt with
  | Error e -> Alcotest.failf "cannot load pair %s: %s" rmt e
  | Ok (r, sched) ->
    check (name ^ ": schedule conforms to the default envelope") true
      (Envelope_check.conforms Envelope.default sched);
    check (name ^ ": instance is PKA-unsolvable") false
      (Rmt_core.Solvability.is_solvable
         (Campaign.solvability Campaign.Pka r.Replay.instance));
    (* raw RMT-PKA still breaks under the recorded schedule *)
    let pka_report, _ = Sim_exec.replay r sched in
    check (name ^ ": raw pka violates under the schedule") true
      (violating pka_report.Campaign.verdict);
    check (name ^ ": recorded verdict reproduced") true
      (Replay.verdict_matches r pka_report);
    (* the certified wrapper survives the exact same schedule *)
    let cert =
      Replay.make ~protocol:Campaign.Cert_pka ~x_dealer:r.Replay.x_dealer
        r.Replay.instance r.Replay.program
    in
    let sched_report, _ = Sim_exec.replay cert sched in
    let sync_report =
      Campaign.execute Campaign.Cert_pka r.Replay.instance
        ~x_dealer:r.Replay.x_dealer r.Replay.program
    in
    check (name ^ ": cert-pka does not violate under the schedule") false
      (violating sched_report.Campaign.verdict);
    check (name ^ ": cert-pka does not violate synchronously") false
      (violating sync_report.Campaign.verdict);
    check (name ^ ": in-envelope schedule cannot change cert's verdict") true
      (Campaign.verdict_equal sched_report.Campaign.verdict
         sync_report.Campaign.verdict);
    check (name ^ ": unsolvable instance -> cert stays silent") true
      (Campaign.verdict_equal sched_report.Campaign.verdict Campaign.Silenced)

(* ------------------------------------------------------------------ *)
(* In-envelope sweep: >= 1000 schedules, three structure families      *)
(* ------------------------------------------------------------------ *)

(* Each qcheck trial builds one random connected graph and runs a
   20-schedule lossy/async sweep (Policy.default_params draws inside
   Envelope.default) for each of the three adversary-structure
   families.  17 trials x 3 families x 20 schedules = 1020 in-envelope
   schedules; any safety violation fails the property and carries its
   recorded schedule. *)
let sweep_families g ~dealer rng =
  [
    ("threshold-1", Builders.global_threshold g ~dealer 1);
    ("t-local-1", Builders.t_local g ~dealer 1);
    ("antichain", Builders.random_antichain rng g ~dealer ~sets:4 ~max_size:2);
  ]

let test_in_envelope_sweep =
  QCheck.Test.make ~count:17 ~name:"cert safety inside the envelope (sweep)"
    QCheck.(make Gen.(int_bound 9999))
    (fun seed ->
      check "default params draw inside the default envelope" true
        (Envelope_check.params_within Policy.default_params Envelope.default);
      let rng = Prng.create seed in
      let n = 5 + (seed mod 3) in
      let g = Generators.random_connected_gnp rng n 0.5 in
      let dealer = 0 and receiver = n - 1 in
      let protocol =
        if seed mod 2 = 0 then Campaign.Cert_pka else Campaign.Cert_ppa
      in
      List.for_all
        (fun (family, structure) ->
          let inst = Instance.ad_hoc_of ~graph:g ~structure ~dealer ~receiver in
          let report =
            Sweep.run ~params:Policy.default_params ~seed ~schedules:20
              protocol inst
          in
          if report.Sweep.violated > 0 then
            QCheck.Test.fail_reportf
              "safety violation inside the envelope: %s on %s, seed %d \
               (violated %d/%d)"
              (Campaign.protocol_to_string protocol)
              family seed report.Sweep.violated report.Sweep.schedules
          else true)
        (sweep_families g ~dealer rng))

(* The same claim over the checked-in boundary instance, at volume. *)
let test_in_envelope_boundary_sweep () =
  let inst = boundary_instance () in
  List.iter
    (fun (protocol, seed) ->
      let report =
        Sweep.run ~params:Policy.default_params ~seed ~schedules:120 protocol
          inst
      in
      check
        (Printf.sprintf "%s boundary sweep seed %d: no violations"
           (Campaign.protocol_to_string protocol)
           seed)
        true
        (report.Sweep.violated = 0))
    Campaign.[ (Cert_pka, 2016); (Cert_ppa, 2016) ]

(* ------------------------------------------------------------------ *)
(* Out-of-envelope: violations are findable, and shrink               *)
(* ------------------------------------------------------------------ *)

let wild_params =
  {
    Policy.default_params with
    Policy.delay_bound = 6;
    p_late = 0.6;
    p_drop = 0.4;
    drop_budget = 12;
  }

let test_out_of_envelope_violation () =
  check "wild params do not fit the default envelope" false
    (Envelope_check.params_within wild_params Envelope.default);
  let inst = boundary_instance () in
  let report =
    Sweep.run ~params:wild_params ~seed:19 ~schedules:60 ~x_dealer:7 ~x_fake:8
      Campaign.Cert_pka inst
  in
  check "violation found outside the envelope" true (report.Sweep.violated > 0);
  match report.Sweep.safety_violations with
  | [] -> Alcotest.fail "violated > 0 but no recorded schedule"
  | (vr, vs) :: _ ->
    let vr', vs' =
      Sweep.shrink_violation ~budget:150 Campaign.Cert_pka ~x_dealer:7 inst
        (vr, vs)
    in
    check "shrunk run still violates" true (violating vr'.Campaign.verdict);
    check "shrinking never grows the schedule" true
      (Schedule.size vs' <= Schedule.size vs);
    check "shrunk schedule exceeds the declared envelope" false
      (Envelope_check.conforms Envelope.default vs')

(* ------------------------------------------------------------------ *)
(* Liveness on timely schedules                                        *)
(* ------------------------------------------------------------------ *)

let test_engine_liveness () =
  let p = Program.make ~seed:0 [] in
  List.iter
    (fun (name, inst) ->
      List.iter
        (fun protocol ->
          let solvable =
            Rmt_core.Solvability.is_solvable
              (Campaign.solvability protocol inst)
          in
          let r = Campaign.execute protocol inst ~x_dealer:7 p in
          let label =
            Printf.sprintf "%s on %s" (Campaign.protocol_to_string protocol)
              name
          in
          if solvable then
            check (label ^ ": delivers synchronously") true
              (Campaign.verdict_equal r.Campaign.verdict Campaign.Delivered)
          else
            check (label ^ ": never violates") false
              (violating r.Campaign.verdict))
        Campaign.[ Cert_pka; Cert_ppa ])
    (repo_instances ())

let test_timely_sweep_liveness () =
  let inst = boundary_instance () in
  let report =
    Sweep.run ~params:Policy.timely_params ~seed:2016 ~schedules:40
      Campaign.Cert_pka inst
  in
  check_int "timely sweep: no violations" 0 report.Sweep.violated;
  check_int "timely sweep: no liveness losses" 0 report.Sweep.liveness_lost

(* ------------------------------------------------------------------ *)
(* Backend conformance (the PR 7 functorized suite, certified family)  *)
(* ------------------------------------------------------------------ *)

let runner_of (module T : Transport.S) =
  {
    Campaign.run =
      (fun ?max_messages ?size_of ?stop_when ?on_deliver ~graph ~adversary a ->
        T.run ?max_messages ?size_of ?stop_when ?on_deliver ~graph ~adversary a);
  }

let conformance_instances () =
  [
    ("figure1_basic", load_instance (Filename.concat instances_dir "figure1_basic.rmt"));
    ("path4_unsolvable", load_instance (Filename.concat instances_dir "path4_unsolvable.rmt"));
    ("boundary", boundary_instance ());
  ]

let pinned_programs inst =
  Program.make ~seed:0 []
  :: List.map
       (fun s -> Strategy_gen.random (Prng.create s) inst ~x_dealer:7 ~x_fake:8)
       [ 1; 2 ]

let conformance (module T : Transport.S) () =
  List.iter
    (fun (name, inst) ->
      let programs = pinned_programs inst in
      List.iter
        (fun protocol ->
          List.iteri
            (fun i p ->
              let label =
                Printf.sprintf "%s/%s/%s/program %d" T.name name
                  (Campaign.protocol_to_string protocol)
                  i
              in
              let engine_r, engine_trace =
                Campaign.execute_traced protocol inst ~x_dealer:7 p
              in
              let backend_r, backend_trace =
                Campaign.execute_traced
                  ~runner:(runner_of (module T))
                  protocol inst ~x_dealer:7 p
              in
              check (label ^ ": identical report") true (engine_r = backend_r);
              check (label ^ ": identical trace") true
                (String.equal engine_trace backend_trace))
            programs)
        Campaign.[ Cert_pka; Cert_ppa ])
    (conformance_instances ())

let test_engine_backend = conformance (module Engine.Backend)
let test_sim_sync_backend = conformance (module Rmt_sim.Sim.Sync_backend)
let test_mcast_backend = conformance (Mcast.backend ~domains:1)

(* ------------------------------------------------------------------ *)
(* Frontier golden                                                     *)
(* ------------------------------------------------------------------ *)

(* Frontier.run is deterministic in (seed, schedules, grid) and
   independent of the domain count, so the rendered table pins the
   whole experiment: zero violations inside the envelope, and the
   outermost point exhibiting the violation that keeps the boundary
   lane honest. *)
let frontier_golden =
  "delay drops envelope schedules delivered silenced violated liveness_lost\n\
  \    1     0   inside        60        50       10        0             0\n\
  \    2     1   inside        60        50       10        0             0\n\
  \    3     2   inside        60        50       10        0             0\n\
  \    4     4  outside        60        49       11        0             0\n\
  \    6    12  outside        60        44       15        1             0\n"

let test_frontier_golden () =
  let inst = boundary_instance () in
  let rows =
    Frontier.run ~seed:19 ~schedules:60 ~x_dealer:7 ~x_fake:8
      ~envelope:Envelope.default Campaign.Cert_pka inst Frontier.default_grid
  in
  List.iter
    (fun r ->
      if r.Frontier.in_envelope then
        check_int
          (Printf.sprintf "inside point (%d,%d): zero violations"
             r.Frontier.point.Frontier.delay_bound
             r.Frontier.point.Frontier.drop_budget)
          0 r.Frontier.violated)
    rows;
  check_string "frontier table golden" frontier_golden (Frontier.to_table rows)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "certified"
    [
      ( "envelope",
        [
          Alcotest.test_case "default" `Quick test_envelope_default;
          Alcotest.test_case "clamps" `Quick test_envelope_clamps;
          Alcotest.test_case "slots" `Quick test_envelope_slots;
          Alcotest.test_case "commit round" `Quick test_envelope_commit_round;
          Alcotest.test_case "string codec" `Quick test_envelope_string_codec;
        ] );
      ("quorum", [ Alcotest.test_case "predicate" `Quick test_quorum_predicate ]);
      ( "boundary fixtures",
        List.map
          (fun name ->
            Alcotest.test_case name `Quick (test_fixture_survival name))
          boundary_pairs );
      ( "in-envelope safety",
        [
          qt test_in_envelope_sweep;
          Alcotest.test_case "boundary instance sweep" `Slow
            test_in_envelope_boundary_sweep;
        ] );
      ( "out-of-envelope",
        [
          Alcotest.test_case "violation found and shrunk" `Slow
            test_out_of_envelope_violation;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "engine delivery" `Quick test_engine_liveness;
          Alcotest.test_case "timely sweep" `Quick test_timely_sweep_liveness;
        ] );
      ( "conformance",
        [
          Alcotest.test_case "engine backend" `Quick test_engine_backend;
          Alcotest.test_case "sim sync backend" `Quick test_sim_sync_backend;
          Alcotest.test_case "mcast backend" `Quick test_mcast_backend;
        ] );
      ( "frontier",
        [ Alcotest.test_case "pinned golden" `Slow test_frontier_golden ] );
    ]
