(* SARIF emitter test: render a report with every shape of result —
   plain finding, chained finding, baselined finding — then parse it
   back with the vendored JSON parser and check it structurally against
   the SARIF 2.1.0 schema requirements we rely on: top-level $schema /
   version / runs, a tool.driver with the full rule catalog, and per
   result the ruleId, message.text, a physicalLocation with a 1-based
   startLine, the partialFingerprints key, codeFlows for chained
   findings and suppressions for baselined ones. *)

open Rmt_lint

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline s;
      exit 1)
    fmt

let get path json =
  let rec go json = function
    | [] -> json
    | key :: rest ->
      (match Sarif.Json.member key json with
       | Some v -> go v rest
       | None -> fail "missing %S in %s" key (String.concat "." path))
  in
  go json path

let get_str path json =
  match Sarif.Json.to_string (get path json) with
  | Some s -> s
  | None -> fail "%s is not a string" (String.concat "." path)

let get_list path json =
  match Sarif.Json.to_list (get path json) with
  | Some l -> l
  | None -> fail "%s is not an array" (String.concat "." path)

let () =
  let chain =
    [
      { Finding.hop_fn = "M.source"; hop_file = "lib/m.ml"; hop_line = 4 };
      { Finding.hop_fn = "M.sink"; hop_file = "lib/m.ml"; hop_line = 9 };
    ]
  in
  let plain =
    Finding.make ~rule:"R1" ~file:"lib/a.ml" ~line:3 ~col:7 ~context:"f"
      "polymorphic compare"
  in
  let chained =
    Finding.make ~rule:"R7" ~file:"lib/m.ml" ~line:9 ~col:0 ~context:"sink"
      ~chain "unsanitized decision"
  in
  let pinned =
    Finding.make ~rule:"R4" ~file:"lib/b.ml" ~context:"cache"
      (* line defaults to 0: the emitter must clamp startLine to 1 *)
      "top-level mutable state"
  in
  let findings = [ plain; chained; pinned ] in
  let entries =
    [
      {
        Baseline.rule = "R4";
        fingerprint = Finding.fingerprint pinned;
        file = "lib/b.ml";
        justification = "exercised only single-domain";
      };
    ]
  in
  let report = Lint.apply_baseline entries 3 findings in
  let text = Sarif.render ~entries report in
  let json =
    match Sarif.Json.parse text with
    | Ok j -> j
    | Error e -> fail "rendered SARIF does not parse: %s" e
  in
  (* top level *)
  if get_str [ "$schema" ] json <> Sarif.schema_uri then
    fail "$schema mismatch";
  if get_str [ "version" ] json <> "2.1.0" then fail "version mismatch";
  let run =
    match get_list [ "runs" ] json with
    | [ r ] -> r
    | rs -> fail "expected exactly 1 run, got %d" (List.length rs)
  in
  (* driver + rule catalog *)
  if get_str [ "tool"; "driver"; "name" ] run <> "rmt-lint" then
    fail "driver name mismatch";
  let rules = get_list [ "tool"; "driver"; "rules" ] run in
  if List.length rules <> List.length Rules.all then
    fail "rule catalog incomplete: %d of %d" (List.length rules)
      (List.length Rules.all);
  List.iter
    (fun r ->
      ignore (get_str [ "id" ] r);
      ignore (get_str [ "shortDescription"; "text" ] r);
      ignore (get_str [ "defaultConfiguration"; "level" ] r))
    rules;
  (* results *)
  let results = get_list [ "results" ] run in
  if List.length results <> 3 then
    fail "expected 3 results, got %d" (List.length results);
  List.iter
    (fun r ->
      ignore (get_str [ "ruleId" ] r);
      ignore (get_str [ "message"; "text" ] r);
      let loc =
        match get_list [ "locations" ] r with
        | [ l ] -> l
        | _ -> fail "expected exactly one location"
      in
      ignore
        (get_str [ "physicalLocation"; "artifactLocation"; "uri" ] loc);
      (match
         get [ "physicalLocation"; "region"; "startLine" ] loc
       with
       | Sarif.Json.Int n when n >= 1 -> ()
       | Sarif.Json.Int n -> fail "startLine %d < 1" n
       | _ -> fail "startLine is not an integer");
      ignore (get_str [ "partialFingerprints"; Sarif.fingerprint_key ] r))
    results;
  let result_for rule =
    List.find
      (fun r -> get_str [ "ruleId" ] r = rule)
      results
  in
  (* the chained finding carries a codeFlow with both hops, in order *)
  let flow =
    match get_list [ "codeFlows" ] (result_for "R7") with
    | [ f ] -> f
    | _ -> fail "expected one codeFlow"
  in
  let tf =
    match get_list [ "threadFlows" ] flow with
    | [ t ] -> t
    | _ -> fail "expected one threadFlow"
  in
  let hops = get_list [ "locations" ] tf in
  let hop_names =
    List.map
      (fun h -> get_str [ "location"; "message"; "text" ] h)
      hops
  in
  if hop_names <> [ "M.source"; "M.sink" ] then
    fail "codeFlow hops wrong: %s" (String.concat ", " hop_names);
  (* the pinned finding is suppressed with its justification *)
  (match get_list [ "suppressions" ] (result_for "R4") with
   | [ s ] ->
     if get_str [ "kind" ] s <> "external" then
       fail "suppression kind mismatch";
     if get_str [ "justification" ] s <> "exercised only single-domain"
     then fail "suppression justification mismatch"
   | _ -> fail "expected one suppression on the pinned finding");
  (* the unpinned findings carry none *)
  (match Sarif.Json.member "suppressions" (result_for "R1") with
   | None -> ()
   | Some _ -> fail "fresh finding carries a suppression");
  print_endline "sarif: structural 2.1.0 checks pass"
