(* Declaration-order robustness of the R6 race pass (qcheck).

   A racy fan-out unit — a Parsweep stub, a module-level table, a helper
   that writes it, and a sweep whose closure calls the helper — is
   emitted with random noise bindings interleaved at random positions
   (define-before-use order of the racy chain itself is preserved; OCaml
   accepts nothing else).  Each variant is compiled to a real .cmt with
   the ambient ocamlc, loaded through Cmt_loader, and the Race pass must
   (a) flag sweep_tally in every variant and (b) produce the same
   fingerprint every time — the analyzer's summaries are collected in a
   pre-pass, so where the declarations sit may not matter. *)

open Rmt_lint

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline s;
      exit 1)
    fmt

let racy_chain =
  [
    "module Parsweep = struct let map ~domains:_ f xs = Array.map f xs end";
    "let tally : (int, int) Hashtbl.t = Hashtbl.create 16";
    "let record x = Hashtbl.replace tally x x";
    "let sweep_tally xs = Parsweep.map ~domains:4 (fun x -> record x; x) xs";
  ]

(* Weave noise bindings between the chain's blocks: [cuts] picks, for
   each noise binding, after which chain block (0..4) it appears. *)
let source_of cuts =
  let noise = List.mapi (fun i c -> (c, i)) cuts in
  let buf = Buffer.create 256 in
  List.iteri
    (fun slot block ->
      List.iter
        (fun (c, i) ->
          if c = slot then
            Buffer.add_string buf
              (Printf.sprintf "let noise_%d x = x + %d\n" i i))
        noise;
      Buffer.add_string buf (block ^ "\n"))
    (racy_chain @ [ "" ]);
  Buffer.contents buf

let workdir =
  let d = Filename.temp_file "rmt_lint_order" "" in
  Sys.remove d;
  Sys.mkdir d 0o700;
  at_exit (fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
        (try Sys.readdir d with Sys_error _ -> [||]);
      try Sys.rmdir d with Sys_error _ -> ());
  d

let compile source =
  let ml = Filename.concat workdir "order_case.ml" in
  Out_channel.with_open_text ml (fun oc -> output_string oc source);
  let cmd =
    Printf.sprintf "cd %s && ocamlc -c -bin-annot -w -a order_case.ml"
      (Filename.quote workdir)
  in
  if Sys.command cmd <> 0 then fail "ocamlc failed on:\n%s" source;
  match Cmt_loader.read_cmt (Filename.concat workdir "order_case.cmt") with
  | Ok (Some u) -> u
  | Ok None -> fail "order_case.cmt is not an implementation unit"
  | Error e -> fail "cannot read order_case.cmt: %s" e

let race_findings cuts =
  let u = compile (source_of cuts) in
  let graph =
    Callgraph.build
      [ Callgraph.summarize ~source:u.Cmt_loader.source u.Cmt_loader.structure ]
  in
  Race.analyze (Summary.infer graph)

let () =
  let fingerprints = Hashtbl.create 4 in
  let test =
    QCheck.Test.make ~count:25
      ~name:"R6 flags the racy sweep under any declaration order"
      QCheck.(list_of_size (QCheck.Gen.int_range 0 6) (int_bound 4))
      (fun cuts ->
        let findings = race_findings cuts in
        let hits =
          List.filter
            (fun (f : Finding.t) ->
              String.equal f.rule "R6"
              && String.equal f.context "sweep_tally")
            findings
        in
        List.iter
          (fun f -> Hashtbl.replace fingerprints (Finding.fingerprint f) ())
          hits;
        hits <> [])
  in
  QCheck.Test.check_exn test;
  (* Same racy code, shuffled declarations: one stable fingerprint. *)
  if Hashtbl.length fingerprints <> 1 then
    fail "fingerprint not declaration-order independent: %d distinct"
      (Hashtbl.length fingerprints);
  print_endline "race order: R6 is declaration-order independent"
