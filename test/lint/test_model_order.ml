(* Order-independence of the protocol-model assembly (qcheck).

   Model.assemble runs over per-unit fragments restored from the
   incremental cache, and the cache replays units in whatever order the
   cmt walk produced them — so the assembled model (and the
   lint-model.json the CI uploads) must not depend on compilation
   order.  The property mirrors test_summary_order: extract the real
   fixture library once, shuffle the unit_model list, and require a
   single Model.fingerprint plus identical rendered findings. *)

open Rmt_lint

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline s;
      exit 1)
    fmt

(* Deterministic shuffle driven by qcheck-generated swap indices — the
   test stays reproducible under qcheck's own seed reporting. *)
let shuffle swaps xs =
  let a = Array.of_list xs in
  let n = Array.length a in
  if n > 1 then
    List.iter
      (fun (i, j) ->
        let i = i mod n and j = j mod n in
        let t = a.(i) in
        a.(i) <- a.(j);
        a.(j) <- t)
      swaps;
  Array.to_list a

let units =
  match Cmt_loader.scan ~build_dir:"fixtures" ~dirs:[ "test/lint/fixtures" ] with
  | Ok us -> us
  | Error e -> fail "fixture scan failed: %s" e

let fragments =
  List.map
    (fun (u : Cmt_loader.unit_info) ->
      Model.extract ~source:u.Cmt_loader.source u.Cmt_loader.structure)
    units

let reference = Model.assemble fragments
let reference_fp = Model.fingerprint reference

let finding_lines (m : Model.t) =
  List.map Finding.to_text m.Model.findings

let reference_findings = finding_lines reference

let assemble_test =
  QCheck.Test.make ~count:50
    ~name:"Model.assemble is unit-order independent"
    QCheck.(list_of_size (Gen.int_range 1 20) (pair small_nat small_nat))
    (fun swaps ->
      let m = Model.assemble (shuffle swaps fragments) in
      String.equal (Model.fingerprint m) reference_fp
      && List.equal String.equal (finding_lines m) reference_findings)

let () =
  (* The fixture library must exercise both rule families before the
     shuffle property means anything. *)
  let rules =
    List.sort_uniq String.compare
      (List.map (fun (f : Finding.t) -> f.Finding.rule) reference.Model.findings)
  in
  if not (List.mem "R9" rules && List.mem "R10" rules) then
    fail "fixture model lacks R9/R10 findings (got: %s)"
      (String.concat ", " rules);
  if
    not
      (List.exists
         (fun (p : Model.protocol) -> p.Model.p_init.Model.b_unbounded)
         reference.Model.protocols)
  then fail "expected an unbounded fixture automaton (r10_bad)";
  QCheck.Test.check_exn assemble_test;
  Printf.printf
    "model order: %d-protocol model is unit-order independent (%s)\n"
    (List.length reference.Model.protocols)
    reference_fp
