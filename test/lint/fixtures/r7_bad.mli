type rs = { mutable decided : int option }

val step : rs -> inbox:(int * int) list -> unit
