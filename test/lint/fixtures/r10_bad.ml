(* Unbounded communication budget — R10: init builds its sends through
   a recursive helper, so no static per-round bound exists (the model
   extractor cannot cap a send-producing cycle).  The handler itself is
   total and the decision is disciplined: R10 must fire alone. *)

type msg = Value of int

type st = { mutable chosen : int option }

type 'p send = { dst : int; payload : 'p }

type ('s, 'm) automaton = {
  init : int -> 's * 'm send list;
  step :
    int -> 's -> round:int -> inbox:(int * 'm) list -> 's * 'm send list;
  decision : 's -> int option;
}

let automaton () =
  let rec spam v n =
    if n = 0 then [] else { dst = v; payload = Value n } :: spam v (n - 1)
  in
  let init v = ({ chosen = None }, spam v 3) in
  let step _v st ~round:_ ~inbox =
    List.iter
      (fun (_src, m) ->
        match m with
        | Value x -> if st.chosen = None then st.chosen <- Some x)
      inbox;
    (st, [])
  in
  let decision st = st.chosen in
  { init; step; decision }
