val lcg_next : int -> int
