val histogram : int list -> (int * int) list
