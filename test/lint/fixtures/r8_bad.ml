(* Lock-discipline violations — R8.  The local stubs stand in for the
   real modules (rmt-lint matches names by qualified suffix):

   - [double_probe] passes [locked] a critical section that re-acquires
     the non-re-entrant global lock — deadlock;
   - [heavy_under_lock] runs enumerative compute (Structure.restrict)
     inside the critical section instead of probing under the lock and
     computing outside;
   - [risky] holds a raw [Mutex.lock] across a may-raise call with no
     [Fun.protect] — the exception path leaves the lock held;
   - [exchange]'s spawn closures synchronize on a phase barrier but
     share a Hashtbl, which the single-writer-per-phase protocol cannot
     protect (R6 stands down on barrier-disciplined closures; R8 owns
     this residual obligation). *)

module Structure = struct
  let restrict _t _m = []
end

module Gate = struct
  type t = G

  let make () = G
  let await _g _phase = ()
  let set _g _phase = ()
end

let lock = Mutex.create ()
let tab : (int, int) Hashtbl.t = Hashtbl.create 16
let locked f = Mutex.protect lock f

let double_probe k =
  locked (fun () -> locked (fun () -> Hashtbl.find_opt tab k))

let heavy_under_lock t m = locked (fun () -> Structure.restrict t m)

let risky k =
  Mutex.lock lock;
  if k < 0 then failwith "negative key";
  Mutex.unlock lock

let exchange () =
  let results : (int, int) Hashtbl.t = Hashtbl.create 4 in
  let gate = Gate.make () in
  let workers =
    Array.init 2 (fun w ->
        Domain.spawn (fun () ->
            Gate.await gate w;
            Hashtbl.replace results w (w * w);
            Gate.set gate (w + 1)))
  in
  Array.iter Domain.join workers;
  results
