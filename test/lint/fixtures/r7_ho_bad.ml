(* Higher-order receiver instantiated with an UNCHECKED decider — R7
   violation.  The automaton's only guard is its [~decide] parameter;
   the summary store resolves the call-site argument and finds
   [trusting_decide], which reaches no cover sanitizer, so the sink
   stays unguarded. *)

type rs = { mutable decided : int option; claims : (int * int) list }

let trusting_decide _rs _x = true

let automaton rs ~decide ~inbox =
  match inbox with
  | (_src, x) :: _ -> if decide rs x then rs.decided <- Some x
  | [] -> ()

let run rs ~inbox = automaton rs ~decide:trusting_decide ~inbox
