(* Hashtbl.fold into a list with no normalization: the result order
   depends on the table's seed — R2 violation. *)

let keys (tbl : (int, int) Hashtbl.t) =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
