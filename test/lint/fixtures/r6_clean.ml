(* Compliant fan-out idioms: domain-local allocation and pure helpers. *)

module Parsweep = struct
  let map ~domains:_ f xs = Array.map f xs
end

(* Mutable scratch is fine when allocated inside the closure. *)
let sweep_squares xs =
  Parsweep.map ~domains:4
    (fun x ->
      let acc : (int, int) Hashtbl.t = Hashtbl.create 4 in
      Hashtbl.replace acc x (x * x);
      Hashtbl.length acc * x)
    xs

let double x = 2 * x

(* Calling a pure helper keeps the closure race-free. *)
let sweep_doubles xs = Parsweep.map ~domains:4 (fun x -> double x) xs
