(* Polymorphic comparison only at immediate base types — R1 clean. *)

let max3 (a : int) b c = max a (max b c)

let same_name (a : string) b = a = b

let close_enough (a : float) b = compare a b = 0
