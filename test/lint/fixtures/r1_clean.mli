val max3 : int -> int -> int -> int

val same_name : string -> string -> bool

val close_enough : float -> float -> bool
