val exchange : int list -> int list array array
