val count : 'a list -> int
