(* Polymorphic comparison and hashing at a record type — R1 violations. *)

type point = {
  x : int;
  y : int;
}

let points_equal (a : point) (b : point) = a = b

let sort_points (ps : point list) = List.sort compare ps

let hash_point (p : point) = Hashtbl.hash p
