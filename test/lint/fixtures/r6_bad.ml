(* Domain-unsafe fan-out — R6 violations (plus the R4 the shared table
   triggers on its own).  The local Parsweep stub stands in for the real
   engine: rmt-lint matches fan-out callees by qualified suffix. *)

module Parsweep = struct
  let map ~domains:_ f xs = Array.map f xs
end

(* Captured mutable: every domain hammers the one table. *)
let sweep_counts xs =
  let hits : (int, int) Hashtbl.t = Hashtbl.create 16 in
  Parsweep.map ~domains:4
    (fun x ->
      Hashtbl.replace hits x (x + 1);
      x)
    xs

(* Transitive: the closure looks pure but calls into module state. *)
let tally : (int, int) Hashtbl.t = Hashtbl.create 16

let record x = Hashtbl.replace tally x x

let sweep_tally xs =
  Parsweep.map ~domains:4
    (fun x ->
      record x;
      x)
    xs
