(* Disciplined twin of r9_bad — no findings: the step folds over the
   whole inbox, the decision write is guarded by a read of the current
   value (write-once), nothing ever assigns None back, and every
   constructor init can send has a step case (Probe is matched and
   explicitly ignored, which counts: the handler is total). *)

type msg = Value of int | Probe of int

type st = { mutable chosen : int option }

type 'p send = { dst : int; payload : 'p }

type ('s, 'm) automaton = {
  init : int -> 's * 'm send list;
  step :
    int -> 's -> round:int -> inbox:(int * 'm) list -> 's * 'm send list;
  decision : 's -> int option;
}

let automaton () =
  let init v = ({ chosen = None }, [ { dst = v; payload = Probe v } ]) in
  let step _v st ~round:_ ~inbox =
    List.iter
      (fun (_src, m) ->
        match m with
        | Value x -> if st.chosen = None then st.chosen <- Some x
        | Probe _ -> ())
      inbox;
    (st, [])
  in
  let decision st = st.chosen in
  { init; step; decision }
