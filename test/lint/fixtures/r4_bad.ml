(* Top-level mutable state, shared by every domain — R4 violations. *)

let hits = ref 0

let cache : (int, int) Hashtbl.t = Hashtbl.create 16
