(* Reverted copy of the PR 2 vacuous-fullness bug: the cover condition
   is checked, but the claimed graph is only "verified" with
   Paths.find_simple_path — which the adversary satisfies by simply
   claiming a graph that contains some path.  rmt-lint deliberately does
   not count find_simple_path as a connectivity sanitizer, so R7 must
   flag the decision with the positive-connectivity family missing.

   The message binds a trail-carrying [Flood.msg] payload: only such
   sources obligate the connectivity family (a bare inbox value makes
   no topology claim for the check to verify). *)

module Structure = struct
  let mem _claims _x = false
end

module Paths = struct
  let find_simple_path _claims _src _dst = Some [ 0 ]
end

module Flood = struct
  type msg = { value : int; trail : int list }
end

type rs = { mutable decided : int option; claims : (int * int) list }

let try_value rs (m : Flood.msg) =
  if
    Structure.mem rs.claims m.Flood.value
    && Paths.find_simple_path rs.claims (List.hd m.Flood.trail) m.Flood.value
       <> None
  then rs.decided <- Some m.Flood.value
