val sweep_counts : int array -> int array
val sweep_tally : int array -> int array
