val roll : unit -> int

val now : unit -> float
