(* Higher-order receiver guarded through its instantiation — R7 clean.
   The automaton never references a sanitizer itself; its guard is the
   [~decide] argument, and the only decider in scope runs the
   Structure-checked cover test.  The summary store's one-hop
   instantiation analysis must discharge this without a baseline pin —
   the fixture twin of the Zcpa.automaton / Zcpa.direct_oracle pair. *)

module Structure = struct
  let mem _claims _x = false
end

type rs = { mutable decided : int option; claims : (int * int) list }

let checked_decide rs x = Structure.mem rs.claims x

let automaton rs ~decide ~inbox =
  match inbox with
  | (_src, x) :: _ -> if decide rs x then rs.decided <- Some x
  | [] -> ()

let run rs ~inbox = automaton rs ~decide:checked_decide ~inbox
