val hits : int ref

val cache : (int, int) Hashtbl.t
