(* The PR 2 fix applied to r7_vacuous: the claimed graph must positively
   connect the sender to the receiver around the candidate corruption
   set (Connectivity.connected_avoiding), not merely contain some path.
   R7 must consider this version clean. *)

module Structure = struct
  let mem _claims _x = false
end

module Connectivity = struct
  let connected_avoiding _claims _src _x = true
end

module Flood = struct
  type msg = { value : int; trail : int list }
end

type rs = { mutable decided : int option; claims : (int * int) list }

let try_value rs (m : Flood.msg) =
  if
    Structure.mem rs.claims m.Flood.value
    && Connectivity.connected_avoiding rs.claims
         (List.hd m.Flood.trail)
         m.Flood.value
  then rs.decided <- Some m.Flood.value
