(* Has a companion interface and no unsafe casts — R5 clean. *)

let id x = x
