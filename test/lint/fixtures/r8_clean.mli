module Structure : sig
  val restrict : 'a -> 'b -> int list
end

module Gate : sig
  type t

  val make : unit -> t
  val await : t -> int -> unit
  val set : t -> int -> unit
end

val lock : Mutex.t
val tab : (int, int list) Hashtbl.t
val locked : (unit -> 'a) -> 'a
val memo_restrict : 'a -> 'b -> int -> int list
val careful : int -> unit
val exchange : unit -> int array
