val id : 'a -> 'a
