(* Mcast-style per-domain mailbox fan-out with NO phase barrier — R6
   must fire.  R6 stands down only for spawn closures that synchronize
   on a Gate/Barrier/Condition barrier (whose residual obligations R8
   then owns); a mailbox matrix captured by barrier-free closures is an
   unsynchronized race, wherever it lives. *)

let exchange xs =
  let mail : int list array array = Array.make_matrix 4 4 [] in
  let workers =
    Array.init 4 (fun w ->
        Domain.spawn (fun () ->
            List.iteri
              (fun i x -> mail.(w).(i mod 4) <- x :: mail.(w).(i mod 4))
              xs))
  in
  Array.iter Domain.join workers;
  mail
