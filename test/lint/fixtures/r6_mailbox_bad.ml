(* Mcast-style per-domain mailbox fan-out in an UNSANCTIONED file — R6
   must still fire.  The sanctioned-capture carve-out in race.ml is
   keyed to lib/net/mcast.ml alone; the identical shape anywhere else
   (a mailbox matrix captured by Domain.spawn closures) stays a
   finding, so the carve-out cannot silently widen. *)

let exchange xs =
  let mail : int list array array = Array.make_matrix 4 4 [] in
  let workers =
    Array.init 4 (fun w ->
        Domain.spawn (fun () ->
            List.iteri
              (fun i x -> mail.(w).(i mod 4) <- x :: mail.(w).(i mod 4))
              xs))
  in
  Array.iter Domain.join workers;
  mail
