type point = {
  x : int;
  y : int;
}

val points_equal : point -> point -> bool

val sort_points : point list -> point list

val hash_point : point -> int
