type rs = { mutable decided : int option; claims : (int * int) list }

val trusting_decide : rs -> int -> bool

val automaton :
  rs -> decide:(rs -> int -> bool) -> inbox:(int * int) list -> unit

val run : rs -> inbox:(int * int) list -> unit
