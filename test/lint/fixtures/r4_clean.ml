(* Mutable state scoped inside a function — R4 clean. *)

let count xs =
  let c = ref 0 in
  List.iter (fun _ -> incr c) xs;
  !c
