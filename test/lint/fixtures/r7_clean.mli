type rs = { mutable decided : int option; claims : (int * int) list }

val step : rs -> inbox:(int * int) list -> unit
