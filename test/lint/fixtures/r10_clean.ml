(* Bounded twin of r10_bad — no findings: init sends a constant number
   of messages and the step relays each delivery to its sender, so both
   bounds classify (constant and |inbox|-linear respectively) and the
   static budget concretizes. *)

type msg = Value of int

type st = { mutable chosen : int option }

type 'p send = { dst : int; payload : 'p }

type ('s, 'm) automaton = {
  init : int -> 's * 'm send list;
  step :
    int -> 's -> round:int -> inbox:(int * 'm) list -> 's * 'm send list;
  decision : 's -> int option;
}

let automaton () =
  let init v = ({ chosen = None }, [ { dst = v; payload = Value v } ]) in
  let step _v st ~round:_ ~inbox =
    let out =
      List.concat_map
        (fun (src, m) ->
          match m with
          | Value x ->
            if st.chosen = None then st.chosen <- Some x;
            [ { dst = src; payload = Value x } ])
        inbox
    in
    (st, out)
  in
  let decision st = st.chosen in
  { init; step; decision }
