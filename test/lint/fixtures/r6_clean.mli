val sweep_squares : int array -> int array
val double : int -> int
val sweep_doubles : int array -> int array
