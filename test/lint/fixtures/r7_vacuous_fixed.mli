module Flood : sig
  type msg = { value : int; trail : int list }
end

type rs = { mutable decided : int option; claims : (int * int) list }

val try_value : rs -> Flood.msg -> unit
