(* No companion .mli and an Obj.magic cast — R5 violations. *)

let unsafe_to_string (x : int) : string = Obj.magic x
