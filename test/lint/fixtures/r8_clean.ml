(* The compliant lock discipline — the Hc probe/compute/store split and
   the Mcast barrier protocol, in miniature:

   - [memo_restrict] probes the memo table under the lock, computes
     outside it, and re-locks only to store — no re-acquisition, no
     heavy compute in any critical section;
   - [careful] wraps the raw-lock region's may-raise call in
     [Fun.protect], so the exception path still releases;
   - [exchange]'s barrier-synchronized spawn closures write only their
     own slot of a pre-sized array — per-domain indexable state is
     exactly what the single-writer-per-phase protocol supports. *)

module Structure = struct
  let restrict _t _m = []
end

module Gate = struct
  type t = G

  let make () = G
  let await _g _phase = ()
  let set _g _phase = ()
end

let lock = Mutex.create ()
let tab : (int, int list) Hashtbl.t = Hashtbl.create 16
let locked f = Mutex.protect lock f

let memo_restrict t m k =
  match locked (fun () -> Hashtbl.find_opt tab k) with
  | Some v -> v
  | None ->
    let v = Structure.restrict t m in
    locked (fun () -> Hashtbl.replace tab k v);
    v

let careful k =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () -> if k < 0 then failwith "negative key")

let exchange () =
  let results = Array.make 2 0 in
  let gate = Gate.make () in
  let workers =
    Array.init 2 (fun w ->
        Domain.spawn (fun () ->
            Gate.await gate w;
            results.(w) <- w * w;
            Gate.set gate (w + 1)))
  in
  Array.iter Domain.join workers;
  results
