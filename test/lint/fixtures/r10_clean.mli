type msg = Value of int

type st = { mutable chosen : int option }

type 'p send = { dst : int; payload : 'p }

type ('s, 'm) automaton = {
  init : int -> 's * 'm send list;
  step :
    int -> 's -> round:int -> inbox:(int * 'm) list -> 's * 'm send list;
  decision : 's -> int option;
}

val automaton : unit -> (st, msg) automaton
