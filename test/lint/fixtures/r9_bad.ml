(* Undisciplined automaton — R9 violations, all four at once: the step
   consumes only the head of its inbox, assigns the decision field
   without reading it first, resets it to None on the fallthrough path,
   and the Probe constructor that init sends is matched by no step
   case.  The decision field is deliberately NOT called `decided', so
   the findings prove R9 keys on what the decision component reads, not
   on a magic field name (that is R7's heuristic). *)

type msg = Value of int | Probe of int

type st = { mutable chosen : int option }

type 'p send = { dst : int; payload : 'p }

type ('s, 'm) automaton = {
  init : int -> 's * 'm send list;
  step :
    int -> 's -> round:int -> inbox:(int * 'm) list -> 's * 'm send list;
  decision : 's -> int option;
}

let automaton () =
  let init v = ({ chosen = None }, [ { dst = v; payload = Probe v } ]) in
  let step _v st ~round:_ ~inbox =
    (match inbox with
     | (_src, Value x) :: _ -> st.chosen <- Some x
     | _ -> st.chosen <- None);
    (st, [])
  in
  let decision st = st.chosen in
  { init; step; decision }
