module Structure : sig
  val restrict : 'a -> 'b -> 'c list
end

module Gate : sig
  type t

  val make : unit -> t
  val await : t -> int -> unit
  val set : t -> int -> unit
end

val lock : Mutex.t
val tab : (int, int) Hashtbl.t
val locked : (unit -> 'a) -> 'a
val double_probe : int -> int option
val heavy_under_lock : 'a -> 'b -> 'c list
val risky : int -> unit
val exchange : unit -> (int, int) Hashtbl.t
