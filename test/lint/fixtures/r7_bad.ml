(* Unverified receiver — R7 violation: adversary-delivered data flows
   straight from the ~inbox parameter into the decision, with neither a
   cover/solvability check nor a positive-connectivity check anywhere. *)

type rs = { mutable decided : int option }

let step rs ~inbox =
  match inbox with
  | (_src, x) :: _ -> rs.decided <- Some x
  | [] -> ()
