(* Compliant receiver: both sanitizer families guard the decision.  The
   local stubs stand in for the real predicates — rmt-lint matches
   sanitizers by qualified suffix. *)

module Structure = struct
  let mem _claims _x = false
end

module Connectivity = struct
  let connected_avoiding _claims _src _x = true
end

type rs = { mutable decided : int option; claims : (int * int) list }

let step rs ~inbox =
  match inbox with
  | (src, x) :: _ ->
    if
      Structure.mem rs.claims x
      && Connectivity.connected_avoiding rs.claims src x
    then rs.decided <- Some x
  | [] -> ()
