type rs = { mutable decided : int option; claims : (int * int) list }

val try_value : rs -> inbox:(int * int) list -> unit
