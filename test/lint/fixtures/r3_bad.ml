(* Ambient nondeterminism sources outside lib/base/prng.ml — R3
   violations. *)

let roll () = Random.int 6

let now () = Sys.time ()
