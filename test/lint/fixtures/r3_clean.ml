(* Deterministic arithmetic only — R3 clean. *)

let lcg_next s = ((s * 1103515245) + 12345) land 0x3FFFFFFF
