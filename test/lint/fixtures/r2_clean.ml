(* Hashtbl.fold into a list under a dominating sort — R2 clean. *)

let histogram xs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun x ->
      Hashtbl.replace tbl x
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl x)))
    xs;
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
