(* Runtime check of the property rmt-lint enforces statically: RMT-PKA
   must decide identically — same verdict, same delivery trace — no
   matter how the runtime seeds its hash tables.

   The dune rule runs this binary with OCAMLRUNPARAM=R, so every
   [Hashtbl.create] draws a fresh random seed; two executions inside the
   same process therefore iterate their tables in different orders.  Any
   surviving iteration-order leak in the protocol stack shows up as a
   diverging trace. *)

open Rmt_base
open Rmt_attack

let () =
  match Sys.getenv_opt "OCAMLRUNPARAM" with
  | Some p when String.exists (fun c -> c = 'R') p -> ()
  | _ ->
    prerr_endline
      "test_runtime_determinism: OCAMLRUNPARAM must contain R (run via dune)";
    exit 1

(* A random connected instance with a small adversary structure over the
   middle nodes, resampled until PKA-solvable (shared: test/gen). *)
let random_solvable_instance = Rmt_test_gen.Gen.random_solvable_instance

let solvable_seen = ref 0

let prop seed =
  match random_solvable_instance seed with
  | None -> true
  | Some inst ->
    incr solvable_seen;
    let rng = Prng.create (seed + 17) in
    let p = Strategy_gen.random rng inst ~x_dealer:7 ~x_fake:8 in
    let run () = Campaign.execute_traced Campaign.Pka inst ~x_dealer:7 p in
    let r1, t1 = run () in
    let r2, t2 = run () in
    Campaign.verdict_equal r1.Campaign.verdict r2.Campaign.verdict
    && r1.Campaign.rounds = r2.Campaign.rounds
    && r1.Campaign.messages = r2.Campaign.messages
    && String.equal t1 t2

let () =
  let test =
    QCheck.Test.make ~count:40 ~name:"pka decision+trace seed-independent"
      QCheck.(int_bound 1_000_000)
      prop
  in
  QCheck.Test.check_exn test;
  if !solvable_seen < 10 then begin
    Printf.eprintf
      "only %d/40 sampled instances were solvable — generator drifted?\n"
      !solvable_seen;
    exit 1
  end;
  Printf.printf
    "runtime determinism: %d solvable instances, identical decision+trace \
     under randomized hashtable seeds\n"
    !solvable_seen
