(* Order-independence of the summary inference engine (qcheck).

   Two layers, matching the two places order could leak in:

   - {!Fixpoint.scc}/{!Fixpoint.solve} on random digraphs: shuffling
     the node list and every successor list must not change the
     condensation or the solved least fixpoint (here: reachability
     counts, a monotone transfer with real cycles);
   - {!Summary.infer} over the real fixture library: shuffling the
     unit-summary list fed to {!Callgraph.build} must produce an
     identical store — same per-function fingerprints, same store
     fingerprint.  This is the property the summary cache relies on
     (the cache key is a digest over sorted unit paths, so a hit may
     replay effects inferred from a differently-ordered walk). *)

open Rmt_lint

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline s;
      exit 1)
    fmt

(* Deterministic shuffle driven by qcheck-generated swap indices — the
   test stays reproducible under qcheck's own seed reporting. *)
let shuffle swaps xs =
  let a = Array.of_list xs in
  let n = Array.length a in
  if n > 1 then
    List.iter
      (fun (i, j) ->
        let i = i mod n and j = j mod n in
        let t = a.(i) in
        a.(i) <- a.(j);
        a.(j) <- t)
      swaps;
  Array.to_list a

(* --- layer 1: random digraphs ------------------------------------- *)

let node i = Printf.sprintf "n%d" i

let graph_case =
  QCheck.(
    pair
      (list_of_size (Gen.int_range 0 30) (pair (int_bound 9) (int_bound 9)))
      (list_of_size (Gen.int_range 0 12) (pair small_nat small_nat)))

let solve_reach nodes succs =
  Fixpoint.solve ~nodes ~succs
    ~equal:(fun a b -> a = b)
    ~init:(fun _ -> 1)
    ~transfer:(fun ~get n ->
      List.fold_left (fun acc s -> min 1000 (acc + get s)) 1 (succs n))

let fixpoint_test =
  QCheck.Test.make ~count:200
    ~name:"Fixpoint.scc/solve are input-order independent" graph_case
    (fun (edges, swaps) ->
      let nodes = List.init 10 node in
      let succs_tbl = Hashtbl.create 16 in
      List.iter
        (fun (i, j) ->
          let prev =
            Option.value (Hashtbl.find_opt succs_tbl (node i)) ~default:[]
          in
          Hashtbl.replace succs_tbl (node i) (node j :: prev))
        edges;
      let succs n = Option.value (Hashtbl.find_opt succs_tbl n) ~default:[] in
      let shuffled_nodes = shuffle swaps nodes in
      let shuffled_succs n = shuffle swaps (succs n) in
      let ref_scc = Fixpoint.scc ~nodes ~succs in
      let shuf_scc = Fixpoint.scc ~nodes:shuffled_nodes ~succs:shuffled_succs in
      let ref_fix = solve_reach nodes succs in
      let shuf_fix = solve_reach shuffled_nodes shuffled_succs in
      ref_scc = shuf_scc && List.for_all (fun n -> ref_fix n = shuf_fix n) nodes)

(* --- layer 2: the real fixture library ----------------------------- *)

let units =
  match Cmt_loader.scan ~build_dir:"fixtures" ~dirs:[ "test/lint/fixtures" ] with
  | Ok us -> us
  | Error e -> fail "fixture scan failed: %s" e

let summaries =
  List.map
    (fun (u : Cmt_loader.unit_info) ->
      Callgraph.summarize ~source:u.Cmt_loader.source u.Cmt_loader.structure)
    units

let store_of summaries = Summary.infer (Callgraph.build summaries)
let reference = store_of summaries
let reference_fp = Summary.store_fingerprint reference

let fingerprints store =
  Callgraph.functions (Summary.graph store)
  |> List.map (fun (f : Callgraph.fn_summary) ->
         match Summary.find store f.fn_name with
         | Some e -> (f.fn_name, Summary.fingerprint e)
         | None -> (f.fn_name, "-"))
  |> List.sort compare

let reference_fps = fingerprints reference

let infer_test =
  QCheck.Test.make ~count:25
    ~name:"Summary.infer is unit-order independent"
    QCheck.(list_of_size (Gen.int_range 1 20) (pair small_nat small_nat))
    (fun swaps ->
      let store = store_of (shuffle swaps summaries) in
      String.equal (Summary.store_fingerprint store) reference_fp
      && fingerprints store = reference_fps)

let () =
  QCheck.Test.check_exn fixpoint_test;
  QCheck.Test.check_exn infer_test;
  Printf.printf
    "summary order: fixpoints and %d-unit store are order-independent (%s)\n"
    (List.length summaries) reference_fp
