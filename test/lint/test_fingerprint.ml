(* Unit tests for Finding.fingerprint — above all the collision fix:
   the normalized repo-relative path participates in the hash, so two
   findings that differ only in their file can never share a pin, while
   build-tree path spellings of the same file still do. *)

open Rmt_lint

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline s;
      exit 1)
    fmt

let mk ?(file = "lib/a.ml") ?(line = 10) ?(context = "cache")
    ?(chain = []) () =
  Finding.make ~rule:"R4" ~file ~line ~col:2 ~context ~chain
    "top-level mutable state"

let () =
  let fp f = Finding.fingerprint f in
  (* the collision fix: same rule/context/message, different file *)
  if fp (mk ()) = fp (mk ~file:"lib/b.ml" ()) then
    fail "findings in different files share a fingerprint";
  (* path normalization: spellings of the same file agree *)
  List.iter
    (fun spelling ->
      if fp (mk ~file:spelling ()) <> fp (mk ()) then
        fail "path spelling %S changed the fingerprint" spelling)
    [ "./lib/a.ml"; "_build/default/lib/a.ml"; "lib//a.ml" ];
  (* line drift must not invalidate pins *)
  if fp (mk ~line:99 ()) <> fp (mk ()) then
    fail "line drift changed the fingerprint";
  (* the call chain participates... *)
  let hop file line = { Finding.hop_fn = "M.f"; hop_file = file; hop_line = line } in
  if fp (mk ~chain:[ hop "lib/m.ml" 3 ] ()) = fp (mk ()) then
    fail "adding a call chain did not change the fingerprint";
  if
    fp (mk ~chain:[ hop "lib/m.ml" 3 ] ())
    = fp (mk ~chain:[ hop "lib/n.ml" 3 ] ())
  then fail "chains through different files share a fingerprint";
  (* ...but its line numbers do not *)
  if
    fp (mk ~chain:[ hop "lib/m.ml" 3 ] ())
    <> fp (mk ~chain:[ hop "lib/m.ml" 77 ] ())
  then fail "chain line drift changed the fingerprint";
  print_endline "fingerprint: all invariants hold"
