(* Golden test for the rmt-lint rules.

   The fixture library under fixtures/ compiles one clean and one
   violating module per rule; this test loads their .cmt files, runs the
   full analysis, and compares the normalized finding lines

     <rule> <source basename> <context>

   against expected.txt.  Line numbers and messages are deliberately
   excluded: messages embed printed types, whose rendering may drift
   across compiler versions, while rule/file/context pin down exactly
   which violation fired where. *)

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline s;
      exit 1)
    fmt

let () =
  let units =
    match
      Rmt_lint.Cmt_loader.scan ~build_dir:"fixtures"
        ~dirs:[ "test/lint/fixtures" ]
    with
    | Ok us -> us
    | Error e -> fail "fixture scan failed: %s" e
  in
  if List.length units <> 25 then
    fail "expected 25 fixture units, scanned %d — fixture library changed?"
      (List.length units);
  let findings = Rmt_lint.Lint.analyze units in
  let actual =
    List.map
      (fun (f : Rmt_lint.Finding.t) ->
        Printf.sprintf "%s %s %s" f.rule (Filename.basename f.file) f.context)
      findings
    |> List.sort String.compare
  in
  let expected =
    In_channel.with_open_text "expected.txt" In_channel.input_lines
    |> List.filter (fun l ->
           let l = String.trim l in
           l <> "" && l.[0] <> '#')
    |> List.sort String.compare
  in
  if actual <> expected then begin
    prerr_endline "--- expected (sorted) ---";
    List.iter prerr_endline expected;
    prerr_endline "--- actual (sorted) ---";
    List.iter prerr_endline actual;
    fail "lint fixture golden mismatch"
  end;
  (* The clean fixtures (and the repaired vacuous-fullness copy) must
     contribute nothing at all. *)
  List.iter
    (fun (f : Rmt_lint.Finding.t) ->
      let base = Filename.basename f.file in
      if
        Filename.check_suffix base "_clean.ml"
        || Filename.check_suffix base "_fixed.ml"
      then fail "clean fixture %s produced a finding: %s" base f.message)
    findings;
  (* Interprocedural findings must carry their witnessing call chain. *)
  List.iter
    (fun (f : Rmt_lint.Finding.t) ->
      if String.equal f.rule "R7" && f.chain = [] then
        fail "R7 finding in %s has no source->sink call chain" f.file)
    findings;
  (* The reverted PR 2 bug must be caught for exactly the right reason:
     the positive-connectivity family, not the cover family. *)
  (match
     List.find_opt
       (fun (f : Rmt_lint.Finding.t) ->
         String.equal f.rule "R7"
         && Filename.basename f.file = "r7_vacuous.ml")
       findings
   with
   | None -> fail "vacuous-fullness fixture r7_vacuous.ml was not flagged"
   | Some f ->
     let mentions_conn =
       let sub = "positive-connectivity" in
       let n = String.length f.message and m = String.length sub in
       let rec at i = i + m <= n && (String.sub f.message i m = sub || at (i + 1)) in
       at 0
     in
     if not mentions_conn then
       fail "r7_vacuous finding does not cite the connectivity family: %s"
         f.message);
  Printf.printf "lint golden: %d findings match expected.txt\n"
    (List.length findings)
