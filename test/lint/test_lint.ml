(* Golden test for the rmt-lint rules.

   The fixture library under fixtures/ compiles one clean and one
   violating module per rule; this test loads their .cmt files, runs the
   full analysis, and compares the normalized finding lines

     <rule> <source basename> <context>

   against expected.txt.  Line numbers and messages are deliberately
   excluded: messages embed printed types, whose rendering may drift
   across compiler versions, while rule/file/context pin down exactly
   which violation fired where. *)

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline s;
      exit 1)
    fmt

let () =
  let units =
    match
      Rmt_lint.Cmt_loader.scan ~build_dir:"fixtures"
        ~dirs:[ "test/lint/fixtures" ]
    with
    | Ok us -> us
    | Error e -> fail "fixture scan failed: %s" e
  in
  if List.length units <> 10 then
    fail "expected 10 fixture units, scanned %d — fixture library changed?"
      (List.length units);
  let findings = Rmt_lint.Lint.analyze units in
  let actual =
    List.map
      (fun (f : Rmt_lint.Finding.t) ->
        Printf.sprintf "%s %s %s" f.rule (Filename.basename f.file) f.context)
      findings
    |> List.sort String.compare
  in
  let expected =
    In_channel.with_open_text "expected.txt" In_channel.input_lines
    |> List.filter (fun l ->
           let l = String.trim l in
           l <> "" && l.[0] <> '#')
    |> List.sort String.compare
  in
  if actual <> expected then begin
    prerr_endline "--- expected (sorted) ---";
    List.iter prerr_endline expected;
    prerr_endline "--- actual (sorted) ---";
    List.iter prerr_endline actual;
    fail "lint fixture golden mismatch"
  end;
  (* The clean fixtures must contribute nothing at all. *)
  List.iter
    (fun (f : Rmt_lint.Finding.t) ->
      let base = Filename.basename f.file in
      if
        String.length base >= 8
        && String.sub base 2 6 = "_clean"
      then fail "clean fixture %s produced a finding: %s" base f.message)
    findings;
  Printf.printf "lint golden: %d findings match expected.txt\n"
    (List.length findings)
