(* The multicore sweep driver's whole contract is "indistinguishable from
   Array.map": same results, same order, failures re-raised — whatever the
   domain count.  These tests pin that contract down, including the
   pre-split-Prng pattern the experiment sweeps rely on. *)

open Rmt_base
open Rmt_workloads

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* a skewed per-element workload: consume the element's private stream a
   pseudo-random number of times and fold; mirrors how the experiment
   sweeps hand each instance its own split stream *)
let consume rng =
  let steps = 1 + Prng.int rng 500 in
  let acc = ref 0 in
  for _ = 1 to steps do
    acc := (!acc * 31) + Prng.int rng 1_000_000
  done;
  !acc

let split_streams seed n =
  let rng = Prng.create seed in
  Array.init n (fun _ -> Prng.split rng)

let test_matches_sequential () =
  let input = Array.init 97 (fun i -> i) in
  let f x = (x * x) + 1 in
  List.iter
    (fun d ->
      check
        (Printf.sprintf "domains=%d equals Array.map" d)
        true
        (Parsweep.map ~domains:d f input = Array.map f input))
    [ 1; 2; 4; 7 ]

let test_deterministic_across_domain_counts () =
  (* fresh streams per run: a Prng stream is mutable, so equality across
     domain counts really does require the disjoint pre-split pattern *)
  let run d = Parsweep.map ~domains:d consume (split_streams 1234 61) in
  let reference = run 1 in
  List.iter
    (fun d ->
      check
        (Printf.sprintf "domains=%d identical to sequential" d)
        true
        (run d = reference))
    [ 2; 3; 4; 8 ]

let test_ordering_preserved () =
  let input = Array.init 64 (fun i -> i) in
  let out = Parsweep.map ~domains:4 (fun x -> x) input in
  Array.iteri (fun i x -> check_int (Printf.sprintf "slot %d" i) i x) out

let test_map_list () =
  let l = List.init 40 (fun i -> i) in
  check "map_list preserves order" true
    (Parsweep.map_list ~domains:4 (fun x -> x * 3) l = List.map (fun x -> x * 3) l)

let test_empty_and_tiny () =
  check "empty input" true (Parsweep.map ~domains:4 (fun x -> x) [||] = [||]);
  check "singleton input" true
    (Parsweep.map ~domains:4 string_of_int [| 7 |] = [| "7" |])

let test_failure_propagates () =
  let boom = Failure "boom" in
  List.iter
    (fun d ->
      match
        Parsweep.map ~domains:d
          (fun x -> if x = 13 then raise boom else x)
          (Array.init 50 (fun i -> i))
      with
      | _ -> Alcotest.fail "expected Worker_failure"
      | exception Parsweep.Worker_failure e when e == boom -> ()
      | exception e -> raise e)
    [ 1; 4 ]

let test_invalid_domains () =
  Alcotest.check_raises "domains = 0"
    (Invalid_argument "Parsweep.map: domains must be >= 1") (fun () ->
      ignore (Parsweep.map ~domains:0 (fun x -> x) [| 1; 2; 3 |]))

let test_recommended_positive () =
  check "recommended_domains >= 1" true (Parsweep.recommended_domains () >= 1)

let () =
  Alcotest.run "parsweep"
    [
      ( "contract",
        [
          Alcotest.test_case "matches Array.map" `Quick test_matches_sequential;
          Alcotest.test_case "deterministic across domain counts" `Quick
            test_deterministic_across_domain_counts;
          Alcotest.test_case "ordering preserved" `Quick test_ordering_preserved;
          Alcotest.test_case "map_list" `Quick test_map_list;
          Alcotest.test_case "empty and tiny inputs" `Quick test_empty_and_tiny;
          Alcotest.test_case "failure propagates" `Quick test_failure_propagates;
          Alcotest.test_case "invalid domains" `Quick test_invalid_domains;
          Alcotest.test_case "recommended domains" `Quick
            test_recommended_positive;
        ] );
    ]
