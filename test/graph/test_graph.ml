open Rmt_base
open Rmt_graph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let ns = Nodeset.of_list

(* random connected graph generator for properties *)
let arb_graph =
  let gen st =
    let rng = Prng.create (QCheck.Gen.int_bound 1_000_000 st) in
    let n = 4 + QCheck.Gen.int_bound 6 st in
    Generators.random_connected_gnp rng n 0.45
  in
  QCheck.make ~print:Graph.to_string gen

(* ------------------------------------------------------------------ *)
(* Graph                                                               *)
(* ------------------------------------------------------------------ *)

let test_empty_graph () =
  check_int "no nodes" 0 (Graph.num_nodes Graph.empty);
  check_int "no edges" 0 (Graph.num_edges Graph.empty);
  check "neighbors of absent" true
    (Nodeset.is_empty (Graph.neighbors 3 Graph.empty))

let test_add_edge () =
  let g = Graph.of_edges [ (0, 1); (1, 2) ] in
  check_int "nodes" 3 (Graph.num_nodes g);
  check_int "edges" 2 (Graph.num_edges g);
  check "edge symmetric" true (Graph.mem_edge 1 0 g && Graph.mem_edge 0 1 g);
  check "non-edge" false (Graph.mem_edge 0 2 g);
  check "idempotent" true (Graph.equal g (Graph.add_edge 0 1 g));
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> ignore (Graph.add_edge 2 2 g))

let test_remove_node () =
  let g = Graph.of_edges [ (0, 1); (1, 2); (0, 2) ] in
  let g' = Graph.remove_node 1 g in
  check_int "nodes" 2 (Graph.num_nodes g');
  check_int "edges" 1 (Graph.num_edges g');
  check "edge 0-2 kept" true (Graph.mem_edge 0 2 g');
  check "no stale adjacency" true (Nodeset.is_empty (Graph.neighbors 1 g'));
  check "absent removal is id" true (Graph.equal g (Graph.remove_node 9 g))

let test_isolated_nodes () =
  let g = Graph.of_nodes_edges (ns [ 0; 1; 2; 7 ]) [ (0, 1) ] in
  check_int "nodes incl isolated" 4 (Graph.num_nodes g);
  check_int "degree of isolated" 0 (Graph.degree 7 g)

let test_sparse_ids () =
  let g = Graph.of_edges [ (3, 500); (500, 1000) ] in
  check_int "nodes" 3 (Graph.num_nodes g);
  check "big id edge" true (Graph.mem_edge 500 1000 g)

let test_neighborhoods () =
  let g = Generators.grid 3 3 in
  (* center node 4 has 4 neighbors *)
  check_int "center degree" 4 (Graph.degree 4 g);
  check "closed nbhd" true
    (Nodeset.equal (ns [ 1; 3; 4; 5; 7 ]) (Graph.closed_neighborhood 4 g));
  check "N(S) excludes S" true
    (Nodeset.equal (ns [ 1; 3; 5; 7 ])
       (Graph.neighborhood_of_set (ns [ 4 ]) g));
  check "N of corner pair" true
    (Nodeset.equal (ns [ 1; 3 ]) (Graph.neighborhood_of_set (ns [ 0 ]) g))

let test_induced () =
  let g = Generators.complete 5 in
  let h = Graph.induced (ns [ 0; 1; 2 ]) g in
  check_int "induced nodes" 3 (Graph.num_nodes h);
  check_int "induced edges" 3 (Graph.num_edges h);
  check "subgraph" true (Graph.is_subgraph h g);
  check "ignores absent ids" true
    (Graph.equal h (Graph.induced (ns [ 0; 1; 2; 99 ]) g))

let test_union () =
  let a = Graph.of_edges [ (0, 1) ] and b = Graph.of_edges [ (1, 2) ] in
  let u = Graph.union a b in
  check_int "union nodes" 3 (Graph.num_nodes u);
  check_int "union edges" 2 (Graph.num_edges u);
  check "commutes" true (Graph.equal u (Graph.union b a))

let test_radius_restrict () =
  let g = Generators.path_graph 6 in
  let b0 = Graph.restrict_to_radius 2 0 g in
  check_int "radius 0 single node" 1 (Graph.num_nodes b0);
  let b1 = Graph.restrict_to_radius 2 1 g in
  check "radius 1 ball" true (Nodeset.equal (ns [ 1; 2; 3 ]) (Graph.nodes b1));
  check_int "radius 1 edges" 2 (Graph.num_edges b1);
  let ball = Graph.restrict_to_radius 0 2 g in
  check "radius 2 from end" true (Nodeset.equal (ns [ 0; 1; 2 ]) (Graph.nodes ball));
  (* radius-1 ball is induced: includes edges among neighbors *)
  let tri = Graph.of_edges [ (0, 1); (0, 2); (1, 2) ] in
  let b = Graph.restrict_to_radius 0 1 tri in
  check "triangle edge kept" true (Graph.mem_edge 1 2 b)

(* ------------------------------------------------------------------ *)
(* Connectivity                                                        *)
(* ------------------------------------------------------------------ *)

let test_reachability () =
  let g = Graph.of_edges [ (0, 1); (1, 2); (4, 5) ] in
  check "reach same comp" true
    (Nodeset.mem 2 (Connectivity.reachable_from g 0));
  check "no cross comp" false
    (Nodeset.mem 4 (Connectivity.reachable_from g 0));
  check "avoiding blocks" false
    (Nodeset.mem 2 (Connectivity.reachable_from ~avoiding:(ns [ 1 ]) g 0));
  check_int "components" 2 (List.length (Connectivity.components g));
  check "disconnected" false (Connectivity.is_connected g);
  check "empty connected" true (Connectivity.is_connected Graph.empty)

let test_distances () =
  let g = Generators.grid 3 3 in
  Alcotest.(check (option int)) "manhattan" (Some 4) (Connectivity.distance g 0 8);
  Alcotest.(check (option int)) "self" (Some 0) (Connectivity.distance g 4 4);
  Alcotest.(check (option int)) "diameter grid" (Some 4) (Connectivity.diameter g);
  Alcotest.(check (option int)) "diameter path" (Some 5)
    (Connectivity.diameter (Generators.path_graph 6));
  Alcotest.(check (option int)) "disconnected distance" None
    (Connectivity.distance (Graph.of_nodes_edges (ns [ 0; 1 ]) []) 0 1)

let test_is_cut () =
  let g = Generators.path_graph 5 in
  check "middle cuts" true (Connectivity.is_cut g 0 4 (ns [ 2 ]));
  check "endpoint in cut rejected" false (Connectivity.is_cut g 0 4 (ns [ 0 ]));
  check "non-cut" false (Connectivity.is_cut g 0 4 Nodeset.empty);
  let k = Generators.complete 4 in
  check "complete graph has no cut" false
    (Connectivity.is_cut k 0 3 (ns [ 1; 2 ]))

let test_min_vertex_cut () =
  check_int "path cut" 1 (Connectivity.min_vertex_cut (Generators.path_graph 5) 0 4);
  check_int "cycle cut" 2 (Connectivity.min_vertex_cut (Generators.cycle 6) 0 3);
  check_int "layered width 3" 3
    (Connectivity.min_vertex_cut (Generators.layered ~width:3 ~depth:2) 0 7);
  check_int "adjacent infinite" max_int
    (Connectivity.min_vertex_cut (Generators.complete 4) 0 1);
  check_int "grid corner to corner" 2
    (Connectivity.min_vertex_cut (Generators.grid 3 3) 0 8)

(* brute-force minimum vertex cut for cross-checking *)
let brute_min_cut g s t =
  if Graph.mem_edge s t g then max_int
  else begin
    let candidates = Nodeset.remove s (Nodeset.remove t (Graph.nodes g)) in
    let best = ref max_int in
    Nodeset.subsets_iter candidates (fun c ->
        if
          Nodeset.size c < !best
          && not (Connectivity.connected_avoiding g s t c)
        then best := Nodeset.size c);
    !best
  end

let qcheck_menger =
  QCheck.Test.make ~count:40 ~name:"min_vertex_cut matches brute force"
    arb_graph (fun g ->
      let nodes = Nodeset.elements (Graph.nodes g) in
      match nodes with
      | s :: rest ->
        let t = List.nth rest (List.length rest - 1) in
        Connectivity.min_vertex_cut g s t = brute_min_cut g s t
      | [] -> true)

let qcheck_disjoint_paths_bound =
  QCheck.Test.make ~count:40 ~name:"greedy disjoint paths ≤ min cut"
    arb_graph (fun g ->
      let nodes = Nodeset.elements (Graph.nodes g) in
      match nodes with
      | s :: rest ->
        let t = List.nth rest (List.length rest - 1) in
        let mc = Connectivity.min_vertex_cut g s t in
        let greedy = Paths.disjoint_paths_lower_bound g s t in
        mc = max_int || greedy <= mc || Graph.mem_edge s t g
      | [] -> true)

(* ------------------------------------------------------------------ *)
(* Paths                                                               *)
(* ------------------------------------------------------------------ *)

let test_simple_paths_k4 () =
  let g = Generators.complete 4 in
  let ps, complete = Paths.all_simple_paths g 0 3 in
  check "complete" true complete;
  check_int "K4 has 5 simple 0-3 paths" 5 (List.length ps);
  check "all valid" true (List.for_all (Paths.is_path_in g) ps);
  check "all start at 0" true (List.for_all (fun p -> List.hd p = 0) ps)

let test_simple_paths_path_graph () =
  let g = Generators.path_graph 5 in
  let ps, _ = Paths.all_simple_paths g 0 4 in
  check_int "unique path" 1 (List.length ps);
  Alcotest.(check (list int)) "the path" [ 0; 1; 2; 3; 4 ] (List.hd ps)

let test_path_budget () =
  let g = Generators.complete 9 in
  let _, complete = Paths.all_simple_paths ~budget:50 g 0 8 in
  check "budget exhausted reported" false complete

let test_find_simple_path () =
  let g = Generators.cycle 6 in
  let p, complete = Paths.find_simple_path g 0 3 (fun p -> List.mem 4 p) in
  check "complete" true complete;
  (match p with
   | Some p -> check "goes through 4" true (List.mem 4 p)
   | None -> Alcotest.fail "expected a path via 4");
  let none, complete =
    Paths.find_simple_path g 0 3 (fun p -> List.length p > 10)
  in
  check "no long path" true (none = None && complete)

let test_is_path_in () =
  let g = Generators.path_graph 4 in
  check "valid" true (Paths.is_path_in g [ 0; 1; 2 ]);
  check "broken" false (Paths.is_path_in g [ 0; 2 ]);
  check "repeats" false (Paths.is_path_in g [ 0; 1; 0 ]);
  check "singleton" true (Paths.is_path_in g [ 3 ])

let test_shortest_path () =
  let g = Generators.grid 3 3 in
  match Paths.shortest_path g 0 8 with
  | Some p ->
    check_int "length 5 nodes" 5 (List.length p);
    check "valid" true (Paths.is_path_in g p)
  | None -> Alcotest.fail "expected path"

(* ------------------------------------------------------------------ *)
(* Subset_enum                                                         *)
(* ------------------------------------------------------------------ *)

let count_connected g seed forbidden =
  let count = ref 0 in
  let outcome =
    Subset_enum.connected_supersets g ~seed ~forbidden (fun _ ->
        incr count;
        false)
  in
  (!count, outcome)

let test_subset_enum_path () =
  (* on a path, connected sets containing node 0 are prefixes: n of them *)
  let g = Generators.path_graph 5 in
  let count, outcome = count_connected g 0 Nodeset.empty in
  check_int "prefixes" 5 count;
  check "complete" true outcome.complete;
  check_int "visited equals count" 5 outcome.visited

let test_subset_enum_cycle () =
  (* connected subsets of C_n containing a fixed node: arcs through it:
     1 (singleton) + arcs of length 2..n-1 containing node + full = for
     C_5: 1 + (len 2: 2) + (len 3: 3) + (len 4: 4) + 1 = 11 *)
  let g = Generators.cycle 5 in
  let count, _ = count_connected g 0 Nodeset.empty in
  check_int "arcs" 11 count

let test_subset_enum_unique () =
  let g = Generators.grid 2 3 in
  let seen = Hashtbl.create 64 in
  let dup = ref false in
  ignore
    (Subset_enum.connected_supersets g ~seed:0 ~forbidden:Nodeset.empty
       (fun b ->
         let key = Nodeset.to_string b in
         if Hashtbl.mem seen key then dup := true;
         Hashtbl.replace seen key ();
         false));
  check "no duplicates" false !dup;
  (* every enumerated set is connected and contains the seed *)
  Hashtbl.iter
    (fun _ () -> ())
    seen

let test_subset_enum_forbidden () =
  let g = Generators.path_graph 5 in
  let count, _ = count_connected g 0 (ns [ 2 ]) in
  check_int "blocked at 2" 2 count;
  let count2, outcome2 = count_connected g 2 (ns [ 2 ]) in
  check_int "forbidden seed" 0 count2;
  check "complete trivially" true outcome2.complete

let test_subset_enum_budget () =
  let g = Generators.complete 12 in
  let outcome =
    Subset_enum.connected_supersets ~budget:100 g ~seed:0
      ~forbidden:Nodeset.empty (fun _ -> false)
  in
  check "budget exhaustion flagged" false outcome.complete

let test_subset_enum_early_stop () =
  let g = Generators.complete 12 in
  let outcome =
    Subset_enum.connected_supersets g ~seed:0 ~forbidden:Nodeset.empty
      (fun b -> Nodeset.size b = 3)
  in
  check "stop is complete" true outcome.complete;
  check "visited small" true (outcome.visited < 100)

let test_subset_enum_acc () =
  (* accumulator tracks the set itself: must agree with the argument *)
  let g = Generators.grid 2 3 in
  let ok = ref true in
  ignore
    (Subset_enum.connected_supersets_acc g ~seed:0 ~forbidden:Nodeset.empty
       ~init:(Nodeset.singleton 0)
       ~extend:(fun acc c -> Nodeset.add c acc)
       (fun b acc ->
         if not (Nodeset.equal b acc) then ok := false;
         false));
  check "acc tracks set" true !ok

let test_subset_enum_acc_same_count () =
  let g = Generators.cycle 6 in
  let plain = ref 0 and accd = ref 0 in
  ignore
    (Subset_enum.connected_supersets g ~seed:2 ~forbidden:(ns [ 5 ])
       (fun _ -> incr plain; false));
  ignore
    (Subset_enum.connected_supersets_acc g ~seed:2 ~forbidden:(ns [ 5 ])
       ~init:() ~extend:(fun () _ -> ())
       (fun _ () -> incr accd; false));
  check_int "same enumeration" !plain !accd

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let test_generator_shapes () =
  check_int "path edges" 4 (Graph.num_edges (Generators.path_graph 5));
  check_int "cycle edges" 6 (Graph.num_edges (Generators.cycle 6));
  check_int "complete edges" 10 (Graph.num_edges (Generators.complete 5));
  check_int "star edges" 4 (Graph.num_edges (Generators.star 5));
  check_int "grid nodes" 12 (Graph.num_nodes (Generators.grid 3 4));
  check_int "grid edges" 17 (Graph.num_edges (Generators.grid 3 4));
  check_int "ladder nodes" 8 (Graph.num_nodes (Generators.ladder 4));
  check_int "ladder edges" 10 (Graph.num_edges (Generators.ladder 4))

let test_layered_shape () =
  let g = Generators.layered ~width:3 ~depth:2 in
  check_int "nodes" 8 (Graph.num_nodes g);
  (* 3 + 9 + 3 edges *)
  check_int "edges" 15 (Graph.num_edges g);
  check "connected" true (Connectivity.is_connected g);
  check_int "dealer degree" 3 (Graph.degree 0 g);
  check_int "receiver degree" 3 (Graph.degree 7 g)

let test_basic_instance_graph () =
  let g = Generators.basic_instance_graph 4 in
  check_int "nodes" 6 (Graph.num_nodes g);
  check_int "edges" 8 (Graph.num_edges g);
  check "no dealer-receiver edge" false (Graph.mem_edge 0 5 g);
  check "middle wired" true (Graph.mem_edge 0 2 g && Graph.mem_edge 2 5 g)

let test_new_topologies () =
  let h = Generators.hypercube 3 in
  check_int "Q3 nodes" 8 (Graph.num_nodes h);
  check_int "Q3 edges" 12 (Graph.num_edges h);
  check_int "Q3 degree" 3 (Graph.degree 5 h);
  check_int "Q3 connectivity" 3 (Connectivity.min_vertex_cut h 0 7);
  let t = Generators.binary_tree 3 in
  check_int "tree nodes" 15 (Graph.num_nodes t);
  check_int "tree edges" 14 (Graph.num_edges t);
  check "tree connected" true (Connectivity.is_connected t);
  check_int "leaf degree" 1 (Graph.degree 14 t);
  let b = Generators.barbell 4 in
  check_int "barbell nodes" 8 (Graph.num_nodes b);
  check_int "barbell edges" 13 (Graph.num_edges b);
  check "bridge" true (Graph.mem_edge 3 4 b);
  check_int "bridge is the min cut" 1 (Connectivity.min_vertex_cut b 0 7);
  let k = Generators.king_grid 3 3 in
  check_int "king nodes" 9 (Graph.num_nodes k);
  check_int "king edges" 20 (Graph.num_edges k);
  check_int "king center degree" 8 (Graph.degree 4 k)

let test_random_generators () =
  let rng = Prng.create 123 in
  let g = Generators.random_connected_gnp rng 12 0.3 in
  check "connected" true (Connectivity.is_connected g);
  check_int "n" 12 (Graph.num_nodes g);
  let r = Generators.random_regular_ish rng 10 3 in
  check_int "rr nodes" 10 (Graph.num_nodes r);
  let c = Generators.communities rng ~blocks:2 ~size:5 ~p_in:1.0 ~p_out:0.0 in
  check_int "two components" 2 (List.length (Connectivity.components c))

let test_generator_determinism () =
  let g1 = Generators.random_gnp (Prng.create 7) 10 0.4 in
  let g2 = Generators.random_gnp (Prng.create 7) 10 0.4 in
  check "same seed same graph" true (Graph.equal g1 g2)

(* ------------------------------------------------------------------ *)
(* Dot                                                                 *)
(* ------------------------------------------------------------------ *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_dot () =
  let g = Generators.path_graph 3 in
  let s = Dot.to_dot g in
  check "edge line" true (contains ~needle:"0 -- 1;" s);
  let s2 = Dot.instance_dot ~dealer:0 ~receiver:2 ~corrupted:(ns [ 1 ]) g in
  check "dealer colored" true (contains ~needle:"palegreen" s2);
  check "corrupted colored" true (contains ~needle:"salmon" s2)

let () =
  Alcotest.run "rmt_graph"
    [
      ( "graph",
        [
          Alcotest.test_case "empty" `Quick test_empty_graph;
          Alcotest.test_case "add edge" `Quick test_add_edge;
          Alcotest.test_case "remove node" `Quick test_remove_node;
          Alcotest.test_case "isolated nodes" `Quick test_isolated_nodes;
          Alcotest.test_case "sparse ids" `Quick test_sparse_ids;
          Alcotest.test_case "neighborhoods" `Quick test_neighborhoods;
          Alcotest.test_case "induced" `Quick test_induced;
          Alcotest.test_case "union" `Quick test_union;
          Alcotest.test_case "radius restrict" `Quick test_radius_restrict;
        ] );
      ( "connectivity",
        [
          Alcotest.test_case "reachability" `Quick test_reachability;
          Alcotest.test_case "distances" `Quick test_distances;
          Alcotest.test_case "is_cut" `Quick test_is_cut;
          Alcotest.test_case "min vertex cut" `Quick test_min_vertex_cut;
          QCheck_alcotest.to_alcotest qcheck_menger;
          QCheck_alcotest.to_alcotest qcheck_disjoint_paths_bound;
        ] );
      ( "paths",
        [
          Alcotest.test_case "K4 paths" `Quick test_simple_paths_k4;
          Alcotest.test_case "path graph" `Quick test_simple_paths_path_graph;
          Alcotest.test_case "budget" `Quick test_path_budget;
          Alcotest.test_case "find with predicate" `Quick test_find_simple_path;
          Alcotest.test_case "is_path_in" `Quick test_is_path_in;
          Alcotest.test_case "shortest" `Quick test_shortest_path;
        ] );
      ( "subset-enum",
        [
          Alcotest.test_case "path prefixes" `Quick test_subset_enum_path;
          Alcotest.test_case "cycle arcs" `Quick test_subset_enum_cycle;
          Alcotest.test_case "no duplicates" `Quick test_subset_enum_unique;
          Alcotest.test_case "forbidden" `Quick test_subset_enum_forbidden;
          Alcotest.test_case "budget" `Quick test_subset_enum_budget;
          Alcotest.test_case "early stop" `Quick test_subset_enum_early_stop;
          Alcotest.test_case "accumulator" `Quick test_subset_enum_acc;
          Alcotest.test_case "acc same count" `Quick test_subset_enum_acc_same_count;
        ] );
      ( "generators",
        [
          Alcotest.test_case "shapes" `Quick test_generator_shapes;
          Alcotest.test_case "layered" `Quick test_layered_shape;
          Alcotest.test_case "basic instance" `Quick test_basic_instance_graph;
          Alcotest.test_case "new topologies" `Quick test_new_topologies;
          Alcotest.test_case "random" `Quick test_random_generators;
          Alcotest.test_case "determinism" `Quick test_generator_determinism;
        ] );
      ("dot", [ Alcotest.test_case "render" `Quick test_dot ]);
    ]
