(* Shared random-instance generators for the qcheck suites.

   Each generator keeps the exact sampling recipe of the suite it was
   extracted from (node counts, edge densities, structure mixes), so the
   distributions the properties were tuned against do not drift.  All
   randomness flows through Prng from a qcheck-drawn seed: shrinking a
   qcheck counterexample re-derives the same instance. *)

open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge

let print_instance i = Format.asprintf "%a" Instance.pp i

(* test/core/test_cut.ml: mixed structures and views, n in 5..8 *)
let arb_instance =
  let gen st =
    let rng = Prng.create (QCheck.Gen.int_bound 1_000_000 st) in
    let n = 5 + Prng.int rng 4 in
    let g = Generators.random_connected_gnp rng n 0.45 in
    let dealer = 0 in
    let receiver = n - 1 in
    let kind = Prng.int rng 3 in
    let structure =
      match kind with
      | 0 -> Builders.global_threshold g ~dealer 1
      | 1 -> Builders.global_threshold g ~dealer 2
      | _ -> Builders.random_antichain rng g ~dealer ~sets:4 ~max_size:(n / 2)
    in
    let view =
      match Prng.int rng 3 with
      | 0 -> View.ad_hoc g
      | 1 -> View.radius 1 g
      | _ -> View.full g
    in
    Instance.make ~graph:g ~structure ~view ~dealer ~receiver
  in
  QCheck.make ~print:print_instance gen

(* test/core/test_cut.ml: ad hoc knowledge only, n in 5..8 *)
let arb_ad_hoc_instance =
  let gen st =
    let rng = Prng.create (QCheck.Gen.int_bound 1_000_000 st) in
    let n = 5 + Prng.int rng 4 in
    let g = Generators.random_connected_gnp rng n 0.45 in
    let structure =
      if Prng.bool rng then Builders.global_threshold g ~dealer:0 1
      else Builders.random_antichain rng g ~dealer:0 ~sets:4 ~max_size:(n / 2)
    in
    Instance.ad_hoc_of ~graph:g ~structure ~dealer:0 ~receiver:(n - 1)
  in
  QCheck.make ~print:print_instance gen

(* test/core/test_protocols_core.ml: small ad hoc instances, n in 5..7 *)
let small_instance_of_rng rng =
  let n = 5 + Prng.int rng 3 in
  let g = Generators.random_connected_gnp rng n 0.5 in
  let structure =
    if Prng.bool rng then Builders.global_threshold g ~dealer:0 1
    else Builders.random_antichain rng g ~dealer:0 ~sets:3 ~max_size:2
  in
  Instance.ad_hoc_of ~graph:g ~structure ~dealer:0 ~receiver:(n - 1)

let arb_small_instance =
  let gen st =
    let rng = Prng.create (QCheck.Gen.int_bound 1_000_000 st) in
    small_instance_of_rng rng
  in
  QCheck.make ~print:print_instance gen

(* test/attack/test_attack.ml: a small instance plus a campaign seed *)
let arb_instance_and_seed =
  let gen st =
    let rng = Prng.create (QCheck.Gen.int_bound 1_000_000 st) in
    let inst = small_instance_of_rng rng in
    (inst, Prng.int rng 1_000_000)
  in
  QCheck.make
    ~print:(fun (i, s) -> Format.asprintf "seed %d on@ %a" s Instance.pp i)
    gen

(* test/lint/test_runtime_determinism.ml: a random connected instance
   with a small adversary structure over the middle nodes, resampled
   until PKA-solvable. *)
let random_solvable_instance seed =
  let rng = Prng.create seed in
  let n = 8 + Prng.int rng 4 in
  let g = Generators.random_connected_gnp rng n 0.5 in
  let dealer = 0 and receiver = n - 1 in
  let ground = Nodeset.remove dealer (Graph.nodes g) in
  let middle = Nodeset.remove receiver ground in
  let rec go tries =
    if tries = 0 then None
    else
      let sets = List.init 2 (fun _ -> Prng.sample rng middle 1) in
      let structure = Structure.of_sets ~ground sets in
      match
        Instance.make ~graph:g ~structure ~view:(View.radius 2 g) ~dealer
          ~receiver
      with
      | exception Invalid_argument _ -> go (tries - 1)
      | inst ->
        if
          Rmt_core.Solvability.is_solvable
            (Rmt_core.Solvability.partial_knowledge inst)
        then Some inst
        else go (tries - 1)
  in
  go 8
