(* Shared random-instance generators for the qcheck suites.

   Each generator keeps the exact sampling recipe of the suite it was
   extracted from (node counts, edge densities, structure mixes), so the
   distributions the properties were tuned against do not drift.  All
   randomness flows through Prng from a qcheck-drawn seed: shrinking a
   qcheck counterexample re-derives the same instance. *)

open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge

let print_instance i = Format.asprintf "%a" Instance.pp i

(* test/core/test_cut.ml: mixed structures and views, n in 5..8 *)
let arb_instance =
  let gen st =
    let rng = Prng.create (QCheck.Gen.int_bound 1_000_000 st) in
    let n = 5 + Prng.int rng 4 in
    let g = Generators.random_connected_gnp rng n 0.45 in
    let dealer = 0 in
    let receiver = n - 1 in
    let kind = Prng.int rng 3 in
    let structure =
      match kind with
      | 0 -> Builders.global_threshold g ~dealer 1
      | 1 -> Builders.global_threshold g ~dealer 2
      | _ -> Builders.random_antichain rng g ~dealer ~sets:4 ~max_size:(n / 2)
    in
    let view =
      match Prng.int rng 3 with
      | 0 -> View.ad_hoc g
      | 1 -> View.radius 1 g
      | _ -> View.full g
    in
    Instance.make ~graph:g ~structure ~view ~dealer ~receiver
  in
  QCheck.make ~print:print_instance gen

(* test/core/test_cut.ml: ad hoc knowledge only, n in 5..8 *)
let arb_ad_hoc_instance =
  let gen st =
    let rng = Prng.create (QCheck.Gen.int_bound 1_000_000 st) in
    let n = 5 + Prng.int rng 4 in
    let g = Generators.random_connected_gnp rng n 0.45 in
    let structure =
      if Prng.bool rng then Builders.global_threshold g ~dealer:0 1
      else Builders.random_antichain rng g ~dealer:0 ~sets:4 ~max_size:(n / 2)
    in
    Instance.ad_hoc_of ~graph:g ~structure ~dealer:0 ~receiver:(n - 1)
  in
  QCheck.make ~print:print_instance gen

(* test/core/test_protocols_core.ml: small ad hoc instances, n in 5..7 *)
let small_instance_of_rng rng =
  let n = 5 + Prng.int rng 3 in
  let g = Generators.random_connected_gnp rng n 0.5 in
  let structure =
    if Prng.bool rng then Builders.global_threshold g ~dealer:0 1
    else Builders.random_antichain rng g ~dealer:0 ~sets:3 ~max_size:2
  in
  Instance.ad_hoc_of ~graph:g ~structure ~dealer:0 ~receiver:(n - 1)

let arb_small_instance =
  let gen st =
    let rng = Prng.create (QCheck.Gen.int_bound 1_000_000 st) in
    small_instance_of_rng rng
  in
  QCheck.make ~print:print_instance gen

(* test/attack/test_attack.ml: a small instance plus a campaign seed *)
let arb_instance_and_seed =
  let gen st =
    let rng = Prng.create (QCheck.Gen.int_bound 1_000_000 st) in
    let inst = small_instance_of_rng rng in
    (inst, Prng.int rng 1_000_000)
  in
  QCheck.make
    ~print:(fun (i, s) -> Format.asprintf "seed %d on@ %a" s Instance.pp i)
    gen

(* test/core/test_incremental.ml + bench service workload: a stream of
   valid instance deltas.  Built sequentially — each step samples delta
   kinds against the *current* instance and keeps the first one that
   [Delta.apply] accepts — so every prefix of the stream is replayable.
   May return fewer than [n] deltas if the instance paints itself into a
   corner (e.g. a custom view refusing all topology edits). *)
let delta_stream rng inst n =
  let open Rmt_core in
  let sample_delta (inst : Instance.t) =
    let g = inst.graph in
    let nodes = Graph.nodes g in
    match Prng.int rng 6 with
    | 0 ->
      let u = Prng.pick rng (Nodeset.to_array nodes) in
      let v = Prng.pick rng (Nodeset.to_array nodes) in
      Delta.Add_edge (u, v)
    | 1 ->
      let u, v = Prng.pick_list rng (Graph.edges g) in
      Delta.Remove_edge (u, v)
    | 2 ->
      let fresh =
        match Nodeset.max_elt_opt nodes with Some m -> m + 1 | None -> 0
      in
      Delta.Add_node (fresh, Prng.sample rng nodes (1 + Prng.int rng 2))
    | 3 -> Delta.Remove_node (Prng.pick rng (Nodeset.to_array nodes))
    | 4 ->
      let ground = Nodeset.remove inst.dealer nodes in
      Delta.Add_set (Prng.sample rng ground (1 + Prng.int rng 3))
    | _ -> (
      match Structure.maximal_sets inst.structure with
      | [] -> Delta.Add_set Nodeset.empty (* retried as an applyable no-op *)
      | maximal -> Delta.Remove_set (Prng.pick_list rng maximal))
  in
  let rec step inst acc n =
    if n = 0 then List.rev acc
    else
      let rec try_one tries =
        if tries = 0 then None
        else
          let d = sample_delta inst in
          match Delta.apply inst d with
          | Ok inst' -> Some (d, inst')
          | Error _ -> try_one (tries - 1)
      in
      match try_one 8 with
      | None -> List.rev acc
      | Some (d, inst') -> step inst' (d :: acc) (n - 1)
  in
  step inst [] n

let print_instance_and_stream (i, ds) =
  Format.asprintf "@[<v>%a@,stream:@,%a@]" Instance.pp i
    (Format.pp_print_list Rmt_core.Delta.pp)
    ds

(* an arb_instance-style instance (custom-free views) paired with a
   short valid delta stream *)
let arb_instance_with_stream =
  let gen st =
    let rng = Prng.create (QCheck.Gen.int_bound 1_000_000 st) in
    let n = 5 + Prng.int rng 4 in
    let g = Generators.random_connected_gnp rng n 0.45 in
    let dealer = 0 in
    let receiver = n - 1 in
    let structure =
      match Prng.int rng 3 with
      | 0 -> Builders.global_threshold g ~dealer 1
      | 1 -> Builders.global_threshold g ~dealer 2
      | _ -> Builders.random_antichain rng g ~dealer ~sets:4 ~max_size:(n / 2)
    in
    let view =
      match Prng.int rng 3 with
      | 0 -> View.ad_hoc g
      | 1 -> View.radius 1 g
      | _ -> View.full g
    in
    let inst = Instance.make ~graph:g ~structure ~view ~dealer ~receiver in
    (inst, delta_stream rng inst (3 + Prng.int rng 6))
  in
  QCheck.make ~print:print_instance_and_stream gen

(* test/lint/test_runtime_determinism.ml: a random connected instance
   with a small adversary structure over the middle nodes, resampled
   until PKA-solvable. *)
let random_solvable_instance seed =
  let rng = Prng.create seed in
  let n = 8 + Prng.int rng 4 in
  let g = Generators.random_connected_gnp rng n 0.5 in
  let dealer = 0 and receiver = n - 1 in
  let ground = Nodeset.remove dealer (Graph.nodes g) in
  let middle = Nodeset.remove receiver ground in
  let rec go tries =
    if tries = 0 then None
    else
      let sets = List.init 2 (fun _ -> Prng.sample rng middle 1) in
      let structure = Structure.of_sets ~ground sets in
      match
        Instance.make ~graph:g ~structure ~view:(View.radius 2 g) ~dealer
          ~receiver
      with
      | exception Invalid_argument _ -> go (tries - 1)
      | inst ->
        if
          Rmt_core.Solvability.is_solvable
            (Rmt_core.Solvability.partial_knowledge inst)
        then Some inst
        else go (tries - 1)
  in
  go 8
