(** Shared qcheck generators for random RMT instances.

    Extracted from the per-suite copies in [test/core], [test/attack]
    and [test/lint] so every suite samples from the same, stable
    distributions.  Each generator documents which suite its recipe
    came from; keep the parameters in sync with the properties that
    were tuned against them. *)

open Rmt_knowledge

val arb_instance : Instance.t QCheck.arbitrary
(** Mixed structures (thresholds 1/2, random antichains) and views
    (ad hoc, radius 1, full) on connected G(n,0.45), n in 5..8.
    Recipe from [test/core/test_cut.ml]. *)

val arb_ad_hoc_instance : Instance.t QCheck.arbitrary
(** Ad hoc knowledge only, same graph family as {!arb_instance}.
    Recipe from [test/core/test_cut.ml]. *)

val arb_small_instance : Instance.t QCheck.arbitrary
(** Small ad hoc instances on connected G(n,0.5), n in 5..7.
    Recipe from [test/core/test_protocols_core.ml]. *)

val arb_instance_and_seed : (Instance.t * int) QCheck.arbitrary
(** An {!arb_small_instance}-style instance paired with a campaign
    seed.  Recipe from [test/attack/test_attack.ml]. *)

val delta_stream :
  Rmt_base.Prng.t -> Instance.t -> int -> Rmt_core.Delta.t list
(** [delta_stream rng inst n]: up to [n] instance deltas, each valid when
    applied in sequence starting from [inst] (every prefix replays
    cleanly through [Delta.apply_all]).  Mixes edge add/remove, node
    join/crash and adversary-set add/retire; may stop short of [n] when
    no sampled delta applies. *)

val arb_instance_with_stream :
  (Instance.t * Rmt_core.Delta.t list) QCheck.arbitrary
(** An {!arb_instance}-style instance (ad hoc / radius-1 / full views)
    paired with a {!delta_stream} of length 3..8.  Recipe for
    [test/core/test_incremental.ml]. *)

val random_solvable_instance : int -> Instance.t option
(** A random connected instance (n in 8..11, radius-2 views) with a
    small adversary structure over the middle nodes, resampled up to 8
    times until PKA-solvable; [None] if none of the samples is.
    Recipe from [test/lint/test_runtime_determinism.ml]. *)
