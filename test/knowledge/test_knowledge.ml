open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let ns = Nodeset.of_list

let triangle_plus =
  (* triangle 0-1-2 with a tail 2-3 *)
  Graph.of_edges [ (0, 1); (1, 2); (0, 2); (2, 3) ]

(* ------------------------------------------------------------------ *)
(* View                                                                *)
(* ------------------------------------------------------------------ *)

let test_full_view () =
  let v = View.full triangle_plus in
  check "γ(v) = G" true (Graph.equal (View.view v 1) triangle_plus);
  check "joint = G" true
    (Graph.equal (View.joint v (ns [ 0; 3 ])) triangle_plus)

let test_ad_hoc_view () =
  let v = View.ad_hoc triangle_plus in
  let g1 = View.view v 1 in
  check "star nodes" true (Nodeset.equal (ns [ 0; 1; 2 ]) (Graph.nodes g1));
  check "star edges only" true (Graph.mem_edge 1 0 g1 && Graph.mem_edge 1 2 g1);
  (* crucially, the star does NOT include the 0-2 edge *)
  check "no neighbor-neighbor edge" false (Graph.mem_edge 0 2 g1);
  check_int "star edge count" 2 (Graph.num_edges g1)

let test_radius_views () =
  let v0 = View.radius 0 triangle_plus in
  check_int "radius 0 is bare node" 1 (Graph.num_nodes (View.view v0 1));
  let v1 = View.radius 1 triangle_plus in
  let g1 = View.view v1 1 in
  (* induced ball includes the 0-2 edge *)
  check "ball-1 has triangle edge" true (Graph.mem_edge 0 2 g1);
  let v2 = View.radius 2 triangle_plus in
  check "radius 2 covers tail from 1" true
    (Graph.mem_node 3 (View.view v2 1));
  check "radius diam = full" true
    (Graph.equal (View.view v2 0) triangle_plus)

let test_view_partial_order () =
  let ad_hoc = View.ad_hoc triangle_plus in
  let r1 = View.radius 1 triangle_plus in
  let full = View.full triangle_plus in
  check "ad hoc ≤ radius 1" true (View.leq ad_hoc r1);
  check "radius 1 ≤ full" true (View.leq r1 full);
  check "full ≰ ad hoc" false (View.leq full ad_hoc);
  check "reflexive" true (View.leq r1 r1)

let test_view_membership_invariant () =
  let v = View.ad_hoc triangle_plus in
  Nodeset.iter
    (fun u -> check "v ∈ γ(v)" true (Graph.mem_node u (View.view v u)))
    (Graph.nodes triangle_plus)

let test_of_assignment_validation () =
  Alcotest.check_raises "γ(v) must contain v"
    (Invalid_argument "View: v must belong to γ(v)") (fun () ->
      ignore
        (View.of_assignment triangle_plus (fun _ ->
             Graph.add_node 0 Graph.empty)));
  Alcotest.check_raises "γ(v) must be a subgraph"
    (Invalid_argument "View: γ(v) must be a subgraph of G") (fun () ->
      ignore
        (View.of_assignment triangle_plus (fun v ->
             Graph.add_edge v 99 (Graph.add_node v Graph.empty))))

let test_joint_views () =
  let v = View.ad_hoc triangle_plus in
  let j = View.joint v (ns [ 1; 3 ]) in
  (* star(1) ∪ star(3): nodes {0,1,2,3}, edges 1-0,1-2,3-2 *)
  check_int "joint nodes" 4 (Graph.num_nodes j);
  check_int "joint edges" 3 (Graph.num_edges j);
  check "joint nodes fn agrees" true
    (Nodeset.equal (View.joint_nodes v (ns [ 1; 3 ])) (Graph.nodes j))

let test_local_structure () =
  let z =
    Structure.of_sets ~ground:(ns [ 1; 2; 3 ]) [ ns [ 1; 3 ]; ns [ 2 ] ]
  in
  let v = View.ad_hoc triangle_plus in
  let z0 = View.local_structure v z 0 in
  (* γ(0) = {0,1,2}: {1,3} restricts to {1} *)
  check "restricted member" true (Structure.mem (ns [ 1 ]) z0);
  check "cross member gone" false (Structure.mem (ns [ 1; 3 ]) z0);
  check "ground" true
    (Nodeset.equal (ns [ 1; 2 ]) (Structure.ground z0))

(* ------------------------------------------------------------------ *)
(* Instance                                                            *)
(* ------------------------------------------------------------------ *)

let mk_instance () =
  let structure = Structure.threshold ~ground:(ns [ 1; 2 ]) 1 in
  Instance.make ~graph:triangle_plus ~structure
    ~view:(View.ad_hoc triangle_plus) ~dealer:0 ~receiver:3

let test_instance_ok () =
  let inst = mk_instance () in
  check_int "nodes" 4 (Instance.num_nodes inst);
  check "admissible" true (Instance.admissible inst (ns [ 1 ]));
  check "inadmissible" false (Instance.admissible inst (ns [ 1; 2 ]));
  check "honest nodes" true
    (Nodeset.equal (ns [ 0; 2; 3 ]) (Instance.honest_nodes inst (ns [ 1 ])))

let test_instance_validation () =
  let structure = Structure.threshold ~ground:(ns [ 1; 2 ]) 1 in
  let view = View.ad_hoc triangle_plus in
  Alcotest.check_raises "dealer=receiver"
    (Invalid_argument "Instance.make: dealer = receiver") (fun () ->
      ignore
        (Instance.make ~graph:triangle_plus ~structure ~view ~dealer:1
           ~receiver:1));
  Alcotest.check_raises "missing receiver"
    (Invalid_argument "Instance.make: receiver not in graph") (fun () ->
      ignore
        (Instance.make ~graph:triangle_plus ~structure ~view ~dealer:0
           ~receiver:9));
  let bad_structure = Structure.threshold ~ground:(ns [ 0; 1 ]) 1 in
  Alcotest.check_raises "dealer in structure"
    (Invalid_argument "Instance.make: the dealer must be outside the structure")
    (fun () ->
      ignore
        (Instance.make ~graph:triangle_plus ~structure:bad_structure ~view
           ~dealer:0 ~receiver:3))

let test_instance_local_access () =
  let inst = mk_instance () in
  let z2 = Instance.local_structure inst 2 in
  (* γ(2) covers {0,1,2,3}: both singletons visible *)
  check "sees both singletons" true
    (Structure.mem (ns [ 1 ]) z2 && Structure.mem (ns [ 2 ]) z2);
  let g3 = Instance.local_view inst 3 in
  check "receiver star" true
    (Nodeset.equal (ns [ 2; 3 ]) (Graph.nodes g3))

let test_with_structure_and_view () =
  let inst = mk_instance () in
  let z' = Structure.trivial ~ground:(ns [ 1; 2 ]) in
  let inst' = Instance.with_structure inst z' in
  check "swapped" false (Instance.admissible inst' (ns [ 1 ]));
  let inst'' = Instance.with_view inst (View.full triangle_plus) in
  check "full view" true
    (Graph.equal (Instance.local_view inst'' 3) triangle_plus)

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let test_codec_roundtrip () =
  let inst = mk_instance () in
  match Codec.to_string inst with
  | Error m -> Alcotest.fail m
  | Ok text ->
    (match Codec.of_string text with
     | Error m -> Alcotest.fail m
     | Ok inst' ->
       check "graph survives" true (Graph.equal inst.graph inst'.graph);
       check "structure survives" true
         (Structure.equal inst.structure inst'.structure);
       check_int "dealer" inst.dealer inst'.dealer;
       check_int "receiver" inst.receiver inst'.receiver;
       check "view survives" true
         (View.label inst.view = View.label inst'.view))

let test_codec_radius_roundtrip () =
  let structure = Structure.threshold ~ground:(ns [ 1; 2 ]) 1 in
  let inst =
    Instance.make ~graph:triangle_plus ~structure
      ~view:(View.radius 2 triangle_plus) ~dealer:0 ~receiver:3
  in
  match Result.bind (Codec.to_string inst) Codec.of_string with
  | Error m -> Alcotest.fail m
  | Ok inst' ->
    check "radius label" true (View.label inst'.view = "radius-2");
    check "views equal pointwise" true (View.leq inst.view inst'.view)

let test_codec_parse () =
  let text =
    "# demo\nnodes 5\nedges 0-1 1-2 2-3\ndealer 0\nreceiver 3\nview radius 1\nset 1\nset 2\n"
  in
  match Codec.of_string text with
  | Error m -> Alcotest.fail m
  | Ok inst ->
    check_int "isolated node kept" 5 (Instance.num_nodes inst);
    check "set parsed" true (Instance.admissible inst (ns [ 2 ]));
    check "union not admissible" false (Instance.admissible inst (ns [ 1; 2 ]))

let expect_error text fragment =
  match Codec.of_string text with
  | Ok _ -> Alcotest.fail ("expected parse error mentioning " ^ fragment)
  | Error m ->
    let contains =
      let nl = String.length fragment and hl = String.length m in
      let rec go i =
        i + nl <= hl && (String.sub m i nl = fragment || go (i + 1))
      in
      go 0
    in
    check ("error mentions " ^ fragment) true contains

let test_codec_errors () =
  expect_error "edges 0-1\nreceiver 1\n" "dealer";
  expect_error "edges 0-1\ndealer 0\n" "receiver";
  expect_error "frobnicate 1\n" "unknown keyword";
  expect_error "edges 0x1\ndealer 0\nreceiver 1\n" "edge";
  expect_error "edges 0-1\ndealer 0\nreceiver 1\nview warp\n" "view";
  (* dealer inside a corruption set gets clipped, not rejected *)
  match Codec.of_string "edges 0-1 1-2\ndealer 0\nreceiver 2\nset 0 1\n" with
  | Ok inst -> check "clipped dealer" true (Instance.admissible inst (ns [ 1 ]))
  | Error m -> Alcotest.fail m

let test_codec_custom_rejected () =
  let view = View.of_assignment triangle_plus (fun v -> View.view (View.ad_hoc triangle_plus) v) in
  let structure = Structure.threshold ~ground:(ns [ 1; 2 ]) 1 in
  let inst =
    Instance.make ~graph:triangle_plus ~structure ~view ~dealer:0 ~receiver:3
  in
  check "custom rejected" true (Result.is_error (Codec.to_string inst))

let test_codec_file_roundtrip () =
  let inst = mk_instance () in
  let path = Filename.temp_file "rmt_codec" ".rmt" in
  (match Codec.to_file path inst with
   | Error m -> Alcotest.fail m
   | Ok () ->
     (match Codec.of_file path with
      | Error m -> Alcotest.fail m
      | Ok inst' -> check "file roundtrip" true (Graph.equal inst.graph inst'.graph)));
  Sys.remove path

let test_codec_golden_fixture () =
  (* re-serializing a checked-in instance pins the canonical form: field
     order, node/edge ordering, ground elision of the dealer.  If this
     fails after an intentional format change, update the expected text
     here and regenerate the .sched/.rmt fixtures that embed it. *)
  match Codec.of_file "../../instances/figure1_basic.rmt" with
  | Error m -> Alcotest.fail m
  | Ok inst ->
    let expected =
      "# rmt instance\n\
       nodes 0 1 2 3 4\n\
       edges 0-1 0-2 0-3 1-4 2-4 3-4\n\
       dealer 0\n\
       receiver 4\n\
       view ad-hoc\n\
       ground 1 2 3 4\n\
       set 1\n\
       set 2\n\
       set 3\n"
    in
    (match Codec.to_string inst with
     | Error m -> Alcotest.fail m
     | Ok text ->
       Alcotest.(check string) "canonical serialization" expected text;
       (* canonical form is a fixpoint of parse ∘ serialize *)
       (match Result.bind (Codec.of_string text) Codec.to_string with
        | Error m -> Alcotest.fail m
        | Ok text' -> Alcotest.(check string) "idempotent" text text'))

(* random-instance roundtrip fuzz *)
let qcheck_codec_roundtrip =
  QCheck.Test.make ~count:60 ~name:"codec roundtrip on random instances"
    (QCheck.make QCheck.Gen.(int_bound 1_000_000) ~print:string_of_int)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 4 + Prng.int rng 8 in
      let g = Generators.random_connected_gnp rng n 0.4 in
      let ground = Nodeset.remove 0 (Graph.nodes g) in
      let sets =
        List.init (1 + Prng.int rng 4) (fun _ ->
            Prng.sample rng ground (1 + Prng.int rng (max 1 (n / 2))))
      in
      let structure = Structure.of_sets ~ground sets in
      let view =
        match Prng.int rng 3 with
        | 0 -> View.ad_hoc g
        | 1 -> View.full g
        | _ -> View.radius (Prng.int rng 4) g
      in
      let inst =
        Instance.make ~graph:g ~structure ~view ~dealer:0 ~receiver:(n - 1)
      in
      match Result.bind (Codec.to_string inst) Codec.of_string with
      | Error _ -> false
      | Ok inst' ->
        Graph.equal inst.graph inst'.graph
        && Structure.equal inst.structure inst'.structure
        && inst.dealer = inst'.dealer
        && inst.receiver = inst'.receiver
        && View.label inst.view = View.label inst'.view)

let () =
  Alcotest.run "rmt_knowledge"
    [
      ( "view",
        [
          Alcotest.test_case "full" `Quick test_full_view;
          Alcotest.test_case "ad hoc star" `Quick test_ad_hoc_view;
          Alcotest.test_case "radius" `Quick test_radius_views;
          Alcotest.test_case "partial order" `Quick test_view_partial_order;
          Alcotest.test_case "v ∈ γ(v)" `Quick test_view_membership_invariant;
          Alcotest.test_case "validation" `Quick test_of_assignment_validation;
          Alcotest.test_case "joint" `Quick test_joint_views;
          Alcotest.test_case "local structure" `Quick test_local_structure;
        ] );
      ( "instance",
        [
          Alcotest.test_case "construction" `Quick test_instance_ok;
          Alcotest.test_case "validation" `Quick test_instance_validation;
          Alcotest.test_case "local access" `Quick test_instance_local_access;
          Alcotest.test_case "with_*" `Quick test_with_structure_and_view;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "radius roundtrip" `Quick test_codec_radius_roundtrip;
          Alcotest.test_case "parse" `Quick test_codec_parse;
          Alcotest.test_case "errors" `Quick test_codec_errors;
          Alcotest.test_case "custom rejected" `Quick test_codec_custom_rejected;
          Alcotest.test_case "file roundtrip" `Quick test_codec_file_roundtrip;
          Alcotest.test_case "golden fixture" `Quick test_codec_golden_fixture;
          QCheck_alcotest.to_alcotest qcheck_codec_roundtrip;
        ] );
    ]
