(* Partial knowledge on a metro mesh: the gap the paper closes.

   A 3x4 wireless mesh (node i*4+j at row i, column j):

        0 --  1 --  2 --  3
        |     |     |     |
        4 --  5 --  6 --  7
        |     |     |     |
        8 --  9 -- 10 -- 11

   The gateway (0) sends a config update to the far corner (11).  Threat
   intelligence says the compromise is ONE of: router 5, router 6, or the
   vendor-batch pair {7, 8} — a general adversary structure no global or
   local threshold expresses.

   The punchline: with ad hoc knowledge (each router knows only its own
   links) RMT is IMPOSSIBLE here, and so it stays with 1-hop views — but
   2-hop views make it solvable, and RMT-PKA delivers.  This is exactly
   the regime between "ad hoc" and "full knowledge" that the partial
   knowledge model captures and where RMT-PKA is the unique algorithm.

   Run with: dune exec examples/mesh_partial_knowledge.exe *)

open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge
open Rmt_core

let printf = Printf.printf
let dec = function None -> "⊥" | Some x -> string_of_int x

let () =
  let g = Generators.grid 3 4 in
  let dealer = 0 and receiver = 11 in
  let ns = Nodeset.of_list in
  let structure =
    Builders.from_maximal g ~dealer [ ns [ 5 ]; ns [ 6 ]; ns [ 7; 8 ] ]
  in
  printf "Mesh: %d routers, %d links; gateway %d, target %d\n"
    (Graph.num_nodes g) (Graph.num_edges g) dealer receiver;
  printf "Threat model: one of {5}, {6}, {7,8} is compromised\n\n";

  (* Feasibility across the knowledge spectrum. *)
  let feas label view =
    let inst = Instance.make ~graph:g ~structure ~view ~dealer ~receiver in
    printf "%-16s %s\n" label
      (Format.asprintf "%a" Solvability.pp_feasibility
         (Solvability.partial_knowledge inst))
  in
  feas "ad hoc:" (View.ad_hoc g);
  feas "radius-1:" (View.radius 1 g);
  feas "radius-2:" (View.radius 2 g);
  feas "full:" (View.full g);

  (* The minimal-knowledge machinery confirms radius 2 is the frontier. *)
  (match
     Minimal_knowledge.minimal_radius ~graph:g ~structure ~dealer ~receiver ()
   with
   | Some k -> printf "\nMinimal uniform view radius: %d\n\n" k
   | None -> printf "\nUnsolvable at every radius\n\n");

  (* Z-CPA is stuck: it only ever uses neighborhood knowledge.  On this
     instance it still delivers when nobody actually attacks — but it is
     not resilient: some admissible corruption defeats it. *)
  let ad_hoc_inst = Instance.ad_hoc_of ~graph:g ~structure ~dealer ~receiver in
  let z = Zcpa.run ad_hoc_inst ~x_dealer:7 in
  let zp =
    Solvability.probe_zcpa (Prng.create 3) ad_hoc_inst ~x_dealer:7 ~x_fake:13
  in
  printf "Z-CPA (ad hoc), honest network:  %s\n" (dec z.decided);
  printf "Z-CPA under attack:              correct in %d/%d runs — not resilient\n"
    zp.correct_runs zp.total_runs;

  (* RMT-PKA with 2-hop views succeeds — honestly and under attack. *)
  let inst =
    Instance.make ~graph:g ~structure ~view:(View.radius 2 g) ~dealer ~receiver
  in
  let r = Rmt_pka.run inst ~x_dealer:7 in
  printf "RMT-PKA (2-hop views), honest:   %s\n" (dec r.decided);

  List.iter
    (fun corrupted ->
      let worst = ref (Some 7) in
      List.iter
        (fun (_, adversary) ->
          let r = Rmt_pka.run ~adversary inst ~x_dealer:7 in
          if r.decided <> Some 7 then worst := r.decided)
        (Strategies.pka_full_menu inst ~x_dealer:7 ~x_fake:13 corrupted);
      printf "RMT-PKA vs compromised %-8s %s\n"
        (Nodeset.to_string corrupted ^ ":")
        (dec !worst))
    [ ns [ 5 ]; ns [ 6 ]; ns [ 7; 8 ] ];

  (* And the impossibility at 1-hop views is real, not an algorithmic
     shortfall: the two-face attack fools every safe protocol. *)
  let inst1 =
    Instance.make ~graph:g ~structure ~view:(View.radius 1 g) ~dealer ~receiver
  in
  match (Cut.find_rmt_cut inst1).cut_found with
  | None -> printf "\n(unexpected: no cut at radius 1)\n"
  | Some w ->
    printf "\nAt 1-hop views the obstruction is %s\n"
      (Format.asprintf "%a" Cut.pp_witness w);
    let v = Attack.against_rmt_pka inst1 w ~x0:0 ~x1:1 in
    printf "Two-face attack at radius 1: e=%s e'=%s — correctly silent.\n"
      (dec v.decision_e) (dec v.decision_e')
