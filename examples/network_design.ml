(* Network design: the paper's practical by-product.

   "The new cut notion can be used to determine the exact subgraph in
   which RMT is possible in a network design phase."  Given a candidate
   topology and a threat model, we map out which receivers the dealer can
   reach reliably, find the cheapest single link whose addition rescues an
   unreachable receiver, and emit a Graphviz rendering of the result.

   Run with: dune exec examples/network_design.exe *)

open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge
open Rmt_core

let dealer = 0

let feasible g structure receiver =
  let inst = Instance.ad_hoc_of ~graph:g ~structure ~dealer ~receiver in
  Solvability.ad_hoc inst = Solvability.Solvable

let reachable_set g structure =
  Nodeset.filter
    (fun v -> v <> dealer && feasible g structure v)
    (Graph.nodes g)

let () =
  (* Design draft: a ladder backbone — cheap, but only 2-connected. *)
  let g = Generators.ladder 4 in
  let structure g = Builders.global_threshold g ~dealer 1 in
  Printf.printf "Draft topology: ladder, %d nodes, %d edges\n"
    (Graph.num_nodes g) (Graph.num_edges g);

  let ok = reachable_set g (structure g) in
  Printf.printf "Receivers reachable under 1 corruption: %s\n"
    (Nodeset.to_string ok);

  (* The far corner (node 7) is not among them.  Search the cheapest fix:
     a single extra link that makes node 7 reachable. *)
  let target = 7 in
  if Nodeset.mem target ok then Printf.printf "Node %d already reachable.\n" target
  else begin
    Printf.printf "Node %d is NOT reachable; searching for a rescue link...\n"
      target;
    let candidates =
      let nodes = Nodeset.elements (Graph.nodes g) in
      List.concat_map
        (fun u ->
          List.filter_map
            (fun v ->
              if u < v && not (Graph.mem_edge u v g) then Some (u, v) else None)
            nodes)
        nodes
    in
    let fixes =
      List.filter
        (fun (u, v) ->
          let g' = Graph.add_edge u v g in
          feasible g' (structure g') target)
        candidates
    in
    (match fixes with
     | [] -> Printf.printf "No single link suffices.\n"
     | (u, v) :: _ as all ->
       Printf.printf "%d candidate links work; picking %d-%d.\n"
         (List.length all) u v;
       let g' = Graph.add_edge u v g in
       let ok' = reachable_set g' (structure g') in
       Printf.printf "Now reachable: %s\n" (Nodeset.to_string ok');
       (* verify end-to-end: run the actual protocol on the fixed design *)
       let inst =
         Instance.ad_hoc_of ~graph:g' ~structure:(structure g') ~dealer
           ~receiver:target
       in
       let r = Zcpa.run inst ~x_dealer:5 in
       Printf.printf "Z-CPA on the fixed design delivers: %s\n"
         (match r.decided with None -> "⊥" | Some x -> string_of_int x);
       (* emit the blueprint for the design review *)
       let dot = Dot.instance_dot ~dealer ~receiver:target g' in
       let file = Filename.temp_file "rmt_design" ".dot" in
       let oc = open_out file in
       output_string oc dot;
       close_out oc;
       Printf.printf "Blueprint written to %s\n" file)
  end;

  (* Sensitivity: how does reachability degrade as the threat grows?  The
     onion topology makes the 2t+1-connectivity cliff visible: width 4
     supports t = 1 but not t = 2. *)
  Printf.printf "\nThreat sensitivity on the width-4 onion (10 nodes):\n";
  let onion = Generators.layered ~width:4 ~depth:2 in
  List.iter
    (fun t ->
      let s = Builders.global_threshold onion ~dealer t in
      Printf.printf "  t=%d: %d/%d receivers reachable\n" t
        (Nodeset.size (reachable_set onion s))
        (Graph.num_nodes onion - 1))
    [ 0; 1; 2; 3 ]
