(* Sensor field: false confidence, the tight analysis, and a fix.

   A 3x4 field of sensors with king's-move radio links.  A base station
   (corner 0) must deliver commands to the far actuator.  Faults are
   t-locally bounded (Koo's model): in any sensor's radio range at most
   one device is compromised.  The general adversary machinery subsumes
   this as the t-local structure.

   The example makes the paper's point the hard way:

   1. CPA / Z-CPA deliver commands and shrug off every simple attack we
      throw at them — the deployment LOOKS reliable;
   2. the tight RMT Z-pp cut characterization (Thms 7+8) says it is NOT:
      there is a cut witness, and the two-face adversary built from it
      (Fig 2) silences the protocol — no safe protocol can do better;
   3. hardening a few tamper-proof sensors chosen from the witness cuts
      removes every obstruction, and the field becomes provably reliable.

   Run with: dune exec examples/sensor_grid.exe *)

open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge
open Rmt_core

let printf = Printf.printf
let dec = function None -> "⊥" | Some x -> string_of_int x

let rows = 3
let cols = 4
let base = 0

(* tamper-proof sensors can no longer appear in any corruption set *)
let harden hardened structure =
  let maximal =
    List.map (fun m -> Nodeset.diff m hardened) (Structure.maximal_sets structure)
  in
  Structure.of_sets ~ground:(Structure.ground structure) maximal

let () =
  let g = Generators.king_grid rows cols in
  let actuator = (rows * cols) - 1 in
  let structure = Builders.t_local g ~dealer:base 1 in
  printf "Sensor field %dx%d (king's-move links), base %d, actuator %d\n"
    rows cols base actuator;
  printf "Faults: 1-locally bounded (%d maximal corruption patterns)\n\n"
    (Structure.num_maximal structure);

  let inst = Instance.ad_hoc_of ~graph:g ~structure ~dealer:base ~receiver:actuator in

  (* Step 1: everything looks fine. *)
  let z = Zcpa.run inst ~x_dealer:1 in
  let c = Rmt_protocols.Cpa.run g ~dealer:base ~receiver:actuator ~t:1 ~x_dealer:1 in
  printf "Z-CPA, honest network: %s    CPA: %s  (they coincide on t-local)\n"
    (dec z.decided) (dec c.decided);
  let probe = Solvability.probe_zcpa (Prng.create 5) inst ~x_dealer:1 ~x_fake:9 in
  printf "Against silence/flip/spam x every corruption pattern: %d/%d correct\n\n"
    probe.correct_runs probe.total_runs;

  (* Step 2: the tight analysis disagrees. *)
  printf "Feasibility (RMT Z-pp cut decider): %s\n"
    (Format.asprintf "%a" Solvability.pp_feasibility (Solvability.ad_hoc inst));
  (match (Cut.find_rmt_zpp_cut inst).cut_found with
   | None -> ()
   | Some w ->
     printf "Witness: %s\n" (Format.asprintf "%a" Cut.pp_witness w);
     let v = Attack.against_zcpa inst w ~x0:0 ~x1:1 in
     printf
       "Two-face adversary from the witness: e=%s e'=%s — the actuator can \
        be starved forever,\nand by Thm 8 NO safe protocol does better.\n\n"
       (dec v.decision_e) (dec v.decision_e'));

  (* Step 3: harden sensors until no cut survives. *)
  let rec fix structure hardened =
    let inst =
      Instance.ad_hoc_of ~graph:g ~structure ~dealer:base ~receiver:actuator
    in
    match (Cut.find_rmt_zpp_cut inst).cut_found with
    | None -> (structure, hardened, inst)
    | Some w ->
      (* make one locally-plausible cut member tamper-proof *)
      let pick =
        match Nodeset.min_elt_opt w.c2 with
        | Some v -> v
        | None -> Option.get (Nodeset.min_elt_opt w.c1)
      in
      let hardened = Nodeset.add pick hardened in
      fix (harden (Nodeset.singleton pick) structure) hardened
  in
  let structure', hardened, inst' = fix structure Nodeset.empty in
  printf "Hardening loop: tamper-proofed sensors %s\n"
    (Nodeset.to_string hardened);
  printf "Feasibility after hardening: %s (%d corruption patterns remain)\n"
    (Format.asprintf "%a" Solvability.pp_feasibility (Solvability.ad_hoc inst'))
    (Structure.num_maximal structure');

  (* and now resilience is real: *)
  let probe = Solvability.probe_zcpa (Prng.create 6) inst' ~x_dealer:1 ~x_fake:9 in
  printf "Z-CPA after hardening: %d/%d correct under the full battery\n"
    probe.correct_runs probe.total_runs;
  match (Cut.find_rmt_zpp_cut inst').cut_found with
  | Some _ -> printf "(unexpected: still cut)\n"
  | None -> printf "No RMT Z-pp cut remains: reliability is guaranteed.\n"
