(* Poly-time uniqueness, step by step (Section 5, Theorem 9).

   Z-CPA is a protocol SCHEME: its rule 2 calls a membership-check
   subroutine "is this sender set N outside my local structure Z_v?" as a
   black box.  The paper's surprising result is that this subroutine is
   not just sufficient but NECESSARY: any unique fully polynomial RMT
   protocol Pi can be turned into a polynomial implementation of the
   subroutine, by simulating Pi on tiny "basic instances" (Figure 1) in
   which the corrupted players of one run mirror the honest players of a
   paired run (Figure 2).  Hence either Z-CPA is fully polynomial or
   nothing unique is: poly-time uniqueness.

   This example walks the construction on one concrete decision.

   Run with: dune exec examples/poly_time_uniqueness.exe *)

open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge
open Rmt_core

let printf = Printf.printf
let dec = function None -> "⊥" | Some x -> string_of_int x

let () =
  (* The stage: a 3-wide onion, one corruptible node, ad hoc knowledge. *)
  let g = Generators.layered ~width:3 ~depth:2 in
  let inst =
    Instance.ad_hoc_of ~graph:g
      ~structure:(Builders.global_threshold g ~dealer:0 1)
      ~dealer:0 ~receiver:7
  in
  printf "Instance: onion 3x2, dealer 0, receiver 7, any 1 node corruptible.\n\n";

  (* Step 1 — Z-CPA with the DIRECT oracle.  Watch the receiver's last
     membership check: it has heard value 5 from its three neighbors
     {4,5,6} and asks whether {4,5,6} could be entirely corrupted. *)
  let checks = ref [] in
  let spying_oracle ~v n =
    let answer = not (Structure.mem n (Instance.local_structure inst v)) in
    if v = 7 then checks := (n, answer) :: !checks;
    answer
  in
  let direct = Zcpa.run ~oracle:spying_oracle inst ~x_dealer:5 in
  printf "Z-CPA with the direct oracle decides: %s\n" (dec direct.decided);
  List.iter
    (fun (n, answer) ->
      printf "  receiver asked: is %s certifiably honest?  -> %b\n"
        (Nodeset.to_string n) answer)
    (List.rev !checks);

  (* Step 2 — the same question, answered WITHOUT the oracle.  The
     receiver builds the basic instance of Figure 1: dealer, its heard-from
     neighbors as the middle set, itself as receiver. *)
  let middle = Nodeset.of_list [ 4; 5; 6 ] in
  let basic =
    Self_reduction.basic_instance ~dealer:0 ~receiver:7 ~middle
      ~structure:(Instance.local_structure inst 7)
  in
  printf "\nBasic instance (Figure 1): dealer 0, middle %s, receiver 7\n"
    (Nodeset.to_string middle);
  printf "Solvable (no two admissible sets cover the middle): %b\n"
    (Self_reduction.basic_solvable ~middle
       ~structure:(Instance.local_structure inst 7));

  (* Step 3 — the paired runs e_0^l / e_1^l for the class A_l = {4,5,6}
     (all senders agreed, so the complement class is empty... take a
     proper split to see the mechanics: suppose {4,5} said 0 and {6} said
     1).  For l = the {4,5}-class: run e_0 has dealer value 0 and
     corruption {6} mirroring run e_1, which has dealer value 1 and
     corruption {4,5} mirroring e_0. *)
  let show_l name c1 c2 =
    let v =
      Attack.co_simulate ~graph:basic.graph ~c1 ~c2
        (Zcpa.automaton
           ~decider:(Zcpa.decider_of_oracle (Zcpa.direct_oracle basic))
           basic ~x_dealer:0)
        (Zcpa.automaton
           ~decider:(Zcpa.decider_of_oracle (Zcpa.direct_oracle basic))
           basic ~x_dealer:1)
        ~receiver:7
    in
    printf "  %s: e_0 (x=0, corrupt %s) decides %s | e_1 (x=1, corrupt %s) decides %s\n"
      name
      (Nodeset.to_string c1) (dec v.decision_e)
      (Nodeset.to_string c2) (dec v.decision_e');
    v.decision_e = Some 0
  in
  printf "\nDecision protocol (Thm 9), hypothetical classes {4,5}=0 vs {6}=1:\n";
  let l1 = show_l "l = class {4,5}" (Nodeset.of_list [ 6 ]) (Nodeset.of_list [ 4; 5 ]) in
  let l2 = show_l "l = class {6}  " (Nodeset.of_list [ 4; 5 ]) (Nodeset.of_list [ 6 ]) in
  printf "  certified: %s\n"
    (match (l1, l2) with
     | true, false -> "the {4,5}-class — exactly the oracle's answer"
     | false, true -> "the {6}-class?!"
     | _ -> "ambiguous?!");

  (* Step 4 — end-to-end: Z-CPA with the simulated decider on the original
     instance, honest and attacked, matches the direct-oracle runs. *)
  printf "\nEnd-to-end with the simulated decider (Pi = Z-CPA itself):\n";
  let sim =
    Zcpa.run ~decider:(Self_reduction.simulated_decider inst) inst ~x_dealer:5
  in
  printf "  honest network: direct=%s simulated=%s\n" (dec direct.decided)
    (dec sim.decided);
  let corrupted = Nodeset.singleton 1 in
  let attack () = Strategies.value_flip ~x_fake:9 g corrupted in
  let d = Zcpa.run ~adversary:(attack ()) inst ~x_dealer:5 in
  let s =
    Zcpa.run ~decider:(Self_reduction.simulated_decider inst)
      ~adversary:(attack ()) inst ~x_dealer:5
  in
  printf "  node 1 flips to 9: direct=%s simulated=%s\n" (dec d.decided)
    (dec s.decided);
  printf
    "\nMoral: the membership check reduces to RMT on basic instances, so\n\
     any unique fully polynomial RMT protocol would make Z-CPA fully\n\
     polynomial too (Corollary 10).\n"
