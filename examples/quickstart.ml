(* Quickstart: sixty seconds with the library.

   We build an RMT instance (graph + adversary structure + view function +
   dealer + receiver), ask whether RMT is solvable at all, run RMT-PKA and
   Z-CPA on a simulated synchronous network — first honestly, then against
   a Byzantine relay — and finally show what happens on an instance where
   no algorithm can succeed.

   Run with: dune exec examples/quickstart.exe *)

open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge
open Rmt_core

let dec = function
  | None -> "⊥ (no decision)"
  | Some x -> Printf.sprintf "%d" x

let () =
  (* A 3-wide, 2-deep "onion": dealer 0, two layers {1,2,3} and {4,5,6},
     receiver 7.  Vertex connectivity between dealer and receiver is 3. *)
  let g = Generators.layered ~width:3 ~depth:2 in
  Printf.printf "Topology: %d nodes, %d edges, dealer 0, receiver 7\n"
    (Graph.num_nodes g) (Graph.num_edges g);

  (* The adversary may corrupt any single node (global threshold 1). *)
  let structure = Builders.global_threshold g ~dealer:0 1 in

  (* Players only know their own neighborhood: the ad hoc model. *)
  let inst = Instance.ad_hoc_of ~graph:g ~structure ~dealer:0 ~receiver:7 in

  (* Feasibility first: the tight RMT-cut characterization (Thms 3+5). *)
  Printf.printf "Feasibility (partial knowledge): %s\n"
    (Format.asprintf "%a" Solvability.pp_feasibility
       (Solvability.partial_knowledge inst));

  (* Run RMT-PKA on an honest network. *)
  let r = Rmt_pka.run inst ~x_dealer:42 in
  Printf.printf "RMT-PKA, honest network:   %s  (%d rounds, %d messages)\n"
    (dec r.decided) r.rounds r.messages;

  (* Now corrupt node 1 and make it flip every relayed value to 666. *)
  let corrupted = Nodeset.singleton 1 in
  let adv = Strategies.pka_value_flip inst ~x_dealer:42 ~x_fake:666 corrupted in
  let r = Rmt_pka.run ~adversary:adv inst ~x_dealer:42 in
  Printf.printf "RMT-PKA vs value flipper:  %s  (safety: never 666)\n"
    (dec r.decided);

  (* Z-CPA — the simple certified-propagation protocol — also works here. *)
  let z = Zcpa.run inst ~x_dealer:42 in
  Printf.printf "Z-CPA, honest network:     %s  (%d membership checks)\n"
    (dec z.decided) z.oracle_calls;

  (* Shrink the graph to connectivity 2 and RMT becomes impossible: an
     RMT-cut appears, and the two-face attack (Fig 2) makes any safe
     protocol stay silent forever. *)
  let g2 = Generators.layered ~width:2 ~depth:2 in
  let inst2 =
    Instance.ad_hoc_of ~graph:g2
      ~structure:(Builders.global_threshold g2 ~dealer:0 1)
      ~dealer:0 ~receiver:5
  in
  Printf.printf "\nNarrower topology: %s\n"
    (Format.asprintf "%a" Solvability.pp_feasibility
       (Solvability.partial_knowledge inst2));
  (match (Cut.find_rmt_cut inst2).cut_found with
   | None -> ()
   | Some w ->
     Printf.printf "Witness: %s\n" (Format.asprintf "%a" Cut.pp_witness w);
     let v = Attack.against_rmt_pka inst2 w ~x0:0 ~x1:1 in
     Printf.printf
       "Two-face attack: run e decides %s, run e' decides %s — RMT-PKA \
        refuses to guess.\n"
       (dec v.decision_e) (dec v.decision_e'))
