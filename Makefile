# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-json outputs examples clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Regenerate the checked-in kernel benchmark record (BENCH_core.json).
bench-json:
	dune exec bench/main.exe -- core --json

examples:
	dune exec examples/quickstart.exe
	dune exec examples/sensor_grid.exe
	dune exec examples/mesh_partial_knowledge.exe
	dune exec examples/network_design.exe
	dune exec examples/poly_time_uniqueness.exe

# The deliverable records: full test log and full experiment log.
outputs:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

clean:
	dune clean
