# Convenience targets; everything is plain dune underneath.

.PHONY: all build test lint lint-baseline bench bench-json fuzz fuzz-smoke bench-check outputs examples clean

all: build

build:
	dune build @all

test:
	dune runtest

# Typedtree determinism & safety analysis over lib/ (rules R1-R5; run
# `dune exec bin/rmt_lint.exe -- rules` for the catalog).  Fails on any
# finding not pinned in lint-baseline.txt.
lint:
	dune build @check
	dune exec bin/rmt_lint.exe -- check --baseline lint-baseline.txt

# Regenerate the baseline, then edit the JUSTIFY placeholders by hand.
lint-baseline:
	dune build @check
	dune exec bin/rmt_lint.exe -- check --baseline lint-baseline.txt \
	  --update-baseline

bench:
	dune exec bench/main.exe

# Regenerate the checked-in kernel benchmark record (BENCH_core.json).
bench-json:
	dune exec bench/main.exe -- core --json

# Seeded fuzzing campaigns over instances/ (table + BENCH_attack.json).
fuzz:
	dune exec bench/main.exe -- attack --json

# Quick time-budgeted campaign per instance, as the CI fuzz-smoke job runs it.
fuzz-smoke:
	for inst in instances/*.rmt; do \
	  dune exec bin/rmt_cli.exe -- fuzz --instance $$inst \
	    --seed 2016 --attacks 500 --budget 15 \
	    --out fuzz_reproducer_$$(basename $$inst) || exit 1; \
	done

# Compare a fresh kernel record against the committed baseline (>25% fails).
bench-check:
	cp BENCH_core.json /tmp/rmt_bench_baseline.json
	dune exec bench/main.exe -- core --json
	dune exec bench/check_regression.exe -- /tmp/rmt_bench_baseline.json \
	  BENCH_core.json --threshold=0.25

examples:
	dune exec examples/quickstart.exe
	dune exec examples/sensor_grid.exe
	dune exec examples/mesh_partial_knowledge.exe
	dune exec examples/network_design.exe
	dune exec examples/poly_time_uniqueness.exe

# The deliverable records: full test log and full experiment log.
outputs:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

clean:
	dune clean
