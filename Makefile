# Convenience targets; everything is plain dune underneath.

.PHONY: all build test lint lint-clean lint-baseline bench bench-json bench-lint-json bench-sim-json bench-net-json bench-certified-json fuzz fuzz-smoke sim-smoke service-smoke bench-check outputs examples clean

all: build

build:
	dune build @all

test:
	dune runtest

# Typedtree determinism & safety analysis over lib/ (rules R1-R10; run
# `dune exec bin/rmt_lint.exe -- rules` for the catalog).  Fails on any
# finding not pinned in lint-baseline.txt.  Unchanged .cmt files are
# served from the digest-keyed cache; `make lint-clean` forces a cold run.
# The extracted protocol-model (alphabets, decision fields, symbolic
# send bounds) lands in lint-model.json, same payload CI uploads.
lint:
	dune build @check
	dune exec bin/rmt_lint.exe -- check --baseline lint-baseline.txt \
	  --cache _build/rmt-lint.cache --model-out lint-model.json

lint-clean:
	rm -f _build/rmt-lint.cache

# Regenerate the baseline, then edit the JUSTIFY placeholders by hand.
lint-baseline:
	dune build @check
	dune exec bin/rmt_lint.exe -- check --baseline lint-baseline.txt \
	  --update-baseline

bench:
	dune exec bench/main.exe

# Regenerate the checked-in kernel benchmark record (BENCH_core.json).
bench-json:
	dune exec bench/main.exe -- core --json

# Regenerate the checked-in analyzer timing record (BENCH_lint.json).
bench-lint-json:
	dune build @check
	dune exec bench/main.exe -- lint --json

# Regenerate the checked-in simulator timing record (BENCH_sim.json).
bench-sim-json:
	dune exec bench/main.exe -- sim --json

# Regenerate the checked-in transport throughput record (BENCH_net.json).
bench-net-json:
	dune exec bench/main.exe -- net --json

# Regenerate the checked-in certification overhead + frontier record
# (BENCH_certified.json).
bench-certified-json:
	dune exec bench/main.exe -- certified --json

# Seeded fuzzing campaigns over instances/ (table + BENCH_attack.json).
fuzz:
	dune exec bench/main.exe -- attack --json

# Quick time-budgeted campaign per instance, as the CI fuzz-smoke job runs it.
fuzz-smoke:
	for inst in instances/*.rmt; do \
	  dune exec bin/rmt_cli.exe -- fuzz --instance $$inst \
	    --seed 2016 --attacks 500 --budget 15 \
	    --out fuzz_reproducer_$$(basename $$inst) || exit 1; \
	done

# Time-budgeted schedule sweep per instance, as the CI sim-smoke job runs
# it: every protocol under seeded timely schedules (where Theorem 4's
# safety is scheduler-independent), shrunk reproducer pair on violation.
# 4 instances x 3 protocols x 200 schedules >= 500 trials overall.
#
# Certified lane: the certified family must stay safe on lossy/async
# schedules *inside* its declared envelope (bound 3, drops 2 =
# Envelope.default).  3 instances x 2 cert protocols x 400 schedules =
# 2400 in-envelope trials; a violation writes a shrunk reproducer pair
# and fails the lane.
#
# Boundary lane: outside the envelope the same protocol must still be
# violable — otherwise the in-envelope claim is vacuous.  The seeded
# out-of-envelope sweep (delay 6, drops 12, aggressive lateness/loss)
# is required to find a violation, shrink it, and leave the reproducer
# pair behind; the lane fails if the sweep exits clean.
sim-smoke:
	for inst in instances/*.rmt; do \
	  dune exec bin/rmt_cli.exe -- sim --instance $$inst \
	    --seed 2016 --schedules 200 --budget 15 --shrink \
	    --out sim_reproducer_$$(basename $$inst) || exit 1; \
	done
	for inst in instances/figure1_basic.rmt instances/path4_unsolvable.rmt \
	    test/protocols/fixtures/boundary.rmt; do \
	  dune exec bin/rmt_cli.exe -- sim --instance $$inst \
	    --protocol certified --seed 2016 --schedules 400 \
	    --bound 3 --drops 2 --shrink \
	    --out sim_reproducer_cert_$$(basename $$inst) || exit 1; \
	done
	if dune exec bin/rmt_cli.exe -- sim \
	    --instance test/protocols/fixtures/boundary.rmt \
	    --protocol cert-pka --seed 19 --schedules 60 \
	    --bound 6 --drops 12 --late 0.6 --loss 0.4 --shrink \
	    --out sim_reproducer_boundary.rmt; then \
	  echo "sim-smoke: out-of-envelope sweep found no violation"; exit 1; \
	else \
	  test -f sim_reproducer_boundary.rmt && test -f sim_reproducer_boundary.sched; \
	fi

# Replay the committed delta/query stream through the solvability
# service and diff against the golden transcript, as the CI
# service-smoke job runs it.
service-smoke:
	dune exec bin/rmt_cli.exe -- serve-solve \
	  --instance instances/onion_solvable.rmt \
	  --replay instances/onion_solvable.stream \
	  > /tmp/rmt_service_smoke.out
	diff -u instances/onion_solvable.golden /tmp/rmt_service_smoke.out

# Compare a fresh kernel record against the committed baseline (>25% fails).
# The analyzer record is wall-clock (not bechamel-sampled), so its gate is
# deliberately loose: only a >3x blowup fails.
bench-check:
	cp BENCH_core.json /tmp/rmt_bench_baseline.json
	dune exec bench/main.exe -- core --json
	dune exec bench/check_regression.exe -- /tmp/rmt_bench_baseline.json \
	  BENCH_core.json --threshold=0.25 \
	  --prefix-threshold=rmt/hc/:1.0 --prefix-threshold=rmt/delta/:1.0
	cp BENCH_lint.json /tmp/rmt_bench_lint_baseline.json
	dune exec bench/main.exe -- lint --json
	dune exec bench/check_regression.exe -- /tmp/rmt_bench_lint_baseline.json \
	  BENCH_lint.json --prefix-threshold=rmt/lint/:2.0
	cp BENCH_sim.json /tmp/rmt_bench_sim_baseline.json
	dune exec bench/main.exe -- sim --json
	dune exec bench/check_regression.exe -- /tmp/rmt_bench_sim_baseline.json \
	  BENCH_sim.json --threshold=2.0
	cp BENCH_net.json /tmp/rmt_bench_net_baseline.json
	dune exec bench/main.exe -- net --json
	dune exec bench/check_regression.exe -- /tmp/rmt_bench_net_baseline.json \
	  BENCH_net.json --prefix-threshold=rmt/net/:2.0
	cp BENCH_certified.json /tmp/rmt_bench_certified_baseline.json
	dune exec bench/main.exe -- certified --json
	dune exec bench/check_regression.exe -- /tmp/rmt_bench_certified_baseline.json \
	  BENCH_certified.json --prefix-threshold=rmt/cert/:2.0

examples:
	dune exec examples/quickstart.exe
	dune exec examples/sensor_grid.exe
	dune exec examples/mesh_partial_knowledge.exe
	dune exec examples/network_design.exe
	dune exec examples/poly_time_uniqueness.exe

# The deliverable records: full test log and full experiment log.
outputs:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

clean:
	dune clean
