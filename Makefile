# Convenience targets; everything is plain dune underneath.

.PHONY: all build test lint lint-clean lint-baseline bench bench-json bench-lint-json bench-sim-json bench-net-json fuzz fuzz-smoke sim-smoke service-smoke bench-check outputs examples clean

all: build

build:
	dune build @all

test:
	dune runtest

# Typedtree determinism & safety analysis over lib/ (rules R1-R10; run
# `dune exec bin/rmt_lint.exe -- rules` for the catalog).  Fails on any
# finding not pinned in lint-baseline.txt.  Unchanged .cmt files are
# served from the digest-keyed cache; `make lint-clean` forces a cold run.
# The extracted protocol-model (alphabets, decision fields, symbolic
# send bounds) lands in lint-model.json, same payload CI uploads.
lint:
	dune build @check
	dune exec bin/rmt_lint.exe -- check --baseline lint-baseline.txt \
	  --cache _build/rmt-lint.cache --model-out lint-model.json

lint-clean:
	rm -f _build/rmt-lint.cache

# Regenerate the baseline, then edit the JUSTIFY placeholders by hand.
lint-baseline:
	dune build @check
	dune exec bin/rmt_lint.exe -- check --baseline lint-baseline.txt \
	  --update-baseline

bench:
	dune exec bench/main.exe

# Regenerate the checked-in kernel benchmark record (BENCH_core.json).
bench-json:
	dune exec bench/main.exe -- core --json

# Regenerate the checked-in analyzer timing record (BENCH_lint.json).
bench-lint-json:
	dune build @check
	dune exec bench/main.exe -- lint --json

# Regenerate the checked-in simulator timing record (BENCH_sim.json).
bench-sim-json:
	dune exec bench/main.exe -- sim --json

# Regenerate the checked-in transport throughput record (BENCH_net.json).
bench-net-json:
	dune exec bench/main.exe -- net --json

# Seeded fuzzing campaigns over instances/ (table + BENCH_attack.json).
fuzz:
	dune exec bench/main.exe -- attack --json

# Quick time-budgeted campaign per instance, as the CI fuzz-smoke job runs it.
fuzz-smoke:
	for inst in instances/*.rmt; do \
	  dune exec bin/rmt_cli.exe -- fuzz --instance $$inst \
	    --seed 2016 --attacks 500 --budget 15 \
	    --out fuzz_reproducer_$$(basename $$inst) || exit 1; \
	done

# Time-budgeted schedule sweep per instance, as the CI sim-smoke job runs
# it: every protocol under seeded timely schedules (where Theorem 4's
# safety is scheduler-independent), shrunk reproducer pair on violation.
# 4 instances x 3 protocols x 200 schedules >= 500 trials overall.
sim-smoke:
	for inst in instances/*.rmt; do \
	  dune exec bin/rmt_cli.exe -- sim --instance $$inst \
	    --seed 2016 --schedules 200 --budget 15 --shrink \
	    --out sim_reproducer_$$(basename $$inst) || exit 1; \
	done

# Replay the committed delta/query stream through the solvability
# service and diff against the golden transcript, as the CI
# service-smoke job runs it.
service-smoke:
	dune exec bin/rmt_cli.exe -- serve-solve \
	  --instance instances/onion_solvable.rmt \
	  --replay instances/onion_solvable.stream \
	  > /tmp/rmt_service_smoke.out
	diff -u instances/onion_solvable.golden /tmp/rmt_service_smoke.out

# Compare a fresh kernel record against the committed baseline (>25% fails).
# The analyzer record is wall-clock (not bechamel-sampled), so its gate is
# deliberately loose: only a >3x blowup fails.
bench-check:
	cp BENCH_core.json /tmp/rmt_bench_baseline.json
	dune exec bench/main.exe -- core --json
	dune exec bench/check_regression.exe -- /tmp/rmt_bench_baseline.json \
	  BENCH_core.json --threshold=0.25 \
	  --prefix-threshold=rmt/hc/:1.0 --prefix-threshold=rmt/delta/:1.0
	cp BENCH_lint.json /tmp/rmt_bench_lint_baseline.json
	dune exec bench/main.exe -- lint --json
	dune exec bench/check_regression.exe -- /tmp/rmt_bench_lint_baseline.json \
	  BENCH_lint.json --prefix-threshold=rmt/lint/:2.0
	cp BENCH_sim.json /tmp/rmt_bench_sim_baseline.json
	dune exec bench/main.exe -- sim --json
	dune exec bench/check_regression.exe -- /tmp/rmt_bench_sim_baseline.json \
	  BENCH_sim.json --threshold=2.0
	cp BENCH_net.json /tmp/rmt_bench_net_baseline.json
	dune exec bench/main.exe -- net --json
	dune exec bench/check_regression.exe -- /tmp/rmt_bench_net_baseline.json \
	  BENCH_net.json --prefix-threshold=rmt/net/:2.0

examples:
	dune exec examples/quickstart.exe
	dune exec examples/sensor_grid.exe
	dune exec examples/mesh_partial_knowledge.exe
	dune exec examples/network_design.exe
	dune exec examples/poly_time_uniqueness.exe

# The deliverable records: full test log and full experiment log.
outputs:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

clean:
	dune clean
