open Rmt_base

let to_dot ?(highlight = []) ?(graph_name = "g") g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" graph_name);
  Buffer.add_string buf "  node [shape=circle];\n";
  Nodeset.iter
    (fun v ->
      match List.assoc_opt v highlight with
      | Some color ->
        Buffer.add_string buf
          (Printf.sprintf "  %d [style=filled, fillcolor=\"%s\"];\n" v color)
      | None -> Buffer.add_string buf (Printf.sprintf "  %d;\n" v))
    (Graph.nodes g);
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let instance_dot ~dealer ~receiver ?(corrupted = Nodeset.empty) g =
  let highlight =
    ((dealer, "palegreen") :: (receiver, "lightblue")
    :: Nodeset.fold (fun v acc -> (v, "salmon") :: acc) corrupted [])
  in
  to_dot ~highlight g
