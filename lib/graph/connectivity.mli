(** Reachability, components, distances. *)

open Rmt_base

val reachable_from : ?avoiding:Nodeset.t -> Graph.t -> int -> Nodeset.t
(** All nodes reachable from the source in the subgraph with [avoiding]
    removed.  Includes the source itself (when not avoided); empty when the
    source is absent or avoided. *)

val component_of : ?avoiding:Nodeset.t -> Graph.t -> int -> Nodeset.t
(** Synonym of [reachable_from]; the connected component of the node. *)

val components : Graph.t -> Nodeset.t list
(** All connected components, each as a node set. *)

val is_connected : Graph.t -> bool
(** True for the empty graph. *)

val connected_avoiding : Graph.t -> int -> int -> Nodeset.t -> bool
(** [connected_avoiding g s t c]: is there an [s]–[t] path in [g − c]? *)

val distances_from : Graph.t -> int -> (int * int) list
(** BFS distances [(node, dist)] from the source, source included at 0. *)

val distance : Graph.t -> int -> int -> int option
(** Hop distance, [None] when disconnected. *)

val eccentricity : Graph.t -> int -> int option
(** Max distance from the node to any other; [None] when the graph is
    disconnected from it. *)

val diameter : Graph.t -> int option
(** [None] when disconnected or empty. *)

val is_cut : Graph.t -> int -> int -> Nodeset.t -> bool
(** [is_cut g d r c]: [c] is a node cut separating [d] from [r] — i.e.
    [d, r ∉ c] and no [d]–[r] path survives removing [c].  False when [d]
    or [r] belongs to [c] or is absent from [g]. *)

val min_vertex_cut : Graph.t -> int -> int -> int
(** Size of a minimum [d]–[r] vertex cut (Menger), computed with
    unit-capacity node-split max-flow.  Returns [max_int] when [d] and [r]
    are adjacent or equal (no cut exists). *)
