(** Topology generators used by tests, examples and benchmarks.

    All generators number nodes [0 .. n-1] unless stated otherwise and are
    deterministic given their arguments (random ones take an explicit
    {!Rmt_base.Prng.t}). *)

open Rmt_base

val path_graph : int -> Graph.t
(** [0 - 1 - ... - (n-1)]. *)

val cycle : int -> Graph.t
(** Requires [n >= 3]. *)

val complete : int -> Graph.t

val star : int -> Graph.t
(** Center [0], leaves [1 .. n-1]. *)

val grid : int -> int -> Graph.t
(** [grid rows cols]; node [(i,j)] has id [i*cols + j]. *)

val king_grid : int -> int -> Graph.t
(** Grid plus diagonal links (the king's-move graph) — a denser sensor
    field where interior nodes have eight neighbors. *)

val layered : width:int -> depth:int -> Graph.t
(** The "onion" topology: node 0 (dealer side), then [depth] layers of
    [width] nodes with complete bipartite connections between consecutive
    layers, then a final node (id [1 + width*depth]).  Classic RMT/broadcast
    benchmark family: every D–R path crosses every layer. *)

val basic_instance_graph : int -> Graph.t
(** Figure 1's family [G']: dealer [0], middle set [A(G) = {1..m}],
    receiver [m+1]; edges only dealer–middle and middle–receiver. *)

val random_gnp : Prng.t -> int -> float -> Graph.t
(** Erdős–Rényi [G(n,p)]. *)

val random_connected_gnp : Prng.t -> int -> float -> Graph.t
(** [G(n,p)] conditioned on connectivity: resamples until connected
    (raises [Failure] after 10_000 attempts — choose a sensible [p]). *)

val random_regular_ish : Prng.t -> int -> int -> Graph.t
(** Union of [d] uniformly random perfect-matching-like pairings; the
    result has average degree close to [d] and is usually connected for
    [d >= 3].  Not exactly regular — good enough as a workload. *)

val communities : Prng.t -> blocks:int -> size:int -> p_in:float -> p_out:float -> Graph.t
(** Stochastic block model: [blocks] groups of [size] nodes, intra-block
    edge probability [p_in], inter-block [p_out]. *)

val ladder : int -> Graph.t
(** Two parallel paths of length [n] with rungs: 2n nodes. *)

val hypercube : int -> Graph.t
(** The [d]-dimensional hypercube: [2^d] nodes, ids are bit vectors,
    edges between Hamming-distance-1 pairs.  Requires [0 <= d <= 16]. *)

val binary_tree : int -> Graph.t
(** Complete binary tree of the given depth: root [0], node [v]'s children
    are [2v+1] and [2v+2].  Depth 0 is a single node. *)

val barbell : int -> Graph.t
(** Two [K_n] cliques joined by a single bridge edge: [2n] nodes, the
    bridge connects node [n-1] to node [n].  The canonical
    single-point-of-failure topology. *)
