(** Enumeration of connected node subsets.

    All the cut notions of the paper (RMT-cut, RMT Z-pp cut, adversary
    cover) quantify over cuts [C] whose receiver-side component is some
    connected set [B ∋ R]; the candidate cut is then the boundary [N(B)].
    This module enumerates exactly those [B].  The enumeration is
    exponential in the worst case, so every entry point takes a budget and
    reports exhaustion instead of silently truncating. *)

open Rmt_base

type outcome = {
  complete : bool;  (** false when the budget was exhausted *)
  visited : int;  (** number of subsets enumerated *)
}

val connected_supersets :
  ?budget:int ->
  Graph.t ->
  seed:int ->
  forbidden:Nodeset.t ->
  (Nodeset.t -> bool) ->
  outcome
(** [connected_supersets g ~seed ~forbidden f] applies [f] to every
    connected subset [B] of [nodes g − forbidden] with [seed ∈ B], each
    exactly once.  Stops early (with [complete = true]) as soon as [f]
    returns [true].  The default budget is [2_000_000] visited subsets.

    The enumeration is the standard binary-choice recursion on the
    frontier: grow [B] one boundary node at a time, branching on
    include/exclude, which yields every connected superset exactly once. *)

val connected_supersets_acc :
  ?budget:int ->
  Graph.t ->
  seed:int ->
  forbidden:Nodeset.t ->
  init:'acc ->
  extend:('acc -> int -> 'acc) ->
  (Nodeset.t -> 'acc -> bool) ->
  outcome
(** Like {!connected_supersets}, threading an accumulator along each
    growth branch: [extend acc c] is called when node [c] joins [B].  Used
    to maintain per-[B] data (joint views, joint adversary structures)
    incrementally instead of recomputing them from scratch for every
    enumerated subset.  [init] is the accumulator for [{seed}] — i.e. it
    must already account for the seed node. *)

val find_connected_superset :
  ?budget:int ->
  Graph.t ->
  seed:int ->
  forbidden:Nodeset.t ->
  (Nodeset.t -> bool) ->
  Nodeset.t option * bool
(** First [B] satisfying the predicate, if any; the boolean is the
    completeness flag (a [None] with [false] means "unknown: budget ran
    out"). *)
