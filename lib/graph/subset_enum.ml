open Rmt_base

type outcome = {
  complete : bool;
  visited : int;
}

exception Stop
exception Out_of_budget

(* Enumerate connected supersets of {seed} exactly once each: emit B, then
   for each boundary candidate c (in a fixed order) recurse on B ∪ {c},
   excluding c from all later branches at this level.  This is the standard
   polynomial-delay connected-subgraph enumeration. *)
let connected_supersets ?(budget = 2_000_000) g ~seed ~forbidden f =
  if (not (Graph.mem_node seed g)) || Nodeset.mem seed forbidden then
    { complete = true; visited = 0 }
  else begin
    let visited = ref 0 in
    let rec go b excluded =
      incr visited;
      if !visited > budget then raise Out_of_budget;
      if f b then raise Stop;
      let candidates =
        Nodeset.diff (Nodeset.diff (Graph.neighborhood_of_set b g) excluded)
          forbidden
      in
      let excluded = ref excluded in
      Nodeset.iter
        (fun c ->
          excluded := Nodeset.add c !excluded;
          go (Nodeset.add c b) !excluded)
        candidates
    in
    let complete =
      try
        go (Nodeset.singleton seed) Nodeset.empty;
        true
      with
      | Stop -> true
      | Out_of_budget -> false
    in
    { complete; visited = !visited }
  end

let connected_supersets_acc ?(budget = 2_000_000) g ~seed ~forbidden ~init
    ~extend f =
  if (not (Graph.mem_node seed g)) || Nodeset.mem seed forbidden then
    { complete = true; visited = 0 }
  else begin
    let visited = ref 0 in
    let rec go b acc excluded =
      incr visited;
      if !visited > budget then raise Out_of_budget;
      if f b acc then raise Stop;
      let candidates =
        Nodeset.diff (Nodeset.diff (Graph.neighborhood_of_set b g) excluded)
          forbidden
      in
      let excluded = ref excluded in
      Nodeset.iter
        (fun c ->
          excluded := Nodeset.add c !excluded;
          go (Nodeset.add c b) (extend acc c) !excluded)
        candidates
    in
    let complete =
      try
        go (Nodeset.singleton seed) init Nodeset.empty;
        true
      with
      | Stop -> true
      | Out_of_budget -> false
    in
    { complete; visited = !visited }
  end

let find_connected_superset ?budget g ~seed ~forbidden pred =
  let found = ref None in
  let outcome =
    connected_supersets ?budget g ~seed ~forbidden (fun b ->
        if pred b then begin
          found := Some b;
          true
        end
        else false)
  in
  (!found, outcome.complete)
