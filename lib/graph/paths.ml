open Rmt_base

type path = int list

let is_simple p =
  let rec go seen = function
    | [] -> true
    | v :: rest -> (not (Nodeset.mem v seen)) && go (Nodeset.add v seen) rest
  in
  go Nodeset.empty p

let is_path_in g p =
  is_simple p
  &&
  let rec go = function
    | [] -> true
    | [ v ] -> Graph.mem_node v g
    | u :: (v :: _ as rest) -> Graph.mem_edge u v g && go rest
  in
  go p

let mentions p = Nodeset.of_list p

exception Budget_exhausted

let all_simple_paths ?(budget = 200_000) g s t =
  if not (Graph.mem_node s g && Graph.mem_node t g) then ([], true)
  else begin
    let remaining = ref budget in
    let out = ref [] in
    (* DFS over prefixes; [trail] is reversed. *)
    let rec go v trail visited =
      if !remaining <= 0 then raise Budget_exhausted;
      decr remaining;
      if v = t then out := List.rev (v :: trail) :: !out
      else
        Nodeset.iter
          (fun u ->
            if not (Nodeset.mem u visited) then
              go u (v :: trail) (Nodeset.add u visited))
          (Graph.neighbors v g)
    in
    let complete =
      if s = t then begin
        out := [ [ s ] ];
        true
      end
      else
        try
          go s [] (Nodeset.singleton s);
          true
        with Budget_exhausted -> false
    in
    (List.rev !out, complete)
  end

exception Found of path

let find_simple_path ?(budget = 200_000) g s t pred =
  if not (Graph.mem_node s g && Graph.mem_node t g) then (None, true)
  else begin
    let remaining = ref budget in
    let rec go v trail visited =
      if !remaining <= 0 then raise Budget_exhausted;
      decr remaining;
      if v = t then begin
        let p = List.rev (v :: trail) in
        if pred p then raise (Found p)
      end
      else
        Nodeset.iter
          (fun u ->
            if not (Nodeset.mem u visited) then
              go u (v :: trail) (Nodeset.add u visited))
          (Graph.neighbors v g)
    in
    try
      if s = t then begin
        if pred [ s ] then (Some [ s ], true) else (None, true)
      end
      else begin
        go s [] (Nodeset.singleton s);
        (None, true)
      end
    with
    | Found p -> (Some p, true)
    | Budget_exhausted -> (None, false)
  end

let count_simple_paths ?budget g s t =
  let ps, complete = all_simple_paths ?budget g s t in
  (List.length ps, complete)

let shortest_path g s t =
  if not (Graph.mem_node s g && Graph.mem_node t g) then None
  else begin
    let parent = Hashtbl.create 16 in
    Hashtbl.replace parent s s;
    let queue = Queue.create () in
    Queue.add s queue;
    let found = ref (s = t) in
    while (not !found) && not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      Nodeset.iter
        (fun u ->
          if not (Hashtbl.mem parent u) then begin
            Hashtbl.replace parent u v;
            if u = t then found := true else Queue.add u queue
          end)
        (Graph.neighbors v g)
    done;
    if not (Hashtbl.mem parent t) then None
    else begin
      let rec build v acc =
        if v = s then s :: acc else build (Hashtbl.find parent v) (v :: acc)
      in
      Some (build t [])
    end
  end

let pp_path ppf p =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "->")
    Format.pp_print_int ppf p

let disjoint_paths_lower_bound g s t =
  let rec go g count =
    match shortest_path g s t with
    | None -> count
    | Some p ->
      let interior =
        List.filter (fun v -> v <> s && v <> t) p |> Nodeset.of_list
      in
      if Nodeset.is_empty interior then
        (* the direct edge: we only remove nodes, so count it and stop *)
        count + 1
      else
        let g' =
          Nodeset.fold (fun v acc -> Graph.remove_node v acc) interior g
        in
        go g' (count + 1)
  in
  go g 0
