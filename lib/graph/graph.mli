(** Undirected graphs over integer node identifiers.

    The node set is explicit and need not be contiguous: partial views
    [γ(v)] are arbitrary subgraphs of the communication graph, and a
    Byzantine adversary may report {e fictitious} nodes with identifiers
    outside the real graph, so the representation must accommodate sparse
    and growing id spaces.  Graphs are immutable. *)

open Rmt_base

type t

(** {1 Construction} *)

val empty : t

val add_node : int -> t -> t
(** Idempotent.  @raise Invalid_argument on a negative id. *)

val add_nodes : Nodeset.t -> t -> t

val add_edge : int -> int -> t -> t
(** Adds both endpoints if absent.  Self-loops are rejected with
    [Invalid_argument]; channels connect distinct parties. *)

val remove_node : int -> t -> t
(** Removes the node and all incident edges. *)

val of_edges : (int * int) list -> t

val of_nodes_edges : Nodeset.t -> (int * int) list -> t
(** Node set given explicitly so isolated nodes survive. *)

(** {1 Queries} *)

val nodes : t -> Nodeset.t

val num_nodes : t -> int

val num_edges : t -> int

val mem_node : int -> t -> bool

val mem_edge : int -> int -> t -> bool

val neighbors : int -> t -> Nodeset.t
(** Open neighborhood [N(v)]; empty for absent nodes. *)

val closed_neighborhood : int -> t -> Nodeset.t
(** [N(v) ∪ {v}]. *)

val neighborhood_of_set : Nodeset.t -> t -> Nodeset.t
(** [N(S)]: nodes outside [S] adjacent to some node of [S]. *)

val degree : int -> t -> int

val edges : t -> (int * int) list
(** Each edge once, as [(u, v)] with [u < v], sorted. *)

val equal : t -> t -> bool

(** {1 Subgraphs and combinations} *)

val induced : Nodeset.t -> t -> t
(** Subgraph induced by the given node set (absent ids ignored). *)

val union : t -> t -> t
(** Union of node sets and edge sets — the joint view [γ(S)] operation. *)

val is_subgraph : t -> t -> bool
(** [is_subgraph h g]: every node and edge of [h] is in [g]. *)

val restrict_to_radius : int -> int -> t -> t
(** [restrict_to_radius v k g] is the subgraph induced by the ball of
    radius [k] around [v] — the [k]-neighborhood view.  Radius [0] gives
    the single node [v]; radius [1] gives [v], its neighbors and all edges
    among them. *)

(** {1 Formatting} *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
