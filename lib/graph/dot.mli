(** Graphviz (DOT) export, for inspecting instances and documenting
    experiments. *)

open Rmt_base

val to_dot :
  ?highlight:(int * string) list ->
  ?graph_name:string ->
  Graph.t ->
  string
(** [to_dot g] renders an undirected DOT graph.  [highlight] assigns fill
    colors to specific nodes (e.g. dealer, receiver, a corruption set). *)

val instance_dot :
  dealer:int -> receiver:int -> ?corrupted:Nodeset.t -> Graph.t -> string
(** Convenience: dealer green, receiver blue, corrupted nodes red. *)
