open Rmt_base

let path_graph n =
  let g = Graph.add_nodes (Nodeset.range 0 n) Graph.empty in
  let rec go g i = if i >= n - 1 then g else go (Graph.add_edge i (i + 1) g) (i + 1) in
  go g 0

let cycle n =
  if n < 3 then invalid_arg "Generators.cycle: need n >= 3";
  Graph.add_edge (n - 1) 0 (path_graph n)

let complete n =
  let g = ref (Graph.add_nodes (Nodeset.range 0 n) Graph.empty) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      g := Graph.add_edge i j !g
    done
  done;
  !g

let star n =
  let g = ref (Graph.add_nodes (Nodeset.range 0 n) Graph.empty) in
  for i = 1 to n - 1 do
    g := Graph.add_edge 0 i !g
  done;
  !g

let grid rows cols =
  let id i j = (i * cols) + j in
  let g = ref (Graph.add_nodes (Nodeset.range 0 (rows * cols)) Graph.empty) in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if j + 1 < cols then g := Graph.add_edge (id i j) (id i (j + 1)) !g;
      if i + 1 < rows then g := Graph.add_edge (id i j) (id (i + 1) j) !g
    done
  done;
  !g

let king_grid rows cols =
  let id i j = (i * cols) + j in
  let g = ref (grid rows cols) in
  for i = 0 to rows - 2 do
    for j = 0 to cols - 1 do
      if j + 1 < cols then g := Graph.add_edge (id i j) (id (i + 1) (j + 1)) !g;
      if j > 0 then g := Graph.add_edge (id i j) (id (i + 1) (j - 1)) !g
    done
  done;
  !g

let layered ~width ~depth =
  if width < 1 || depth < 1 then invalid_arg "Generators.layered";
  let node_of layer k = 1 + ((layer - 1) * width) + k in
  let g = ref Graph.empty in
  (* dealer 0 to first layer *)
  for k = 0 to width - 1 do
    g := Graph.add_edge 0 (node_of 1 k) !g
  done;
  for layer = 1 to depth - 1 do
    for a = 0 to width - 1 do
      for b = 0 to width - 1 do
        g := Graph.add_edge (node_of layer a) (node_of (layer + 1) b) !g
      done
    done
  done;
  let receiver = 1 + (width * depth) in
  for k = 0 to width - 1 do
    g := Graph.add_edge (node_of depth k) receiver !g
  done;
  !g

let basic_instance_graph m =
  if m < 1 then invalid_arg "Generators.basic_instance_graph";
  let g = ref Graph.empty in
  for i = 1 to m do
    g := Graph.add_edge 0 i !g;
    g := Graph.add_edge i (m + 1) !g
  done;
  !g

let random_gnp rng n p =
  let g = ref (Graph.add_nodes (Nodeset.range 0 n) Graph.empty) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Prng.float rng 1.0 < p then g := Graph.add_edge i j !g
    done
  done;
  !g

let random_connected_gnp rng n p =
  let rec go attempts =
    if attempts > 10_000 then
      failwith "Generators.random_connected_gnp: could not sample a connected graph"
    else
      let g = random_gnp rng n p in
      if Connectivity.is_connected g then g else go (attempts + 1)
  in
  go 0

let random_regular_ish rng n d =
  (* union of d random near-perfect matchings: degree close to d *)
  let g = ref (Graph.add_nodes (Nodeset.range 0 n) Graph.empty) in
  for _ = 1 to d do
    let perm = Array.init n Fun.id in
    Prng.shuffle rng perm;
    let i = ref 0 in
    while !i + 1 < n do
      g := Graph.add_edge perm.(!i) perm.(!i + 1) !g;
      i := !i + 2
    done
  done;
  !g

let communities rng ~blocks ~size ~p_in ~p_out =
  let n = blocks * size in
  let block v = v / size in
  let g = ref (Graph.add_nodes (Nodeset.range 0 n) Graph.empty) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let p = if block i = block j then p_in else p_out in
      if Prng.float rng 1.0 < p then g := Graph.add_edge i j !g
    done
  done;
  !g

let ladder n =
  if n < 1 then invalid_arg "Generators.ladder";
  let g = ref (Graph.add_nodes (Nodeset.range 0 (2 * n)) Graph.empty) in
  for i = 0 to n - 2 do
    g := Graph.add_edge i (i + 1) !g;
    g := Graph.add_edge (n + i) (n + i + 1) !g
  done;
  for i = 0 to n - 1 do
    g := Graph.add_edge i (n + i) !g
  done;
  !g

let hypercube d =
  if d < 0 || d > 16 then invalid_arg "Generators.hypercube";
  let n = 1 lsl d in
  let g = ref (Graph.add_nodes (Nodeset.range 0 n) Graph.empty) in
  for v = 0 to n - 1 do
    for bit = 0 to d - 1 do
      let u = v lxor (1 lsl bit) in
      if v < u then g := Graph.add_edge v u !g
    done
  done;
  !g

let binary_tree depth =
  if depth < 0 then invalid_arg "Generators.binary_tree";
  let n = (1 lsl (depth + 1)) - 1 in
  let g = ref (Graph.add_nodes (Nodeset.range 0 n) Graph.empty) in
  for v = 0 to n - 1 do
    List.iter
      (fun c -> if c < n then g := Graph.add_edge v c !g)
      [ (2 * v) + 1; (2 * v) + 2 ]
  done;
  !g

let barbell n =
  if n < 2 then invalid_arg "Generators.barbell";
  let clique offset g =
    let g = ref g in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        g := Graph.add_edge (offset + i) (offset + j) !g
      done
    done;
    !g
  in
  Graph.add_edge (n - 1) n (clique n (clique 0 Graph.empty))
