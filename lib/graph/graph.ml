open Rmt_base

(* Adjacency is an array indexed by node id.  The array length is a
   capacity, not the node count: ids are sparse.  All public operations are
   persistent; construction helpers mutate a private copy. *)

type t = {
  nodes : Nodeset.t;
  adj : Nodeset.t array;
}

let empty = { nodes = Nodeset.empty; adj = [||] }

let ensure_capacity g id =
  if id < Array.length g.adj then g.adj
  else begin
    let cap = max (id + 1) (2 * Array.length g.adj) in
    let adj = Array.make cap Nodeset.empty in
    Array.blit g.adj 0 adj 0 (Array.length g.adj);
    adj
  end

let add_node v g =
  if v < 0 then invalid_arg "Graph.add_node: negative id";
  if Nodeset.mem v g.nodes then g
  else { nodes = Nodeset.add v g.nodes; adj = ensure_capacity g v }

let add_nodes s g = Nodeset.fold add_node s g

let mem_node v g = Nodeset.mem v g.nodes

let neighbors v g =
  if v >= 0 && v < Array.length g.adj then g.adj.(v) else Nodeset.empty

let mem_edge u v g = Nodeset.mem v (neighbors u g)

let add_edge u v g =
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if mem_edge u v g then g
  else begin
    let g = add_node u (add_node v g) in
    let adj = Array.copy g.adj in
    adj.(u) <- Nodeset.add v adj.(u);
    adj.(v) <- Nodeset.add u adj.(v);
    { g with adj }
  end

let remove_node v g =
  if not (mem_node v g) then g
  else begin
    let adj = Array.copy g.adj in
    Nodeset.iter (fun u -> adj.(u) <- Nodeset.remove v adj.(u)) adj.(v);
    adj.(v) <- Nodeset.empty;
    { nodes = Nodeset.remove v g.nodes; adj }
  end

let of_edges es = List.fold_left (fun g (u, v) -> add_edge u v g) empty es

let of_nodes_edges ns es = add_nodes ns (of_edges es)

let nodes g = g.nodes

let num_nodes g = Nodeset.size g.nodes

let num_edges g =
  Nodeset.fold (fun v acc -> acc + Nodeset.size g.adj.(v)) g.nodes 0 / 2

let closed_neighborhood v g = Nodeset.add v (neighbors v g)

let neighborhood_of_set s g =
  let all =
    Nodeset.fold (fun v acc -> Nodeset.union acc (neighbors v g)) s Nodeset.empty
  in
  Nodeset.diff all s

let degree v g = Nodeset.size (neighbors v g)

let edges g =
  Nodeset.fold
    (fun v acc ->
      Nodeset.fold
        (fun u acc -> if v < u then (v, u) :: acc else acc)
        (neighbors v g) acc)
    g.nodes []
  |> List.sort (fun (a1, b1) (a2, b2) ->
         let c = Int.compare a1 a2 in
         if c <> 0 then c else Int.compare b1 b2)

let equal g h =
  Nodeset.equal g.nodes h.nodes
  && Nodeset.for_all (fun v -> Nodeset.equal (neighbors v g) (neighbors v h)) g.nodes

let induced s g =
  let keep = Nodeset.inter s g.nodes in
  let adj = Array.make (Array.length g.adj) Nodeset.empty in
  Nodeset.iter (fun v -> adj.(v) <- Nodeset.inter g.adj.(v) keep) keep;
  { nodes = keep; adj }

let union g h =
  let cap = max (Array.length g.adj) (Array.length h.adj) in
  let adj = Array.make cap Nodeset.empty in
  let both = Nodeset.union g.nodes h.nodes in
  Nodeset.iter
    (fun v -> adj.(v) <- Nodeset.union (neighbors v g) (neighbors v h))
    both;
  { nodes = both; adj }

let is_subgraph h g =
  Nodeset.subset h.nodes g.nodes
  && Nodeset.for_all (fun v -> Nodeset.subset (neighbors v h) (neighbors v g)) h.nodes

let restrict_to_radius v k g =
  if not (mem_node v g) then empty
  else begin
    let ball = ref (Nodeset.singleton v) in
    let frontier = ref (Nodeset.singleton v) in
    for _ = 1 to k do
      let next = Nodeset.diff (neighborhood_of_set !frontier g) !ball in
      ball := Nodeset.union !ball next;
      frontier := next
    done;
    induced !ball g
  end

let pp ppf g =
  Format.fprintf ppf "@[<v>graph %d nodes %d edges@,nodes: %a@,edges: %a@]"
    (num_nodes g) (num_edges g) Nodeset.pp g.nodes
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
       (fun ppf (u, v) -> Format.fprintf ppf "%d-%d" u v))
    (edges g)

let to_string g = Format.asprintf "%a" pp g
