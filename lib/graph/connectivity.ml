open Rmt_base

let reachable_from ?(avoiding = Nodeset.empty) g src =
  if (not (Graph.mem_node src g)) || Nodeset.mem src avoiding then
    Nodeset.empty
  else begin
    let visited = ref (Nodeset.singleton src) in
    let queue = Queue.create () in
    Queue.add src queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      Nodeset.iter
        (fun u ->
          if (not (Nodeset.mem u !visited)) && not (Nodeset.mem u avoiding)
          then begin
            visited := Nodeset.add u !visited;
            Queue.add u queue
          end)
        (Graph.neighbors v g)
    done;
    !visited
  end

let component_of ?avoiding g v = reachable_from ?avoiding g v

let components g =
  let remaining = ref (Graph.nodes g) in
  let out = ref [] in
  while not (Nodeset.is_empty !remaining) do
    match Nodeset.choose_opt !remaining with
    | None -> ()
    | Some v ->
      let comp = reachable_from g v in
      out := comp :: !out;
      remaining := Nodeset.diff !remaining comp
  done;
  List.rev !out

let is_connected g =
  match Nodeset.choose_opt (Graph.nodes g) with
  | None -> true
  | Some v -> Nodeset.equal (reachable_from g v) (Graph.nodes g)

let connected_avoiding g s t c =
  Nodeset.mem t (reachable_from ~avoiding:c g s)

let distances_from g src =
  if not (Graph.mem_node src g) then []
  else begin
    let dist = Hashtbl.create 16 in
    Hashtbl.replace dist src 0;
    let queue = Queue.create () in
    Queue.add src queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      let dv = Hashtbl.find dist v in
      Nodeset.iter
        (fun u ->
          if not (Hashtbl.mem dist u) then begin
            Hashtbl.replace dist u (dv + 1);
            Queue.add u queue
          end)
        (Graph.neighbors v g)
    done;
    Hashtbl.fold (fun v d acc -> (v, d) :: acc) dist []
    |> List.sort (fun (v1, d1) (v2, d2) ->
           let c = Int.compare v1 v2 in
           if c <> 0 then c else Int.compare d1 d2)
  end

let distance g s t =
  List.assoc_opt t (distances_from g s)

let eccentricity g v =
  let ds = distances_from g v in
  if List.length ds <> Graph.num_nodes g then None
  else Some (List.fold_left (fun acc (_, d) -> max acc d) 0 ds)

let diameter g =
  if Graph.num_nodes g = 0 then None
  else
    Nodeset.fold
      (fun v acc ->
        match (acc, eccentricity g v) with
        | Some a, Some e -> Some (max a e)
        | _ -> None)
      (Graph.nodes g) (Some 0)

let is_cut g d r c =
  Graph.mem_node d g && Graph.mem_node r g
  && (not (Nodeset.mem d c))
  && (not (Nodeset.mem r c))
  && not (connected_avoiding g d r c)

(* Menger via node splitting: each node v becomes v_in -> v_out with
   capacity 1 (infinite for d and r); edge (u,v) becomes u_out -> v_in and
   v_out -> u_in with infinite capacity.  Max flow = min vertex cut.  We run
   plain BFS augmentation (Edmonds–Karp); cuts here are small. *)
let min_vertex_cut g d r =
  if d = r || Graph.mem_edge d r g then max_int
  else begin
    let ids = Nodeset.to_array (Graph.nodes g) in
    let n = Array.length ids in
    let index = Hashtbl.create n in
    Array.iteri (fun i v -> Hashtbl.replace index v i) ids;
    (* vertex 2i = v_in, 2i+1 = v_out *)
    let nn = 2 * n in
    let cap = Hashtbl.create (4 * n) in
    let get u v = try Hashtbl.find cap (u, v) with Not_found -> 0 in
    let setc u v x = Hashtbl.replace cap (u, v) x in
    let inf = 1_000_000 in
    Array.iteri
      (fun i v ->
        let c = if v = d || v = r then inf else 1 in
        setc (2 * i) ((2 * i) + 1) c)
      ids;
    List.iter
      (fun (u, v) ->
        let iu = Hashtbl.find index u and iv = Hashtbl.find index v in
        setc ((2 * iu) + 1) (2 * iv) inf;
        setc ((2 * iv) + 1) (2 * iu) inf)
      (Graph.edges g);
    let adj = Array.make nn [] in
    Hashtbl.iter
      (fun (u, v) _ ->
        adj.(u) <- v :: adj.(u);
        adj.(v) <- u :: adj.(v))
      (Hashtbl.copy cap);
    let s = (2 * Hashtbl.find index d) + 1 in
    let t = 2 * Hashtbl.find index r in
    let flow = ref 0 in
    let rec augment () =
      let parent = Array.make nn (-1) in
      parent.(s) <- s;
      let queue = Queue.create () in
      Queue.add s queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        List.iter
          (fun v ->
            if parent.(v) = -1 && get u v > 0 then begin
              parent.(v) <- u;
              Queue.add v queue
            end)
          adj.(u)
      done;
      if parent.(t) = -1 then ()
      else begin
        (* unit bottleneck is enough: node capacities are 1 *)
        let rec push v =
          if v <> s then begin
            let u = parent.(v) in
            setc u v (get u v - 1);
            setc v u (get v u + 1);
            push u
          end
        in
        push t;
        incr flow;
        if !flow < n then augment ()
      end
    in
    augment ();
    !flow
  end
