(** Simple paths.

    A path is a node list from source to target, without repetitions.
    Path-carrying protocols (PPA, RMT-PKA) attach propagation trails to
    messages; the receiver needs to enumerate the simple D–R paths of a
    reconstructed graph to check {e fullness} of a message set.  The number
    of simple paths can be exponential, so every enumeration takes an
    explicit budget and reports whether it was exhausted. *)

open Rmt_base

type path = int list

val is_simple : path -> bool

val is_path_in : Graph.t -> path -> bool
(** Consecutive nodes adjacent, all nodes present, no repetition. *)

val mentions : path -> Nodeset.t

exception Budget_exhausted

val all_simple_paths :
  ?budget:int -> Graph.t -> int -> int -> path list * bool
(** [all_simple_paths g s t] enumerates every simple [s]–[t] path by DFS.
    The [budget] (default [200_000]) bounds the number of DFS edge
    extensions; the boolean is [true] when enumeration was complete and
    [false] when the budget ran out (in which case the returned list is a
    prefix of the enumeration). *)

val find_simple_path :
  ?budget:int -> Graph.t -> int -> int -> (path -> bool) -> path option * bool
(** [find_simple_path g s t pred]: first simple [s]–[t] path (in DFS
    order) satisfying [pred], enumerated lazily.  The boolean is the
    completeness flag: [None, false] means the budget ran out before the
    space was covered. *)

val count_simple_paths : ?budget:int -> Graph.t -> int -> int -> int * bool
(** Number of simple paths, with the same budget/completeness contract. *)

val shortest_path : Graph.t -> int -> int -> path option
(** One BFS shortest path. *)

val disjoint_paths_lower_bound : Graph.t -> int -> int -> int
(** Greedy lower bound on the number of internally node-disjoint [s]–[t]
    paths (repeatedly extracts a shortest path and removes its interior). *)

val pp_path : Format.formatter -> path -> unit
