(** CPA — Koo's Certified Propagation Algorithm, the t-locally-bounded
    ancestor of 𝒵-CPA.

    A player adjacent to the dealer decides on the dealer's value; any
    other player decides on [x] after receiving [x] from [t + 1] distinct
    neighbors (at most [t] of which can be corrupted, so at least one is
    honest); deciders forward once and terminate.  This is exactly 𝒵-CPA
    specialized to the local-threshold structure
    [𝒵_v = {S ⊆ 𝒩(v) : |S| ≤ t}], and is implemented here independently
    as a baseline for the uniqueness-hierarchy experiment (E5). *)

open Rmt_graph
open Rmt_net

type state

val automaton :
  Graph.t -> dealer:int -> receiver:int -> t:int -> x_dealer:int ->
  (state, int) Engine.automaton

val decision : state -> int option

type run_result = {
  decided : int option;
  correct : bool;
  rounds : int;
  messages : int;
}

val run :
  ?adversary:int Engine.strategy ->
  Graph.t -> dealer:int -> receiver:int -> t:int -> x_dealer:int ->
  run_result
