(** Dolev's disjoint-paths transmission — the classic ancestor ([2] in the
    paper's references, adapted to a single receiver).

    The dealer routes its value along a fixed set of internally
    node-disjoint D–R paths (source routing, not flooding); the receiver
    takes the majority among the path deliveries.  With a global threshold
    [t] adversary and [2t+1] disjoint paths, at most [t] deliveries can be
    corrupted, so the majority is always the dealer's value.

    This baseline differs from PPA in two instructive ways: it requires
    {e full topology knowledge at the dealer} (to compute the routes) and
    it only supports threshold adversaries — the general-adversary and
    partial-knowledge machinery of the paper is exactly what removes those
    two limitations. *)

open Rmt_graph
open Rmt_net

type msg = int Flood.msg

val routes : Graph.t -> dealer:int -> receiver:int -> Paths.path list
(** A maximal set of internally node-disjoint D–R paths (greedy shortest
    first; size at least the greedy disjoint-path bound).  The direct edge
    counts as a path. *)

type state

val automaton :
  Graph.t -> dealer:int -> receiver:int -> x_dealer:int ->
  (state, msg) Engine.automaton
(** Relays forward a message only if they are the next hop of its route;
    the receiver decides on the strict majority of route deliveries (ties
    and sub-majorities: no decision). *)

val decision : state -> int option

type run_result = {
  decided : int option;
  correct : bool;
  rounds : int;
  messages : int;
  num_routes : int;
}

val run :
  ?adversary:msg Engine.strategy ->
  Graph.t -> dealer:int -> receiver:int -> x_dealer:int -> run_result

val tolerates : Graph.t -> dealer:int -> receiver:int -> int
(** Largest global threshold [t] this instance supports:
    [(disjoint paths - 1) / 2], or [max_int] for adjacent D–R. *)
