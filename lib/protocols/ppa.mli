(** PPA — the Path Propagation Algorithm, the full-knowledge baseline
    of [13].

    The dealer's value floods with propagation trails (the same relay rule
    as RMT-PKA's type-1 messages).  The receiver — who knows the whole
    topology and the whole adversary structure — decides on [x] once the
    set [P_x] of D–R paths that delivered [x] is not {e coverable}: no
    admissible corruption set [Z ∈ 𝒵] hits every path of [P_x] (so at
    least one wholly-honest path delivered [x]).

    Safety holds unconditionally: a wrong value travels only on paths
    through the actual corruption set [T], which covers them.  Liveness
    holds exactly when no two admissible sets [Z₁ ∪ Z₂] form a D–R cut —
    the classic characterization for RMT with full knowledge. *)

open Rmt_graph
open Rmt_adversary
open Rmt_net

type msg = int Flood.msg

type state

val automaton :
  Graph.t -> structure:Structure.t -> dealer:int -> receiver:int ->
  x_dealer:int -> (state, msg) Engine.automaton

val decision : state -> int option

val solvable : Graph.t -> structure:Structure.t -> dealer:int -> receiver:int -> bool
(** The full-knowledge feasibility condition: no two admissible sets
    jointly separate [D] from [R]. *)

type run_result = {
  decided : int option;
  correct : bool;
  rounds : int;
  messages : int;
  truncated : bool;
}

val run :
  ?adversary:msg Engine.strategy ->
  ?max_messages:int ->
  Graph.t -> structure:Structure.t -> dealer:int -> receiver:int ->
  x_dealer:int -> run_result
