type t = {
  delay_bound : int;
  drop_budget : int;
}

let max_drop_budget = 3

let make ~delay_bound ~drop_budget =
  {
    delay_bound = max 1 delay_bound;
    drop_budget = min max_drop_budget (max 0 drop_budget);
  }

let default = make ~delay_bound:3 ~drop_budget:2

let slots t = List.init (t.drop_budget + 1) (fun _ -> ())

let commit_round t ~num_nodes = ((num_nodes - 1) * t.delay_bound) + 2

let to_string t = Printf.sprintf "d%dl%d" t.delay_bound t.drop_budget

let of_string s =
  match Scanf.sscanf_opt s "d%dl%d%!" (fun d l -> (d, l)) with
  | Some (d, l) when d >= 1 && l >= 0 && l <= max_drop_budget ->
    Some { delay_bound = d; drop_budget = l }
  | _ -> None

let pp ppf t =
  Format.fprintf ppf "envelope(delay<=%d, drops<=%d)" t.delay_bound
    t.drop_budget
