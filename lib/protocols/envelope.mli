(** Model envelopes — the (delay-bound, drop-budget) contract a run claims.

    Theorem 4's boundary (PR 5) is a {e model} boundary: RMT-PKA is safe
    over timely schedules, and one delayed or dropped honest report lets
    it certify a forged trail.  An envelope makes the claimed model
    explicit: a schedule {e conforms} to [(d, l)] when every delivered
    message arrives within [d] rounds of its send and at most [l]
    messages are dropped in the whole run.  The certified protocols
    ({!Certified}) are parameterized by an envelope and defend exactly
    against it: every flooded message is emitted in [l + 1] same-round
    copies per edge (so the drop budget cannot silence a hop), and the
    receiver's commit round is late enough that every honest trail —
    at most [n - 1] hops, each at most [d] rounds — has landed.

    Conformance checking against recorded [.sched] schedules lives on
    the simulator side ([Rmt_sim.Envelope_check]); this module stays
    free of simulator dependencies so the protocol layer can use it. *)

type t = private {
  delay_bound : int;  (** delivered messages arrive within this many rounds *)
  drop_budget : int;  (** at most this many messages vanish per run *)
}

val default : t
(** [(3, 2)] — wide enough to contain both pinned Theorem-4 boundary
    fixtures ([pka_async_delay]: delay 3; [pka_message_loss]: 1 drop). *)

val max_drop_budget : int
(** [3].  The drop budget is clamped to this constant so the copy count
    [drop_budget + 1] stays within the pinned multiplier the lint
    model's send-bound extraction uses for {!slots} iteration
    ([Rmt_lint.Model]); see DESIGN §14. *)

val make : delay_bound:int -> drop_budget:int -> t
(** Clamps [delay_bound] to at least 1 and [drop_budget] into
    [0, max_drop_budget]. *)

val slots : t -> unit list
(** [drop_budget + 1] redundancy slots: one copy of every flooded
    message is sent per slot, so a conforming scheduler cannot drop all
    of them.  Exposed as a list so protocol send loops iterate it
    directly (the lint model recognizes the iteration and caps the
    multiplicity at [max_drop_budget + 1]). *)

val commit_round : t -> num_nodes:int -> int
(** [(n - 1) * delay_bound + 2] — by this round every copy of every
    honest trail (at most [n - 1] hops, each hop at most [delay_bound]
    rounds late) has been delivered under any conforming schedule. *)

val to_string : t -> string
(** ["d<delay>l<drops>"], e.g. ["d3l2"]; parsed back by {!of_string}. *)

val of_string : string -> t option

val pp : Format.formatter -> t -> unit
