(** Deliberately unsafe strawman receivers.

    These exist to make the indistinguishability attacks (Theorem 3 /
    Theorem 8, experiment E2b) bite: a safe protocol reacts to an
    attack by staying silent, which is invisible; a strawman that decides
    eagerly gets demonstrably fooled into a wrong output. *)

open Rmt_net

type state

val first_delivery :
  Rmt_graph.Graph.t -> dealer:int -> receiver:int -> x_dealer:int ->
  (state, int) Engine.automaton
(** Every player adopts the {e head of its first non-empty inbox} and
    relays it once; the receiver decides on it.  Unlike {!first_value}
    this makes delivery {e order} the decision rule: it is deterministic
    under the synchronous engine (inboxes arrive in send order) yet any
    scheduler that reorders a single channel can flip its output — the
    simulation campaign's always-violable control. *)

val first_value :
  Rmt_graph.Graph.t -> dealer:int -> receiver:int -> x_dealer:int ->
  (state, int) Engine.automaton
(** Gossip flooding; every player adopts and forwards the first value it
    hears, the receiver decides on it.  Fast, and trivially unsafe. *)

val neighbor_majority :
  Rmt_graph.Graph.t -> dealer:int -> receiver:int -> x_dealer:int ->
  (state, int) Engine.automaton
(** Players adopt the value reported by a strict majority of the
    neighbors heard from so far (ties: smallest value), then forward.
    Unsafe whenever the adversary holds a majority around someone. *)

val decision : state -> int option
