open Rmt_base
open Rmt_graph
open Rmt_net

type player = {
  self : int;
  mutable decided : int option;
  mutable sent : bool;
  votes : (int, Nodeset.t) Hashtbl.t;
}

type state =
  | Dealer
  | Player of player

let decision = function
  | Dealer -> None
  | Player p -> p.decided

let broadcast g v x =
  Nodeset.fold
    (fun u acc -> Engine.{ dst = u; payload = x } :: acc)
    (Graph.neighbors v g)
    []

let make g ~dealer ~x_dealer ~adopt =
  let init v =
    if v = dealer then (Dealer, broadcast g v x_dealer)
    else
      ( Player
          { self = v; decided = None; sent = false; votes = Hashtbl.create 4 },
        [] )
  in
  let step _v st ~round:_ ~inbox =
    match st with
    | Dealer -> (st, [])
    | Player p ->
      if p.decided = None then begin
        List.iter
          (fun (src, x) ->
            let cur =
              Option.value (Hashtbl.find_opt p.votes x) ~default:Nodeset.empty
            in
            Hashtbl.replace p.votes x (Nodeset.add src cur))
          inbox;
        p.decided <- adopt p
      end;
      match p.decided with
      | Some x when not p.sent ->
        p.sent <- true;
        (st, broadcast g p.self x)
      | _ -> (st, [])
  in
  Engine.{ init; step; decision }

let first_delivery g ~dealer ~receiver:_ ~x_dealer =
  let init v =
    if v = dealer then (Dealer, broadcast g v x_dealer)
    else
      ( Player
          { self = v; decided = None; sent = false; votes = Hashtbl.create 1 },
        [] )
  in
  let step _v st ~round:_ ~inbox =
    match st with
    | Dealer -> (st, [])
    | Player p ->
      (if p.decided = None then
         match inbox with
         | (_, x) :: _ -> p.decided <- Some x
         | [] -> ());
      (match p.decided with
       | Some x when not p.sent ->
         p.sent <- true;
         (st, broadcast g p.self x)
       | _ -> (st, []))
  in
  Engine.{ init; step; decision }

let first_value g ~dealer ~receiver:_ ~x_dealer =
  let adopt p =
    Hashtbl.fold
      (fun x senders acc ->
        if Nodeset.is_empty senders then acc
        else
          match acc with
          | Some _ -> acc
          | None -> Some x)
      p.votes None
  in
  make g ~dealer ~x_dealer ~adopt

let neighbor_majority g ~dealer ~receiver:_ ~x_dealer =
  let adopt p =
    let heard_from =
      Hashtbl.fold (fun _ s acc -> Nodeset.union s acc) p.votes Nodeset.empty
    in
    let total = Nodeset.size heard_from in
    let best =
      Hashtbl.fold
        (fun x s acc ->
          let n = Nodeset.size s in
          match acc with
          | Some (_, bn) when bn >= n -> acc
          | Some (bx, bn) when bn = n && bx <= x -> acc
          | _ -> Some (x, n))
        p.votes None
    in
    match best with
    | Some (x, n) when 2 * n > total -> Some x
    | _ -> None
  in
  make g ~dealer ~x_dealer ~adopt
