(** Quorum-certified RMT — an echo/vote certification tier over the
    Theorem-4 boundary.

    PR 5 pinned the exact model boundary of Theorem 4: RMT-PKA is safe
    over timely schedules, but one delayed or dropped honest report lets
    the receiver certify a forged trail ([pka_async_delay] /
    [pka_message_loss]).  This layer generalizes signature-free
    Bracha-style echo certification from [f < n/3] thresholds to general
    adversary structures and composes it with an explicit {!Envelope}:

    - {b Redundant flooding}: every protocol message [Load p] floods
      with the usual trail discipline ({!Rmt_net.Flood}), but each hop
      emits [drop_budget + 1] same-round copies per edge — within the
      envelope, a scheduler cannot silence a hop.
    - {b Echo certification}: every node floods [Echo v] once; the
      receiver accepts the run only when the set [E] of echoing nodes
      is a {e quorum}: the complement [V ∖ E] is admissible, i.e. lies
      inside a single adversary set (the general-adversary analogue of
      [2f + 1] echoes — missing voices are explainable by one
      corruption class, so at least the whole honest periphery of some
      admissible corruption has reported in).
    - {b Commit gating}: the receiver holds its decision until
      {!Envelope.commit_round}, by which every honest trail has landed
      under any conforming schedule, then replays the collected
      evidence through the wrapped (synchronous) automaton in one shot.

    Safety inside the envelope therefore reduces to Theorem 4: the
    replayed evidence set is exactly a message set some synchronous
    execution delivers, and the inner protocol never decides wrong on
    such a set.  Liveness on timely schedules is the inner protocol's
    (Theorem 5), delayed to the commit round — for honest runs and for
    corruptions whose silencing still leaves a quorum reachable.  The
    certificate is deliberately conservative beyond that: a corruption
    that {e disconnects} honest echo-holders from the receiver makes
    the missing set span more than one adversary class, and the gate
    aborts (a safe silence the unwrapped protocol would not incur —
    the liveness price of the certificate, reported as [liveness_lost]
    by campaigns, never failed).  Outside the envelope all bets are
    off by design — the boundary lanes in [make sim-smoke] assert
    violations are still findable there, keeping the safety claim
    non-vacuous.

    The echo certificate targets the {e message} adversary (drops and
    delays): corrupted nodes can forge echoes, which weakens the gate
    but never safety — the commit gate alone guarantees the replayed
    set is synchronous-complete within the envelope.  𝒵-CPA is
    deliberately {e not} wrapped: relay flooding launders the
    sender-authenticity its neighborhood oracle depends on. *)

open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge
open Rmt_net

type 'p body =
  | Load of 'p  (** a wrapped inner-protocol payload, flooding with trail *)
  | Echo of int  (** [Echo v]: node [v]'s liveness vote, flooding with trail *)
  | Tick  (** receiver keep-alive ping-pong (defeats engine quiescence) *)

type 'p msg = 'p body Flood.msg

type 'p state

val quorum : Structure.t -> Nodeset.t -> bool
(** [quorum z e] — the complement of the echo set [e] (within [z]'s
    ground set) is admissible: some single adversary set explains every
    missing echo. *)

val make :
  graph:Graph.t ->
  receiver:int ->
  structure:Structure.t ->
  envelope:Envelope.t ->
  inject_value:(int -> 'p option) ->
  inject_report:(int -> 'p option) ->
  key:('p -> string) ->
  inner:('is, 'p Flood.msg) Engine.automaton ->
  inner_truncated:('is -> bool) ->
  ('p state, 'p msg) Engine.automaton
(** The generic certification wrapper.  [inject_value]/[inject_report]
    name the payloads node [v] originates at round 0 (the inner
    protocol's initial sends, reified as data so the wrapper owns every
    send site); [key] is a canonical payload serialization for
    per-trail deduplication; [inner] is consulted only inside
    [decision], replaying the receiver's evidence in one shot. *)

val truncated : 'p state -> bool
(** True when the last evidence replay exhausted an inner-protocol
    budget (cf. [Rmt_pka.search_truncated]): a missing decision is a
    liveness loss, not a proof. *)

val echo_set : 'p state -> Nodeset.t
(** The echoing nodes collected so far (receiver-side; for tests and
    traces). *)

val evidence_count : 'p state -> int

(** {1 Certified instantiations} *)

type pka_msg = Rmt_core.Rmt_pka.payload msg

val pka :
  ?budgets:Rmt_core.Rmt_pka.budgets ->
  ?envelope:Envelope.t ->
  Instance.t ->
  x_dealer:int ->
  (Rmt_core.Rmt_pka.payload state, pka_msg) Engine.automaton
(** Certified RMT-PKA: the partial-knowledge automaton behind the
    quorum/commit gate.  Defaults to {!Envelope.default}, which
    contains both pinned Theorem-4 boundary schedules. *)

val pka_msg_size : pka_msg -> int

type ppa_msg = int msg

val ppa :
  ?envelope:Envelope.t ->
  Graph.t ->
  structure:Structure.t ->
  dealer:int ->
  receiver:int ->
  x_dealer:int ->
  (int state, ppa_msg) Engine.automaton
(** Certified PPA: the full-knowledge baseline behind the same gate. *)

val ppa_msg_size : ppa_msg -> int

val pp_body :
  (Format.formatter -> 'p -> unit) -> Format.formatter -> 'p body -> unit
