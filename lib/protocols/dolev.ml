open Rmt_graph
open Rmt_net

type msg = int Flood.msg
(* the trail field carries the FULL route, fixed by the dealer; relays do
   not extend it — this is source routing, not flooding *)

let routes g ~dealer ~receiver =
  let rec go g acc =
    match Paths.shortest_path g dealer receiver with
    | None -> List.rev acc
    | Some p ->
      let interior =
        List.filter (fun v -> v <> dealer && v <> receiver) p
      in
      if interior = [] then
        (* the direct edge: no more node-disjoint routes can be peeled *)
        List.rev (p :: acc)
      else
        go
          (List.fold_left (fun g v -> Graph.remove_node v g) g interior)
          (p :: acc)
  in
  go g []

(* position-based forwarding: find v's predecessor and successor in the
   route *)
let rec hop_after (v : int) = function
  | a :: (b :: _ as rest) -> if a = v then Some b else hop_after v rest
  | _ -> None

let rec hop_before (v : int) = function
  | a :: (b :: _ as rest) -> if b = v then Some a else hop_before v rest
  | _ -> None

type recv = {
  num_routes : int;
  known : Paths.path list;
  votes : (Paths.path, int) Hashtbl.t;
  mutable decided : int option;
}

type state =
  | Dealer_done
  | Relay of int
  | Receiver of recv

let decision = function
  | Receiver r -> r.decided
  | Dealer_done | Relay _ -> None

let try_decide rs =
  if rs.decided = None then begin
    let counts = Hashtbl.create 4 in
    Hashtbl.iter
      (fun _ x ->
        Hashtbl.replace counts x
          (1 + Option.value (Hashtbl.find_opt counts x) ~default:0))
      rs.votes;
    Hashtbl.iter
      (fun x c -> if 2 * c > rs.num_routes then rs.decided <- Some x)
      counts
  end

let automaton g ~dealer ~receiver ~x_dealer =
  let rts = routes g ~dealer ~receiver in
  let init v =
    if v = dealer then
      ( Dealer_done,
        List.filter_map
          (fun route ->
            Option.map
              (fun next ->
                Engine.
                  { dst = next; payload = Flood.{ payload = x_dealer; trail = route } })
              (hop_after dealer route))
          rts )
    else if v = receiver then
      ( Receiver
          {
            num_routes = List.length rts;
            known = rts;
            votes = Hashtbl.create 4;
            decided = None;
          },
        [] )
    else (Relay v, [])
  in
  let step v st ~round:_ ~inbox =
    match st with
    | Dealer_done -> (st, [])
    | Relay self ->
      ( st,
        List.filter_map
          (fun (src, (m : msg)) ->
            (* forward only on my own route position, only from the true
               predecessor *)
            match (hop_before self m.trail, hop_after self m.trail) with
            | Some prev, Some next when prev = src ->
              Some Engine.{ dst = next; payload = m }
            | _ -> None)
          inbox )
    | Receiver rs ->
      List.iter
        (fun (src, (m : msg)) ->
          if
            List.exists (fun r -> List.equal Int.equal r m.trail) rs.known
            && hop_before v m.trail = Some src
            && not (Hashtbl.mem rs.votes m.trail)
          then Hashtbl.replace rs.votes m.trail m.payload)
        inbox;
      try_decide rs;
      (st, [])
  in
  Engine.{ init; step; decision }

type run_result = {
  decided : int option;
  correct : bool;
  rounds : int;
  messages : int;
  num_routes : int;
}

let run ?(adversary = Engine.no_adversary) g ~dealer ~receiver ~x_dealer =
  let auto = automaton g ~dealer ~receiver ~x_dealer in
  let outcome =
    Engine.run
      ~stop_when:(fun dec -> dec receiver <> None)
      ~graph:g ~adversary auto
  in
  let decided = Engine.decision_of outcome receiver in
  {
    decided;
    correct = decided = Some x_dealer;
    rounds = outcome.stats.rounds;
    messages = outcome.stats.messages;
    num_routes = List.length (routes g ~dealer ~receiver);
  }

let tolerates g ~dealer ~receiver =
  if Graph.mem_edge dealer receiver g then max_int
  else (List.length (routes g ~dealer ~receiver) - 1) / 2
