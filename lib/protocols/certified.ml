open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_net

type 'p body =
  | Load of 'p
  | Echo of int
  | Tick

type 'p msg = 'p body Flood.msg

type 'p state = {
  self : int;
  seen : (string, unit) Hashtbl.t;
  mutable cur_round : int;
  mutable evidence : (int * 'p Flood.msg) list;
      (** receiver-side: deduplicated [Load] arrivals, newest first *)
  mutable echoes : Nodeset.t;
  (* decision-side replay memo; versioned by the (monotone) evidence and
     echo counts so the exponential inner search runs once per new fact,
     not once per polled round *)
  mutable memo_evidence : int;
  mutable memo_echoes : int;
  mutable memo_value : int option;
  mutable memo_truncated : bool;
}

let quorum structure echoes =
  let missing = Nodeset.diff (Structure.ground structure) echoes in
  (* a complete echo set certifies trivially — Structure.mem would
     reject the empty set under an empty adversary family *)
  Nodeset.is_empty missing || Structure.mem missing structure

let trail_sig trail = String.concat "," (List.map string_of_int trail)

let dedup_key tag trail = tag ^ "#" ^ trail_sig trail

let truncated st = st.memo_truncated

let echo_set st = st.echoes

let evidence_count st = List.length st.evidence

let make ~graph ~receiver ~structure ~envelope ~inject_value ~inject_report
    ~key ~inner ~inner_truncated =
  let commit =
    Envelope.commit_round envelope ~num_nodes:(Graph.num_nodes graph)
  in
  let body_tag body =
    match body with
    | Load p -> "L:" ^ key p
    | Echo origin -> "E:" ^ string_of_int origin
    | Tick -> "T"
  in
  (* Every flooded message goes out in [drop_budget + 1] same-round
     copies per edge: a conforming scheduler cannot silence a hop.  The
     [Envelope.slots] application stays inline in the fold — the lint
     model recognizes it and caps the send multiplicity at the pinned
     [max_drop_budget + 1]. *)
  let emit v body acc =
    Nodeset.fold
      (fun u acc ->
        List.fold_left
          (fun acc () ->
            { Engine.dst = u; payload = { Flood.payload = body; trail = [ v ] } }
            :: acc)
          acc
          (Envelope.slots envelope))
      (Graph.neighbors v graph)
      acc
  in
  let relay v (m : 'p msg) acc =
    Nodeset.fold
      (fun u acc ->
        List.fold_left
          (fun acc () ->
            {
              Engine.dst = u;
              payload =
                { Flood.payload = m.Flood.payload; trail = m.Flood.trail @ [ v ] };
            }
            :: acc)
          acc
          (Envelope.slots envelope))
      (Graph.neighbors v graph)
      acc
  in
  let init v =
    let st =
      {
        self = v;
        seen = Hashtbl.create 64;
        cur_round = 0;
        evidence = [];
        (* the receiver's own echo never transits the network *)
        echoes = (if v = receiver then Nodeset.add v Nodeset.empty else Nodeset.empty);
        memo_evidence = -1;
        memo_echoes = -1;
        memo_value = None;
        memo_truncated = false;
      }
    in
    let acc = [] in
    let acc =
      match inject_value v with None -> acc | Some p -> emit v (Load p) acc
    in
    let acc =
      match inject_report v with None -> acc | Some p -> emit v (Load p) acc
    in
    let acc = emit v (Echo v) acc in
    (* The receiver opens a tick ping-pong with one neighbor: per-round
       backends quiesce when no messages are in flight, and the commit
       round is far past the flooding horizon. *)
    let acc =
      if v = receiver then
        match Nodeset.min_elt_opt (Graph.neighbors v graph) with
        | Some u ->
          { Engine.dst = u; payload = { Flood.payload = Tick; trail = [ v ] } }
          :: acc
        | None -> acc
      else acc
    in
    (st, acc)
  in
  let step v st ~round ~inbox =
    if round > st.cur_round then st.cur_round <- round;
    let out =
      List.fold_left
        (fun acc (src, (m : 'p msg)) ->
          match m.Flood.payload with
          | Tick ->
            (* 1:1 ping-pong; stops shortly after commit so runs drain.
               Reply only along real edges (honest sends are
               neighbor-restricted; a corrupted sender may not be one). *)
            if round <= commit + 2 && Nodeset.mem src (Graph.neighbors v graph)
            then
              {
                Engine.dst = src;
                payload = { Flood.payload = Tick; trail = [ v ] };
              }
              :: acc
            else acc
          | Load _ | Echo _ ->
            if not (Flood.trail_ok ~self:v ~src m.Flood.trail) then acc
            else begin
              let k = dedup_key (body_tag m.Flood.payload) m.Flood.trail in
              if Hashtbl.mem st.seen k then acc
              else begin
                Hashtbl.replace st.seen k ();
                (if v = receiver then
                   match m.Flood.payload with
                   | Load p ->
                     st.evidence <-
                       (src, { Flood.payload = p; trail = m.Flood.trail })
                       :: st.evidence
                   | Echo origin -> st.echoes <- Nodeset.add origin st.echoes
                   | Tick -> ());
                relay v m acc
              end
            end)
        [] inbox
    in
    (st, out)
  in
  let decision st =
    if st.self <> receiver || st.cur_round < commit then None
    else if not (quorum structure st.echoes) then None
    else begin
      let ev = List.length st.evidence in
      let ec = Nodeset.size st.echoes in
      if
        not
          (Int.equal ev st.memo_evidence && Int.equal ec st.memo_echoes)
      then begin
        st.memo_evidence <- ev;
        st.memo_echoes <- ec;
        (* Synchronous replay: a message whose trail has length [k] is
           delivered in round [k] of a synchronous execution, so feeding
           the evidence grouped by trail length reconstructs — round for
           round — the inner receiver's view of the synchronous run that
           delivered exactly these messages.  The commit gate guarantees
           every honest message is present, so the reconstruction is a
           legal synchronous execution (the adversary simply withheld
           whatever is absent) and the inner decision inherits Theorem
           4's safety.  Stopping at the first decision also restores the
           synchronous protocol's earliest-prefix decision discipline:
           late forged conflicts cannot retroactively poison it. *)
        let evidence = List.rev st.evidence in
        let horizon =
          List.fold_left
            (fun acc (_, m) -> max acc (List.length m.Flood.trail))
            0 evidence
        in
        let rec replay ist k =
          if k > horizon || Option.is_some (inner.Engine.decision ist) then
            ist
          else begin
            let inbox =
              List.filter
                (fun (_, m) -> List.length m.Flood.trail = k)
                evidence
            in
            let ist, _ = inner.Engine.step st.self ist ~round:k ~inbox in
            replay ist (k + 1)
          end
        in
        let ist, _ = inner.Engine.init st.self in
        let ist = replay ist 1 in
        st.memo_value <- inner.Engine.decision ist;
        st.memo_truncated <- inner_truncated ist
      end;
      st.memo_value
    end
  in
  { Engine.init; step; decision }

(* ---------- Certified RMT-PKA ---------- *)

type pka_msg = Rmt_core.Rmt_pka.payload msg

let structure_sig z =
  Structure.maximal_sets z
  |> List.map (fun s ->
         String.concat "." (List.map string_of_int (Nodeset.elements s)))
  |> String.concat "|"

let pka_key (p : Rmt_core.Rmt_pka.payload) =
  match p with
  | Value x -> "V:" ^ string_of_int x
  | Info r ->
    Printf.sprintf "I:%d:%s:%s" r.Rmt_core.Rmt_pka.origin
      (Graph.to_string r.gamma) (structure_sig r.zeta)

let pka ?budgets ?(envelope = Envelope.default) (inst : Rmt_knowledge.Instance.t)
    ~x_dealer =
  let open Rmt_knowledge in
  let inner = Rmt_core.Rmt_pka.automaton ?budgets inst ~x_dealer in
  let report v =
    {
      Rmt_core.Rmt_pka.origin = v;
      gamma = Instance.local_view inst v;
      zeta = Instance.local_structure inst v;
    }
  in
  make ~graph:inst.graph ~receiver:inst.receiver ~structure:inst.structure
    ~envelope
    ~inject_value:(fun v ->
      if v = inst.dealer then Some (Rmt_core.Rmt_pka.Value x_dealer) else None)
    ~inject_report:(fun v ->
      if v = inst.receiver then None
      else Some (Rmt_core.Rmt_pka.Info (report v)))
    ~key:pka_key ~inner ~inner_truncated:Rmt_core.Rmt_pka.search_truncated

let pka_msg_size (m : pka_msg) =
  match m.Flood.payload with
  | Load p ->
    1 + Rmt_core.Rmt_pka.msg_size { Flood.payload = p; trail = m.Flood.trail }
  | Echo _ | Tick -> 1 + List.length m.Flood.trail

(* ---------- Certified PPA ---------- *)

type ppa_msg = int msg

let ppa ?(envelope = Envelope.default) g ~structure ~dealer ~receiver ~x_dealer
    =
  let inner = Ppa.automaton g ~structure ~dealer ~receiver ~x_dealer in
  make ~graph:g ~receiver ~structure ~envelope
    ~inject_value:(fun v -> if v = dealer then Some x_dealer else None)
    ~inject_report:(fun _ -> None)
    ~key:string_of_int ~inner
    ~inner_truncated:(fun _ -> false)

let ppa_msg_size (m : ppa_msg) = 1 + List.length m.Flood.trail

let pp_body pp_payload ppf body =
  match body with
  | Load p -> Format.fprintf ppf "load(%a)" pp_payload p
  | Echo origin -> Format.fprintf ppf "echo(%d)" origin
  | Tick -> Format.fprintf ppf "tick"
