open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_net

type msg = int Flood.msg

type recv = {
  self : int;
  dealer : int;
  structure : Structure.t;
  (* x ↦ interiors of the D–R paths that delivered x *)
  paths : (int, Nodeset.t list ref) Hashtbl.t;
  mutable decided : int option;
}

type state =
  | Dealer_done
  | Relay of int
  | Receiver of recv

let decision = function
  | Receiver r -> r.decided
  | Dealer_done | Relay _ -> None

(* P_x is uncoverable iff every maximal admissible set misses the interior
   of at least one x-carrying path. *)
let uncoverable structure interiors =
  interiors <> []
  && List.for_all
       (fun m -> List.exists (fun i -> Nodeset.disjoint i m) interiors)
       (Structure.maximal_sets structure)

let try_decide rs =
  if rs.decided = None then begin
    let xs =
      Hashtbl.fold (fun x _ acc -> x :: acc) rs.paths []
      |> List.sort Int.compare
    in
    List.iter
      (fun x ->
        if rs.decided = None && uncoverable rs.structure !(Hashtbl.find rs.paths x)
        then rs.decided <- Some x)
      xs
  end

let ingest rs ~src (m : msg) =
  if Flood.trail_ok ~self:rs.self ~src m.trail then
    match m.trail with
    | d :: _ when d = rs.dealer ->
      let interior =
        Nodeset.of_list
          (List.filter (fun v -> v <> rs.dealer) m.trail)
      in
      let cur =
        match Hashtbl.find_opt rs.paths m.payload with
        | Some l -> l
        | None ->
          let l = ref [] in
          Hashtbl.replace rs.paths m.payload l;
          l
      in
      if not (List.exists (Nodeset.equal interior) !cur) then
        cur := interior :: !cur
    | _ -> ()

let automaton g ~structure ~dealer ~receiver ~x_dealer =
  let init v =
    if v = dealer then (Dealer_done, Flood.originate g v x_dealer)
    else if v = receiver then
      ( Receiver
          {
            self = v;
            dealer;
            structure;
            paths = Hashtbl.create 4;
            decided = None;
          },
        [] )
    else (Relay v, [])
  in
  let step _v st ~round:_ ~inbox =
    match st with
    | Dealer_done -> (st, [])
    | Relay self -> (st, Flood.relay g self ~inbox)
    | Receiver rs ->
      List.iter (fun (src, m) -> ingest rs ~src m) inbox;
      try_decide rs;
      (st, [])
  in
  Engine.{ init; step; decision }

let solvable g ~structure ~dealer ~receiver =
  (* admissible sets may contain the receiver; by monotonicity their
     receiver-free subsets are admissible too, and those are the candidate
     cut halves *)
  let ms =
    List.map (Nodeset.remove receiver) (Structure.maximal_sets structure)
  in
  not
    (List.exists
       (fun z1 ->
         List.exists
           (fun z2 ->
             Connectivity.is_cut g dealer receiver (Nodeset.union z1 z2))
           ms)
       ms)

type run_result = {
  decided : int option;
  correct : bool;
  rounds : int;
  messages : int;
  truncated : bool;
}

let run ?(adversary = Engine.no_adversary) ?max_messages g ~structure ~dealer
    ~receiver ~x_dealer =
  let auto = automaton g ~structure ~dealer ~receiver ~x_dealer in
  let outcome =
    Engine.run ?max_messages
      ~size_of:(fun (m : msg) -> 1 + List.length m.trail)
      ~stop_when:(fun dec -> dec receiver <> None)
      ~graph:g ~adversary auto
  in
  let decided = Engine.decision_of outcome receiver in
  {
    decided;
    correct = decided = Some x_dealer;
    rounds = outcome.stats.rounds;
    messages = outcome.stats.messages;
    truncated = outcome.stats.truncated;
  }
