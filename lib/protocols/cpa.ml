open Rmt_base
open Rmt_graph
open Rmt_net

type player = {
  self : int;
  mutable decided : int option;
  mutable sent : bool;
  senders : (int, Nodeset.t) Hashtbl.t;
}

type state =
  | Dealer
  | Player of player

let decision = function
  | Dealer -> None
  | Player p -> p.decided

let automaton g ~dealer ~receiver ~t ~x_dealer =
  let broadcast v x =
    Nodeset.fold
      (fun u acc -> Engine.{ dst = u; payload = x } :: acc)
      (Graph.neighbors v g)
      []
  in
  let init v =
    if v = dealer then (Dealer, broadcast v x_dealer)
    else
      ( Player
          { self = v; decided = None; sent = false; senders = Hashtbl.create 4 },
        [] )
  in
  let step _v st ~round:_ ~inbox =
    match st with
    | Dealer -> (st, [])
    | Player p ->
      if p.decided <> None then (st, [])
      else begin
        (match
           List.find_map
             (fun (src, x) -> if src = dealer then Some x else None)
             inbox
         with
         | Some x -> p.decided <- Some x
         | None ->
           List.iter
             (fun (src, x) ->
               let cur =
                 Option.value (Hashtbl.find_opt p.senders x)
                   ~default:Nodeset.empty
               in
               Hashtbl.replace p.senders x (Nodeset.add src cur))
             inbox;
           let xs =
             Hashtbl.fold (fun x _ acc -> x :: acc) p.senders []
             |> List.sort Int.compare
           in
           List.iter
             (fun x ->
               if
                 p.decided = None
                 && Nodeset.size (Hashtbl.find p.senders x) >= t + 1
               then p.decided <- Some x)
             xs);
        match p.decided with
        | Some x when (not p.sent) && p.self <> receiver ->
          p.sent <- true;
          (st, broadcast p.self x)
        | _ -> (st, [])
      end
  in
  Engine.{ init; step; decision }

type run_result = {
  decided : int option;
  correct : bool;
  rounds : int;
  messages : int;
}

let run ?(adversary = Engine.no_adversary) g ~dealer ~receiver ~t ~x_dealer =
  let auto = automaton g ~dealer ~receiver ~t ~x_dealer in
  let outcome = Engine.run ~graph:g ~adversary auto in
  let decided = Engine.decision_of outcome receiver in
  {
    decided;
    correct = decided = Some x_dealer;
    rounds = outcome.stats.rounds;
    messages = outcome.stats.messages;
  }
