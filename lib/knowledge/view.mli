(** View functions [γ] — the Partial Knowledge Model of [13].

    Each player [v] knows the topology of a subgraph [γ(v)] of the
    communication graph that contains [v].  The joint view of a set [S] is
    the union [γ(S) = (⋃ V_v, ⋃ E_v)].  The model interpolates between:

    - the {e ad hoc} model, where [γ(v)] is just [v]'s star (its incident
      edges, nothing more), and
    - {e full knowledge}, where [γ(v) = G] for every [v].

    A view assignment is relative to a fixed graph [G]; constructors check
    that [v ∈ γ(v)] and [γ(v) ⊆ G]. *)

open Rmt_base
open Rmt_graph
open Rmt_adversary

type t

type kind = Full | Ad_hoc | Radius of int | Custom
(** Which constructor built a view.  [Custom] assignments are opaque
    closures over their original graph: they cannot be transported to a
    modified topology (see {!rebuild}). *)

(** {1 Constructors} *)

val full : Graph.t -> t
(** [γ(v) = G]. *)

val ad_hoc : Graph.t -> t
(** [γ(v)] is the star of [v]: nodes [{v} ∪ N(v)], edges [v–u] only.
    (Note: strictly weaker than [radius 1], which also reveals the edges
    among neighbors.) *)

val radius : int -> Graph.t -> t
(** [γ(v)] is the subgraph induced by the ball of radius [k] around [v].
    [radius 0] gives the bare node — no knowledge beyond oneself. *)

val of_assignment : Graph.t -> (int -> Graph.t) -> t
(** Arbitrary assignment.
    @raise Invalid_argument if some [γ(v)] is not a subgraph of [G]
    containing [v]. *)

(** {1 Queries} *)

val graph : t -> Graph.t
(** The underlying communication graph. *)

val view : t -> int -> Graph.t
(** [γ(v)].  For ids outside the graph, the empty graph. *)

val view_nodes : t -> int -> Nodeset.t
(** [V(γ(v))]. *)

val joint : t -> Nodeset.t -> Graph.t
(** [γ(S)]: union of the views of the members of [S]. *)

val joint_nodes : t -> Nodeset.t -> Nodeset.t

val leq : t -> t -> bool
(** The paper's partial order on view functions over the same graph:
    [leq γ' γ] iff [γ'(v)] is a subgraph of [γ(v)] for every [v]. *)

val local_structure : t -> Structure.t -> int -> Structure.t
(** [local_structure γ 𝒵 v] is the local adversary structure
    [𝒵_v = 𝒵^{V(γ(v))}]. *)

val kind : t -> kind

val rebuild : t -> Graph.t -> t option
(** [rebuild γ g'] re-derives the {e same} view constructor over a new
    graph — the knowledge {e rule} survives a topology delta even though
    every concrete [γ(v)] may change.  [None] for [Custom] views, whose
    assignment closure is anchored to the original graph; instance deltas
    ({!Rmt_core.Delta}) refuse topology updates under such views. *)

val label : t -> string
(** ["full"], ["ad-hoc"], ["radius-k"], or ["custom"] — which constructor
    built this view.  Used by {!Codec} to serialize the view compactly. *)

val pp : Format.formatter -> t -> unit
