(** RMT problem instances [ℐ = (G, 𝒵, γ, D, R)]. *)

open Rmt_base
open Rmt_graph
open Rmt_adversary

type t = private {
  graph : Graph.t;
  structure : Structure.t;  (** the actual adversary structure [𝒵] *)
  view : View.t;  (** the view function [γ] *)
  dealer : int;
  receiver : int;
}

val make :
  graph:Graph.t ->
  structure:Structure.t ->
  view:View.t ->
  dealer:int ->
  receiver:int ->
  t
(** Checks: dealer and receiver are distinct nodes of the graph; the view
    is over the same graph; the structure's ground set is within the
    graph's nodes and excludes the dealer (the dealer is honest by
    definition of the problem).  @raise Invalid_argument otherwise. *)

val local_structure : t -> int -> Structure.t
(** [𝒵_v = 𝒵^{V(γ(v))}] — what player [v] initially knows of [𝒵]. *)

val local_view : t -> int -> Graph.t
(** [γ(v)]. *)

val admissible : t -> Nodeset.t -> bool
(** Is the set an admissible corruption set ([∈ 𝒵])? *)

val corruption_sets : t -> Nodeset.t list
(** Maximal admissible corruption sets. *)

val honest_nodes : t -> Nodeset.t -> Nodeset.t
(** [honest_nodes t corrupted]: all nodes minus the corrupted set. *)

val num_nodes : t -> int

val with_structure : t -> Structure.t -> t
(** Same instance with a different actual adversary structure (used by the
    indistinguishability constructions, where honest players cannot tell
    [𝒵] from [𝒵']). *)

val with_view : t -> View.t -> t

val ad_hoc_of : graph:Graph.t -> structure:Structure.t -> dealer:int -> receiver:int -> t
(** Convenience: instance in the ad hoc model. *)

val pp : Format.formatter -> t -> unit
