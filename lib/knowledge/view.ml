open Rmt_base
open Rmt_graph
open Rmt_adversary

type kind = Full | Ad_hoc | Radius of int | Custom

type t = {
  g : Graph.t;
  assign : int -> Graph.t; (* total: empty graph off the node set *)
  label : string;
  kind : kind;
}

let guard g assign v =
  if Graph.mem_node v g then begin
    let gv = assign v in
    if not (Graph.mem_node v gv) then
      invalid_arg "View: v must belong to γ(v)";
    if not (Graph.is_subgraph gv g) then
      invalid_arg "View: γ(v) must be a subgraph of G";
    gv
  end
  else Graph.empty

let full g = { g; assign = (fun _ -> g); label = "full"; kind = Full }

let star_of g v =
  Nodeset.fold
    (fun u acc -> Graph.add_edge v u acc)
    (Graph.neighbors v g)
    (Graph.add_node v Graph.empty)

let ad_hoc g =
  { g; assign = (fun v -> star_of g v); label = "ad-hoc"; kind = Ad_hoc }

let radius k g =
  {
    g;
    assign = (fun v -> Graph.restrict_to_radius v k g);
    label = Printf.sprintf "radius-%d" k;
    kind = Radius k;
  }

let of_assignment g f =
  (* validate eagerly on all nodes so mistakes surface at construction *)
  Nodeset.iter (fun v -> ignore (guard g f v)) (Graph.nodes g);
  { g; assign = f; label = "custom"; kind = Custom }

let kind t = t.kind

let rebuild t g =
  match t.kind with
  | Full -> Some (full g)
  | Ad_hoc -> Some (ad_hoc g)
  | Radius k -> Some (radius k g)
  | Custom -> None

let graph t = t.g

let view t v = if Graph.mem_node v t.g then t.assign v else Graph.empty

let view_nodes t v = Graph.nodes (view t v)

let joint t s =
  Nodeset.fold (fun v acc -> Graph.union (view t v) acc) s Graph.empty

let joint_nodes t s = Graph.nodes (joint t s)

let leq t' t =
  Graph.equal t'.g t.g
  && Nodeset.for_all
       (fun v -> Graph.is_subgraph (view t' v) (view t v))
       (Graph.nodes t.g)

let local_structure t z v = Structure.restrict (view_nodes t v) z

let label t = t.label

let pp ppf t =
  Format.fprintf ppf "view<%s over %d nodes>" t.label (Graph.num_nodes t.g)
