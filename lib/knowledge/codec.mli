(** Textual serialization of RMT instances.

    A small line-oriented format, meant to be written by hand or by the
    CLI and checked into experiment repositories:

    {v
    # anything after '#' is a comment
    nodes 0 1 2 3
    edges 0-1 1-2 2-3
    dealer 0
    receiver 3
    view ad-hoc            # or: full | radius 2
    ground 1 2 3           # optional; defaults to all nodes minus dealer
    set 1 2                # one maximal corruption set per line
    set 3
    v}

    The node set line is optional when every node appears in an edge.
    Views are serialized by constructor ([View.label]); instances built
    from [View.of_assignment] cannot be serialized (the assignment is an
    arbitrary function) and [to_string] rejects them. *)



val to_string : Instance.t -> (string, string) result
(** [Error _] when the view is custom. *)

val of_string : string -> (Instance.t, string) result
(** Parse; error messages carry the offending line. *)

val to_file : string -> Instance.t -> (unit, string) result

val of_file : string -> (Instance.t, string) result
