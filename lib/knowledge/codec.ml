open Rmt_base
open Rmt_graph
open Rmt_adversary

let ( let* ) = Result.bind

let to_string (inst : Instance.t) =
  let view_line =
    match String.split_on_char '-' (View.label inst.view) with
    | [ "full" ] -> Ok "view full"
    | [ "ad"; "hoc" ] -> Ok "view ad-hoc"
    | [ "radius"; k ] -> Ok (Printf.sprintf "view radius %s" k)
    | _ -> Error "Codec.to_string: custom views cannot be serialized"
  in
  let* view_line = view_line in
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "# rmt instance";
  line "nodes %s"
    (String.concat " "
       (List.map string_of_int (Nodeset.elements (Graph.nodes inst.graph))));
  line "edges %s"
    (String.concat " "
       (List.map
          (fun (u, v) -> Printf.sprintf "%d-%d" u v)
          (Graph.edges inst.graph)));
  line "dealer %d" inst.dealer;
  line "receiver %d" inst.receiver;
  line "%s" view_line;
  line "ground %s"
    (String.concat " "
       (List.map string_of_int
          (Nodeset.elements (Structure.ground inst.structure))));
  List.iter
    (fun m ->
      line "set %s"
        (String.concat " " (List.map string_of_int (Nodeset.elements m))))
    (Structure.maximal_sets inst.structure);
  Ok (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type draft = {
  mutable nodes : Nodeset.t;
  mutable edges : (int * int) list;
  mutable dealer : int option;
  mutable receiver : int option;
  mutable view : string list option;
  mutable ground : Nodeset.t option;
  mutable sets : Nodeset.t list;
}

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line =
  strip_comment line |> String.split_on_char ' '
  |> List.filter (fun s -> s <> "")

let parse_int ~ctx s =
  match int_of_string_opt s with
  | Some v when v >= 0 -> Ok v
  | _ -> Error (Printf.sprintf "%s: expected a node id, got %S" ctx s)

let parse_ints ~ctx ss =
  List.fold_left
    (fun acc s ->
      let* acc = acc in
      let* v = parse_int ~ctx s in
      Ok (v :: acc))
    (Ok []) ss

let parse_edge ~ctx s =
  match String.split_on_char '-' s with
  | [ a; b ] ->
    let* a = parse_int ~ctx a in
    let* b = parse_int ~ctx b in
    Ok (a, b)
  | _ -> Error (Printf.sprintf "%s: expected an edge u-v, got %S" ctx s)

let parse_line draft lineno line =
  let ctx = Printf.sprintf "line %d" lineno in
  match tokens line with
  | [] -> Ok ()
  | "nodes" :: rest ->
    let* vs = parse_ints ~ctx rest in
    draft.nodes <- Nodeset.union draft.nodes (Nodeset.of_list vs);
    Ok ()
  | "edges" :: rest ->
    List.fold_left
      (fun acc s ->
        let* () = acc in
        let* e = parse_edge ~ctx s in
        draft.edges <- e :: draft.edges;
        Ok ())
      (Ok ()) rest
  | [ "dealer"; d ] ->
    let* d = parse_int ~ctx d in
    draft.dealer <- Some d;
    Ok ()
  | [ "receiver"; r ] ->
    let* r = parse_int ~ctx r in
    draft.receiver <- Some r;
    Ok ()
  | "view" :: spec ->
    draft.view <- Some spec;
    Ok ()
  | "ground" :: rest ->
    let* vs = parse_ints ~ctx rest in
    draft.ground <- Some (Nodeset.of_list vs);
    Ok ()
  | "set" :: rest ->
    let* vs = parse_ints ~ctx rest in
    draft.sets <- Nodeset.of_list vs :: draft.sets;
    Ok ()
  | kw :: _ -> Error (Printf.sprintf "%s: unknown keyword %S" ctx kw)

let of_string text =
  let draft =
    {
      nodes = Nodeset.empty;
      edges = [];
      dealer = None;
      receiver = None;
      view = None;
      ground = None;
      sets = [];
    }
  in
  let lines = String.split_on_char '\n' text in
  let* () =
    List.fold_left
      (fun (acc : (unit, string) result) (lineno, line) ->
        let* () = acc in
        parse_line draft lineno line)
      (Ok ())
      (List.mapi (fun i l -> (i + 1, l)) lines)
  in
  let graph = Graph.of_nodes_edges draft.nodes draft.edges in
  let* dealer =
    Option.to_result ~none:"missing 'dealer' line" draft.dealer
  in
  let* receiver =
    Option.to_result ~none:"missing 'receiver' line" draft.receiver
  in
  let* view =
    match draft.view with
    | None | Some [ "ad-hoc" ] -> Ok (View.ad_hoc graph)
    | Some [ "full" ] -> Ok (View.full graph)
    | Some [ "radius"; k ] ->
      (match int_of_string_opt k with
       | Some k when k >= 0 -> Ok (View.radius k graph)
       | _ -> Error (Printf.sprintf "bad radius %S" k))
    | Some spec ->
      Error (Printf.sprintf "unknown view spec %S" (String.concat " " spec))
  in
  let ground =
    match draft.ground with
    | Some g -> Nodeset.remove dealer g
    | None -> Nodeset.remove dealer (Graph.nodes graph)
  in
  let* structure =
    try Ok (Structure.of_sets ~ground (List.map (Nodeset.inter ground) draft.sets))
    with Invalid_argument m -> Error m
  in
  try Ok (Instance.make ~graph ~structure ~view ~dealer ~receiver)
  with Invalid_argument m -> Error m

let to_file path inst =
  let* s = to_string inst in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc s;
      Ok ())

let of_file path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_string (In_channel.input_all ic))
