open Rmt_base
open Rmt_graph
open Rmt_adversary

type t = {
  graph : Graph.t;
  structure : Structure.t;
  view : View.t;
  dealer : int;
  receiver : int;
}

let make ~graph ~structure ~view ~dealer ~receiver =
  if not (Graph.mem_node dealer graph) then
    invalid_arg "Instance.make: dealer not in graph";
  if not (Graph.mem_node receiver graph) then
    invalid_arg "Instance.make: receiver not in graph";
  if dealer = receiver then invalid_arg "Instance.make: dealer = receiver";
  if not (Graph.equal (View.graph view) graph) then
    invalid_arg "Instance.make: view is over a different graph";
  if not (Nodeset.subset (Structure.ground structure) (Graph.nodes graph)) then
    invalid_arg "Instance.make: structure ground outside graph";
  if Nodeset.mem dealer (Structure.ground structure) then
    invalid_arg "Instance.make: the dealer must be outside the structure";
  { graph; structure; view; dealer; receiver }

let local_structure t v = View.local_structure t.view t.structure v

let local_view t v = View.view t.view v

let admissible t z = Structure.mem z t.structure

let corruption_sets t = Structure.maximal_sets t.structure

let honest_nodes t corrupted = Nodeset.diff (Graph.nodes t.graph) corrupted

let num_nodes t = Graph.num_nodes t.graph

let with_structure t structure =
  if not (Nodeset.subset (Structure.ground structure) (Graph.nodes t.graph))
  then invalid_arg "Instance.with_structure: ground outside graph";
  if Nodeset.mem t.dealer (Structure.ground structure) then
    invalid_arg "Instance.with_structure: dealer inside structure";
  { t with structure }

let with_view t view =
  if not (Graph.equal (View.graph view) t.graph) then
    invalid_arg "Instance.with_view: view over a different graph";
  { t with view }

let ad_hoc_of ~graph ~structure ~dealer ~receiver =
  make ~graph ~structure ~view:(View.ad_hoc graph) ~dealer ~receiver

let pp ppf t =
  Format.fprintf ppf
    "@[<v>instance: n=%d m=%d dealer=%d receiver=%d %a@,structure: %a@]"
    (Graph.num_nodes t.graph) (Graph.num_edges t.graph) t.dealer t.receiver
    View.pp t.view Structure.pp t.structure
