open Rmt_base
open Rmt_graph

let non_dealer_nodes g ~dealer = Nodeset.remove dealer (Graph.nodes g)

let global_threshold g ~dealer t =
  Structure.threshold ~ground:(non_dealer_nodes g ~dealer) t

let t_local g ~dealer t =
  let ground = non_dealer_nodes g ~dealer in
  if Nodeset.size ground > 20 then
    invalid_arg "Builders.t_local: graph too large for subset enumeration";
  Structure.of_predicate ~ground (fun z ->
      Nodeset.for_all
        (fun v -> Nodeset.size (Nodeset.inter z (Graph.neighbors v g)) <= t)
        (Graph.nodes g))

let from_maximal g ~dealer sets =
  let ground = non_dealer_nodes g ~dealer in
  Structure.of_sets ~ground (List.map (Nodeset.inter ground) sets)

let random_antichain rng g ~dealer ~sets ~max_size =
  let ground = non_dealer_nodes g ~dealer in
  let candidates =
    List.init sets (fun _ ->
        let size = 1 + Prng.int rng (max 1 max_size) in
        Prng.sample rng ground size)
  in
  Structure.of_sets ~ground candidates

let random_nonsolvable_bias rng g ~dealer ~receiver ~sets =
  let ground = non_dealer_nodes g ~dealer in
  let base =
    List.init sets (fun _ ->
        let size = 1 + Prng.int rng (max 1 (Nodeset.size ground / 3)) in
        Prng.sample rng ground size)
  in
  (* with probability 1/2, also admit a random large chunk of the
     receiver's neighborhood, which often forms half of a cut *)
  let near_r = Nodeset.inter (Graph.neighbors receiver g) ground in
  let biased =
    if Prng.bool rng && not (Nodeset.is_empty near_r) then
      [ Prng.subset rng near_r 0.7 ]
    else []
  in
  Structure.of_sets ~ground (biased @ base)
