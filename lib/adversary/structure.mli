(** General adversary structures (Hirt–Maurer).

    An adversary structure over a ground set [A] is a monotone family
    [𝒵 ⊆ 2^A]: with every set it contains all its subsets.  We represent a
    structure by the {e antichain of its maximal sets}, which makes
    membership a subset test against the maximal sets, and keeps the
    restriction and join operations polynomial in the antichain size.

    The ground set matters: the paper's [⊕] operation (Definition 2) is
    typed [𝕋^A × 𝕋^B → 𝕋^(A∪B)], and its compatibility condition
    [Z₁ ∩ B = Z₂ ∩ A] mentions the ground sets explicitly, so they are part
    of the value.

    Values are canonical: two structures are [equal] iff they have the same
    ground set and the same family of sets.

    Internally the antichain is {e packed}: maximal sets are stored in an
    array sorted by (cardinality, [Nodeset.compare]) with cached per-set
    popcounts and one-word signatures.  [mem] prefilters subset tests by
    size and signature, and the antichain reduction only compares a set
    against strictly larger ones (size-bucket pruning), so both are far
    below the naive O(k²) full-subset-check regime on large antichains. *)

open Rmt_base
open Rmt_graph

type t

(** {1 Construction} *)

val of_sets : ground:Nodeset.t -> Nodeset.t list -> t
(** Monotone closure of the given sets (i.e. the given sets become the
    candidate maximal sets; non-maximal ones are dropped).
    @raise Invalid_argument if some set is not within [ground]. *)

val empty_family : ground:Nodeset.t -> t
(** The empty family: {e no} corruption set is admissible, not even [∅].
    (Distinct from {!trivial}.) *)

val trivial : ground:Nodeset.t -> t
(** The family [{∅}]: the adversary corrupts nobody. *)

val threshold : ground:Nodeset.t -> int -> t
(** Global threshold: all sets of size [<= t].
    @raise Invalid_argument when the antichain [C(|ground|, t)] would
    exceed one million sets. *)

val of_predicate : ground:Nodeset.t -> (Nodeset.t -> bool) -> t
(** Structure containing every subset of [ground] satisfying the
    (monotone) predicate, reduced to its antichain of maximal sets.
    Enumerates all subsets: requires [|ground| <= 20].  The predicate must
    be downward closed; this is checked on the fly and a violation raises
    [Invalid_argument]. *)

val add_set : Nodeset.t -> t -> t
(** Adds one admissible set (and implicitly its subsets). *)

val reduce : Nodeset.t list -> Nodeset.t list
(** Antichain reduction: keeps only the maximal sets, deduplicated, in
    canonical (size, then [Nodeset.compare]) order.  The kernel under
    every constructor, exposed for candidate pipelines and tests. *)

(** Incremental antichain accumulation.  A mutable working antichain that
    maintains maximality on every insert, so candidate generators (the ⊕
    join in particular) can skip a candidate the moment it is covered by
    an earlier one instead of materializing all candidates and reducing
    quadratically at the end. *)
module Builder : sig
  type b

  val create : unit -> b

  val covered : b -> Nodeset.t -> bool
  (** Is the set dominated by (or equal to) a set already accumulated? *)

  val add : b -> Nodeset.t -> unit
  (** Insert, dropping the set if covered and evicting any accumulated
      sets it dominates. *)

  val seed : b -> Nodeset.t list -> unit
  (** Bulk-load sets {e assumed} to already form an antichain together
      with the builder's current contents, skipping all domination
      checks (O(k) instead of O(k²)).  Intended for re-seeding a builder
      from a previously reduced result; feeding it dominated sets breaks
      the builder's invariant and the resulting structure. *)

  val cardinal : b -> int

  val to_structure : ground:Nodeset.t -> b -> t
  (** Package the accumulated antichain.
      @raise Invalid_argument if some set is not within [ground]. *)
end

(** {1 Queries} *)

val ground : t -> Nodeset.t

val maximal_sets : t -> Nodeset.t list
(** The antichain, in canonical (sorted) order. *)

val num_maximal : t -> int

val mem : Nodeset.t -> t -> bool
(** [mem z s]: is [z] an admissible corruption set? *)

val is_empty_family : t -> bool

val equal : t -> t -> bool

val subset_family : t -> t -> bool
(** [subset_family s1 s2]: every set of [s1] belongs to [s2] (family
    inclusion, ground sets ignored). *)

(** {1 Operations} *)

val restrict : Nodeset.t -> t -> t
(** [restrict a s] is [𝒵^A = { Z ∩ A | Z ∈ 𝒵 }], with ground set
    [ground s ∩ a]. *)

val union_families : t -> t -> t
(** Family union; ground sets are united. *)

val inter_families : t -> t -> t
(** Family intersection (sets admissible in both); ground sets united. *)

val satisfies_qk : t -> Nodeset.t -> int -> bool
(** [satisfies_qk s a k] is the classical Hirt–Maurer Q⁽ᵏ⁾ condition on
    the node set [a]: {e no} [k] admissible sets jointly cover [a].
    Q⁽²⁾ over the middle set characterizes solvability of the paper's
    basic instances (Figure 1); Q⁽²⁾/Q⁽³⁾ over the whole player set are
    the classical feasibility thresholds for broadcast and MPC. *)

val covers_cut : t -> Graph.t -> int -> int -> bool
(** [covers_cut s g d r]: does some admissible set separate [d] from [r]
    in [g]?  (Checked on maximal sets — separation is monotone.) *)

(** {1 Formatting} *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
