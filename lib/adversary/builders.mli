(** Standard adversary structures over a communication graph.

    The general adversary model subsumes the global threshold model of
    Lamport–Shostak–Pease and the t-locally-bounded model of Koo; these
    builders construct those families explicitly so that the general
    machinery can be exercised against the classic special cases. *)

open Rmt_base
open Rmt_graph

val global_threshold : Graph.t -> dealer:int -> int -> Structure.t
(** Sets of at most [t] nodes, dealer excluded (the dealer is honest by
    assumption throughout the paper). *)

val t_local : Graph.t -> dealer:int -> int -> Structure.t
(** Koo's t-locally-bounded family: sets [Z] (dealer excluded) with
    [|Z ∩ N(v)| <= t] for every node [v].  Built by subset enumeration —
    requires [num_nodes g <= 21] (dealer is excluded from the ground). *)

val from_maximal : Graph.t -> dealer:int -> Nodeset.t list -> Structure.t
(** Explicit antichain over the graph's nodes minus the dealer; sets are
    clipped to exclude the dealer. *)

val random_antichain :
  Prng.t -> Graph.t -> dealer:int -> sets:int -> max_size:int -> Structure.t
(** [sets] random candidate maximal sets, each a uniform subset of the
    non-dealer nodes of size at most [max_size] (uniform in [1..max_size]);
    reduced to an antichain.  The workhorse workload for general-adversary
    experiments. *)

val random_nonsolvable_bias :
  Prng.t -> Graph.t -> dealer:int -> receiver:int -> sets:int -> Structure.t
(** Random antichain biased to include neighborhood-covering sets around
    the receiver, producing a healthy mix of solvable and unsolvable
    instances for tightness experiments. *)
