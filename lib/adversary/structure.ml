open Rmt_base

type t = {
  ground : Nodeset.t;
  maximal : Nodeset.t list; (* antichain, sorted by Nodeset.compare *)
}

(* Keep only maximal sets, sorted and deduplicated. *)
let reduce sets =
  let sorted = List.sort_uniq Nodeset.compare sets in
  List.filter
    (fun z ->
      not
        (List.exists
           (fun z' -> (not (Nodeset.equal z z')) && Nodeset.subset z z')
           sorted))
    sorted

let of_sets ~ground sets =
  List.iter
    (fun z ->
      if not (Nodeset.subset z ground) then
        invalid_arg "Structure.of_sets: set outside ground")
    sets;
  { ground; maximal = reduce sets }

let empty_family ~ground = { ground; maximal = [] }

let trivial ~ground = { ground; maximal = [ Nodeset.empty ] }

let binom n k =
  let k = min k (n - k) in
  if k < 0 then 0
  else begin
    let acc = ref 1 in
    for i = 1 to k do
      acc := !acc * (n - k + i) / i
    done;
    !acc
  end

let rec combinations k elts =
  if k = 0 then [ Nodeset.empty ]
  else
    match elts with
    | [] -> []
    | x :: rest ->
      List.map (Nodeset.add x) (combinations (k - 1) rest)
      @ combinations k rest

let threshold ~ground t =
  let n = Nodeset.size ground in
  let t = max 0 (min t n) in
  if binom n t > 1_000_000 then
    invalid_arg "Structure.threshold: antichain too large";
  { ground; maximal = reduce (combinations t (Nodeset.elements ground)) }

let of_predicate ~ground pred =
  if Nodeset.size ground > 20 then
    invalid_arg "Structure.of_predicate: ground too large";
  let sets = ref [] in
  Nodeset.subsets_iter ground (fun z -> if pred z then sets := z :: !sets);
  let maximal = reduce !sets in
  (* downward-closure sanity check: every single-element removal of an
     admissible set must stay admissible.  Exhaustive on small grounds,
     restricted to the antichain on larger ones to stay cheap. *)
  let to_check = if Nodeset.size ground <= 14 then !sets else maximal in
  List.iter
    (fun z ->
      Nodeset.iter
        (fun v ->
          if not (pred (Nodeset.remove v z)) then
            invalid_arg "Structure.of_predicate: predicate not monotone")
        z)
    to_check;
  { ground; maximal }

let add_set z s =
  { ground = Nodeset.union s.ground z; maximal = reduce (z :: s.maximal) }

let ground s = s.ground

let maximal_sets s = s.maximal

let num_maximal s = List.length s.maximal

let mem z s = List.exists (fun m -> Nodeset.subset z m) s.maximal

let is_empty_family s = s.maximal = []

let equal s1 s2 =
  Nodeset.equal s1.ground s2.ground
  && List.length s1.maximal = List.length s2.maximal
  && List.for_all2 Nodeset.equal s1.maximal s2.maximal

let subset_family s1 s2 = List.for_all (fun m -> mem m s2) s1.maximal

let restrict a s =
  {
    ground = Nodeset.inter s.ground a;
    maximal = reduce (List.map (Nodeset.inter a) s.maximal);
  }

let union_families s1 s2 =
  {
    ground = Nodeset.union s1.ground s2.ground;
    maximal = reduce (s1.maximal @ s2.maximal);
  }

let inter_families s1 s2 =
  (* maximal sets of the intersection are among pairwise intersections *)
  let candidates =
    List.concat_map
      (fun m1 -> List.map (fun m2 -> Nodeset.inter m1 m2) s2.maximal)
      s1.maximal
  in
  { ground = Nodeset.union s1.ground s2.ground; maximal = reduce candidates }

let satisfies_qk s a k =
  (* can k maximal sets cover a?  DFS over the antichain, shrinking a *)
  let rec coverable a k =
    if Nodeset.is_empty a then true
    else if k = 0 then false
    else
      List.exists
        (fun m ->
          (* skip sets that don't help *)
          (not (Nodeset.disjoint m a)) && coverable (Nodeset.diff a m) (k - 1))
        s.maximal
  in
  not (coverable a k)

let covers_cut s g d r =
  List.exists (fun m -> Rmt_graph.Connectivity.is_cut g d r m) s.maximal

let pp ppf s =
  Format.fprintf ppf "@[<hov 2>{ground=%a;@ maximal=[%a]}@]" Nodeset.pp s.ground
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       Nodeset.pp)
    s.maximal

let to_string s = Format.asprintf "%a" pp s
