open Rmt_base

(* Packed antichain representation.

   The maximal sets live in an array sorted by (cardinality, Nodeset.compare)
   — size-bucketed, since a set can only be dominated by a *strictly larger*
   one — with two per-set caches: the popcount and a one-word signature
   (OR-fold of the bitset words).  [subset a b] implies both [|a| <= |b|] and
   [sig a ⊆ sig b], so membership and reduction refute almost every candidate
   pair with two integer comparisons before touching the arrays. *)

type t = {
  ground : Nodeset.t;
  maximal : Nodeset.t array; (* antichain, sorted by (size, Nodeset.compare) *)
  sizes : int array; (* cached Nodeset.size, same index *)
  sigs : int array; (* cached Nodeset.signature, same index *)
}

let cmp_sized (s1, z1) (s2, z2) =
  let c = Int.compare s1 s2 in
  if c <> 0 then c else Nodeset.compare z1 z2

(* Sort by (size, compare), dedup, drop dominated sets.  Cross-bucket only:
   within a size bucket distinct sets never dominate each other, and a set
   dominated by an already-dominated one is also dominated by some kept
   (transitivity), so scanning kept strictly-larger sets suffices. *)
let pack sets =
  let keyed = Array.of_list (List.map (fun z -> (Nodeset.size z, z)) sets) in
  Array.sort cmp_sized keyed;
  let n0 = Array.length keyed in
  let uniq = ref 0 in
  for i = 0 to n0 - 1 do
    if !uniq = 0 || cmp_sized keyed.(!uniq - 1) keyed.(i) <> 0 then begin
      keyed.(!uniq) <- keyed.(i);
      incr uniq
    end
  done;
  let n = !uniq in
  let sizes = Array.init n (fun i -> fst keyed.(i)) in
  let elts = Array.init n (fun i -> snd keyed.(i)) in
  let sigs = Array.map Nodeset.signature elts in
  (* bound.(i): first index whose set is strictly larger than elts.(i) *)
  let bound = Array.make (max n 1) n in
  for i = n - 2 downto 0 do
    bound.(i) <- (if sizes.(i) = sizes.(i + 1) then bound.(i + 1) else i + 1)
  done;
  let keep = Array.make n true in
  for i = n - 1 downto 0 do
    let si = sigs.(i) in
    let j = ref bound.(i) in
    while keep.(i) && !j < n do
      if
        keep.(!j)
        && si land lnot sigs.(!j) = 0
        && Nodeset.subset elts.(i) elts.(!j)
      then keep.(i) <- false;
      incr j
    done
  done;
  let kept = ref 0 in
  Array.iter (fun k -> if k then incr kept) keep;
  let maximal = Array.make !kept Nodeset.empty in
  let out_sizes = Array.make !kept 0 in
  let out_sigs = Array.make !kept 0 in
  let w = ref 0 in
  for i = 0 to n - 1 do
    if keep.(i) then begin
      maximal.(!w) <- elts.(i);
      out_sizes.(!w) <- sizes.(i);
      out_sigs.(!w) <- sigs.(i);
      incr w
    end
  done;
  (maximal, out_sizes, out_sigs)

let make ~ground sets =
  let maximal, sizes, sigs = pack sets in
  { ground; maximal; sizes; sigs }

(* Keep only maximal sets, in canonical order — exposed for reuse in tests
   and candidate pipelines. *)
let reduce sets =
  let maximal, _, _ = pack sets in
  Array.to_list maximal

let of_sets ~ground sets =
  List.iter
    (fun z ->
      if not (Nodeset.subset z ground) then
        invalid_arg "Structure.of_sets: set outside ground")
    sets;
  make ~ground sets

let empty_family ~ground =
  { ground; maximal = [||]; sizes = [||]; sigs = [||] }

let trivial ~ground = make ~ground [ Nodeset.empty ]

let binom n k =
  let k = min k (n - k) in
  if k < 0 then 0
  else begin
    let acc = ref 1 in
    for i = 1 to k do
      acc := !acc * (n - k + i) / i
    done;
    !acc
  end

let rec combinations k elts =
  if k = 0 then [ Nodeset.empty ]
  else
    match elts with
    | [] -> []
    | x :: rest ->
      List.map (Nodeset.add x) (combinations (k - 1) rest)
      @ combinations k rest

let threshold ~ground t =
  let n = Nodeset.size ground in
  let t = max 0 (min t n) in
  if binom n t > 1_000_000 then
    invalid_arg "Structure.threshold: antichain too large";
  make ~ground (combinations t (Nodeset.elements ground))

let ground s = s.ground

let maximal_sets s = Array.to_list s.maximal

let num_maximal s = Array.length s.maximal

(* First index whose set has size >= k (binary search on the sorted sizes). *)
let first_at_least s k =
  let lo = ref 0 and hi = ref (Array.length s.maximal) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if s.sizes.(mid) < k then lo := mid + 1 else hi := mid
  done;
  !lo

let mem z s =
  let n = Array.length s.maximal in
  if n = 0 then false
  else begin
    let k = Nodeset.size z in
    let sg = Nodeset.signature z in
    let rec scan i =
      i < n
      && ((sg land lnot s.sigs.(i) = 0 && Nodeset.subset z s.maximal.(i))
          || scan (i + 1))
    in
    scan (first_at_least s k)
  end

let of_predicate ~ground pred =
  if Nodeset.size ground > 20 then
    invalid_arg "Structure.of_predicate: ground too large";
  let sets = ref [] in
  Nodeset.subsets_iter ground (fun z -> if pred z then sets := z :: !sets);
  let s = make ~ground !sets in
  (* downward-closure sanity check: every single-element removal of an
     admissible set must stay admissible.  Exhaustive on small grounds,
     restricted to the antichain on larger ones to stay cheap. *)
  let to_check =
    if Nodeset.size ground <= 14 then !sets else maximal_sets s
  in
  List.iter
    (fun z ->
      Nodeset.iter
        (fun v ->
          if not (pred (Nodeset.remove v z)) then
            invalid_arg "Structure.of_predicate: predicate not monotone")
        z)
    to_check;
  s

let add_set z s =
  make ~ground:(Nodeset.union s.ground z) (z :: maximal_sets s)

let is_empty_family s = Array.length s.maximal = 0

let equal s1 s2 =
  Nodeset.equal s1.ground s2.ground
  && Array.length s1.maximal = Array.length s2.maximal
  && begin
    let ok = ref true in
    Array.iteri
      (fun i m -> if not (Nodeset.equal m s2.maximal.(i)) then ok := false)
      s1.maximal;
    !ok
  end

let subset_family s1 s2 = Array.for_all (fun m -> mem m s2) s1.maximal

let restrict a s =
  make ~ground:(Nodeset.inter s.ground a)
    (Array.fold_left (fun acc m -> Nodeset.inter a m :: acc) [] s.maximal)

let union_families s1 s2 =
  make
    ~ground:(Nodeset.union s1.ground s2.ground)
    (maximal_sets s1 @ maximal_sets s2)

let inter_families s1 s2 =
  (* maximal sets of the intersection are among pairwise intersections *)
  let candidates =
    Array.fold_left
      (fun acc m1 ->
        Array.fold_left (fun acc m2 -> Nodeset.inter m1 m2 :: acc) acc
          s2.maximal)
      [] s1.maximal
  in
  make ~ground:(Nodeset.union s1.ground s2.ground) candidates

let satisfies_qk s a k =
  (* can k maximal sets cover a?  DFS over the antichain, shrinking a *)
  let rec coverable a k =
    if Nodeset.is_empty a then true
    else if k = 0 then false
    else
      Array.exists
        (fun m ->
          (* skip sets that don't help *)
          (not (Nodeset.disjoint m a)) && coverable (Nodeset.diff a m) (k - 1))
        s.maximal
  in
  not (coverable a k)

let covers_cut s g d r =
  Array.exists (fun m -> Rmt_graph.Connectivity.is_cut g d r m) s.maximal

(* ------------------------------------------------------------------ *)
(* Incremental antichain accumulation                                  *)
(* ------------------------------------------------------------------ *)

module Builder = struct
  (* Unordered working antichain with the same (size, signature) caches as
     the packed form.  [add] keeps the invariant incrementally, so a
     candidate pipeline (e.g. the ⊕ join) skips covered candidates the
     moment they are produced instead of accumulating all of them for a
     final quadratic reduction. *)
  type entry = {
    e_size : int;
    e_sig : int;
    e_set : Nodeset.t;
  }

  type b = { mutable items : entry list }

  let create () = { items = [] }

  let covered_keyed b k sg z =
    List.exists
      (fun e ->
        e.e_size >= k
        && sg land lnot e.e_sig = 0
        && Nodeset.subset z e.e_set)
      b.items

  let covered b z = covered_keyed b (Nodeset.size z) (Nodeset.signature z) z

  let add b z =
    let k = Nodeset.size z in
    let sg = Nodeset.signature z in
    if not (covered_keyed b k sg z) then begin
      let survivors =
        List.filter
          (fun e ->
            not
              (e.e_size <= k
              && e.e_sig land lnot sg = 0
              && Nodeset.subset e.e_set z))
          b.items
      in
      b.items <- { e_size = k; e_sig = sg; e_set = z } :: survivors
    end

  let cardinal b = List.length b.items

  (* Load a known antichain without domination checks: O(k) instead of
     the O(k²) of [add]-ing each set against the others.  The incremental
     ⊕ repair ([Joint.join_delta]) seeds a builder with the previous join
     result before streaming only the delta's candidates through [add]. *)
  let seed b sets =
    List.iter
      (fun z ->
        b.items <-
          { e_size = Nodeset.size z; e_sig = Nodeset.signature z; e_set = z }
          :: b.items)
      sets

  let to_structure ~ground b =
    (* items already form an antichain; [make] only re-sorts into canonical
       order (the cross-bucket domination scan finds nothing to drop) *)
    List.iter
      (fun e ->
        if not (Nodeset.subset e.e_set ground) then
          invalid_arg "Structure.Builder.to_structure: set outside ground")
      b.items;
    make ~ground (List.map (fun e -> e.e_set) b.items)
end

let pp ppf s =
  Format.fprintf ppf "@[<hov 2>{ground=%a;@ maximal=[%a]}@]" Nodeset.pp s.ground
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       Nodeset.pp)
    (maximal_sets s)

let to_string s = Format.asprintf "%a" pp s
