(** Instance generators and parameter sweeps for the experiment harness.

    Instances come labelled so experiment tables can report per-family
    rows.  All generators are deterministic given the PRNG. *)

open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge

type labelled = {
  label : string;
  instance : Instance.t;
}

(** {1 Topologies} *)

val named_topologies : unit -> (string * Graph.t * int * int) list
(** A fixed menu of small structured topologies
    [(name, graph, dealer, receiver)] used across experiments: grid,
    layered, ladder, cycle, wheel-ish communities, random-regular. *)

type knowledge =
  | Ad_hoc
  | Radius of int
  | Full

val view_of : knowledge -> Graph.t -> View.t

val knowledge_label : knowledge -> string

(** {1 Adversary structures} *)

type adversary_kind =
  | Threshold of int  (** global-[t] *)
  | Local of int  (** Koo's [t]-locally-bounded *)
  | Random_antichain of { sets : int; max_size : int }

val structure_of :
  Prng.t -> adversary_kind -> Graph.t -> dealer:int -> Structure.t

val adversary_label : adversary_kind -> string

(** {1 Instance suites} *)

val make_instance :
  Prng.t -> Graph.t -> dealer:int -> receiver:int -> knowledge ->
  adversary_kind -> Instance.t

val tightness_suite : Prng.t -> count:int -> n:int -> labelled list
(** Random connected [G(n, p)] instances with mixed adversary kinds and
    knowledge levels — the E3 workload, balanced between solvable and
    unsolvable instances. *)

val ad_hoc_suite : Prng.t -> count:int -> n:int -> labelled list
(** Same but always in the ad hoc model — the E4 workload. *)

val scaling_family : width:int -> max_depth:int -> (int * Instance.t) list
(** Layered instances of growing depth (ad hoc, global threshold
    [t = width - 1 ... ] chosen solvable) keyed by node count — the E6
    workload. *)

val random_structures :
  Prng.t -> universe:int -> sets:int -> max_size:int -> count:int ->
  Structure.t list
(** Random antichains over [{0..universe-1}] for the ⊕ micro-benchmarks
    (E1/B-series). *)
