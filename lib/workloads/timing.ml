(* Wall-clock measurement helpers, quarantined here so the rest of the
   tree stays free of nondeterminism sources (rmt-lint R3).

   This module is bench-only by contract: elapsed seconds are reported to
   humans and benchmark records; they must never feed a protocol
   decision, a trace, or any value a replay compares.  rmt-lint exempts
   exactly lib/base/prng.ml, bench/ and this file from R3. *)

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let time_with_domains ~domains f input =
  let t0 = Unix.gettimeofday () in
  let r = Parsweep.map ~domains f input in
  (r, Unix.gettimeofday () -. t0)
