(* Domain-based parallel map over independent instances.

   Work distribution is an atomic cursor into the input array: every
   domain (the spawned workers plus the calling domain) repeatedly claims
   the next unclaimed index with [Atomic.fetch_and_add] and writes its
   result into that slot of the output array.  Slots are written by
   exactly one domain and only read after [Domain.join], so no further
   synchronization is needed; result ordering is the input ordering by
   construction, making the parallel path bit-for-bit identical to the
   sequential one for pure [f].

   The cursor doubles as dynamic load balancing: a domain that draws a
   cheap instance immediately claims the next one, so skew across
   instances (cut deciders vary by orders of magnitude) does not idle
   cores the way static chunking would. *)

let recommended_domains () = max 1 (Domain.recommended_domain_count ())

exception Worker_failure of exn

let map ?domains f (input : 'a array) : 'b array =
  let n = Array.length input in
  let d =
    match domains with
    | Some d ->
      if d < 1 then invalid_arg "Parsweep.map: domains must be >= 1";
      d
    | None -> recommended_domains ()
  in
  let d = min d n in
  if d <= 1 then (
    (* same failure surface as the parallel path *)
    try Array.map f input with e -> raise (Worker_failure e))
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let running = ref true in
      while !running do
        let i = Atomic.fetch_and_add cursor 1 in
        if i >= n || Atomic.get failure <> None then running := false
        else
          match f input.(i) with
          | r -> results.(i) <- Some r
          | exception e ->
            (* first failure wins; other domains drain and stop *)
            ignore (Atomic.compare_and_set failure None (Some e))
      done
    in
    let spawned = Array.init (d - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    (match Atomic.get failure with
     | Some e -> raise (Worker_failure e)
     | None -> ());
    Array.map
      (function
        | Some r -> r
        | None ->
          (* unreachable without a failure: every index below the final
             cursor position was claimed and completed by some domain *)
          assert false)
      results
  end

let map_list ?domains f l =
  Array.to_list (map ?domains f (Array.of_list l))
