(** Bench-only wall-clock timing.

    The single sanctioned home (outside [bench/]) for wall-clock reads:
    rmt-lint's R3 rule forbids [Unix.gettimeofday] and friends everywhere
    else in [lib/], so that no timing noise can leak into protocol
    decisions, traces or replayable artifacts.  Callers must treat the
    elapsed seconds as reporting output only. *)

val time_it : (unit -> 'a) -> 'a * float
(** Result and elapsed wall-clock seconds. *)

val time_with_domains :
  domains:int -> ('a -> 'b) -> 'a array -> 'b array * float
(** {!Parsweep.map} plus its wall-clock seconds — the measurement hook
    for the scaling benchmarks. *)
