(** Multicore sweep driver: a [Domain]-based parallel map over independent
    experiment instances.

    Built on the raw OCaml 5 stdlib ([Domain], [Atomic]) — no additional
    dependencies.  Work is distributed dynamically through an atomic
    cursor (each domain claims the next unprocessed index), which load-
    balances the highly skewed per-instance costs of the cut deciders.
    Results are stored by input index, so the output ordering — and, for
    pure functions, the output itself — is bit-for-bit identical to the
    sequential [Array.map], whatever the interleaving of domains.

    Functions mapped in parallel must not share mutable state; in this
    repository that means pre-splitting any {!Rmt_base.Prng} streams per
    instance {e before} the sweep (consumption order inside one instance
    is then deterministic, and no stream is shared across domains). *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()], floored at 1. *)

exception Worker_failure of exn
(** Raised by {!map} in the calling domain when some worker raised; the
    payload is the first exception observed.  Remaining workers stop
    claiming work and are joined before the re-raise. *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~domains f input] is [Array.map f input], computed on [domains]
    domains ({!recommended_domains} by default; the calling domain is one
    of them).  [domains = 1] (or a short input) degrades to the plain
    sequential map with no domain spawned.
    @raise Invalid_argument if [domains < 1].
    @raise Worker_failure if [f] raised on some element. *)

val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} through array conversion; preserves list order. *)

(** Wall-clock measurement of sweeps lives in {!Timing}
    ([Timing.time_with_domains]), the bench-only module rmt-lint exempts
    from its R3 nondeterminism rule. *)
