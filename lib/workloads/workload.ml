open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge

type labelled = {
  label : string;
  instance : Instance.t;
}

let named_topologies () =
  let rng = Prng.create 2016 in
  [
    ("grid-3x3", Generators.grid 3 3, 0, 8);
    ("grid-3x4", Generators.grid 3 4, 0, 11);
    ("layered-3x2", Generators.layered ~width:3 ~depth:2, 0, 7);
    ("layered-4x2", Generators.layered ~width:4 ~depth:2, 0, 9);
    ("ladder-5", Generators.ladder 5, 0, 9);
    ("cycle-8", Generators.cycle 8, 0, 4);
    ("complete-6", Generators.complete 6, 0, 5);
    ("regular-12", Generators.random_regular_ish rng 12 4, 0, 11);
    ( "communities",
      Generators.communities rng ~blocks:3 ~size:4 ~p_in:0.9 ~p_out:0.15,
      0,
      11 );
    ("hypercube-3", Generators.hypercube 3, 0, 7);
    ("binary-tree-3", Generators.binary_tree 3, 0, 14);
    ("barbell-4", Generators.barbell 4, 0, 7);
    ("king-3x4", Generators.king_grid 3 4, 0, 11);
  ]

type knowledge =
  | Ad_hoc
  | Radius of int
  | Full

let view_of k g =
  match k with
  | Ad_hoc -> View.ad_hoc g
  | Radius r -> View.radius r g
  | Full -> View.full g

let knowledge_label = function
  | Ad_hoc -> "ad-hoc"
  | Radius r -> Printf.sprintf "radius-%d" r
  | Full -> "full"

type adversary_kind =
  | Threshold of int
  | Local of int
  | Random_antichain of {
      sets : int;
      max_size : int;
    }

let structure_of rng kind g ~dealer =
  match kind with
  | Threshold t -> Builders.global_threshold g ~dealer t
  | Local t -> Builders.t_local g ~dealer t
  | Random_antichain { sets; max_size } ->
    Builders.random_antichain rng g ~dealer ~sets ~max_size

let adversary_label = function
  | Threshold t -> Printf.sprintf "thr-%d" t
  | Local t -> Printf.sprintf "local-%d" t
  | Random_antichain { sets; max_size } ->
    Printf.sprintf "rand-%dx%d" sets max_size

let make_instance rng g ~dealer ~receiver knowledge kind =
  Instance.make ~graph:g
    ~structure:(structure_of rng kind g ~dealer)
    ~view:(view_of knowledge g) ~dealer ~receiver

let pick_distant_receiver g dealer =
  let ds = Connectivity.distances_from g dealer in
  List.fold_left
    (fun (bv, bd) (v, d) -> if d > bd then (v, d) else (bv, bd))
    (dealer, 0) ds
  |> fst

let random_graph rng n =
  let p = 2.2 *. log (float_of_int n) /. float_of_int n in
  Generators.random_connected_gnp rng n (min 0.9 p)

let suite rng ~count ~n ~knowledge_menu =
  List.init count (fun i ->
      let g = random_graph rng n in
      let dealer = 0 in
      let receiver = pick_distant_receiver g dealer in
      let kinds =
        [
          Threshold 1;
          Threshold 2;
          Random_antichain { sets = 4; max_size = max 1 (n / 4) };
          Random_antichain { sets = 8; max_size = max 1 (n / 3) };
        ]
      in
      let kind = List.nth kinds (i mod List.length kinds) in
      let knowledge =
        List.nth knowledge_menu (i mod List.length knowledge_menu)
      in
      let instance = make_instance rng g ~dealer ~receiver knowledge kind in
      {
        label =
          Printf.sprintf "%s/%s" (adversary_label kind)
            (knowledge_label knowledge);
        instance;
      })

let tightness_suite rng ~count ~n =
  suite rng ~count ~n ~knowledge_menu:[ Ad_hoc; Radius 1; Radius 2; Full ]

let ad_hoc_suite rng ~count ~n = suite rng ~count ~n ~knowledge_menu:[ Ad_hoc ]

let scaling_family ~width ~max_depth =
  List.init max_depth (fun i ->
      let depth = i + 1 in
      let g = Generators.layered ~width ~depth in
      let receiver = 1 + (width * depth) in
      (* width-connected layers tolerate any ⌈width/2⌉−1 corruptions *)
      let t = max 1 (((width + 1) / 2) - 1) in
      let structure = Builders.global_threshold g ~dealer:0 t in
      ( Graph.num_nodes g,
        Instance.ad_hoc_of ~graph:g ~structure ~dealer:0 ~receiver ))

let random_structures rng ~universe ~sets ~max_size ~count =
  let ground = Nodeset.range 0 universe in
  List.init count (fun _ ->
      let candidates =
        List.init sets (fun _ ->
            Prng.sample rng ground (1 + Prng.int rng (max 1 max_size)))
      in
      Structure.of_sets ~ground candidates)
