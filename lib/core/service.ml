open Rmt_base
open Rmt_knowledge

type stats = {
  updates : int;
  rejected : int;
  queries : int;
  cached : int;
  witness_reuses : int;
  searches : int;
}

type t = {
  mutable inst : Instance.t;
  mutable gen : int; (* bumped on every applied delta *)
  mutable verdict : (int * Cut.verdict) option; (* tagged by gen *)
  mutable updates : int;
  mutable rejected : int;
  mutable queries : int;
  mutable cached : int;
  mutable witness_reuses : int;
  mutable searches : int;
}

let create inst =
  {
    inst;
    gen = 0;
    verdict = None;
    updates = 0;
    rejected = 0;
    queries = 0;
    cached = 0;
    witness_reuses = 0;
    searches = 0;
  }

let instance t = t.inst

let generation t = t.gen

let apply t delta =
  match Delta.apply t.inst delta with
  | Ok inst ->
    t.inst <- inst;
    t.gen <- t.gen + 1;
    t.updates <- t.updates + 1;
    Ok ()
  | Error m ->
    t.rejected <- t.rejected + 1;
    Error m

let cut ?budget t =
  t.queries <- t.queries + 1;
  match t.verdict with
  | Some (g, v) when g = t.gen ->
    t.cached <- t.cached + 1;
    v
  | Some (_, prev) ->
    let v, how = Cut.update ?budget ~prev t.inst in
    (match how with
     | `Witness_reused -> t.witness_reuses <- t.witness_reuses + 1
     | `Researched -> t.searches <- t.searches + 1);
    t.verdict <- Some (t.gen, v);
    v
  | None ->
    let v = Cut.find_rmt_cut ?budget t.inst in
    t.searches <- t.searches + 1;
    t.verdict <- Some (t.gen, v);
    v

let solvable ?budget t = Solvability.of_verdict (cut ?budget t)

let stats t =
  {
    updates = t.updates;
    rejected = t.rejected;
    queries = t.queries;
    cached = t.cached;
    witness_reuses = t.witness_reuses;
    searches = t.searches;
  }

(* ------------------------------------------------------------------ *)
(* Replay protocol                                                     *)
(* ------------------------------------------------------------------ *)

type command =
  | Update of Delta.t
  | Query_solvable
  | Query_cut
  | Query_stats

let parse_int w =
  match int_of_string_opt w with
  | Some v when v >= 0 -> Ok v
  | _ -> Error (Printf.sprintf "expected a node id, got %S" w)

let parse_set w =
  let parts = String.split_on_char ',' w in
  let rec go acc = function
    | [] -> Ok acc
    | p :: rest -> (
      match parse_int p with
      | Ok v -> go (Nodeset.add v acc) rest
      | Error _ -> Error (Printf.sprintf "expected a node set N[,N..], got %S" w))
  in
  go Nodeset.empty parts

let parse_command line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun w -> w <> "")
  in
  let ( let* ) = Result.bind in
  match words with
  | [] -> Ok None
  | [ "solvable?" ] -> Ok (Some Query_solvable)
  | [ "cut?" ] -> Ok (Some Query_cut)
  | [ "stats?" ] -> Ok (Some Query_stats)
  | [ "add-edge"; u; v ] ->
    let* u = parse_int u in
    let* v = parse_int v in
    Ok (Some (Update (Delta.Add_edge (u, v))))
  | [ "remove-edge"; u; v ] ->
    let* u = parse_int u in
    let* v = parse_int v in
    Ok (Some (Update (Delta.Remove_edge (u, v))))
  | [ "add-node"; v ] ->
    let* v = parse_int v in
    Ok (Some (Update (Delta.Add_node (v, Nodeset.empty))))
  | [ "add-node"; v; links ] ->
    let* v = parse_int v in
    let* links = parse_set links in
    Ok (Some (Update (Delta.Add_node (v, links))))
  | [ "remove-node"; v ] ->
    let* v = parse_int v in
    Ok (Some (Update (Delta.Remove_node v)))
  | [ "add-set"; z ] ->
    let* z = parse_set z in
    Ok (Some (Update (Delta.Add_set z)))
  | [ "remove-set"; z ] ->
    let* z = parse_set z in
    Ok (Some (Update (Delta.Remove_set z)))
  | w :: _ -> Error (Printf.sprintf "unknown command %S" w)

let set_compact z =
  match Nodeset.elements z with
  | [] -> "-"
  | elts -> String.concat "," (List.map string_of_int elts)

let exec ?budget t = function
  | Update d -> (
    match apply t d with
    | Ok () -> Printf.sprintf "ok %d" t.gen
    | Error m -> Printf.sprintf "error: %s" m)
  | Query_solvable ->
    Format.asprintf "%a" Solvability.pp_feasibility (solvable ?budget t)
  | Query_cut -> (
    let v = cut ?budget t in
    match v.Cut.cut_found with
    | Some w ->
      Printf.sprintf "cut c1=%s c2=%s" (set_compact w.Cut.c1)
        (set_compact w.Cut.c2)
    | None -> if v.Cut.complete then "cut none" else "cut unknown")
  | Query_stats ->
    let s = stats t in
    Printf.sprintf
      "stats updates=%d rejected=%d queries=%d cached=%d reused=%d searched=%d"
      s.updates s.rejected s.queries s.cached s.witness_reuses s.searches

let replay ?budget t ic oc =
  let errors = ref 0 in
  (try
     while true do
       let line = input_line ic in
       match parse_command line with
       | Ok None -> ()
       | Ok (Some c) ->
         let out = exec ?budget t c in
         if String.length out >= 6 && String.sub out 0 6 = "error:" then
           incr errors;
         output_string oc (out ^ "\n")
       | Error m ->
         incr errors;
         output_string oc ("error: " ^ m ^ "\n")
     done
   with End_of_file -> ());
  !errors
