(** Minimal knowledge needed for RMT (end of Section 3).

    View functions are partially ordered by pointwise subgraph inclusion;
    the non-existence of an RMT-cut characterizes exactly the views under
    which RMT is solvable, so "how much must players know?" becomes a
    search for minimal views without an RMT-cut.  Two searches are
    provided: the radius frontier (smallest uniform [k] such that
    [radius k] views suffice) and a greedy per-node minimization, which
    produces a view that is minimal in the partial order (shrinking any
    single node's view to a smaller radius re-creates a cut). *)

open Rmt_graph
open Rmt_knowledge

val radius_frontier :
  ?budget:int -> graph:Graph.t -> structure:Rmt_adversary.Structure.t ->
  dealer:int -> receiver:int -> unit -> (int * Solvability.feasibility) list
(** Feasibility at every radius [0 .. diameter]; the frontier is the first
    [Solvable] entry (if any). *)

val minimal_radius :
  ?budget:int -> graph:Graph.t -> structure:Rmt_adversary.Structure.t ->
  dealer:int -> receiver:int -> unit -> int option
(** Smallest [k] with no RMT-cut under [radius k] views; [None] when even
    full knowledge does not make the instance solvable (or a budget ran
    out before certainty). *)

val greedy_minimal_views :
  ?budget:int -> Instance.t -> (int * int) list option
(** Starting from per-node radii equal to the graph's diameter, repeatedly
    shrink one node's radius while no RMT-cut appears.  Returns the
    resulting per-node radii [(node, radius)], or [None] when the instance
    is unsolvable even at full radii.  The result is a locally minimal
    knowledge assignment — the paper's "minimal γ" notion restricted to
    the radius-indexed chain of views. *)
