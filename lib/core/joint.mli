(** The joint view operation [⊕] on adversary structures (Definition 2).

    [𝓔^A ⊕ 𝓕^B = { Z₁ ∪ Z₂ | Z₁ ∈ 𝓔^A, Z₂ ∈ 𝓕^B, Z₁ ∩ B = Z₂ ∩ A }]

    combines two players' partial knowledge of the adversary into the
    {e maximal} adversary structure consistent with both (Theorem 1): any
    structure whose restrictions to [A] and [B] match the operands is
    contained in the join.  The operation is commutative, associative and
    idempotent (Theorems 11, 13, 14), so the joint structure of a node set
    [𝒵_B = ⊕_{v ∈ B} 𝒵^{V(γ(v))}] is well defined regardless of order.

    The implementation works on antichains: for maximal [M₁ ∈ 𝓔],
    [M₂ ∈ 𝓕] the unique maximal compatible union is
    [(M₁∖B) ∪ (M₂∖A) ∪ (M₁ ∩ M₂)], and every compatible union is contained
    in one of these candidates, so the join costs
    [O(|𝓔|·|𝓕|)] set operations plus an antichain reduction.  Candidates
    stream through an incremental antichain ({!Structure.Builder}), so
    already-covered candidates are discarded as they are generated rather
    than being accumulated for a final quadratic reduction. *)

open Rmt_base
open Rmt_adversary
open Rmt_knowledge

val join : Structure.t -> Structure.t -> Structure.t
(** [join e f] is [𝓔^A ⊕ 𝓕^B] where [A], [B] are the operands' ground
    sets; the result's ground set is [A ∪ B]. *)

val join_delta :
  prev:Structure.t ->
  e:Structure.t ->
  f:Structure.t ->
  e':Structure.t ->
  f':Structure.t ->
  Structure.t * [ `Incremental | `Recomputed ]
(** [join_delta ~prev ~e ~f ~e' ~f'] is [join e' f'], repaired from
    [prev = join e f] when the operands only {e grew} — same ground sets,
    [subset_family e e'] and [subset_family f f'].  Candidates of the ⊕
    antichain algorithm are monotone in both operands, so under growth the
    previous antichain seeds the reduction ({!Structure.Builder.seed}) and
    only pairs involving an added maximal set are generated:
    O((|Δ𝓔|·|𝓕'| + |𝓔'|·|Δ𝓕|)) candidates instead of |𝓔'|·|𝓕'|.  Any other
    delta falls back to the from-scratch join; the tag reports which path
    ran.  Either way the result is exactly [join e' f']. *)

val join_memo : Structure.t -> Structure.t -> Structure.t
(** {!join}, memoized globally by hash-consed identity ({!Hc.memo_join}).
    Same results as [join].  Use where repeated joins of identical
    operands are expected across searches (the streaming service, delta
    replays); the plain [join] stays unmemoized so benchmarks and
    one-shot sweeps measure and pay the true cost. *)

val join_list : Structure.t list -> Structure.t
(** Folds {!join}; the empty list yields the identity [{∅}^∅]. *)

val identity : Structure.t
(** [{∅}] over the empty ground set: [join identity s] is [s]. *)

val restriction_cache : View.t -> Structure.t -> int -> Structure.t
(** [restriction_cache γ 𝒵] is a memoized [v ↦ 𝒵^{V(γ(v))}]: the first
    call per node computes the restriction, later calls return the cached
    value.  The cut deciders thread one cache through their whole
    connected-subset enumeration so each node's local structure is
    restricted exactly once per search instead of once per enumerated
    component (the restriction is the dominant per-step cost there).
    Since the hash-consing overhaul the per-call table is only a
    node-indexed front: the restriction itself comes from the global
    content-addressed memo ({!Hc.memo_restrict}), so repeated searches
    over the same instance — the streaming service in particular — share
    one computation per distinct (view nodes, structure) pair. *)

val joint_structure : View.t -> Structure.t -> Nodeset.t -> Structure.t
(** [joint_structure γ 𝒵 B] is [𝒵_B = ⊕_{v ∈ B} 𝒵^{V(γ(v))}] — what the
    members of [B], pooling their initial knowledge, consider the maximal
    possible adversary structure (Section 2).  By Corollary 2 it always
    contains [𝒵^{V(γ(B))}]. *)

val mem_joint : Nodeset.t -> Structure.t list -> bool
(** [mem_joint z parts]: is [z] in the join of the given structures?
    Shortcut for [Structure.mem z (join_list parts)]. *)
