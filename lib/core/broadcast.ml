open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge

(* Definition 10: unlike the RMT variant, the shielded side B may sit
   anywhere in the graph.  It suffices to consider connected B with
   C = N(B) (the conditions on C₂ are monotone and a full cut dominates
   its component-wise boundary); to enumerate each candidate exactly once
   we anchor B at its minimum element. *)
let find_zpp_cut ?budget (inst : Instance.t) =
  let g = inst.graph in
  let d = inst.dealer in
  let forbidden_base = Graph.closed_neighborhood d g in
  let maximal = Structure.maximal_sets inst.structure in
  let condition b c2 =
    Nodeset.for_all
      (fun u ->
        let nu = Graph.neighbors u g in
        Structure.mem (Nodeset.inter nu c2)
          (Structure.restrict (Nodeset.add u nu) inst.structure))
      b
  in
  let found = ref None in
  let complete = ref true in
  let visited = ref 0 in
  let seeds =
    Nodeset.elements (Nodeset.diff (Graph.nodes g) forbidden_base)
  in
  List.iter
    (fun seed ->
      if !found = None then begin
        let forbidden =
          (* anchor: no member smaller than the seed *)
          Nodeset.union forbidden_base (Nodeset.range 0 seed)
        in
        let outcome =
          Subset_enum.connected_supersets ?budget g ~seed ~forbidden (fun b ->
              let c = Graph.neighborhood_of_set b g in
              List.exists
                (fun m ->
                  let c2 = Nodeset.diff c m in
                  if condition b c2 then begin
                    found :=
                      Some
                        Cut.
                          {
                            b_side = b;
                            cut = c;
                            c1 = Nodeset.inter c m;
                            c2;
                          };
                    true
                  end
                  else false)
                maximal)
        in
        visited := !visited + outcome.visited;
        if not outcome.complete then complete := false
      end)
    seeds;
  Cut.{ cut_found = !found; complete = !complete; visited = !visited }

let solvable ?budget inst =
  let v = find_zpp_cut ?budget inst in
  match (v.cut_found, v.complete) with
  | Some _, _ -> Solvability.Unsolvable
  | None, true -> Solvability.Solvable
  | None, false -> Solvability.Unknown

let blocked_nodes ?budget (inst : Instance.t) =
  Nodeset.filter
    (fun v ->
      v <> inst.dealer
      &&
      let inst_v =
        Instance.make ~graph:inst.graph ~structure:inst.structure
          ~view:inst.view ~dealer:inst.dealer ~receiver:v
      in
      Cut.exists_certainly (Cut.find_rmt_zpp_cut ?budget inst_v))
    (Graph.nodes inst.graph)

type run_result = {
  deciders : int;
  honest : int;
  wrong : int;
  complete : bool;
}

let run ?oracle ?(adversary = Rmt_net.Engine.no_adversary) (inst : Instance.t)
    ~x_dealer =
  let decider =
    Zcpa.decider_of_oracle
      (match oracle with Some o -> o | None -> Zcpa.direct_oracle inst)
  in
  let auto = Zcpa.automaton ~forward_all:true ~decider inst ~x_dealer in
  let outcome = Rmt_net.Engine.run ~graph:inst.graph ~adversary auto in
  let honest_players =
    Nodeset.remove inst.dealer
      (Nodeset.diff (Graph.nodes inst.graph) adversary.Rmt_net.Engine.corrupted)
  in
  let deciders = ref 0 and wrong = ref 0 in
  Nodeset.iter
    (fun v ->
      match Rmt_net.Engine.decision_of outcome v with
      | Some x ->
        incr deciders;
        if x <> x_dealer then incr wrong
      | None -> ())
    honest_players;
  let honest = Nodeset.size honest_players in
  {
    deciders = !deciders;
    honest;
    wrong = !wrong;
    complete = !deciders = honest && !wrong = 0;
  }
