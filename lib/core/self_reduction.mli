(** Self-reducibility of RMT (Section 5, Theorem 9) — the machinery behind
    poly-time uniqueness of the 𝒵-CPA scheme (Corollary 10).

    {b Basic instances} ([𝒢'], Figure 1) have a dealer, a middle set
    [A(G')] and a receiver, with edges only dealer–middle and
    middle–receiver.  RMT is solvable on such an instance iff the middle
    set is not the union of two admissible corruption sets.

    {b Decision protocol} (proof of Theorem 9): when a player [v] has
    partitioned the neighbors it heard from into value classes
    [A_1 … A_m], exactly one class [A_h ∉ 𝒵_v] exists, and [v] can find it
    by simulating, for each [l], the paired runs [e_0^l] (dealer value 0,
    corruption [A ∖ A_l]) and [e_1^l] (dealer value 1, corruption [A_l])
    of any protocol [Π] solving RMT on basic instances — each corrupted
    side mirroring its honest twin, exactly the co-simulation of
    {!Attack.co_simulate} (Figure 2).  [v] decides [a_l] for the [l]
    whose run [e_0^l] ends with decision 0.

    Plugging the resulting {!Zcpa.decider} into the 𝒵-CPA scheme turns
    any fully polynomial [Π] for the basic family into a fully polynomial
    protocol for the original family: 𝒵-CPA is poly-time unique.
    Experiment E7 validates the construction by checking that the
    simulation-based decider and the direct membership oracle produce
    identical decisions.

    One deviation from the proof's bookkeeping: Theorem 9 halts any
    simulated local computation that exceeds an explicit bound [B] (the
    polynomial bound of Π on valid runs) to keep the invalid run of each
    pair polynomial.  Our Π implementations terminate on every input —
    RMT-PKA under its {!Rmt_pka.budgets}, 𝒵-CPA unconditionally — so the
    halting device is subsumed by those budgets rather than implemented as
    a separate step counter. *)

open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge
open Rmt_net

(** {1 Basic instances (the family 𝒢′ of Figure 1)} *)

val basic_graph : dealer:int -> receiver:int -> middle:Nodeset.t -> Graph.t
(** Star–star graph over the given (arbitrary) node ids.
    @raise Invalid_argument if dealer/receiver collide with the middle
    set or each other, or if the middle set is empty. *)

val basic_instance :
  dealer:int -> receiver:int -> middle:Nodeset.t -> structure:Structure.t ->
  Instance.t
(** Ad hoc instance on {!basic_graph} with the structure restricted to the
    middle set. *)

val basic_solvable : middle:Nodeset.t -> structure:Structure.t -> bool
(** The closed-form feasibility criterion on basic instances: no two
    admissible sets cover the middle set. *)

(** {1 The protocol Π interface} *)

module type PI = sig
  type s
  type m

  val automaton : Instance.t -> x_dealer:int -> (s, m) Engine.automaton
end

type pi = (module PI)
(** A protocol usable as the Theorem 9 subroutine.  Packaging the
    automaton builder as a first-class module lets the paired runs share
    the protocol's state and message types. *)

(** {1 The simulated decider} *)

val decision_protocol :
  pi:pi ->
  structure_of:(int -> Structure.t) ->
  dealer:int ->
  Zcpa.decider
(** [decision_protocol ~pi ~structure_of ~dealer] builds the 𝒵-CPA rule-2
    subroutine: for player [v] with value classes [(a_l, A_l)], it
    simulates the paired runs on the basic instance
    [(G', 𝒵_v, dealer, v)] with middle set [A = ⋃ A_l] and
    [𝒵_v = structure_of v], returning the certified value, if any. *)

val zcpa_pi : pi
(** Π = 𝒵-CPA itself (with the direct oracle) — fully polynomial on basic
    instances given the oracle. *)

val rmt_pka_pi : pi
(** Π = RMT-PKA — demonstrates that the reduction is agnostic in the
    subroutine protocol. *)

val simulated_decider : ?pi:pi -> Instance.t -> Zcpa.decider
(** The decider for a concrete instance: [structure_of] is the instance's
    local structure and [dealer] its dealer ([Π] defaults to {!zcpa_pi}). *)
