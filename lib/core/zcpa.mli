(** 𝒵-CPA adapted for RMT (Section 4.1) — the unique safe protocol for the
    ad hoc model.

    The dealer sends its value to its neighbors and terminates.  A player
    adjacent to the dealer decides on the value received from the dealer;
    any other player decides on [x] once it has received [x] from a set of
    neighbors [N ⊆ 𝒩(v)] with [N ∉ 𝒵_v]; on deciding, a player forwards
    the value to its neighbors (the receiver just outputs it) and
    terminates.

    𝒵-CPA is a {e protocol scheme} (Definition 8): the membership check
    [N ∉ 𝒵_v] is a black-box subroutine.  [automaton] therefore takes the
    subroutine as a value of type {!oracle}; {!direct_oracle} answers from
    the instance's explicit local structures, while
    {!Self_reduction.simulated_oracle} answers by simulating an RMT
    protocol on basic instances (Theorem 9). *)

open Rmt_base
open Rmt_knowledge
open Rmt_net

type oracle = v:int -> Nodeset.t -> bool
(** [oracle ~v n] must return [true] iff [n ∉ 𝒵_v] — i.e. the senders set
    [n] cannot be entirely corrupted, so a common value from it is
    certified. *)

val direct_oracle : Instance.t -> oracle
(** Answers membership from the instance's local structure
    [𝒵_v = 𝒵^{V(γ(v))}] (in the ad hoc model, [𝒵] restricted to
    [𝒩(v) ∪ {v}]). *)

val counting_oracle : oracle -> int ref * oracle
(** Wraps an oracle, counting invocations (the scheme's subroutine-call
    complexity; experiment E6). *)

type decider = v:int -> (int * Nodeset.t) list -> int option
(** The rule-2 subroutine in its most general form: given the current
    partition of heard-from neighbors into value classes
    [(x, senders-of-x)], return the certified value, if any.  Theorem 9's
    simulation-based decision protocol has exactly this shape: it
    identifies the unique class [A_h ∉ 𝒵_v] rather than answering
    isolated membership queries. *)

val decider_of_oracle : oracle -> decider
(** The textbook rule 2: the first value (in ascending order) whose
    sender set passes the membership check. *)

type state

val automaton :
  ?forward_all:bool ->
  decider:decider -> Instance.t -> x_dealer:int -> (state, int) Engine.automaton
(** Messages are bare values [x ∈ X].  With [forward_all] (default
    [false]) the receiver also forwards on deciding — rule 3 of the
    {e original broadcast} 𝒵-CPA, needed when every player's decision
    matters ({!Broadcast}); the RMT adaptation has the receiver output
    and terminate without relaying. *)

val decision : state -> int option

type run_result = {
  decided : int option;
  correct : bool;
  rounds : int;
  messages : int;
  bits : int;
  oracle_calls : int;
  all_honest_decided : bool;
      (** whether every honest player decided (the broadcast view) *)
}

val run :
  ?oracle:oracle ->
  ?decider:decider ->
  ?adversary:int Engine.strategy ->
  Instance.t ->
  x_dealer:int ->
  run_result
(** Runs 𝒵-CPA on the instance.  [decider] takes precedence over
    [oracle]; the default is [direct_oracle].  [oracle_calls] counts
    membership checks only when the oracle path is used (a custom
    [decider] reports 0). *)
