(** Byzantine-resilient topology discovery — the future-work direction the
    paper closes with ("techniques used here (e.g. the ⊕ operation) may be
    applicable to that problem").

    Nodes flood their local views exactly like RMT-PKA's type-2 messages;
    an observer collects the reports and reconstructs what it can trust:

    - an edge is {e confirmed} when both endpoints' reports contain it —
      an honest node never confirms a fake incident edge, so a confirmed
      fake edge needs {e both} endpoints corrupted (or fictitious);
    - a node is {e conflicted} when two distinct reports about it arrived —
      impossible without adversarial interference, since honest nodes
      report once and relays may not alter payloads undetected (the trail
      check pins any alteration to a corrupted relay);
    - {e claimed} edges are everything any report asserts — an upper
      envelope, useful to bound what the adversary pretends.

    Guarantees proved by the tests: in any run, (a) every edge between
    honest nodes that are connected to the observer through honest paths
    is confirmed, and (b) every confirmed non-edge of the real graph has
    both endpoints outside the honest node set. *)

open Rmt_base
open Rmt_graph
open Rmt_knowledge
open Rmt_net

type db

val observe :
  ?adversary:Rmt_pka.msg Engine.strategy ->
  Instance.t ->
  observer:int ->
  db
(** Runs the type-2 flood on the instance's graph and collects at the
    observer.  The observer's own view seeds the database.  RMT-PKA
    adversary strategies ({!Strategies}) plug in directly — the message
    type is shared. *)

val confirmed : db -> Graph.t
(** Bilaterally confirmed edges over non-conflicted reporters.  Nodes
    enter only through confirmed incident edges (a lone self-report could
    be a phantom); the observer itself is always present. *)

val claimed : db -> Graph.t
(** Union of every (non-conflicted) claim — the adversary's envelope. *)

val conflicted : db -> Nodeset.t
(** Nodes with contradictory reports: proof of adversarial interference
    concerning them. *)

val reported_nodes : db -> Nodeset.t
(** Every node id about which at least one report arrived (fictitious ids
    included). *)

type accuracy = {
  true_edges : int;  (** edges of the real graph *)
  confirmed_true : int;  (** ... that were confirmed *)
  confirmed_false : int;  (** confirmed edges not in the real graph *)
  phantom_nodes : int;  (** reported ids outside the real graph *)
}

val score : Instance.t -> db -> accuracy
(** Compare a reconstruction against the ground truth (for experiments —
    the observer itself cannot compute this). *)
