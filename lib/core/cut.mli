(** The paper's cut notions and exact deciders for them.

    - {b RMT-cut} (Definition 3) — the tight obstruction for RMT in the
      partial knowledge model: a cut [C = C₁ ∪ C₂] separating [D] from [R]
      with [C₁ ∈ 𝒵] and [C₂ ∩ V(γ(B)) ∈ 𝒵_B], where [B] is the connected
      component of [R] after removing [C].  RMT is solvable iff no RMT-cut
      exists (Theorems 3 and 5).
    - {b RMT 𝒵-pp cut} (Definition 7) — the ad hoc specialization: the
      second condition becomes [∀u ∈ B, N(u) ∩ C₂ ∈ 𝒵_u].  Z-CPA solves
      RMT iff no such cut exists (Theorems 7 and 8).

    Both deciders enumerate receiver-side components: it suffices to
    consider cuts of the form [C = N(B)] for connected [B ∋ R] with
    [D ∉ B ∪ N(B)] (any other cut dominates one of these — conditions on
    [C₂] are monotone and [C₁] can absorb arbitrary extra nodes only when
    they fit in an admissible set anyway), and for the [C₁]/[C₂] split it
    suffices to try [C₁ = C ∩ M] for each maximal [M ∈ 𝒵].  Enumeration is
    exponential in the worst case: every verdict carries a completeness
    flag tied to an explicit budget. *)

open Rmt_base
open Rmt_knowledge

type witness = {
  b_side : Nodeset.t;  (** the receiver-side connected component [B] *)
  cut : Nodeset.t;  (** [C = N(B)] *)
  c1 : Nodeset.t;  (** the admissible part, [∈ 𝒵] *)
  c2 : Nodeset.t;  (** the locally-plausible part *)
}

type verdict = {
  cut_found : witness option;
  complete : bool;
      (** [false]: the search budget was exhausted before the space was
          covered, so [cut_found = None] means "unknown" *)
  visited : int;
      (** number of connected components the enumeration actually
          examined — on budget-capped sweeps this is how much of the
          space was covered before the verdict *)
}

val exists_certainly : verdict -> bool

val absent_certainly : verdict -> bool

val find_rmt_cut : ?budget:int -> Instance.t -> verdict
(** RMT-cut existence in the partial knowledge model (Definition 3).
    [𝒵_B] and [V(γ(B))] are threaded incrementally through the
    enumeration, and the per-node view restrictions feeding the [⊕]
    threading are memoized for the whole search
    ({!Joint.restriction_cache}). *)

val find_rmt_cut_naive : ?budget:int -> Instance.t -> verdict
(** Same verdict as {!find_rmt_cut} but recomputing [𝒵_B] and [V(γ(B))]
    from scratch for every enumerated component instead of threading them
    incrementally through the enumeration.  Exists as the ablation
    baseline for experiment A1; prefer {!find_rmt_cut}. *)

val find_rmt_zpp_cut : ?budget:int -> Instance.t -> verdict
(** RMT 𝒵-pp cut existence (Definition 7).  Local structures [𝒵_u] are
    taken from the instance's view function, which in the ad hoc model is
    the star of [u]; the decider itself only consults [N(u)]-restrictions,
    matching the definition. *)

val update :
  ?budget:int ->
  prev:verdict ->
  Instance.t ->
  verdict * [ `Witness_reused | `Researched ]
(** [update ~prev inst] re-decides RMT-cut existence after [inst] changed,
    reusing [prev] (the verdict for the pre-delta instance) when possible.
    If [prev]'s witness still satisfies Definition 3 on the new instance —
    checked exactly via {!is_rmt_cut} — the verdict is rebuilt around it
    in one check ([`Witness_reused], [visited = 0]; the reused witness's
    [cut] field is [c1 ∪ c2], which may strictly contain [N(b_side)]).
    Otherwise a full {!find_rmt_cut} runs ([`Researched]), itself
    amortized across calls by the global restriction memo.  Either way
    the verdict's meaning is identical to a from-scratch search:
    solvability conclusions agree (test/core/test_incremental.ml). *)

val is_rmt_cut : Instance.t -> Nodeset.t -> Nodeset.t -> bool
(** [is_rmt_cut inst c1 c2]: checks Definition 3 directly for a concrete
    split — [c1 ∪ c2] separates [D] from [R], [c1 ∈ 𝒵], and
    [c2 ∩ V(γ(B)) ∈ 𝒵_B] for [B] the receiver-side component. *)

val is_rmt_zpp_cut : Instance.t -> Nodeset.t -> Nodeset.t -> bool
(** Same for Definition 7. *)

val pp_witness : Format.formatter -> witness -> unit
