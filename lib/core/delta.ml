open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge

type t =
  | Add_edge of int * int
  | Remove_edge of int * int
  | Add_node of int * Nodeset.t
  | Remove_node of int
  | Add_set of Nodeset.t
  | Remove_set of Nodeset.t

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

(* Rebuild the instance over an edited graph: transport the view rule,
   keep the structure (restricted to survivors), re-check every invariant
   through Instance.make. *)
let with_graph (inst : Instance.t) g' =
  match View.rebuild inst.view g' with
  | None -> err "cannot transport a custom view to a modified topology"
  | Some view -> (
    let structure =
      if Nodeset.subset (Structure.ground inst.structure) (Graph.nodes g')
      then inst.structure
      else Structure.restrict (Graph.nodes g') inst.structure
    in
    try
      Ok
        (Instance.make ~graph:g' ~structure ~view ~dealer:inst.dealer
           ~receiver:inst.receiver)
    with Invalid_argument m -> err "%s" m)

let with_structure (inst : Instance.t) structure =
  try Ok (Instance.with_structure inst structure)
  with Invalid_argument m -> err "%s" m

let remove_edge_graph g u v =
  Graph.of_nodes_edges (Graph.nodes g)
    (List.filter (fun (a, b) -> not (a = min u v && b = max u v)) (Graph.edges g))

let apply (inst : Instance.t) delta =
  let g = inst.graph in
  match delta with
  | Add_edge (u, v) ->
    if u = v then err "add-edge %d %d: self-loop" u v
    else if not (Graph.mem_node u g) then err "add-edge: no node %d" u
    else if not (Graph.mem_node v g) then err "add-edge: no node %d" v
    else if Graph.mem_edge u v g then err "add-edge %d %d: edge exists" u v
    else with_graph inst (Graph.add_edge u v g)
  | Remove_edge (u, v) ->
    if not (Graph.mem_edge u v g) then err "remove-edge %d %d: no such edge" u v
    else with_graph inst (remove_edge_graph g u v)
  | Add_node (v, links) ->
    if v < 0 then err "add-node: negative id %d" v
    else if Graph.mem_node v g then err "add-node %d: node exists" v
    else if not (Nodeset.subset links (Graph.nodes g)) then
      err "add-node %d: a link endpoint is not in the graph" v
    else
      with_graph inst
        (Nodeset.fold (fun u acc -> Graph.add_edge v u acc) links
           (Graph.add_node v g))
  | Remove_node v ->
    if not (Graph.mem_node v g) then err "remove-node: no node %d" v
    else if v = inst.dealer then err "remove-node %d: the dealer" v
    else if v = inst.receiver then err "remove-node %d: the receiver" v
    else with_graph inst (Graph.remove_node v g)
  | Add_set z ->
    if not (Nodeset.subset z (Graph.nodes g)) then
      err "add-set %s: outside the graph" (Nodeset.to_string z)
    else if Nodeset.mem inst.dealer z then
      err "add-set %s: contains the dealer" (Nodeset.to_string z)
    else with_structure inst (Structure.add_set z inst.structure)
  | Remove_set z ->
    let maximal = Structure.maximal_sets inst.structure in
    if not (List.exists (Nodeset.equal z) maximal) then
      err "remove-set %s: not a maximal set" (Nodeset.to_string z)
    else
      with_structure inst
        (Structure.of_sets
           ~ground:(Structure.ground inst.structure)
           (List.filter (fun m -> not (Nodeset.equal z m)) maximal))

let apply_all inst deltas =
  List.fold_left
    (fun acc d -> Result.bind acc (fun inst -> apply inst d))
    (Ok inst) deltas

let pp ppf = function
  | Add_edge (u, v) -> Format.fprintf ppf "add-edge %d %d" u v
  | Remove_edge (u, v) -> Format.fprintf ppf "remove-edge %d %d" u v
  | Add_node (v, links) ->
    Format.fprintf ppf "add-node %d %a" v Nodeset.pp links
  | Remove_node v -> Format.fprintf ppf "remove-node %d" v
  | Add_set z -> Format.fprintf ppf "add-set %a" Nodeset.pp z
  | Remove_set z -> Format.fprintf ppf "remove-set %a" Nodeset.pp z

let to_string d = Format.asprintf "%a" pp d
