open Rmt_base
open Rmt_graph
open Rmt_knowledge

let instance_with_radius ~graph ~structure ~dealer ~receiver k =
  Instance.make ~graph ~structure ~view:(View.radius k graph) ~dealer ~receiver

let radius_frontier ?budget ~graph ~structure ~dealer ~receiver () =
  let diam = Option.value (Connectivity.diameter graph) ~default:0 in
  List.init (diam + 1) (fun k ->
      let inst = instance_with_radius ~graph ~structure ~dealer ~receiver k in
      (k, Solvability.partial_knowledge ?budget inst))

let minimal_radius ?budget ~graph ~structure ~dealer ~receiver () =
  List.find_map
    (fun (k, f) -> if Solvability.is_solvable f then Some k else None)
    (radius_frontier ?budget ~graph ~structure ~dealer ~receiver ())

let views_of_radii graph radii =
  View.of_assignment graph (fun v ->
      match List.assoc_opt v radii with
      | Some k -> Graph.restrict_to_radius v k graph
      | None -> Graph.restrict_to_radius v 0 graph)

let greedy_minimal_views ?budget (inst : Instance.t) =
  let graph = inst.graph in
  let diam = Option.value (Connectivity.diameter graph) ~default:0 in
  let nodes = Nodeset.elements (Graph.nodes graph) in
  let solvable radii =
    let view = views_of_radii graph radii in
    let inst' = Instance.with_view inst view in
    Solvability.is_solvable (Solvability.partial_knowledge ?budget inst')
  in
  let full = List.map (fun v -> (v, diam)) nodes in
  if not (solvable full) then None
  else begin
    (* shrink each node's radius as far as solvability allows, one node at
       a time; the result is minimal w.r.t. single-node shrinking *)
    let shrink radii v =
      let rec go radii =
        let k = List.assoc v radii in
        if k = 0 then radii
        else begin
          let candidate =
            List.map (fun (u, r) -> if u = v then (u, k - 1) else (u, r)) radii
          in
          if solvable candidate then go candidate else radii
        end
      in
      go radii
    in
    Some (List.fold_left shrink full nodes)
  end
