(** Long-lived solvability service over a stream of instance deltas.

    Wraps one live {!Rmt_knowledge.Instance} and answers
    [is_solvable]/[cut] queries at memoized cost while {!Delta} updates
    stream in:

    - verdicts are generation-tagged: a query on an unchanged instance is
      a cache hit and costs nothing;
    - after updates, the next query runs {!Cut.update} against the last
      verdict — a surviving witness is revalidated in one check instead
      of a fresh enumeration;
    - full re-searches (and everything else that restricts or joins
      structures) amortize across generations through the hash-consed
      global memos ({!Hc}).

    The service state is allocated per {!create} — nothing is shared
    between two services except the (mutex-guarded) {!Hc} tables — and
    the reported {!stats} are deterministic: they count decisions taken,
    never GC-dependent cache occupancy, so replay output is stable enough
    to pin as a golden file (instances/*.golden, `rmt serve-solve`).

    The replay side speaks a one-command-per-line text protocol, shared
    by the CLI and the smoke tests:

    {v
    add-edge U V        remove-edge U V
    add-node V [N,..]   remove-node V
    add-set N[,N..]     remove-set N[,N..]
    solvable?           cut?           stats?
    v}

    Blank lines and [#] comments are skipped.  Every command produces
    exactly one output line. *)

open Rmt_knowledge

type t

val create : Instance.t -> t

val instance : t -> Instance.t
(** The current (post-deltas) instance. *)

val generation : t -> int
(** Number of successfully applied updates since {!create}. *)

val apply : t -> Delta.t -> (unit, string) result
(** Apply one delta.  On [Error] the instance is unchanged and the
    generation does not advance. *)

val cut : ?budget:int -> t -> Cut.verdict
(** RMT-cut verdict for the current instance: cached per generation,
    repaired via {!Cut.update} across generations. *)

val solvable : ?budget:int -> t -> Solvability.feasibility
(** {!Solvability.of_verdict} of {!cut}. *)

type stats = {
  updates : int;  (** deltas successfully applied *)
  rejected : int;  (** deltas refused by {!Delta.apply} *)
  queries : int;  (** [cut]/[solvable] calls *)
  cached : int;  (** queries answered from the generation cache *)
  witness_reuses : int;  (** queries settled by revalidating a witness *)
  searches : int;  (** queries that ran a full enumeration *)
}

val stats : t -> stats

(** {1 Replay protocol} *)

type command =
  | Update of Delta.t
  | Query_solvable
  | Query_cut
  | Query_stats

val parse_command : string -> (command option, string) result
(** [Ok None] for blank/comment lines. *)

val exec : ?budget:int -> t -> command -> string
(** Execute one command, returning its single deterministic output line
    (without newline). *)

val replay : ?budget:int -> t -> in_channel -> out_channel -> int
(** Drive the line protocol from a channel, echoing one output line per
    command ([error: ...] lines for malformed or rejected input).
    Returns the number of error lines emitted. *)
