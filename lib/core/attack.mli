(** The indistinguishability attacks behind the necessity proofs
    (Theorem 3, Theorem 8, Figure 2).

    Given a cut witness [C = C₁ ∪ C₂], two runs are co-simulated:

    - run [e]: the real instance [(G, 𝒵, γ, D, R)], dealer value [x₀],
      corruption set [C₁ ∈ 𝒵]; every corrupted player sends exactly what
      its {e honest} twin sends in run [e'];
    - run [e']: the forged instance [(G, 𝒵', γ, D, R)] with
      [𝒵' = 𝒵 ∪ ↓{C₂}], dealer value [x₁ ≠ x₀], corruption set [C₂ ∈ 𝒵'];
      corrupted players mirror their honest twins of run [e].

    Players on the receiver side [B] have identical initial knowledge in
    both instances ([𝒵'_u = 𝒵_u] for [u ∈ B] — this is exactly what the
    cut conditions guarantee) and identical views of every execution
    round, so the receiver's decision must be the same in both runs while
    the dealer's value differs: a protocol that decides in run [e] is
    unsafe, and a safe protocol must stay undecided.

    The co-simulation is exact: each player is honest in at least one of
    the two runs (C₁ ∩ C₂ = ∅); its state evolves there and its outgoing
    messages are replayed verbatim in the other run. *)

open Rmt_base
open Rmt_graph
open Rmt_knowledge
open Rmt_net

type verdict = {
  decision_e : int option;  (** receiver's decision in run [e] *)
  decision_e' : int option;
  views_agree : bool;
      (** the receiver decided identically in both runs (it must, if the
          construction is correct and the protocol deterministic) *)
  safety_broken : bool;
      (** the receiver decided on the same value in both runs — since the
          dealer's values differ, the decision is wrong in one of them *)
  observed : (int * (int option * int option)) list;
      (** decisions of the requested observers in runs [e] and [e'];
          observers inside the shielded component [B] must agree across
          the runs — their entire views coincide, not just the
          receiver's *)
}

val co_simulate :
  ?max_rounds:int ->
  ?observers:int list ->
  graph:Graph.t ->
  c1:Nodeset.t ->
  c2:Nodeset.t ->
  ('s, 'm) Engine.automaton ->
  ('s, 'm) Engine.automaton ->
  receiver:int ->
  verdict
(** [co_simulate ~graph ~c1 ~c2 auto_e auto_e' ~receiver] runs the paired
    execution.  [c1] and [c2] must be disjoint and exclude the receiver.
    @raise Invalid_argument otherwise. *)

val forged_structure : Instance.t -> Nodeset.t -> Instance.t
(** [forged_structure inst c2] is the instance with
    [𝒵' = 𝒵 ∪ ↓{c2}] — the structure the [B]-side cannot tell from [𝒵]
    when [c2] satisfies the cut's second condition. *)

val against_rmt_pka :
  ?budgets:Rmt_pka.budgets -> ?observers:int list ->
  Instance.t -> Cut.witness -> x0:int -> x1:int -> verdict
(** Mounts the two-face attack on RMT-PKA using an RMT-cut witness. *)

val against_zcpa :
  ?oracle_of:(Instance.t -> Zcpa.oracle) -> ?observers:int list ->
  Instance.t -> Cut.witness -> x0:int -> x1:int -> verdict
(** Same against 𝒵-CPA (with its oracle built per instance — the forged
    run must consult the forged structure). *)
