(** Instance deltas — the update language of the streaming solvability
    machinery (DESIGN.md §12).

    A delta is a small, checkable edit to a live {!Rmt_knowledge.Instance}:
    topology edits (edge add/remove, node join/crash) and adversary-model
    edits (one maximal set added/retired).  [apply] re-validates every
    instance invariant and re-derives the view over the new topology via
    {!Rmt_knowledge.View.rebuild}, so a stream of deltas can never smuggle
    an ill-formed instance past [Instance.make].

    Semantic choices worth knowing:
    - [Remove_node] restricts the adversary structure to the surviving
      nodes (a crashed node leaves the adversary's reach); removing the
      dealer or receiver is an error, not a re-rooting.
    - [Add_node] leaves the structure untouched: a joining node is not in
      any admissible set until an explicit [Add_set] says so.
    - Topology deltas under a [Custom] view are errors — an opaque
      assignment closure cannot be transported to a new graph. *)

open Rmt_base
open Rmt_knowledge

type t =
  | Add_edge of int * int  (** both endpoints must already exist *)
  | Remove_edge of int * int
  | Add_node of int * Nodeset.t
      (** a fresh node joining, linked to the given existing nodes
          (possibly none: an isolated joiner) *)
  | Remove_node of int  (** a crash; must not be the dealer or receiver *)
  | Add_set of Nodeset.t
      (** one more maximal admissible set (and its subsets) *)
  | Remove_set of Nodeset.t
      (** retire one currently-maximal set (its proper subsets stay
          admissible only if another maximal set covers them) *)

val apply : Instance.t -> t -> (Instance.t, string) result

val apply_all : Instance.t -> t list -> (Instance.t, string) result
(** Left fold of {!apply}; stops at the first error. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
