open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge
open Rmt_net

(* ------------------------------------------------------------------ *)
(* RMT-PKA strategies                                                  *)
(* ------------------------------------------------------------------ *)

let pka_silent corrupted = Byzantine.silent corrupted

let pka_mimic inst ~x_dealer corrupted =
  Byzantine.mimic_honest corrupted (Rmt_pka.automaton inst ~x_dealer)

let map_payload f (s : Rmt_pka.msg Engine.send) =
  Engine.
    { s with payload = { s.payload with Flood.payload = f s.payload.Flood.payload } }

let pka_value_flip inst ~x_dealer ~x_fake corrupted =
  Byzantine.transform corrupted (Rmt_pka.automaton inst ~x_dealer)
    (fun _ ~round:_ s ->
      [
        map_payload
          (function
            | Rmt_pka.Value _ -> Rmt_pka.Value x_fake
            | Rmt_pka.Info r -> Rmt_pka.Info r)
          s;
      ])

(* Inject forged messages on top of honest behavior. *)
let with_injection inst ~x_dealer corrupted inject =
  let honest =
    Byzantine.mimic_honest corrupted (Rmt_pka.automaton inst ~x_dealer)
  in
  Engine.
    {
      corrupted;
      act =
        (fun v ~round ~inbox ->
          honest.act v ~round ~inbox @ inject v ~round);
    }

let broadcast_msg g v m =
  Nodeset.fold
    (fun u acc -> Engine.{ dst = u; payload = m } :: acc)
    (Graph.neighbors v g)
    []

let pka_trail_forge (inst : Instance.t) ~x_dealer ~x_fake corrupted =
  with_injection inst ~x_dealer corrupted (fun v ~round ->
      if round = 1 then
        broadcast_msg inst.graph v
          Flood.{ payload = Rmt_pka.Value x_fake; trail = [ inst.dealer; v ] }
      else [])

let permissive_structure ground =
  (* "anyone but me might be corrupted" — a maximally permissive lie *)
  Structure.of_sets ~ground [ ground ]

let pka_topology_liar (inst : Instance.t) ~x_dealer corrupted =
  with_injection inst ~x_dealer corrupted (fun v ~round ->
      if round = 1 then begin
        let true_gamma = Instance.local_view inst v in
        let fake_gamma = Graph.add_edge v inst.dealer true_gamma in
        let ground = Nodeset.remove inst.dealer (Graph.nodes fake_gamma) in
        let fake_report =
          Rmt_pka.
            { origin = v; gamma = fake_gamma; zeta = permissive_structure ground }
        in
        broadcast_msg inst.graph v
          Flood.{ payload = Rmt_pka.Info fake_report; trail = [ v ] }
      end
      else [])

let pka_fictitious (inst : Instance.t) ~x_dealer ~x_fake corrupted =
  (* the phantom gets an id just above every real node *)
  let phantom =
    match Nodeset.max_elt_opt (Graph.nodes inst.graph) with
    | Some m -> m + 1
    | None -> 0
  in
  with_injection inst ~x_dealer corrupted (fun v ~round ->
      if round = 1 then begin
        let phantom_gamma =
          Graph.add_edge phantom v
            (Graph.add_edge phantom inst.dealer Graph.empty)
        in
        let phantom_report =
          Rmt_pka.
            {
              origin = phantom;
              gamma = phantom_gamma;
              zeta = Structure.trivial ~ground:Nodeset.empty;
            }
        in
        broadcast_msg inst.graph v
          Flood.{ payload = Rmt_pka.Info phantom_report; trail = [ phantom; v ] }
        @ broadcast_msg inst.graph v
            Flood.
              {
                payload = Rmt_pka.Value x_fake;
                trail = [ inst.dealer; phantom; v ];
              }
      end
      else [])

let pka_edge_forger (inst : Instance.t) ~x_dealer ~x_fake corrupted =
  with_injection inst ~x_dealer corrupted (fun v ~round ->
      if round = 1 then begin
        let nbrs = Graph.neighbors v inst.graph in
        (* claim a clique over the neighborhood plus dealer spokes *)
        let fake_gamma =
          Nodeset.fold
            (fun u acc ->
              let acc =
                if u <> inst.dealer then Graph.add_edge inst.dealer u acc
                else acc
              in
              Nodeset.fold
                (fun w acc -> if u < w then Graph.add_edge u w acc else acc)
                nbrs acc)
            nbrs
            (Instance.local_view inst v)
        in
        let ground = Nodeset.remove inst.dealer (Graph.nodes fake_gamma) in
        let report =
          Rmt_pka.
            { origin = v; gamma = fake_gamma; zeta = permissive_structure ground }
        in
        broadcast_msg inst.graph v
          Flood.{ payload = Rmt_pka.Info report; trail = [ v ] }
        @ Nodeset.fold
            (fun u acc ->
              (* a value that "arrived" over the invented dealer spoke *)
              broadcast_msg inst.graph v
                Flood.
                  {
                    payload = Rmt_pka.Value x_fake;
                    trail = [ inst.dealer; u; v ];
                  }
              @ acc)
            nbrs []
      end
      else [])

let pka_fuzz rng (inst : Instance.t) ~x_dealer corrupted =
  let nodes = Graph.nodes inst.graph in
  let n = Graph.num_nodes inst.graph in
  let random_node () =
    (* mostly real ids, sometimes a phantom *)
    if Prng.int rng 5 = 0 then n + Prng.int rng 3
    else Prng.pick rng (Nodeset.to_array nodes)
  in
  let random_trail v =
    let len = 1 + Prng.int rng 4 in
    List.init len (fun _ -> random_node ()) @ [ v ]
  in
  let random_graph () =
    let g = ref Graph.empty in
    for _ = 1 to 1 + Prng.int rng 5 do
      let a = random_node () and b = random_node () in
      if a <> b then g := Graph.add_edge a b !g else g := Graph.add_node a !g
    done;
    !g
  in
  let random_payload () =
    if Prng.bool rng then Rmt_pka.Value (Prng.int rng 100)
    else begin
      let gamma = random_graph () in
      let origin =
        match Nodeset.choose_opt (Graph.nodes gamma) with
        | Some v -> v
        | None -> random_node ()
      in
      let gamma = Graph.add_node origin gamma in
      let ground = Graph.nodes gamma in
      let zeta =
        if Prng.bool rng then Structure.trivial ~ground
        else Structure.of_sets ~ground [ Prng.subset rng ground 0.5 ]
      in
      Rmt_pka.Info { origin; gamma; zeta }
    end
  in
  with_injection inst ~x_dealer corrupted (fun v ~round ->
      if round <= n then begin
        let spam = 1 + Prng.int rng 3 in
        List.concat
          (List.init spam (fun _ ->
               broadcast_msg inst.graph v
                 Flood.{ payload = random_payload (); trail = random_trail v }))
      end
      else [])

let pka_full_menu inst ~x_dealer ~x_fake corrupted =
  [
    ("silent", pka_silent corrupted);
    ("mimic", pka_mimic inst ~x_dealer corrupted);
    ("value-flip", pka_value_flip inst ~x_dealer ~x_fake corrupted);
    ("trail-forge", pka_trail_forge inst ~x_dealer ~x_fake corrupted);
    ("topology-liar", pka_topology_liar inst ~x_dealer corrupted);
    ("fictitious-node", pka_fictitious inst ~x_dealer ~x_fake corrupted);
    ("edge-forger", pka_edge_forger inst ~x_dealer ~x_fake corrupted);
    ("fuzz", pka_fuzz (Prng.create 424242) inst ~x_dealer corrupted);
  ]

(* ------------------------------------------------------------------ *)
(* Value-message strategies                                            *)
(* ------------------------------------------------------------------ *)

let value_silent corrupted = Byzantine.silent corrupted

let value_flip ~x_fake g corrupted =
  Byzantine.of_fun corrupted (fun v ~round ~inbox:_ ->
      if round = 1 then
        Nodeset.fold
          (fun u acc -> Engine.{ dst = u; payload = x_fake } :: acc)
          (Graph.neighbors v g)
          []
      else [])

let value_spam rng ~values g corrupted =
  Byzantine.of_fun corrupted (fun v ~round ~inbox:_ ->
      if round <= Graph.num_nodes g && values <> [] then
        Nodeset.fold
          (fun u acc ->
            Engine.{ dst = u; payload = Prng.pick_list rng values } :: acc)
          (Graph.neighbors v g)
          []
      else [])

let value_full_menu rng ~x_fake g corrupted =
  [
    ("silent", value_silent corrupted);
    ("value-flip", value_flip ~x_fake g corrupted);
    ("value-spam", value_spam rng ~values:[ x_fake; x_fake + 1 ] g corrupted);
  ]
