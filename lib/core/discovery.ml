open Rmt_base
open Rmt_graph
open Rmt_knowledge
open Rmt_net

type db = {
  observer : int;
  versions : (int, Rmt_pka.report list) Hashtbl.t;
}

(* Observer-side collection: same trail checks as the RMT-PKA receiver. *)
let record db ~src (m : Rmt_pka.msg) =
  if Flood.trail_ok ~self:db.observer ~src m.trail then
    match (m.payload, m.trail) with
    | Rmt_pka.Info r, o :: _
      when o = r.origin && r.origin <> db.observer
           && Graph.mem_node r.origin r.gamma ->
      let known = Option.value (Hashtbl.find_opt db.versions r.origin) ~default:[] in
      if
        not
          (List.exists
             (fun r' ->
               Graph.equal r'.Rmt_pka.gamma r.gamma
               && Rmt_adversary.Structure.equal r'.zeta r.zeta)
             known)
      then Hashtbl.replace db.versions r.origin (r :: known)
    | _ -> ()

type state =
  | Observer
  | Relay of int

let observe ?(adversary = Engine.no_adversary) (inst : Instance.t) ~observer =
  if not (Graph.mem_node observer inst.graph) then
    invalid_arg "Discovery.observe: observer not in the graph";
  let g = inst.graph in
  let db = { observer; versions = Hashtbl.create 16 } in
  let own v : Rmt_pka.report =
    {
      origin = v;
      gamma = Instance.local_view inst v;
      zeta = Instance.local_structure inst v;
    }
  in
  Hashtbl.replace db.versions observer [ own observer ];
  let init v =
    if v = observer then (Observer, [])
    else (Relay v, Flood.originate g v (Rmt_pka.Info (own v)))
  in
  let step _v st ~round:_ ~inbox =
    match st with
    | Observer ->
      List.iter (fun (src, m) -> record db ~src m) inbox;
      (st, [])
    | Relay self -> (st, Flood.relay g self ~inbox)
  in
  let auto = Engine.{ init; step; decision = (fun _ -> None) } in
  ignore (Engine.run ~graph:g ~adversary auto);
  db

let conflicted db =
  Hashtbl.fold
    (fun v versions acc ->
      if List.length versions > 1 then Nodeset.add v acc else acc)
    db.versions Nodeset.empty

let clean_reports db =
  Hashtbl.fold
    (fun _ versions acc ->
      match versions with [ r ] -> r :: acc | _ -> acc)
    db.versions []
  |> List.sort (fun (a : Rmt_pka.report) (b : Rmt_pka.report) ->
         Int.compare a.origin b.origin)

let reported_nodes db =
  Hashtbl.fold (fun v _ acc -> Nodeset.add v acc) db.versions Nodeset.empty

let claimed db =
  List.fold_left
    (fun acc (r : Rmt_pka.report) -> Graph.union acc r.gamma)
    Graph.empty (clean_reports db)

let confirmed db =
  let reports = clean_reports db in
  let gamma_of =
    let tbl = Hashtbl.create 16 in
    List.iter (fun (r : Rmt_pka.report) -> Hashtbl.replace tbl r.origin r.gamma) reports;
    tbl
  in
  let has_edge u v =
    match Hashtbl.find_opt gamma_of u with
    | Some gamma -> Graph.mem_edge u v gamma
    | None -> false
  in
  (* a node enters the confirmed graph only through a confirmed incident
     edge (a lone self-report could be a phantom), except the observer *)
  List.fold_left
    (fun acc (r : Rmt_pka.report) ->
      Nodeset.fold
        (fun u acc ->
          (* r.origin claims the edge; confirmed if u claims it back *)
          if has_edge u r.origin then Graph.add_edge r.origin u acc else acc)
        (Graph.neighbors r.origin r.gamma)
        acc)
    (Graph.add_node db.observer Graph.empty)
    reports

type accuracy = {
  true_edges : int;
  confirmed_true : int;
  confirmed_false : int;
  phantom_nodes : int;
}

let score (inst : Instance.t) db =
  let real = inst.graph in
  let conf = confirmed db in
  let confirmed_true, confirmed_false =
    List.fold_left
      (fun (t, f) (u, v) ->
        if Graph.mem_edge u v real then (t + 1, f) else (t, f + 1))
      (0, 0) (Graph.edges conf)
  in
  {
    true_edges = Graph.num_edges real;
    confirmed_true;
    confirmed_false;
    phantom_nodes =
      Nodeset.size (Nodeset.diff (reported_nodes db) (Graph.nodes real));
  }
