(** RMT-PKA — the RMT Partial Knowledge Algorithm (Protocol 1).

    Two message kinds flood through the network, each carrying its
    propagation trail [p]:

    - type 1, [(x, p)] — the dealer's value;
    - type 2, [((u, γ(u), 𝒵_u), p)] — node [u]'s initial topology and
      adversary knowledge.

    Honest relays append themselves to the trail and discard messages
    whose trail already contains them or whose trail's tail is not the
    actual sender (footnote 1: this forces any faulty trail to contain a
    corrupted node).  The receiver assembles {e valid} message sets [M]
    (Definition 4), derives the claimed graph [G_M], and decides [x] when
    it holds a {e full} set (Definition 5: every simple D–R path of [G_M]
    is present as a type-1 message) that admits {e no adversary cover}
    (Definition 6).  Safety (Theorem 4): the decision is never wrong, even
    against adversaries that forge trails, lie about topology and local
    structures, or invent fictitious nodes.  Sufficiency (Theorem 5): when
    the instance has no RMT-cut, the receiver decides on the dealer's
    value within [|V|] rounds.

    The receiver's search is exponential in the worst case — the paper
    leaves efficiency in the partial knowledge model open — so it runs
    under explicit budgets; exhausting a budget can only suppress a
    decision (a liveness loss), never produce a wrong one. *)

open Rmt_graph
open Rmt_adversary
open Rmt_knowledge
open Rmt_net

(** A node's claimed initial information, as carried by type-2 messages. *)
type report = {
  origin : int;
  gamma : Graph.t;
  zeta : Structure.t;
}

type payload =
  | Value of int  (** type 1 *)
  | Info of report  (** type 2 *)

type msg = payload Flood.msg
(** Trail-carrying message; see {!Rmt_net.Flood} for the relay rule. *)

val msg_size : msg -> int
(** Size proxy for bit-complexity accounting: trail length plus an
    encoding-size estimate of the payload. *)

type budgets = {
  path_budget : int;  (** DFS extensions per fullness check *)
  subset_budget : int;  (** V_M prune-search nodes per value branch *)
  cover_budget : int;  (** connected subsets per adversary-cover search *)
  conflict_branches : int;  (** distinct conflicting-report resolutions *)
}

val default_budgets : budgets

type state

val automaton :
  ?budgets:budgets -> Instance.t -> x_dealer:int -> (state, msg) Engine.automaton
(** The honest protocol.  Each node reads only its local inputs from the
    instance (its own view [γ(v)] and local structure [𝒵_v], and the
    dealer's label); the receiver additionally knows it is the receiver.
    [x_dealer] is the dealer's input value. *)

val decision : state -> int option

val search_truncated : state -> bool
(** True when some receiver-side budget was exhausted, i.e. a missing
    decision is not a proof of unsolvability. *)

val receiver_trace : state -> string
(** Human-readable summary of the receiver's collected evidence (for the
    CLI and examples).  Additionally, setting the [RMT_PKA_DEBUG]
    environment variable makes the receiver print every deciding message
    set (value, [V_M], per-node reports) to stderr — invaluable when
    auditing a decision. *)

(** {1 Running RMT-PKA on an instance} *)

type run_result = {
  decided : int option;  (** the receiver's output *)
  correct : bool;  (** decided = Some x_dealer *)
  rounds : int;
  messages : int;
  bits : int;
  truncated : bool;
      (** engine message budget or receiver search budget exhausted *)
}

val run :
  ?budgets:budgets ->
  ?max_messages:int ->
  ?adversary:msg Engine.strategy ->
  Instance.t ->
  x_dealer:int ->
  run_result
(** Convenience wrapper: executes the protocol on the instance's graph
    against the given adversary (honest network by default). *)
