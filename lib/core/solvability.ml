open Rmt_base
open Rmt_knowledge

type feasibility =
  | Solvable
  | Unsolvable
  | Unknown

let feasibility_equal a b =
  match (a, b) with
  | Solvable, Solvable | Unsolvable, Unsolvable | Unknown, Unknown -> true
  | (Solvable | Unsolvable | Unknown), _ -> false

let is_solvable f = feasibility_equal f Solvable

let pp_feasibility ppf = function
  | Solvable -> Format.pp_print_string ppf "solvable"
  | Unsolvable -> Format.pp_print_string ppf "unsolvable"
  | Unknown -> Format.pp_print_string ppf "unknown"

let of_verdict (v : Cut.verdict) =
  match (v.cut_found, v.complete) with
  | Some _, _ -> Unsolvable
  | None, true -> Solvable
  | None, false -> Unknown

let partial_knowledge ?budget inst = of_verdict (Cut.find_rmt_cut ?budget inst)

let ad_hoc ?budget inst = of_verdict (Cut.find_rmt_zpp_cut ?budget inst)

type probe = {
  total_runs : int;
  correct_runs : int;
  undecided_runs : int;
  wrong_runs : int;
  truncated_runs : int;
  failures : (Nodeset.t * string) list;
}

let all_correct p = p.correct_runs = p.total_runs

let empty_probe =
  {
    total_runs = 0;
    correct_runs = 0;
    undecided_runs = 0;
    wrong_runs = 0;
    truncated_runs = 0;
    failures = [];
  }

let note probe ~corrupted ~label ~decided ~x_dealer ~truncated =
  let correct = Option.equal Int.equal decided (Some x_dealer) in
  let wrong = decided <> None && not correct in
  {
    total_runs = probe.total_runs + 1;
    correct_runs = (probe.correct_runs + if correct then 1 else 0);
    undecided_runs = (probe.undecided_runs + if decided = None then 1 else 0);
    wrong_runs = (probe.wrong_runs + if wrong then 1 else 0);
    truncated_runs = (probe.truncated_runs + if truncated then 1 else 0);
    failures =
      (if correct then probe.failures
       else (corrupted, label) :: probe.failures);
  }

let corruption_sets (inst : Instance.t) =
  (* every maximal admissible set, and the honest run *)
  Nodeset.empty
  :: List.filter
       (fun s -> not (Nodeset.is_empty s))
       (Instance.corruption_sets inst)

let probe_rmt_pka ?budgets ?max_messages (inst : Instance.t) ~x_dealer ~x_fake =
  List.fold_left
    (fun probe corrupted ->
      if Nodeset.mem inst.receiver corrupted then probe
      else if Nodeset.is_empty corrupted then begin
        let r = Rmt_pka.run ?budgets ?max_messages inst ~x_dealer in
        note probe ~corrupted ~label:"honest" ~decided:r.decided ~x_dealer
          ~truncated:r.truncated
      end
      else
        List.fold_left
          (fun probe (label, adversary) ->
            let r = Rmt_pka.run ?budgets ?max_messages ~adversary inst ~x_dealer in
            note probe ~corrupted ~label ~decided:r.decided ~x_dealer
              ~truncated:r.truncated)
          probe
          (Strategies.pka_full_menu inst ~x_dealer ~x_fake corrupted))
    empty_probe (corruption_sets inst)

let probe_zcpa ?oracle rng (inst : Instance.t) ~x_dealer ~x_fake =
  List.fold_left
    (fun probe corrupted ->
      if Nodeset.mem inst.receiver corrupted then probe
      else if Nodeset.is_empty corrupted then begin
        let r = Zcpa.run ?oracle inst ~x_dealer in
        note probe ~corrupted ~label:"honest" ~decided:r.decided ~x_dealer
          ~truncated:false
      end
      else
        List.fold_left
          (fun probe (label, adversary) ->
            let r = Zcpa.run ?oracle ~adversary inst ~x_dealer in
            note probe ~corrupted ~label ~decided:r.decided ~x_dealer
              ~truncated:false)
          probe
          (Strategies.value_full_menu rng ~x_fake inst.graph corrupted))
    empty_probe (corruption_sets inst)
