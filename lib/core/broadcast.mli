(** Reliable Broadcast with an honest dealer — the problem RMT descends
    from (Section 4, [13]).

    In Broadcast every honest player must decide on the dealer's value,
    not just a designated receiver.  The tight ad hoc obstruction is the
    original 𝒵-pp cut (Definition 10): a cut [C = C₁ ∪ C₂] splitting the
    rest into [A ∋ D] and [B ≠ ∅] with [C₁ ∈ 𝒵] and
    [∀u ∈ B, 𝒩(u) ∩ C₂ ∈ 𝒵_u].  𝒵-CPA achieves Broadcast exactly when no
    such cut exists, and the RMT adaptation in {!Zcpa} is the same
    protocol with only the output rule localized — so this module reuses
    it and merely changes the success criterion and the cut decider
    (the receiver side [B] now ranges over {e every} component, not just
    the receiver's). *)

open Rmt_base
open Rmt_knowledge

val find_zpp_cut : ?budget:int -> Instance.t -> Cut.verdict
(** Definition 10's cut.  The instance's receiver is irrelevant here; only
    the graph, structure and dealer matter. *)

val solvable : ?budget:int -> Instance.t -> Solvability.feasibility
(** Broadcast feasibility in the ad hoc model (tight, per [13]). *)

val blocked_nodes : ?budget:int -> Instance.t -> Nodeset.t
(** The union of all receiver-side components over the 𝒵-pp cuts found —
    players that some admissible adversary can starve.  Empty iff
    {!solvable}.  (Computed by treating every node in turn as the RMT
    receiver; a node is blocked iff an RMT 𝒵-pp cut shields it.) *)

type run_result = {
  deciders : int;  (** honest players that decided *)
  honest : int;  (** honest players (dealer excluded) *)
  wrong : int;  (** honest players that decided incorrectly — safety *)
  complete : bool;  (** all honest players decided correctly *)
}

val run :
  ?oracle:Zcpa.oracle ->
  ?adversary:int Rmt_net.Engine.strategy ->
  Instance.t ->
  x_dealer:int ->
  run_result
(** 𝒵-CPA in its original broadcast reading: every player decides and
    relays; success means all honest players decided the dealer's value. *)
