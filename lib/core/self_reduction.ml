open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge
open Rmt_net

(* ------------------------------------------------------------------ *)
(* Basic instances                                                     *)
(* ------------------------------------------------------------------ *)

let basic_graph ~dealer ~receiver ~middle =
  if Nodeset.is_empty middle then
    invalid_arg "Self_reduction.basic_graph: empty middle set";
  if dealer = receiver || Nodeset.mem dealer middle || Nodeset.mem receiver middle
  then invalid_arg "Self_reduction.basic_graph: overlapping roles";
  Nodeset.fold
    (fun a g -> Graph.add_edge dealer a (Graph.add_edge a receiver g))
    middle Graph.empty

let basic_instance ~dealer ~receiver ~middle ~structure =
  let graph = basic_graph ~dealer ~receiver ~middle in
  let structure = Structure.restrict middle structure in
  Instance.ad_hoc_of ~graph ~structure ~dealer ~receiver

let basic_solvable ~middle ~structure =
  let ms = Structure.maximal_sets (Structure.restrict middle structure) in
  not
    (List.exists
       (fun z1 ->
         List.exists
           (fun z2 -> Nodeset.equal (Nodeset.union z1 z2) middle)
           ms)
       ms)

(* ------------------------------------------------------------------ *)
(* Π and the decision protocol                                         *)
(* ------------------------------------------------------------------ *)

module type PI = sig
  type s
  type m

  val automaton : Instance.t -> x_dealer:int -> (s, m) Engine.automaton
end

type pi = (module PI)

let zcpa_pi : pi =
  (module struct
    type s = Zcpa.state
    type m = int

    let automaton inst ~x_dealer =
      Zcpa.automaton
        ~decider:(Zcpa.decider_of_oracle (Zcpa.direct_oracle inst))
        inst ~x_dealer
  end)

let rmt_pka_pi : pi =
  (module struct
    type s = Rmt_pka.state
    type m = Rmt_pka.msg

    let automaton inst ~x_dealer = Rmt_pka.automaton inst ~x_dealer
  end)

(* The Theorem 9 decision protocol.  Player v, holding value classes
   (a_l, A_l) over A = ⋃ A_l, simulates for each l the paired runs
     e_0^l : (G', 𝒵_v, D, v), dealer value 0, corruption A ∖ A_l
     e_1^l : same instance,    dealer value 1, corruption A_l
   with each corrupted side mirroring its honest twin (Figure 2), and
   decides a_l iff e_0^l ends with decision 0.  Equation (1) of the proof
   guarantees that at most one l qualifies once v has enough evidence. *)
let decision_protocol ~pi ~structure_of ~dealer : Zcpa.decider =
  let (module P : PI) = pi in
  fun ~v classes ->
    let classes =
      List.sort
        (fun (x1, s1) (x2, s2) ->
          let c = Int.compare x1 x2 in
          if c <> 0 then c else Rmt_base.Nodeset.compare s1 s2)
        classes
    in
    let middle =
      List.fold_left
        (fun acc (_, s) -> Nodeset.union acc s)
        Nodeset.empty classes
    in
    if Nodeset.is_empty middle then None
    else begin
      let inst' =
        basic_instance ~dealer ~receiver:v ~middle ~structure:(structure_of v)
      in
      List.find_map
        (fun (a_l, class_l) ->
          (* Π is safe on every instance, so decision 0 in e_0^l soundly
             certifies A_l ∉ 𝒵_v: were A_l admissible, e_1^l would be a
             valid run in which safety forbids deciding 0, and the views
             coincide.  This holds even when l is not yet the certified
             class (then e_0^l simply does not decide 0). *)
          let c1 = Nodeset.diff middle class_l in
          let c2 = class_l in
          let verdict =
            Attack.co_simulate ~graph:inst'.graph ~c1 ~c2
              (P.automaton inst' ~x_dealer:0)
              (P.automaton inst' ~x_dealer:1)
              ~receiver:v
          in
          if verdict.decision_e = Some 0 then Some a_l else None)
        classes
    end

let simulated_decider ?(pi = zcpa_pi) (inst : Instance.t) =
  decision_protocol ~pi
    ~structure_of:(fun v -> Instance.local_structure inst v)
    ~dealer:inst.dealer
