open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge
open Rmt_net

type oracle = v:int -> Nodeset.t -> bool

let direct_oracle (inst : Instance.t) ~v n =
  not (Structure.mem n (Instance.local_structure inst v))

let counting_oracle oracle =
  let calls = ref 0 in
  ( calls,
    fun ~v n ->
      incr calls;
      oracle ~v n )

type decider = v:int -> (int * Nodeset.t) list -> int option

let decider_of_oracle oracle ~v classes =
  List.find_map
    (fun (x, senders) -> if oracle ~v senders then Some x else None)
    (List.sort
       (fun (x1, s1) (x2, s2) ->
         let c = Int.compare x1 x2 in
         if c <> 0 then c else Nodeset.compare s1 s2)
       classes)

type role =
  | Dealer
  | Player of player

and player = {
  self : int;
  mutable decided : int option;
  mutable sent : bool;
  (* value ↦ set of neighbors that sent it *)
  senders : (int, Nodeset.t) Hashtbl.t;
}

type state = role

let decision = function
  | Dealer -> None
  | Player p -> p.decided

let automaton ?(forward_all = false) ~decider (inst : Instance.t) ~x_dealer =
  let g = inst.graph in
  let broadcast v x =
    Nodeset.fold
      (fun u acc -> Engine.{ dst = u; payload = x } :: acc)
      (Graph.neighbors v g)
      []
  in
  let init v =
    if v = inst.dealer then (Dealer, broadcast v x_dealer)
    else
      ( Player
          { self = v; decided = None; sent = false; senders = Hashtbl.create 4 },
        [] )
  in
  let step _v st ~round:_ ~inbox =
    match st with
    | Dealer -> (st, [])
    | Player p ->
      if p.decided <> None then (st, [])
      else begin
        (* rule 1: a value from the dealer is decided immediately *)
        let from_dealer =
          List.find_map
            (fun (src, x) -> if src = inst.dealer then Some x else None)
            inbox
        in
        (match from_dealer with
         | Some x -> p.decided <- Some x
         | None ->
           List.iter
             (fun (src, x) ->
               let cur =
                 Option.value (Hashtbl.find_opt p.senders x)
                   ~default:Nodeset.empty
               in
               Hashtbl.replace p.senders x (Nodeset.add src cur))
             inbox;
           (* rule 2: certified propagation via the subroutine *)
           let classes =
             Hashtbl.fold (fun x s acc -> (x, s) :: acc) p.senders []
             |> List.sort (fun (x1, _) (x2, _) -> Int.compare x1 x2)
           in
           if classes <> [] then p.decided <- decider ~v:p.self classes);
        (* rule 3: forward on decision (in the RMT adaptation the
           receiver only outputs; in the broadcast original it relays) *)
        match p.decided with
        | Some x when (not p.sent) && (forward_all || p.self <> inst.receiver) ->
          p.sent <- true;
          (st, broadcast p.self x)
        | _ -> (st, [])
      end
  in
  Engine.{ init; step; decision }

type run_result = {
  decided : int option;
  correct : bool;
  rounds : int;
  messages : int;
  bits : int;
  oracle_calls : int;
  all_honest_decided : bool;
}

let run ?oracle ?decider ?(adversary = Engine.no_adversary) (inst : Instance.t)
    ~x_dealer =
  let calls, decider =
    match decider with
    | Some d -> (ref 0, d)
    | None ->
      let base_oracle =
        match oracle with Some o -> o | None -> direct_oracle inst
      in
      let calls, counted = counting_oracle base_oracle in
      (calls, decider_of_oracle counted)
  in
  let auto = automaton ~decider inst ~x_dealer in
  let outcome = Engine.run ~graph:inst.graph ~adversary auto in
  let decided = Engine.decision_of outcome inst.receiver in
  let honest =
    Nodeset.diff (Graph.nodes inst.graph) adversary.Engine.corrupted
  in
  let all_honest_decided =
    Nodeset.for_all
      (fun v -> v = inst.dealer || Engine.decision_of outcome v <> None)
      honest
  in
  {
    decided;
    correct = decided = Some x_dealer;
    rounds = outcome.stats.rounds;
    messages = outcome.stats.messages;
    bits = outcome.stats.bits;
    oracle_calls = !calls;
    all_honest_decided;
  }
