open Rmt_base
open Rmt_adversary
open Rmt_knowledge

(* For maximal M1 ⊆ A and M2 ⊆ B, the maximal union of a compatible pair
   (Z1 ⊆ M1, Z2 ⊆ M2, Z1 ∩ B = Z2 ∩ A) is reached by agreeing on the
   largest possible overlap S = M1 ∩ M2 (all of which lies in A ∩ B) and
   keeping everything outside the other's ground set:
     candidate(M1, M2) = (M1 ∖ B) ∪ (M2 ∖ A) ∪ (M1 ∩ M2).
   Any compatible pair's union is contained in the candidate of the
   maximal sets dominating it, and each candidate is itself realized by a
   compatible pair, so the candidates generate exactly 𝓔 ⊕ 𝓕.

   Candidates are funnelled through an incremental antichain
   (Structure.Builder): a candidate already covered by an earlier one is
   dropped on the spot, so the |𝓔|·|𝓕| product never materializes in full
   before the reduction — on overlapping views most candidates collapse
   early and the working set stays near the final antichain size. *)
let join e f =
  let a = Structure.ground e and b = Structure.ground f in
  let maximal_f = Structure.maximal_sets f in
  let builder = Structure.Builder.create () in
  List.iter
    (fun m1 ->
      let m1_private = Nodeset.diff m1 b in
      List.iter
        (fun m2 ->
          Structure.Builder.add builder
            (Nodeset.union
               (Nodeset.union m1_private (Nodeset.diff m2 a))
               (Nodeset.inter m1 m2)))
        maximal_f)
    (Structure.maximal_sets e);
  Structure.Builder.to_structure ~ground:(Nodeset.union a b) builder

let candidate ~a ~b m1 m2 =
  Nodeset.union
    (Nodeset.union (Nodeset.diff m1 b) (Nodeset.diff m2 a))
    (Nodeset.inter m1 m2)

(* Candidates are monotone in both operands: M1 ⊆ M1' gives
   candidate(M1, M2) ⊆ candidate(M1', M2) (each of the three pieces only
   grows).  So when the operand families only GROW (same grounds, every
   old set still admissible), every candidate of the old maximal pairs is
   dominated by a candidate of the new maximal pairs, and the previous
   join — itself the antichain of the old candidates — can be reused as
   a seed: only pairs involving a genuinely new maximal set need to be
   generated, and the builder's reduction evicts whatever the new
   candidates dominate.  Anything else (ground change, a shrunk family)
   falls back to the from-scratch join. *)
let join_delta ~prev ~e ~f ~e' ~f' =
  let grew old now =
    Nodeset.equal (Structure.ground old) (Structure.ground now)
    && Structure.subset_family old now
  in
  if not (grew e e' && grew f f') then (join e' f', `Recomputed)
  else begin
    let a = Structure.ground e' and b = Structure.ground f' in
    let added old now =
      List.filter (fun m -> not (Structure.mem m old)) (Structure.maximal_sets now)
    in
    let added_e = added e e' and added_f = added f f' in
    if added_e = [] && added_f = [] then (prev, `Incremental)
    else begin
      let builder = Structure.Builder.create () in
      Structure.Builder.seed builder (Structure.maximal_sets prev);
      List.iter
        (fun m1 ->
          List.iter
            (fun m2 -> Structure.Builder.add builder (candidate ~a ~b m1 m2))
            (Structure.maximal_sets f'))
        added_e;
      List.iter
        (fun m1 ->
          List.iter
            (fun m2 -> Structure.Builder.add builder (candidate ~a ~b m1 m2))
            added_f)
        (Structure.maximal_sets e');
      ( Structure.Builder.to_structure ~ground:(Nodeset.union a b) builder,
        `Incremental )
    end
  end

let join_memo e f = Hc.memo_join ~compute:join e f

let identity = Structure.trivial ~ground:Nodeset.empty

let join_list = function
  | [] -> identity
  | s :: rest -> List.fold_left join s rest

(* Per-call node-indexed front cache over the global content-addressed
   memo: the int key avoids re-consing the view nodeset on every probe
   of the same search, while distinct searches (and service generations)
   still share one restriction per distinct (view nodes, structure)
   pair through Hc. *)
let restriction_cache view z =
  let tbl = Hashtbl.create 16 in
  fun v ->
    match Hashtbl.find_opt tbl v with
    | Some s -> s
    | None ->
      let s = Hc.memo_restrict (View.view_nodes view v) z in
      Hashtbl.add tbl v s;
      s

let joint_structure view z b =
  let part = restriction_cache view z in
  join_list (Nodeset.fold (fun v acc -> part v :: acc) b [])

let mem_joint z parts = Structure.mem z (join_list parts)
