open Rmt_base
open Rmt_adversary
open Rmt_knowledge

(* For maximal M1 ⊆ A and M2 ⊆ B, the maximal union of a compatible pair
   (Z1 ⊆ M1, Z2 ⊆ M2, Z1 ∩ B = Z2 ∩ A) is reached by agreeing on the
   largest possible overlap S = M1 ∩ M2 (all of which lies in A ∩ B) and
   keeping everything outside the other's ground set:
     candidate(M1, M2) = (M1 ∖ B) ∪ (M2 ∖ A) ∪ (M1 ∩ M2).
   Any compatible pair's union is contained in the candidate of the
   maximal sets dominating it, and each candidate is itself realized by a
   compatible pair, so the candidates generate exactly 𝓔 ⊕ 𝓕.

   Candidates are funnelled through an incremental antichain
   (Structure.Builder): a candidate already covered by an earlier one is
   dropped on the spot, so the |𝓔|·|𝓕| product never materializes in full
   before the reduction — on overlapping views most candidates collapse
   early and the working set stays near the final antichain size. *)
let join e f =
  let a = Structure.ground e and b = Structure.ground f in
  let maximal_f = Structure.maximal_sets f in
  let builder = Structure.Builder.create () in
  List.iter
    (fun m1 ->
      let m1_private = Nodeset.diff m1 b in
      List.iter
        (fun m2 ->
          Structure.Builder.add builder
            (Nodeset.union
               (Nodeset.union m1_private (Nodeset.diff m2 a))
               (Nodeset.inter m1 m2)))
        maximal_f)
    (Structure.maximal_sets e);
  Structure.Builder.to_structure ~ground:(Nodeset.union a b) builder

let identity = Structure.trivial ~ground:Nodeset.empty

let join_list = function
  | [] -> identity
  | s :: rest -> List.fold_left join s rest

let restriction_cache view z =
  let tbl = Hashtbl.create 16 in
  fun v ->
    match Hashtbl.find_opt tbl v with
    | Some s -> s
    | None ->
      let s = Structure.restrict (View.view_nodes view v) z in
      Hashtbl.add tbl v s;
      s

let joint_structure view z b =
  let part = restriction_cache view z in
  join_list (Nodeset.fold (fun v acc -> part v :: acc) b [])

let mem_joint z parts = Structure.mem z (join_list parts)
