open Rmt_base
open Rmt_adversary
open Rmt_knowledge

(* For maximal M1 ⊆ A and M2 ⊆ B, the maximal union of a compatible pair
   (Z1 ⊆ M1, Z2 ⊆ M2, Z1 ∩ B = Z2 ∩ A) is reached by agreeing on the
   largest possible overlap S = M1 ∩ M2 (all of which lies in A ∩ B) and
   keeping everything outside the other's ground set:
     candidate(M1, M2) = (M1 ∖ B) ∪ (M2 ∖ A) ∪ (M1 ∩ M2).
   Any compatible pair's union is contained in the candidate of the
   maximal sets dominating it, and each candidate is itself realized by a
   compatible pair, so the candidates generate exactly 𝓔 ⊕ 𝓕. *)
let join e f =
  let a = Structure.ground e and b = Structure.ground f in
  let candidates =
    List.concat_map
      (fun m1 ->
        List.map
          (fun m2 ->
            Nodeset.union
              (Nodeset.union (Nodeset.diff m1 b) (Nodeset.diff m2 a))
              (Nodeset.inter m1 m2))
          (Structure.maximal_sets f))
      (Structure.maximal_sets e)
  in
  Structure.of_sets ~ground:(Nodeset.union a b) candidates

let identity = Structure.trivial ~ground:Nodeset.empty

let join_list = function
  | [] -> identity
  | s :: rest -> List.fold_left join s rest

let joint_structure view z b =
  join_list
    (Nodeset.fold
       (fun v acc -> Structure.restrict (View.view_nodes view v) z :: acc)
       b [])

let mem_joint z parts = Structure.mem z (join_list parts)
