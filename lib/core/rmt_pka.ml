open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge
open Rmt_net

type report = {
  origin : int;
  gamma : Graph.t;
  zeta : Structure.t;
}

let report_equal r1 r2 =
  r1.origin = r2.origin
  && Graph.equal r1.gamma r2.gamma
  && Structure.equal r1.zeta r2.zeta

type payload =
  | Value of int
  | Info of report

type msg = payload Flood.msg

let msg_size (m : msg) =
  List.length m.Flood.trail
  +
  match m.Flood.payload with
  | Value _ -> 1
  | Info r ->
    1 + Graph.num_nodes r.gamma
    + (2 * Graph.num_edges r.gamma)
    + List.fold_left
        (fun acc s -> acc + 1 + Nodeset.size s)
        0
        (Structure.maximal_sets r.zeta)

type budgets = {
  path_budget : int;
  subset_budget : int;
  cover_budget : int;
  conflict_branches : int;
}

let default_budgets =
  {
    path_budget = 100_000;
    subset_budget = 4_000;
    cover_budget = 100_000;
    conflict_branches = 64;
  }

(* ------------------------------------------------------------------ *)
(* Receiver state                                                      *)
(* ------------------------------------------------------------------ *)

(* A distinct claimed report together with every propagation trail it
   arrived with.  Trails matter: a forged report's trail necessarily
   contains a corrupted node (the relay tail-check), so a version carrying
   a trail that stays inside an all-honest region is necessarily genuine —
   the receiver exploits this in the adversary-cover search. *)
type version = {
  rep : report;
  mutable trails : Paths.path list;
}

type recv = {
  self : int;
  dealer : int;
  own : report;
  budgets : budgets;
  (* x ↦ set of claimed D–R paths (trail with the receiver appended) *)
  values : (int, (Paths.path, unit) Hashtbl.t) Hashtbl.t;
  (* node ↦ distinct reports received about it, with their trails *)
  reports : (int, version list) Hashtbl.t;
  mutable decided : int option;
  mutable truncated : bool;
  mutable dirty : bool;
}

type state =
  | Dealer_done
  | Relay of int
  | Receiver of recv

let decision = function
  | Receiver r -> r.decided
  | Dealer_done | Relay _ -> None

let search_truncated = function
  | Receiver r -> r.truncated
  | Dealer_done | Relay _ -> false

(* ------------------------------------------------------------------ *)
(* Receiver: message ingestion                                         *)
(* ------------------------------------------------------------------ *)

let record_value rs x full_path =
  let tbl =
    match Hashtbl.find_opt rs.values x with
    | Some t -> t
    | None ->
      let t = Hashtbl.create 16 in
      Hashtbl.replace rs.values x t;
      t
  in
  if not (Hashtbl.mem tbl full_path) then begin
    Hashtbl.replace tbl full_path ();
    rs.dirty <- true
  end

let report_plausible r =
  Graph.mem_node r.origin r.gamma
  && Nodeset.subset (Structure.ground r.zeta) (Graph.nodes r.gamma)

let record_report rs r trail =
  (* the receiver trusts only itself about itself *)
  if r.origin <> rs.self && report_plausible r then begin
    let known =
      match Hashtbl.find_opt rs.reports r.origin with
      | Some l -> l
      | None -> []
    in
    match List.find_opt (fun v -> report_equal v.rep r) known with
    | Some v ->
      if not (List.mem trail v.trails) then begin
        v.trails <- trail :: v.trails;
        rs.dirty <- true
      end
    | None ->
      Hashtbl.replace rs.reports r.origin ({ rep = r; trails = [ trail ] } :: known);
      rs.dirty <- true
  end

let ingest rs ~src (m : msg) =
  if Flood.trail_ok ~self:rs.self ~src m.trail then
    match m.payload with
    | Value x ->
      (* only trails that start at the dealer can be dealer trails *)
      (match m.trail with
       | d :: _ when d = rs.dealer -> record_value rs x (m.trail @ [ rs.self ])
       | _ -> ())
    | Info r ->
      (match m.trail with
       | o :: _ when o = r.origin -> record_report rs r m.trail
       | _ -> ())

(* ------------------------------------------------------------------ *)
(* Receiver: decision subroutine                                       *)
(* ------------------------------------------------------------------ *)

(* Conflict branches: the adversary may have delivered several versions of
   some node's type-2 report; a valid M picks at most one per node.  We
   enumerate assignments (node ↦ version), capped. *)
let conflict_branches rs =
  let entries =
    Hashtbl.fold (fun v versions acc -> (v, versions) :: acc) rs.reports []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let cap = rs.budgets.conflict_branches in
  let branches = ref [ [] ] in
  let truncated = ref false in
  List.iter
    (fun (v, versions) ->
      let expanded =
        List.concat_map
          (fun branch -> List.map (fun ver -> (v, ver.rep) :: branch) versions)
          !branches
      in
      if List.length expanded > cap then begin
        truncated := true;
        branches := Util.list_take cap expanded
      end
      else branches := expanded)
    entries;
  if !truncated then rs.truncated <- true;
  !branches

let build_gm info vset =
  let joint =
    Nodeset.fold
      (fun v acc ->
        match Hashtbl.find_opt info v with
        | Some r -> Graph.union r.gamma acc
        | None -> acc)
      vset Graph.empty
  in
  Graph.induced vset joint

(* Adversary cover search (Definition 6) on the claimed graph: enumerate
   connected B ∋ R avoiding the dealer's closed neighborhood; C = N(B);
   covered iff C ∩ V(γ(B)) ∈ 𝒵_B.

   Which reports may the receiver use for V(γ(B)) and 𝒵_B?  Not the ones
   selected into M: the adversary can relay a stale or forged report of an
   honest B-member through corrupted relays and erase the cover that the
   safety proof (Thm 4) relies on.  The sound rule — and the reason type-2
   messages carry propagation trails at all — is to use exactly the report
   versions that arrived with at least one trail lying entirely inside B:
   a forged trail necessarily contains a corrupted node (footnote 1), and
   the candidate B of the safety argument is all-honest, so B-internal
   trails certify genuineness while genuine reports of B-members always
   flood to R along B-internal paths.  Two distinct B-internally-trailed
   versions of the same node prove B contains a corrupted node: such a B
   is conservatively treated as covered (this cannot block the genuine
   branch of the sufficiency argument, where every candidate B is honest
   and conflict-free). *)
let has_cover rs gm =
  if not (Graph.mem_node rs.dealer gm) then
    (* no dealer in the claimed graph: never decide on such an M *)
    `Yes
  else begin
    let forbidden = Graph.closed_neighborhood rs.dealer gm in
    if Nodeset.mem rs.self forbidden then
      (* direct (claimed and type-1-corroborated) D–R edge: no cut exists *)
      `No
    else begin
      let trail_inside b p = List.for_all (fun v -> Nodeset.mem v b) p in
      let eligible b u =
        if u = rs.self then [ rs.own ]
        else
          match Hashtbl.find_opt rs.reports u with
          | None -> []
          | Some versions ->
            List.filter_map
              (fun ver ->
                if List.exists (trail_inside b) ver.trails then Some ver.rep
                else None)
              versions
      in
      let covered = ref false in
      let outcome =
        Subset_enum.connected_supersets ~budget:rs.budgets.cover_budget gm
          ~seed:rs.self ~forbidden (fun b ->
            let c = Graph.neighborhood_of_set b gm in
            let rec check vgb zb = function
              | [] -> Structure.mem (Nodeset.inter c vgb) zb
              | u :: rest ->
                (match eligible b u with
                 | [] -> false (* no certified knowledge for u: no cover via b *)
                 | [ r ] ->
                   check
                     (Nodeset.union vgb (Graph.nodes r.gamma))
                     (Joint.join zb r.zeta) rest
                 | _ :: _ :: _ ->
                   (* conflicting certified versions: b provably contains a
                      corrupted node — treat as covered *)
                   true)
            in
            if
              check Nodeset.empty Joint.identity
                (Nodeset.elements (Nodeset.remove rs.self b) @ [ rs.self ])
            then begin
              covered := true;
              true
            end
            else false)
      in
      if !covered then `Yes else if outcome.complete then `No else `Unknown
    end
  end

let path_interior q =
  match q with
  | [] | [ _ ] -> []
  | _ :: rest -> List.rev (List.tl (List.rev rest))

let edge_reporters info vset (a, b) =
  Nodeset.filter
    (fun w ->
      match Hashtbl.find_opt info w with
      | Some r -> Graph.mem_edge a b r.gamma
      | None -> false)
    vset

let rec path_edges = function
  | a :: (b :: _ as rest) -> (a, b) :: path_edges rest
  | [ _ ] | [] -> []

(* Search for a valid full message set with value [x] and no adversary
   cover, over subsets V_M of the reported nodes.  Pruning: a missing D–R
   path [q] of G_M must be destroyed in any full subset, which requires
   dropping an interior node of [q] or every reporter of one of its
   edges; we branch on all single-node candidates.  Covers are hereditary
   downward (see DESIGN.md), so only maximal full subsets need a cover
   check. *)
let try_value rs info x =
  let paths_x =
    match Hashtbl.find_opt rs.values x with
    | Some t -> t
    | None -> Hashtbl.create 1
  in
  if not (Hashtbl.mem info rs.dealer) then false
  else begin
    let visited = Hashtbl.create 64 in
    let budget = ref rs.budgets.subset_budget in
    let rec explore vset =
      let key = Nodeset.to_string vset in
      if Hashtbl.mem visited key then false
      else begin
        Hashtbl.replace visited key ();
        if !budget <= 0 then begin
          rs.truncated <- true;
          false
        end
        else begin
          decr budget;
          let gm = build_gm info vset in
          let missing, complete =
            Paths.find_simple_path ~budget:rs.budgets.path_budget gm rs.dealer
              rs.self (fun q -> not (Hashtbl.mem paths_x q))
          in
          match (missing, complete) with
          | None, false ->
            rs.truncated <- true;
            false
          | None, true when
              not (Connectivity.connected_avoiding gm rs.dealer rs.self
                     Nodeset.empty) ->
            (* Fullness is vacuous: G_M has no D–R path at all, so M
               contains no type-1 message and determines no value.  The
               FUZZ campaign found a spam program exploiting this — prune
               every node on the forged value's trail and the cover search
               has nothing left to certify (DESIGN.md §5). *)
            false
          | None, true ->
            (* full: check for an adversary cover *)
            (match has_cover rs gm with
             | `No ->
               if Sys.getenv_opt "RMT_PKA_DEBUG" <> None then begin
                 Printf.eprintf "[pka %d] DECIDE %d on V_M=%s\n%!" rs.self x
                   (Nodeset.to_string vset);
                 Hashtbl.iter
                   (fun v (r : report) ->
                     if Nodeset.mem v vset then
                       Printf.eprintf "  info %d: gamma=%s zeta=%s\n%!" v
                         (Nodeset.to_string (Graph.nodes r.gamma))
                         (Structure.to_string r.zeta))
                   info
               end;
               true
             | `Yes -> false
             | `Unknown ->
               rs.truncated <- true;
               false)
          | Some q, _ ->
            (* not full: branch on ways to destroy q *)
            let candidates =
              List.fold_left
                (fun acc e -> Nodeset.union acc (edge_reporters info vset e))
                (Nodeset.of_list (path_interior q))
                (path_edges q)
            in
            let candidates =
              Nodeset.remove rs.dealer (Nodeset.remove rs.self candidates)
            in
            Nodeset.exists (fun w -> explore (Nodeset.remove w vset)) candidates
        end
      end
    in
    let all = Hashtbl.fold (fun v _ acc -> Nodeset.add v acc) info Nodeset.empty in
    explore all
  end

let try_decide rs =
  if rs.decided = None then begin
    (* dealer propagation rule *)
    (* Fold order over [rs.values] is seed-dependent; collect every
       directly-trailed value and take the smallest so ties break the
       same way on every run. *)
    let direct =
      Hashtbl.fold
        (fun x tbl acc ->
          if Hashtbl.mem tbl [ rs.dealer; rs.self ] then x :: acc else acc)
        rs.values []
      |> List.sort Int.compare
    in
    match direct with
    | x :: _ -> rs.decided <- Some x
    | [] ->
      (* full message set propagation rule *)
      let xs =
        Hashtbl.fold (fun x _ acc -> x :: acc) rs.values []
        |> List.sort Int.compare
      in
      if xs <> [] then begin
        let branches = conflict_branches rs in
        let try_branch branch x =
          let info = Hashtbl.create 16 in
          List.iter (fun (v, r) -> Hashtbl.replace info v r) branch;
          Hashtbl.replace info rs.self rs.own;
          try_value rs info x
        in
        List.iter
          (fun x ->
            if rs.decided = None then
              if List.exists (fun branch -> try_branch branch x) branches then
                rs.decided <- Some x)
          xs
      end
  end

(* ------------------------------------------------------------------ *)
(* The automaton                                                       *)
(* ------------------------------------------------------------------ *)

let automaton ?(budgets = default_budgets) (inst : Instance.t) ~x_dealer =
  let g = inst.graph in
  let own_report v =
    {
      origin = v;
      gamma = Instance.local_view inst v;
      zeta = Instance.local_structure inst v;
    }
  in
  let init v =
    if v = inst.dealer then
      ( Dealer_done,
        Flood.originate g v (Value x_dealer)
        @ Flood.originate g v (Info (own_report v)) )
    else if v = inst.receiver then begin
      let rs =
        {
          self = v;
          dealer = inst.dealer;
          own = own_report v;
          budgets;
          values = Hashtbl.create 4;
          reports = Hashtbl.create 16;
          decided = None;
          truncated = false;
          dirty = false;
        }
      in
      (Receiver rs, [])
    end
    else (Relay v, Flood.originate g v (Info (own_report v)))
  in
  let step v st ~round:_ ~inbox =
    match st with
    | Dealer_done -> (st, [])
    | Relay self -> (st, Flood.relay g self ~inbox)
    | Receiver rs ->
      List.iter (fun (src, m) -> ingest rs ~src m) inbox;
      if rs.dirty && rs.decided = None then begin
        rs.dirty <- false;
        try_decide rs
      end;
      ignore v;
      (st, [])
  in
  Engine.{ init; step; decision }

let receiver_trace st =
  match st with
  | Dealer_done -> "dealer"
  | Relay v -> Printf.sprintf "relay %d" v
  | Receiver rs ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf "receiver %d: decided=%s truncated=%b\n" rs.self
         (match rs.decided with None -> "⊥" | Some x -> string_of_int x)
         rs.truncated);
    Hashtbl.iter
      (fun x tbl ->
        Buffer.add_string buf
          (Printf.sprintf "  value %d via %d path(s)\n" x (Hashtbl.length tbl)))
      rs.values;
    Buffer.add_string buf
      (Printf.sprintf "  reports about %d node(s)\n" (Hashtbl.length rs.reports));
    Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* End-to-end runner                                                   *)
(* ------------------------------------------------------------------ *)

type run_result = {
  decided : int option;
  correct : bool;
  rounds : int;
  messages : int;
  bits : int;
  truncated : bool;
}

let run ?budgets ?max_messages ?(adversary = Engine.no_adversary)
    (inst : Instance.t) ~x_dealer =
  let auto = automaton ?budgets inst ~x_dealer in
  let outcome =
    Engine.run ?max_messages ~size_of:msg_size
      ~stop_when:(fun dec -> dec inst.receiver <> None)
      ~graph:inst.graph ~adversary auto
  in
  let decided = Engine.decision_of outcome inst.receiver in
  let recv_truncated =
    match List.assoc_opt inst.receiver outcome.states with
    | Some st -> search_truncated st
    | None -> false
  in
  {
    decided;
    correct = decided = Some x_dealer;
    rounds = outcome.stats.rounds;
    messages = outcome.stats.messages;
    bits = outcome.stats.bits;
    truncated = outcome.stats.truncated || recv_truncated;
  }
