(** Protocol-specific Byzantine strategies.

    The safety experiments (E2) exercise RMT-PKA and 𝒵-CPA against the
    full menu of misbehavior the paper credits the adversary with:
    blocking, altering relayed values, forging propagation trails,
    reporting fictitious topology and false local knowledge, and
    inventing nodes that do not exist.  Every builder takes the corrupted
    set explicitly; behaviors are deterministic unless a PRNG is given. *)

open Rmt_base
open Rmt_knowledge
open Rmt_net

(** {1 Against RMT-PKA} *)

val pka_silent : Nodeset.t -> Rmt_pka.msg Engine.strategy

val pka_mimic : Instance.t -> x_dealer:int -> Nodeset.t -> Rmt_pka.msg Engine.strategy
(** Corrupted players follow the protocol (sanity baseline). *)

val pka_value_flip :
  Instance.t -> x_dealer:int -> x_fake:int -> Nodeset.t ->
  Rmt_pka.msg Engine.strategy
(** Relay faithfully, but substitute [x_fake] in every type-1 payload. *)

val pka_trail_forge :
  Instance.t -> x_dealer:int -> x_fake:int -> Nodeset.t ->
  Rmt_pka.msg Engine.strategy
(** Behave honestly, and additionally inject type-1 messages claiming
    [x_fake] arrived straight from the dealer over the forged trail
    [[D; c]]. *)

val pka_topology_liar :
  Instance.t -> x_dealer:int -> Nodeset.t -> Rmt_pka.msg Engine.strategy
(** Behave honestly for relaying, but advertise a forged own-report: a
    view claiming a direct edge to the dealer and an overly permissive
    local structure. *)

val pka_fictitious :
  Instance.t -> x_dealer:int -> x_fake:int -> Nodeset.t ->
  Rmt_pka.msg Engine.strategy
(** Invent a non-existent node wired to the corrupted player and the
    dealer, inject its type-2 report and an [x_fake] type-1 trail passing
    through it. *)

val pka_edge_forger :
  Instance.t -> x_dealer:int -> x_fake:int -> Nodeset.t ->
  Rmt_pka.msg Engine.strategy
(** Behave honestly, but advertise an own-view that invents edges between
    the dealer, the corrupted player's neighbors and the player itself,
    and inject type-1 messages whose trails run over the invented edges.
    Probes the claimed-graph distortion channel discussed in DESIGN.md §5:
    fake honest–honest adjacencies reshape the receiver's candidate
    components. *)

val pka_fuzz :
  Prng.t -> Instance.t -> x_dealer:int -> Nodeset.t ->
  Rmt_pka.msg Engine.strategy
(** Chaos: every round for the first [|V|] rounds, corrupted players spray
    structurally random messages — random values, random (possibly
    nonsense) trails, random forged reports about random (possibly
    fictitious) nodes with random claimed graphs and structures — on top
    of honest behavior.  Exists to fuzz the receiver's safety: no storm of
    garbage may ever produce a wrong decision. *)

val pka_full_menu :
  Instance.t -> x_dealer:int -> x_fake:int -> Nodeset.t ->
  (string * Rmt_pka.msg Engine.strategy) list
(** All of the above, labelled — the E2 battery. *)

(** {1 Against value-message protocols (𝒵-CPA, CPA, naive)} *)

val value_silent : Nodeset.t -> int Engine.strategy

val value_flip : x_fake:int -> Rmt_graph.Graph.t -> Nodeset.t -> int Engine.strategy
(** Push [x_fake] to all neighbors in round 1 and echo it forever after
    (the strongest simple lie). *)

val value_spam :
  Prng.t -> values:int list -> Rmt_graph.Graph.t -> Nodeset.t -> int Engine.strategy
(** Send random values from the list to random neighbors each round. *)

val value_full_menu :
  Prng.t -> x_fake:int -> Rmt_graph.Graph.t -> Nodeset.t ->
  (string * int Engine.strategy) list
