(** Instance-level feasibility predicates and empirical resilience probes.

    The deciders answer "is RMT solvable here?" from the cut
    characterizations; the probes answer "did the protocol actually
    withstand everything we threw at it?" by running it against every
    maximal corruption set crossed with the strategy battery, plus the
    indistinguishability attack when a cut witness exists.  Experiments
    E3/E4 check that the two notions coincide. *)

open Rmt_base
open Rmt_knowledge

type feasibility =
  | Solvable
  | Unsolvable
  | Unknown  (** a search budget was exhausted *)

val pp_feasibility : Format.formatter -> feasibility -> unit

val feasibility_equal : feasibility -> feasibility -> bool
(** Constructor equality; use instead of polymorphic [=] (rmt-lint R1). *)

val is_solvable : feasibility -> bool
(** [is_solvable f] is [feasibility_equal f Solvable]. *)

val of_verdict : Cut.verdict -> feasibility
(** Cut existence → feasibility: a found cut is [Unsolvable], a complete
    cut-free search is [Solvable], an exhausted budget is [Unknown].
    Shared by the one-shot deciders below and the streaming
    {!Service}. *)

val partial_knowledge : ?budget:int -> Instance.t -> feasibility
(** RMT-cut characterization (Theorems 3 + 5). *)

val ad_hoc : ?budget:int -> Instance.t -> feasibility
(** RMT 𝒵-pp cut characterization (Theorems 7 + 8). *)

type probe = {
  total_runs : int;
  correct_runs : int;
  undecided_runs : int;
  wrong_runs : int;  (** safety violations — must stay 0 for safe protocols *)
  truncated_runs : int;
  failures : (Nodeset.t * string) list;
      (** (corruption set, strategy) pairs where the receiver failed to
          decide correctly *)
}

val all_correct : probe -> bool

val probe_rmt_pka :
  ?budgets:Rmt_pka.budgets -> ?max_messages:int ->
  Instance.t -> x_dealer:int -> x_fake:int -> probe
(** Runs RMT-PKA on the honest network and against
    [Strategies.pka_full_menu] for every maximal corruption set. *)

val probe_zcpa :
  ?oracle:Zcpa.oracle -> Prng.t -> Instance.t -> x_dealer:int -> x_fake:int -> probe
(** Same for 𝒵-CPA with [Strategies.value_full_menu]. *)
