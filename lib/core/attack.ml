open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge
open Rmt_net

type verdict = {
  decision_e : int option;
  decision_e' : int option;
  views_agree : bool;
  safety_broken : bool;
  observed : (int * (int option * int option)) list;
}

(* One side of the paired execution. *)
type ('s, 'm) side = {
  corrupted : Nodeset.t;
  states : (int, 's) Hashtbl.t;
  mutable in_flight : (int * int * 'm) list;
}

let co_simulate ?max_rounds ?(observers = []) ~graph ~c1 ~c2 auto_e auto_e'
    ~receiver =
  if not (Nodeset.disjoint c1 c2) then
    invalid_arg "Attack.co_simulate: C1 and C2 must be disjoint";
  if Nodeset.mem receiver c1 || Nodeset.mem receiver c2 then
    invalid_arg "Attack.co_simulate: the receiver must be honest";
  if not (Nodeset.subset (Nodeset.union c1 c2) (Graph.nodes graph)) then
    invalid_arg "Attack.co_simulate: corruption sets outside the graph";
  let nodes = Graph.nodes graph in
  let max_rounds =
    match max_rounds with
    | Some r -> r
    | None -> (4 * Graph.num_nodes graph) + 8
  in
  let side corrupted =
    { corrupted; states = Hashtbl.create 16; in_flight = [] }
  in
  let e = side c1 and e' = side c2 in
  let enqueue sd src sends =
    List.iter
      (fun Engine.{ dst; payload } ->
        if Graph.mem_edge src dst graph then
          sd.in_flight <- (src, dst, payload) :: sd.in_flight)
      sends
  in
  (* Initialization: every node is initialized in the run(s) where it is
     honest; a node corrupted in one run replays, there, its honest twin's
     sends from the other run. *)
  let init_sends auto sd v =
    let st, sends = auto.Engine.init v in
    Hashtbl.replace sd.states v st;
    sends
  in
  Nodeset.iter
    (fun v ->
      let sends_e = if Nodeset.mem v c1 then None else Some (init_sends auto_e e v) in
      let sends_e' =
        if Nodeset.mem v c2 then None else Some (init_sends auto_e' e' v)
      in
      (match (sends_e, sends_e') with
       | Some s, Some s' ->
         enqueue e v s;
         enqueue e' v s'
       | Some s, None ->
         (* honest in e, corrupted in e': mirror e-sends into e' *)
         enqueue e v s;
         enqueue e' v s
       | None, Some s' ->
         enqueue e v s';
         enqueue e' v s'
       | None, None -> assert false (* c1 ∩ c2 = ∅ *)))
    nodes;
  (* Rounds *)
  let inbox_of sd =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (src, dst, p) ->
        let cur = try Hashtbl.find tbl dst with Not_found -> [] in
        Hashtbl.replace tbl dst ((src, p) :: cur))
      sd.in_flight;
    sd.in_flight <- [];
    fun v -> try Hashtbl.find tbl v with Not_found -> []
  in
  let round = ref 1 in
  while
    !round <= max_rounds && (e.in_flight <> [] || e'.in_flight <> [])
  do
    let inbox_e = inbox_of e and inbox_e' = inbox_of e' in
    let step auto sd inbox v =
      let st = Hashtbl.find sd.states v in
      let st', sends = auto.Engine.step v st ~round:!round ~inbox:(inbox v) in
      Hashtbl.replace sd.states v st';
      sends
    in
    Nodeset.iter
      (fun v ->
        let honest_e = not (Nodeset.mem v c1) in
        let honest_e' = not (Nodeset.mem v c2) in
        let sends_e = if honest_e then Some (step auto_e e inbox_e v) else None in
        let sends_e' =
          if honest_e' then Some (step auto_e' e' inbox_e' v) else None
        in
        match (sends_e, sends_e') with
        | Some s, Some s' ->
          enqueue e v s;
          enqueue e' v s'
        | Some s, None ->
          enqueue e v s;
          enqueue e' v s
        | None, Some s' ->
          enqueue e v s';
          enqueue e' v s'
        | None, None -> assert false)
      nodes;
    incr round
  done;
  let decision_in sd auto v =
    match Hashtbl.find_opt sd.states v with
    | None -> None
    | Some st -> auto.Engine.decision st
  in
  let de = decision_in e auto_e receiver in
  let de' = decision_in e' auto_e' receiver in
  {
    decision_e = de;
    decision_e' = de';
    views_agree = de = de';
    safety_broken = de <> None && de = de';
    observed =
      List.map
        (fun v -> (v, (decision_in e auto_e v, decision_in e' auto_e' v)))
        observers;
  }

let forged_structure (inst : Instance.t) c2 =
  let z' = Structure.add_set (Nodeset.remove inst.dealer c2) inst.structure in
  Instance.with_structure inst z'

let against_rmt_pka ?budgets ?observers (inst : Instance.t) (w : Cut.witness)
    ~x0 ~x1 =
  let inst' = forged_structure inst w.c2 in
  co_simulate ?observers ~graph:inst.graph ~c1:w.c1 ~c2:w.c2
    (Rmt_pka.automaton ?budgets inst ~x_dealer:x0)
    (Rmt_pka.automaton ?budgets inst' ~x_dealer:x1)
    ~receiver:inst.receiver

let against_zcpa ?(oracle_of = fun inst -> Zcpa.direct_oracle inst) ?observers
    (inst : Instance.t) (w : Cut.witness) ~x0 ~x1 =
  let inst' = forged_structure inst w.c2 in
  co_simulate ?observers ~graph:inst.graph ~c1:w.c1 ~c2:w.c2
    (Zcpa.automaton
       ~decider:(Zcpa.decider_of_oracle (oracle_of inst))
       inst ~x_dealer:x0)
    (Zcpa.automaton
       ~decider:(Zcpa.decider_of_oracle (oracle_of inst'))
       inst' ~x_dealer:x1)
    ~receiver:inst.receiver
