open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge

type witness = {
  b_side : Nodeset.t;
  cut : Nodeset.t;
  c1 : Nodeset.t;
  c2 : Nodeset.t;
}

type verdict = {
  cut_found : witness option;
  complete : bool;
  visited : int;
}

let exists_certainly v = v.cut_found <> None

let absent_certainly v = v.cut_found = None && v.complete

(* Shared driver: enumerate connected B ∋ R with D ∉ B ∪ N(B); candidate
   cut C = N(B); for each maximal M ∈ 𝒵 try the split C₁ = C ∩ M,
   C₂ = C ∖ M and test the model-specific condition on C₂ and B. *)
let search ?budget (inst : Instance.t) ~condition =
  let g = inst.graph in
  let d = inst.dealer and r = inst.receiver in
  let forbidden = Graph.closed_neighborhood d g in
  if Nodeset.mem r forbidden then
    (* R is the dealer's neighbor or the dealer itself: no cut can avoid
       the dealer and separate them *)
    { cut_found = None; complete = true; visited = 0 }
  else begin
    let found = ref None in
    let maximal = Structure.maximal_sets inst.structure in
    let outcome =
      Subset_enum.connected_supersets ?budget g ~seed:r ~forbidden (fun b ->
          let c = Graph.neighborhood_of_set b g in
          let hit =
            List.exists
              (fun m ->
                let c2 = Nodeset.diff c m in
                if condition b c2 then begin
                  found :=
                    Some { b_side = b; cut = c; c1 = Nodeset.inter c m; c2 };
                  true
                end
                else false)
              maximal
          in
          hit)
    in
    { cut_found = !found; complete = outcome.complete;
      visited = outcome.visited }
  end

let zb_condition inst b c2 =
  let zb = Joint.joint_structure inst.Instance.view inst.structure b in
  let vgb = View.joint_nodes inst.view b in
  Structure.mem (Nodeset.inter c2 vgb) zb

let local_condition inst =
  (* per-node local structures are reused across every enumerated
     component: restrict once per node, memoized for the whole search *)
  let tbl = Hashtbl.create 16 in
  let local u =
    match Hashtbl.find_opt tbl u with
    | Some cached -> cached
    | None ->
      let nu = Graph.neighbors u inst.Instance.graph in
      let cached = (nu, Structure.restrict (Nodeset.add u nu) inst.structure) in
      Hashtbl.add tbl u cached;
      cached
  in
  fun b c2 ->
    Nodeset.for_all
      (fun u ->
        let nu, zu = local u in
        Structure.mem (Nodeset.inter nu c2) zu)
      b

(* Specialized driver for RMT-cuts: 𝒵_B and V(γ(B)) are maintained
   incrementally along the enumeration (⊕ is associative), which avoids
   the O(|B|) joins per enumerated component of the naive version; the
   per-node view restrictions feeding the ⊕ threading come from a memo
   table, so each node is restricted once per search, not once per
   branch of the enumeration tree. *)
let find_rmt_cut ?budget (inst : Instance.t) =
  let g = inst.graph in
  let d = inst.dealer and r = inst.receiver in
  let forbidden = Graph.closed_neighborhood d g in
  if Nodeset.mem r forbidden then
    { cut_found = None; complete = true; visited = 0 }
  else begin
    let found = ref None in
    let maximal = Structure.maximal_sets inst.structure in
    let part = Joint.restriction_cache inst.view inst.structure in
    let init = (View.view_nodes inst.view r, part r) in
    let extend (vgb, zb) c =
      (Nodeset.union vgb (View.view_nodes inst.view c), Joint.join zb (part c))
    in
    let outcome =
      Subset_enum.connected_supersets_acc ?budget g ~seed:r ~forbidden ~init
        ~extend (fun b (vgb, zb) ->
          let c = Graph.neighborhood_of_set b g in
          List.exists
            (fun m ->
              let c2 = Nodeset.diff c m in
              if Structure.mem (Nodeset.inter c2 vgb) zb then begin
                found :=
                  Some { b_side = b; cut = c; c1 = Nodeset.inter c m; c2 };
                true
              end
              else false)
            maximal)
    in
    { cut_found = !found; complete = outcome.complete;
      visited = outcome.visited }
  end

let find_rmt_cut_naive ?budget inst =
  search ?budget inst ~condition:(zb_condition inst)

let find_rmt_zpp_cut ?budget inst =
  search ?budget inst ~condition:(local_condition inst)

let split_ok (inst : Instance.t) c1 c2 ~condition =
  let g = inst.graph in
  let c = Nodeset.union c1 c2 in
  Connectivity.is_cut g inst.dealer inst.receiver c
  && Structure.mem c1 inst.structure
  &&
  let b = Connectivity.component_of ~avoiding:c g inst.receiver in
  condition b c2

let is_rmt_cut inst c1 c2 = split_ok inst c1 c2 ~condition:(zb_condition inst)

let is_rmt_zpp_cut inst c1 c2 =
  split_ok inst c1 c2 ~condition:(local_condition inst)

(* Incremental re-decision after an instance delta.  Two regimes:

   - the previous witness still satisfies Definition 3 on the new
     instance (checked directly by [is_rmt_cut], which re-derives 𝒵_B for
     the new receiver-side component): answer in one membership-style
     check, no enumeration.  The witness is re-rooted — its B side and
     component may have changed — and its [cut] is [c1 ∪ c2], which can
     be a superset of N(B) when the delta moved nodes of the old cut away
     from the component boundary; [is_rmt_cut] accepts any separating
     C₁ ∪ C₂, so the verdict is still exact.
   - otherwise a full re-search.  No structural monotonicity is assumed
     (an added edge can both create and destroy RMT-cuts depending on the
     view function), but the re-search still amortizes through the global
     restriction/join memos (Hc), so repeated searches over a churning
     instance pay far less than cold ones. *)
let update ?budget ~prev (inst : Instance.t) =
  match prev.cut_found with
  | Some w when is_rmt_cut inst w.c1 w.c2 ->
    let c = Nodeset.union w.c1 w.c2 in
    let b = Connectivity.component_of ~avoiding:c inst.graph inst.receiver in
    ( { cut_found = Some { b_side = b; cut = c; c1 = w.c1; c2 = w.c2 };
        complete = true;
        visited = 0;
      },
      `Witness_reused )
  | _ -> (find_rmt_cut ?budget inst, `Researched)

let pp_witness ppf w =
  Format.fprintf ppf "@[<hov 2>cut %a = C1 %a ∪ C2 %a shielding B %a@]"
    Nodeset.pp w.cut Nodeset.pp w.c1 Nodeset.pp w.c2 Nodeset.pp w.b_side
