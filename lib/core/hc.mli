(** Hash-consing of node sets and adversary structures, with the global
    memo caches built on top of it.

    The per-search restriction memos in [Cut]/[Joint] only amortize work
    {e within} one solvability search.  A long-lived consumer (the
    {!Service} answering queries over a stream of instance deltas, or a
    sweep revisiting overlapping sub-structures) re-derives the same
    restrictions and joins over and over.  Hash-consing gives every
    distinct [Nodeset.t] / [Structure.t] {e content} a unique integer id,
    so those memos can become global tables keyed by id pairs — one
    canonical computation per distinct input, shared across calls,
    searches and service generations.

    Design notes (DESIGN.md §12):

    - Canonical cells live in {e weak} tables ([Weak.Make]): hash-consing
      never extends the lifetime of a value that the rest of the program
      has dropped.  Ids are drawn from a monotone counter and {e never
      reused}, so a memo entry keyed by the id of a collected cell can
      only go stale (it is unreachable by any future lookup), never
      wrong.
    - The memo caches themselves are {e bounded strong} tables keyed by
      id pairs.  Keying them weakly by the cells would make entries die
      at the next minor collection (callers hold raw values, not cells);
      instead they are capped and flushed wholesale when full.
    - Every entry point locks one global [Mutex], so the tables are safe
      under [Parsweep]/[Domain] fan-outs.  rmt-lint sanctions exactly
      this file's top-level mutable state (see lib/lint/rules.ml and the
      R6 filter in lib/lint/race.ml); the domain-safety property is
      tested at runtime in test/core/test_hc.ml. *)

open Rmt_base
open Rmt_adversary

val set : Nodeset.t -> Nodeset.t
(** The canonical representative of the set's content.  [set a == set b]
    iff [Nodeset.equal a b]. *)

val set_id : Nodeset.t -> int
(** Unique id of the canonical representative: [set_id a = set_id b] iff
    [Nodeset.equal a b] (while either representative is live). *)

val structure : Structure.t -> Structure.t
(** Canonical representative of the structure (ground set + antichain). *)

val structure_id : Structure.t -> int
(** [structure_id s1 = structure_id s2] iff [Structure.equal s1 s2]. *)

val equal_set : Nodeset.t -> Nodeset.t -> bool
(** O(1) after consing: physical equality of canonical representatives.
    Coincides with [Nodeset.equal] (test/core/test_hc.ml). *)

val equal_structure : Structure.t -> Structure.t -> bool
(** Same, for structures; coincides with [Structure.equal]. *)

val memo_restrict : Nodeset.t -> Structure.t -> Structure.t
(** [memo_restrict a z] is [Structure.restrict a z], memoized globally by
    [(set_id a, structure_id z)].  The result is itself canonical, so
    chains of cached operations keep hitting. *)

val memo_join :
  compute:(Structure.t -> Structure.t -> Structure.t) ->
  Structure.t ->
  Structure.t ->
  Structure.t
(** [memo_join ~compute e f] memoizes the commutative [compute] by the
    {e unordered} pair of structure ids.  The cache is shared by all
    callers, so they must all pass the same function — in this repository
    that is the ⊕ join, wired up once as [Joint.join_memo]. *)

type stats = {
  live_sets : int;  (** canonical set cells currently live *)
  live_structures : int;
  set_hits : int;  (** [set]/[set_id] calls answered by an existing cell *)
  set_misses : int;
  structure_hits : int;
  structure_misses : int;
  restrict_hits : int;
  restrict_misses : int;
  join_hits : int;
  join_misses : int;
}

val stats : unit -> stats
(** Snapshot of the counters.  Live counts (and, after a collection,
    hit/miss splits) depend on GC timing: fine for bench reporting, not
    for golden files. *)

val clear : unit -> unit
(** Drop every table and reset the counters (ids keep growing).  For
    benchmarks that need the miss path, and for test isolation. *)
