open Rmt_base
open Rmt_adversary

(* Weak hash-cons tables + bounded strong memo caches, one global mutex.

   There is no rmt-lint carve-out for this file: the R4/R8 lock pass
   (lib/lint/lock.ml) proves the discipline instead.  Every top-level
   table is only reached from [locked] critical sections, no critical
   section re-acquires or runs enumerative compute (the memo wrappers
   probe under the lock, compute outside, re-lock to store), and a
   regression — say a new entry point that forgets [locked] — is a
   finding, not a silently widened exemption.  test/core/test_hc.ml
   exercises the same discipline under a real fan-out. *)

type 'a cell = { value : 'a; mutable id : int }

(* [id] is not part of the content: cells hash and compare by [value]
   only, so a fresh probe cell finds the canonical one. *)
module Set_cell = struct
  type t = Nodeset.t cell

  let equal a b = Nodeset.equal a.value b.value
  let hash a = Nodeset.hash a.value
end

module Structure_cell = struct
  type t = Structure.t cell

  let equal a b = Structure.equal a.value b.value

  let hash a =
    List.fold_left
      (fun acc m -> (acc * 1000003) lxor Nodeset.hash m)
      (Nodeset.hash (Structure.ground a.value))
      (Structure.maximal_sets a.value)
end

module Set_tab = Weak.Make (Set_cell)
module Structure_tab = Weak.Make (Structure_cell)

let lock = Mutex.create ()
let locked f = Mutex.protect lock f

let next_id = ref 0
let set_tab = Set_tab.create 1024
let structure_tab = Structure_tab.create 256

(* Memo caches: strong, keyed by id pairs, capped.  Ids are never
   reused, so an entry whose key ids belong to collected cells is dead
   weight but never a wrong answer; the cap flushes such residue. *)
let cache_cap = 8192
let restrict_cache : (int * int, Structure.t) Hashtbl.t = Hashtbl.create 256
let join_cache : (int * int, Structure.t) Hashtbl.t = Hashtbl.create 256

let set_hits = ref 0
let set_misses = ref 0
let structure_hits = ref 0
let structure_misses = ref 0
let restrict_hits = ref 0
let restrict_misses = ref 0
let join_hits = ref 0
let join_misses = ref 0

let intern tab probe hits misses =
  match Set_tab.find_opt tab probe with
  | Some canon ->
    incr hits;
    canon
  | None ->
    probe.id <- !next_id;
    incr next_id;
    Set_tab.add tab probe;
    incr misses;
    probe

let intern_structure probe =
  match Structure_tab.find_opt structure_tab probe with
  | Some canon ->
    incr structure_hits;
    canon
  | None ->
    probe.id <- !next_id;
    incr next_id;
    Structure_tab.add structure_tab probe;
    incr structure_misses;
    probe

let set_cell s = intern set_tab { value = s; id = -1 } set_hits set_misses
let structure_cell z = intern_structure { value = z; id = -1 }

let set s = locked (fun () -> (set_cell s).value)
let set_id s = locked (fun () -> (set_cell s).id)
let structure z = locked (fun () -> (structure_cell z).value)
let structure_id z = locked (fun () -> (structure_cell z).id)

let equal_set a b = locked (fun () -> set_cell a == set_cell b)
let equal_structure a b = locked (fun () -> structure_cell a == structure_cell b)

let bounded_add cache key v =
  if Hashtbl.length cache >= cache_cap then Hashtbl.reset cache;
  Hashtbl.replace cache key v

let memo_restrict a z =
  let compute_under_lock =
    locked (fun () ->
        let key = ((set_cell a).id, (structure_cell z).id) in
        match Hashtbl.find_opt restrict_cache key with
        | Some r ->
          incr restrict_hits;
          Either.Left r
        | None ->
          incr restrict_misses;
          Either.Right key)
  in
  match compute_under_lock with
  | Either.Left r -> r
  | Either.Right key ->
    (* compute outside the lock: restriction can be expensive and other
       domains' lookups must not wait on it.  A racing domain may compute
       the same value; last write wins with an equal result. *)
    let r = Structure.restrict a z in
    locked (fun () ->
        let r = (structure_cell r).value in
        bounded_add restrict_cache key r;
        r)

let memo_join ~compute e f =
  let probe =
    locked (fun () ->
        let ie = (structure_cell e).id and if_ = (structure_cell f).id in
        let key = (min ie if_, max ie if_) in
        match Hashtbl.find_opt join_cache key with
        | Some r ->
          incr join_hits;
          Either.Left r
        | None ->
          incr join_misses;
          Either.Right key)
  in
  match probe with
  | Either.Left r -> r
  | Either.Right key ->
    let r = compute e f in
    locked (fun () ->
        let r = (structure_cell r).value in
        bounded_add join_cache key r;
        r)

type stats = {
  live_sets : int;
  live_structures : int;
  set_hits : int;
  set_misses : int;
  structure_hits : int;
  structure_misses : int;
  restrict_hits : int;
  restrict_misses : int;
  join_hits : int;
  join_misses : int;
}

let stats () =
  locked (fun () ->
      {
        live_sets = Set_tab.count set_tab;
        live_structures = Structure_tab.count structure_tab;
        set_hits = !set_hits;
        set_misses = !set_misses;
        structure_hits = !structure_hits;
        structure_misses = !structure_misses;
        restrict_hits = !restrict_hits;
        restrict_misses = !restrict_misses;
        join_hits = !join_hits;
        join_misses = !join_misses;
      })

let clear () =
  locked (fun () ->
      Set_tab.clear set_tab;
      Structure_tab.clear structure_tab;
      Hashtbl.reset restrict_cache;
      Hashtbl.reset join_cache;
      set_hits := 0;
      set_misses := 0;
      structure_hits := 0;
      structure_misses := 0;
      restrict_hits := 0;
      restrict_misses := 0;
      join_hits := 0;
      join_misses := 0)
