(** Per-channel delivery policies — the message adversary.

    A policy is the scheduler's oracle: {!Sim.run} consults it once per
    scheduled message (in deterministic global send order) and obeys the
    returned {!Schedule.decision}.  Policies are single-run values: the
    random one consumes its PRNG and the recording wrapper accumulates
    entries, so build a fresh policy per execution (the same discipline
    as {!Rmt_net.Byzantine.mimic_honest} strategies). *)

open Rmt_base

type t

val bound : t -> int
(** Maximum delay the policy can emit; {!Sim.run} scales its default
    round limit by it. *)

val decide :
  t -> seq:int -> round:int -> src:int -> dst:int -> Schedule.decision

val sync : t
(** Delay 1, FIFO keys, no duplication, no drops: the scheduler under
    which {!Sim.run} reproduces {!Rmt_net.Engine.run} bit for bit. *)

type params = {
  delay_bound : int;  (** maximum delivery delay, >= 1 *)
  p_late : float;  (** probability of a delay drawn from [2..delay_bound] *)
  p_reorder : float;  (** probability of a non-FIFO ordering key *)
  key_bound : int;  (** keys are drawn from [1..key_bound] *)
  p_dup : float;  (** probability of a duplicated delivery *)
  p_drop : float;  (** per-message drop probability while budget lasts *)
  drop_budget : int;  (** total drops allowed — bounded message loss *)
}

val default_params : params
(** The full message adversary: bounded delays, reordering, duplication,
    and bounded loss.  Schedules drawn from it can defeat RMT-PKA —
    delaying or dropping one honest report hides the evidence that
    vetoes a forged trail (see the pinned reproducers in
    [test/sim/fixtures]).  Those are the paper's synchrony and
    reliable-channel assumptions at work, not protocol bugs; sweep
    {!timely_params} for the schedule space where Theorem 4's safety is
    scheduler-independent. *)

val lossless_params : params
(** {!default_params} with message loss disabled: deliveries may be
    late, reordered, and duplicated, but every message arrives.  Still
    asynchronous enough to defeat RMT-PKA in rare schedules (one honest
    report delayed past the receiver's decision round acts like an
    omission), so exploration territory, not a property space. *)

val timely_params : params
(** Every message's {e first} copy arrives on the synchronous timetable
    (delay 1, no loss); the scheduler may still permute each inbox and
    inject late duplicate copies.  Under these schedules the receiver's
    cumulative evidence per round is exactly the synchronous engine's,
    so Theorem 4's safety carries over — the schedule space swept by the
    pinned scheduler-independence property and by [make sim-smoke]. *)

val random : Prng.t -> params -> t
(** A seeded adversarial scheduler.  Deterministic in the PRNG state and
    the (deterministic) order of {!decide} calls.  Raises
    [Invalid_argument] if [delay_bound < 1] or [key_bound < 0]. *)

val of_schedule : Schedule.t -> t
(** Replay: recorded entries verbatim, {!Schedule.sync_decision} for
    every other message.  Entry lookup is pre-hashed. *)

val record : t -> t * (unit -> Schedule.t)
(** [record p] is a policy that behaves exactly like [p] plus a freeze
    function returning the schedule of all non-synchronous decisions
    taken so far — the reproducer for the run just observed. *)
