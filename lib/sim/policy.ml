open Rmt_base

type t = {
  bound : int;
  decide : seq:int -> round:int -> src:int -> dst:int -> Schedule.decision;
}

let bound t = t.bound
let decide t ~seq ~round ~src ~dst = t.decide ~seq ~round ~src ~dst

let sync =
  {
    bound = 1;
    decide = (fun ~seq:_ ~round:_ ~src:_ ~dst:_ -> Schedule.sync_decision);
  }

type params = {
  delay_bound : int;
  p_late : float;
  p_reorder : float;
  key_bound : int;
  p_dup : float;
  p_drop : float;
  drop_budget : int;
}

let default_params =
  {
    delay_bound = 3;
    p_late = 0.3;
    p_reorder = 0.25;
    key_bound = 4;
    p_dup = 0.05;
    p_drop = 0.1;
    drop_budget = 2;
  }

let lossless_params = { default_params with p_drop = 0.0; drop_budget = 0 }

let timely_params =
  {
    delay_bound = 1;
    p_late = 0.0;
    p_reorder = 0.4;
    key_bound = 4;
    p_dup = 0.1;
    p_drop = 0.0;
    drop_budget = 0;
  }

let random rng params =
  if params.delay_bound < 1 then
    invalid_arg "Policy.random: delay_bound must be >= 1";
  if params.key_bound < 0 then
    invalid_arg "Policy.random: negative key_bound";
  (* closure state, not module state: one policy drives one run *)
  let drops_left = ref params.drop_budget in
  let decide ~seq:_ ~round:_ ~src:_ ~dst:_ =
    if !drops_left > 0 && Prng.float rng 1.0 < params.p_drop then begin
      decr drops_left;
      Schedule.drop_decision
    end
    else begin
      let delay =
        if params.delay_bound > 1 && Prng.float rng 1.0 < params.p_late then
          2 + Prng.int rng (params.delay_bound - 1)
        else 1
      in
      let key =
        if params.key_bound > 0 && Prng.float rng 1.0 < params.p_reorder then
          1 + Prng.int rng params.key_bound
        else 0
      in
      let dup =
        if Prng.float rng 1.0 < params.p_dup then
          Some (1 + Prng.int rng params.delay_bound)
        else None
      in
      { Schedule.drop = false; delay; key; dup }
    end
  in
  { bound = params.delay_bound; decide }

let of_schedule sched =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (seq, d) -> Hashtbl.replace tbl seq d)
    (Schedule.entries sched);
  let decide ~seq ~round:_ ~src:_ ~dst:_ =
    match Hashtbl.find_opt tbl seq with
    | Some d -> d
    | None -> Schedule.sync_decision
  in
  { bound = Schedule.bound sched; decide }

let record t =
  let entries = ref [] in
  let decide ~seq ~round ~src ~dst =
    let d = t.decide ~seq ~round ~src ~dst in
    if not (Schedule.decision_is_sync d) then entries := (seq, d) :: !entries;
    d
  in
  let freeze () = Schedule.make ~bound:t.bound (List.rev !entries) in
  ({ t with decide }, freeze)
