(** Schedule sweeps — fuzzing the scheduler.

    The simulation counterpart of {!Rmt_attack.Campaign.run}: each trial
    draws a random attack program {e and} a random delivery schedule
    (via a recorded {!Policy.random}), runs them together on {!Sim.run},
    and classifies the outcome against the paper's claims.  Theorem 4's
    safety guarantee does not depend on synchrony, so a safety violation
    under {e any} schedule refutes it just as a synchronous one would —
    and ships with the recorded schedule for replay.  Liveness is
    different: delays and bounded drops can legitimately starve a
    receiver that the synchronous engine would have served, so
    [liveness_lost] counts are expected to be non-zero under aggressive
    parameters and are reported, not failed, by the sweep's callers. *)

open Rmt_core
open Rmt_knowledge
open Rmt_attack

type report = {
  protocol : Campaign.protocol;
  seed : int;
  schedules : int;  (** trials actually executed *)
  solvability : Solvability.feasibility;
  delivered : int;
  silenced : int;
  violated : int;
  truncated : int;
  liveness_lost : int;
  safety_violations : (Campaign.run_report * Schedule.t) list;
      (** each with the recorded (unshrunk) schedule that produced it *)
  max_rounds_seen : int;
  total_messages : int;
  stopped_early : bool;
}

val run :
  ?domains:int ->
  ?max_messages:int ->
  ?batch:int ->
  ?should_stop:(unit -> bool) ->
  ?x_dealer:int ->
  ?x_fake:int ->
  ?params:Policy.params ->
  seed:int ->
  schedules:int ->
  Campaign.protocol ->
  Instance.t ->
  report
(** Up to [schedules] (program, schedule) trials drawn from [seed],
    batches of [batch] (default 16) fanned through
    {!Rmt_workloads.Parsweep.map}; [should_stop] is polled between
    batches.  Deterministic in (seed, schedules, params), independent of
    [domains].  [params] defaults to {!Policy.timely_params} — the
    schedule space where Theorem 4's safety is scheduler-independent;
    pass {!Policy.lossless_params} or {!Policy.default_params} to
    explore delays and loss too (expect rare PKA safety violations
    there: asynchrony and loss are outside Theorem 4's model). *)

val shrink_violation :
  ?budget:int ->
  ?max_messages:int ->
  Campaign.protocol ->
  x_dealer:int ->
  Instance.t ->
  Campaign.run_report * Schedule.t ->
  Campaign.run_report * Schedule.t
(** Minimize a violation's schedule with {!Sim_shrink.minimize} (the
    program is kept fixed — its seq numbering anchors the schedule),
    then re-execute under the shrunk schedule to refresh the report. *)

val pp_report : Format.formatter -> report -> unit
