let conforms (env : Rmt_protocols.Envelope.t) sched =
  let entries = Schedule.entries sched in
  let drops =
    List.length (List.filter (fun (_, d) -> d.Schedule.drop) entries)
  in
  drops <= env.Rmt_protocols.Envelope.drop_budget
  && List.for_all
       (fun (_, d) ->
         d.Schedule.drop
         || d.Schedule.delay <= env.Rmt_protocols.Envelope.delay_bound)
       entries

let params_within (p : Policy.params) (env : Rmt_protocols.Envelope.t) =
  p.Policy.delay_bound <= env.Rmt_protocols.Envelope.delay_bound
  && (p.Policy.p_drop <= 0.
      || p.Policy.drop_budget <= env.Rmt_protocols.Envelope.drop_budget)
