(** Running attack programs on the simulator — {!Rmt_attack.Campaign}'s
    per-protocol dispatch over the {!Sim.run} backend.

    A violation found under an adversarial schedule ships as a
    {e reproducer pair}: the PR 2 [.rmt] file (instance + attack program
    + expected verdict) next to a [.sched] file (the shrunk schedule).
    [FILE.rmt] always pairs with [FILE.sched]. *)

open Rmt_knowledge
open Rmt_attack

val runner : policy:Policy.t -> Campaign.runner
(** The simulator as a campaign backend.  The policy is consumed by the
    single run the runner performs — build a fresh one per execution. *)

val execute :
  ?max_messages:int ->
  policy:Policy.t ->
  Campaign.protocol ->
  Instance.t ->
  x_dealer:int ->
  Rmt_attack.Program.t ->
  Campaign.run_report

val execute_traced :
  ?max_messages:int ->
  ?max_lines:int ->
  policy:Policy.t ->
  Campaign.protocol ->
  Instance.t ->
  x_dealer:int ->
  Rmt_attack.Program.t ->
  Campaign.run_report * string

val execute_recorded :
  ?max_messages:int ->
  params:Policy.params ->
  sched_seed:int ->
  Campaign.protocol ->
  Instance.t ->
  x_dealer:int ->
  Rmt_attack.Program.t ->
  Campaign.run_report * Schedule.t
(** One run under a fresh seeded random policy, with recording: returns
    the report plus the replayable schedule of every non-synchronous
    decision taken.  Deterministic in (params, sched_seed, protocol,
    instance, x_dealer, program). *)

val replay :
  ?max_messages:int ->
  ?max_lines:int ->
  Replay.t ->
  Schedule.t ->
  Campaign.run_report * string
(** Replay a reproducer pair: the [.rmt] run under the [.sched]
    schedule.  Bit-identical to the recorded execution. *)

val keep_verdict :
  ?max_messages:int ->
  Campaign.protocol ->
  x_dealer:int ->
  verdict:Campaign.verdict ->
  Instance.t ->
  Rmt_attack.Program.t ->
  Schedule.t ->
  bool
(** {!Sim_shrink.minimize} predicate: does replaying the (fixed) program
    under the candidate schedule still produce the same verdict
    constructor?  (Same-silencing additionally requires the run not to
    be truncated, mirroring {!Rmt_attack.Shrink.keep_verdict}.) *)

val sched_path_of : string -> string
(** [sched_path_of "x/y.rmt"] is ["x/y.sched"]. *)

val write_pair :
  rmt:string -> Replay.t -> Schedule.t -> (string, string) result
(** Writes the [.rmt] file and its sibling [.sched]; returns the
    schedule path. *)

val load_pair : rmt:string -> (Replay.t * Schedule.t, string) result
