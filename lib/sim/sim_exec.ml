open Rmt_base
open Rmt_attack

let runner ~policy =
  {
    Campaign.run =
      (fun ?max_messages ?size_of ?stop_when ?on_deliver ~graph ~adversary
           auto ->
        Sim.run ?max_messages ?size_of ?stop_when ?on_deliver ~policy ~graph
          ~adversary auto);
  }

let execute ?max_messages ~policy protocol inst ~x_dealer p =
  Campaign.execute ?max_messages ~runner:(runner ~policy) protocol inst
    ~x_dealer p

let execute_traced ?max_messages ?max_lines ~policy protocol inst ~x_dealer p
    =
  Campaign.execute_traced ?max_messages ~runner:(runner ~policy) ?max_lines
    protocol inst ~x_dealer p

let execute_recorded ?max_messages ~params ~sched_seed protocol inst ~x_dealer
    p =
  let rng = Prng.create sched_seed in
  let policy, freeze = Policy.record (Policy.random rng params) in
  let r = execute ?max_messages ~policy protocol inst ~x_dealer p in
  (r, freeze ())

let replay ?max_messages ?max_lines (r : Replay.t) sched =
  execute_traced ?max_messages ?max_lines
    ~policy:(Policy.of_schedule sched)
    r.Replay.protocol r.Replay.instance ~x_dealer:r.Replay.x_dealer
    r.Replay.program

(* ------------------------------------------------------------------ *)
(* Shrinking predicate                                                 *)
(* ------------------------------------------------------------------ *)

let verdict_same_kind (a : Campaign.verdict) (b : Campaign.verdict) =
  match (a, b) with
  | Campaign.Delivered, Campaign.Delivered
  | Campaign.Silenced, Campaign.Silenced
  | Campaign.Violated _, Campaign.Violated _ -> true
  | (Campaign.Delivered | Campaign.Silenced | Campaign.Violated _), _ -> false

let keep_verdict ?max_messages protocol ~x_dealer ~verdict inst program sched
    =
  let r =
    execute ?max_messages
      ~policy:(Policy.of_schedule sched)
      protocol inst ~x_dealer program
  in
  verdict_same_kind r.Campaign.verdict verdict
  && ((not (verdict_same_kind verdict Campaign.Silenced))
      || not r.Campaign.truncated)

(* ------------------------------------------------------------------ *)
(* Reproducer pairs                                                    *)
(* ------------------------------------------------------------------ *)

let sched_path_of rmt = Filename.remove_extension rmt ^ ".sched"

let ( let* ) = Result.bind

let write_pair ~rmt (r : Replay.t) sched =
  let* () = Replay.to_file rmt r in
  let* () = Schedule.to_file (sched_path_of rmt) sched in
  Ok (sched_path_of rmt)

let load_pair ~rmt =
  let* r = Replay.of_file rmt in
  let* sched = Schedule.of_file (sched_path_of rmt) in
  Ok (r, sched)
