(** Greedy shrinking of recorded schedules.

    The schedule-level counterpart of {!Rmt_attack.Shrink}: starting
    from a recorded reproducer, repeatedly apply the first
    size-decreasing move whose result still satisfies [keep] — remove an
    entry (the message becomes synchronous), drop a duplication, zero an
    ordering key, shorten a delay (to 1, or halved) — until no move is
    acceptable or the evaluation budget runs out.  Because every move
    strictly decreases {!Schedule.size}, the fixpoint converges toward
    the synchronous schedule; what remains is exactly the scheduling the
    property needs.

    Deterministic in (schedule, [keep]): candidates are tried in a fixed
    order. *)

val minimize :
  ?budget:int -> keep:(Schedule.t -> bool) -> Schedule.t -> Schedule.t
(** [budget] caps [keep] evaluations (default 400); each evaluation
    typically re-executes a simulated run, so the budget bounds total
    shrinking cost. *)
