open Rmt_base
open Rmt_graph
open Rmt_net

(* The discrete-event counterpart of Engine.run.  Virtual time is the
   round counter; the event queue maps delivery rounds to scheduled
   messages.  Registration (Transport.Roster) and decision/statistics
   bookkeeping (Transport.Ledger) are the contract's shared pieces —
   the same code the engine runs — so only the delivery substrate
   differs, and the sync-equivalence property (test/sim, and the
   conformance suite in test/net) asserting bit-identical outcomes
   under Policy.sync rests on shared code rather than on two
   hand-synchronized copies. *)

let run ?max_rounds ?(max_messages = Transport.default_max_messages)
    ?(size_of = fun _ -> 1) ?(stop_when = fun _ -> false)
    ?(on_deliver = Transport.no_deliver_hook) ~policy ~graph ~adversary
    automaton =
  let roster =
    Transport.Roster.make ~who:"Sim.run" ~graph
      ~corrupted:adversary.Engine.corrupted
  in
  let honest = Transport.Roster.honest roster in
  let corrupted = Transport.Roster.corrupted roster in
  let max_rounds =
    match max_rounds with
    | Some r -> r
    | None ->
      (* the engine's budget, stretched by the worst-case delay so a
         delayed run can still converge *)
      Transport.default_max_rounds graph * Policy.bound policy
  in
  let ledger =
    Transport.Ledger.create ~honest ~decision:automaton.Engine.decision
  in
  (* event queue: delivery round -> (key, seq, src, dst, payload) in
     reverse scheduling order *)
  let due = Hashtbl.create 64 in
  let pending = ref 0 in
  let seq = ref 0 in
  let schedule_at t entry =
    (match Hashtbl.find_opt due t with
     | Some l -> l := entry :: !l
     | None -> Hashtbl.add due t (ref [ entry ]));
    incr pending
  in
  let enqueue ~is_honest ~round src sends =
    List.iter
      (fun { Engine.dst; payload } ->
        if Graph.mem_edge src dst graph then begin
          let s = !seq in
          incr seq;
          let d = Policy.decide policy ~seq:s ~round ~src ~dst in
          if not d.Schedule.drop then begin
            schedule_at (round + d.Schedule.delay)
              (d.Schedule.key, s, src, dst, payload);
            match d.Schedule.dup with
            | Some extra ->
              schedule_at
                (round + d.Schedule.delay + extra)
                (d.Schedule.key, s, src, dst, payload)
            | None -> ()
          end
        end
        else if is_honest then
          invalid_arg
            (Printf.sprintf "Sim.run: honest node %d sent to non-neighbor %d"
               src dst))
      sends
  in
  (* round 0: initialization *)
  Nodeset.iter
    (fun v ->
      let st, sends = automaton.Engine.init v in
      Transport.Ledger.register ledger v st;
      enqueue ~is_honest:true ~round:0 v sends)
    honest;
  Nodeset.iter
    (fun v ->
      enqueue ~is_honest:false ~round:0 v
        (adversary.Engine.act v ~round:0 ~inbox:[]))
    corrupted;
  Transport.Ledger.note_decisions ledger 0;
  Transport.Ledger.count_round ledger ~delivered:0 ~bits:0;
  let rounds = ref 1 in
  let decision_map v = Transport.Ledger.decision_map ledger v in
  let live () = !pending > 0 || not (Nodeset.is_empty corrupted) in
  let continue = ref (live () && not (stop_when decision_map)) in
  while
    !continue && !rounds <= max_rounds
    && not (Transport.Ledger.truncated ledger)
  do
    if Transport.Ledger.messages ledger + !pending > max_messages then
      Transport.Ledger.truncate ledger
    else begin
      let round = !rounds in
      let deliveries =
        match Hashtbl.find_opt due round with
        | Some l ->
          Hashtbl.remove due round;
          !l
        | None -> []
      in
      let delivered = List.length deliveries in
      pending := !pending - delivered;
      let bits =
        List.fold_left
          (fun acc (_, _, _, _, p) -> acc + size_of p)
          0 deliveries
      in
      Transport.Ledger.count_round ledger ~delivered ~bits;
      let inbox_of =
        let tbl = Hashtbl.create 16 in
        (* deliveries are in reverse scheduling order; restore it, then
           sort each inbox by (key, seq) — all-zero keys is exactly the
           engine's send-ordered FIFO *)
        List.iter
          (fun (k, s, src, dst, p) ->
            let cur = try Hashtbl.find tbl dst with Not_found -> [] in
            Hashtbl.replace tbl dst ((k, s, src, p) :: cur))
          deliveries;
        fun v ->
          match Hashtbl.find_opt tbl v with
          | None -> []
          | Some l ->
            List.stable_sort
              (fun (k1, s1, _, _) (k2, s2, _, _) ->
                let c = Int.compare k1 k2 in
                if c <> 0 then c else Int.compare s1 s2)
              l
            |> List.map (fun (_, _, src, p) -> (src, p))
      in
      Nodeset.iter
        (fun v ->
          let inbox = inbox_of v in
          List.iter (fun (src, p) -> on_deliver ~round ~src ~dst:v p) inbox;
          if inbox <> [] || round = 1 then begin
            let st = Transport.Ledger.state ledger v in
            let st', sends = automaton.Engine.step v st ~round ~inbox in
            Transport.Ledger.set_state ledger v st';
            enqueue ~is_honest:true ~round v sends
          end)
        honest;
      Nodeset.iter
        (fun v ->
          let inbox = inbox_of v in
          List.iter (fun (src, p) -> on_deliver ~round ~src ~dst:v p) inbox;
          enqueue ~is_honest:false ~round v
            (adversary.Engine.act v ~round ~inbox))
        corrupted;
      Transport.Ledger.note_decisions ledger round;
      incr rounds;
      continue := live () && not (stop_when decision_map)
    end
  done;
  Transport.Ledger.finalize ledger ~rounds:!rounds

(* The contract instance: the simulator pinned to its synchronous
   scheduler.  Policy.sync is stateless, so one value serves every run;
   [seed] is ignored — under the sync policy there is nothing left to
   choose. *)
module Sync_backend : Transport.S = struct
  let name = "sim-sync"
  let discipline = Transport.Events

  let run ?max_rounds ?max_messages ?size_of ?stop_when ?on_deliver ?seed:_
      ~graph ~adversary automaton =
    run ?max_rounds ?max_messages ?size_of ?stop_when ?on_deliver
      ~policy:Policy.sync ~graph ~adversary automaton
end
