open Rmt_base
open Rmt_graph
open Rmt_net

(* The discrete-event counterpart of Engine.run.  Virtual time is the
   round counter; the event queue maps delivery rounds to scheduled
   messages.  Every semantic detail below deliberately mirrors the
   synchronous engine — round-0 initialization, the activation rule,
   inbox ordering, truncation and liveness accounting, decision
   bookkeeping — because the sync-equivalence property (test/sim)
   asserts bit-identical outcomes under Policy.sync.  When touching one
   side, touch both. *)

let run ?max_rounds ?(max_messages = 2_000_000) ?(size_of = fun _ -> 1)
    ?(stop_when = fun _ -> false)
    ?(on_deliver = fun ~round:_ ~src:_ ~dst:_ _ -> ()) ~policy ~graph
    ~adversary automaton =
  let nodes = Graph.nodes graph in
  if not (Nodeset.subset adversary.Engine.corrupted nodes) then
    invalid_arg "Sim.run: corrupted set outside the graph";
  let honest = Nodeset.diff nodes adversary.Engine.corrupted in
  let max_rounds =
    match max_rounds with
    | Some r -> r
    | None ->
      (* the engine's budget, stretched by the worst-case delay so a
         delayed run can still converge *)
      ((4 * Graph.num_nodes graph) + 8) * Policy.bound policy
  in
  let states = Hashtbl.create 16 in
  let decision_rounds : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let messages = ref 0 in
  let bits = ref 0 in
  let per_round = ref [] in
  (* event queue: delivery round -> (key, seq, src, dst, payload) in
     reverse scheduling order *)
  let due = Hashtbl.create 64 in
  let pending = ref 0 in
  let seq = ref 0 in
  let schedule_at t entry =
    (match Hashtbl.find_opt due t with
     | Some l -> l := entry :: !l
     | None -> Hashtbl.add due t (ref [ entry ]));
    incr pending
  in
  let note_decisions round =
    Nodeset.iter
      (fun v ->
        if not (Hashtbl.mem decision_rounds v) then
          match automaton.Engine.decision (Hashtbl.find states v) with
          | Some _ -> Hashtbl.replace decision_rounds v round
          | None -> ())
      honest
  in
  let enqueue ~is_honest ~round src sends =
    List.iter
      (fun { Engine.dst; payload } ->
        if Graph.mem_edge src dst graph then begin
          let s = !seq in
          incr seq;
          let d = Policy.decide policy ~seq:s ~round ~src ~dst in
          if not d.Schedule.drop then begin
            schedule_at (round + d.Schedule.delay)
              (d.Schedule.key, s, src, dst, payload);
            match d.Schedule.dup with
            | Some extra ->
              schedule_at
                (round + d.Schedule.delay + extra)
                (d.Schedule.key, s, src, dst, payload)
            | None -> ()
          end
        end
        else if is_honest then
          invalid_arg
            (Printf.sprintf "Sim.run: honest node %d sent to non-neighbor %d"
               src dst))
      sends
  in
  (* round 0: initialization *)
  Nodeset.iter
    (fun v ->
      let st, sends = automaton.Engine.init v in
      Hashtbl.replace states v st;
      enqueue ~is_honest:true ~round:0 v sends)
    honest;
  Nodeset.iter
    (fun v ->
      enqueue ~is_honest:false ~round:0 v
        (adversary.Engine.act v ~round:0 ~inbox:[]))
    adversary.Engine.corrupted;
  note_decisions 0;
  per_round := 0 :: !per_round;
  let rounds = ref 1 in
  let decision_map v =
    match Hashtbl.find_opt states v with
    | None -> None
    | Some st -> automaton.Engine.decision st
  in
  let live () =
    !pending > 0 || not (Nodeset.is_empty adversary.Engine.corrupted)
  in
  let truncated = ref false in
  let continue = ref (live () && not (stop_when decision_map)) in
  while !continue && !rounds <= max_rounds && not !truncated do
    if !messages + !pending > max_messages then truncated := true
    else begin
      let round = !rounds in
      let deliveries =
        match Hashtbl.find_opt due round with
        | Some l ->
          Hashtbl.remove due round;
          !l
        | None -> []
      in
      let delivered = List.length deliveries in
      pending := !pending - delivered;
      messages := !messages + delivered;
      List.iter (fun (_, _, _, _, p) -> bits := !bits + size_of p) deliveries;
      per_round := delivered :: !per_round;
      let inbox_of =
        let tbl = Hashtbl.create 16 in
        (* deliveries are in reverse scheduling order; restore it, then
           sort each inbox by (key, seq) — all-zero keys is exactly the
           engine's send-ordered FIFO *)
        List.iter
          (fun (k, s, src, dst, p) ->
            let cur = try Hashtbl.find tbl dst with Not_found -> [] in
            Hashtbl.replace tbl dst ((k, s, src, p) :: cur))
          deliveries;
        fun v ->
          match Hashtbl.find_opt tbl v with
          | None -> []
          | Some l ->
            List.stable_sort
              (fun (k1, s1, _, _) (k2, s2, _, _) ->
                let c = Int.compare k1 k2 in
                if c <> 0 then c else Int.compare s1 s2)
              l
            |> List.map (fun (_, _, src, p) -> (src, p))
      in
      Nodeset.iter
        (fun v ->
          let inbox = inbox_of v in
          List.iter (fun (src, p) -> on_deliver ~round ~src ~dst:v p) inbox;
          if inbox <> [] || round = 1 then begin
            let st = Hashtbl.find states v in
            let st', sends = automaton.Engine.step v st ~round ~inbox in
            Hashtbl.replace states v st';
            enqueue ~is_honest:true ~round v sends
          end)
        honest;
      Nodeset.iter
        (fun v ->
          let inbox = inbox_of v in
          List.iter (fun (src, p) -> on_deliver ~round ~src ~dst:v p) inbox;
          enqueue ~is_honest:false ~round v (adversary.Engine.act v ~round ~inbox))
        adversary.Engine.corrupted;
      note_decisions round;
      incr rounds;
      continue := live () && not (stop_when decision_map)
    end
  done;
  let decisions =
    Nodeset.fold
      (fun v acc ->
        match decision_map v with Some x -> (v, x) :: acc | None -> acc)
      honest []
    |> List.rev
  in
  Engine.
    {
      stats =
        {
          rounds = !rounds;
          messages = !messages;
          bits = !bits;
          per_round = Array.of_list (List.rev !per_round);
          truncated = !truncated;
        };
      decisions;
      decision_rounds =
        Hashtbl.fold (fun v r acc -> (v, r) :: acc) decision_rounds []
        |> List.sort (fun (v1, r1) (v2, r2) ->
               let c = Int.compare v1 v2 in
               if c <> 0 then c else Int.compare r1 r2);
      states =
        Nodeset.fold (fun v acc -> (v, Hashtbl.find states v) :: acc) honest []
        |> List.rev;
    }
