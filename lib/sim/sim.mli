(** Deterministic discrete-event simulation of the synchronous engine's
    protocols under adversarial schedulers.

    {!run} executes an unchanged {!Rmt_net.Engine.automaton} with
    {!Rmt_net.Engine.run}'s interface plus a delivery {!Policy}: every
    scheduled message gets a global sequence number (send order) and the
    policy decides its fate — drop, delay, ordering key, duplication.
    Virtual time is the round counter; a message sent at round [r] with
    delay [d] joins its destination's round-[r+d] inbox, and each inbox
    is sorted by [(key, seq)].

    Two properties are load-bearing (and pinned in [test/sim]):

    - {b Sync-equivalence}: under {!Policy.sync} the outcome — stats,
      decisions, decision rounds, delivery trace — is bit-identical to
      [Engine.run] on the same inputs.  Delay 1 makes every round's
      queue the engine's in-flight list, and all-zero keys sort inboxes
      into the engine's send order.

    - {b Determinism}: outcomes are a pure function of (automaton,
      adversary, policy decisions).  Replaying a recorded
      {!Schedule} through {!Policy.of_schedule} reproduces the run
      bit for bit; nothing depends on hash-table iteration order.

    The default round limit is the engine's [(4n+8)] scaled by
    {!Policy.bound}, so bounded delays cannot masquerade as liveness
    failures; truncation accounting counts all queued (undelivered)
    messages against [max_messages]. *)

open Rmt_graph
open Rmt_net

val run :
  ?max_rounds:int ->
  ?max_messages:int ->
  ?size_of:('m -> int) ->
  ?stop_when:((int -> int option) -> bool) ->
  ?on_deliver:(round:int -> src:int -> dst:int -> 'm -> unit) ->
  policy:Policy.t ->
  graph:Graph.t ->
  adversary:'m Engine.strategy ->
  ('s, 'm) Engine.automaton ->
  ('s, 'm) Engine.outcome
(** See {!Rmt_net.Engine.run} for the shared parameters; [policy] is
    consulted once per scheduled message and must be fresh for this run
    (see {!Policy}).  Raises [Invalid_argument] exactly where the engine
    does: a corrupted set outside the graph, or an honest send to a
    non-neighbor. *)

module Sync_backend : Rmt_net.Transport.S
(** The simulator pinned to {!Policy.sync} as a {!Rmt_net.Transport.S}
    backend ([name = "sim-sync"], per-event discipline).  By the
    sync-equivalence property its outcomes are byte-identical to
    {!Rmt_net.Engine.Backend}'s. *)
