type decision = {
  drop : bool;
  delay : int;
  key : int;
  dup : int option;
}

let sync_decision = { drop = false; delay = 1; key = 0; dup = None }
let drop_decision = { drop = true; delay = 1; key = 0; dup = None }

let decision_is_sync d =
  (not d.drop) && d.delay = 1 && d.key = 0 && d.dup = None

let decision_equal a b =
  a.drop = b.drop && a.delay = b.delay && a.key = b.key
  && Option.equal Int.equal a.dup b.dup

(* A dropped message has no delivery to delay, reorder or duplicate;
   canonicalizing keeps fingerprints and sizes stable. *)
let canon d = if d.drop then drop_decision else d

let decision_size d =
  if d.drop then 1
  else
    d.delay - 1
    + (if d.key <> 0 then 1 else 0)
    + match d.dup with Some _ -> 1 | None -> 0

type t = {
  bound : int;
  entries : (int * decision) list;
}

let bound t = t.bound
let entries t = t.entries

let make ~bound entries =
  if bound < 1 then invalid_arg "Schedule.make: bound must be >= 1";
  let entries =
    List.filter_map
      (fun (seq, d) ->
        if seq < 0 then invalid_arg "Schedule.make: negative seq";
        let d = canon d in
        if d.delay < 1 then invalid_arg "Schedule.make: delay must be >= 1";
        if d.key < 0 then invalid_arg "Schedule.make: negative key";
        (match d.dup with
         | Some e when e < 1 ->
           invalid_arg "Schedule.make: dup delay must be >= 1"
         | _ -> ());
        if decision_is_sync d then None else Some (seq, d))
      entries
    |> List.stable_sort (fun (s1, _) (s2, _) -> Int.compare s1 s2)
  in
  let rec check = function
    | (s1, _) :: ((s2, _) :: _ as rest) ->
      if s1 = s2 then
        invalid_arg
          (Printf.sprintf "Schedule.make: two decisions for message %d" s1)
      else check rest
    | _ -> ()
  in
  check entries;
  { bound; entries }

let sync = { bound = 1; entries = [] }

let size t = List.fold_left (fun acc (_, d) -> acc + decision_size d) 0 t.entries

let decision_for t seq =
  match List.assoc_opt seq t.entries with
  | Some d -> d
  | None -> sync_decision

let equal a b =
  a.bound = b.bound
  && List.equal
       (fun (s1, d1) (s2, d2) -> s1 = s2 && decision_equal d1 d2)
       a.entries b.entries

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let entry_to_line (seq, d) =
  if d.drop then Printf.sprintf "sched %d drop" seq
  else
    let fields =
      (if d.delay > 1 then [ Printf.sprintf "delay %d" d.delay ] else [])
      @ (if d.key <> 0 then [ Printf.sprintf "key %d" d.key ] else [])
      @ match d.dup with
        | Some e -> [ Printf.sprintf "dup %d" e ]
        | None -> []
    in
    String.concat " " (Printf.sprintf "sched %d" seq :: fields)

let to_lines t =
  ("# rmt schedule" :: [ Printf.sprintf "sched-bound %d" t.bound ])
  @ List.map entry_to_line t.entries

let to_string t = String.concat "\n" (to_lines t) ^ "\n"

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line =
  strip_comment line |> String.split_on_char ' '
  |> List.filter (fun s -> s <> "")

let is_sched_line line =
  match tokens line with
  | ("sched" | "sched-bound") :: _ -> true
  | _ -> false

let ( let* ) = Result.bind

let parse_int ~ctx s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: expected an integer, got %S" ctx s)

let parse_entry ~ctx seq rest =
  let* seq = parse_int ~ctx seq in
  match rest with
  | [ "drop" ] -> Ok (seq, drop_decision)
  | _ ->
    let rec fields d = function
      | [] -> Ok d
      | "delay" :: v :: rest ->
        let* v = parse_int ~ctx v in
        fields { d with delay = v } rest
      | "key" :: v :: rest ->
        let* v = parse_int ~ctx v in
        fields { d with key = v } rest
      | "dup" :: v :: rest ->
        let* v = parse_int ~ctx v in
        fields { d with dup = Some v } rest
      | tok :: _ -> Error (Printf.sprintf "%s: unknown field %S" ctx tok)
    in
    let* d = fields sync_decision rest in
    Ok (seq, d)

let of_lines lines =
  let* bound, entries =
    List.fold_left
      (fun acc (lineno, line) ->
        let* bound, entries = acc in
        let ctx = Printf.sprintf "line %d" lineno in
        match tokens line with
        | [] -> Ok (bound, entries)
        | [ "sched-bound"; b ] ->
          let* b = parse_int ~ctx b in
          if b < 1 then Error (Printf.sprintf "%s: bound must be >= 1" ctx)
          else Ok (Some b, entries)
        | "sched" :: seq :: rest ->
          let* e = parse_entry ~ctx seq rest in
          Ok (bound, e :: entries)
        | kw :: _ -> Error (Printf.sprintf "%s: unknown keyword %S" ctx kw))
      (Ok (None, []))
      (List.mapi (fun i l -> (i + 1, l)) lines)
  in
  let* bound = Option.to_result ~none:"missing 'sched-bound' line" bound in
  try Ok (make ~bound (List.rev entries))
  with Invalid_argument m -> Error m

let of_string text = of_lines (String.split_on_char '\n' text)

let to_file path t =
  try
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (to_string t));
    Ok ()
  with Sys_error e -> Error e

let of_file path =
  try of_string (In_channel.with_open_text path In_channel.input_all)
  with Sys_error e -> Error e

let pp ppf t =
  Format.fprintf ppf "@[<v>bound %d, %d entries (size %d)" t.bound
    (List.length t.entries) (size t);
  List.iter (fun e -> Format.fprintf ppf "@,%s" (entry_to_line e)) t.entries;
  Format.fprintf ppf "@]"
