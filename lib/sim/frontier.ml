type point = {
  delay_bound : int;
  drop_budget : int;
}

type row = {
  point : point;
  in_envelope : bool;
  schedules : int;
  delivered : int;
  silenced : int;
  violated : int;
  liveness_lost : int;
}

let default_grid =
  [
    { delay_bound = 1; drop_budget = 0 };
    { delay_bound = 2; drop_budget = 1 };
    { delay_bound = 3; drop_budget = 2 };
    { delay_bound = 4; drop_budget = 4 };
    { delay_bound = 6; drop_budget = 12 };
  ]

(* Conformance to an envelope constrains delay_bound and drop_budget
   only, so the exploration probabilities can be pushed well past
   Policy.default_params: inside points become harsher safety evidence
   and outside points get a realistic chance to exhibit the violations
   that trace the empirical frontier (sparse lateness/loss almost never
   concentrates enough damage on one flooding wave). *)
let params_of_point pt =
  {
    Policy.default_params with
    Policy.delay_bound = pt.delay_bound;
    p_late = (if pt.delay_bound <= 1 then 0. else 0.6);
    p_drop = (if pt.drop_budget <= 0 then 0. else 0.4);
    drop_budget = pt.drop_budget;
  }

let run ?domains ?(schedules = 60) ?x_dealer ?x_fake ~seed ~envelope protocol
    inst grid =
  List.map
    (fun pt ->
      let params = params_of_point pt in
      let report =
        Sweep.run ?domains ?x_dealer ?x_fake ~params ~seed ~schedules protocol
          inst
      in
      {
        point = pt;
        in_envelope = Envelope_check.params_within params envelope;
        schedules = report.Sweep.schedules;
        delivered = report.Sweep.delivered;
        silenced = report.Sweep.silenced;
        violated = report.Sweep.violated;
        liveness_lost = report.Sweep.liveness_lost;
      })
    grid

let to_table rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "delay drops envelope schedules delivered silenced violated \
     liveness_lost\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%5d %5d %8s %9d %9d %8d %8d %13d\n" r.point.delay_bound
           r.point.drop_budget
           (if r.in_envelope then "inside" else "outside")
           r.schedules r.delivered r.silenced r.violated r.liveness_lost))
    rows;
  Buffer.contents buf
