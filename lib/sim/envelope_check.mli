(** Checking recorded schedules against a declared model envelope.

    {!Rmt_protocols.Envelope} lives on the protocol side and stays free
    of simulator dependencies; this module supplies the simulator-side
    judgment: does a concrete [.sched] schedule stay inside the
    (delay-bound, drop-budget) contract a run claims?

    Duplicates are deliberately ignored: a [dup] adds a copy without
    removing or delaying the first delivery, so it cannot break the
    evidence-completeness argument the envelope backs (extra copies are
    absorbed by the certified protocols' per-trail deduplication). *)

val conforms : Rmt_protocols.Envelope.t -> Schedule.t -> bool
(** True when the schedule's total drops stay within the drop budget
    and every non-dropped delivery is delayed at most [delay_bound]
    rounds.  The synchronous (empty) schedule conforms to every
    envelope. *)

val params_within : Policy.params -> Rmt_protocols.Envelope.t -> bool
(** True when every schedule the random policy can draw from [params]
    conforms: [delay_bound] within the envelope's, and (when [p_drop]
    is positive) [drop_budget] within the envelope's. *)
