(** The solvability frontier — which envelopes a certified protocol
    survives.

    The certified tier ({!Rmt_protocols.Certified}) claims safety for
    every schedule inside its declared {!Rmt_protocols.Envelope} and
    nothing beyond it.  This experiment walks a grid of scheduler
    strengths (delay bound × drop budget), runs a seeded {!Sweep} at
    each point (fanned over [Parsweep] like every campaign), and
    reports the verdict counts: inside the envelope the [violated]
    column must be zero, and the point where violations first appear
    traces the empirical frontier next to the declared one.

    Deterministic in (seed, schedules, grid) and independent of the
    domain count — the rendered table is goldenable. *)

open Rmt_knowledge
open Rmt_attack

type point = {
  delay_bound : int;  (** the scheduler's maximum delivery delay, >= 1 *)
  drop_budget : int;  (** total messages the scheduler may drop *)
}

type row = {
  point : point;
  in_envelope : bool;
      (** every schedule drawn at this point conforms to the declared
          envelope ({!Envelope_check.params_within}) *)
  schedules : int;
  delivered : int;
  silenced : int;
  violated : int;
  liveness_lost : int;
}

val default_grid : point list
(** An escalating diagonal through (delay, drops) space crossing
    {!Rmt_protocols.Envelope.default} — three points inside, two out. *)

val params_of_point : point -> Policy.params
(** {!Policy.default_params} with the point's delay bound and drop
    budget and {e aggressive} exploration probabilities (lateness 0.6,
    loss 0.4) — envelope conformance constrains delay and drops only,
    so harsh probabilities sharpen both sides of the frontier.  Loss
    and lateness are switched off when the point's budget (resp. delay
    headroom) is zero, so the point's schedule space is exactly what it
    advertises. *)

val run :
  ?domains:int ->
  ?schedules:int ->
  ?x_dealer:int ->
  ?x_fake:int ->
  seed:int ->
  envelope:Rmt_protocols.Envelope.t ->
  Campaign.protocol ->
  Instance.t ->
  point list ->
  row list
(** One {!Sweep.run} per grid point ([schedules] trials each, default
    60), classifying each point against [envelope]. *)

val to_table : row list -> string
(** Fixed-width rendering, one line per row — the pinned-golden and
    EXPERIMENTS.md format. *)
