open Rmt_base
open Rmt_knowledge
open Rmt_core
open Rmt_workloads
open Rmt_attack

type report = {
  protocol : Campaign.protocol;
  seed : int;
  schedules : int;
  solvability : Solvability.feasibility;
  delivered : int;
  silenced : int;
  violated : int;
  truncated : int;
  liveness_lost : int;
  safety_violations : (Campaign.run_report * Schedule.t) list;
  max_rounds_seen : int;
  total_messages : int;
  stopped_early : bool;
}

let run ?domains ?max_messages ?(batch = 16) ?(should_stop = fun () -> false)
    ?(x_dealer = 7) ?(x_fake = 8) ?(params = Policy.timely_params) ~seed
    ~schedules protocol (inst : Instance.t) =
  let rng = Prng.create seed in
  let solv = Campaign.solvability protocol inst in
  let executed = ref 0
  and delivered = ref 0
  and silenced = ref 0
  and violated = ref 0
  and truncated = ref 0
  and liveness_lost = ref 0
  and violations = ref []
  and max_rounds_seen = ref 0
  and total_messages = ref 0
  and stopped = ref false in
  while (not !stopped) && !executed < schedules do
    let n = min batch (schedules - !executed) in
    (* programs and schedule seeds are drawn sequentially before the
       fan-out, so the report is independent of [domains] (the same
       discipline as Campaign.run) *)
    let trials =
      Array.init n (fun _ ->
          let p = Strategy_gen.random rng inst ~x_dealer ~x_fake in
          let sched_seed = Prng.int rng 1_073_741_823 in
          (p, sched_seed))
    in
    let reports =
      Parsweep.map ?domains
        (fun (p, sched_seed) ->
          Sim_exec.execute_recorded ?max_messages ~params ~sched_seed protocol
            inst ~x_dealer p)
        trials
    in
    Array.iter
      (fun ((r : Campaign.run_report), sched) ->
        incr executed;
        max_rounds_seen := max !max_rounds_seen r.Campaign.rounds;
        total_messages := !total_messages + r.Campaign.messages;
        if r.Campaign.truncated then incr truncated;
        let admissible =
          Instance.admissible inst (Program.corrupted r.Campaign.program)
        in
        (match Campaign.classify ~solvability:solv ~admissible r with
         | Campaign.Safety_violation -> violations := (r, sched) :: !violations
         | Campaign.Liveness_lost -> incr liveness_lost
         | Campaign.Safe -> ());
        match r.Campaign.verdict with
        | Campaign.Delivered -> incr delivered
        | Campaign.Violated _ -> incr violated
        | Campaign.Silenced -> incr silenced)
      reports;
    if should_stop () then stopped := true
  done;
  {
    protocol;
    seed;
    schedules = !executed;
    solvability = solv;
    delivered = !delivered;
    silenced = !silenced;
    violated = !violated;
    truncated = !truncated;
    liveness_lost = !liveness_lost;
    safety_violations = List.rev !violations;
    max_rounds_seen = !max_rounds_seen;
    total_messages = !total_messages;
    stopped_early = !stopped;
  }

let shrink_violation ?budget ?max_messages protocol ~x_dealer inst
    ((r : Campaign.run_report), sched) =
  let sched' =
    Sim_shrink.minimize ?budget
      ~keep:
        (Sim_exec.keep_verdict ?max_messages protocol ~x_dealer
           ~verdict:r.Campaign.verdict inst r.Campaign.program)
      sched
  in
  let r' =
    Sim_exec.execute ?max_messages
      ~policy:(Policy.of_schedule sched')
      protocol inst ~x_dealer r.Campaign.program
  in
  (r', sched')

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%s schedule sweep: seed=%d schedules=%d (%a)%s@,\
     delivered %d | silenced %d | violated %d | truncated %d@,\
     liveness lost %d | safety violations %d@,\
     max rounds %d | total messages %d@]"
    (Campaign.protocol_to_string r.protocol)
    r.seed r.schedules Solvability.pp_feasibility r.solvability
    (if r.stopped_early then " [stopped early]" else "")
    r.delivered r.silenced r.violated r.truncated r.liveness_lost
    (List.length r.safety_violations)
    r.max_rounds_seen r.total_messages
