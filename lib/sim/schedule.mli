(** Delivery schedules — the serializable record of a simulated run's
    scheduling choices.

    The simulator numbers every scheduled message with a global sequence
    number (the order {!Sim.run} passes sends to the delivery policy —
    deterministic in the run).  A schedule maps sequence numbers to the
    {e non-synchronous} decisions taken for them; every message without
    an entry gets {!sync_decision}.  This makes the synchronous schedule
    the empty one, and lets shrinking converge toward it entry by entry.

    On-disk format ([.sched], mirrors the line-oriented [.rmt] files):
    {v
    # rmt schedule
    sched-bound 3
    sched 12 delay 3
    sched 17 key 2
    sched 23 drop
    sched 30 delay 2 key 1 dup 1
    v} *)

type decision = {
  drop : bool;  (** suppress the message entirely *)
  delay : int;  (** rounds in flight; 1 is the synchronous next round *)
  key : int;
      (** per-inbox ordering key: inboxes sort by [(key, seq)], so 0
          everywhere is FIFO in send order *)
  dup : int option;
      (** also deliver a copy [e] rounds after the first delivery *)
}

val sync_decision : decision
(** [{drop = false; delay = 1; key = 0; dup = None}] — what the
    synchronous engine does to every message. *)

val drop_decision : decision

val decision_is_sync : decision -> bool
val decision_equal : decision -> decision -> bool

val decision_size : decision -> int
(** Shrinking measure of one decision: 0 iff synchronous, and strictly
    decreased by every {!Sim_shrink} move. *)

type t

val make : bound:int -> (int * decision) list -> t
(** Normalizes: canonicalizes dropped decisions, discards synchronous
    entries, sorts by sequence number.  Raises [Invalid_argument] on a
    negative seq/key, a delay or dup below 1, [bound < 1], or two
    entries for the same sequence number. *)

val sync : t
(** The empty schedule with bound 1: replaying it {e is} the
    synchronous engine, bit for bit. *)

val bound : t -> int
(** Maximum delay the recording policy could emit; replay scales the
    default round limit by it so delayed runs are not cut short. *)

val entries : t -> (int * decision) list
(** Non-synchronous entries, sorted by sequence number. *)

val decision_for : t -> int -> decision
(** Linear lookup with {!sync_decision} default; {!Policy.of_schedule}
    pre-hashes the entries instead when replaying. *)

val size : t -> int
(** Sum of {!decision_size} over the entries; 0 iff synchronous. *)

val equal : t -> t -> bool

val to_lines : t -> string list
val of_lines : string list -> (t, string) result
val to_string : t -> string
val of_string : string -> (t, string) result
val to_file : string -> t -> (unit, string) result
val of_file : string -> (t, string) result

val is_sched_line : string -> bool
(** Does the line belong to the schedule vocabulary?  (Mirrors
    {!Rmt_attack.Program.is_attack_line}.) *)

val pp : Format.formatter -> t -> unit
