(* Greedy delta-debugging over a recorded schedule, mirroring
   Rmt_attack.Shrink over programs.  Every move strictly decreases
   Schedule.size (an entry is removed, a duplication or key vanishes, or
   a delay shortens), so the greedy fixpoint terminates without the
   budget; the budget only caps re-execution cost.  Candidates are
   enumerated in a fixed order and the first acceptable one is taken, so
   the result is deterministic in (schedule, keep). *)

let drop_nth l n = List.filteri (fun i _ -> i <> n) l

let candidates (s : Schedule.t) =
  let entries = Schedule.entries s in
  let bound = Schedule.bound s in
  let n = List.length entries in
  let rebuild entries' = Schedule.make ~bound entries' in
  (* removing an entry makes that message synchronous — the biggest
     simplification, tried first *)
  let remove = Seq.init n (fun i -> rebuild (drop_nth entries i)) in
  let weaken =
    Seq.concat_map
      (fun i ->
        let seq_no, d = List.nth entries i in
        let put d' =
          rebuild
            (List.mapi (fun j e -> if j = i then (seq_no, d') else e) entries)
        in
        let moves =
          (match d.Schedule.dup with
           | Some _ -> [ put { d with Schedule.dup = None } ]
           | None -> [])
          @ (if d.Schedule.key <> 0 then [ put { d with Schedule.key = 0 } ]
             else [])
          @
          if d.Schedule.delay > 1 then
            put { d with Schedule.delay = 1 }
            :: (if d.Schedule.delay > 2 then
                  [ put { d with Schedule.delay = (d.Schedule.delay + 1) / 2 } ]
                else [])
          else []
        in
        List.to_seq moves)
      (Seq.init n Fun.id)
  in
  Seq.append remove weaken

let minimize ?(budget = 400) ~keep sched =
  let evals = ref 0 in
  let try_keep s =
    !evals < budget
    && begin
         incr evals;
         keep s
       end
  in
  let rec fix s =
    match Seq.find try_keep (candidates s) with
    | Some s' when !evals <= budget -> fix s'
    | _ -> s
  in
  fix sched
