(* Dense bitsets over non-negative ints.  Invariant: the word array never has
   trailing zero words, so structural equality of the arrays coincides with
   set equality and [compare] can be lexicographic from the top word. *)

let bits_per_word = Sys.int_size - 1 (* 62 on 64-bit: keep ints positive *)

type t = int array

let empty : t = [||]

let normalize (w : int array) : t =
  let n = ref (Array.length w) in
  while !n > 0 && w.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length w then w else Array.sub w 0 !n

let check_nonneg v =
  if v < 0 then invalid_arg "Nodeset: negative node id"

let word_of v = v / bits_per_word
let bit_of v = v mod bits_per_word

let mem v (s : t) =
  v >= 0
  && word_of v < Array.length s
  && s.(word_of v) land (1 lsl bit_of v) <> 0

let add v (s : t) =
  check_nonneg v;
  if mem v s then s
  else begin
    let w = word_of v in
    let len = max (Array.length s) (w + 1) in
    let out = Array.make len 0 in
    Array.blit s 0 out 0 (Array.length s);
    out.(w) <- out.(w) lor (1 lsl bit_of v);
    out
  end

let remove v (s : t) =
  if not (mem v s) then s
  else begin
    let out = Array.copy s in
    out.(word_of v) <- out.(word_of v) land lnot (1 lsl bit_of v);
    normalize out
  end

let singleton v = add v empty

let of_list l = List.fold_left (fun s v -> add v s) empty l

let of_array a = Array.fold_left (fun s v -> add v s) empty a

let range lo hi =
  if lo >= hi then empty
  else begin
    check_nonneg lo;
    let out = Array.make (word_of (hi - 1) + 1) 0 in
    for v = lo to hi - 1 do
      out.(word_of v) <- out.(word_of v) lor (1 lsl bit_of v)
    done;
    out
  end

let is_empty (s : t) = Array.length s = 0

let popcount =
  (* 62-bit popcount via the classic SWAR reduction on 64-bit ints. *)
  let m1 = 0x5555555555555555 and m2 = 0x3333333333333333 in
  let m4 = 0x0F0F0F0F0F0F0F0F in
  fun x ->
    let x = x - ((x lsr 1) land m1) in
    let x = (x land m2) + ((x lsr 2) land m2) in
    let x = (x + (x lsr 4)) land m4 in
    (x * 0x0101010101010101) lsr 56

let size (s : t) = Array.fold_left (fun acc w -> acc + popcount w) 0 s

let signature (s : t) = Array.fold_left ( lor ) 0 s

let subset (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la > lb then
    (* words of [a] beyond [b] must be zero; normalization says they are not *)
    false
  else begin
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < la do
      if a.(!i) land lnot b.(!i) <> 0 then ok := false;
      incr i
    done;
    !ok
  end

let equal (a : t) (b : t) =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < Array.length a do
    if a.(!i) <> b.(!i) then ok := false;
    incr i
  done;
  !ok

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i = if i < 0 then 0
      else
        let c = Stdlib.compare a.(i) b.(i) in
        if c <> 0 then c else go (i - 1)
    in
    go (la - 1)
  end

let disjoint (a : t) (b : t) =
  let l = min (Array.length a) (Array.length b) in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < l do
    if a.(!i) land b.(!i) <> 0 then ok := false;
    incr i
  done;
  !ok

let union (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  let l = max la lb in
  let out = Array.make l 0 in
  for i = 0 to l - 1 do
    let wa = if i < la then a.(i) else 0 in
    let wb = if i < lb then b.(i) else 0 in
    out.(i) <- wa lor wb
  done;
  out

let inter (a : t) (b : t) =
  let l = min (Array.length a) (Array.length b) in
  let out = Array.make l 0 in
  for i = 0 to l - 1 do
    out.(i) <- a.(i) land b.(i)
  done;
  normalize out

let diff (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  for i = 0 to la - 1 do
    let wb = if i < lb then b.(i) else 0 in
    out.(i) <- a.(i) land lnot wb
  done;
  normalize out

let iter f (s : t) =
  Array.iteri
    (fun wi w ->
      let base = wi * bits_per_word in
      let rest = ref w in
      while !rest <> 0 do
        let low = !rest land - !rest in
        (* index of lowest set bit *)
        let rec idx b i = if b = 1 then i else idx (b lsr 1) (i + 1) in
        f (base + idx low 0);
        rest := !rest land lnot low
      done)
    s

let fold f (s : t) init =
  let acc = ref init in
  iter (fun v -> acc := f v !acc) s;
  !acc

let for_all p (s : t) =
  let ok = ref true in
  (try iter (fun v -> if not (p v) then (ok := false; raise Exit)) s
   with Exit -> ());
  !ok

let exists p (s : t) = not (for_all (fun v -> not (p v)) s)

let filter p (s : t) = fold (fun v acc -> if p v then add v acc else acc) s empty

let elements (s : t) = List.rev (fold (fun v acc -> v :: acc) s [])

let to_array (s : t) = Array.of_list (elements s)

let min_elt_opt (s : t) =
  let r = ref None in
  (try iter (fun v -> r := Some v; raise Exit) s with Exit -> ());
  !r

let max_elt_opt (s : t) = fold (fun v _ -> Some v) s None

let choose_opt = min_elt_opt

let subsets_iter (s : t) f =
  let elts = to_array s in
  let n = Array.length elts in
  if n > 20 then invalid_arg "Nodeset.subsets_iter: universe too large";
  for mask = 0 to (1 lsl n) - 1 do
    let sub = ref empty in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then sub := add elts.(i) !sub
    done;
    f !sub
  done

let pp ppf (s : t) =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_int)
    (elements s)

let to_string s = Format.asprintf "%a" pp s

let hash (s : t) =
  Array.fold_left (fun acc w -> (acc * 1000003) lxor w) 5381 s
