(** Dense bitset representation of sets of node identifiers.

    Nodes are non-negative integers.  Sets are immutable: every operation
    returns a fresh value and never mutates its arguments.  The
    representation is an [int array] of 62-bit words sized to the largest
    member ever inserted, so sets over small universes (the regime of every
    experiment in this repository) cost a handful of words and all the
    set-algebraic operations used by the adversary-structure machinery
    ([subset], [inter], [union], [diff]) are word-parallel. *)

type t

(** {1 Construction} *)

val empty : t

val singleton : int -> t
(** [singleton v] is [{v}].  @raise Invalid_argument if [v < 0]. *)

val of_list : int list -> t

val of_array : int array -> t

val range : int -> int -> t
(** [range lo hi] is [{lo, lo+1, ..., hi-1}]; empty whenever [lo >= hi]. *)

val add : int -> t -> t
(** Physical identity when [v] is already a member: [add v s == s], so
    no-op additions on hot paths allocate nothing. *)

val remove : int -> t -> t
(** Physical identity when [v] is absent: [remove v s == s]. *)

(** {1 Queries} *)

val is_empty : t -> bool

val mem : int -> t -> bool

val size : t -> int
(** Number of elements. *)

val signature : t -> int
(** One-word fingerprint: the OR-fold of the representation words.
    [subset a b] implies [signature a land lnot (signature b) = 0], so a
    failing signature test refutes subset inclusion without touching the
    arrays; on universes below one word it is exact.  Used by the packed
    antichain representation in [Rmt_adversary.Structure]. *)

val subset : t -> t -> bool
(** [subset a b] is [a ⊆ b]. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order compatible with [equal]; suitable for [Map]/[Set] keys. *)

val disjoint : t -> t -> bool

val max_elt_opt : t -> int option

val min_elt_opt : t -> int option

val choose_opt : t -> int option
(** An arbitrary (but deterministic) element. *)

(** {1 Set algebra} *)

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

(** {1 Iteration} *)

val iter : (int -> unit) -> t -> unit
(** Ascending order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Ascending order. *)

val for_all : (int -> bool) -> t -> bool

val exists : (int -> bool) -> t -> bool

val filter : (int -> bool) -> t -> t

val elements : t -> int list
(** Ascending order. *)

val to_array : t -> int array

(** {1 Enumeration of subsets} *)

val subsets_iter : t -> (t -> unit) -> unit
(** [subsets_iter s f] applies [f] to all 2^|s| subsets of [s].  Intended
    for exhaustive small-universe checks; raises [Invalid_argument] when
    [size s > 20] to guard against accidental blow-ups. *)

(** {1 Formatting} *)

val pp : Format.formatter -> t -> unit
(** Prints as [{0, 3, 7}]. *)

val to_string : t -> string

val hash : t -> int
