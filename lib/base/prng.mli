(** Deterministic splitmix64 pseudo-random generator.

    Every source of randomness in the repository flows through an explicit
    [Prng.t] so that all experiments are reproducible bit-for-bit from their
    seed.  The generator state is mutable; use [split] to derive independent
    streams for sub-tasks without coupling their consumption order. *)

type t

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. *)

val split : t -> t
(** A fresh generator whose stream is independent of subsequent draws from
    the parent. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0 .. bound-1].
    @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t x] draws uniformly from [0, x). *)

val bits64 : t -> int64
(** Raw 64 bits of the stream. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val subset : t -> Nodeset.t -> float -> Nodeset.t
(** [subset t s p] keeps each element of [s] independently with
    probability [p]. *)

val sample : t -> Nodeset.t -> int -> Nodeset.t
(** [sample t s k] draws a uniform subset of [s] of size [min k (size s)]. *)
