(* splitmix64: tiny, fast, and high-quality enough for workload generation.
   Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t =
  let s = bits64 t in
  { state = mix (Int64.add s golden) }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling over the top 62 bits to avoid modulo bias. *)
  let mask = max_int in
  let rec go () =
    let r = Int64.to_int (bits64 t) land mask in
    let v = r mod bound in
    if r - v + (bound - 1) >= 0 then v else go ()
  in
  go ()

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t x =
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  let u = float_of_int r /. 9007199254740992.0 (* 2^53 *) in
  u *. x

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Prng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let subset t s p =
  Nodeset.filter (fun _ -> float t 1.0 < p) s

let sample t s k =
  let elts = Nodeset.to_array s in
  shuffle t elts;
  let k = min k (Array.length elts) in
  Nodeset.of_array (Array.sub elts 0 k)
