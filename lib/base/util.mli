(** Small general-purpose helpers shared across the repository. *)

val list_product : 'a list -> 'b list -> ('a * 'b) list
(** Cartesian product, left-major order. *)

val list_take : int -> 'a list -> 'a list
(** First [n] elements (all of them when the list is shorter). *)

val sum_by : ('a -> int) -> 'a list -> int

val sum_by_f : ('a -> float) -> 'a list -> float

val mean : float list -> float
(** Arithmetic mean; 0. on the empty list. *)

val median : float list -> float
(** Median; 0. on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] for [p] in [0,1], nearest-rank; 0. on empty. *)

val group_by :
  cmp:('k -> 'k -> int) -> ('a -> 'k) -> 'a list -> ('k * 'a list) list
(** Groups adjacent-equal keys after a stable sort by key under [cmp];
    each key appears once, groups in ascending key order. *)

val fail : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [fail fmt ...] raises [Failure] with a formatted message. *)
