(** Aligned ASCII tables for the benchmark harness.

    The experiment runners print their results as fixed-width tables so that
    [bench_output.txt] is directly readable and diffable. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Appends a row.  Rows shorter than the header are right-padded with
    empty cells; longer rows are truncated. *)

val add_sep : t -> unit
(** Appends a horizontal separator line. *)

val print : ?title:string -> t -> unit
(** Renders to stdout. *)

val to_string : ?title:string -> t -> string

(** {1 Cell formatting helpers} *)

val cell_int : int -> string

val cell_float : ?digits:int -> float -> string

val cell_pct : float -> string
(** [cell_pct 0.25] is ["25.0%"]. *)

val cell_bool : bool -> string
(** ["yes"] / ["no"]. *)

val cell_ratio : int -> int -> string
(** [cell_ratio num den] is ["num/den"]. *)
