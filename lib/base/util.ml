let list_product xs ys =
  List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs

let list_take n l =
  let rec go n l acc =
    match (n, l) with
    | 0, _ | _, [] -> List.rev acc
    | n, x :: rest -> go (n - 1) rest (x :: acc)
  in
  go n l []

let sum_by f l = List.fold_left (fun acc x -> acc + f x) 0 l

let sum_by_f f l = List.fold_left (fun acc x -> acc +. f x) 0. l

let mean = function
  | [] -> 0.
  | xs -> sum_by_f Fun.id xs /. float_of_int (List.length xs)

let sorted xs = List.sort Float.compare xs

let median xs =
  match sorted xs with
  | [] -> 0.
  | s ->
    let n = List.length s in
    let a = List.nth s ((n - 1) / 2) and b = List.nth s (n / 2) in
    (a +. b) /. 2.

let percentile p xs =
  match sorted xs with
  | [] -> 0.
  | s ->
    let n = List.length s in
    let idx = int_of_float (ceil (p *. float_of_int n)) - 1 in
    List.nth s (max 0 (min (n - 1) idx))

let group_by ~cmp key l =
  let tagged = List.map (fun x -> (key x, x)) l in
  let sorted = List.stable_sort (fun (a, _) (b, _) -> cmp a b) tagged in
  (* Equal keys are adjacent after the sort, so one linear pass groups
     them — no polymorphic compare anywhere (rmt-lint R1). *)
  let rec go = function
    | [] -> []
    | (k, x) :: rest ->
      let rec split acc = function
        | (k', x') :: tl when cmp k' k = 0 -> split (x' :: acc) tl
        | tl -> (List.rev acc, tl)
      in
      let same, others = split [] rest in
      (k, x :: same) :: go others
  in
  go sorted

let fail fmt = Format.kasprintf failwith fmt
