type row =
  | Cells of string list
  | Sep

type t = {
  headers : string list;
  mutable rows : row list; (* reversed *)
}

let create headers = { headers; rows = [] }

let add_row t cells = t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

(* column widths in displayed characters, not bytes: count UTF-8 sequence
   starts so that symbols like ⊥ or ⊕ don't skew the alignment *)
let display_width s =
  let w = ref 0 in
  String.iter (fun c -> if Char.code c land 0xC0 <> 0x80 then incr w) s;
  !w

let fit n cells =
  let len = List.length cells in
  if len = n then cells
  else if len < n then cells @ List.init (n - len) (fun _ -> "")
  else Util.list_take n cells

let to_string ?title t =
  let n = List.length t.headers in
  let rows = List.rev t.rows in
  let all_cell_rows =
    t.headers :: List.filter_map (function Cells c -> Some (fit n c) | Sep -> None) rows
  in
  let widths = Array.make n 0 in
  List.iter
    (fun cells ->
      List.iteri (fun i c -> widths.(i) <- max widths.(i) (display_width c)) cells)
    all_cell_rows;
  let buf = Buffer.create 1024 in
  let line ch =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) ch);
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let render_cells cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf c;
        Buffer.add_string buf (String.make (widths.(i) - display_width c) ' ');
        Buffer.add_string buf " |")
      (fit n cells);
    Buffer.add_char buf '\n'
  in
  (match title with
   | Some s ->
     Buffer.add_string buf s;
     Buffer.add_char buf '\n'
   | None -> ());
  line '-';
  render_cells t.headers;
  line '=';
  List.iter (function Cells c -> render_cells c | Sep -> line '-') rows;
  line '-';
  Buffer.contents buf

let print ?title t = print_string (to_string ?title t)

let cell_int = string_of_int

let cell_float ?(digits = 2) x = Printf.sprintf "%.*f" digits x

let cell_pct x = Printf.sprintf "%.1f%%" (100. *. x)

let cell_bool b = if b then "yes" else "no"

let cell_ratio num den = Printf.sprintf "%d/%d" num den
