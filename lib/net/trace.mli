(** Execution traces — observability for simulated runs.

    A trace records every message delivery (round, source, destination,
    payload summary) via the engine's [on_deliver] hook, plus the final
    decisions, and renders a per-round timeline.  Intended for the CLI's
    [--trace] flag and for debugging protocol implementations. *)

type t

val create : ?pp_payload:('m -> string) -> unit -> t * (round:int -> src:int -> dst:int -> 'm -> unit)
(** A fresh trace and the hook to pass as [Engine.run ~on_deliver].
    [pp_payload] summarizes messages (default: ["·"]).

    The hook is monomorphic in the message type of its first use; create
    one trace per run. *)

val deliveries : t -> (int * int * int * string) list
(** [(round, src, dst, summary)] in delivery order. *)

val num_deliveries : t -> int

val render : ?max_lines:int -> t -> string
(** Human-readable per-round timeline; long rounds are elided with a
    count.  [max_lines] defaults to 200. *)
