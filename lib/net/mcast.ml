open Rmt_base
open Rmt_graph

(* Domain-sharded synchronous runtime.

   The execution model is Engine.run's — lock-step rounds, sends
   exchanged at round boundaries — but the honest players are
   partitioned across OCaml domains by their Roster rank, and every
   cross-domain handoff goes through per-(source-lane, destination-
   shard) mailboxes flushed at round barriers:

     phase A  every worker drains its own mailbox *column* — the
              batches every lane addressed to its shard last round —
              and normalizes them into per-player inboxes, sorted by
              the global (send-rank, emission-index) order, which is
              exactly the sequential backends' send-ordered FIFO;
     (coordinator: truncation check, delivery accounting, trace hooks
              in canonical destination order, adversary inboxes)
     phase B  every worker steps its shard's automata against those
              inboxes and appends the resulting sends to its own
              mailbox *row*, one batch per destination shard, plus a
              per-(sender, round) byte count for the communication
              accounting;
     (coordinator: adversary actions, decision bookkeeping)

   Determinism discipline (Parsweep's, adapted to a persistent pool):
   every shared slot — a mailbox cell, a state slot, an inbox slot, a
   per-lane counter — is written by exactly one domain per phase and
   only read by others after the phase barrier, so no synchronization
   beyond the barrier itself is needed and the outcome is bit-for-bit
   the sequential engine's, for any domain count and any seed: the
   seed only rotates the rank→shard assignment, and the (rank, index)
   sort erases every trace of which domain did what.

   The barrier is a pair of per-worker atomics (`go`, `done`): the
   coordinator publishes a phase ticket, workers spin (Domain.cpu_relax)
   until they observe it, execute the phase, and publish it back.
   Everything written before the atomic store is visible after the
   corresponding load (OCaml 5 gives SC semantics to atomics), which is
   the only memory-ordering fact the design relies on. *)

let recommended_domains () = max 1 (Domain.recommended_domain_count ())

type accounting = {
  domains_used : int;
  sent_messages : int;
  sent_bytes : int;
  by_sender_round : ((int * int) * int) list;
}

let bytes_of acct ~sender ~round =
  match List.assoc_opt (sender, round) acct.by_sender_round with
  | Some b -> b
  | None -> 0

(* One queued message.  [e_rank]/[e_idx] are the global send order —
   sender's Roster rank, emission index within (sender, round) — the
   sort key that reproduces the sequential inbox order.  [e_drank] is
   the destination's rank (>= num_honest for corrupted players), cached
   so phase A never touches the roster table. *)
type 'm entry = {
  e_rank : int;
  e_idx : int;
  e_src : int;
  e_drank : int;
  e_size : int;
  e_payload : 'm;
}

let entry_order a b =
  let c = Int.compare a.e_rank b.e_rank in
  if c <> 0 then c else Int.compare a.e_idx b.e_idx

let run_accounted ?domains ?max_rounds
    ?(max_messages = Transport.default_max_messages) ?(size_of = fun _ -> 1)
    ?(stop_when = fun _ -> false) ?on_deliver ?(seed = 0) ~graph ~adversary
    automaton =
  let roster =
    Transport.Roster.make ~who:"Mcast.run" ~graph
      ~corrupted:adversary.Transport.corrupted
  in
  let honest = Transport.Roster.honest roster in
  let hr = Transport.Roster.honest_ranked roster in
  let h = Array.length hr in
  let corrupted = Array.of_list (Nodeset.elements (Transport.Roster.corrupted roster)) in
  let c = Array.length corrupted in
  let s =
    let requested =
      match domains with
      | Some d ->
        if d < 1 then invalid_arg "Mcast.run: domains must be >= 1";
        d
      | None -> recommended_domains ()
    in
    max 1 (min requested h)
  in
  let salt = ((seed mod s) + s) mod s in
  let shard_of rank = (rank + salt) mod s in
  let assign =
    let buckets = Array.make s [] in
    for rank = h - 1 downto 0 do
      buckets.(shard_of rank) <- rank :: buckets.(shard_of rank)
    done;
    Array.map Array.of_list buckets
  in
  let max_rounds =
    match max_rounds with
    | Some r -> r
    | None -> Transport.default_max_rounds graph
  in
  let ledger =
    Transport.Ledger.create ~honest ~decision:automaton.Transport.decision
  in
  (* ---- shared cells; every slot single-writer-per-phase (see header) *)
  (* mail.(lane).(j): batch from lane [lane] to dst shard [j].  Lanes
     0..s-1 are the workers; lane s is the coordinator's (round-0
     initialization and adversary sends). *)
  let mail : 'm entry list array array =
    Array.init (s + 1) (fun _ -> Array.make s [])
  in
  (* batches destined to corrupted players, one per lane; only the
     coordinator consumes them *)
  let adv_mail : 'm entry list array = Array.make (s + 1) [] in
  (* per-rank inboxes for the round being delivered (phase A output) *)
  let inboxes : (int * 'm) list array = Array.make h [] in
  let scratch : 'm entry list array = Array.make h [] in
  let delivered_n = Array.make s 0 in
  let delivered_bits = Array.make s 0 in
  let states = Array.make h None in
  let emitted_n = Array.make (s + 1) 0 in
  let acct : (int * int * int) list array = Array.make (s + 1) [] in
  let failures : (int * exn) option array = Array.make s None in
  let total_sent = ref 0 in
  (* [submit] validates a player's sends and appends them to the lane's
     batches.  Runs on the lane's own domain only. *)
  let submit ~lane ~is_honest ~round src sends =
    let rank = Transport.Roster.send_rank roster src in
    let idx = ref 0 and bytes = ref 0 in
    List.iter
      (fun { Transport.dst; payload } ->
        if Graph.mem_edge src dst graph then begin
          let size = size_of payload in
          let drank = Transport.Roster.send_rank roster dst in
          let e =
            {
              e_rank = rank;
              e_idx = !idx;
              e_src = src;
              e_drank = drank;
              e_size = size;
              e_payload = payload;
            }
          in
          incr idx;
          bytes := !bytes + size;
          emitted_n.(lane) <- emitted_n.(lane) + 1;
          if drank < h then begin
            let j = shard_of drank in
            mail.(lane).(j) <- e :: mail.(lane).(j)
          end
          else adv_mail.(lane) <- e :: adv_mail.(lane)
        end
        else if is_honest then
          invalid_arg
            (Printf.sprintf "Mcast.run: honest node %d sent to non-neighbor %d"
               src dst))
      sends;
    if !bytes > 0 then acct.(lane) <- (src, round, !bytes) :: acct.(lane)
  in
  (* phase A (worker [w]): drain mailbox column [w] into sorted inboxes *)
  let phase_a w _round =
    let ranks = assign.(w) in
    Array.iter (fun rank -> scratch.(rank) <- []) ranks;
    let n = ref 0 and bits = ref 0 in
    for lane = 0 to s do
      let col = mail.(lane).(w) in
      mail.(lane).(w) <- [];
      List.iter
        (fun e ->
          incr n;
          bits := !bits + e.e_size;
          scratch.(e.e_drank) <- e :: scratch.(e.e_drank))
        col
    done;
    Array.iter
      (fun rank ->
        inboxes.(rank) <-
          List.sort entry_order scratch.(rank)
          |> List.map (fun e -> (e.e_src, e.e_payload)))
      ranks;
    delivered_n.(w) <- !n;
    delivered_bits.(w) <- !bits
  in
  (* phase B (worker [w]): step the shard's automata *)
  let phase_b w round =
    let current = ref (-1) in
    try
      Array.iter
        (fun rank ->
          current := rank;
          let inbox = inboxes.(rank) in
          if inbox <> [] || round = 1 then begin
            let v = hr.(rank) in
            let st =
              match states.(rank) with Some st -> st | None -> assert false
            in
            let st', sends = automaton.Transport.step v st ~round ~inbox in
            states.(rank) <- Some st';
            submit ~lane:w ~is_honest:true ~round v sends
          end)
        assign.(w)
    with e -> failures.(w) <- Some (!current, e)
  in
  (* ---- the worker pool: one barrier gate pair per worker ---- *)
  (* A gate is an eventcount: readers spin on the atomic (the fast path
     when every domain has its own core), then block on the condition —
     essential when domains outnumber cores, where pure spinning turns
     every barrier into a scheduler timeslice. *)
  let module Gate = struct
    type t = { cell : int Atomic.t; m : Mutex.t; c : Condition.t }

    let make v = { cell = Atomic.make v; m = Mutex.create (); c = Condition.create () }
    let spin_budget = 2000

    let set g v =
      Mutex.lock g.m;
      Atomic.set g.cell v;
      Condition.broadcast g.c;
      Mutex.unlock g.m

    (* wait until the gate value satisfies [until]; returns that value *)
    let await g ~until =
      let rec spin n =
        let v = Atomic.get g.cell in
        if until v then v
        else if n < spin_budget then begin
          Domain.cpu_relax ();
          spin (n + 1)
        end
        else begin
          Mutex.lock g.m;
          let rec block () =
            let v = Atomic.get g.cell in
            if until v then v
            else begin
              Condition.wait g.c g.m;
              block ()
            end
          in
          let v = block () in
          Mutex.unlock g.m;
          v
        end
      in
      spin 0
  end in
  let workers = max 0 (s - 1) in
  let go = Array.init workers (fun _ -> Gate.make 0) in
  let done_ = Array.init workers (fun _ -> Gate.make 0) in
  (* ticket 2r = phase A of round r, 2r+1 = phase B; -1 shuts down *)
  let exec_ticket w t =
    let round = t lsr 1 in
    if t land 1 = 0 then phase_a w round else phase_b w round
  in
  let spawned =
    Array.init workers (fun i ->
        Domain.spawn (fun () ->
            let w = i + 1 in
            let rec loop last =
              let t = Gate.await go.(i) ~until:(fun v -> v <> last) in
              if t <> -1 then begin
                exec_ticket w t;
                Gate.set done_.(i) t;
                loop t
              end
            in
            loop 0))
  in
  let parallel t =
    Array.iter (fun g -> Gate.set g t) go;
    exec_ticket 0 t;
    Array.iter (fun d -> ignore (Gate.await d ~until:(fun v -> v = t))) done_
  in
  let shutdown () =
    Array.iter (fun g -> Gate.set g (-1)) go;
    Array.iter Domain.join spawned
  in
  let raise_first_failure () =
    let first = ref None in
    Array.iteri
      (fun w f ->
        match (f, !first) with
        | Some (rank, _), Some (best, _) when rank >= best -> ()
        | Some (rank, e), _ ->
          first := Some (rank, e);
          failures.(w) <- None
        | None, _ -> ())
      failures;
    match !first with
    | Some (_, e) ->
      Array.fill failures 0 (Array.length failures) None;
      raise e
    | None -> ()
  in
  let run_rounds () =
    (* round 0: initialization, on the coordinator, in node order — the
       exact sequential semantics (init may be stateful) *)
    Nodeset.iter
      (fun v ->
        let st, sends = automaton.Transport.init v in
        states.(Transport.Roster.send_rank roster v) <- Some st;
        Transport.Ledger.register ledger v st;
        submit ~lane:s ~is_honest:true ~round:0 v sends)
      honest;
    Array.iter
      (fun v ->
        submit ~lane:s ~is_honest:false ~round:0 v
          (adversary.Transport.act v ~round:0 ~inbox:[]))
      corrupted;
    Transport.Ledger.note_decisions ledger 0;
    Transport.Ledger.count_round ledger ~delivered:0 ~bits:0;
    let pending = ref (Array.fold_left ( + ) 0 emitted_n) in
    total_sent := !pending;
    let rounds = ref 1 in
    let decision_map v = Transport.Ledger.decision_map ledger v in
    let live () = !pending > 0 || c > 0 in
    let continue = ref (live () && not (stop_when decision_map)) in
    while
      !continue && !rounds <= max_rounds
      && not (Transport.Ledger.truncated ledger)
    do
      if Transport.Ledger.messages ledger + !pending > max_messages then
        Transport.Ledger.truncate ledger
      else begin
        let round = !rounds in
        (* phase A: flush mailboxes into sorted per-player inboxes *)
        parallel (2 * round);
        (* corrupted players' inboxes, assembled on the coordinator *)
        let adv_buckets = Array.make c [] in
        let adv_n = ref 0 and adv_bits = ref 0 in
        for lane = 0 to s do
          let l = adv_mail.(lane) in
          adv_mail.(lane) <- [];
          List.iter
            (fun e ->
              incr adv_n;
              adv_bits := !adv_bits + e.e_size;
              let ci = e.e_drank - h in
              adv_buckets.(ci) <- e :: adv_buckets.(ci))
            l
        done;
        let adv_inboxes =
          Array.map
            (fun l ->
              List.sort entry_order l
              |> List.map (fun e -> (e.e_src, e.e_payload)))
            adv_buckets
        in
        let delivered =
          Array.fold_left ( + ) !adv_n delivered_n
        in
        let bits = Array.fold_left ( + ) !adv_bits delivered_bits in
        pending := !pending - delivered;
        Transport.Ledger.count_round ledger ~delivered ~bits;
        (* trace hooks, in the canonical destination order: honest
           players in node order, then corrupted ones *)
        (match on_deliver with
         | None -> ()
         | Some hook ->
           Array.iteri
             (fun rank dst ->
               List.iter
                 (fun (src, p) -> hook ~round ~src ~dst p)
                 inboxes.(rank))
             hr;
           Array.iteri
             (fun ci dst ->
               List.iter
                 (fun (src, p) -> hook ~round ~src ~dst p)
                 adv_inboxes.(ci))
             corrupted);
        (* phase B: step the shards *)
        Array.fill emitted_n 0 (s + 1) 0;
        parallel ((2 * round) + 1);
        raise_first_failure ();
        Array.iteri
          (fun rank st ->
            match st with
            | Some st -> Transport.Ledger.set_state ledger hr.(rank) st
            | None -> assert false)
          states;
        (* adversary actions, sequential — strategies may be stateful *)
        Array.iteri
          (fun ci v ->
            submit ~lane:s ~is_honest:false ~round v
              (adversary.Transport.act v ~round ~inbox:adv_inboxes.(ci)))
          corrupted;
        let emitted = Array.fold_left ( + ) 0 emitted_n in
        pending := !pending + emitted;
        total_sent := !total_sent + emitted;
        Transport.Ledger.note_decisions ledger round;
        incr rounds;
        continue := live () && not (stop_when decision_map)
      end
    done;
    Transport.Ledger.finalize ledger ~rounds:!rounds
  in
  let outcome =
    match run_rounds () with
    | outcome ->
      shutdown ();
      outcome
    | exception e ->
      shutdown ();
      raise e
  in
  let by_sender_round =
    Array.to_list acct
    |> List.concat_map (List.map (fun (v, r, b) -> ((v, r), b)))
    |> List.sort (fun ((v1, r1), _) ((v2, r2), _) ->
           let cr = Int.compare r1 r2 in
           if cr <> 0 then cr else Int.compare v1 v2)
  in
  ( outcome,
    {
      domains_used = s;
      sent_messages = !total_sent;
      sent_bytes = List.fold_left (fun a (_, b) -> a + b) 0 by_sender_round;
      by_sender_round;
    } )

let run ?domains ?max_rounds ?max_messages ?size_of ?stop_when ?on_deliver
    ?seed ~graph ~adversary automaton =
  fst
    (run_accounted ?domains ?max_rounds ?max_messages ?size_of ?stop_when
       ?on_deliver ?seed ~graph ~adversary automaton)

let backend ~domains : (module Transport.S) =
  if domains < 1 then invalid_arg "Mcast.backend: domains must be >= 1";
  (module struct
    let name = Printf.sprintf "mcast-%d" domains
    let discipline = Transport.Rounds

    let run ?max_rounds ?max_messages ?size_of ?stop_when ?on_deliver ?seed
        ~graph ~adversary automaton =
      run ~domains ?max_rounds ?max_messages ?size_of ?stop_when ?on_deliver
        ?seed ~graph ~adversary automaton
  end)

module Backend : Transport.S = struct
  let name = "mcast"
  let discipline = Transport.Rounds

  let run ?max_rounds ?max_messages ?size_of ?stop_when ?on_deliver ?seed
      ~graph ~adversary automaton =
    run ?max_rounds ?max_messages ?size_of ?stop_when ?on_deliver ?seed ~graph
      ~adversary automaton
end
