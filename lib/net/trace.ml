type t = {
  mutable events : (int * int * int * string) list; (* reversed *)
}

let create ?pp_payload () =
  let t = { events = [] } in
  let summarize =
    match pp_payload with
    | Some f -> f
    | None -> fun _ -> "·"
  in
  ( t,
    fun ~round ~src ~dst payload ->
      t.events <- (round, src, dst, summarize payload) :: t.events )

let deliveries t = List.rev t.events

let num_deliveries t = List.length t.events

let render ?(max_lines = 200) t =
  let buf = Buffer.create 512 in
  let by_round =
    Rmt_base.Util.group_by ~cmp:Int.compare
      (fun (r, _, _, _) -> r)
      (deliveries t)
  in
  let lines = ref 0 in
  List.iter
    (fun (round, events) ->
      if !lines < max_lines then begin
        Buffer.add_string buf (Printf.sprintf "round %d (%d deliveries)\n" round
                                 (List.length events));
        incr lines;
        List.iter
          (fun (_, src, dst, s) ->
            if !lines < max_lines then begin
              Buffer.add_string buf (Printf.sprintf "  %d -> %d  %s\n" src dst s);
              incr lines
            end)
          events
      end)
    by_round;
  if !lines >= max_lines then
    Buffer.add_string buf
      (Printf.sprintf "... elided (%d deliveries total)\n" (num_deliveries t));
  Buffer.contents buf
