open Rmt_base

type 'm t = 'm Engine.strategy

let silent corrupted =
  Engine.{ corrupted; act = (fun _ ~round:_ ~inbox:_ -> []) }

(* Run the honest automaton inside the strategy.  State lives in a table
   keyed by node; [init] fires on the node's first activation (round 0). *)
let mimic_states automaton =
  let states = Hashtbl.create 8 in
  fun v ~round ~inbox ->
    match Hashtbl.find_opt states v with
    | None ->
      let st, sends = automaton.Engine.init v in
      (* round-0 call corresponds to init; later first calls replay init
         then immediately step (the node was silent before) *)
      if round = 0 then begin
        Hashtbl.replace states v st;
        sends
      end
      else begin
        let st', sends' = automaton.Engine.step v st ~round ~inbox in
        Hashtbl.replace states v st';
        sends @ sends'
      end
    | Some _ when round = 0 ->
      (* round 0 with state already present means a second Engine.run is
         reusing this strategy; the stale state would silently replay *)
      invalid_arg
        "Byzantine.mimic_honest: strategy reused across runs (build a \
         fresh strategy per Engine.run)"
    | Some st ->
      let st', sends = automaton.Engine.step v st ~round ~inbox in
      Hashtbl.replace states v st';
      sends

let mimic_honest corrupted automaton =
  Engine.{ corrupted; act = mimic_states automaton }

let crash_after corrupted automaton k =
  let act = mimic_states automaton in
  Engine.
    {
      corrupted;
      act =
        (fun v ~round ~inbox -> if round > k then [] else act v ~round ~inbox);
    }

let drop_randomly rng corrupted automaton p =
  let act = mimic_states automaton in
  Engine.
    {
      corrupted;
      act =
        (fun v ~round ~inbox ->
          List.filter (fun _ -> Prng.float rng 1.0 >= p) (act v ~round ~inbox));
    }

let transform corrupted automaton f =
  let act = mimic_states automaton in
  Engine.
    {
      corrupted;
      act =
        (fun v ~round ~inbox ->
          List.concat_map (fun s -> f v ~round s) (act v ~round ~inbox));
    }

let per_node ~default overrides =
  let extra = Nodeset.of_list (List.map fst overrides) in
  Engine.
    {
      corrupted = Nodeset.union default.corrupted extra;
      act =
        (fun v ~round ~inbox ->
          match List.assoc_opt v overrides with
          | Some act -> act ~round ~inbox
          | None -> default.act v ~round ~inbox);
    }

let of_fun corrupted act = Engine.{ corrupted; act }
