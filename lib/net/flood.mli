(** Trail-carrying flooding — the propagation backbone of path-based
    protocols (PPA, RMT-PKA).

    A message carries its propagation trail [p] (originator first).  The
    relay rule of Protocol 1 applies to any payload: on reception of
    [(a, p)] from [u], a relay [v] discards the message if [v ∈ p] or
    [tail p ≠ u], and otherwise forwards [(a, p ‖ v)] to all its
    neighbors.  The tail check guarantees that any trail that does not
    reflect the true propagation contains at least one corrupted node. *)

open Rmt_graph

type 'p msg = {
  payload : 'p;
  trail : Paths.path;
}

val trail_ok : self:int -> src:int -> Paths.path -> bool
(** The receiving-side validity check: [self ∉ p], [tail p = src], and
    [p] is simple. *)

val broadcast : Graph.t -> int -> 'p msg -> 'p msg Engine.send list
(** Send a message to every neighbor. *)

val originate : Graph.t -> int -> 'p -> 'p msg Engine.send list
(** [originate g v a] broadcasts [(a, [v])]. *)

val relay :
  Graph.t -> int -> inbox:(int * 'p msg) list -> 'p msg Engine.send list
(** Apply the relay rule to a whole inbox. *)
