open Rmt_base
open Rmt_graph

(* The shared vocabulary lives in Transport (the explicit backend
   contract); Engine re-exports it under the historical names so the
   rest of the repository keeps compiling unchanged. *)

type 'm send = 'm Transport.send = { dst : int; payload : 'm }

type ('s, 'm) automaton = ('s, 'm) Transport.automaton = {
  init : int -> 's * 'm send list;
  step : int -> 's -> round:int -> inbox:(int * 'm) list -> 's * 'm send list;
  decision : 's -> int option;
}

type 'm strategy = 'm Transport.strategy = {
  corrupted : Nodeset.t;
  act : int -> round:int -> inbox:(int * 'm) list -> 'm send list;
}

let no_adversary = Transport.no_adversary

type stats = Transport.stats = {
  rounds : int;
  messages : int;
  bits : int;
  per_round : int array;
  truncated : bool;
}

type ('s, 'm) outcome = ('s, 'm) Transport.outcome = {
  stats : stats;
  decisions : (int * int) list;
  decision_rounds : (int * int) list;
  states : (int * 's) list;
}

let decision_of outcome v = List.assoc_opt v outcome.decisions

let run ?max_rounds ?(max_messages = Transport.default_max_messages)
    ?(size_of = fun _ -> 1) ?(stop_when = fun _ -> false)
    ?(on_deliver = Transport.no_deliver_hook) ~graph ~adversary automaton =
  let roster =
    Transport.Roster.make ~who:"Engine.run" ~graph
      ~corrupted:adversary.corrupted
  in
  let honest = Transport.Roster.honest roster in
  let corrupted = Transport.Roster.corrupted roster in
  let max_rounds =
    match max_rounds with
    | Some r -> r
    | None -> Transport.default_max_rounds graph
  in
  let ledger = Transport.Ledger.create ~honest ~decision:automaton.decision in
  (* in-flight messages: (src, dst, payload), to deliver next round *)
  let in_flight : (int * int * 'm) list ref = ref [] in
  let enqueue ~is_honest src sends =
    List.iter
      (fun { dst; payload } ->
        if Graph.mem_edge src dst graph then
          in_flight := (src, dst, payload) :: !in_flight
        else if is_honest then
          invalid_arg
            (Printf.sprintf "Engine.run: honest node %d sent to non-neighbor %d"
               src dst))
      sends
  in
  (* round 0: initialization *)
  Nodeset.iter
    (fun v ->
      let st, sends = automaton.init v in
      Transport.Ledger.register ledger v st;
      enqueue ~is_honest:true v sends)
    honest;
  Nodeset.iter
    (fun v -> enqueue ~is_honest:false v (adversary.act v ~round:0 ~inbox:[]))
    corrupted;
  Transport.Ledger.note_decisions ledger 0;
  Transport.Ledger.count_round ledger ~delivered:0 ~bits:0;
  let rounds = ref 1 in
  let decision_map v = Transport.Ledger.decision_map ledger v in
  (* With an active adversary we cannot infer quiescence from an empty
     in-flight queue: a corrupted node may stay silent and inject messages
     later.  In that case run until [stop_when] or [max_rounds]. *)
  let live () = !in_flight <> [] || not (Nodeset.is_empty corrupted) in
  let continue = ref (live () && not (stop_when decision_map)) in
  while
    !continue && !rounds <= max_rounds
    && not (Transport.Ledger.truncated ledger)
  do
    if Transport.Ledger.messages ledger + List.length !in_flight > max_messages
    then Transport.Ledger.truncate ledger
    else begin
      let round = !rounds in
      let deliveries = !in_flight in
      in_flight := [];
      let delivered = List.length deliveries in
      let bits =
        List.fold_left (fun acc (_, _, p) -> acc + size_of p) 0 deliveries
      in
      Transport.Ledger.count_round ledger ~delivered ~bits;
      let inbox_of =
        let tbl : (int, (int * 'm) list) Hashtbl.t = Hashtbl.create 16 in
        (* deliveries were accumulated in reverse send order; restore it so
           inboxes are in a deterministic, send-ordered sequence *)
        List.iter
          (fun (src, dst, p) ->
            let cur = try Hashtbl.find tbl dst with Not_found -> [] in
            Hashtbl.replace tbl dst ((src, p) :: cur))
          deliveries;
        fun v -> try Hashtbl.find tbl v with Not_found -> []
      in
      Nodeset.iter
        (fun v ->
          let inbox = inbox_of v in
          List.iter (fun (src, p) -> on_deliver ~round ~src ~dst:v p) inbox;
          if inbox <> [] || round = 1 then begin
            let st = Transport.Ledger.state ledger v in
            let st', sends = automaton.step v st ~round ~inbox in
            Transport.Ledger.set_state ledger v st';
            enqueue ~is_honest:true v sends
          end)
        honest;
      Nodeset.iter
        (fun v ->
          let inbox = inbox_of v in
          List.iter (fun (src, p) -> on_deliver ~round ~src ~dst:v p) inbox;
          enqueue ~is_honest:false v (adversary.act v ~round ~inbox))
        corrupted;
      Transport.Ledger.note_decisions ledger round;
      incr rounds;
      continue := live () && not (stop_when decision_map)
    end
  done;
  Transport.Ledger.finalize ledger ~rounds:!rounds

(* The contract instance: the engine ignores [seed] — it makes no
   internal choices. *)
module Backend : Transport.S = struct
  let name = "engine"
  let discipline = Transport.Rounds

  let run ?max_rounds ?max_messages ?size_of ?stop_when ?on_deliver ?seed:_
      ~graph ~adversary automaton =
    run ?max_rounds ?max_messages ?size_of ?stop_when ?on_deliver ~graph
      ~adversary automaton
end
