open Rmt_base
open Rmt_graph

type 'm send = { dst : int; payload : 'm }

type ('s, 'm) automaton = {
  init : int -> 's * 'm send list;
  step :
    int -> 's -> round:int -> inbox:(int * 'm) list -> 's * 'm send list;
  decision : 's -> int option;
}

type 'm strategy = {
  corrupted : Nodeset.t;
  act : int -> round:int -> inbox:(int * 'm) list -> 'm send list;
}

let no_adversary =
  { corrupted = Nodeset.empty; act = (fun _ ~round:_ ~inbox:_ -> []) }

type stats = {
  rounds : int;
  messages : int;
  bits : int;
  per_round : int array;
  truncated : bool;
}

type ('s, 'm) outcome = {
  stats : stats;
  decisions : (int * int) list;
  decision_rounds : (int * int) list;
  states : (int * 's) list;
}

let decision_of outcome v = List.assoc_opt v outcome.decisions

let run ?max_rounds ?(max_messages = 2_000_000) ?(size_of = fun _ -> 1)
    ?(stop_when = fun _ -> false)
    ?(on_deliver = fun ~round:_ ~src:_ ~dst:_ _ -> ()) ~graph ~adversary
    automaton =
  let nodes = Graph.nodes graph in
  if not (Nodeset.subset adversary.corrupted nodes) then
    invalid_arg "Engine.run: corrupted set outside the graph";
  let honest = Nodeset.diff nodes adversary.corrupted in
  let max_rounds =
    match max_rounds with
    | Some r -> r
    | None -> (4 * Graph.num_nodes graph) + 8
  in
  let states : (int, 's) Hashtbl.t = Hashtbl.create 16 in
  let decision_rounds : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let messages = ref 0 in
  let bits = ref 0 in
  let per_round = ref [] in
  (* in-flight messages: (src, dst, payload), to deliver next round *)
  let in_flight : (int * int * 'm) list ref = ref [] in
  let note_decisions round =
    Nodeset.iter
      (fun v ->
        if not (Hashtbl.mem decision_rounds v) then
          match automaton.decision (Hashtbl.find states v) with
          | Some _ -> Hashtbl.replace decision_rounds v round
          | None -> ())
      honest
  in
  let enqueue ~is_honest src sends =
    List.iter
      (fun { dst; payload } ->
        if Graph.mem_edge src dst graph then
          in_flight := (src, dst, payload) :: !in_flight
        else if is_honest then
          invalid_arg
            (Printf.sprintf "Engine.run: honest node %d sent to non-neighbor %d"
               src dst))
      sends
  in
  (* round 0: initialization *)
  Nodeset.iter
    (fun v ->
      let st, sends = automaton.init v in
      Hashtbl.replace states v st;
      enqueue ~is_honest:true v sends)
    honest;
  Nodeset.iter
    (fun v -> enqueue ~is_honest:false v (adversary.act v ~round:0 ~inbox:[]))
    adversary.corrupted;
  note_decisions 0;
  per_round := 0 :: !per_round;
  let rounds = ref 1 in
  let decision_map v =
    match Hashtbl.find_opt states v with
    | None -> None
    | Some st -> automaton.decision st
  in
  (* With an active adversary we cannot infer quiescence from an empty
     in-flight queue: a corrupted node may stay silent and inject messages
     later.  In that case run until [stop_when] or [max_rounds]. *)
  let live () =
    !in_flight <> [] || not (Nodeset.is_empty adversary.corrupted)
  in
  let truncated = ref false in
  let continue = ref (live () && not (stop_when decision_map)) in
  while !continue && !rounds <= max_rounds && not !truncated do
    if !messages + List.length !in_flight > max_messages then
      truncated := true
    else begin
    let round = !rounds in
    let deliveries = !in_flight in
    in_flight := [];
    let delivered = List.length deliveries in
    messages := !messages + delivered;
    List.iter (fun (_, _, p) -> bits := !bits + size_of p) deliveries;
    per_round := delivered :: !per_round;
    let inbox_of =
      let tbl : (int, (int * 'm) list) Hashtbl.t = Hashtbl.create 16 in
      (* deliveries were accumulated in reverse send order; restore it so
         inboxes are in a deterministic, send-ordered sequence *)
      List.iter
        (fun (src, dst, p) ->
          let cur = try Hashtbl.find tbl dst with Not_found -> [] in
          Hashtbl.replace tbl dst ((src, p) :: cur))
        deliveries;
      fun v -> try Hashtbl.find tbl v with Not_found -> []
    in
    Nodeset.iter
      (fun v ->
        let inbox = inbox_of v in
        List.iter
          (fun (src, p) -> on_deliver ~round ~src ~dst:v p)
          inbox;
        if inbox <> [] || round = 1 then begin
          let st = Hashtbl.find states v in
          let st', sends = automaton.step v st ~round ~inbox in
          Hashtbl.replace states v st';
          enqueue ~is_honest:true v sends
        end)
      honest;
    Nodeset.iter
      (fun v ->
        let inbox = inbox_of v in
        List.iter (fun (src, p) -> on_deliver ~round ~src ~dst:v p) inbox;
        enqueue ~is_honest:false v (adversary.act v ~round ~inbox))
      adversary.corrupted;
      note_decisions round;
      incr rounds;
      continue := live () && not (stop_when decision_map)
    end
  done;
  let decisions =
    Nodeset.fold
      (fun v acc ->
        match decision_map v with Some x -> (v, x) :: acc | None -> acc)
      honest []
    |> List.rev
  in
  {
    stats =
      {
        rounds = !rounds;
        messages = !messages;
        bits = !bits;
        per_round = Array.of_list (List.rev !per_round);
        truncated = !truncated;
      };
    decisions;
    decision_rounds =
      Hashtbl.fold (fun v r acc -> (v, r) :: acc) decision_rounds []
      |> List.sort (fun (v1, r1) (v2, r2) ->
             let c = Int.compare v1 v2 in
             if c <> 0 then c else Int.compare r1 r2);
    states =
      Nodeset.fold (fun v acc -> (v, Hashtbl.find states v) :: acc) honest []
      |> List.rev;
  }
