open Rmt_base
open Rmt_graph

type 'p msg = {
  payload : 'p;
  trail : Paths.path;
}

let rec tail_of = function
  | [] -> None
  | [ v ] -> Some v
  | _ :: rest -> tail_of rest

let trail_ok ~self ~src trail =
  (not (List.mem self trail))
  && tail_of trail = Some src
  && Paths.is_simple trail

let broadcast g v m =
  Nodeset.fold
    (fun u acc -> Engine.{ dst = u; payload = m } :: acc)
    (Graph.neighbors v g)
    []

let originate g v a = broadcast g v { payload = a; trail = [ v ] }

let relay g self ~inbox =
  List.concat_map
    (fun (src, m) ->
      if trail_ok ~self ~src m.trail then
        broadcast g self { m with trail = m.trail @ [ self ] }
      else [])
    inbox
