(** Generic Byzantine strategy combinators.

    Protocol-specific attacks (value flipping inside RMT messages, forged
    propagation trails, fictitious topology) are built next to the
    protocols; this module provides the protocol-agnostic scaffolding:
    silence, crash, honest mimicry, probabilistic dropping, per-node
    dispatch. *)

open Rmt_base

type 'm t = 'm Engine.strategy

val silent : Nodeset.t -> 'm t
(** Corrupted players never send anything. *)

val mimic_honest : Nodeset.t -> ('s, 'm) Engine.automaton -> 'm t
(** Corrupted players run the honest protocol faithfully (the weakest
    admissible behavior; useful as a baseline and for two-run
    constructions where one side is honest-in-the-other-run).

    {b Single-run value:} the mimicked protocol state lives inside the
    strategy, so a value built with this (or any combinator derived from
    it — {!crash_after}, {!drop_randomly}, {!transform}) must be used for
    exactly one {!Engine.run}; build a fresh strategy per run.  Reuse is
    detected — a second run's round 0 finding leftover state — and
    @raise Invalid_argument rather than silently replaying stale
    protocol state from the previous run. *)

val crash_after : Nodeset.t -> ('s, 'm) Engine.automaton -> int -> 'm t
(** Honest behavior through round [k], silence afterwards. *)

val drop_randomly :
  Prng.t -> Nodeset.t -> ('s, 'm) Engine.automaton -> float -> 'm t
(** Honest behavior, but each outgoing message is dropped independently
    with the given probability. *)

val transform :
  Nodeset.t -> ('s, 'm) Engine.automaton ->
  (int -> round:int -> 'm Engine.send -> 'm Engine.send list) -> 'm t
(** Honest behavior with every outgoing send rewritten by the supplied
    function (which may drop, alter or multiply messages). *)

val per_node :
  default:'m t -> (int * (round:int -> inbox:(int * 'm) list -> 'm Engine.send list)) list -> 'm t
(** Dispatches to a bespoke behavior per corrupted node, falling back to
    [default] for the rest.  The corrupted set is the union. *)

val of_fun :
  Nodeset.t -> (int -> round:int -> inbox:(int * 'm) list -> 'm Engine.send list) -> 'm t
