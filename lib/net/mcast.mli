(** Domain-sharded synchronous runtime — the third {!Transport.S}
    backend.

    Same execution model as {!Engine.run} (lock-step rounds, sends
    delivered at the next round boundary), but honest players are
    partitioned across OCaml domains and every round runs as two
    parallel phases separated by spin barriers:

    - {b phase A} — each worker drains its mailbox {e column} (the
      batches every lane addressed to its shard last round) and sorts
      each player's inbox by the global (send-rank, emission-index)
      order — exactly the sequential engine's send-ordered FIFO;
    - {b phase B} — each worker steps its shard's automata and appends
      the resulting sends to its mailbox {e row}, one batch per
      destination shard.

    Round-0 initialization, trace hooks, adversary actions, and all
    decision/statistics bookkeeping run sequentially on the
    coordinator between barriers, in the engine's canonical order.

    {b Determinism}: outcomes — stats, decisions, decision rounds,
    states, the [on_deliver] trace — are bit-for-bit {!Engine.run}'s,
    for {e any} domain count and {e any} seed.  The seed only rotates
    the rank-to-shard assignment (a scheduling choice); the
    (rank, index) sort erases every trace of which domain delivered
    what.  The conformance suite in [test/net] pins both properties.

    {b Thread-safety requirements}: the automaton's [step] must touch
    only its own player's state (true of every protocol in this
    repository — all mutable protocol state lives in the per-player
    record built by [init]); [size_of] must be pure.  [init], the
    adversary, [stop_when], and [on_deliver] run on the coordinator
    only and may be stateful. *)

open Rmt_graph

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()], clamped to at least 1. *)

type accounting = {
  domains_used : int;  (** worker count after clamping to honest players *)
  sent_messages : int;  (** accepted (channel-valid) sends over the run *)
  sent_bytes : int;  (** sum of [size_of] over accepted sends *)
  by_sender_round : ((int * int) * int) list;
      (** bytes sent per (sender, round), sorted by round then sender;
          senders with no accepted sends in a round are absent *)
}

val bytes_of : accounting -> sender:int -> round:int -> int
(** Bytes charged to [sender] in [round]; 0 when absent. *)

val run :
  ?domains:int ->
  ?max_rounds:int ->
  ?max_messages:int ->
  ?size_of:('m -> int) ->
  ?stop_when:((int -> int option) -> bool) ->
  ?on_deliver:(round:int -> src:int -> dst:int -> 'm -> unit) ->
  ?seed:int ->
  graph:Graph.t ->
  adversary:'m Engine.strategy ->
  ('s, 'm) Engine.automaton ->
  ('s, 'm) Engine.outcome
(** See {!Engine.run} for the shared parameters.  [domains] defaults to
    {!recommended_domains}[ ()] and is clamped to the number of honest
    players; [seed] (default 0) rotates the shard assignment.  Raises
    [Invalid_argument] exactly where the engine does (corrupted set
    outside the graph, honest send to a non-neighbor) and when
    [domains < 1].  When several shards fail in the same round, the
    failure of the lowest-ranked player is re-raised — the one the
    sequential engine would have hit first. *)

val run_accounted :
  ?domains:int ->
  ?max_rounds:int ->
  ?max_messages:int ->
  ?size_of:('m -> int) ->
  ?stop_when:((int -> int option) -> bool) ->
  ?on_deliver:(round:int -> src:int -> dst:int -> 'm -> unit) ->
  ?seed:int ->
  graph:Graph.t ->
  adversary:'m Engine.strategy ->
  ('s, 'm) Engine.automaton ->
  ('s, 'm) Engine.outcome * accounting
(** {!run} plus the per-(sender, round) communication accounting the
    workers collected along the way. *)

val backend : domains:int -> (module Transport.S)
(** The runtime pinned to a fixed domain count, as a first-class
    backend ([name = "mcast-<domains>"]) — the conformance suite's way
    of comparing domain counts.  @raise Invalid_argument when
    [domains < 1]. *)

module Backend : Transport.S
(** The runtime at {!recommended_domains} ([name = "mcast"], per-round
    discipline). *)
