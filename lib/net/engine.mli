(** Synchronous message-passing engine.

    The model of the paper: a synchronous network of players connected by
    undirected {e authenticated} channels.  A round consists of every
    player sending messages to neighbors; messages sent in round [r] are
    delivered at the start of round [r+1], tagged with the true sender
    (authentication).  A Byzantine adversary controls a fixed corruption
    set and replaces those players' behavior arbitrarily — but it cannot
    forge the sender id on a channel and cannot send over non-existent
    channels.

    The engine is polymorphic in the message type ['m] and the per-node
    protocol state ['s].

    The engine is the reference implementation of the explicit
    {!Transport.S} backend contract; the shared vocabulary below is
    defined in {!Transport} and re-exported here under its historical
    names. *)

open Rmt_base
open Rmt_graph

type 'm send = 'm Transport.send = { dst : int; payload : 'm }

type ('s, 'm) automaton = ('s, 'm) Transport.automaton = {
  init : int -> 's * 'm send list;
      (** [init v]: initial state and round-0 sends of player [v]. *)
  step :
    int -> 's -> round:int -> inbox:(int * 'm) list -> 's * 'm send list;
      (** [step v st ~round ~inbox]: one round of player [v]; the inbox
          holds [(sender, message)] pairs delivered this round. *)
  decision : 's -> int option;
      (** Decided value, if any.  Must be stable: once [Some x], a correct
          protocol never changes it. *)
}

type 'm strategy = 'm Transport.strategy = {
  corrupted : Nodeset.t;
  act : int -> round:int -> inbox:(int * 'm) list -> 'm send list;
      (** Behavior of a corrupted player.  Round 0 is the initial round
          (empty inbox).  Sends to non-neighbors are dropped silently —
          channels are fixed by the topology. *)
}

val no_adversary : 'm strategy

type stats = Transport.stats = {
  rounds : int;  (** rounds executed (including round 0) *)
  messages : int;  (** messages delivered in total *)
  bits : int;  (** sum of [size_of] over delivered messages *)
  per_round : int array;  (** deliveries per round *)
  truncated : bool;
      (** true when the run stopped because [max_messages] was exceeded —
          path-flooding protocols are exponential in the worst case, and a
          truncated run must never be mistaken for a completed one *)
}

type ('s, 'm) outcome = ('s, 'm) Transport.outcome = {
  stats : stats;
  decisions : (int * int) list;  (** honest players' decided values *)
  decision_rounds : (int * int) list;
      (** round at which each deciding player first decided *)
  states : (int * 's) list;  (** final states of honest players *)
}

val decision_of : ('s, 'm) outcome -> int -> int option
(** Decided value of a given (honest) player in the outcome. *)

val run :
  ?max_rounds:int ->
  ?max_messages:int ->
  ?size_of:('m -> int) ->
  ?stop_when:((int -> int option) -> bool) ->
  ?on_deliver:(round:int -> src:int -> dst:int -> 'm -> unit) ->
  graph:Graph.t ->
  adversary:'m strategy ->
  ('s, 'm) automaton ->
  ('s, 'm) outcome
(** Executes rounds until [stop_when] (given the current decision map)
    returns true, [max_rounds] (default [4 * num_nodes + 8]) elapses, or —
    only when there is no corrupted node, since a Byzantine node may
    inject messages after arbitrary silence — the network is quiescent
    (no messages in flight).

    Honest sends to non-neighbors raise [Invalid_argument] — a protocol
    bug; adversarial ones are dropped.  @raise Invalid_argument also when
    a corrupted node id is not a node of the graph. *)

module Backend : Transport.S
(** The engine as a {!Transport.S} backend ([name = "engine"],
    per-round discipline).  [seed] is ignored: the engine makes no
    internal choices. *)
