(** The explicit transport contract shared by every execution backend.

    The paper's protocols are round-based automata whose correctness is
    independent of the delivery substrate.  This module pins the
    substrate-independent vocabulary — automata, adversary strategies,
    outcomes — and the {!S} interface that every backend implements:

    - {!Engine} (this library): synchronous rounds, the paper's model;
    - [Rmt_sim.Sim]: discrete events under an adversarial scheduler,
      whose [Policy.sync] instance reproduces the engine bit for bit;
    - {!Mcast}: Domain-sharded synchronous rounds for large networks.

    The contract, checked for all backends by the functorized
    conformance suite in [test/net/test_transport.ml]:

    - {b Node registration}: the player set is the graph's node set;
      the corrupted set must be a subset of it ([Invalid_argument]
      otherwise).  {!Roster} is the shared registration step.
    - {b Delivery}: a message sent in round [r] is delivered in round
      [r+1] (per-round backends), or at the round its scheduler
      chooses (per-event backends); each inbox is ordered by the
      global send order (honest players in node order, then corrupted
      ones, each player's sends in emission order).
    - {b Send batching}: sends are buffered during a round and
      exchanged only at the round boundary; no mid-round delivery.
    - {b Trace hooks}: [on_deliver] fires once per delivered message,
      grouped by destination in node order (honest first), before that
      destination's [step] observes the message.
    - {b Deterministic seeding}: a backend consumes randomness only
      through the explicit [seed] argument, outcomes are a pure
      function of (automaton, adversary, graph, seed) — and decisions,
      stats and trace must be {e independent} of the seed, which may
      only steer internal scheduling choices (e.g. {!Mcast}'s shard
      assignment). *)

open Rmt_base
open Rmt_graph

(** {1 Shared vocabulary}

    These are the canonical definitions; {!Engine} re-exports them
    under its historical name so existing code keeps compiling. *)

type 'm send = { dst : int; payload : 'm }

type ('s, 'm) automaton = {
  init : int -> 's * 'm send list;
  step : int -> 's -> round:int -> inbox:(int * 'm) list -> 's * 'm send list;
  decision : 's -> int option;
}

type 'm strategy = {
  corrupted : Nodeset.t;
  act : int -> round:int -> inbox:(int * 'm) list -> 'm send list;
}

val no_adversary : 'm strategy

type stats = {
  rounds : int;
  messages : int;
  bits : int;
  per_round : int array;
  truncated : bool;
}

type ('s, 'm) outcome = {
  stats : stats;
  decisions : (int * int) list;
  decision_rounds : (int * int) list;
  states : (int * 's) list;
}

type 'm deliver_hook = round:int -> src:int -> dst:int -> 'm -> unit
(** The trace hook; see {!Rmt_net.Trace}. *)

val no_deliver_hook : 'm deliver_hook

type discipline =
  | Rounds  (** lock-step rounds; sent at [r] ⇒ delivered at [r+1] *)
  | Events  (** discrete events; delivery timing set by a scheduler *)

(** {1 The backend interface} *)

module type S = sig
  val name : string
  (** Stable identifier used in benchmarks and conformance reports. *)

  val discipline : discipline

  val run :
    ?max_rounds:int ->
    ?max_messages:int ->
    ?size_of:('m -> int) ->
    ?stop_when:((int -> int option) -> bool) ->
    ?on_deliver:'m deliver_hook ->
    ?seed:int ->
    graph:Graph.t ->
    adversary:'m strategy ->
    ('s, 'm) automaton ->
    ('s, 'm) outcome
  (** {!Rmt_net.Engine.run}'s interface plus [seed].  Backends without
      internal choices ignore [seed]; backends with them (Mcast's shard
      assignment) must keep the outcome — decisions, stats, trace —
      byte-identical across seeds. *)
end

val default_max_rounds : Graph.t -> int
(** [(4 * num_nodes) + 8] — every backend's default round budget. *)

val default_max_messages : int

(** {1 Shared building blocks} *)

(** Node registration: validates the corrupted set, splits the player
    set and fixes the global send-rank order all backends share. *)
module Roster : sig
  type t

  val make : who:string -> graph:Graph.t -> corrupted:Nodeset.t -> t
  (** @raise Invalid_argument ([who] prefixes the message) when the
      corrupted set is not a subset of the graph's nodes. *)

  val honest : t -> Nodeset.t
  val corrupted : t -> Nodeset.t

  val honest_ranked : t -> int array
  (** Honest players in node order; the array index is the player's
      dense rank (Mcast shards by it). *)

  val num_honest : t -> int

  val send_rank : t -> int -> int
  (** Position of a player in the global send order: honest players in
      node order first, then corrupted ones.  Sorting a merged mailbox
      by [(send_rank src, per-sender emission index)] reproduces the
      sequential backends' inbox order exactly. *)
end

(** Per-run bookkeeping shared by all backends: protocol states,
    first-decision rounds, message/bit/round counters, and the
    finalization into an {!outcome}.  Keeping it here means the
    decision semantics (when is a decision "noted", how are outcomes
    ordered) cannot drift between backends. *)
module Ledger : sig
  type 's t

  val create : honest:Nodeset.t -> decision:('s -> int option) -> 's t
  val register : 's t -> int -> 's -> unit
  val state : 's t -> int -> 's
  val set_state : 's t -> int -> 's -> unit

  val decision_map : 's t -> int -> int option
  (** [None] for unregistered (corrupted) players. *)

  val note_decisions : 's t -> int -> unit
  (** Record [round] as the first-decision round of every honest player
      that has decided and was not already noted. *)

  val count_round : 's t -> delivered:int -> bits:int -> unit
  val messages : 's t -> int
  val truncate : 's t -> unit
  val truncated : 's t -> bool

  val finalize : 's t -> rounds:int -> ('s, 'm) outcome
end
