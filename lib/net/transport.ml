(* The explicit transport contract.

   Engine.run (synchronous rounds), Sim.run (discrete events) and
   Mcast.run (Domain-sharded rounds) all execute the same protocol
   automata; until this module existed their shared semantics — node
   registration, round-0 initialization, the activation rule, decision
   bookkeeping, truncation accounting — lived as three hand-synchronized
   copies kept equal by the sync-equivalence tests.  Transport names the
   contract once: the [S] module type is the interface every backend
   implements (checked by the functorized conformance suite in
   test/net/test_transport.ml), and [Roster]/[Ledger] are the shared
   bookkeeping pieces the backends are built from, so the semantics that
   must not drift are written exactly once. *)

open Rmt_base
open Rmt_graph

(* ------------------------------------------------------------------ *)
(* The vocabulary shared by every backend                              *)
(* ------------------------------------------------------------------ *)

type 'm send = { dst : int; payload : 'm }

type ('s, 'm) automaton = {
  init : int -> 's * 'm send list;
  step : int -> 's -> round:int -> inbox:(int * 'm) list -> 's * 'm send list;
  decision : 's -> int option;
}

type 'm strategy = {
  corrupted : Nodeset.t;
  act : int -> round:int -> inbox:(int * 'm) list -> 'm send list;
}

let no_adversary =
  { corrupted = Nodeset.empty; act = (fun _ ~round:_ ~inbox:_ -> []) }

type stats = {
  rounds : int;
  messages : int;
  bits : int;
  per_round : int array;
  truncated : bool;
}

type ('s, 'm) outcome = {
  stats : stats;
  decisions : (int * int) list;
  decision_rounds : (int * int) list;
  states : (int * 's) list;
}

type 'm deliver_hook = round:int -> src:int -> dst:int -> 'm -> unit

let no_deliver_hook : 'm deliver_hook = fun ~round:_ ~src:_ ~dst:_ _ -> ()

type discipline = Rounds | Events

(* ------------------------------------------------------------------ *)
(* The backend interface                                               *)
(* ------------------------------------------------------------------ *)

module type S = sig
  val name : string
  val discipline : discipline

  val run :
    ?max_rounds:int ->
    ?max_messages:int ->
    ?size_of:('m -> int) ->
    ?stop_when:((int -> int option) -> bool) ->
    ?on_deliver:'m deliver_hook ->
    ?seed:int ->
    graph:Graph.t ->
    adversary:'m strategy ->
    ('s, 'm) automaton ->
    ('s, 'm) outcome
end

let default_max_rounds graph = (4 * Graph.num_nodes graph) + 8
let default_max_messages = 2_000_000

(* ------------------------------------------------------------------ *)
(* Roster — node registration                                          *)
(* ------------------------------------------------------------------ *)

module Roster = struct
  type t = {
    graph : Graph.t;
    honest : Nodeset.t;
    corrupted : Nodeset.t;
    honest_ranked : int array;
    rank : (int, int) Hashtbl.t;
  }

  let make ~who ~graph ~corrupted =
    let nodes = Graph.nodes graph in
    if not (Nodeset.subset corrupted nodes) then
      invalid_arg (who ^ ": corrupted set outside the graph");
    let honest = Nodeset.diff nodes corrupted in
    let honest_ranked = Array.of_list (Nodeset.elements honest) in
    let rank = Hashtbl.create (Array.length honest_ranked) in
    (* send ranks follow the backends' iteration order: honest players
       in node order first, then corrupted ones — the key Mcast sorts
       merged mailboxes by to reproduce the sequential send order *)
    Array.iteri (fun i v -> Hashtbl.replace rank v i) honest_ranked;
    let next = ref (Array.length honest_ranked) in
    Nodeset.iter
      (fun v ->
        Hashtbl.replace rank v !next;
        incr next)
      corrupted;
    { graph; honest; corrupted; honest_ranked; rank }

  let honest t = t.honest
  let corrupted t = t.corrupted
  let honest_ranked t = t.honest_ranked
  let num_honest t = Array.length t.honest_ranked

  let send_rank t v =
    match Hashtbl.find_opt t.rank v with
    | Some r -> r
    | None -> invalid_arg "Roster.send_rank: unregistered node"
end

(* ------------------------------------------------------------------ *)
(* Ledger — per-run decision and statistics bookkeeping                *)
(* ------------------------------------------------------------------ *)

module Ledger = struct
  type 's t = {
    states : (int, 's) Hashtbl.t;
    decision_rounds : (int, int) Hashtbl.t;
    mutable messages : int;
    mutable bits : int;
    mutable per_round_rev : int list;
    mutable truncated : bool;
    honest : Nodeset.t;
    decision : 's -> int option;
  }

  let create ~honest ~decision =
    {
      states = Hashtbl.create 16;
      decision_rounds = Hashtbl.create 16;
      messages = 0;
      bits = 0;
      per_round_rev = [];
      truncated = false;
      honest;
      decision;
    }

  let register t v st = Hashtbl.replace t.states v st
  let state t v = Hashtbl.find t.states v
  let set_state = register

  let decision_map t v =
    match Hashtbl.find_opt t.states v with
    | None -> None
    | Some st -> t.decision st

  let note_decisions t round =
    Nodeset.iter
      (fun v ->
        if not (Hashtbl.mem t.decision_rounds v) then
          match t.decision (state t v) with
          | Some _ -> Hashtbl.replace t.decision_rounds v round
          | None -> ())
      t.honest

  let count_round t ~delivered ~bits =
    t.messages <- t.messages + delivered;
    t.bits <- t.bits + bits;
    t.per_round_rev <- delivered :: t.per_round_rev

  let messages t = t.messages
  let truncate t = t.truncated <- true
  let truncated t = t.truncated

  let finalize t ~rounds =
    let decisions =
      Nodeset.fold
        (fun v acc ->
          match decision_map t v with Some x -> (v, x) :: acc | None -> acc)
        t.honest []
      |> List.rev
    in
    {
      stats =
        {
          rounds;
          messages = t.messages;
          bits = t.bits;
          per_round = Array.of_list (List.rev t.per_round_rev);
          truncated = t.truncated;
        };
      decisions;
      decision_rounds =
        Hashtbl.fold (fun v r acc -> (v, r) :: acc) t.decision_rounds []
        |> List.sort (fun (v1, r1) (v2, r2) ->
               let c = Int.compare v1 v2 in
               if c <> 0 then c else Int.compare r1 r2);
      states =
        Nodeset.fold (fun v acc -> (v, state t v) :: acc) t.honest []
        |> List.rev;
    }
end
