(** Compiling and sampling attack programs.

    [compile_*] turn a {!Program.t} into an executable strategy against a
    concrete protocol.  Compilation is deterministic: all randomness
    (dropping, spam) flows from PRNGs derived from the program's seed and
    the acting node's id, so replaying the same program on the same
    instance reproduces the identical run bit-for-bit.

    Compiled strategies inherit the single-run discipline of
    {!Rmt_net.Byzantine.mimic_honest}: compile a fresh strategy per
    {!Rmt_net.Engine.run}.

    [random] samples a seeded attack program whose corrupted set is an
    admissible corruption set of the instance (a subset of a maximal set
    avoiding dealer and receiver), so safety claims (Theorem 4) apply to
    every generated program. *)

open Rmt_base
open Rmt_knowledge
open Rmt_net
open Rmt_core

val compile_pka :
  Program.t -> Instance.t -> x_dealer:int -> Rmt_pka.msg Engine.strategy
(** Full vocabulary: every injection has its protocol-specific meaning
    (type-1 value forgery, type-2 report forgery, fictitious nodes). *)

val compile_ppa :
  Program.t -> Instance.t -> x_dealer:int -> Rmt_protocols.Ppa.msg Engine.strategy
(** PPA carries trails but no reports: the knowledge-layer injections
    ({!Program.Lie_topology}) compile to nothing; {!Program.Phantom} and
    {!Program.Forge_edges} compile to trails over invented nodes/edges. *)

val compile_zcpa :
  Program.t -> Instance.t -> x_dealer:int -> int Engine.strategy
(** Bare-value protocol: trail/report injections degrade to pushing the
    fake value. *)

val compile_strawman :
  Program.t -> Instance.t -> x_dealer:int -> int Engine.strategy
(** Same bare-value injection vocabulary as {!compile_zcpa}, compiled
    against {!Rmt_protocols.Naive.first_delivery} — the deliberately
    order-sensitive receiver the simulation campaign uses as its
    always-violable control. *)

val compile_cert_pka :
  Program.t ->
  Instance.t ->
  x_dealer:int ->
  Rmt_protocols.Certified.pka_msg Engine.strategy
(** The PKA vocabulary lifted through the certified wrapper: payload
    forgeries ride inside [Load], and every forging round additionally
    floods forged [Echo] votes for the whole node set (a corrupted node
    may always forge echoes — the certificate targets the message
    adversary), so out-of-envelope schedules can carry an attack past
    the quorum gate. *)

val compile_cert_ppa :
  Program.t ->
  Instance.t ->
  x_dealer:int ->
  Rmt_protocols.Certified.ppa_msg Engine.strategy
(** The PPA vocabulary lifted the same way. *)

val random :
  Prng.t -> Instance.t -> x_dealer:int -> x_fake:int -> Program.t
(** One random attack program.  The corrupted set is drawn from the
    instance's maximal admissible sets (minus the receiver); bases and
    injections are sampled per node; fake values are drawn from
    [{x_fake, x_fake+1, x_dealer}] so value collisions are probed too.
    Returns a program with an empty node list when no admissible set
    avoids the receiver. *)
