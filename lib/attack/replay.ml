open Rmt_knowledge

type t = {
  protocol : Campaign.protocol;
  x_dealer : int;
  instance : Instance.t;
  program : Program.t;
  expected : Campaign.verdict option;
}

let make ?expected ~protocol ~x_dealer instance program =
  { protocol; x_dealer; instance; program; expected }

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let expect_to_string = function
  | Campaign.Delivered -> "expect delivered"
  | Campaign.Silenced -> "expect silenced"
  | Campaign.Violated x -> Printf.sprintf "expect violated %d" x

let to_string t =
  let* instance_text = Codec.to_string t.instance in
  let meta =
    Printf.sprintf "protocol %s" (Campaign.protocol_to_string t.protocol)
    :: Printf.sprintf "value %d" t.x_dealer
    :: (match t.expected with
        | None -> []
        | Some v -> [ expect_to_string v ])
  in
  Ok
    (String.concat "\n"
       (("# rmt fuzz reproducer" :: meta)
       @ Program.to_lines t.program
       @ [ instance_text ]))

let strip_comment line =
  match String.index_opt line '#' with
  | None -> line
  | Some i -> String.sub line 0 i

let tokens line =
  String.split_on_char ' ' (strip_comment line)
  |> List.filter (fun s -> s <> "")

let is_meta_line line =
  match tokens line with
  | ("protocol" | "value" | "expect") :: _ -> true
  | _ -> false

let of_string text =
  let lines = String.split_on_char '\n' text in
  let attack_lines = List.filter Program.is_attack_line lines in
  let meta_lines = List.filter is_meta_line lines in
  let instance_lines =
    List.filter
      (fun l -> not (Program.is_attack_line l || is_meta_line l))
      lines
  in
  let* program = Program.of_lines attack_lines in
  let* instance = Codec.of_string (String.concat "\n" instance_lines) in
  let protocol = ref None and x_dealer = ref None and expected = ref None in
  let* () =
    List.fold_left
      (fun acc line ->
        let* () = acc in
        match tokens line with
        | [ "protocol"; p ] ->
          let* p = Campaign.protocol_of_string p in
          protocol := Some p;
          Ok ()
        | [ "value"; x ] ->
          (match int_of_string_opt x with
           | Some x ->
             x_dealer := Some x;
             Ok ()
           | None -> Error (Printf.sprintf "bad dealer value %S" x))
        | [ "expect"; "delivered" ] ->
          expected := Some Campaign.Delivered;
          Ok ()
        | [ "expect"; "silenced" ] ->
          expected := Some Campaign.Silenced;
          Ok ()
        | [ "expect"; "violated"; x ] ->
          (match int_of_string_opt x with
           | Some x ->
             expected := Some (Campaign.Violated x);
             Ok ()
           | None -> Error (Printf.sprintf "bad violated value %S" x))
        | _ -> Error (Printf.sprintf "bad metadata line %S" line))
      (Ok ()) meta_lines
  in
  let* protocol =
    Option.to_result ~none:"missing 'protocol' line" !protocol
  in
  let* x_dealer = Option.to_result ~none:"missing 'value' line" !x_dealer in
  Ok { protocol; x_dealer; instance; program; expected = !expected }

let to_file path t =
  let* text = to_string t in
  try
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc text;
        Out_channel.output_char oc '\n');
    Ok ()
  with Sys_error e -> Error e

let of_file path =
  try of_string (In_channel.with_open_text path In_channel.input_all)
  with Sys_error e -> Error e

(* ------------------------------------------------------------------ *)
(* Replaying                                                           *)
(* ------------------------------------------------------------------ *)

let replay ?max_messages ?max_lines t =
  Campaign.execute_traced ?max_messages ?max_lines t.protocol t.instance
    ~x_dealer:t.x_dealer t.program

let verdict_matches t (r : Campaign.run_report) =
  match t.expected with
  | None -> true
  | Some v -> Campaign.verdict_equal v r.Campaign.verdict
