(** Delta-debugging minimization of failing (instance, attack) pairs.

    Given a predicate [keep] that holds for the starting pair (e.g. "the
    campaign still classifies this run the same way"), [minimize] greedily
    applies size-reducing moves as long as the predicate keeps holding:

    - drop a corrupted node's whole program;
    - simplify a node's base behavior to [Silent];
    - drop a single injection;
    - remove an uninvolved graph node (not dealer, receiver, or corrupted,
      and never disconnecting dealer from receiver), restricting the
      adversary structure to the surviving ground set and rebuilding the
      view with the same constructor.

    Every accepted move strictly decreases [Program.size + num_nodes], so
    minimization terminates; the candidate order is fixed, so for a
    deterministic [keep] the minimum found is deterministic too.  [budget]
    caps the number of [keep] evaluations (each typically one protocol
    run). *)

open Rmt_knowledge

val minimize :
  ?budget:int ->
  keep:(Instance.t -> Program.t -> bool) ->
  Instance.t ->
  Program.t ->
  Instance.t * Program.t
(** Fixpoint of the moves above; [budget] defaults to 400 evaluations.
    The result satisfies [keep] whenever the input did. *)

val keep_verdict :
  ?max_messages:int ->
  Campaign.protocol ->
  x_dealer:int ->
  verdict:Campaign.verdict ->
  Instance.t ->
  Program.t ->
  bool
(** The standard predicate: re-executing the program reproduces the same
    verdict {e constructor} (any wrong value matches [Violated _]), the
    corruption stays admissible and non-empty, and — for a [Silenced]
    target — no budget was exhausted (silence must be the attack's doing,
    not the search giving up). *)
