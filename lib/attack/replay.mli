(** Reproducer files — a failing run, frozen.

    A replay file is the {!Rmt_knowledge.Codec} instance text interleaved
    with the attack-program lines ({!Program.to_lines}) and three campaign
    metadata lines:

    {v
    protocol pka             # pka | ppa | zcpa | strawman
                             #     | cert-pka | cert-ppa
    value 7                  # the dealer's input
    expect silenced          # recorded verdict: delivered | silenced
                             #                 | violated <x>
    v}

    Everything needed to re-run the attack deterministically lives in the
    file (the program embeds its seed), so a reproducer checked into a bug
    report replays bit-for-bit: [replay] re-executes and returns the fresh
    verdict next to the recorded one, plus the rendered delivery trace. *)

open Rmt_knowledge

type t = {
  protocol : Campaign.protocol;
  x_dealer : int;
  instance : Instance.t;
  program : Program.t;
  expected : Campaign.verdict option;  (** verdict recorded at capture *)
}

val make :
  ?expected:Campaign.verdict ->
  protocol:Campaign.protocol ->
  x_dealer:int ->
  Instance.t ->
  Program.t ->
  t

val to_string : t -> (string, string) result
(** [Error _] when the instance's view is custom (not serializable). *)

val of_string : string -> (t, string) result

val to_file : string -> t -> (unit, string) result
val of_file : string -> (t, string) result

val replay :
  ?max_messages:int ->
  ?max_lines:int ->
  t ->
  Campaign.run_report * string
(** Re-execute; returns the run report and the rendered trace.  The run
    is deterministic, so a reproducer's verdict matches [expected] unless
    the protocol implementation changed underneath it. *)

val verdict_matches : t -> Campaign.run_report -> bool
(** True when [expected] is unset or equals the replayed verdict. *)
