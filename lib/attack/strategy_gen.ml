open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge
open Rmt_net
open Rmt_core

(* Per-node PRNG stream: deterministic in (program seed, node id), and
   independent of how many other nodes the program corrupts — shrinking a
   program never perturbs the surviving nodes' streams. *)
let node_rng (p : Program.t) v = Prng.create ((p.seed * 1_000_003) + v)

let broadcast_msg g v m =
  Nodeset.fold
    (fun u acc -> Engine.{ dst = u; payload = m } :: acc)
    (Graph.neighbors v g)
    []

let phantom_id g =
  match Nodeset.max_elt_opt (Graph.nodes g) with
  | Some m -> m + 1
  | None -> 0

let permissive_structure ground = Structure.of_sets ~ground [ ground ]

(* Shared compilation skeleton: base behavior over the mimicked honest
   automaton, plus per-round injected sends. *)
let compile_skeleton (p : Program.t) automaton ~inject =
  let corrupted = Program.corrupted p in
  let honest = Byzantine.mimic_honest corrupted automaton in
  let per_node =
    List.map
      (fun (np : Program.node_program) -> (np.node, (np, node_rng p np.node)))
      p.nodes
  in
  let act v ~round ~inbox =
    match List.assoc_opt v per_node with
    | None -> []
    | Some (np, rng) ->
      let base_sends =
        match np.base with
        | Program.Honest -> honest.Engine.act v ~round ~inbox
        | Program.Silent -> []
        | Program.Crash_after k ->
          (* keep consuming the mimic state so a later shrink to Honest
             does not change other nodes' streams *)
          let sends = honest.Engine.act v ~round ~inbox in
          if round > k then [] else sends
        | Program.Drop prob ->
          List.filter
            (fun _ -> Prng.float rng 1.0 >= prob)
            (honest.Engine.act v ~round ~inbox)
      in
      List.fold_left
        (fun sends i -> inject v rng ~round i sends)
        base_sends np.injects
  in
  Engine.{ corrupted; act }

(* ------------------------------------------------------------------ *)
(* RMT-PKA                                                             *)
(* ------------------------------------------------------------------ *)

let pka_map_value f (s : Rmt_pka.msg Engine.send) =
  Engine.
    {
      s with
      payload =
        {
          s.payload with
          Flood.payload =
            (match s.payload.Flood.payload with
             | Rmt_pka.Value x -> Rmt_pka.Value (f x)
             | Rmt_pka.Info r -> Rmt_pka.Info r);
        };
    }

(* Structurally random garbage, the vocabulary of Strategies.pka_fuzz:
   random values, random (possibly phantom) trails, random forged reports
   with random claimed graphs and structures. *)
let pka_spam_payload rng g =
  let nodes = Graph.nodes g in
  let n = Graph.num_nodes g in
  let random_node () =
    if Prng.int rng 5 = 0 then n + Prng.int rng 3
    else Prng.pick rng (Nodeset.to_array nodes)
  in
  if Prng.bool rng then Rmt_pka.Value (Prng.int rng 100)
  else begin
    let gamma = ref Graph.empty in
    for _ = 1 to 1 + Prng.int rng 5 do
      let a = random_node () and b = random_node () in
      if a <> b then gamma := Graph.add_edge a b !gamma
      else gamma := Graph.add_node a !gamma
    done;
    let origin =
      match Nodeset.choose_opt (Graph.nodes !gamma) with
      | Some v -> v
      | None -> random_node ()
    in
    let gamma = Graph.add_node origin !gamma in
    let ground = Graph.nodes gamma in
    let zeta =
      if Prng.bool rng then Structure.trivial ~ground
      else Structure.of_sets ~ground [ Prng.subset rng ground 0.5 ]
    in
    Rmt_pka.Info { origin; gamma; zeta }
  end

let pka_random_trail rng g v =
  let nodes = Graph.nodes g in
  let n = Graph.num_nodes g in
  let random_node () =
    if Prng.int rng 5 = 0 then n + Prng.int rng 3
    else Prng.pick rng (Nodeset.to_array nodes)
  in
  List.init (1 + Prng.int rng 4) (fun _ -> random_node ()) @ [ v ]

let pka_inject (inst : Instance.t) =
  let g = inst.graph in
  let inject v rng ~round i sends =
    match i with
    | Program.Flip_value x ->
      List.map (pka_map_value (fun _ -> x)) sends
    | Program.Forge_trail x ->
      if round = 1 then
        sends
        @ broadcast_msg g v
            Flood.{ payload = Rmt_pka.Value x; trail = [ inst.dealer; v ] }
      else sends
    | Program.Lie_topology ->
      if round = 1 then begin
        let fake_gamma =
          Graph.add_edge v inst.dealer (Instance.local_view inst v)
        in
        let ground = Nodeset.remove inst.dealer (Graph.nodes fake_gamma) in
        let report =
          Rmt_pka.
            { origin = v; gamma = fake_gamma; zeta = permissive_structure ground }
        in
        sends
        @ broadcast_msg g v
            Flood.{ payload = Rmt_pka.Info report; trail = [ v ] }
      end
      else sends
    | Program.Phantom x ->
      if round = 1 then begin
        let phantom = phantom_id g in
        let phantom_gamma =
          Graph.add_edge phantom v
            (Graph.add_edge phantom inst.dealer Graph.empty)
        in
        let phantom_report =
          Rmt_pka.
            {
              origin = phantom;
              gamma = phantom_gamma;
              zeta = Structure.trivial ~ground:Nodeset.empty;
            }
        in
        sends
        @ broadcast_msg g v
            Flood.{ payload = Rmt_pka.Info phantom_report; trail = [ phantom; v ] }
        @ broadcast_msg g v
            Flood.
              { payload = Rmt_pka.Value x; trail = [ inst.dealer; phantom; v ] }
      end
      else sends
    | Program.Forge_edges x ->
      if round = 1 then begin
        let nbrs = Graph.neighbors v g in
        let fake_gamma =
          Nodeset.fold
            (fun u acc ->
              let acc =
                if u <> inst.dealer then Graph.add_edge inst.dealer u acc
                else acc
              in
              Nodeset.fold
                (fun w acc -> if u < w then Graph.add_edge u w acc else acc)
                nbrs acc)
            nbrs
            (Instance.local_view inst v)
        in
        let ground = Nodeset.remove inst.dealer (Graph.nodes fake_gamma) in
        let report =
          Rmt_pka.
            { origin = v; gamma = fake_gamma; zeta = permissive_structure ground }
        in
        sends
        @ broadcast_msg g v
            Flood.{ payload = Rmt_pka.Info report; trail = [ v ] }
        @ Nodeset.fold
            (fun u acc ->
              broadcast_msg g v
                Flood.
                  { payload = Rmt_pka.Value x; trail = [ inst.dealer; u; v ] }
              @ acc)
            nbrs []
      end
      else sends
    | Program.Spam { spam_seed; rounds } ->
      if round <= rounds then begin
        let srng = Prng.create (spam_seed + (v * 7919) + round) in
        ignore rng;
        let burst = 1 + Prng.int srng 3 in
        sends
        @ List.concat
            (List.init burst (fun _ ->
                 broadcast_msg g v
                   Flood.
                     {
                       payload = pka_spam_payload srng g;
                       trail = pka_random_trail srng g v;
                     }))
      end
      else sends
  in
  inject

let compile_pka (p : Program.t) (inst : Instance.t) ~x_dealer =
  compile_skeleton p (Rmt_pka.automaton inst ~x_dealer) ~inject:(pka_inject inst)

(* ------------------------------------------------------------------ *)
(* PPA                                                                 *)
(* ------------------------------------------------------------------ *)

let ppa_map_value f (s : Rmt_protocols.Ppa.msg Engine.send) =
  Engine.
    { s with payload = { s.payload with Flood.payload = f s.payload.Flood.payload } }

let ppa_inject (inst : Instance.t) =
  let g = inst.graph in
  let inject v rng ~round i sends =
    match i with
    | Program.Flip_value x -> List.map (ppa_map_value (fun _ -> x)) sends
    | Program.Forge_trail x ->
      if round = 1 then
        sends
        @ broadcast_msg g v Flood.{ payload = x; trail = [ inst.dealer; v ] }
      else sends
    | Program.Lie_topology -> sends (* no knowledge channel in PPA *)
    | Program.Phantom x ->
      if round = 1 then
        sends
        @ broadcast_msg g v
            Flood.{ payload = x; trail = [ inst.dealer; phantom_id g; v ] }
      else sends
    | Program.Forge_edges x ->
      if round = 1 then
        sends
        @ Nodeset.fold
            (fun u acc ->
              broadcast_msg g v Flood.{ payload = x; trail = [ inst.dealer; u; v ] }
              @ acc)
            (Graph.neighbors v g) []
      else sends
    | Program.Spam { spam_seed; rounds } ->
      if round <= rounds then begin
        let srng = Prng.create (spam_seed + (v * 7919) + round) in
        ignore rng;
        let burst = 1 + Prng.int srng 3 in
        sends
        @ List.concat
            (List.init burst (fun _ ->
                 broadcast_msg g v
                   Flood.
                     {
                       payload = Prng.int srng 100;
                       trail = pka_random_trail srng g v;
                     }))
      end
      else sends
  in
  inject

let compile_ppa (p : Program.t) (inst : Instance.t) ~x_dealer =
  compile_skeleton p
    (Rmt_protocols.Ppa.automaton inst.graph ~structure:inst.structure
       ~dealer:inst.dealer ~receiver:inst.receiver ~x_dealer)
    ~inject:(ppa_inject inst)

(* ------------------------------------------------------------------ *)
(* Z-CPA                                                               *)
(* ------------------------------------------------------------------ *)

(* Bare-value injections, shared by every protocol whose messages are
   plain ints (Z-CPA and the strawman): trail/report forgeries degrade
   to pushing the fake value. *)
let int_inject g =
  let push v x sends = sends @ broadcast_msg g v x in
  fun v rng ~round i sends ->
    match i with
    | Program.Flip_value x ->
      (* rewrite relays and push the fake once: the strongest simple lie *)
      let sends = List.map (fun s -> Engine.{ s with payload = x }) sends in
      if round = 1 then push v x sends else sends
    | Program.Forge_trail x | Program.Phantom x | Program.Forge_edges x ->
      if round = 1 then push v x sends else sends
    | Program.Lie_topology -> sends
    | Program.Spam { spam_seed; rounds } ->
      if round <= rounds then begin
        let srng = Prng.create (spam_seed + (v * 7919) + round) in
        ignore rng;
        push v (Prng.int srng 100) sends
      end
      else sends

let compile_zcpa (p : Program.t) (inst : Instance.t) ~x_dealer =
  compile_skeleton p
    (Zcpa.automaton
       ~decider:(Zcpa.decider_of_oracle (Zcpa.direct_oracle inst))
       inst ~x_dealer)
    ~inject:(int_inject inst.graph)

let compile_strawman (p : Program.t) (inst : Instance.t) ~x_dealer =
  compile_skeleton p
    (Rmt_protocols.Naive.first_delivery inst.graph ~dealer:inst.dealer
       ~receiver:inst.receiver ~x_dealer)
    ~inject:(int_inject inst.graph)

(* ------------------------------------------------------------------ *)
(* Certified wrappers                                                  *)
(* ------------------------------------------------------------------ *)

(* Lifting an inner-protocol injection vocabulary through the certified
   wrapper: payload forgeries ride inside [Load] (reusing the inner
   protocol's inject compilation verbatim), and every round that forges
   payloads additionally floods forged [Echo] votes on behalf of the
   whole node set.  Corrupted nodes can always forge echoes — the
   quorum certificate targets the message adversary, not them — and
   outside the envelope (where drops silence honest evidence) this is
   what carries a campaign past the quorum gate, keeping the boundary
   lanes non-vacuous.  [Tick]s pass through untouched. *)

let cert_map_load flip (s : 'p Rmt_protocols.Certified.msg Engine.send) =
  Engine.
    {
      s with
      payload =
        {
          s.payload with
          Flood.payload =
            (match s.payload.Flood.payload with
             | Rmt_protocols.Certified.Load p ->
               Rmt_protocols.Certified.Load (flip p)
             | (Rmt_protocols.Certified.Echo _ | Rmt_protocols.Certified.Tick)
               as b ->
               b);
        };
    }

let cert_echo_flood g v =
  Nodeset.fold
    (fun u acc ->
      let trail = if u = v then [ v ] else [ u; v ] in
      broadcast_msg g v Flood.{ payload = Rmt_protocols.Certified.Echo u; trail }
      @ acc)
    (Graph.nodes g) []

let compile_cert g ~flip ~inner_inject ~automaton (p : Program.t) =
  let inject v rng ~round i sends =
    match i with
    | Program.Flip_value x -> List.map (cert_map_load (flip x)) sends
    | _ -> (
      let added = inner_inject v rng ~round i [] in
      match added with
      | [] -> sends
      | _ ->
        let wrapped =
          List.map
            (fun (s : _ Engine.send) ->
              Engine.
                {
                  dst = s.dst;
                  payload =
                    Flood.
                      {
                        payload =
                          Rmt_protocols.Certified.Load s.payload.Flood.payload;
                        trail = s.payload.Flood.trail;
                      };
                })
            added
        in
        sends @ wrapped @ cert_echo_flood g v)
  in
  compile_skeleton p automaton ~inject

let compile_cert_pka (p : Program.t) (inst : Instance.t) ~x_dealer =
  compile_cert inst.graph
    ~flip:(fun x pl ->
      match pl with
      | Rmt_pka.Value _ -> Rmt_pka.Value x
      | Rmt_pka.Info r -> Rmt_pka.Info r)
    ~inner_inject:(pka_inject inst)
    ~automaton:(Rmt_protocols.Certified.pka inst ~x_dealer)
    p

let compile_cert_ppa (p : Program.t) (inst : Instance.t) ~x_dealer =
  compile_cert inst.graph
    ~flip:(fun x _ -> x)
    ~inner_inject:(ppa_inject inst)
    ~automaton:
      (Rmt_protocols.Certified.ppa inst.graph ~structure:inst.structure
         ~dealer:inst.dealer ~receiver:inst.receiver ~x_dealer)
    p

(* ------------------------------------------------------------------ *)
(* Random program generation                                           *)
(* ------------------------------------------------------------------ *)

let random_base rng =
  match Prng.int rng 8 with
  | 0 -> Program.Silent
  | 1 -> Program.Crash_after (Prng.int rng 4)
  | 2 -> Program.Drop (0.25 +. Prng.float rng 0.5)
  | _ -> Program.Honest

let random_inject rng ~fake =
  match Prng.int rng 6 with
  | 0 -> Program.Flip_value (fake rng)
  | 1 -> Program.Forge_trail (fake rng)
  | 2 -> Program.Lie_topology
  | 3 -> Program.Phantom (fake rng)
  | 4 -> Program.Forge_edges (fake rng)
  | _ ->
    Program.Spam
      { spam_seed = Prng.int rng 1_000_000; rounds = 1 + Prng.int rng 4 }

let random rng (inst : Instance.t) ~x_dealer ~x_fake =
  let seed = Prng.int rng 1_073_741_823 in
  let candidates =
    List.filter_map
      (fun z ->
        let z = Nodeset.remove inst.receiver z in
        if Nodeset.is_empty z then None else Some z)
      (Instance.corruption_sets inst)
  in
  match candidates with
  | [] -> Program.make ~seed []
  | _ ->
    let z = Prng.pick_list rng candidates in
    (* usually the whole maximal set; sometimes a proper subset *)
    let corrupted =
      if Prng.int rng 3 = 0 then
        let sub = Prng.sample rng z (1 + Prng.int rng (Nodeset.size z)) in
        if Nodeset.is_empty sub then z else sub
      else z
    in
    let fake rng =
      match Prng.int rng 4 with
      | 0 -> x_dealer (* echoing the truth stresses the path accounting *)
      | 1 -> x_fake + 1
      | _ -> x_fake
    in
    let nodes =
      Nodeset.fold
        (fun v acc ->
          let base = random_base rng in
          let injects =
            List.init (Prng.int rng 3) (fun _ -> random_inject rng ~fake)
          in
          { Program.node = v; base; injects } :: acc)
        corrupted []
    in
    Program.make ~seed nodes
