(** Fuzzing campaigns — fan attack programs across a protocol, classify
    every run against the paper's safety/liveness claims.

    A campaign draws seeded random programs ({!Strategy_gen.random}),
    executes each against the chosen protocol on the instance, and sorts
    the outcomes into a three-point classification lattice:

    {v
            Safety_violation        (wrong decision — refutes Theorem 4)
                   |
            Liveness_lost           (no decision on a solvable instance
                   |                 under an admissible corruption)
                  Safe              (correct decision, or silence that
                                     the theory permits)
    v}

    Silence is only an attack success when the instance is solvable, the
    corruption admissible, and no budget was exhausted; on unsolvable
    instances silence is the {e required} behavior, and such runs are
    reported as cut-exploiting [silenced] outcomes rather than failures.
    A wrong decision is a safety violation whenever the corruption set is
    admissible (Theorem 4 promises safety against exactly those). *)

open Rmt_core
open Rmt_knowledge

type protocol =
  | Pka
  | Ppa
  | Zcpa
  | Strawman
      (** {!Rmt_protocols.Naive.first_delivery}, the deliberately
          order-sensitive receiver: safe under the synchronous engine's
          send-ordered inboxes, violable by any scheduler that reorders
          one channel.  The simulation campaign's control protocol; not
          part of the default fuzzing sweeps. *)
  | Cert_pka
      (** {!Rmt_protocols.Certified.pka} under the default
          {!Rmt_protocols.Envelope}: RMT-PKA behind the quorum/commit
          certification gate, safe over lossy/asynchronous schedules
          within the envelope. *)
  | Cert_ppa  (** {!Rmt_protocols.Certified.ppa}, likewise. *)

val protocol_to_string : protocol -> string
val protocol_of_string : string -> (protocol, string) result

type verdict =
  | Delivered  (** receiver decided on the dealer's value *)
  | Silenced  (** receiver reached the round limit undecided *)
  | Violated of int  (** receiver decided on a wrong value *)

val verdict_to_string : verdict -> string

val verdict_equal : verdict -> verdict -> bool
(** Constructor (and violated-value) equality; use instead of
    polymorphic [=] (rmt-lint R1). *)

type run_report = {
  program : Program.t;
  verdict : verdict;
  rounds : int;
  messages : int;
  truncated : bool;  (** a message or search budget was exhausted *)
}

type classification = Safe | Liveness_lost | Safety_violation

val classification_to_string : classification -> string

val solvability : protocol -> Instance.t -> Solvability.feasibility
(** The protocol-appropriate decider: RMT-cut for PKA and PPA (PPA's
    full-knowledge condition), 𝒵-pp cut for Z-CPA. *)

val classify :
  solvability:Solvability.feasibility ->
  admissible:bool ->
  run_report ->
  classification

type runner = {
  run :
    's 'm.
    ?max_messages:int ->
    ?size_of:('m -> int) ->
    ?stop_when:((int -> int option) -> bool) ->
    ?on_deliver:(round:int -> src:int -> dst:int -> 'm -> unit) ->
    graph:Rmt_graph.Graph.t ->
    adversary:'m Rmt_net.Engine.strategy ->
    ('s, 'm) Rmt_net.Engine.automaton ->
    ('s, 'm) Rmt_net.Engine.outcome;
}
(** An execution backend with {!Rmt_net.Engine.run}'s interface.  The
    polymorphic field lets one value serve every protocol's message
    type, so alternative runtimes (the discrete-event simulator in
    [lib/sim]) plug into {!execute} without duplicating the
    per-protocol dispatch. *)

val engine_runner : runner
(** The synchronous engine itself — the default backend. *)

val execute :
  ?max_messages:int ->
  ?runner:runner ->
  protocol ->
  Instance.t ->
  x_dealer:int ->
  Program.t ->
  run_report
(** Compile the program against the protocol and run it once on
    [runner] (default {!engine_runner}).  Deterministic in (program,
    instance, [x_dealer], runner). *)

val execute_traced :
  ?max_messages:int ->
  ?runner:runner ->
  ?max_lines:int ->
  protocol ->
  Instance.t ->
  x_dealer:int ->
  Program.t ->
  run_report * string
(** Same run, additionally rendering the delivery timeline with
    {!Rmt_net.Trace.render}.  The verdict is identical to {!execute}'s —
    tracing only observes. *)

type report = {
  protocol : protocol;
  seed : int;
  attacks : int;  (** programs actually executed *)
  solvability : Solvability.feasibility;
  delivered : int;
  silenced : int;
  violated : int;
  truncated : int;
  liveness_lost : int;
  safety_violations : run_report list;
  silenced_examples : run_report list;
      (** first few non-truncated silencings by non-empty programs —
          on unsolvable instances these witness the cut *)
  max_rounds_seen : int;
  total_messages : int;
  stopped_early : bool;  (** [should_stop] fired before [attacks] runs *)
}

val run :
  ?domains:int ->
  ?max_messages:int ->
  ?batch:int ->
  ?should_stop:(unit -> bool) ->
  ?x_dealer:int ->
  ?x_fake:int ->
  seed:int ->
  attacks:int ->
  protocol ->
  Instance.t ->
  report
(** Runs a campaign of up to [attacks] programs drawn from [seed].
    Batches of [batch] (default 16) programs execute through
    {!Rmt_workloads.Parsweep.map}; [should_stop] is polled between
    batches, so a time budget overshoots by at most one batch.  For a
    fixed seed and attack count the report is deterministic, independent
    of [domains]. *)

val pp_report : Format.formatter -> report -> unit
