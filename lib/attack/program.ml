open Rmt_base

type base =
  | Honest
  | Silent
  | Crash_after of int
  | Drop of float

type inject =
  | Flip_value of int
  | Forge_trail of int
  | Lie_topology
  | Phantom of int
  | Forge_edges of int
  | Spam of { spam_seed : int; rounds : int }

type node_program = {
  node : int;
  base : base;
  injects : inject list;
}

type t = {
  seed : int;
  nodes : node_program list;
}

let make ~seed nodes =
  let sorted = List.sort (fun a b -> Int.compare a.node b.node) nodes in
  let rec dedup = function
    | a :: (b :: _ as rest) when a.node = b.node -> a :: dedup (List.tl rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  { seed; nodes = dedup sorted }

let corrupted t = Nodeset.of_list (List.map (fun np -> np.node) t.nodes)

let size t =
  List.fold_left
    (fun acc np ->
      acc + 1 + List.length np.injects
      + (match np.base with Silent -> 0 | _ -> 1))
    0 t.nodes

let weight t =
  List.fold_left
    (fun acc np ->
      acc + List.length np.injects
      + (match np.base with Honest -> 0 | _ -> 1))
    0 t.nodes

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let base_to_string = function
  | Honest -> "honest"
  | Silent -> "silent"
  | Crash_after k -> Printf.sprintf "crash:%d" k
  | Drop p -> Printf.sprintf "drop:%.17g" p (* exact float round-trip *)

let inject_to_string = function
  | Flip_value x -> Printf.sprintf "flip:%d" x
  | Forge_trail x -> Printf.sprintf "forge-trail:%d" x
  | Lie_topology -> "lie-topology"
  | Phantom x -> Printf.sprintf "phantom:%d" x
  | Forge_edges x -> Printf.sprintf "forge-edges:%d" x
  | Spam { spam_seed; rounds } -> Printf.sprintf "spam:%d:%d" spam_seed rounds

let to_lines t =
  Printf.sprintf "attack-seed %d" t.seed
  :: List.map
       (fun np ->
         Printf.sprintf "attack-node %d %s%s" np.node (base_to_string np.base)
           (String.concat ""
              (List.map (fun i -> " " ^ inject_to_string i) np.injects)))
       t.nodes

let ( let* ) = Result.bind

let base_of_string s =
  match String.split_on_char ':' s with
  | [ "honest" ] -> Ok Honest
  | [ "silent" ] -> Ok Silent
  | [ "crash"; k ] ->
    (match int_of_string_opt k with
     | Some k when k >= 0 -> Ok (Crash_after k)
     | _ -> Error (Printf.sprintf "bad crash round %S" k))
  | [ "drop"; p ] ->
    (match float_of_string_opt p with
     | Some p when p >= 0. && p <= 1. -> Ok (Drop p)
     | _ -> Error (Printf.sprintf "bad drop probability %S" p))
  | _ -> Error (Printf.sprintf "unknown base behavior %S" s)

let inject_of_string s =
  let int_arg ctx k f =
    match int_of_string_opt k with
    | Some v -> Ok (f v)
    | None -> Error (Printf.sprintf "bad %s argument %S" ctx k)
  in
  match String.split_on_char ':' s with
  | [ "flip"; x ] -> int_arg "flip" x (fun x -> Flip_value x)
  | [ "forge-trail"; x ] -> int_arg "forge-trail" x (fun x -> Forge_trail x)
  | [ "lie-topology" ] -> Ok Lie_topology
  | [ "phantom"; x ] -> int_arg "phantom" x (fun x -> Phantom x)
  | [ "forge-edges"; x ] -> int_arg "forge-edges" x (fun x -> Forge_edges x)
  | [ "spam"; seed; rounds ] ->
    let* spam_seed =
      Option.to_result ~none:"bad spam seed" (int_of_string_opt seed)
    in
    let* rounds =
      Option.to_result ~none:"bad spam rounds" (int_of_string_opt rounds)
    in
    if rounds < 0 then Error "negative spam rounds"
    else Ok (Spam { spam_seed; rounds })
  | _ -> Error (Printf.sprintf "unknown injection %S" s)

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let is_attack_line line =
  match tokens line with
  | ("attack-seed" | "attack-node") :: _ -> true
  | _ -> false

let of_lines lines =
  let seed = ref None and nodes = ref [] in
  let* () =
    List.fold_left
      (fun acc line ->
        let* () = acc in
        match tokens line with
        | [] -> Ok ()
        | [ "attack-seed"; s ] ->
          (match int_of_string_opt s with
           | Some s ->
             seed := Some s;
             Ok ()
           | None -> Error (Printf.sprintf "bad attack-seed %S" s))
        | "attack-node" :: id :: base :: injects ->
          let* node =
            Option.to_result
              ~none:(Printf.sprintf "bad node id %S" id)
              (int_of_string_opt id)
          in
          let* base = base_of_string base in
          let* injects =
            List.fold_left
              (fun acc s ->
                let* acc = acc in
                let* i = inject_of_string s in
                Ok (i :: acc))
              (Ok []) injects
          in
          nodes := { node; base; injects = List.rev injects } :: !nodes;
          Ok ()
        | kw :: _ -> Error (Printf.sprintf "unknown attack keyword %S" kw))
      (Ok ()) lines
  in
  let* seed = Option.to_result ~none:"missing 'attack-seed' line" !seed in
  Ok (make ~seed (List.rev !nodes))

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list Format.pp_print_string)
    (to_lines t)

let base_equal a b =
  match (a, b) with
  | Honest, Honest | Silent, Silent -> true
  | Crash_after j, Crash_after k -> j = k
  | Drop p, Drop q -> Float.equal p q
  | (Honest | Silent | Crash_after _ | Drop _), _ -> false

let inject_equal a b =
  match (a, b) with
  | Flip_value x, Flip_value y
  | Forge_trail x, Forge_trail y
  | Phantom x, Phantom y
  | Forge_edges x, Forge_edges y -> x = y
  | Lie_topology, Lie_topology -> true
  | Spam a, Spam b -> a.spam_seed = b.spam_seed && a.rounds = b.rounds
  | ( ( Flip_value _ | Forge_trail _ | Lie_topology | Phantom _
      | Forge_edges _ | Spam _ ),
      _ ) -> false

let node_program_equal a b =
  a.node = b.node
  && base_equal a.base b.base
  && List.equal inject_equal a.injects b.injects

let equal a b =
  a.seed = b.seed && List.equal node_program_equal a.nodes b.nodes
