open Rmt_base
open Rmt_knowledge
open Rmt_net
open Rmt_core
open Rmt_workloads

type protocol = Pka | Ppa | Zcpa | Strawman | Cert_pka | Cert_ppa

let protocol_to_string = function
  | Pka -> "pka"
  | Ppa -> "ppa"
  | Zcpa -> "zcpa"
  | Strawman -> "strawman"
  | Cert_pka -> "cert-pka"
  | Cert_ppa -> "cert-ppa"

let protocol_of_string = function
  | "pka" -> Ok Pka
  | "ppa" -> Ok Ppa
  | "zcpa" -> Ok Zcpa
  | "strawman" -> Ok Strawman
  | "cert-pka" -> Ok Cert_pka
  | "cert-ppa" -> Ok Cert_ppa
  | s ->
    Error
      (Printf.sprintf
         "unknown protocol %S (pka|ppa|zcpa|strawman|cert-pka|cert-ppa)" s)

type verdict =
  | Delivered
  | Silenced
  | Violated of int

let verdict_to_string = function
  | Delivered -> "delivered"
  | Silenced -> "silenced"
  | Violated x -> Printf.sprintf "violated %d" x

let verdict_equal a b =
  match (a, b) with
  | Delivered, Delivered | Silenced, Silenced -> true
  | Violated x, Violated y -> x = y
  | (Delivered | Silenced | Violated _), _ -> false

type run_report = {
  program : Program.t;
  verdict : verdict;
  rounds : int;
  messages : int;
  truncated : bool;
}

type classification = Safe | Liveness_lost | Safety_violation

let classification_to_string = function
  | Safe -> "safe"
  | Liveness_lost -> "liveness-lost"
  | Safety_violation -> "SAFETY-VIOLATION"

let solvability protocol (inst : Instance.t) =
  match protocol with
  | Pka -> Solvability.partial_knowledge inst
  | Ppa ->
    if
      Rmt_protocols.Ppa.solvable inst.graph ~structure:inst.structure
        ~dealer:inst.dealer ~receiver:inst.receiver
    then Solvability.Solvable
    else Solvability.Unsolvable
  | Zcpa -> Solvability.ad_hoc inst
  | Strawman ->
    (* the strawman decides wherever PKA could: classify its (expected)
       wrong outputs as violations exactly on PKA-solvable instances *)
    Solvability.partial_knowledge inst
  | Cert_pka ->
    (* certification gates the inner decision; within the envelope the
       wrapped protocol's own feasibility condition applies unchanged *)
    Solvability.partial_knowledge inst
  | Cert_ppa ->
    if
      Rmt_protocols.Ppa.solvable inst.graph ~structure:inst.structure
        ~dealer:inst.dealer ~receiver:inst.receiver
    then Solvability.Solvable
    else Solvability.Unsolvable

let classify ~solvability ~admissible r =
  match r.verdict with
  | Violated _ -> if admissible then Safety_violation else Safe
  | Delivered -> Safe
  | Silenced ->
    if
      Solvability.is_solvable solvability
      && admissible
      && not r.truncated
    then Liveness_lost
    else Safe

(* ------------------------------------------------------------------ *)
(* Executing one program                                               *)
(* ------------------------------------------------------------------ *)

let verdict_of ~x_dealer = function
  | None -> Silenced
  | Some x when x = x_dealer -> Delivered
  | Some x -> Violated x

let trail_summary trail =
  Printf.sprintf "<%s>" (String.concat "," (List.map string_of_int trail))

let pp_pka_msg (m : Rmt_pka.msg) =
  match m.Flood.payload with
  | Rmt_pka.Value x -> Printf.sprintf "V%d%s" x (trail_summary m.Flood.trail)
  | Rmt_pka.Info r ->
    Printf.sprintf "I(%d)%s" r.Rmt_pka.origin (trail_summary m.Flood.trail)

let pp_ppa_msg (m : Rmt_protocols.Ppa.msg) =
  Printf.sprintf "%d%s" m.Flood.payload (trail_summary m.Flood.trail)

let pp_cert_pka_msg (m : Rmt_protocols.Certified.pka_msg) =
  match m.Flood.payload with
  | Rmt_protocols.Certified.Load p ->
    "c" ^ pp_pka_msg { Flood.payload = p; trail = m.Flood.trail }
  | Rmt_protocols.Certified.Echo u ->
    Printf.sprintf "E(%d)%s" u (trail_summary m.Flood.trail)
  | Rmt_protocols.Certified.Tick -> "tick"

let pp_cert_ppa_msg (m : Rmt_protocols.Certified.ppa_msg) =
  match m.Flood.payload with
  | Rmt_protocols.Certified.Load x ->
    Printf.sprintf "c%d%s" x (trail_summary m.Flood.trail)
  | Rmt_protocols.Certified.Echo u ->
    Printf.sprintf "E(%d)%s" u (trail_summary m.Flood.trail)
  | Rmt_protocols.Certified.Tick -> "tick"

(* One delivery hook per message type; [execute_gen] picks the arm's. *)
type deliver_hooks = {
  h_pka : round:int -> src:int -> dst:int -> Rmt_pka.msg -> unit;
  h_ppa : round:int -> src:int -> dst:int -> Rmt_protocols.Ppa.msg -> unit;
  h_int : round:int -> src:int -> dst:int -> int -> unit;
  h_cert_pka :
    round:int -> src:int -> dst:int -> Rmt_protocols.Certified.pka_msg -> unit;
  h_cert_ppa :
    round:int -> src:int -> dst:int -> Rmt_protocols.Certified.ppa_msg -> unit;
}

(* An execution backend with [Engine.run]'s interface.  The polymorphic
   field lets one runner value serve every protocol's message type, so
   alternative runtimes (the discrete-event simulator in lib/sim) reuse
   the per-protocol dispatch below instead of duplicating it. *)
type runner = {
  run :
    's 'm.
    ?max_messages:int ->
    ?size_of:('m -> int) ->
    ?stop_when:((int -> int option) -> bool) ->
    ?on_deliver:(round:int -> src:int -> dst:int -> 'm -> unit) ->
    graph:Rmt_graph.Graph.t ->
    adversary:'m Engine.strategy ->
    ('s, 'm) Engine.automaton ->
    ('s, 'm) Engine.outcome;
}

let engine_runner =
  {
    run =
      (fun ?max_messages ?size_of ?stop_when ?on_deliver ~graph ~adversary
           auto ->
        Engine.run ?max_messages ?size_of ?stop_when ?on_deliver ~graph
          ~adversary auto);
  }

(* Each protocol's run, replicated from its [run] wrapper so a trace hook
   can observe the deliveries; verdicts must stay identical to the
   wrapper's. *)
let execute_gen ?max_messages ?(runner = engine_runner) ?on_deliver protocol
    (inst : Instance.t) ~x_dealer (p : Program.t) =
  match protocol with
  | Pka ->
    let adversary = Strategy_gen.compile_pka p inst ~x_dealer in
    let auto = Rmt_pka.automaton inst ~x_dealer in
    let outcome =
      runner.run ?max_messages
        ?on_deliver:(Option.map (fun h -> h.h_pka) on_deliver)
        ~size_of:Rmt_pka.msg_size
        ~stop_when:(fun dec -> dec inst.receiver <> None)
        ~graph:inst.graph ~adversary auto
    in
    let decided = Engine.decision_of outcome inst.receiver in
    let recv_truncated =
      match List.assoc_opt inst.receiver outcome.states with
      | Some st -> Rmt_pka.search_truncated st
      | None -> false
    in
    {
      program = p;
      verdict = verdict_of ~x_dealer decided;
      rounds = outcome.stats.rounds;
      messages = outcome.stats.messages;
      truncated = outcome.stats.truncated || recv_truncated;
    }
  | Ppa ->
    let adversary = Strategy_gen.compile_ppa p inst ~x_dealer in
    let auto =
      Rmt_protocols.Ppa.automaton inst.graph ~structure:inst.structure
        ~dealer:inst.dealer ~receiver:inst.receiver ~x_dealer
    in
    let outcome =
      runner.run ?max_messages
        ?on_deliver:(Option.map (fun h -> h.h_ppa) on_deliver)
        ~size_of:(fun (m : Rmt_protocols.Ppa.msg) ->
          1 + List.length m.Flood.trail)
        ~stop_when:(fun dec -> dec inst.receiver <> None)
        ~graph:inst.graph ~adversary auto
    in
    let decided = Engine.decision_of outcome inst.receiver in
    {
      program = p;
      verdict = verdict_of ~x_dealer decided;
      rounds = outcome.stats.rounds;
      messages = outcome.stats.messages;
      truncated = outcome.stats.truncated;
    }
  | Zcpa ->
    let adversary = Strategy_gen.compile_zcpa p inst ~x_dealer in
    let auto =
      Zcpa.automaton
        ~decider:(Zcpa.decider_of_oracle (Zcpa.direct_oracle inst))
        inst ~x_dealer
    in
    let outcome =
      runner.run ?max_messages
        ?on_deliver:(Option.map (fun h -> h.h_int) on_deliver)
        ~graph:inst.graph ~adversary auto
    in
    let decided = Engine.decision_of outcome inst.receiver in
    {
      program = p;
      verdict = verdict_of ~x_dealer decided;
      rounds = outcome.stats.rounds;
      messages = outcome.stats.messages;
      truncated = outcome.stats.truncated;
    }
  | Strawman ->
    let adversary = Strategy_gen.compile_strawman p inst ~x_dealer in
    let auto =
      Rmt_protocols.Naive.first_delivery inst.graph ~dealer:inst.dealer
        ~receiver:inst.receiver ~x_dealer
    in
    let outcome =
      runner.run ?max_messages
        ?on_deliver:(Option.map (fun h -> h.h_int) on_deliver)
        ~stop_when:(fun dec -> dec inst.receiver <> None)
        ~graph:inst.graph ~adversary auto
    in
    let decided = Engine.decision_of outcome inst.receiver in
    {
      program = p;
      verdict = verdict_of ~x_dealer decided;
      rounds = outcome.stats.rounds;
      messages = outcome.stats.messages;
      truncated = outcome.stats.truncated;
    }
  | Cert_pka ->
    let adversary = Strategy_gen.compile_cert_pka p inst ~x_dealer in
    let auto = Rmt_protocols.Certified.pka inst ~x_dealer in
    let outcome =
      runner.run ?max_messages
        ?on_deliver:(Option.map (fun h -> h.h_cert_pka) on_deliver)
        ~size_of:Rmt_protocols.Certified.pka_msg_size
        ~stop_when:(fun dec -> dec inst.receiver <> None)
        ~graph:inst.graph ~adversary auto
    in
    let decided = Engine.decision_of outcome inst.receiver in
    let recv_truncated =
      match List.assoc_opt inst.receiver outcome.states with
      | Some st -> Rmt_protocols.Certified.truncated st
      | None -> false
    in
    {
      program = p;
      verdict = verdict_of ~x_dealer decided;
      rounds = outcome.stats.rounds;
      messages = outcome.stats.messages;
      truncated = outcome.stats.truncated || recv_truncated;
    }
  | Cert_ppa ->
    let adversary = Strategy_gen.compile_cert_ppa p inst ~x_dealer in
    let auto =
      Rmt_protocols.Certified.ppa inst.graph ~structure:inst.structure
        ~dealer:inst.dealer ~receiver:inst.receiver ~x_dealer
    in
    let outcome =
      runner.run ?max_messages
        ?on_deliver:(Option.map (fun h -> h.h_cert_ppa) on_deliver)
        ~size_of:Rmt_protocols.Certified.ppa_msg_size
        ~stop_when:(fun dec -> dec inst.receiver <> None)
        ~graph:inst.graph ~adversary auto
    in
    let decided = Engine.decision_of outcome inst.receiver in
    {
      program = p;
      verdict = verdict_of ~x_dealer decided;
      rounds = outcome.stats.rounds;
      messages = outcome.stats.messages;
      truncated = outcome.stats.truncated;
    }

let execute ?max_messages ?runner protocol inst ~x_dealer p =
  execute_gen ?max_messages ?runner protocol inst ~x_dealer p

let execute_traced ?max_messages ?runner ?max_lines protocol inst ~x_dealer p
    =
  let trace_pka, hook_pka = Trace.create ~pp_payload:pp_pka_msg () in
  let trace_ppa, hook_ppa = Trace.create ~pp_payload:pp_ppa_msg () in
  (* ints serve both Z-CPA and the strawman: same message type *)
  let trace_int, hook_int = Trace.create ~pp_payload:string_of_int () in
  let trace_cert_pka, hook_cert_pka =
    Trace.create ~pp_payload:pp_cert_pka_msg ()
  in
  let trace_cert_ppa, hook_cert_ppa =
    Trace.create ~pp_payload:pp_cert_ppa_msg ()
  in
  let r =
    execute_gen ?max_messages ?runner
      ~on_deliver:
        {
          h_pka = hook_pka;
          h_ppa = hook_ppa;
          h_int = hook_int;
          h_cert_pka = hook_cert_pka;
          h_cert_ppa = hook_cert_ppa;
        }
      protocol inst ~x_dealer p
  in
  let trace =
    match protocol with
    | Pka -> trace_pka
    | Ppa -> trace_ppa
    | Zcpa | Strawman -> trace_int
    | Cert_pka -> trace_cert_pka
    | Cert_ppa -> trace_cert_ppa
  in
  (r, Trace.render ?max_lines trace)

(* ------------------------------------------------------------------ *)
(* Campaigns                                                           *)
(* ------------------------------------------------------------------ *)

type report = {
  protocol : protocol;
  seed : int;
  attacks : int;
  solvability : Solvability.feasibility;
  delivered : int;
  silenced : int;
  violated : int;
  truncated : int;
  liveness_lost : int;
  safety_violations : run_report list;
  silenced_examples : run_report list;
  max_rounds_seen : int;
  total_messages : int;
  stopped_early : bool;
}

let max_examples = 5

let run ?domains ?max_messages ?(batch = 16) ?(should_stop = fun () -> false)
    ?(x_dealer = 7) ?(x_fake = 8) ~seed ~attacks protocol (inst : Instance.t)
    =
  let rng = Prng.create seed in
  let solv = solvability protocol inst in
  let executed = ref 0
  and delivered = ref 0
  and silenced = ref 0
  and violated = ref 0
  and truncated = ref 0
  and liveness_lost = ref 0
  and violations = ref []
  and silenced_ex = ref []
  and max_rounds_seen = ref 0
  and total_messages = ref 0
  and stopped = ref false in
  while (not !stopped) && !executed < attacks do
    let n = min batch (attacks - !executed) in
    let programs =
      Array.init n (fun _ -> Strategy_gen.random rng inst ~x_dealer ~x_fake)
    in
    let reports =
      Parsweep.map ?domains
        (fun p -> execute ?max_messages protocol inst ~x_dealer p)
        programs
    in
    Array.iter
      (fun r ->
        incr executed;
        max_rounds_seen := max !max_rounds_seen r.rounds;
        total_messages := !total_messages + r.messages;
        if r.truncated then incr truncated;
        let admissible =
          Instance.admissible inst (Program.corrupted r.program)
        in
        (match classify ~solvability:solv ~admissible r with
         | Safety_violation -> violations := r :: !violations
         | Liveness_lost -> incr liveness_lost
         | Safe -> ());
        match r.verdict with
        | Delivered -> incr delivered
        | Violated _ -> incr violated
        | Silenced ->
          incr silenced;
          if
            (not r.truncated)
            && (not (Nodeset.is_empty (Program.corrupted r.program)))
            && List.length !silenced_ex < max_examples
          then silenced_ex := r :: !silenced_ex)
      reports;
    if should_stop () then stopped := true
  done;
  {
    protocol;
    seed;
    attacks = !executed;
    solvability = solv;
    delivered = !delivered;
    silenced = !silenced;
    violated = !violated;
    truncated = !truncated;
    liveness_lost = !liveness_lost;
    safety_violations = List.rev !violations;
    silenced_examples = List.rev !silenced_ex;
    max_rounds_seen = !max_rounds_seen;
    total_messages = !total_messages;
    stopped_early = !stopped;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%s campaign: seed=%d attacks=%d (%a)%s@,\
     delivered %d | silenced %d | violated %d | truncated %d@,\
     liveness lost %d | safety violations %d@,\
     max rounds %d | total messages %d@]"
    (protocol_to_string r.protocol)
    r.seed r.attacks Solvability.pp_feasibility r.solvability
    (if r.stopped_early then " [stopped early]" else "")
    r.delivered r.silenced r.violated r.truncated r.liveness_lost
    (List.length r.safety_violations)
    r.max_rounds_seen r.total_messages
