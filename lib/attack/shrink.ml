open Rmt_base
open Rmt_graph
open Rmt_adversary
open Rmt_knowledge

(* ------------------------------------------------------------------ *)
(* Candidate moves                                                     *)
(* ------------------------------------------------------------------ *)

let drop_nth l n = List.filteri (fun i _ -> i <> n) l

(* Remove one graph node, restricting structure and view to the survivors.
   Only serializable view constructors can be rebuilt; [View.of_assignment]
   instances are left graph-intact (programs still shrink). *)
let shrink_instance (inst : Instance.t) v =
  let rebuild_view g =
    match String.split_on_char '-' (View.label inst.view) with
    | [ "full" ] -> Some (View.full g)
    | [ "ad"; "hoc" ] -> Some (View.ad_hoc g)
    | [ "radius"; k ] ->
      Option.map (fun k -> View.radius k g) (int_of_string_opt k)
    | _ -> None
  in
  let g = Graph.remove_node v inst.graph in
  if
    Graph.mem_node inst.dealer g
    && Graph.mem_node inst.receiver g
    && Connectivity.connected_avoiding g inst.dealer inst.receiver
         Nodeset.empty
  then
    match rebuild_view g with
    | None -> None
    | Some view ->
      let ground = Nodeset.remove v (Structure.ground inst.structure) in
      let structure = Structure.restrict ground inst.structure in
      (try
         Some
           (Instance.make ~graph:g ~structure ~view ~dealer:inst.dealer
              ~receiver:inst.receiver)
       with Invalid_argument _ -> None)
  else None

(* All single-step reductions, in a fixed order: program-level moves
   first (cheapest to evaluate, biggest semantic simplification), then
   graph surgery. *)
let candidates (inst : Instance.t) (p : Program.t) =
  let n = List.length p.Program.nodes in
  let drop_node =
    Seq.init n (fun i ->
        (inst, Program.make ~seed:p.Program.seed (drop_nth p.Program.nodes i)))
  in
  let silence_base =
    Seq.filter_map
      (fun i ->
        let np = List.nth p.Program.nodes i in
        if Program.base_equal np.Program.base Program.Silent then None
        else
          let nodes =
            List.mapi
              (fun j np' ->
                if j = i then { np' with Program.base = Program.Silent }
                else np')
              p.Program.nodes
          in
          Some (inst, Program.make ~seed:p.Program.seed nodes))
      (Seq.init n Fun.id)
  in
  let drop_inject =
    Seq.concat_map
      (fun i ->
        let np = List.nth p.Program.nodes i in
        Seq.init
          (List.length np.Program.injects)
          (fun j ->
            let nodes =
              List.mapi
                (fun k np' ->
                  if k = i then
                    { np' with Program.injects = drop_nth np.Program.injects j }
                  else np')
                p.Program.nodes
            in
            (inst, Program.make ~seed:p.Program.seed nodes)))
      (Seq.init n Fun.id)
  in
  let drop_graph_node =
    let protected =
      Nodeset.add inst.dealer
        (Nodeset.add inst.receiver (Program.corrupted p))
    in
    Graph.nodes inst.graph |> Nodeset.elements |> List.to_seq
    |> Seq.filter_map (fun v ->
           if Nodeset.mem v protected then None
           else
             Option.map (fun inst' -> (inst', p)) (shrink_instance inst v))
  in
  Seq.concat
    (List.to_seq [ drop_node; silence_base; drop_inject; drop_graph_node ])

(* ------------------------------------------------------------------ *)
(* Greedy fixpoint                                                     *)
(* ------------------------------------------------------------------ *)

let minimize ?(budget = 400) ~keep inst p =
  let evals = ref 0 in
  let try_keep inst' p' =
    !evals < budget
    && begin
         incr evals;
         keep inst' p'
       end
  in
  let rec fix inst p =
    let accepted =
      Seq.find (fun (inst', p') -> try_keep inst' p') (candidates inst p)
    in
    match accepted with
    | Some (inst', p') when !evals <= budget -> fix inst' p'
    | _ -> (inst, p)
  in
  fix inst p

(* ------------------------------------------------------------------ *)
(* Standard predicates                                                 *)
(* ------------------------------------------------------------------ *)

let same_constructor (a : Campaign.verdict) (b : Campaign.verdict) =
  match (a, b) with
  | Campaign.Delivered, Campaign.Delivered
  | Campaign.Silenced, Campaign.Silenced
  | Campaign.Violated _, Campaign.Violated _ -> true
  | _ -> false

let keep_verdict ?max_messages protocol ~x_dealer ~verdict inst p =
  let corrupted = Program.corrupted p in
  (not (Nodeset.is_empty corrupted))
  && Instance.admissible inst corrupted
  && begin
       let r = Campaign.execute ?max_messages protocol inst ~x_dealer p in
       same_constructor r.Campaign.verdict verdict
       && ((not (same_constructor verdict Campaign.Silenced))
           || not r.Campaign.truncated)
     end
