(** Attack programs — the serializable, shrinkable representation of a
    Byzantine strategy.

    A program assigns every corrupted node a {e base} behavior (what it
    does with the honest protocol it is replacing) and a list of
    {e injections} (forged traffic sprayed on top).  The vocabulary is the
    full strategy space the paper credits the adversary with: blocking,
    crashing, dropping, altering relayed values, forging propagation
    trails, lying about topology and local knowledge, and inventing
    fictitious nodes.  Programs are pure data — compiling one into an
    executable {!Rmt_net.Engine.strategy} is {!Strategy_gen}'s job — so
    they can be generated at random from a seed, minimized by delta
    debugging ({!Shrink}), and serialized into replay files ({!Replay}). *)

open Rmt_base

type base =
  | Honest  (** run the honest automaton faithfully *)
  | Silent  (** never send anything *)
  | Crash_after of int  (** honest through round [k], silent afterwards *)
  | Drop of float  (** honest, dropping each send with probability [p] *)

type inject =
  | Flip_value of int
      (** rewrite every relayed protocol value to the given fake *)
  | Forge_trail of int
      (** inject the fake value on a forged straight-from-the-dealer trail *)
  | Lie_topology
      (** advertise a forged own-report: a direct dealer edge plus a
          maximally permissive local structure *)
  | Phantom of int
      (** invent a fictitious node wired to the dealer; inject its report
          and the fake value routed through it *)
  | Forge_edges of int
      (** claim invented dealer/neighborhood edges and inject values whose
          trails run over them *)
  | Spam of { spam_seed : int; rounds : int }
      (** structurally random garbage for the first [rounds] rounds *)

type node_program = {
  node : int;
  base : base;
  injects : inject list;
}

type t = {
  seed : int;  (** drives every probabilistic choice during execution *)
  nodes : node_program list;  (** one entry per corrupted node, sorted *)
}

val make : seed:int -> node_program list -> t
(** Sorts the entries by node and drops duplicates (first wins). *)

val corrupted : t -> Nodeset.t

val size : t -> int
(** Shrinking measure: corrupted nodes + injections + non-trivial bases.
    Strictly decreases along every {!Shrink} step. *)

val weight : t -> int
(** Crude aggressiveness measure used by campaign summaries: number of
    injections plus one per non-honest base. *)

(** {1 Serialization}

    One line per corrupted node:
    [attack-node <id> <base> [<inject> ...]] with
    [<base> ::= honest | silent | crash:<k> | drop:<p>] and
    [<inject> ::= flip:<x> | forge-trail:<x> | lie-topology | phantom:<x>
    | forge-edges:<x> | spam:<seed>:<rounds>], plus a leading
    [attack-seed <n>] line.  The format is line-oriented so {!Replay} can
    interleave it with the {!Rmt_knowledge.Codec} instance text. *)

val to_lines : t -> string list

val of_lines : string list -> (t, string) result
(** Inverse of {!to_lines}; unknown keywords are an error. *)

val is_attack_line : string -> bool
(** Does the line belong to the attack-program vocabulary?  (Used by
    {!Replay} to split a reproducer file from the instance text.) *)

val pp : Format.formatter -> t -> unit

val base_equal : base -> base -> bool
val inject_equal : inject -> inject -> bool

val equal : t -> t -> bool
(** Structural equality, field by field; no polymorphic compare
    (rmt-lint R1) so it stays exact under [Drop] float payloads. *)
