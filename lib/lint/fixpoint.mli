(** Deterministic SCC condensation and monotone fixpoint solving over
    string-named graph nodes — the engine under {!Summary}.

    Both entry points normalize their inputs (nodes sorted and
    deduplicated, successor lists sorted, deduplicated and restricted to
    known nodes), so the results are independent of the order in which
    nodes and edges are supplied.  The property is pinned by the qcheck
    shuffle test in [test/lint/test_summary_order.ml]. *)

val scc :
  nodes:string list -> succs:(string -> string list) -> string list list
(** Strongly connected components, members sorted, components in reverse
    topological order of the condensation: every component reachable
    from [c] appears before [c].  For a call graph this means callees
    before callers — the bottom-up summary order. *)

val solve :
  nodes:string list ->
  succs:(string -> string list) ->
  equal:('a -> 'a -> bool) ->
  init:(string -> 'a) ->
  transfer:(get:(string -> 'a) -> string -> 'a) -> (string -> 'a)
(** [solve ~nodes ~succs ~equal ~init ~transfer] computes, bottom-up
    over the SCC condensation, the least fixpoint of [transfer] above
    [init].  Within a cyclic component members are iterated (in sorted
    order) until [equal] reports no change; acyclic singletons get
    exactly one transfer.  [transfer ~get n] must be monotone in the
    values [get] returns, or termination is the caller's problem.  The
    returned function reads the solved state ([init n] for unknown
    nodes). *)
