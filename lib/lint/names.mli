(** Name and type helpers shared by every rmt-lint pass.

    Path rendering in typedtrees is noisy: [Stdlib.] prefixes, dune's
    wrapped-library mangling ([Rmt_base__Nodeset]) and module-alias
    re-exports ([Rmt_base.Nodeset]) all denote the same definition.  The
    helpers here give the passes one canonical spelling to match on. *)

val strip_stdlib : string -> string
(** Drop a leading ["Stdlib."]. *)

val path_name : Path.t -> string
(** [Path.name] with the [Stdlib.] prefix stripped. *)

val qualified_matches : string list -> string -> bool
(** [qualified_matches ["Hashtbl.fold"] name]: exact match or
    dot-suffix match (so [Rmt_base.Nodeset.of_list] matches
    ["Nodeset.of_list"], but bare [compare] does not match
    ["Nodeset.compare"]). *)

val canonical_ref : string -> string
(** Canonical two-component form of a value reference:
    ["Rmt_base__Nodeset.compare"], ["Rmt_base.Nodeset.compare"] and
    ["Nodeset.compare"] all become ["Nodeset.compare"]; a bare local
    ident stays a single component. *)

val module_of_source : string -> string
(** ["lib/base/nodeset.ml"] ↦ ["Nodeset"] — the call-graph module name
    of a compilation unit. *)

val type_is_base : Types.type_expr -> bool
(** Structurally a base type (int, bool, char, string, float, unit, and
    tuples / lists / options / arrays / refs thereof). *)

val type_is_list : Types.type_expr -> bool

val show_type : Types.type_expr -> string
(** Printed form for messages; never raises. *)

val first_arg_type : Types.type_expr -> Types.type_expr option
(** Domain of an arrow type, if any. *)

val mutable_container : Types.type_expr -> string option
(** [Some kind] when the type's head constructor is a mutable container
    (ref, array, bytes, [Hashtbl.t], [Buffer.t], [Queue.t], [Stack.t],
    [Dynarray.t]). *)

val type_constr_names : Types.type_expr -> string list
(** Every type-constructor name mentioned in the type, canonicalized
    with {!canonical_ref}, sorted and deduplicated. *)
