open Typedtree

(* ------------------------------------------------------------------ *)
(* Summaries                                                           *)
(* ------------------------------------------------------------------ *)

type ref_site = {
  ref_name : string;
  ref_line : int;
}

type fanout = {
  fan_callee : string;
  fan_line : int;
  fan_col : int;
  fan_context : string;
  captured : (string * string) list;
  closure_refs : ref_site list;
  arg_fn : string option;
}

(* How a call-site argument was classified as function-valued.  A
   [Ho_alias] carries the canonicalized type-constructor name; whether
   that name is an arrow alias (type decider = ... -> ...) is only known
   once every unit's declarations are on the table, so the decision is
   deferred to {!build} — keeping per-unit summaries cacheable. *)
type ho_kind =
  | Ho_arrow
  | Ho_alias of string

type ho_arg = {
  ho_callee : string;
  ho_label : string;
  ho_line : int;
  ho_kind : ho_kind;
  ho_refs : string list;
  ho_params : string list;
}

type sink_kind =
  | Decided_assign
  | Verdict_construct of string

type sink_site = {
  sink_kind : sink_kind;
  sink_line : int;
  sink_col : int;
}

type fn_summary = {
  fn_name : string;
  fn_file : string;
  fn_line : int;
  params : string list;
  refs : ref_site list;
  inbox_param : bool;
  adversary_types : string list;
  sinks : sink_site list;
  mutable_global : string option;
  fanouts : fanout list;
  ho_args : ho_arg list;
}

type unit_summary = {
  u_source : string;
  u_module : string;
  u_functions : fn_summary list;
  u_arrow_aliases : string list;
      (* type aliases this unit declares whose manifest is an arrow *)
}

let sink_describe = function
  | Decided_assign -> "assignment to mutable field `decided'"
  | Verdict_construct c -> Printf.sprintf "verdict constructor `%s'" c

(* The adversary-payload type constructors whose appearance in a bound
   pattern marks the enclosing function as a taint source (R7), plus the
   one parameter name every Engine automaton receives deliveries
   through.  Kept here, next to the extraction, so the cached summaries
   and the passes can never disagree. *)
let source_type_names =
  [ "Flood.msg"; "Program.t"; "Program.inject"; "Engine.strategy" ]

let inbox_param_name = "inbox"

(* Fan-out entry points whose function argument crosses Domains (R6). *)
let fanout_names =
  [ "Parsweep.map"; "Parsweep.map_list"; "Timing.time_with_domains";
    "Domain.spawn" ]

let verdict_constructors = [ "Delivered"; "Silenced"; "Violated" ]

(* ------------------------------------------------------------------ *)
(* Extraction                                                          *)
(* ------------------------------------------------------------------ *)

let line_of (loc : Location.t) = loc.loc_start.Lexing.pos_lnum

let col_of (loc : Location.t) =
  loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol

(* Collect every ident bound by any pattern inside [e] — closure
   parameters and internal lets alike — so free-variable analysis can
   tell captured state from domain-local allocations. *)
let bound_idents_of_expr e =
  let acc = ref [] in
  let default = Tast_iterator.default_iterator in
  let pat : type k. Tast_iterator.iterator -> k general_pattern -> unit =
   fun sub p ->
    acc := pat_bound_idents p @ !acc;
    default.pat sub p
  in
  let iter = { default with pat } in
  iter.expr iter e;
  !acc

(* All global value references inside [e] (canonicalized), in source
   order. [locals] maps a unit-local top-level binding name to its
   qualified form. *)
let refs_of_expr ~locals e =
  let acc = ref [] in
  let default = Tast_iterator.default_iterator in
  let expr sub e =
    (match e.exp_desc with
     | Texp_ident (p, _, _) ->
       let name = Names.path_name p in
       let canonical =
         match p with
         | Path.Pident _ ->
           (match Hashtbl.find_opt locals name with
            | Some qualified -> qualified
            | None -> name)
         | _ -> Names.canonical_ref name
       in
       acc := { ref_name = canonical; ref_line = line_of e.exp_loc } :: !acc
     | _ -> ());
    default.expr sub e
  in
  let iter = { default with expr } in
  iter.expr iter e;
  List.rev !acc

let analyze_closure ~locals ~unit_locals (e : expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) ->
    let name = Names.path_name p in
    let canonical =
      match p with
      | Path.Pident _ ->
        (match Hashtbl.find_opt locals name with
         | Some qualified -> qualified
         | None -> name)
      | _ -> Names.canonical_ref name
    in
    ([], [], Some canonical)
  | _ ->
    let bound = bound_idents_of_expr e in
    let is_bound id = List.exists (fun b -> Ident.same b id) bound in
    let captured = ref [] in
    let add_captured name what =
      if not (List.mem_assoc name !captured) then
        captured := (name, what) :: !captured
    in
    let default = Tast_iterator.default_iterator in
    let expr sub e =
      (match e.exp_desc with
       | Texp_ident (Path.Pident id, _, _)
         when (not (is_bound id))
              && not (Hashtbl.mem unit_locals (Ident.name id)) ->
         (match Names.mutable_container e.exp_type with
          | Some kind -> add_captured (Ident.name id) kind
          | None -> ())
       | Texp_setfield (r, _, ld, _) ->
         (match r.exp_desc with
          | Texp_ident (Path.Pident id, _, _) when not (is_bound id) ->
            add_captured (Ident.name id)
              (Printf.sprintf "mutable field `%s'" ld.Types.lbl_name)
          | _ -> ())
       | _ -> ());
      default.expr sub e
    in
    let iter = { default with expr } in
    iter.expr iter e;
    (List.rev !captured, refs_of_expr ~locals e, None)

(* Parameter names of a binding, walking the leading fun chain.  An
   optional parameter's real name lives in its label (the pattern binds
   the compiler's [*opt*] cell); default-value lets between parameters
   are stepped over so [?(a = e) b] yields both names. *)
let params_of_binding e =
  let acc = ref [] in
  let add n =
    if (not (String.contains n '*')) && not (List.mem n !acc) then
      acc := n :: !acc
  in
  let add_pat p = List.iter (fun id -> add (Ident.name id)) (pat_bound_idents p) in
  let rec go e =
    match e.exp_desc with
    | Texp_function { arg_label; cases; _ } ->
      (match arg_label with
       | Asttypes.Labelled n | Asttypes.Optional n -> add n
       | Asttypes.Nolabel -> ());
      (match cases with
       | [ c ] ->
         add_pat c.c_lhs;
         go c.c_rhs
       | cs -> List.iter (fun c -> add_pat c.c_lhs) cs)
    | Texp_let (_, _, body) -> go body
    | _ -> ()
  in
  go e;
  List.rev !acc

(* Strip the [Some _] wrapper the typechecker inserts when a value is
   passed directly to an optional parameter. *)
let peel_optional e =
  match e.exp_desc with
  | Texp_construct (_, cd, [ inner ])
    when String.equal cd.Types.cstr_name "Some" ->
    inner
  | _ -> e

(* A call-site argument participates in higher-order resolution when it
   can carry behavior into the callee: a literal closure or packed
   module always does; an identifier or (partial) application only when
   its type is an arrow — or a named alias ([Ho_alias]) that {!build}
   may later recognize as one.  Data-typed arguments must be skipped or
   every [Nodeset.equal (f x) y] call would pollute the instantiation
   sets with [f]. *)
let rec arrow_kind ty =
  match Types.get_desc ty with
  | Types.Tarrow _ -> Some Ho_arrow
  | Types.Tpoly (t, _) -> arrow_kind t
  | Types.Tconstr (p, _, _) ->
    Some (Ho_alias (Names.canonical_ref (Names.path_name p)))
  | _ -> None

let functionish e =
  match e.exp_desc with
  | Texp_function _ | Texp_pack _ -> Some Ho_arrow
  | Texp_apply _ | Texp_ident _ -> arrow_kind e.exp_type
  | _ -> None

(* Names of the enclosing binding's parameters that [e] mentions as free
   local identifiers — the hook for parameter-flow propagation
   (instantiations of the caller flow into the callee). *)
let param_mentions ~locals ~params e =
  if params = [] then []
  else begin
    let bound = bound_idents_of_expr e in
    let is_bound id = List.exists (fun b -> Ident.same b id) bound in
    let acc = ref [] in
    let default = Tast_iterator.default_iterator in
    let expr sub e =
      (match e.exp_desc with
       | Texp_ident (Path.Pident id, _, _)
         when (not (is_bound id))
              && (not (Hashtbl.mem locals (Ident.name id)))
              && List.mem (Ident.name id) params
              && not (List.mem (Ident.name id) !acc) ->
         acc := Ident.name id :: !acc
       | _ -> ());
      default.expr sub e
    in
    let iter = { default with expr } in
    iter.expr iter e;
    List.sort String.compare !acc
  end

let record_with_mutable_field e =
  match e.exp_desc with
  | Texp_record { fields; _ } ->
    Array.exists
      (fun (ld, _) ->
        match ld.Types.lbl_mut with
        | Asttypes.Mutable -> true
        | Asttypes.Immutable -> false)
      fields
  | _ -> false

let rec module_structure me =
  match me.mod_desc with
  | Tmod_structure inner -> Some inner
  | Tmod_constraint (inner, _, _, _) -> module_structure inner
  | _ -> None

(* First pass: the names of every value binding reachable by a static
   module path in this unit, mapped to their qualified form.  Doing this
   before the main pass makes the analysis independent of declaration
   order (the qcheck shuffle test pins this). *)
let collect_locals ~module_name str =
  let locals = Hashtbl.create 64 in
  let rec go prefix str =
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              List.iter
                (fun id ->
                  let name = Ident.name id in
                  if not (Hashtbl.mem locals name) then
                    Hashtbl.replace locals name (prefix ^ "." ^ name))
                (pat_bound_idents vb.vb_pat))
            vbs
        | Tstr_module mb ->
          (match (mb.mb_id, module_structure mb.mb_expr) with
           | Some id, Some inner ->
             go (prefix ^ "." ^ Ident.name id) inner
           | _ -> ())
        | _ -> ())
      str.str_items
  in
  go module_name str;
  locals

let summarize ~source str =
  let module_name = Names.module_of_source source in
  let locals = collect_locals ~module_name str in
  (* names only, for captured-variable analysis *)
  let unit_locals = Hashtbl.create 64 in
  Hashtbl.iter
    (fun name _ -> Hashtbl.replace unit_locals name ())
    locals;
  let functions = ref [] in
  let summarize_binding ~prefix vb =
    let fn_name =
      match pat_bound_idents vb.vb_pat with
      | id :: _ -> prefix ^ "." ^ Ident.name id
      | [] -> prefix ^ ".(pattern)"
    in
    let fn_line = line_of vb.vb_loc in
    let params = params_of_binding vb.vb_expr in
    let refs = ref [] in
    let inbox = ref false in
    let adv_types = ref [] in
    let sinks = ref [] in
    let fanouts = ref [] in
    let ho_args = ref [] in
    let default = Tast_iterator.default_iterator in
    let pat : type k. Tast_iterator.iterator -> k general_pattern -> unit =
     fun sub p ->
      List.iter
        (fun id ->
          if String.equal (Ident.name id) inbox_param_name then inbox := true)
        (pat_bound_idents p);
      List.iter
        (fun tname ->
          if
            Names.qualified_matches source_type_names tname
            && not (List.mem tname !adv_types)
          then adv_types := tname :: !adv_types)
        (Names.type_constr_names p.pat_type);
      default.pat sub p
    in
    let record_ref p loc =
      let name = Names.path_name p in
      let canonical =
        match p with
        | Path.Pident _ ->
          (match Hashtbl.find_opt locals name with
           | Some qualified -> qualified
           | None -> name)
        | _ -> Names.canonical_ref name
      in
      refs := { ref_name = canonical; ref_line = line_of loc } :: !refs;
      canonical
    in
    let expr sub e =
      (match e.exp_desc with
       | Texp_ident (p, _, _) -> ignore (record_ref p e.exp_loc)
       | Texp_setfield (_, _, ld, _) ->
         if String.equal ld.Types.lbl_name "decided" then
           sinks :=
             {
               sink_kind = Decided_assign;
               sink_line = line_of e.exp_loc;
               sink_col = col_of e.exp_loc;
             }
             :: !sinks
       | Texp_construct (_, cd, _)
         when List.mem cd.Types.cstr_name verdict_constructors ->
         sinks :=
           {
             sink_kind = Verdict_construct cd.Types.cstr_name;
             sink_line = line_of e.exp_loc;
             sink_col = col_of e.exp_loc;
           }
           :: !sinks
       | Texp_apply (fn, args) ->
         (match fn.exp_desc with
          | Texp_ident (p, _, _) ->
            let canonical = Names.canonical_ref (Names.path_name p) in
            (* higher-order argument sites: what behavior flows into the
               callee, and through which of our own parameters *)
            let callee =
              match p with
              | Path.Pident _ ->
                (match Hashtbl.find_opt locals (Names.path_name p) with
                 | Some qualified -> qualified
                 | None -> Names.path_name p)
              | _ -> canonical
            in
            List.iter
              (fun (label, a) ->
                match a with
                | None -> ()
                | Some a ->
                  let a = peel_optional a in
                  (match functionish a with
                   | None -> ()
                   | Some ho_kind ->
                     let ho_refs =
                       refs_of_expr ~locals a
                       |> List.map (fun r -> r.ref_name)
                       |> List.sort_uniq String.compare
                     in
                     let ho_params = param_mentions ~locals ~params a in
                     if ho_refs <> [] || ho_params <> [] then
                       ho_args :=
                         {
                           ho_callee = callee;
                           ho_label =
                             (match label with
                              | Asttypes.Labelled n | Asttypes.Optional n ->
                                n
                              | Asttypes.Nolabel -> "");
                           ho_line = line_of fn.exp_loc;
                           ho_kind;
                           ho_refs;
                           ho_params;
                         }
                         :: !ho_args))
              args;
            if List.exists (String.equal canonical) fanout_names then begin
              let closure =
                List.find_map
                  (fun (label, a) ->
                    match (label, a) with
                    | Asttypes.Nolabel, Some a -> Some a
                    | _ -> None)
                  args
              in
              match closure with
              | Some c ->
                let captured, closure_refs, arg_fn =
                  analyze_closure ~locals ~unit_locals c
                in
                fanouts :=
                  {
                    fan_callee = canonical;
                    fan_line = line_of fn.exp_loc;
                    fan_col = col_of fn.exp_loc;
                    fan_context =
                      (match String.index_opt fn_name '.' with
                       | Some i ->
                         String.sub fn_name (i + 1)
                           (String.length fn_name - i - 1)
                       | None -> fn_name);
                    captured;
                    closure_refs;
                    arg_fn;
                  }
                  :: !fanouts
              | None -> ()
            end
          | _ -> ())
       | _ -> ());
      default.expr sub e
    in
    let iter = { default with expr; pat } in
    iter.expr iter vb.vb_expr;
    {
      fn_name;
      fn_file = source;
      fn_line;
      params;
      refs = List.rev !refs;
      inbox_param = !inbox;
      adversary_types = List.sort String.compare !adv_types;
      sinks = List.rev !sinks;
      mutable_global =
        (match Names.mutable_container vb.vb_expr.exp_type with
         | Some kind -> Some kind
         | None ->
           if record_with_mutable_field vb.vb_expr then
             Some "record with mutable fields"
           else None);
      fanouts = List.rev !fanouts;
      ho_args = List.rev !ho_args;
    }
  in
  let arrow_aliases = ref [] in
  let record_arrow_alias ~prefix (d : type_declaration) =
    match d.typ_manifest with
    | Some { ctyp_desc = Ttyp_arrow _; _ } ->
      let name = Ident.name d.typ_id in
      let qualified = prefix ^ "." ^ name in
      arrow_aliases := Names.canonical_ref qualified :: !arrow_aliases;
      (* within the declaring module the constructor path is bare; keep
         the short form too, except the ubiquitous [t] *)
      if not (String.equal name "t") then
        arrow_aliases := name :: !arrow_aliases
    | _ -> ()
  in
  let rec go prefix str =
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
          List.iter
            (fun vb -> functions := summarize_binding ~prefix vb :: !functions)
            vbs
        | Tstr_type (_, decls) ->
          List.iter (record_arrow_alias ~prefix) decls
        | Tstr_module mb ->
          (match (mb.mb_id, module_structure mb.mb_expr) with
           | Some id, Some inner ->
             go (prefix ^ "." ^ Ident.name id) inner
           | _ -> ())
        | _ -> ())
      str.str_items
  in
  go module_name str;
  {
    u_source = source;
    u_module = module_name;
    u_functions = List.rev !functions;
    u_arrow_aliases = List.sort_uniq String.compare !arrow_aliases;
  }

(* ------------------------------------------------------------------ *)
(* The graph                                                           *)
(* ------------------------------------------------------------------ *)

type t = {
  by_name : (string, fn_summary) Hashtbl.t;  (* qualified fn name *)
  by_canonical : (string, string) Hashtbl.t;  (* last-two-components key *)
  fns : fn_summary list;  (* sorted by fn_name *)
}

let build units =
  let by_name = Hashtbl.create 256 in
  let by_canonical = Hashtbl.create 256 in
  (* Now that every unit's type declarations are known, settle which
     [Ho_alias] arguments name an arrow alias; the rest are data and
     must not feed the instantiation sets. *)
  let arrow_aliases = Hashtbl.create 16 in
  List.iter
    (fun u ->
      List.iter
        (fun a -> Hashtbl.replace arrow_aliases a ())
        u.u_arrow_aliases)
    units;
  let keep_ho (h : ho_arg) =
    match h.ho_kind with
    | Ho_arrow -> true
    | Ho_alias n -> Hashtbl.mem arrow_aliases n
  in
  List.iter
    (fun u ->
      List.iter
        (fun f ->
          let f = { f with ho_args = List.filter keep_ho f.ho_args } in
          if not (Hashtbl.mem by_name f.fn_name) then begin
            Hashtbl.replace by_name f.fn_name f;
            (* Two units may both define a [Structure.restrict]-style
               nested name whose canonical forms collide; keep the
               lexicographically smallest qualified name so resolution
               does not depend on the order units were supplied in. *)
            let canonical = Names.canonical_ref f.fn_name in
            match Hashtbl.find_opt by_canonical canonical with
            | Some prev when String.compare prev f.fn_name <= 0 -> ()
            | _ -> Hashtbl.replace by_canonical canonical f.fn_name
          end)
        u.u_functions)
    units;
  let fns =
    Hashtbl.fold (fun _ f acc -> f :: acc) by_name []
    |> List.sort (fun a b -> String.compare a.fn_name b.fn_name)
  in
  { by_name; by_canonical; fns }

let functions t = t.fns

let find t name = Hashtbl.find_opt t.by_name name

let resolve t ref_name =
  match Hashtbl.find_opt t.by_name ref_name with
  | Some _ -> Some ref_name
  | None -> Hashtbl.find_opt t.by_canonical (Names.canonical_ref ref_name)

let callees t fn =
  match find t fn with
  | None -> []
  | Some f ->
    List.filter_map
      (fun r ->
        match resolve t r.ref_name with
        | Some callee when not (String.equal callee fn) -> Some callee
        | _ -> None)
      f.refs
    |> List.sort_uniq String.compare

let callers t fn =
  List.filter_map
    (fun f ->
      if List.exists (String.equal fn) (callees t f.fn_name) then
        Some f.fn_name
      else None)
    t.fns
  |> List.sort_uniq String.compare

(* Forward closure: every name in [mark] plus everything that reaches a
   marked function through calls.  Classic reverse propagation to a
   fixpoint; the graph is small (hundreds of nodes). *)
let reaches t ~marked =
  let state = Hashtbl.create 256 in
  List.iter (fun f -> if marked f then Hashtbl.replace state f.fn_name ()) t.fns;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun f ->
        if not (Hashtbl.mem state f.fn_name) then
          if
            List.exists (fun c -> Hashtbl.mem state c) (callees t f.fn_name)
          then begin
            Hashtbl.replace state f.fn_name ();
            changed := true
          end)
      t.fns
  done;
  fun name -> Hashtbl.mem state name

(* Shortest call path from [start] to any function satisfying [accept],
   visiting only functions satisfying [admit].  Deterministic: neighbors
   are explored in sorted order. *)
let shortest_path t ~admit ~accept start =
  if not (admit start) then None
  else begin
    let parent = Hashtbl.create 64 in
    let queue = Queue.create () in
    Hashtbl.replace parent start None;
    Queue.add start queue;
    let found = ref None in
    while !found = None && not (Queue.is_empty queue) do
      let fn = Queue.pop queue in
      if accept fn then found := Some fn
      else
        List.iter
          (fun c ->
            if admit c && not (Hashtbl.mem parent c) then begin
              Hashtbl.replace parent c (Some fn);
              Queue.add c queue
            end)
          (callees t fn)
    done;
    match !found with
    | None -> None
    | Some last ->
      let rec unwind acc fn =
        match Hashtbl.find_opt parent fn with
        | Some (Some prev) -> unwind (fn :: acc) prev
        | _ -> fn :: acc
      in
      Some (unwind [] last)
  end

let to_dot t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph rmt_callgraph {\n";
  Buffer.add_string buf "  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" [label=\"%s\\n%s:%d\"];\n" f.fn_name
           f.fn_name f.fn_file f.fn_line))
    t.fns;
  List.iter
    (fun f ->
      List.iter
        (fun callee ->
          Buffer.add_string buf
            (Printf.sprintf "  \"%s\" -> \"%s\";\n" f.fn_name callee))
        (callees t f.fn_name))
    t.fns;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let stats t =
  let edges =
    List.fold_left (fun acc f -> acc + List.length (callees t f.fn_name)) 0
      t.fns
  in
  (List.length t.fns, edges)
