(* R6 — Domain-race escape analysis over the call graph.

   Judged per fan-out call site (Parsweep.map / map_list /
   Timing.time_with_domains / Domain.spawn):

   1. the closure argument must not capture a mutable container
      allocated outside itself (domain-local allocations are invisible
      here by construction: their binders live inside the closure);
   2. nothing the closure calls — transitively, across modules — may
      touch top-level mutable state.  Top-level mutable bindings are
      graph nodes (Callgraph records them with [mutable_global]), so
      "touches" is plain reachability and the witnessing call chain is a
      BFS path.

   lib/workloads/parsweep.ml is the sanctioned engine: its result array
   is written at disjoint indices and read only after Domain.join, a
   protocol this flow-insensitive pass cannot see. *)

let exempt_file file =
  String.ends_with ~suffix:"lib/workloads/parsweep.ml" file
  || String.equal file "parsweep.ml"

(* Mutable globals living in the sanctioned hash-consing module are not
   race targets: every access path in lib/core/hc.ml locks the one
   global mutex (see the R4 carve-out in rules.ml), so a closure whose
   only transitive mutable reach is hc.ml is fan-out safe.  Without this
   filter, routing the restriction memos through Hc would flag every
   Parsweep sweep that touches a cut decider.  The property the filter
   leans on is tested at runtime: test/core/test_hc.ml hammers the
   tables from four domains. *)
let sanctioned_target file =
  String.ends_with ~suffix:"lib/core/hc.ml" file || String.equal file "hc.ml"

(* lib/net/mcast.ml is the second sanctioned fan-out engine, for the
   captured-mutable branch: its workers share the per-domain mailbox
   matrix and the barrier gate arrays by design.  Every shared slot is
   written by exactly one domain per phase and read by others only
   after the phase barrier (an Atomic handoff, with a Mutex/Condition
   slow path), a single-writer-per-phase protocol this flow-insensitive
   pass cannot see.  The property the carve-out leans on is pinned at
   runtime: test/net/test_transport.ml proves mcast outcomes are
   bit-for-bit the sequential engine's for every domain count. *)
let sanctioned_capture file =
  String.ends_with ~suffix:"lib/net/mcast.ml" file
  || String.equal file "mcast.ml"

let rule = "R6"

let analyze graph =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  List.iter
    (fun (f : Callgraph.fn_summary) ->
      if not (exempt_file f.fn_file) then
        List.iter
          (fun (fo : Callgraph.fanout) ->
            (* captured mutable state *)
            List.iter
              (fun (var, kind) ->
                if not (sanctioned_capture f.fn_file) then
                  add
                  (Finding.make ~rule ~file:f.fn_file ~line:fo.fan_line
                     ~col:fo.fan_col ~context:fo.fan_context
                     (Printf.sprintf
                        "closure passed to %s captures mutable %s `%s' \
                         allocated outside it; every domain of the \
                         fan-out shares it unsynchronized — allocate it \
                         inside the closure or aggregate after the join"
                        fo.fan_callee kind var)))
              fo.captured;
            (* transitive access to top-level mutable state *)
            let roots =
              (match fo.arg_fn with
               | Some a -> [ a ]
               | None -> [])
              @ List.map
                  (fun (r : Callgraph.ref_site) -> r.ref_name)
                  fo.closure_refs
            in
            let roots =
              List.filter_map (Callgraph.resolve graph) roots
              |> List.sort_uniq String.compare
            in
            let accept name =
              match Callgraph.find graph name with
              | Some g ->
                g.mutable_global <> None
                && not (sanctioned_target g.fn_file)
              | None -> false
            in
            let seen = Hashtbl.create 8 in
            List.iter
              (fun root ->
                match
                  Callgraph.shortest_path graph
                    ~admit:(fun _ -> true)
                    ~accept root
                with
                | None -> ()
                | Some path ->
                  let target = List.nth path (List.length path - 1) in
                  if not (Hashtbl.mem seen target) then begin
                    Hashtbl.replace seen target ();
                    let kind =
                      match Callgraph.find graph target with
                      | Some g ->
                        Option.value g.mutable_global ~default:"container"
                      | None -> "container"
                    in
                    let chain =
                      List.map
                        (fun name ->
                          match Callgraph.find graph name with
                          | Some g ->
                            {
                              Finding.hop_fn = name;
                              hop_file = g.fn_file;
                              hop_line = g.fn_line;
                            }
                          | None ->
                            {
                              Finding.hop_fn = name;
                              hop_file = "?";
                              hop_line = 0;
                            })
                        path
                    in
                    add
                      (Finding.make ~rule ~file:f.fn_file ~line:fo.fan_line
                         ~col:fo.fan_col ~context:fo.fan_context ~chain
                         (Printf.sprintf
                            "closure passed to %s transitively reaches \
                             top-level mutable state `%s' (%s), shared \
                             across every domain of the fan-out; thread \
                             it through arguments or use Atomic"
                            fo.fan_callee target kind))
                  end)
              roots)
          f.fanouts)
    (Callgraph.functions graph);
  List.sort Finding.compare !findings
