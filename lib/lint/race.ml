(* R6 — Domain-race escape analysis over the call graph.

   Judged per fan-out call site (Parsweep.map / map_list /
   Timing.time_with_domains / Domain.spawn):

   1. the closure argument must not capture a mutable container
      allocated outside itself (domain-local allocations are invisible
      here by construction: their binders live inside the closure);
   2. nothing the closure calls — transitively, across modules — may
      touch top-level mutable state.  Top-level mutable bindings are
      graph nodes (Callgraph records them with [mutable_global]), so
      "touches" is plain reachability and the witnessing call chain is a
      BFS path.

   lib/workloads/parsweep.ml is the sanctioned engine: its result array
   is written at disjoint indices and read only after Domain.join, a
   protocol this flow-insensitive pass cannot see. *)

let exempt_file file =
  String.ends_with ~suffix:"lib/workloads/parsweep.ml" file
  || String.equal file "parsweep.ml"

(* Lock-protected mutable globals (Hc's interned tables and memo
   caches, proven by the summary store's locked-only analysis) are not
   race targets; barrier-disciplined spawn closures (Mcast's workers,
   which synchronize every phase on the Gate) hand their capture
   obligations to R8.  Both were hand-written file carve-outs before the
   summary store existed; now they are analysis results, and a
   regression — an Hc entry point that skips [locked], an Mcast worker
   that drops the barrier — resurfaces here as a finding. *)

let rule = "R6"

let analyze store =
  let graph = Summary.graph store in
  let findings = ref [] in
  let add f = findings := f :: !findings in
  List.iter
    (fun (f : Callgraph.fn_summary) ->
      if not (exempt_file f.fn_file) then
        List.iter
          (fun (fo : Callgraph.fanout) ->
            (* captured mutable state; a barrier-synchronized closure's
               captures are R8's obligation instead *)
            List.iter
              (fun (var, kind) ->
                if not (Summary.barrier_disciplined fo) then
                  add
                  (Finding.make ~rule ~file:f.fn_file ~line:fo.fan_line
                     ~col:fo.fan_col ~context:fo.fan_context
                     (Printf.sprintf
                        "closure passed to %s captures mutable %s `%s' \
                         allocated outside it; every domain of the \
                         fan-out shares it unsynchronized — allocate it \
                         inside the closure or aggregate after the join"
                        fo.fan_callee kind var)))
              fo.captured;
            (* transitive access to top-level mutable state *)
            let roots =
              (match fo.arg_fn with
               | Some a -> [ a ]
               | None -> [])
              @ List.map
                  (fun (r : Callgraph.ref_site) -> r.ref_name)
                  fo.closure_refs
            in
            let roots =
              List.filter_map (Callgraph.resolve graph) roots
              |> List.sort_uniq String.compare
            in
            let accept name =
              match Callgraph.find graph name with
              | Some g ->
                g.mutable_global <> None
                && not (Summary.lock_protected store g.fn_name)
              | None -> false
            in
            let seen = Hashtbl.create 8 in
            List.iter
              (fun root ->
                match
                  Callgraph.shortest_path graph
                    ~admit:(fun _ -> true)
                    ~accept root
                with
                | None -> ()
                | Some path ->
                  let target = List.nth path (List.length path - 1) in
                  if not (Hashtbl.mem seen target) then begin
                    Hashtbl.replace seen target ();
                    let kind =
                      match Callgraph.find graph target with
                      | Some g ->
                        Option.value g.mutable_global ~default:"container"
                      | None -> "container"
                    in
                    let chain =
                      List.map
                        (fun name ->
                          match Callgraph.find graph name with
                          | Some g ->
                            {
                              Finding.hop_fn = name;
                              hop_file = g.fn_file;
                              hop_line = g.fn_line;
                            }
                          | None ->
                            {
                              Finding.hop_fn = name;
                              hop_file = "?";
                              hop_line = 0;
                            })
                        path
                    in
                    add
                      (Finding.make ~rule ~file:f.fn_file ~line:fo.fan_line
                         ~col:fo.fan_col ~context:fo.fan_context ~chain
                         (Printf.sprintf
                            "closure passed to %s transitively reaches \
                             top-level mutable state `%s' (%s), shared \
                             across every domain of the fan-out; thread \
                             it through arguments or use Atomic"
                            fo.fan_callee target kind))
                  end)
              roots)
          f.fanouts)
    (Callgraph.functions graph);
  List.sort Finding.compare !findings
