(* Incremental analysis cache, keyed by cmt content digest.

   Everything the interprocedural passes need from a compilation unit —
   its intraprocedural findings and its Callgraph.unit_summary — is
   plain serializable data, so a warm run can skip reading (and
   re-walking) the typedtree of every unchanged unit entirely: one
   Digest.file per cmt, then the graph is rebuilt from cached summaries
   and R6/R7 re-run from there (they are whole-program and cheap).

   The file format is a Marshal pair written atomically: a version
   string first (checked before anything shape-dependent is read — the
   analyzer version and the compiler version both participate, since
   marshaled typedtree-derived data is not portable across either), then
   the sorted entry list.  Any read failure degrades to an empty cache:
   correctness never depends on this file. *)

type entry =
  | Skipped
      (** the cmt is not an analyzable implementation under the lint
          roots (interface, generated alias module, out-of-tree) *)
  | Analyzed of {
      source : string;
      has_mli : bool;
      intra : Finding.t list;  (** structural findings only, no R5 *)
      summary : Callgraph.unit_summary;
      model : Model.unit_model;  (** protocol-model fragment for R9/R10 *)
    }

(* Bump the leading counter whenever Finding.t, the summary types or the
   rule semantics change — a stale hit would silently resurrect old
   findings.  Both the compiler version and the cmt format magic
   participate: marshaled typedtree-derived data is not portable across
   either, and the magic changes even on patch releases that keep
   [Sys.ocaml_version]-compatible sources. *)
let version =
  "rmt-lint-cache/3:" ^ Sys.ocaml_version ^ ":" ^ Config.cmt_magic_number

type t = {
  entries : (string, string * entry) Hashtbl.t;
  mutable summaries : (string * Summary.effects list) option;
      (** whole-store effect summaries, keyed by the combined digest of
          every cmt that fed the graph *)
}

let empty () = { entries = Hashtbl.create 64; summaries = None }

let default_path = "_build/rmt-lint.cache"

let load path =
  if not (Sys.file_exists path) then empty ()
  else
    match
      In_channel.with_open_bin path (fun ic ->
          let v : string = Marshal.from_channel ic in
          if not (String.equal v version) then None
          else
            let bindings : (string * (string * entry)) list =
              Marshal.from_channel ic
            in
            let summaries : (string * Summary.effects list) option =
              Marshal.from_channel ic
            in
            Some (bindings, summaries))
    with
    | exception _ -> empty ()
    | None -> empty ()
    | Some (bindings, summaries) ->
      let t = empty () in
      List.iter (fun (k, ve) -> Hashtbl.replace t.entries k ve) bindings;
      t.summaries <- summaries;
      t

let lookup t ~cmt_path ~digest =
  match Hashtbl.find_opt t.entries cmt_path with
  | Some (d, e) when String.equal d digest -> Some e
  | _ -> None

let store t ~cmt_path ~digest entry =
  Hashtbl.replace t.entries cmt_path (digest, entry)

let lookup_summaries t ~key =
  match t.summaries with
  | Some (k, effs) when String.equal k key -> Some effs
  | _ -> None

let store_summaries t ~key effs = t.summaries <- Some (key, effs)

let size t = Hashtbl.length t.entries

let save path t =
  let bindings =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.entries []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let dir = Filename.dirname path in
  if Sys.file_exists dir then begin
    let tmp = path ^ ".tmp" in
    Out_channel.with_open_bin tmp (fun oc ->
        Marshal.to_channel oc version [];
        Marshal.to_channel oc bindings [];
        Marshal.to_channel oc t.summaries []);
    Sys.rename tmp path
  end
