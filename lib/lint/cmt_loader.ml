type unit_info = {
  cmt_path : string;
  source : string;
  has_mli : bool;
  structure : Typedtree.structure;
}

(* The leading bytes of a cmt are its format magic; probing them turns
   an opaque Cmi_format/Cmt_format exception from a stale-compiler build
   tree into an actionable message naming both magics. *)
let probe_magic path =
  let n = String.length Config.cmt_magic_number in
  match
    In_channel.with_open_bin path (fun ic -> really_input_string ic n)
  with
  | magic -> Some magic
  | exception _ -> None

let read_cmt cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | exception exn ->
    let expected = Config.cmt_magic_number in
    (match probe_magic cmt_path with
     | Some found when not (String.equal found expected) ->
       Error
         (Printf.sprintf
            "cannot read %s: cmt format magic mismatch (expected %S for \
             OCaml %s, found %S) — the build tree was produced by a \
             different compiler; rerun `dune build @check`"
            cmt_path expected Sys.ocaml_version found)
     | _ ->
       Error
         (Printf.sprintf "cannot read %s: %s" cmt_path
            (Printexc.to_string exn)))
  | infos ->
    (match (infos.Cmt_format.cmt_annots, infos.Cmt_format.cmt_sourcefile) with
     | Cmt_format.Implementation str, Some source
       when Filename.check_suffix source ".ml" ->
       let cmti = Filename.remove_extension cmt_path ^ ".cmti" in
       Ok
         (Some
            {
              cmt_path;
              source;
              has_mli = Sys.file_exists cmti;
              structure = str;
            })
     | _ -> Ok None)

let under_one_of dirs source =
  List.exists
    (fun d ->
      let d =
        if String.length d > 0 && d.[String.length d - 1] = '/' then d
        else d ^ "/"
      in
      String.starts_with ~prefix:d source)
    dirs

let cmt_paths ~build_dir =
  if not (Sys.file_exists build_dir && Sys.is_directory build_dir) then
    Error
      (Printf.sprintf
         "build directory %s not found; run `dune build @check` first"
         build_dir)
  else begin
    let paths = ref [] in
    let rec walk dir =
      match Sys.readdir dir with
      | exception Sys_error _ -> ()
      | entries ->
        Array.sort String.compare entries;
        Array.iter
          (fun entry ->
            let path = Filename.concat dir entry in
            if Sys.is_directory path then walk path
            else if Filename.check_suffix path ".cmt" then
              paths := path :: !paths)
          entries
    in
    walk build_dir;
    Ok (List.sort String.compare !paths)
  end

let scan ~build_dir ~dirs =
  match cmt_paths ~build_dir with
  | Error e -> Error e
  | Ok paths ->
    let units = ref [] in
    let errors = ref [] in
    List.iter
      (fun path ->
        match read_cmt path with
        | Ok (Some u) when under_one_of dirs u.source -> units := u :: !units
        | Ok _ -> ()
        | Error e -> errors := e :: !errors)
      paths;
    (match !errors with
     | e :: _ -> Error e
     | [] ->
       Ok (List.sort (fun a b -> String.compare a.source b.source) !units))
