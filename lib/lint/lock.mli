(** R4 + R8 — lock discipline as verified obligations over the summary
    store.

    R4 flags top-level mutable bindings the store cannot prove
    lock-protected (see {!Summary.lock_protected}); the old hc.ml
    carve-outs are gone because hc.ml now passes by analysis.  R8 checks
    the compute-outside-lock pattern (no re-entrant acquisition, no
    allocation-heavy compute inside a critical section), raw-lock
    hygiene (no may-raise call between [Mutex.lock] and [Mutex.unlock]
    without [Fun.protect]) and barrier-capture discipline (Domain.spawn
    closures synchronizing on a phase barrier may only capture
    per-domain indexable containers). *)

val rule : string

val analyze : Summary.store -> Finding.t list
(** All R4 and R8 findings, sorted. *)
