type entry = {
  rule : string;
  fingerprint : string;
  file : string;
  justification : string;
}

let parse_line line =
  let stripped = String.trim line in
  if stripped = "" || stripped.[0] = '#' then Ok None
  else begin
    let body, justification =
      match String.index_opt stripped '#' with
      | None -> (stripped, "")
      | Some i ->
        ( String.trim (String.sub stripped 0 i),
          String.trim
            (String.sub stripped (i + 1) (String.length stripped - i - 1)) )
    in
    match
      String.split_on_char ' ' body |> List.filter (fun s -> s <> "")
    with
    | [ rule; fingerprint; file ] ->
      Ok (Some { rule; fingerprint; file; justification })
    | _ ->
      Error
        (Printf.sprintf "expected '<rule> <fingerprint> <file> # why': %S"
           stripped)
  end

let load path =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "baseline file %s does not exist" path)
  else begin
    let ic = open_in path in
    let rec go n acc =
      match input_line ic with
      | exception End_of_file -> Ok (List.rev acc)
      | line ->
        (match parse_line line with
         | Ok None -> go (n + 1) acc
         | Ok (Some e) -> go (n + 1) (e :: acc)
         | Error e -> Error (Printf.sprintf "%s:%d: %s" path n e))
    in
    let r = go 1 [] in
    close_in ic;
    r
  end

let save path findings =
  let oc = open_out path in
  output_string oc
    "# rmt-lint baseline: pinned findings, one per line.\n\
     # Format: <rule> <fingerprint> <file> # justification\n\
     # Regenerate with `make lint-baseline`, then replace every JUSTIFY\n\
     # placeholder with an argument for why the finding is acceptable.\n";
  (* Fingerprints hash (rule, file, context, message), so several
     findings — e.g. two calls on adjacent lines of one function — can
     share one; a single entry suppresses them all.  Emit each once. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let fp = Finding.fingerprint f in
      if not (Hashtbl.mem seen (f.Finding.rule, fp)) then begin
        Hashtbl.add seen (f.Finding.rule, fp) ();
        output_string oc
          (Printf.sprintf "%s %s %s # JUSTIFY: %s\n" f.Finding.rule fp
             f.Finding.file f.Finding.message)
      end)
    (List.sort Finding.compare findings);
  close_out oc

let partition entries findings =
  let matches f e =
    String.equal e.rule f.Finding.rule
    && String.equal e.fingerprint (Finding.fingerprint f)
  in
  let fresh =
    List.filter (fun f -> not (List.exists (matches f) entries)) findings
  in
  let stale =
    List.filter
      (fun e -> not (List.exists (fun f -> matches f e) findings))
      entries
  in
  (fresh, stale)
