let strip_stdlib name =
  if String.length name > 7 && String.equal (String.sub name 0 7) "Stdlib."
  then String.sub name 7 (String.length name - 7)
  else name

let path_name p = strip_stdlib (Path.name p)

let qualified_matches candidates name =
  List.exists
    (fun m ->
      String.equal name m || String.ends_with ~suffix:("." ^ m) name)
    candidates

(* Dune's wrapped libraries mangle cross-library references into
   [Rmt_base__Nodeset.compare]; the module-alias route renders as
   [Rmt_base.Nodeset.compare].  Both must resolve to the same call-graph
   node as the defining unit's own [Nodeset.compare]. *)
let split_on_string ~sep s =
  let ls = String.length sep and n = String.length s in
  let rec go start i acc =
    if i + ls > n then List.rev (String.sub s start (n - start) :: acc)
    else if String.equal (String.sub s i ls) sep then
      go (i + ls) (i + ls) (String.sub s start (i - start) :: acc)
    else go start (i + 1) acc
  in
  if ls = 0 then [ s ] else go 0 0 []

let canonical_ref name =
  let name = strip_stdlib name in
  let parts =
    split_on_string ~sep:"." name
    |> List.concat_map (fun p -> split_on_string ~sep:"__" p)
    |> List.filter (fun p -> p <> "")
  in
  match List.rev parts with
  | fn :: m :: _ -> m ^ "." ^ fn
  | [ one ] -> one
  | [] -> name

let module_of_source source =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename source))

let rec type_is_base ty =
  match Types.get_desc ty with
  | Ttuple tys -> List.for_all type_is_base tys
  | Tconstr (p, args, _) ->
    (match path_name p with
     | "int" | "char" | "bool" | "string" | "float" | "unit" | "int32"
     | "int64" | "nativeint" -> true
     | "list" | "option" | "array" | "ref" -> List.for_all type_is_base args
     | _ -> false)
  | Tpoly (ty, _) -> type_is_base ty
  | _ -> false

let type_is_list ty =
  match Types.get_desc ty with
  | Tconstr (p, _, _) -> String.equal (path_name p) "list"
  | _ -> false

let show_type ty =
  match Format.asprintf "%a" Printtyp.type_expr ty with
  | s -> s
  | exception _ -> "<unprintable>"

let first_arg_type ty =
  match Types.get_desc ty with Tarrow (_, a, _, _) -> Some a | _ -> None

let mutable_container ty =
  match Types.get_desc ty with
  | Tconstr (p, _, _) ->
    let n = path_name p in
    if String.equal n "ref" || String.equal n "array" || String.equal n "bytes"
    then Some n
    else if
      qualified_matches
        [ "Hashtbl.t"; "Buffer.t"; "Queue.t"; "Stack.t"; "Dynarray.t" ]
        n
    then Some n
    else None
  | _ -> None

(* Every type constructor mentioned anywhere in [ty], canonicalized —
   the taint pass greps these for adversary-payload types.  Guarded
   against cyclic type expressions with a visit cap. *)
let type_constr_names ty =
  let acc = ref [] in
  let budget = ref 512 in
  let rec go ty =
    if !budget > 0 then begin
      decr budget;
      match Types.get_desc ty with
      | Tconstr (p, args, _) ->
        acc := canonical_ref (path_name p) :: !acc;
        List.iter go args
      | Ttuple tys -> List.iter go tys
      | Tarrow (_, a, b, _) ->
        go a;
        go b
      | Tpoly (ty, _) -> go ty
      | Tlink ty | Tsubst (ty, _) -> go ty
      | _ -> ()
    end
  in
  go ty;
  List.sort_uniq String.compare !acc
