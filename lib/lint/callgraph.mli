(** Cross-module call graph over the repository's compilation units.

    Each unit's typedtree is boiled down once into plain-data
    {!fn_summary} records — one per value binding reachable by a static
    module path — recording every global value reference (canonicalized
    so dune's wrapped-library manglings resolve across units), the
    taint-relevant facts (an Engine [~inbox] parameter, adversary-payload
    types in bound patterns, decision-sink sites) and every Domain
    fan-out call site with its closure's captured mutable variables.

    Summaries are deliberately serialization-friendly (strings and ints
    only): the incremental {!Cache} stores them keyed by cmt digest, so a
    warm run rebuilds the graph without re-reading unchanged typedtrees.
    The interprocedural passes {!Race} (R6) and {!Taint} (R7) are pure
    functions of the {!t} built from them. *)

type ref_site = {
  ref_name : string;  (** canonical reference, e.g. ["Nodeset.compare"] *)
  ref_line : int;
}

type fanout = {
  fan_callee : string;  (** e.g. ["Parsweep.map"] *)
  fan_line : int;
  fan_col : int;
  fan_context : string;  (** enclosing binding, for finding contexts *)
  captured : (string * string) list;
      (** mutable values captured from outside the closure: variable
          name, container kind (or mutated field) *)
  closure_refs : ref_site list;
      (** global references made inside the closure *)
  arg_fn : string option;
      (** the function argument when it is a named function rather than
          a literal closure *)
}

type ho_kind =
  | Ho_arrow  (** literal closure / arrow-typed expression *)
  | Ho_alias of string
      (** named type constructor; {!build} keeps the argument only when
          some unit declares that name as an arrow alias *)

type ho_arg = {
  ho_callee : string;
      (** the call-site's callee reference (unit-local names qualified,
          cross-unit names canonicalized) *)
  ho_label : string;  (** argument label, [""] when positional *)
  ho_line : int;
  ho_kind : ho_kind;
  ho_refs : string list;
      (** canonicalized global references inside the argument expression
          — candidate behaviors flowing into the callee *)
  ho_params : string list;
      (** enclosing-binding parameter names the argument mentions as
          free locals: the caller's own instantiations flow through *)
}
(** One higher-order argument at a call site: a closure, (partial)
    application, identifier or packed module passed as an argument.
    {!Summary} resolves these into per-function instantiation sets, so
    a [decide]-style parameter is credited with the guards of whatever
    its callers actually pass. *)

type sink_kind =
  | Decided_assign  (** [_.decided <- ...] *)
  | Verdict_construct of string  (** Campaign verdict constructor *)

type sink_site = {
  sink_kind : sink_kind;
  sink_line : int;
  sink_col : int;
}

type fn_summary = {
  fn_name : string;  (** qualified, e.g. ["Rmt_pka.try_value"] *)
  fn_file : string;
  fn_line : int;
  params : string list;
      (** parameter names of the leading fun chain, labels included *)
  refs : ref_site list;  (** every global value reference, in order *)
  inbox_param : bool;  (** binds an ident named [inbox] *)
  adversary_types : string list;
      (** source type constructors appearing in bound patterns *)
  sinks : sink_site list;
  mutable_global : string option;
      (** [Some kind] when the binding itself is a mutable container or
          a record literal with mutable fields — module-level shared
          state *)
  fanouts : fanout list;
  ho_args : ho_arg list;  (** higher-order argument call sites *)
}

type unit_summary = {
  u_source : string;
  u_module : string;
  u_functions : fn_summary list;
  u_arrow_aliases : string list;
      (** type aliases declared in this unit whose manifest is an arrow
          (e.g. [Zcpa.decider]) — both canonical and short forms *)
}

val sink_describe : sink_kind -> string

val source_type_names : string list
(** Adversary-payload type constructors (suffix-matched): [Flood.msg],
    [Program.t], [Program.inject], [Engine.strategy]. *)

val inbox_param_name : string
(** ["inbox"] — the Engine step's delivery parameter. *)

val fanout_names : string list
(** Domain fan-out entry points: [Parsweep.map], [Parsweep.map_list],
    [Timing.time_with_domains], [Domain.spawn]. *)

val verdict_constructors : string list
(** Campaign verdict constructors treated as decision sinks. *)

val summarize : source:string -> Typedtree.structure -> unit_summary
(** One pass over a typedtree.  Declaration-order independent: locals
    are collected before references are resolved. *)

type t
(** The whole-program graph. *)

val build : unit_summary list -> t
(** Index the summaries.  On duplicate function names the first unit (in
    the given order) wins — callers pass units sorted by source path, so
    the result is deterministic. *)

val functions : t -> fn_summary list
(** All functions, sorted by qualified name. *)

val find : t -> string -> fn_summary option

val resolve : t -> string -> string option
(** Map a reference (as recorded in a summary) to the qualified name of
    a function defined in the analyzed units, if any: exact match first,
    then canonical last-two-components match. *)

val callees : t -> string -> string list
(** Resolved, deduplicated, sorted out-edges; self-loops dropped. *)

val callers : t -> string -> string list

val reaches : t -> marked:(fn_summary -> bool) -> string -> bool
(** [reaches t ~marked] precomputes the set of functions that are marked
    or transitively call a marked function, and returns its membership
    test. *)

val shortest_path :
  t ->
  admit:(string -> bool) ->
  accept:(string -> bool) ->
  string ->
  string list option
(** Deterministic BFS from a function along call edges through admitted
    nodes to the nearest accepted one; the returned path includes both
    endpoints. *)

val to_dot : t -> string
(** GraphViz rendering of the resolved edges. *)

val stats : t -> int * int
(** (functions, resolved edges). *)
