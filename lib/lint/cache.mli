(** Incremental analysis cache, keyed by cmt content digest.

    Per cmt file the cache stores either {!Skipped} (not an analyzable
    unit) or the unit's intraprocedural findings plus its
    {!Callgraph.unit_summary} — everything a warm run needs without
    re-reading the typedtree.  The whole {!Summary} effect store is
    cached too, keyed by the combined digest of every cmt that fed the
    graph.  Entries are invalidated by content digest; the whole file is
    invalidated by analyzer version, compiler version, or cmt format
    magic (the three things marshaled typedtree-derived data is not
    portable across).  Any load failure degrades to an empty cache, so
    correctness never depends on it ([make lint-clean] merely deletes
    the file). *)

type entry =
  | Skipped
  | Analyzed of {
      source : string;
      has_mli : bool;
      intra : Finding.t list;  (** structural findings only, no R5 *)
      summary : Callgraph.unit_summary;
      model : Model.unit_model;  (** protocol-model fragment for R9/R10 *)
    }

type t

val default_path : string
(** [_build/rmt-lint.cache]. *)

val empty : unit -> t

val load : string -> t
(** Empty on a missing, corrupt, or version-mismatched file. *)

val lookup : t -> cmt_path:string -> digest:string -> entry option
(** A hit requires the stored digest to equal [digest]. *)

val store : t -> cmt_path:string -> digest:string -> entry -> unit

val lookup_summaries : t -> key:string -> Summary.effects list option
(** The cached whole-program effect store, provided the combined cmt
    digest still matches. *)

val store_summaries : t -> key:string -> Summary.effects list -> unit

val size : t -> int

val save : string -> t -> unit
(** Atomic (write-then-rename), sorted, version-stamped.  A no-op when
    the parent directory does not exist. *)
